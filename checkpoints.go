package taglessdram

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"taglessdram/internal/config"
	"taglessdram/internal/system"
)

// SampleSpec configures SMARTS-style sampled simulation (re-exported from
// the system package): cycle-accurate windows of WindowRefs trace
// references, one per PeriodRefs references, with functional fast-forward
// covering the gaps.
type SampleSpec = system.SampleSpec

// SampledInfo summarizes a sampled run (Result.Sampled): the window
// population and the IPC estimate ± CI95 it yields.
type SampledInfo = system.SampledInfo

// CheckpointStore is an in-memory warm-state cache for sweeps: the first
// run of each (workload, configuration, warm-up, seed) combination warms
// up cycle-accurately and deposits its serialized post-warmup state; every
// later run with the same key restores it and skips straight to the
// measured phase. The store is safe for concurrent use, so one store can
// back a parallel sweep — two workers racing on the same key both warm up
// and deposit identical bytes (warm-up is deterministic), which is
// wasteful but correct.
//
// Keys include the full machine configuration: a checkpoint encodes
// design-specific state (the tagless controller's GIPT, cache tag arrays),
// so a warm state is only valid for an identically configured machine.
type CheckpointStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{m: make(map[string][]byte)}
}

func (s *CheckpointStore) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[key]
	return data, ok
}

func (s *CheckpointStore) put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = data
}

// Len reports how many distinct warm states the store holds.
func (s *CheckpointStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// checkpointKey identifies a warm state: the workload and everything that
// shapes the machine reaching it. SystemConfig is a pure value struct, so
// its %+v rendering is deterministic.
func checkpointKey(cfg *config.SystemConfig, workload string, o Options) string {
	return fmt.Sprintf("%s|seed=%d|warmup=%d|cfg=%+v", workload, o.Seed, o.Warmup, *cfg)
}

// runMachine executes one built machine under the Options' execution
// path. The default path is Machine.Run, byte-identical to every release
// before the speed layer existed. Sampling routes through RunSampled.
// Any checkpoint option switches to the Warmup/Measure pair — Warmup
// quiesces the event kernel so the state has a serialized form (see
// internal/system/checkpoint.go for the exactness contract) — and the
// warm state comes from, in precedence order: the CheckpointLoad file, a
// CheckpointStore hit, or a fresh cycle-accurate warm-up (deposited into
// the store and/or CheckpointSave file for the next run).
func runMachine(m *system.Machine, cfg *config.SystemConfig, workload string, o Options) (*Result, error) {
	if o.CheckpointSave == "" && o.CheckpointLoad == "" && o.Checkpoints == nil {
		if o.Sample != nil {
			return m.RunSampled(o.Warmup, o.Measure, *o.Sample)
		}
		return m.Run(o.Warmup, o.Measure)
	}

	var key string
	warmed := false
	switch {
	case o.CheckpointLoad != "":
		data, err := os.ReadFile(o.CheckpointLoad)
		if err != nil {
			return nil, fmt.Errorf("taglessdram: checkpoint: %w", err)
		}
		if err := m.LoadCheckpoint(bytes.NewReader(data)); err != nil {
			return nil, err
		}
		warmed = true
	case o.Checkpoints != nil:
		key = checkpointKey(cfg, workload, o)
		if data, ok := o.Checkpoints.get(key); ok {
			if err := m.LoadCheckpoint(bytes.NewReader(data)); err != nil {
				return nil, err
			}
			warmed = true
		}
	}
	if !warmed {
		if err := m.Warmup(o.Warmup); err != nil {
			return nil, err
		}
		if o.Checkpoints != nil {
			var buf bytes.Buffer
			if err := m.SaveCheckpoint(&buf); err != nil {
				return nil, err
			}
			o.Checkpoints.put(key, buf.Bytes())
		}
	}
	if o.CheckpointSave != "" {
		var buf bytes.Buffer
		if err := m.SaveCheckpoint(&buf); err != nil {
			return nil, err
		}
		if err := os.WriteFile(o.CheckpointSave, buf.Bytes(), 0o644); err != nil {
			return nil, fmt.Errorf("taglessdram: checkpoint: %w", err)
		}
	}
	if o.Sample != nil {
		return m.MeasureSampled(o.Measure, *o.Sample)
	}
	return m.Measure(o.Measure)
}
