package taglessdram

import (
	"bytes"
	"testing"

	"taglessdram/internal/lat"
)

// TestWalkModelConservation drives a TLB-missing workload through every
// walk model on every registered organization and checks the hard
// cycle-accounting invariants: zero residue in both scopes, and the walk
// latency carried by exactly the components the model is specified to
// charge — pt_walk for the single-dimensional models, ptwalk_guest +
// ptwalk_host for the nested walk — summing into (never exceeding) the
// measured handler stall.
func TestWalkModelConservation(t *testing.T) {
	for _, walk := range []string{"fixed", "pwc", "nested"} {
		for _, d := range Organizations() {
			o := quickOpts()
			o.WalkModel = walk
			r, err := Run(d, "sphinx3", o)
			if err != nil {
				t.Fatalf("%s/%v: %v", walk, d, err)
			}
			if err := CheckLatencyAttribution(r); err != nil {
				t.Errorf("%s/%v: %v", walk, d, err)
			}
			if r.TLBMisses == 0 {
				t.Fatalf("%s/%v: no TLB misses; the walk model was never exercised", walk, d)
			}
			h := &r.Latency.Handler
			flat := h.Cycles[lat.PTWalk]
			guest, host := h.Cycles[lat.PTWalkGuest], h.Cycles[lat.PTWalkHost]
			switch walk {
			case "fixed", "pwc":
				if flat == 0 {
					t.Errorf("%s/%v: pt_walk carried no cycles over %d misses", walk, d, r.TLBMisses)
				}
				if guest != 0 || host != 0 {
					t.Errorf("%s/%v: nested components charged (guest=%d host=%d) by a flat walk", walk, d, guest, host)
				}
			case "nested":
				if guest == 0 || host == 0 {
					t.Errorf("%s/%v: nested walk charged guest=%d host=%d cycles, want both positive", walk, d, guest, host)
				}
				if flat != 0 {
					t.Errorf("%s/%v: flat pt_walk charged %d cycles under the nested walk", walk, d, flat)
				}
			}
			if sum := flat + guest + host; sum == 0 || sum > h.Measured {
				t.Errorf("%s/%v: walk components sum to %d cycles, handler stall %d", walk, d, sum, h.Measured)
			}
		}
	}
}

// TestWalkModelOrdering sanity-checks the models' relative cost on one
// workload: the nested walk's up-to-24-reference misses must cost more
// handler stall than the fixed single-charge walk.
func TestWalkModelOrdering(t *testing.T) {
	stall := func(walk string) uint64 {
		o := quickOpts()
		o.WalkModel = walk
		r, err := Run(Tagless, "mcf", o)
		if err != nil {
			t.Fatalf("%s: %v", walk, err)
		}
		return uint64(r.Latency.Handler.Measured)
	}
	fixed, nested := stall("fixed"), stall("nested")
	if nested <= fixed {
		t.Errorf("nested walk handler stall %d <= fixed %d; 2D walk cost not modeled", nested, fixed)
	}
}

// TestMemoryWalkSelectsPWC pins the legacy switch: MemoryWalk=true and
// WalkModel="pwc" are the same model and must produce bit-identical runs.
func TestMemoryWalkSelectsPWC(t *testing.T) {
	legacy := quickOpts()
	legacy.MemoryWalk = true
	named := quickOpts()
	named.WalkModel = "pwc"
	a, err := Run(Tagless, "mcf", legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Tagless, "mcf", named)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(metricsBytes(t, a), metricsBytes(t, b)) {
		t.Error("MemoryWalk=true and WalkModel=\"pwc\" runs differ")
	}
}

// TestSharedTLBTopology runs a multi-programmed mix over the shared-L2
// topology with nested paging and periodic context switches — the
// stack's most adversarial configuration — and checks conservation,
// determinism, and that the topology's cross-core machinery actually
// fired.
func TestSharedTLBTopology(t *testing.T) {
	mk := func() *Result {
		o := quickOpts()
		o.WalkModel = "nested"
		o.TLBTopology = "shared"
		o.CtxSwitchRefs = 20_000
		o.CtxSwitchFlush = true
		r, err := Run(Tagless, "MIX1", o)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := mk()
	if err := CheckLatencyAttribution(r); err != nil {
		t.Error(err)
	}
	if r.CtxSwitches == 0 {
		t.Error("no context switches applied under CtxSwitchRefs")
	}
	if r.Latency.Bg.Cycles[lat.TLBShootdown] == 0 {
		t.Error("context-switch flushes charged no tlb_shootdown cycles")
	}
	if !bytes.Equal(metricsBytes(t, r), metricsBytes(t, mk())) {
		t.Error("nested+shared run is not deterministic")
	}
}

// TestSharedTopologyRetainPolicy checks the ASID-retain policy: foreign
// injection must evict real capacity (cross-core invalidations or plain
// pressure) without destroying correctness.
func TestSharedTopologyRetainPolicy(t *testing.T) {
	o := quickOpts()
	o.TLBTopology = "shared"
	o.CtxSwitchRefs = 10_000
	r, err := Run(Tagless, "MIX1", o)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLatencyAttribution(r); err != nil {
		t.Error(err)
	}
	if r.CtxSwitches == 0 {
		t.Error("no context switches applied")
	}
	// Retain mode must not charge shootdown time (switches are untimed
	// capacity pressure).
	if got := r.Latency.Bg.Cycles[lat.TLBShootdown]; got != 0 {
		t.Errorf("retain policy charged %d tlb_shootdown cycles, want 0", got)
	}
}

// TestPrivateTopologyUnchanged guards the tentpole's zero-perturbation
// requirement from the facade side: an explicit -tlb-topo private run is
// bit-identical to the default.
func TestPrivateTopologyUnchanged(t *testing.T) {
	a, err := Run(Tagless, "sphinx3", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpts()
	o.TLBTopology = "private"
	o.WalkModel = "fixed"
	b, err := Run(Tagless, "sphinx3", o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(metricsBytes(t, a), metricsBytes(t, b)) {
		t.Error("explicit private/fixed run differs from the default")
	}
}
