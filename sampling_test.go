package taglessdram_test

import (
	"math"
	"path/filepath"
	"testing"

	"taglessdram"
)

// sampledErrorBound is the documented accuracy contract of sampled mode
// (README "Sampled simulation & checkpoints"): on the validated
// configurations the sampled IPC estimate lands within 2% of the
// uninterrupted full run's IPC. The bound absorbs both sampling error
// (quantified by the reported CI) and the fast-forward path's systematic
// state staleness.
const sampledErrorBound = 0.02

// TestSampledAccuracy is the sampled-vs-full harness: for each validated
// workload it runs the measured phase twice — once fully cycle-accurate,
// once sampled — and asserts (a) the sampled IPC estimate falls within
// the documented error bound of the full run, and (b) the reported 95%
// confidence interval covers the full-run value, i.e. the CI is an
// honest statement about the quantity it accompanies, not just a
// tightness claim about the window population.
func TestSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-instruction accuracy runs")
	}
	spec := &taglessdram.SampleSpec{WindowRefs: 2000, WarmRefs: 1000, PeriodRefs: 10000}
	for _, wl := range []string{"sphinx3", "mcf"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			o := taglessdram.DefaultOptions()
			o.Warmup, o.Measure = 2_000_000, 20_000_000

			full, err := taglessdram.Run(taglessdram.Tagless, wl, o)
			if err != nil {
				t.Fatal(err)
			}
			o.Sample = spec
			sampled, err := taglessdram.Run(taglessdram.Tagless, wl, o)
			if err != nil {
				t.Fatal(err)
			}
			s := sampled.Sampled
			if s == nil {
				t.Fatal("sampled run carries no SampledInfo")
			}
			if s.IPC != sampled.IPC {
				t.Errorf("SampledInfo.IPC %v != Result.IPC %v", s.IPC, sampled.IPC)
			}
			if s.Windows < 100 {
				t.Errorf("only %d windows measured; the CI needs a population", s.Windows)
			}
			if s.FastRefs < 2*s.MeasuredRefs {
				t.Errorf("fast-forward covered %d refs vs %d accurate; sampling is not skipping work",
					s.FastRefs, s.MeasuredRefs)
			}
			relErr := math.Abs(s.IPC-full.IPC) / full.IPC
			t.Logf("full IPC %.4f, sampled %.4f ± %.4f (%d windows): error %.2f%%",
				full.IPC, s.IPC, s.IPCCI95, s.Windows, relErr*100)
			if relErr > sampledErrorBound {
				t.Errorf("sampled IPC %.4f deviates %.2f%% from full-run %.4f (bound %.0f%%)",
					s.IPC, relErr*100, full.IPC, sampledErrorBound*100)
			}
			if math.Abs(s.IPC-full.IPC) > s.IPCCI95 {
				t.Errorf("95%% CI [%.4f, %.4f] does not cover the full-run IPC %.4f",
					s.IPC-s.IPCCI95, s.IPC+s.IPCCI95, full.IPC)
			}
		})
	}
}

// TestCheckpointRoundTrip saves a checkpoint after warm-up, restores it
// into a fresh machine, runs the measured phase, and asserts the result
// fingerprint is byte-identical to an uninterrupted warm-up+measure run —
// for every registered organization. This is the exactness contract that
// lets a sweep warm up once per workload and fan the state out across
// designs without perturbing a single metric.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, d := range taglessdram.Organizations() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			o := goldenOptions()

			// Uninterrupted reference: same Warmup/Measure phase pair the
			// checkpoint path uses (a checkpoint quiesces the event kernel
			// at the phase boundary, so plain Run is not the comparator).
			o.CheckpointSave = filepath.Join(t.TempDir(), "warm.ckpt")
			straight, err := taglessdram.Run(d, "sphinx3", o)
			if err != nil {
				t.Fatal(err)
			}

			restored := o // same options; the load path ignores Warmup
			restored.CheckpointLoad = o.CheckpointSave
			restored.CheckpointSave = ""
			rerun, err := taglessdram.Run(d, "sphinx3", restored)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := fingerprint(rerun), fingerprint(straight); got != want {
				t.Errorf("restored run diverged from uninterrupted run:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}
