module taglessdram

go 1.22
