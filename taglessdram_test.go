package taglessdram

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// quickOpts keeps root-package tests fast: small budgets, default scale.
func quickOpts() Options {
	o := DefaultOptions()
	o.Warmup, o.Measure = 250_000, 250_000
	return o
}

func TestDefaultOptionsValid(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidate(t *testing.T) {
	o := DefaultOptions()
	o.Measure = 0
	if err := o.Validate(); err == nil {
		t.Error("zero measure accepted")
	}
	o = DefaultOptions()
	o.Shift = 20
	if err := o.Validate(); err == nil {
		t.Error("absurd shift accepted")
	}
}

func TestWorkloadLists(t *testing.T) {
	if len(SPECWorkloads()) != 11 {
		t.Errorf("SPEC workloads = %d, want 11", len(SPECWorkloads()))
	}
	if len(MixWorkloads()) != 8 {
		t.Errorf("mixes = %d, want 8", len(MixWorkloads()))
	}
	if len(PARSECWorkloads()) != 4 {
		t.Errorf("PARSEC workloads = %d, want 4", len(PARSECWorkloads()))
	}
	if len(Designs()) != 5 {
		t.Errorf("designs = %d, want 5", len(Designs()))
	}
}

func TestRunEachWorkloadKind(t *testing.T) {
	o := quickOpts()
	for _, wl := range []string{"sphinx3", "MIX1", "streamcluster"} {
		r, err := Run(Tagless, wl, o)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if r.IPC <= 0 {
			t.Errorf("%s: IPC = %v", wl, r.IPC)
		}
		if r.Design != Tagless {
			t.Errorf("%s: design = %v", wl, r.Design)
		}
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(Tagless, "nonesuch", quickOpts()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunCacheSizeOverride(t *testing.T) {
	o := quickOpts()
	o.CacheMB = 4
	r, err := Run(Tagless, "sphinx3", o)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Fatal("override run failed")
	}
}

func TestRunZeroWarmupDefaults(t *testing.T) {
	o := quickOpts()
	o.Warmup = 0
	if _, err := Run(NoL3, "sphinx3", o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable6MatchesPaper(t *testing.T) {
	rows := RunTable6()
	if len(rows) != 4 {
		t.Fatalf("table 6 rows = %d", len(rows))
	}
	last := rows[3]
	if last.CacheSize != 1<<30 || last.LatencyCyc != 11 {
		t.Fatalf("1GB row = %+v", last)
	}
}

func TestRunTable1CasesPresent(t *testing.T) {
	rows, err := RunTable1(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("table 1 rows = %d, want 5", len(rows))
	}
	// The pure-hit case must dominate and cost zero.
	if rows[0].TLB != "Hit" || rows[0].MeanCycles != 0 || rows[0].Count == 0 {
		t.Fatalf("hit/hit row = %+v", rows[0])
	}
}

func TestRunFigure13Gains(t *testing.T) {
	o := quickOpts()
	o.Warmup, o.Measure = 600_000, 600_000
	row, err := RunFigure13(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if row.NCAccesses == 0 {
		t.Fatal("NC case study produced no NC accesses")
	}
	if row.NCOffPkgB >= row.BaseOffPkgB {
		t.Fatalf("NC pages should cut off-package bytes: %d vs %d",
			row.NCOffPkgB, row.BaseOffPkgB)
	}
}

func TestRunFigure11BothPolicies(t *testing.T) {
	rows, err := RunFigure11(context.Background(), quickOpts(), []string{"MIX1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].FIFOIPC <= 0 || rows[0].LRUIPC <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestRunFigure10Shapes(t *testing.T) {
	o := quickOpts()
	o.Warmup, o.Measure = 750_000, 750_000
	rows, err := RunFigure10(context.Background(), o, []string{"MIX5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 sizes", len(rows))
	}
	// The paper's crossover: at the smallest cache both designs lose to
	// BI; at the largest they recover substantially.
	small, large := rows[0], rows[2]
	if small.CacheMB != 4 || large.CacheMB != 16 {
		t.Fatalf("sizes = %d..%d", small.CacheMB, large.CacheMB)
	}
	if small.CTLBNorm >= large.CTLBNorm {
		t.Errorf("tagless should improve with cache size: %.2f -> %.2f",
			small.CTLBNorm, large.CTLBNorm)
	}
}

func TestRunTable2Rows(t *testing.T) {
	rows, err := RunTable2(context.Background(), quickOpts(), "MIX1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (block, banshee, page, tagless)", len(rows))
	}
	alloy, banshee, sram, ctlb := rows[0], rows[1], rows[2], rows[3]
	if alloy.TagInDRAMMB != 128 {
		t.Errorf("block-based in-DRAM tags = %vMB, want 128 (paper scale)", alloy.TagInDRAMMB)
	}
	if banshee.TagStorageMB != 0 || banshee.TagInDRAMMB != 2 {
		t.Errorf("banshee tag storage = %v/%vMB, want 0/2 (8B per page, paper scale)",
			banshee.TagStorageMB, banshee.TagInDRAMMB)
	}
	if sram.TagStorageMB != 4 {
		t.Errorf("SRAM tag storage = %vMB, want 4 (paper scale)", sram.TagStorageMB)
	}
	if ctlb.TagStorageMB != 0 || ctlb.TagInDRAMMB != 0 {
		t.Errorf("tagless tag storage = %v/%vMB, want 0", ctlb.TagStorageMB, ctlb.TagInDRAMMB)
	}
	if ctlb.L3HitRate != 1 {
		t.Errorf("tagless hit rate = %v", ctlb.L3HitRate)
	}
	if alloy.L3HitRate >= sram.L3HitRate {
		t.Errorf("block-based hit rate %v should trail page-based %v (Table 2)",
			alloy.L3HitRate, sram.L3HitRate)
	}
}

func TestRunAMATCheck(t *testing.T) {
	rows, err := RunAMATCheck(context.Background(), quickOpts(), []string{"sphinx3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.ModelSRAMLat <= 0 || r.ModelCTLBLat <= 0 {
		t.Fatalf("model produced non-positive latencies: %+v", r)
	}
	// The closed forms exclude queueing: they must lower-bound the sim.
	if r.ModelSRAMLat > r.SimSRAMLat*1.05 || r.ModelCTLBLat > r.SimCTLBLat*1.05 {
		t.Fatalf("model exceeds simulation: %+v", r)
	}
}

func TestGeoMeanHelpers(t *testing.T) {
	rows := []DesignRow{
		{Design: Tagless, NormIPC: 2, NormEDP: 0.5},
		{Design: Tagless, NormIPC: 8, NormEDP: 2},
		{Design: NoL3, NormIPC: 1, NormEDP: 1},
	}
	if got := GeoMeanNormIPC(rows, Tagless); got != 4 {
		t.Errorf("geomean IPC = %v, want 4", got)
	}
	if got := GeoMeanNormEDP(rows, Tagless); got != 1 {
		t.Errorf("geomean EDP = %v, want 1", got)
	}
}

func TestRunSharedPagesStudy(t *testing.T) {
	o := quickOpts()
	rows, err := RunSharedPages(context.Background(), o, "MIX1", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	ncRow, aliasRow := rows[1], rows[2]
	if ncRow.NCAccesses == 0 {
		t.Error("NC variant shows no NC accesses")
	}
	if aliasRow.NCAccesses != 0 {
		t.Error("alias variant still bypasses shared pages")
	}
	if aliasRow.L3HitRate != 1 {
		t.Errorf("alias variant hit rate = %v, want 1", aliasRow.L3HitRate)
	}
}

func TestRunHotFilterSweep(t *testing.T) {
	o := quickOpts()
	rows, err := RunHotFilter(context.Background(), o, "GemsFDTD", []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].NCAccesses != 0 {
		t.Error("disabled filter produced NC accesses")
	}
	if rows[1].NCAccesses == 0 {
		t.Error("enabled filter produced no NC accesses")
	}
}

func TestRunSuperpagesStudy(t *testing.T) {
	o := quickOpts()
	o.Warmup, o.Measure = 600_000, 600_000
	rows, err := RunSuperpages(context.Background(), o, []string{"mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, sp := rows[0], rows[1]
	if sp.TLBMissRate >= base.TLBMissRate {
		t.Errorf("superpages did not extend TLB reach: %.4f vs %.4f",
			sp.TLBMissRate, base.TLBMissRate)
	}
}

func TestRunTLBReachStudy(t *testing.T) {
	o := quickOpts()
	o.Warmup, o.Measure = 600_000, 600_000
	rows, err := RunTLBReach(context.Background(), o, "mcf", []int{128, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, big := rows[0], rows[1]
	if small.TLBMissRate <= big.TLBMissRate {
		t.Errorf("smaller TLB should miss more: %.4f vs %.4f",
			small.TLBMissRate, big.TLBMissRate)
	}
	if small.VictimHits <= big.VictimHits {
		t.Errorf("victim cache should absorb the smaller TLB's misses: %d vs %d",
			small.VictimHits, big.VictimHits)
	}
}

func TestRefreshOptionSlowsRun(t *testing.T) {
	o := quickOpts()
	base, err := Run(Tagless, "sphinx3", o)
	if err != nil {
		t.Fatal(err)
	}
	o.Refresh = true
	ref, err := Run(Tagless, "sphinx3", o)
	if err != nil {
		t.Fatal(err)
	}
	if ref.IPC > base.IPC*1.001 {
		t.Errorf("refresh made the machine faster: %.3f vs %.3f", ref.IPC, base.IPC)
	}
}

func TestAlphaOptionApplies(t *testing.T) {
	o := quickOpts()
	o.Alpha = 8
	o.CacheMB = 2
	r, err := Run(Tagless, "milc", o)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Fatal("alpha-8 run failed")
	}
}

// TestHeadlineClaimQuick verifies at reduced budget the abstract's ordering
// for a favorable workload: tagless beats SRAM-tag on IPC and EDP.
func TestHeadlineClaimQuick(t *testing.T) {
	o := quickOpts()
	o.Warmup, o.Measure = 1_000_000, 1_000_000
	rs, err := Run(SRAMTag, "sphinx3", o)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(Tagless, "sphinx3", o)
	if err != nil {
		t.Fatal(err)
	}
	if rt.IPC <= rs.IPC {
		t.Errorf("tagless IPC %.3f not above SRAM-tag %.3f", rt.IPC, rs.IPC)
	}
	if rt.EDPJs >= rs.EDPJs {
		t.Errorf("tagless EDP %.3g not below SRAM-tag %.3g", rt.EDPJs, rs.EDPJs)
	}
}

func TestRunFairnessMetrics(t *testing.T) {
	o := quickOpts()
	rows, err := RunFairness(context.Background(), o, "MIX1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WeightedSpeedup <= 0 || r.WeightedSpeedup > 4 {
			t.Errorf("%v: weighted speedup = %v out of (0,4]", r.Design, r.WeightedSpeedup)
		}
		if r.HarmonicSpeedup <= 0 || r.HarmonicSpeedup > 1.5 {
			t.Errorf("%v: harmonic speedup = %v implausible", r.Design, r.HarmonicSpeedup)
		}
		if len(r.PerProgSlowdowns) != 4 {
			t.Errorf("%v: per-program entries = %d", r.Design, len(r.PerProgSlowdowns))
		}
	}
	if _, err := RunFairness(context.Background(), o, "MIX99"); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestRunRejectsInvalidOptions(t *testing.T) {
	o := DefaultOptions()
	o.Measure = 0
	if _, err := Run(Tagless, "sphinx3", o); err == nil {
		t.Error("Run accepted Measure = 0")
	}
	o = DefaultOptions()
	o.Shift = 20
	if _, err := Run(Tagless, "sphinx3", o); err == nil {
		t.Error("Run accepted Shift = 20")
	}
	o = DefaultOptions()
	o.Workers = -1
	if _, err := Run(Tagless, "sphinx3", o); err == nil {
		t.Error("Run accepted Workers = -1")
	}
}

// TestParallelSweepMatchesSerial is the tentpole's determinism invariant:
// an N-way parallel sweep must produce bit-identical rows to the serial
// path for the same seeds, because every job builds an isolated machine.
// Run under -race this also proves the jobs share no mutable state.
func TestParallelSweepMatchesSerial(t *testing.T) {
	o := quickOpts()
	o.Warmup, o.Measure = 60_000, 60_000
	workloads := []string{"sphinx3", "libquantum"}

	o.Workers = 1
	serial, err := runDesignGrid(context.Background(), workloads, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	parallel, err := runDesignGrid(context.Background(), workloads, o)
	if err != nil {
		t.Fatal(err)
	}
	// Workers is part of Options (and so of each row's job options), but
	// the rows themselves carry only metrics — compare them exactly.
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if len(serial) != len(workloads)*len(Designs()) {
		t.Fatalf("rows = %d, want %d", len(serial), len(workloads)*len(Designs()))
	}
}

// TestSweepFacade exercises the exported Sweep entry point: ordering,
// error tagging with the failing (workload, design) pair, and the
// isolation of per-job options.
func TestSweepFacade(t *testing.T) {
	o := quickOpts()
	o.Warmup, o.Measure = 60_000, 60_000
	oNC := o
	oNC.NCAccessThreshold = 32
	jobs := []Job{
		{Design: NoL3, Workload: "sphinx3", Options: o},
		{Design: Tagless, Workload: "sphinx3", Options: oNC},
	}
	res, err := Sweep(context.Background(), jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if res[0].IPC <= 0 || res[1].IPC <= 0 {
		t.Fatalf("non-positive IPCs: %v, %v", res[0].IPC, res[1].IPC)
	}

	jobs = append(jobs, Job{Design: Tagless, Workload: "nosuchprogram", Options: o})
	_, err = Sweep(context.Background(), jobs, 2)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "nosuchprogram/cTLB") {
		t.Errorf("error %q does not name the failing job", err)
	}
}

// TestSweepProgressThroughRunners checks the Options.Progress plumbing:
// a figure runner reports one completion per simulation.
func TestSweepProgressThroughRunners(t *testing.T) {
	o := quickOpts()
	o.Warmup, o.Measure = 60_000, 60_000
	o.Workers = 2
	var mu sync.Mutex
	var calls []int
	o.Progress = func(p SweepProgress) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, p.Done)
	}
	entries := []int{128, 512}
	if _, err := RunTLBReach(context.Background(), o, "mcf", entries); err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(entries) {
		t.Fatalf("progress fired %d times, want %d", len(calls), len(entries))
	}
	if calls[len(calls)-1] != len(entries) {
		t.Fatalf("final Done = %d, want %d", calls[len(calls)-1], len(entries))
	}
}
