package taglessdram_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"testing"

	"taglessdram"
)

// TestTelemetrySmoke drives a real sweepd process end to end; CI's
// telemetry-smoke job starts one and points TELEMETRY_SMOKE_URL at it.
// It deliberately carries its own miniature exposition parser instead of
// importing internal/telemetry, so it would catch a format regression
// that broke third-party scrapers even if the in-tree parser kept pace.
func TestTelemetrySmoke(t *testing.T) {
	url := os.Getenv("TELEMETRY_SMOKE_URL")
	if url == "" {
		t.Skip("TELEMETRY_SMOKE_URL not set (CI telemetry-smoke job only)")
	}
	ctx := context.Background()

	before := smokeScrape(t, url)
	o := taglessdram.DefaultOptions()
	o.Warmup, o.Measure = 50_000, 50_000
	o.Workers = 2
	var sweepID string
	o.OnSweepAccepted = func(a taglessdram.SweepAccepted) { sweepID = a.SweepID }
	jobs := []taglessdram.Job{
		{Design: taglessdram.Tagless, Workload: "sphinx3", Options: o},
		{Design: taglessdram.SRAMTag, Workload: "sphinx3", Options: o},
	}
	if _, err := taglessdram.RemoteSweep(ctx, url, jobs, o); err != nil {
		t.Fatal(err)
	}
	if sweepID == "" {
		t.Fatal("accepted event carried no sweep ID")
	}
	after := smokeScrape(t, url)

	for _, name := range []string{
		"sweepd_sweeps_total", "sweepd_jobs_total",
		"sweepd_resultcache_hits_total", "sweepd_resultcache_misses_total",
		"sweepd_http_requests_total", "sweepd_uptime_seconds",
	} {
		b, okB := before[name]
		a, okA := after[name]
		if !okB || !okA {
			t.Errorf("metric %s missing from a scrape (before %v, after %v)", name, okB, okA)
			continue
		}
		if a < b {
			t.Errorf("%s went backwards: %v -> %v", name, b, a)
		}
	}
	if d := after["sweepd_jobs_total"] - before["sweepd_jobs_total"]; d < float64(len(jobs)) {
		t.Errorf("sweepd_jobs_total advanced by %v, want >= %d", d, len(jobs))
	}

	// Stats and metrics must be the same numbers.
	st, err := taglessdram.RemoteStats(ctx, url)
	if err != nil {
		t.Fatal(err)
	}
	if got := after["sweepd_resultcache_hits_total"] + after["sweepd_resultcache_misses_total"]; got > float64(st.Hits+st.Misses) {
		t.Errorf("/metrics saw %v cache lookups, /v1/stats only %d", got, st.Hits+st.Misses)
	}

	// The sweep's trace must be valid Chrome trace_event JSON with one
	// complete event per job span.
	raw, err := taglessdram.RemoteTrace(ctx, url, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(jobs) {
		t.Fatalf("trace has %d events, want at least %d", len(doc.TraceEvents), len(jobs))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" {
			t.Fatalf("malformed trace event: %+v", ev)
		}
	}
}

// smokeScrape fetches /metrics and parses it with a minimal
// line-oriented reader: families summed over label sets, comments
// skipped, anything else a failure.
func smokeScrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(strings.TrimSuffix(url, "/") + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		name := line[:sp]
		if br := strings.IndexByte(name, '{'); br >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = name[:br]
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[name] += v
	}
	if len(out) == 0 {
		t.Fatal("empty exposition")
	}
	return out
}
