package taglessdram

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"taglessdram/internal/config"
	"taglessdram/internal/resultcache"
	"taglessdram/internal/sweepapi"
)

// ParseDesign resolves an organization by the name its String() renders
// (NoL3, BI, SRAM, cTLB, Ideal, Alloy, Banshee), case-insensitively.
// It is the inverse of Design.String, shared by the CLIs and the sweep
// service's request validation.
func ParseDesign(name string) (Design, error) {
	names := make([]string, 0, 8)
	for _, d := range Organizations() {
		if strings.EqualFold(d.String(), name) {
			return d, nil
		}
		names = append(names, d.String())
	}
	return 0, fmt.Errorf("taglessdram: unknown design %q (want %s)", name, strings.Join(names, ", "))
}

// parsePolicy maps a wire policy name to the replacement-policy enum.
func parsePolicy(name string) (config.ReplacementPolicy, error) {
	switch name {
	case "", "FIFO":
		return FIFO, nil
	case "LRU":
		return LRU, nil
	case "CLOCK":
		return CLOCK, nil
	}
	return 0, fmt.Errorf("taglessdram: unknown replacement policy %q (want FIFO, LRU, CLOCK)", name)
}

// wireOptions renders the semantic Options fields into their wire form.
// Non-semantic fields (observers, Workers, the cache handle) stay local;
// the checkpoint fields cannot cross the wire and must be rejected by the
// caller before conversion.
func wireOptions(o Options) *sweepapi.Options {
	w := &sweepapi.Options{
		Shift:               o.Shift,
		Warmup:              o.Warmup,
		Measure:             o.Measure,
		Seed:                o.Seed,
		CacheMB:             o.CacheMB,
		NCAccessThreshold:   o.NCAccessThreshold,
		SynchronousEviction: o.SynchronousEviction,
		CachedGIPT:          o.CachedGIPT,
		SharedAliasTable:    o.SharedAliasTable,
		HotFilterThreshold:  o.HotFilterThreshold,
		Superpages:          o.Superpages,
		Refresh:             o.Refresh,
		L2TLBEntries:        o.L2TLBEntries,
		Alpha:               o.Alpha,
		MemoryWalk:          o.MemoryWalk,
		WalkModel:           o.WalkModel,
		PWCHitCycles:        o.PWCHitCycles,
		TLBTopology:         o.TLBTopology,
		CtxSwitchRefs:       o.CtxSwitchRefs,
		CtxSwitchFlush:      o.CtxSwitchFlush,
		MSHRs:               o.MSHRs,
		EpochRefs:           o.EpochRefs,
		EpochCapacity:       o.EpochCapacity,
	}
	if o.Policy != FIFO {
		w.Policy = o.Policy.String()
	}
	if o.Sample != nil {
		w.Sample = &sweepapi.Sample{
			WindowRefs: o.Sample.WindowRefs,
			PeriodRefs: o.Sample.PeriodRefs,
			WarmRefs:   o.Sample.WarmRefs,
		}
	}
	return w
}

// optionsFromWire is the inverse of wireOptions: it rebuilds native
// Options from their wire form. The fingerprint round-trip test pins the
// two as exact inverses over the semantic fields, which is what keeps a
// remote job's cache key identical to the in-process one.
func optionsFromWire(w *sweepapi.Options) (Options, error) {
	if w == nil {
		return DefaultOptions(), nil
	}
	policy, err := parsePolicy(w.Policy)
	if err != nil {
		return Options{}, err
	}
	o := Options{
		Shift:               w.Shift,
		Warmup:              w.Warmup,
		Measure:             w.Measure,
		Seed:                w.Seed,
		CacheMB:             w.CacheMB,
		Policy:              policy,
		NCAccessThreshold:   w.NCAccessThreshold,
		SynchronousEviction: w.SynchronousEviction,
		CachedGIPT:          w.CachedGIPT,
		SharedAliasTable:    w.SharedAliasTable,
		HotFilterThreshold:  w.HotFilterThreshold,
		Superpages:          w.Superpages,
		Refresh:             w.Refresh,
		L2TLBEntries:        w.L2TLBEntries,
		Alpha:               w.Alpha,
		MemoryWalk:          w.MemoryWalk,
		WalkModel:           w.WalkModel,
		PWCHitCycles:        w.PWCHitCycles,
		TLBTopology:         w.TLBTopology,
		CtxSwitchRefs:       w.CtxSwitchRefs,
		CtxSwitchFlush:      w.CtxSwitchFlush,
		MSHRs:               w.MSHRs,
		EpochRefs:           w.EpochRefs,
		EpochCapacity:       w.EpochCapacity,
	}
	if w.Sample != nil {
		o.Sample = &SampleSpec{
			WindowRefs: w.Sample.WindowRefs,
			PeriodRefs: w.Sample.PeriodRefs,
			WarmRefs:   w.Sample.WarmRefs,
		}
	}
	return o, nil
}

// remoteSubmittable rejects job options a sweep service cannot honor:
// checkpoint files and in-memory checkpoint stores name server-local
// state, and kernel-event traces need the simulation to run in-process.
func remoteSubmittable(o Options) error {
	if o.CheckpointSave != "" || o.CheckpointLoad != "" || o.Checkpoints != nil {
		return fmt.Errorf("taglessdram: checkpoint options cannot be submitted to a sweep service")
	}
	if o.TraceEvents != nil {
		return fmt.Errorf("taglessdram: kernel-event tracing cannot be submitted to a sweep service")
	}
	return nil
}

// RemoteSweep submits jobs to a sweepd sweep service at the given base
// URL and returns one Result per job in submission order — byte-identical
// to what Sweep would have produced in-process, because results travel as
// the result cache's own encoding. The sweep-level Options supply the
// requested fan-out width (Workers, clamped by the server) and the
// Progress callback, which is fed from the server's streamed progress
// events. Cancelling ctx aborts the request; the server then skips that
// sweep's queued jobs.
func RemoteSweep(ctx context.Context, server string, jobs []Job, o Options) ([]*Result, error) {
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}
	req := sweepapi.Request{Workers: o.Workers, Jobs: make([]sweepapi.Job, len(jobs))}
	for i, j := range jobs {
		if err := remoteSubmittable(j.Options); err != nil {
			return nil, fmt.Errorf("%s/%v: %w", j.Workload, j.Design, err)
		}
		req.Jobs[i] = sweepapi.Job{
			Design:   j.Design.String(),
			Workload: j.Workload,
			Options:  wireOptions(j.Options),
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("taglessdram: encoding sweep request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(server, "/")+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("taglessdram: sweep service: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("taglessdram: sweep service: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er sweepapi.ErrorReply
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			return nil, fmt.Errorf("taglessdram: sweep service: %s (HTTP %d)", er.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("taglessdram: sweep service: HTTP %d", resp.StatusCode)
	}

	results := make([]*Result, len(jobs))
	dec := json.NewDecoder(resp.Body)
	done := false
	for !done {
		var ev sweepapi.Event
		if err := dec.Decode(&ev); err != nil {
			// Distinguish a caller cancellation from a truncated stream
			// (server died mid-sweep): the context error is the real cause.
			if cerr := ctx.Err(); cerr != nil {
				return results, cerr
			}
			return results, fmt.Errorf("taglessdram: sweep service: stream ended early: %w", err)
		}
		switch ev.Type {
		case sweepapi.EventAccepted:
			if ev.Jobs != len(jobs) {
				return results, fmt.Errorf("taglessdram: sweep service accepted %d jobs, submitted %d", ev.Jobs, len(jobs))
			}
			if o.OnSweepAccepted != nil {
				o.OnSweepAccepted(SweepAccepted{
					SweepID: ev.SweepID, Jobs: ev.Jobs, Workers: ev.Workers,
				})
			}
		case sweepapi.EventProgress:
			if o.Progress != nil {
				o.Progress(SweepProgress{
					Done:    ev.Done,
					Total:   ev.Total,
					Elapsed: time.Duration(ev.ElapsedMS) * time.Millisecond,
					ETA:     time.Duration(ev.ETAMS) * time.Millisecond,
				})
			}
		case sweepapi.EventResult:
			if ev.Job < 0 || ev.Job >= len(jobs) {
				return results, fmt.Errorf("taglessdram: sweep service: result for unknown job %d", ev.Job)
			}
			r, err := resultcache.Decode(ev.Result)
			if err != nil {
				return results, fmt.Errorf("taglessdram: sweep service: decoding job %d result: %w", ev.Job, err)
			}
			results[ev.Job] = r
		case sweepapi.EventError:
			return results, fmt.Errorf("%s", ev.Error)
		case sweepapi.EventDone:
			done = true
		default:
			return results, fmt.Errorf("taglessdram: sweep service: unknown event type %q", ev.Type)
		}
	}
	for i, r := range results {
		if r == nil {
			return results, fmt.Errorf("taglessdram: sweep service: no result for job %d (%s/%v)",
				i, jobs[i].Workload, jobs[i].Design)
		}
	}
	return results, nil
}

// SweepAccepted is the Options.OnSweepAccepted payload: the sweep
// service's acknowledgement of a submitted grid. SweepID is the
// server-assigned handle for the sweep's span trace (RemoteTrace,
// GET /v1/trace?sweep=ID).
type SweepAccepted struct {
	SweepID string
	Jobs    int
	Workers int
}

// ServerStats is a sweep service's GET /v1/stats snapshot: the result
// cache's lifetime counters and entry count, the service's own request
// counters, and its identity block (behavioral model version, start
// time/uptime, in-flight gauges).
type ServerStats struct {
	Hits, Misses, Stored, Evicted uint64
	Entries                       int
	Sweeps, Jobs                  uint64

	ModelVersion                 int
	Start                        time.Time
	Uptime                       time.Duration
	InFlightSweeps, InFlightJobs int
}

// RemoteStats fetches a sweep service's statistics snapshot.
func RemoteStats(ctx context.Context, server string) (ServerStats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(server, "/")+"/v1/stats", nil)
	if err != nil {
		return ServerStats{}, fmt.Errorf("taglessdram: sweep service: %w", err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return ServerStats{}, fmt.Errorf("taglessdram: sweep service: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ServerStats{}, fmt.Errorf("taglessdram: sweep service: HTTP %d from /v1/stats", resp.StatusCode)
	}
	var sr sweepapi.StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return ServerStats{}, fmt.Errorf("taglessdram: sweep service: decoding /v1/stats: %w", err)
	}
	st := ServerStats{
		Hits: sr.Cache.Hits, Misses: sr.Cache.Misses,
		Stored: sr.Cache.Stored, Evicted: sr.Cache.Evicted,
		Entries: sr.Entries, Sweeps: sr.Sweeps, Jobs: sr.SimJobs,
		ModelVersion:   sr.ModelVersion,
		Uptime:         time.Duration(sr.UptimeMS) * time.Millisecond,
		InFlightSweeps: sr.InFlightSweeps,
		InFlightJobs:   sr.InFlightJobs,
	}
	if sr.Start != "" {
		if t, err := time.Parse(time.RFC3339, sr.Start); err == nil {
			st.Start = t
		}
	}
	return st, nil
}

// RemoteTrace fetches one sweep's span timeline from a sweep service as
// raw Chrome trace_event JSON (loadable in chrome://tracing or
// Perfetto). sweepID comes from Options.OnSweepAccepted; "" returns the
// server's most recent sweep.
func RemoteTrace(ctx context.Context, server, sweepID string) ([]byte, error) {
	u := strings.TrimSuffix(server, "/") + "/v1/trace"
	if sweepID != "" {
		u += "?sweep=" + url.QueryEscape(sweepID)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("taglessdram: sweep service: %w", err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("taglessdram: sweep service: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("taglessdram: sweep service: HTTP %d from /v1/trace", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("taglessdram: sweep service: reading /v1/trace: %w", err)
	}
	return raw, nil
}
