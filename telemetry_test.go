package taglessdram

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"taglessdram/internal/sweepapi"
	"taglessdram/internal/telemetry"
)

// scrapeMetrics fetches and parses the server's /metrics exposition.
func scrapeMetrics(t *testing.T, url string) []telemetry.Sample {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	samples, err := telemetry.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	return samples
}

// metricValue returns the single unlabeled sample with the given name.
func metricValue(t *testing.T, samples []telemetry.Sample, name string) float64 {
	t.Helper()
	for _, s := range samples {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}

// TestSweepdMetricsAgreeWithStats is the exposition's core guarantee:
// the /metrics cache counters are the same numbers /v1/stats (and the
// RemoteStats client) reports, a warm re-submission shows zero misses
// on both surfaces, and counters are monotonic across scrapes.
func TestSweepdMetricsAgreeWithStats(t *testing.T) {
	_, url := newTestSweepServer(t, 0, 0)
	o := remoteTestOpts()
	o.Workers = 2
	jobs := []Job{
		{Design: Tagless, Workload: "sphinx3", Options: o},
		{Design: SRAMTag, Workload: "sphinx3", Options: o},
	}
	if _, err := RemoteSweep(context.Background(), url, jobs, o); err != nil {
		t.Fatal(err)
	}
	cold := scrapeMetrics(t, url)
	if _, err := RemoteSweep(context.Background(), url, jobs, o); err != nil {
		t.Fatal(err)
	}
	warm := scrapeMetrics(t, url)

	stats, err := RemoteStats(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	agree := []struct {
		metric string
		stat   uint64
	}{
		{"sweepd_resultcache_hits_total", stats.Hits},
		{"sweepd_resultcache_misses_total", stats.Misses},
		{"sweepd_resultcache_stored_total", stats.Stored},
		{"sweepd_resultcache_evicted_total", stats.Evicted},
		{"sweepd_sweeps_total", stats.Sweeps},
		{"sweepd_jobs_total", stats.Jobs},
	}
	for _, a := range agree {
		if got := metricValue(t, warm, a.metric); got != float64(a.stat) {
			t.Errorf("%s = %v, but /v1/stats says %d", a.metric, got, a.stat)
		}
	}
	if d := metricValue(t, warm, "sweepd_resultcache_misses_total") -
		metricValue(t, cold, "sweepd_resultcache_misses_total"); d != 0 {
		t.Errorf("warm re-submission added %v misses on /metrics, want 0", d)
	}
	if d := metricValue(t, warm, "sweepd_resultcache_hits_total") -
		metricValue(t, cold, "sweepd_resultcache_hits_total"); d != float64(len(jobs)) {
		t.Errorf("warm re-submission added %v hits on /metrics, want %d", d, len(jobs))
	}
	for _, name := range []string{
		"sweepd_resultcache_hits_total", "sweepd_resultcache_misses_total",
		"sweepd_sweeps_total", "sweepd_jobs_total", "sweepd_http_requests_total",
	} {
		var before, after float64
		for _, s := range cold {
			if s.Name == name {
				before += s.Value
			}
		}
		for _, s := range warm {
			if s.Name == name {
				after += s.Value
			}
		}
		if after < before {
			t.Errorf("%s went backwards across scrapes: %v -> %v", name, before, after)
		}
	}
	if got := metricValue(t, warm, "sweepd_model_version"); got != float64(ModelVersion()) {
		t.Errorf("sweepd_model_version = %v, want %d", got, ModelVersion())
	}
	if got := metricValue(t, warm, "sweepd_sweeps_inflight"); got != 0 {
		t.Errorf("sweepd_sweeps_inflight = %v after sweeps finished, want 0", got)
	}
	if got := metricValue(t, warm, "sweepd_jobs_inflight"); got != 0 {
		t.Errorf("sweepd_jobs_inflight = %v after sweeps finished, want 0", got)
	}
	// The simulate phase histogram saw exactly the cold jobs; cache
	// lookups saw every fingerprintable job.
	var simCount, lookupCount float64
	for _, s := range warm {
		if s.Name != "sweepd_phase_duration_seconds_count" {
			continue
		}
		switch s.Label("phase") {
		case "simulate":
			simCount = s.Value
		case "cache-lookup":
			lookupCount = s.Value
		}
	}
	if simCount != float64(len(jobs)) {
		t.Errorf("simulate phase count = %v, want %d (cold jobs only)", simCount, len(jobs))
	}
	if lookupCount != float64(2*len(jobs)) {
		t.Errorf("cache-lookup phase count = %v, want %d", lookupCount, 2*len(jobs))
	}

	// Extended stats service info.
	if stats.ModelVersion != ModelVersion() {
		t.Errorf("stats.ModelVersion = %d, want %d", stats.ModelVersion, ModelVersion())
	}
	if stats.Start.IsZero() || stats.Start.After(time.Now()) {
		t.Errorf("stats.Start = %v, want a past start time", stats.Start)
	}
	if stats.Uptime <= 0 {
		t.Errorf("stats.Uptime = %v, want > 0", stats.Uptime)
	}
	if stats.InFlightSweeps != 0 || stats.InFlightJobs != 0 {
		t.Errorf("in-flight = %d/%d after sweeps finished, want 0/0",
			stats.InFlightSweeps, stats.InFlightJobs)
	}
}

// chromeSpan mirrors the Chrome trace_event fields the span export uses.
type chromeSpan struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   uint64 `json:"ts"`
	Dur  uint64 `json:"dur"`
	TID  int    `json:"tid"`
}

func fetchTrace(t *testing.T, url, sweepID string) []chromeSpan {
	t.Helper()
	raw, err := RemoteTrace(context.Background(), url, sweepID)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []chromeSpan `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace for %q is not valid JSON: %v", sweepID, err)
	}
	return doc.TraceEvents
}

// TestSweepdTraceExport pins the per-sweep span timeline: the accepted
// event carries the server-assigned sweep ID, /v1/trace exports one
// umbrella span per job with its phases nested inside it on the same
// lane, a cold sweep's jobs are cat "simulated" and a warm replay's are
// cat "cached", and /v1/sweeps lists both sweeps as finished.
func TestSweepdTraceExport(t *testing.T) {
	_, url := newTestSweepServer(t, 0, 0)
	o := remoteTestOpts()
	o.Workers = 2
	var mu sync.Mutex
	var ids []string
	o.OnSweepAccepted = func(a SweepAccepted) {
		mu.Lock()
		ids = append(ids, a.SweepID)
		mu.Unlock()
	}
	jobs := []Job{
		{Design: Tagless, Workload: "sphinx3", Options: o},
		{Design: SRAMTag, Workload: "sphinx3", Options: o},
	}
	for i := 0; i < 2; i++ {
		if _, err := RemoteSweep(context.Background(), url, jobs, o); err != nil {
			t.Fatal(err)
		}
	}
	if len(ids) != 2 || ids[0] == "" || ids[0] == ids[1] {
		t.Fatalf("accepted sweep IDs = %q, want two distinct non-empty IDs", ids)
	}

	wantCat := []string{telemetry.CatSimulated, telemetry.CatCached}
	for run, id := range ids {
		spans := fetchTrace(t, url, id)
		umbrellas := map[int]chromeSpan{}
		var sweepSpan bool
		for _, s := range spans {
			if s.Ph != "X" {
				t.Errorf("sweep %s: event %q has ph %q, want X (complete)", id, s.Name, s.Ph)
			}
			switch s.Cat {
			case telemetry.CatCached, telemetry.CatSimulated:
				if s.Cat != wantCat[run] {
					t.Errorf("sweep %s: job span %q is cat %q, want %q", id, s.Name, s.Cat, wantCat[run])
				}
				if _, dup := umbrellas[s.TID]; dup {
					t.Errorf("sweep %s: two umbrella spans on lane %d", id, s.TID)
				}
				umbrellas[s.TID] = s
			case telemetry.CatSweep:
				if strings.HasPrefix(s.Name, "sweep ") {
					sweepSpan = true
					if s.TID != 0 {
						t.Errorf("sweep %s: sweep-level span on lane %d, want 0", id, s.TID)
					}
				}
			}
		}
		if len(umbrellas) != len(jobs) {
			t.Errorf("sweep %s: %d umbrella job spans, want %d", id, len(umbrellas), len(jobs))
		}
		if !sweepSpan {
			t.Errorf("sweep %s: no sweep-level span", id)
		}
		for _, s := range spans {
			if s.Cat != telemetry.CatPhase || s.TID == 0 {
				continue
			}
			u, ok := umbrellas[s.TID]
			if !ok {
				t.Errorf("sweep %s: phase %q on lane %d has no umbrella span", id, s.Name, s.TID)
				continue
			}
			if s.TS < u.TS || s.TS+s.Dur > u.TS+u.Dur {
				t.Errorf("sweep %s: phase %q [%d,%d] not nested in %q [%d,%d]",
					id, s.Name, s.TS, s.TS+s.Dur, u.Name, u.TS, u.TS+u.Dur)
			}
		}
		if run == 0 {
			for _, want := range []string{"queued", "cache-lookup", "simulate", "encode", "streamed"} {
				found := false
				for _, s := range spans {
					if s.Name == want {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("cold sweep %s: no %q phase span", id, want)
				}
			}
		}
	}

	// /v1/trace with no sweep parameter returns the latest trace;
	// unknown IDs are a 404.
	latest := fetchTrace(t, url, "")
	if len(latest) == 0 {
		t.Error("latest trace is empty")
	}
	if _, err := RemoteTrace(context.Background(), url, "nope"); err == nil {
		t.Error("RemoteTrace for an unknown sweep should fail")
	}

	// /v1/sweeps lists both sweeps, newest first, as finished.
	resp, err := http.Get(url + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr struct {
		Sweeps []struct {
			ID    string `json:"id"`
			State string `json:"state"`
			Jobs  int    `json:"jobs"`
		} `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Sweeps) != 2 {
		t.Fatalf("/v1/sweeps listed %d sweeps, want 2", len(sr.Sweeps))
	}
	if sr.Sweeps[0].ID != ids[1] || sr.Sweeps[1].ID != ids[0] {
		t.Errorf("/v1/sweeps order = %s, %s; want newest first %s, %s",
			sr.Sweeps[0].ID, sr.Sweeps[1].ID, ids[1], ids[0])
	}
	for _, sw := range sr.Sweeps {
		if sw.State != telemetry.StateOK || sw.Jobs != len(jobs) {
			t.Errorf("sweep %s: state=%s jobs=%d, want ok/%d", sw.ID, sw.State, sw.Jobs, len(jobs))
		}
	}
}

// syncBuffer is a mutex-guarded buffer for capturing the server's
// structured log stream from its handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSweepdStructuredLogs pins the JSON-lines log stream: every line
// parses, the sweep summary line carries the fields an operator greps
// for, and HTTP requests are logged with route and status.
func TestSweepdStructuredLogs(t *testing.T) {
	svc, url := newTestSweepServer(t, 0, 0)
	var logs syncBuffer
	svc.SetLogOutput(&logs)

	o := remoteTestOpts()
	jobs := []Job{{Design: Tagless, Workload: "sphinx3", Options: o}}
	if _, err := RemoteSweep(context.Background(), url, jobs, o); err != nil {
		t.Fatal(err)
	}
	if _, err := RemoteStats(context.Background(), url); err != nil {
		t.Fatal(err)
	}

	var sweepLine, httpLine map[string]any
	sc := bufio.NewScanner(strings.NewReader(logs.String()))
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("log line is not valid JSON: %v\n%s", err, sc.Text())
		}
		switch obj["event"] {
		case "sweep":
			sweepLine = obj
		case "http":
			if obj["route"] == "/v1/stats" {
				httpLine = obj
			}
		}
	}
	if sweepLine == nil {
		t.Fatalf("no sweep log line in:\n%s", logs.String())
	}
	for _, key := range []string{"ts", "sweep_id", "peer", "jobs", "workers",
		"cached", "simulated", "cache_hits", "cache_misses", "duration_ms", "outcome"} {
		if _, ok := sweepLine[key]; !ok {
			t.Errorf("sweep log line missing %q: %v", key, sweepLine)
		}
	}
	if sweepLine["outcome"] != telemetry.StateOK {
		t.Errorf("sweep outcome = %v, want ok", sweepLine["outcome"])
	}
	if sweepLine["jobs"] != 1.0 || sweepLine["simulated"] != 1.0 {
		t.Errorf("sweep line jobs/simulated = %v/%v, want 1/1",
			sweepLine["jobs"], sweepLine["simulated"])
	}
	if httpLine == nil {
		t.Fatalf("no http log line for /v1/stats in:\n%s", logs.String())
	}
	if httpLine["method"] != "GET" || httpLine["status"] != 200.0 {
		t.Errorf("http line = %v, want GET 200", httpLine)
	}
}

// TestSweepdDrainRetryAfter pins the drain contract addition: both the
// sweep refusal and the draining health check tell clients when to come
// back.
func TestSweepdDrainRetryAfter(t *testing.T) {
	started, release := blockSimulations(t)
	svc, url := newTestSweepServer(t, 0, 0)

	o := remoteTestOpts()
	jobs := []Job{{Design: Tagless, Workload: "sphinx3", Options: o}}
	done := make(chan error, 1)
	go func() {
		_, err := RemoteSweep(context.Background(), url, jobs, o)
		done <- err
	}()
	<-started
	drained := make(chan struct{})
	go func() {
		svc.Drain()
		close(drained)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Status       string `json:"status"`
			ModelVersion int    `json:"model_version"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if decErr != nil {
			t.Fatalf("healthz is not JSON: %v", decErr)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("draining healthz has no Retry-After header")
			}
			if health.Status != "draining" {
				t.Errorf("healthz status = %q, want draining", health.Status)
			}
			break
		}
		if health.Status != "ok" || health.ModelVersion != ModelVersion() {
			t.Errorf("healthz = %+v, want ok/model %d", health, ModelVersion())
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}

	body, err := json.Marshal(map[string]any{"workloads": []string{"sphinx3"}, "designs": []string{"Tagless"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining sweep refusal has no Retry-After header")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight sweep failed during drain: %v", err)
	}
	<-drained
}

// TestSweepdStreamEchoesSweepID pins the protocol addition: the result
// stream's done event repeats the sweep ID the accepted event assigned,
// and result events carry the cached flag on a warm replay.
func TestSweepdStreamEchoesSweepID(t *testing.T) {
	_, url := newTestSweepServer(t, 0, 0)
	o := remoteTestOpts()
	submit := func() (accepted, done string, cached bool) {
		t.Helper()
		body, err := json.Marshal(&sweepapi.Request{
			Jobs:    []sweepapi.Job{{Workload: "sphinx3", Design: "cTLB"}},
			Options: wireOptions(o),
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			var ev struct {
				Type    string `json:"type"`
				SweepID string `json:"sweep_id"`
				Cached  bool   `json:"cached"`
			}
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("stream line is not JSON: %v\n%s", err, sc.Text())
			}
			switch ev.Type {
			case "accepted":
				accepted = ev.SweepID
			case "result":
				cached = ev.Cached
			case "done":
				done = ev.SweepID
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return accepted, done, cached
	}
	acc1, done1, cached1 := submit()
	if acc1 == "" || acc1 != done1 {
		t.Errorf("cold stream: accepted id %q, done id %q; want matching non-empty", acc1, done1)
	}
	if cached1 {
		t.Error("cold result flagged cached")
	}
	acc2, done2, cached2 := submit()
	if acc2 == "" || acc2 != done2 || acc2 == acc1 {
		t.Errorf("warm stream: accepted id %q, done id %q; want fresh matching id", acc2, done2)
	}
	if !cached2 {
		t.Error("warm result not flagged cached")
	}
}
