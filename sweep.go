package taglessdram

import (
	"context"
	"fmt"

	"taglessdram/internal/resultcache"
	"taglessdram/internal/sweep"
)

// Job names one simulation of a sweep: a cache design, a workload and the
// options to run it under.
type Job struct {
	Design   Design
	Workload string
	Options  Options
}

// SweepProgress is the snapshot passed to Options.Progress after each
// simulation of a sweep completes: jobs done out of total, elapsed wall
// time and an extrapolated ETA.
type SweepProgress = sweep.Progress

// Sweep runs every job with at most `workers` simulations in flight
// (0 = runtime.GOMAXPROCS(0), 1 = serial) and returns one Result per job
// in submission order, regardless of completion order. Each job builds a
// fully isolated simulation, so a parallel sweep produces bit-identical
// metrics to running the same jobs serially. The first job to fail
// cancels the sweep: queued jobs are skipped, in-flight jobs finish, and
// the lowest-index failure is returned. A panicking simulation surfaces
// as that job's error instead of killing the sweep.
func Sweep(ctx context.Context, jobs []Job, workers int) ([]*Result, error) {
	return sweepRun(ctx, jobs, sweep.Options{Workers: workers})
}

// sweepRun maps Jobs onto the generic engine, tagging errors with the
// failing (workload, design) pair. Identical jobs in one sweep are
// deduplicated by fingerprint through a single-flight memo: the first
// occurrence simulates (or hits the result cache) and every duplicate —
// concurrent or later — receives a private clone of its Result instead
// of re-simulating.
func sweepRun(ctx context.Context, jobs []Job, opt sweep.Options) ([]*Result, error) {
	return sweepRunShared(ctx, jobs, opt, resultcache.NewFlight(), false, nil)
}

// sweepProbe observes per-job execution milestones inside
// sweepRunShared — the seam the sweep service's telemetry (per-phase
// histograms, span traces) hangs off. Callbacks fire from worker
// goroutines, concurrently across jobs but exactly once per milestone
// per job index; a nil probe costs one branch. All three callbacks must
// be set on a non-nil probe.
type sweepProbe struct {
	// jobStart fires when a worker picks the job up (end of its queue
	// wait).
	jobStart func(i int)
	// jobLookup fires after the job's result-cache lookup, with its
	// outcome. Jobs that skip the lookup (uncacheable options, no store,
	// deduplicated against a concurrent identical cell) never fire it.
	jobLookup func(i int, hit bool)
	// jobDone fires when the job's result is settled. cached means no
	// simulation ran for it: a store hit or a shared in-flight result.
	jobDone func(i int, cached bool, err error)
}

// sweepRunShared is sweepRun against a caller-owned single-flight memo,
// so concurrent sweeps can deduplicate identical cells across each other
// — the sweep service runs every request through one server-lifetime
// Flight. With forget set, each key is dropped from the memo as soon as
// its run completes: concurrent duplicates still share one execution,
// later ones are served by the persistent result cache, and the memo
// never pins every Result (or transient error) a long-running server
// has ever produced.
func sweepRunShared(ctx context.Context, jobs []Job, opt sweep.Options, flight *resultcache.Flight, forget bool, probe *sweepProbe) ([]*Result, error) {
	// The engine's job type carries the submission index so the probe
	// can attribute milestones to sweep lanes.
	type ijob struct {
		i int
		j Job
	}
	idx := make([]ijob, len(jobs))
	for i, j := range jobs {
		idx[i] = ijob{i, j}
	}
	return sweep.Run(ctx, idx, func(_ context.Context, ij ijob) (*Result, error) {
		i, j := ij.i, ij.j
		// Per-run throughput summaries would arrive unserialized from
		// worker goroutines; the sweep engine's own OnProgress is the
		// single reporting channel for sweeps. Likewise per-job metric
		// sinks and trace writers would interleave across workers: the
		// sweep-level MetricsSink (called in submission order after the
		// sweep) is the structured-export channel, and event tracing is
		// a single-run affair. Shared Checkpoints and ResultCache stores
		// deliberately pass through: both are concurrency-safe, and
		// sweeps are exactly where warm-once and replay-instead-of-rerun
		// pay off.
		j.Options.Progress = nil
		j.Options.MetricsSink = nil
		j.Options.TraceEvents = nil
		j.Options.OnSweepAccepted = nil
		if probe != nil {
			probe.jobStart(i)
		}
		run := func(o Options) (*Result, error) {
			r, err := Run(j.Design, j.Workload, o)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", j.Workload, j.Design, err)
			}
			return r, nil
		}
		finish := func(r *Result, cached bool, err error) (*Result, error) {
			if probe != nil {
				probe.jobDone(i, cached, err)
			}
			return r, err
		}
		if !j.Options.cacheable() {
			r, err := run(j.Options)
			return finish(r, false, err)
		}
		key, pre, err := j.fingerprint()
		if err != nil {
			// Not fingerprintable (e.g. invalid options, unknown
			// workload): fall through and let Run report the error.
			r, err := run(j.Options)
			return finish(r, false, err)
		}
		// hit is only written when this goroutine executes the flight
		// body itself (shared == false), so the read below never races.
		hit := false
		r, shared, err := flight.Do(key, func() (*Result, error) {
			store := j.Options.ResultCache
			if store == nil {
				return run(j.Options)
			}
			// The read-through lives here rather than inside Run so the
			// lookup and the simulation are separately observable — the
			// store counts exactly one Get per non-deduplicated job,
			// same as before.
			if cached, ok := store.Get(key); ok {
				hit = true
				if probe != nil {
					probe.jobLookup(i, true)
				}
				return cached, nil
			}
			if probe != nil {
				probe.jobLookup(i, false)
			}
			o := j.Options
			o.ResultCache = nil
			fresh, err := run(o)
			if err != nil {
				return nil, err
			}
			if err := store.Put(key, pre, fresh); err != nil {
				return fresh, fmt.Errorf("%s/%v: taglessdram: result cache: %w", j.Workload, j.Design, err)
			}
			return fresh, nil
		})
		if forget {
			// Idempotent: whichever of the sharers gets here first drops
			// the memo entry; waiters already inside the call still share
			// its result.
			flight.Forget(key)
		}
		if err != nil || !shared {
			return finish(r, hit, err)
		}
		// A shared result is owned by another job's slot; hand this job
		// its own deep copy so the two Results stay independent.
		r, cerr := resultcache.Clone(r)
		return finish(r, true, cerr)
	}, opt)
}

// runJobs is the figure/table runners' shared entry point: the fan-out
// width and progress callback come from the sweep's own Options, and the
// caller's context cancels the sweep (queued jobs are skipped, in-flight
// jobs finish). When the sweep-level Options name a Server, the whole
// grid is shipped to that sweep service instead of simulating locally —
// the service's results are bit-identical, so everything downstream of
// runJobs is oblivious to where the cells ran. When the sweep-level
// Options carry a MetricsSink, every completed Result is delivered to it
// in submission order after the sweep finishes — the order (and
// therefore any serialized output) is independent of Workers.
func runJobs(ctx context.Context, o Options, jobs []Job) ([]*Result, error) {
	var results []*Result
	var err error
	if o.Server != "" {
		results, err = RemoteSweep(ctx, o.Server, jobs, o)
	} else {
		results, err = sweepRun(ctx, jobs, o.sweepOptions())
	}
	if err == nil && o.MetricsSink != nil {
		for _, r := range results {
			o.MetricsSink(r)
		}
	}
	return results, err
}

// sweepOptions extracts the engine knobs from simulation options.
func (o Options) sweepOptions() sweep.Options {
	return sweep.Options{Workers: o.Workers, OnProgress: o.Progress}
}
