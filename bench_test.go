package taglessdram

// One benchmark per table and figure of the paper's evaluation section.
// Each iteration regenerates the artifact at a reduced instruction budget
// and reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the whole reproduction. cmd/experiments produces the same rows
// at full budget with markdown formatting.

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// benchOpts uses the calibrated full budgets; one benchmark iteration is a
// few seconds of wall time.
func benchOpts() Options {
	o := DefaultOptions()
	o.Warmup, o.Measure = 3_000_000, 3_000_000
	return o
}

// BenchmarkTable1AccessCases regenerates Table 1: the four (TLB, cache)
// access cases and their measured handler costs.
func BenchmarkTable1AccessCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunTable1(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.MeanCycles, fmt.Sprintf("cyc/%s-%s", r.TLB, r.Cache))
		}
	}
}

// BenchmarkTable2DesignComparison regenerates Table 2: the measured
// design-requirement comparison of the SRAM-tag and tagless caches.
func BenchmarkTable2DesignComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunTable2(context.Background(), benchOpts(), "MIX3")
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.L3HitRate*100, fmt.Sprintf("hit%%/%v", r.Design))
			b.ReportMetric(r.AvgL3Latency, fmt.Sprintf("L3cyc/%v", r.Design))
			b.ReportMetric(r.TagStorageMB, fmt.Sprintf("tagMB/%v", r.Design))
		}
	}
}

// BenchmarkTable6TagParameters regenerates Table 6: SRAM tag size and
// latency versus cache size, from the CACTI-derived model.
func BenchmarkTable6TagParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := RunTable6()
		for _, r := range rows {
			b.ReportMetric(float64(r.LatencyCyc), fmt.Sprintf("cyc/%dMB", r.CacheSize>>20))
		}
	}
}

// BenchmarkFigure7SingleProgrammed regenerates Figure 7 over a
// representative subset of the SPEC programs (the full sweep is in
// cmd/experiments) and reports geomean normalized IPC per design.
func BenchmarkFigure7SingleProgrammed(b *testing.B) {
	programs := []string{"sphinx3", "libquantum", "GemsFDTD"}
	for i := 0; i < b.N; i++ {
		var rows []DesignRow
		for _, wl := range programs {
			r, err := runAcrossDesigns(context.Background(), wl, benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, r...)
		}
		for _, d := range Designs() {
			b.ReportMetric(GeoMeanNormIPC(rows, d), fmt.Sprintf("normIPC/%v", d))
			b.ReportMetric(GeoMeanNormEDP(rows, d), fmt.Sprintf("normEDP/%v", d))
		}
	}
}

// BenchmarkFigure8L3Latency regenerates Figure 8: the average L3 access
// latency of the SRAM-tag versus tagless cache.
func BenchmarkFigure8L3Latency(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		for _, wl := range []string{"sphinx3", "libquantum", "GemsFDTD"} {
			rs, err := Run(SRAMTag, wl, o)
			if err != nil {
				b.Fatal(err)
			}
			rt, err := Run(Tagless, wl, o)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rs.AvgL3Latency, "SRAMcyc/"+wl)
			b.ReportMetric(rt.AvgL3Latency, "cTLBcyc/"+wl)
		}
	}
}

// BenchmarkFigure9MultiProgrammed regenerates Figure 9 on two mixes.
func BenchmarkFigure9MultiProgrammed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rows []DesignRow
		for _, wl := range []string{"MIX1", "MIX5"} {
			r, err := runAcrossDesigns(context.Background(), wl, benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, r...)
		}
		for _, d := range Designs() {
			b.ReportMetric(GeoMeanNormIPC(rows, d), fmt.Sprintf("normIPC/%v", d))
		}
	}
}

// BenchmarkFigure10CacheSize regenerates Figure 10: the DRAM-cache size
// sweep (256MB/512MB/1GB at paper scale) normalized to bank interleaving.
func BenchmarkFigure10CacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunFigure10(context.Background(), benchOpts(), []string{"MIX5"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.CTLBNorm, fmt.Sprintf("cTLB-vs-BI/%dMB", r.CacheMB<<6))
			b.ReportMetric(r.SRAMNorm, fmt.Sprintf("SRAM-vs-BI/%dMB", r.CacheMB<<6))
		}
	}
}

// BenchmarkFigure11Replacement regenerates Figure 11: FIFO versus LRU
// victim selection for the tagless cache.
func BenchmarkFigure11Replacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunFigure11(context.Background(), benchOpts(), []string{"MIX1", "MIX5"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.LRUGain*100, "LRUgain%/"+r.Workload)
		}
	}
}

// BenchmarkFigure12MultiThreaded regenerates Figure 12 on the PARSEC
// workloads with the strongest published signal.
func BenchmarkFigure12MultiThreaded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rows []DesignRow
		for _, wl := range []string{"streamcluster", "swaptions"} {
			r, err := runAcrossDesigns(context.Background(), wl, benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, r...)
		}
		for _, r := range rows {
			if r.Design == Tagless {
				b.ReportMetric(r.NormIPC, "normIPC/"+r.Workload)
			}
		}
	}
}

// BenchmarkFigure13NonCacheable regenerates Figure 13: the non-cacheable
// page case study on GemsFDTD.
func BenchmarkFigure13NonCacheable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := RunFigure13(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.GainPC, "NCgain%")
	}
}

// BenchmarkAMATModel cross-checks the Equations 1–5 closed forms against
// the simulator.
func BenchmarkAMATModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunAMATCheck(context.Background(), benchOpts(), []string{"sphinx3"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SimGap, "simGapCyc/"+r.Workload)
			b.ReportMetric(r.ModelGap, "modelGapCyc/"+r.Workload)
		}
	}
}

// BenchmarkAblationAsyncEviction quantifies the free-queue design choice:
// asynchronous eviction versus write-backs on the access path.
func BenchmarkAblationAsyncEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.CacheMB = 2 // force eviction pressure
		rAsync, err := Run(Tagless, "milc", o)
		if err != nil {
			b.Fatal(err)
		}
		o.SynchronousEviction = true
		rSync, err := Run(Tagless, "milc", o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rAsync.IPC, "IPC/async")
		b.ReportMetric(rSync.IPC, "IPC/sync")
	}
}

// BenchmarkAblationCachedGIPT quantifies the conservative GIPT-update cost
// (two off-package writes) against an MMU-cached GIPT.
func BenchmarkAblationCachedGIPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		rCons, err := Run(Tagless, "GemsFDTD", o)
		if err != nil {
			b.Fatal(err)
		}
		o.CachedGIPT = true
		rCached, err := Run(Tagless, "GemsFDTD", o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rCons.IPC, "IPC/conservative")
		b.ReportMetric(rCached.IPC, "IPC/cachedGIPT")
	}
}

// BenchmarkAblationAlpha sweeps the free-block pool depth (the paper sets
// α=1 following its heterogeneous-memory citation).
func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alpha := range []int{1, 8, 64} {
			o := benchOpts()
			o.CacheMB = 2 // eviction pressure so α matters
			o.Alpha = alpha
			r, err := Run(Tagless, "milc", o)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.IPC, fmt.Sprintf("IPC/alpha=%d", alpha))
		}
	}
}

// BenchmarkAblationRefresh measures the cost of DRAM refresh blackouts,
// which the paper's Table 4 leaves unmodeled.
func BenchmarkAblationRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		r0, err := Run(Tagless, "sphinx3", o)
		if err != nil {
			b.Fatal(err)
		}
		o.Refresh = true
		r1, err := Run(Tagless, "sphinx3", o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r0.IPC, "IPC/no-refresh")
		b.ReportMetric(r1.IPC, "IPC/refresh")
	}
}

// BenchmarkExtensionSuperpages regenerates the Section 6 superpage study.
func BenchmarkExtensionSuperpages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunSuperpages(context.Background(), benchOpts(), []string{"lbm", "GemsFDTD"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.IPC, fmt.Sprintf("IPC/%s-%s", r.Workload, r.Config[:3]))
		}
	}
}

// BenchmarkExtensionSharedPages regenerates the Section 6 shared-page study.
func BenchmarkExtensionSharedPages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunSharedPages(context.Background(), benchOpts(), "MIX1", 0.15)
		if err != nil {
			b.Fatal(err)
		}
		for i, r := range rows {
			b.ReportMetric(r.IPC, fmt.Sprintf("IPC/cfg%d", i))
		}
	}
}

// BenchmarkExtensionTLBReach regenerates the victim-cache reach study.
func BenchmarkExtensionTLBReach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunTLBReach(context.Background(), benchOpts(), "mcf", []int{128, 512})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.VictimHitFrac*100, fmt.Sprintf("victim%%/tlb=%d", r.L2TLBEntries))
		}
	}
}

// BenchmarkAblationMLP sweeps the per-core MSHR window: the memory-level
// parallelism available to hide miss latency.
func BenchmarkAblationMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mshrs := range []int{2, 8, 32} {
			o := benchOpts()
			o.MSHRs = mshrs
			r, err := Run(NoL3, "milc", o)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.IPC, fmt.Sprintf("IPC/mshrs=%d", mshrs))
		}
	}
}

// BenchmarkAblationMemoryWalk compares the paper-style fixed walk cost
// against the memory-backed four-level walk model.
func BenchmarkAblationMemoryWalk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		r0, err := Run(Tagless, "mcf", o)
		if err != nil {
			b.Fatal(err)
		}
		o.MemoryWalk = true
		r1, err := Run(Tagless, "mcf", o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r0.IPC, "IPC/fixed-walk")
		b.ReportMetric(r1.IPC, "IPC/memory-walk")
	}
}

// BenchmarkSweepParallelVsSerial measures the sweep engine on a 10-job
// design grid at -j 1/2/4, reporting jobs/sec and the speedup over the
// serial path (1.0 by construction for j=1; near-linear on multicore
// hardware, ~1.0 on a single-CPU runner). Parallel results are
// bit-identical to serial ones — see TestParallelSweepMatchesSerial.
func BenchmarkSweepParallelVsSerial(b *testing.B) {
	o := DefaultOptions()
	o.Warmup, o.Measure = 100_000, 100_000
	var jobs []Job
	for _, wl := range []string{"sphinx3", "libquantum"} {
		for _, d := range Designs() {
			jobs = append(jobs, Job{Design: d, Workload: wl, Options: o})
		}
	}
	var serialPer time.Duration
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Sweep(context.Background(), jobs, w); err != nil {
					b.Fatal(err)
				}
			}
			per := b.Elapsed() / time.Duration(b.N)
			if w == 1 {
				serialPer = per
			}
			b.ReportMetric(float64(len(jobs))/per.Seconds(), "jobs/s")
			if serialPer > 0 && per > 0 {
				b.ReportMetric(serialPer.Seconds()/per.Seconds(), "speedup-vs-j1")
			}
		})
	}
}

// BenchmarkSingleRun is the allocation and latency baseline for one
// isolated simulation — the unit of work every sweep job performs. Run
// with -benchmem to track the per-job allocation footprint.
func BenchmarkSingleRun(b *testing.B) {
	o := DefaultOptions()
	o.Warmup, o.Measure = 100_000, 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Tagless, "sphinx3", o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per second of wall time), the engineering metric for the
// substrate itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	o := benchOpts()
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		r, err := Run(Tagless, "sphinx3", o)
		if err != nil {
			b.Fatal(err)
		}
		instr += r.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
