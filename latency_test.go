package taglessdram

import "testing"

// TestLatencyAttributionAllDesigns runs every registered organization
// end-to-end and checks the hard conservation invariants: zero residue in
// both scopes, one commit per L3 access and per TLB miss, and the
// attributed stall totals reproducing AvgL3Latency exactly.
func TestLatencyAttributionAllDesigns(t *testing.T) {
	o := quickOpts()
	for _, d := range Organizations() {
		r, err := Run(d, "sphinx3", o)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if err := CheckLatencyAttribution(r); err != nil {
			t.Errorf("%v: %v", d, err)
		}
		if r.Latency.L3Lat.Count() != r.L3Accesses {
			t.Errorf("%v: histogram count %d, want %d L3 accesses", d, r.Latency.L3Lat.Count(), r.L3Accesses)
		}
		if p50, p99 := r.Latency.L3Lat.Quantile(50), r.Latency.L3Lat.Quantile(99); p99 < p50 {
			t.Errorf("%v: p99 %g < p50 %g", d, p99, p50)
		}
	}
}

// TestLatencySelfCheckModel is the calibration check from the issue: on
// sphinx3, the per-component means reconstructed from the measured
// breakdown, fed through the paper's Equations 1–5 closed forms, must
// reproduce the measured average L3 latency within 2%.
func TestLatencySelfCheckModel(t *testing.T) {
	o := DefaultOptions()
	o.Warmup, o.Measure = 500_000, 1_000_000
	for _, d := range []Design{Tagless, SRAMTag} {
		r, err := Run(d, "sphinx3", o)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if err := CheckLatencyModel(r, 0.02); err != nil {
			t.Errorf("%v: %v", d, err)
		}
	}
}

// TestLatencyComponentNames pins the stable metric-key component names.
func TestLatencyComponentNames(t *testing.T) {
	names := LatencyComponentNames()
	want := []string{
		"ctlb_lookup", "pt_walk", "gipt_update", "victim_probe",
		"inpkg_queue", "inpkg_service", "offpkg_queue", "offpkg_service",
		"writeback", "ptwalk_guest", "ptwalk_host", "tlb_shootdown",
	}
	if len(names) != len(want) {
		t.Fatalf("components = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("component %d = %q, want %q", i, names[i], want[i])
		}
	}
}
