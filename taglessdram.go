// Package taglessdram reproduces "A Fully Associative, Tagless DRAM Cache"
// (Lee et al., ISCA 2015) as a cycle-level simulation library.
//
// The package is a facade over the internal simulator. A single run looks
// like:
//
//	opts := taglessdram.DefaultOptions()
//	r, err := taglessdram.Run(taglessdram.Tagless, "sphinx3", opts)
//
// and each figure or table of the paper's evaluation has a matching
// RunFigureN/RunTableN function that returns typed rows ready to print.
//
// Capacities are scaled down by Options.Shift (default 64×: the paper's
// 1GB cache becomes 16MB, workload footprints shrink equally) so full
// sweeps run in seconds while capacity ratios — cache vs footprint vs TLB
// reach — track the paper. Timings, energies and bandwidths are unscaled.
package taglessdram

import (
	"fmt"
	"io"
	"time"

	"taglessdram/internal/config"
	"taglessdram/internal/obs"
	"taglessdram/internal/org"
	"taglessdram/internal/resultcache"
	"taglessdram/internal/sim"
	"taglessdram/internal/system"
	"taglessdram/internal/trace"
	"taglessdram/internal/vm"
)

// Design selects a DRAM-cache organization (Section 4 of the paper).
type Design = config.L3Design

// The five evaluated organizations.
const (
	// NoL3 is the baseline: off-package DRAM only.
	NoL3 = config.NoL3
	// BankInterleave ("BI") maps in-package DRAM into the physical
	// address space with OS-oblivious interleaving.
	BankInterleave = config.BankInterleave
	// SRAMTag is the page-based cache with an on-die SRAM tag array.
	SRAMTag = config.SRAMTag
	// Tagless is the proposed cTLB-based design.
	Tagless = config.Tagless
	// Ideal stores all data in-package.
	Ideal = config.Ideal
	// AlloyBlock is the block-based (tags-in-DRAM, direct-mapped) design
	// class of Table 2, not part of the paper's five plotted designs.
	AlloyBlock = config.AlloyBlock
	// Banshee is a page-based cache with frequency-based replacement and
	// bandwidth-efficient fills (Yu et al., see PAPERS.md) — a baseline
	// from follow-up work, not one of the paper's five plotted designs.
	Banshee = config.Banshee
)

// Replacement policies for the tagless cache (Figure 11; CLOCK is the
// second-chance LRU approximation the paper names in Section 5.2).
const (
	FIFO  = config.FIFO
	LRU   = config.LRU
	CLOCK = config.CLOCK
)

// Result is re-exported from the system package: one measured run.
type Result = system.Result

// Options controls a simulation run.
type Options struct {
	// Shift scales capacities and footprints down by 1<<Shift.
	Shift uint
	// Warmup and Measure are per-core instruction budgets.
	Warmup  uint64
	Measure uint64
	// Seed varies the synthetic traces.
	Seed uint64
	// CacheMB overrides the scaled DRAM-cache capacity in MB (0 = the
	// scaled default, 1GB>>Shift).
	CacheMB int64
	// Policy selects the tagless victim policy (FIFO default).
	Policy config.ReplacementPolicy
	// NCAccessThreshold enables non-cacheable-page classification for
	// pages an offline profile marks low-reuse (Section 5.4; 32 in the
	// paper's case study).
	NCAccessThreshold int
	// SynchronousEviction and CachedGIPT enable the two ablations.
	SynchronousEviction bool
	CachedGIPT          bool
	// SharedAliasTable enables Section 6's physical→cache alias table
	// for inter-process shared pages (default: such pages are marked
	// non-cacheable, the solution the paper adopts in Section 3.5).
	SharedAliasTable bool
	// HotFilterThreshold enables the online CHOP-style hot-page filter:
	// pages start non-cacheable and are promoted after this many
	// accesses. Needs no offline profile, unlike NCAccessThreshold.
	HotFilterThreshold int
	// Superpages maps application regions as superpages (Section 6).
	// The region size is the paper's 2MB scaled by Shift (at the default
	// 64x scale: 8 base pages), so region-to-cache ratios track a 2MB
	// superpage against a 1GB cache.
	Superpages bool
	// Refresh enables DRAM refresh modeling (tREFI/tRFC blackouts) on
	// both devices. Off by default: the paper's Table 4 has no refresh
	// parameters.
	Refresh bool
	// L2TLBEntries overrides the per-core L2 TLB capacity (0 = the
	// paper's 512), for TLB-reach sensitivity studies.
	L2TLBEntries int
	// Alpha overrides the number of free blocks kept available (0 = the
	// paper's 1).
	Alpha int
	// MemoryWalk models page-table walks as memory traffic (MMU walk
	// caches + leaf PTE reads) instead of the paper-style fixed cost.
	// Legacy switch: it selects the "pwc" walk model when WalkModel is
	// empty.
	MemoryWalk bool
	// WalkModel selects the page-table-walk timing model by name:
	// "fixed" (the paper's constant cost, the default), "pwc"
	// (walk-cache + leaf PTE memory traffic), or "nested" (virtualized
	// guest→host two-dimensional walk, up to 24 memory references per
	// miss). Empty defers to MemoryWalk.
	WalkModel string
	// PWCHitCycles is the per-level page-walk-cache hit cost of the pwc
	// and nested models (the old hardcoded 2-cycle upper-level cost).
	PWCHitCycles int
	// TLBTopology selects the TLB organization: "private" (per-core
	// two-level hierarchy, the default) or "shared" (per-core L1s over
	// one shared ASID-tagged L2 with cross-core invalidation traffic).
	TLBTopology string
	// CtxSwitchRefs, when positive, context-switches each core every
	// that many trace references, modeling multi-tenant TLB pressure.
	CtxSwitchRefs uint64
	// CtxSwitchFlush selects the context-switch policy: true shoots down
	// the core's own shared-L2 entries (quiesced flush); false retains
	// them under ASID tagging and injects foreign-tenant entries instead.
	CtxSwitchFlush bool
	// MSHRs overrides the per-core outstanding-miss window (0 = the
	// default 8), for memory-level-parallelism sensitivity studies.
	MSHRs int
	// ExtraDesigns appends organizations beyond the paper's five to the
	// design-comparison grids (Figures 7, 9, 12) — e.g. AlloyBlock or
	// Banshee. The paper's plots are unchanged when empty.
	ExtraDesigns []Design
	// Workers bounds how many simulations of a sweep (Sweep, or any
	// RunFigureN/RunTableN grid) run concurrently: 0 = GOMAXPROCS,
	// 1 = serial. It never changes a simulation's metrics — every job is
	// fully isolated, so parallel and serial sweeps are bit-identical —
	// and has no effect on a single Run. With Server set it becomes the
	// requested remote fan-out width (the service clamps it to its own
	// ceiling).
	Workers int
	// Server, when non-empty, is the base URL of a sweepd sweep service
	// (cmd/sweepd); every RunFigureN/RunTableN sweep is then submitted
	// there via RemoteSweep instead of simulating in-process. Results
	// come back through the result cache's own codec, so remote sweeps
	// are byte-identical to local ones. Studies that must build their
	// workloads by hand (RunSharedPages, RunFairness's alone-runs) still
	// simulate locally. Non-semantic: where a job runs never changes its
	// Result.
	Server string
	// Progress, when non-nil, is called after each simulation of a sweep
	// completes (done/total counts, elapsed wall time, ETA). Calls are
	// serialized but may come from worker goroutines. A single Run calls
	// it once, after the simulation finishes, with a one-line throughput
	// summary (trace references and kernel events per wall-clock second)
	// in the Summary field.
	Progress func(SweepProgress)
	// OnSweepAccepted, when non-nil, is called once per remote sweep as
	// the sweep service accepts the grid, with the server-assigned sweep
	// ID — the handle for the service's span trace (GET /v1/trace) — and
	// the sweep's validated shape. In-process sweeps never call it.
	// Non-semantic: a pure observer.
	OnSweepAccepted func(SweepAccepted)
	// EpochRefs enables epoch-resolved sampling: every EpochRefs measured
	// references the machine snapshots its counters and the Result carries
	// the per-epoch deltas in Result.Epochs (0 = off, the default; the hot
	// path stays allocation-free when off). Sampling is observational only
	// and never changes a run's metrics.
	EpochRefs uint64
	// EpochCapacity bounds the epoch ring; once full, older epochs are
	// dropped and Result.EpochsDropped counts them (0 = a generous
	// default, obs.DefaultCapacity).
	EpochCapacity int
	// MetricsSink, when non-nil, receives every completed Result: once
	// after a single Run, and once per job — in submission order, after
	// all jobs finish — for a sweep. Use WriteMetricsJSON inside the sink
	// to stream structured metrics; the submission-order guarantee makes
	// the output byte-identical across Workers settings.
	MetricsSink func(*Result)
	// TraceEvents, when non-nil, receives a Chrome trace_event JSON
	// document (chrome://tracing, Perfetto) of the first TraceEventLimit
	// kernel events of the run. Single Run only; sweeps ignore it (jobs
	// would interleave on the shared writer).
	TraceEvents io.Writer
	// TraceEventLimit bounds the trace window (0 = sim.DefaultTraceLimit).
	TraceEventLimit int
	// Sample enables SMARTS-style sampled simulation: short cycle-accurate
	// measurement windows with functional fast-forward covering the gaps.
	// The Result's counters cover only the accurate windows and
	// Result.Sampled carries the IPC estimate ± CI95. Nil (the default)
	// runs every reference cycle-accurately.
	Sample *SampleSpec
	// CheckpointSave writes the machine's post-warmup state to this file
	// before the measured phase, for later reuse via CheckpointLoad.
	// Any checkpoint option switches the run to the Warmup/Measure pair,
	// which quiesces the event kernel at the phase boundary (in-flight
	// events have no serialized form), so checkpointed results are
	// byte-identical to each other but not to a plain Run.
	CheckpointSave string
	// CheckpointLoad restores post-warmup state from this file instead of
	// running the warm-up phase. The machine configuration and workload
	// must match the saving run exactly.
	CheckpointLoad string
	// Checkpoints, when non-nil, is a shared in-memory warm-state store:
	// sweeps warm each (workload, configuration, warm-up, seed)
	// combination once and every later matching job skips straight to the
	// measured phase. Safe for concurrent workers.
	Checkpoints *CheckpointStore
	// ResultCache, when non-nil, is a persistent content-addressed store
	// of completed Results: before simulating, Run looks up the job's
	// fingerprint (Job.Fingerprint — model version, design, workload +
	// trace digest, semantic options, resolved configuration) and replays
	// a cached Result byte-identically instead of re-simulating; fresh
	// results are stored for future runs. Sound because runs are
	// bit-reproducible. Runs that load/save checkpoint files or request
	// kernel-event traces bypass the cache. Safe for concurrent workers
	// and processes sharing one directory.
	ResultCache *ResultCache
}

// ResultCache is the persistent content-addressed result store (see
// Options.ResultCache), re-exported from internal/resultcache.
type ResultCache = resultcache.Store

// CacheStats are a result cache's lifetime hit/miss/store counters.
type CacheStats = resultcache.Stats

// OpenResultCache creates (if needed) and opens a result cache rooted at
// the given directory.
func OpenResultCache(dir string) (*ResultCache, error) {
	return resultcache.Open(dir)
}

// DefaultOptions returns the experiments' standard scale: 64× shrink,
// 3M warmup + 3M measured instructions per core.
func DefaultOptions() Options {
	return Options{Shift: 6, Warmup: 3_000_000, Measure: 3_000_000, Seed: 1, PWCHitCycles: 2}
}

// configFor builds the machine configuration for a run.
func configFor(design Design, o Options) *config.SystemConfig {
	c := config.Default()
	c.Design = design
	c.InPkg.SizeBytes >>= o.Shift
	c.OffPkg.SizeBytes >>= o.Shift
	if o.CacheMB > 0 {
		c.CacheSize = o.CacheMB * config.MB
	} else {
		c.CacheSize >>= o.Shift
	}
	if c.CacheSize > c.InPkg.SizeBytes {
		c.InPkg.SizeBytes = c.CacheSize
	}
	c.Tagless.Policy = o.Policy
	c.Tagless.NCAccessThreshold = o.NCAccessThreshold
	c.Tagless.SynchronousEviction = o.SynchronousEviction
	c.Tagless.CachedGIPT = o.CachedGIPT
	c.Tagless.SharedAliasTable = o.SharedAliasTable
	c.Tagless.HotFilterThreshold = o.HotFilterThreshold
	if o.Superpages {
		sp := 512 >> o.Shift // 2MB at paper scale
		if sp < 2 {
			sp = 2
		}
		c.Tagless.SuperpagePages = sp
	}
	if o.Refresh {
		// DDR3-style refresh off-package; faster-bank refresh in-package.
		c.OffPkg.Timing.TREFIns, c.OffPkg.Timing.TRFCns = 7800, 350
		c.InPkg.Timing.TREFIns, c.InPkg.Timing.TRFCns = 3900, 260
	}
	if o.L2TLBEntries > 0 {
		c.L2TLB.Entries = o.L2TLBEntries
		if c.L2TLB.Entries < c.L2TLB.Ways {
			c.L2TLB.Ways = 1
		}
	}
	if o.Alpha > 0 {
		c.Tagless.Alpha = o.Alpha
	}
	c.MemoryWalk = o.MemoryWalk
	c.WalkModel = o.WalkModel
	c.PWCHitCycles = o.PWCHitCycles
	c.TLBTopology = o.TLBTopology
	c.CtxSwitchRefs = o.CtxSwitchRefs
	c.CtxSwitchFlush = o.CtxSwitchFlush
	if o.MSHRs > 0 {
		c.CPU.MSHRs = o.MSHRs
	}
	return c
}

// workloadFor resolves a workload name: a SPEC program (single-programmed,
// four SimPoint slices), MIX1–MIX8 (multi-programmed), or a PARSEC program
// (multi-threaded).
func workloadFor(name string, o Options) (system.Workload, error) {
	if _, ok := trace.Mixes()[name]; ok {
		return system.Mix(name, o.Shift, o.Seed)
	}
	for _, p := range trace.PARSECNames() {
		if p == name {
			return system.MultiThread(name, o.Shift, o.Seed)
		}
	}
	return system.SingleProgram(name, o.Shift, o.Seed)
}

// Run simulates one (design, workload) pair and returns its metrics.
// With Options.ResultCache set, a previously completed identical run is
// replayed from the cache instead of re-simulated — byte-identically,
// because every run is bit-reproducible.
func Run(design Design, workload string, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.Warmup == 0 {
		o.Warmup = o.Measure
	}
	start := time.Now()
	if o.ResultCache == nil || !o.cacheable() {
		return simulate(design, workload, o, start)
	}
	key, pre, err := (Job{Design: design, Workload: workload, Options: o}).fingerprint()
	if err != nil {
		return nil, err
	}
	if r, ok := o.ResultCache.Get(key); ok {
		if o.MetricsSink != nil {
			o.MetricsSink(r)
		}
		if o.Progress != nil {
			o.Progress(SweepProgress{
				Done: 1, Total: 1, Elapsed: time.Since(start),
				Summary: fmt.Sprintf("%s/%v: result cache hit", workload, design),
			})
		}
		return r, nil
	}
	r, err := simulate(design, workload, o, start)
	if err != nil {
		return nil, err
	}
	if err := o.ResultCache.Put(key, pre, r); err != nil {
		return r, fmt.Errorf("taglessdram: result cache: %w", err)
	}
	return r, nil
}

// simulateHook, when non-nil, observes every actual machine simulation.
// Test-only: the result-cache and single-flight regression tests count
// executions through it. Implementations must be safe for concurrent
// calls from sweep workers.
var simulateHook func(design Design, workload string)

// simulate builds the machine and executes the run — the cache-oblivious
// body of Run.
func simulate(design Design, workload string, o Options, start time.Time) (*Result, error) {
	if simulateHook != nil {
		simulateHook(design, workload)
	}
	w, err := workloadFor(workload, o)
	if err != nil {
		return nil, err
	}
	cfg := configFor(design, o)
	m, err := system.New(cfg, w)
	if err != nil {
		return nil, err
	}
	if o.EpochRefs > 0 {
		m.AttachSampler(obs.NewSampler(o.EpochRefs, o.EpochCapacity))
	}
	var tracer *sim.Tracer
	if o.TraceEvents != nil {
		tracer = sim.NewTracer(o.TraceEventLimit)
		m.SetTracer(tracer)
	}
	r, err := runMachine(m, cfg, workload, o)
	if err == nil && tracer != nil {
		if werr := tracer.WriteJSON(o.TraceEvents); werr != nil {
			return r, fmt.Errorf("taglessdram: writing trace events: %w", werr)
		}
	}
	if err == nil && o.MetricsSink != nil {
		o.MetricsSink(r)
	}
	if err == nil && o.Progress != nil {
		wall := time.Since(start)
		var refsPerSec, eventsPerSec float64
		if secs := wall.Seconds(); secs > 0 {
			refsPerSec = float64(r.References) / secs
			eventsPerSec = float64(r.KernelEvents) / secs
		}
		o.Progress(SweepProgress{
			Done: 1, Total: 1, Elapsed: wall,
			Summary: fmt.Sprintf("%s/%v: %.2fM refs/s, %.2fM events/s",
				workload, design, refsPerSec/1e6, eventsPerSec/1e6),
		})
	}
	return r, err
}

// runWorkload simulates an explicitly built workload — one the name
// resolver cannot produce, like the shared-page study's modified mixes
// or the fairness study's single-core alone-runs — with the same
// result-cache read-through as Run. The trace digest covers every
// per-core profile parameter, so modified workloads fingerprint soundly.
// These paths always execute the plain warm-up+measure pair; the
// checkpoint options don't apply and are cleared so the key reflects how
// the run actually executes. tag prefixes any simulation error.
func runWorkload(design Design, tag string, w system.Workload, o Options) (*Result, error) {
	if o.Warmup == 0 {
		o.Warmup = o.Measure
	}
	o.CheckpointSave, o.CheckpointLoad, o.Checkpoints = "", "", nil
	sim := func() (*Result, error) {
		if simulateHook != nil {
			simulateHook(design, w.Name)
		}
		m, err := system.New(configFor(design, o), w)
		if err != nil {
			return nil, err
		}
		if o.EpochRefs > 0 {
			m.AttachSampler(obs.NewSampler(o.EpochRefs, o.EpochCapacity))
		}
		r, err := m.Run(o.Warmup, o.Measure)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tag, err)
		}
		return r, nil
	}
	if o.ResultCache == nil || !o.cacheable() {
		return sim()
	}
	pre, err := preimageFor(design, w.Name, w, o)
	if err != nil {
		return sim()
	}
	key := resultcache.KeyOf(pre)
	if r, ok := o.ResultCache.Get(key); ok {
		return r, nil
	}
	r, err := sim()
	if err != nil {
		return nil, err
	}
	if err := o.ResultCache.Put(key, pre, r); err != nil {
		return r, fmt.Errorf("taglessdram: result cache: %w", err)
	}
	return r, nil
}

// SPECWorkloads lists the 11 single-programmed workloads (Figure 7 order).
func SPECWorkloads() []string { return trace.SPECNames() }

// MixWorkloads lists MIX1–MIX8 (Table 5).
func MixWorkloads() []string { return trace.MixNames() }

// PARSECWorkloads lists the four multi-threaded workloads (Figure 12).
func PARSECWorkloads() []string { return trace.PARSECNames() }

// Designs lists the five organizations in the paper's plot order.
func Designs() []Design { return config.AllDesigns() }

// Organizations lists every registered cache organization — the paper's
// five plus the extra baselines (AlloyBlock, Banshee) — in enum order.
func Organizations() []Design { return org.Registered() }

// Validate checks an Options value.
func (o Options) Validate() error {
	if o.Measure == 0 {
		return fmt.Errorf("taglessdram: Measure must be positive")
	}
	if o.Shift > 10 {
		return fmt.Errorf("taglessdram: Shift %d unreasonably large", o.Shift)
	}
	if o.Workers < 0 {
		return fmt.Errorf("taglessdram: Workers must be non-negative, got %d", o.Workers)
	}
	if o.EpochCapacity < 0 {
		return fmt.Errorf("taglessdram: EpochCapacity must be non-negative, got %d", o.EpochCapacity)
	}
	if o.TraceEventLimit < 0 {
		return fmt.Errorf("taglessdram: TraceEventLimit must be non-negative, got %d", o.TraceEventLimit)
	}
	if o.Sample != nil {
		if err := o.Sample.Validate(); err != nil {
			return err
		}
	}
	if o.CheckpointSave != "" && o.CheckpointLoad != "" {
		return fmt.Errorf("taglessdram: CheckpointSave and CheckpointLoad are mutually exclusive")
	}
	if o.WalkModel != "" && !registeredName(vm.RegisteredWalks(), o.WalkModel) {
		return fmt.Errorf("taglessdram: unknown walk model %q (have %v)", o.WalkModel, vm.RegisteredWalks())
	}
	if o.TLBTopology != "" && !registeredName(vm.RegisteredTopologies(), o.TLBTopology) {
		return fmt.Errorf("taglessdram: unknown TLB topology %q (have %v)", o.TLBTopology, vm.RegisteredTopologies())
	}
	if o.PWCHitCycles < 0 {
		return fmt.Errorf("taglessdram: PWCHitCycles must be non-negative, got %d", o.PWCHitCycles)
	}
	return nil
}

// registeredName reports whether name appears in a vm registry listing.
func registeredName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
