package taglessdram

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"taglessdram/internal/sweepapi"
)

// newTestSweepServer starts a sweep service over a fresh result cache.
func newTestSweepServer(t *testing.T, maxWorkers, maxJobs int) (*SweepServer, string) {
	t.Helper()
	store, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewSweepServer(store, maxWorkers, maxJobs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts.URL
}

// blockSimulations gates every machine simulation: the first one signals
// started, and all of them wait for release before proceeding. Tests use
// it to hold a sweep in-flight deterministically.
func blockSimulations(t *testing.T) (started chan struct{}, release chan struct{}) {
	t.Helper()
	started, release = make(chan struct{}), make(chan struct{})
	var once sync.Once
	prev := simulateHook
	simulateHook = func(d Design, w string) {
		if prev != nil {
			prev(d, w)
		}
		once.Do(func() { close(started) })
		<-release
	}
	t.Cleanup(func() { simulateHook = prev })
	return started, release
}

func remoteTestOpts() Options {
	o := DefaultOptions()
	o.Warmup, o.Measure = 50_000, 50_000
	return o
}

// TestSweepdRejectsMalformedRequests pins the service's validation: every
// kind of client mistake must come back as a structured 4xx ErrorReply,
// never a 500 or a hung stream.
func TestSweepdRejectsMalformedRequests(t *testing.T) {
	_, url := newTestSweepServer(t, 1, 3)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"truncated JSON", `{"jobs": [`, http.StatusBadRequest},
		{"unknown field", `{"bogus": 1}`, http.StatusBadRequest},
		{"empty request", `{}`, http.StatusBadRequest},
		{"designs without workloads", `{"designs": ["cTLB"]}`, http.StatusBadRequest},
		{"workloads without designs", `{"workloads": ["sphinx3"]}`, http.StatusBadRequest},
		{"unknown design", `{"designs": ["cTLB2"], "workloads": ["sphinx3"]}`, http.StatusBadRequest},
		{"unknown workload", `{"designs": ["cTLB"], "workloads": ["nosuchprog"],
			"options": {"shift": 6, "warmup": 1000, "measure": 1000, "seed": 1}}`, http.StatusBadRequest},
		{"zero measure", `{"jobs": [{"design": "cTLB", "workload": "sphinx3",
			"options": {"shift": 6, "warmup": 1000, "measure": 0, "seed": 1}}]}`, http.StatusBadRequest},
		{"unknown walk model", `{"jobs": [{"design": "cTLB", "workload": "sphinx3",
			"options": {"shift": 6, "warmup": 1000, "measure": 1000, "seed": 1, "walk_model": "psychic"}}]}`, http.StatusBadRequest},
		{"unknown policy", `{"jobs": [{"design": "cTLB", "workload": "sphinx3",
			"options": {"shift": 6, "warmup": 1000, "measure": 1000, "seed": 1, "policy": "MRU"}}]}`, http.StatusBadRequest},
		{"too many jobs", `{"designs": ["NoL3", "BI", "SRAM", "cTLB", "Ideal"], "workloads": ["sphinx3"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			var er sweepapi.ErrorReply
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("body is not an ErrorReply: %v", err)
			}
			if er.Error == "" {
				t.Fatal("ErrorReply.Error is empty")
			}
		})
	}

	t.Run("GET sweep", func(t *testing.T) {
		resp, err := http.Get(url + "/v1/sweep")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
	t.Run("unknown endpoint", func(t *testing.T) {
		resp, err := http.Get(url + "/v1/nope")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
	})
}

// TestRemoteSweepMatchesInProcess is the transport's core guarantee: a
// sweep submitted to the service returns Results byte-identical to the
// same jobs run in-process, progress events flow back, and a warm
// re-submission is served entirely from the server's result cache.
func TestRemoteSweepMatchesInProcess(t *testing.T) {
	n := countSimulations(t)
	o := remoteTestOpts()
	jobs := []Job{
		{Design: Tagless, Workload: "sphinx3", Options: o},
		{Design: SRAMTag, Workload: "sphinx3", Options: o},
	}
	local, err := Sweep(context.Background(), jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	localSims := n.Load()

	_, url := newTestSweepServer(t, 0, 0)
	var progress []SweepProgress
	ro := o
	ro.Workers = 2
	ro.Progress = func(p SweepProgress) { progress = append(progress, p) }
	remote, err := RemoteSweep(context.Background(), url, jobs, ro)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(remote), len(jobs))
	}
	for i := range jobs {
		if !bytes.Equal(metricsBytes(t, remote[i]), metricsBytes(t, local[i])) {
			t.Errorf("job %d: remote result differs from in-process run", i)
		}
	}
	if len(progress) == 0 {
		t.Error("no progress events reached the client callback")
	} else if last := progress[len(progress)-1]; last.Done != len(jobs) || last.Total != len(jobs) {
		t.Errorf("final progress = %d/%d, want %d/%d", last.Done, last.Total, len(jobs), len(jobs))
	}
	if got := n.Load() - localSims; got != int64(len(jobs)) {
		t.Errorf("cold remote sweep ran %d simulations, want %d", got, len(jobs))
	}

	// Warm re-submission: every cell replays from the server's store.
	before, err := RemoteStats(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	simsBefore := n.Load()
	again, err := RemoteSweep(context.Background(), url, jobs, ro)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !bytes.Equal(metricsBytes(t, again[i]), metricsBytes(t, local[i])) {
			t.Errorf("job %d: warm remote result differs from in-process run", i)
		}
	}
	if got := n.Load() - simsBefore; got != 0 {
		t.Errorf("warm re-submission ran %d simulations, want 0", got)
	}
	after, err := RemoteStats(context.Background(), url)
	if err != nil {
		t.Fatal(err)
	}
	if misses := after.Misses - before.Misses; misses != 0 {
		t.Errorf("warm re-submission missed the cache %d times, want 0", misses)
	}
	if hits := after.Hits - before.Hits; hits != uint64(len(jobs)) {
		t.Errorf("warm re-submission hit the cache %d times, want %d", hits, len(jobs))
	}
}

// TestSweepdGridExpansion checks the designs × workloads sugar against
// the explicit-jobs form: same grid, same fingerprints, workload-major.
func TestSweepdGridExpansion(t *testing.T) {
	svc, _ := newTestSweepServer(t, 1, 0)
	req := &sweepapi.Request{
		Designs:   []string{"NoL3", "cTLB"},
		Workloads: []string{"sphinx3", "mcf"},
		Options:   wireOptions(remoteTestOpts()),
	}
	jobs, fps, err := svc.buildJobs(req)
	if err != nil {
		t.Fatal(err)
	}
	o := remoteTestOpts()
	want := []Job{
		{Design: NoL3, Workload: "sphinx3", Options: o},
		{Design: Tagless, Workload: "sphinx3", Options: o},
		{Design: NoL3, Workload: "mcf", Options: o},
		{Design: Tagless, Workload: "mcf", Options: o},
	}
	if len(jobs) != len(want) {
		t.Fatalf("grid expanded to %d jobs, want %d", len(jobs), len(want))
	}
	for i := range want {
		if jobs[i].Design != want[i].Design || jobs[i].Workload != want[i].Workload {
			t.Errorf("jobs[%d] = %s/%v, want %s/%v",
				i, jobs[i].Workload, jobs[i].Design, want[i].Workload, want[i].Design)
		}
		wantFP, err := (Job{Design: want[i].Design, Workload: want[i].Workload, Options: o}).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fps[i] != wantFP {
			t.Errorf("jobs[%d] fingerprint drifted across the wire conversion", i)
		}
	}
}

// TestSweepdCrossRequestSingleFlight holds a simulation in-flight while a
// second request submits the identical cell: the two concurrent sweeps
// must share one execution (and any later duplicate is served by the
// store), so the machine simulates exactly once.
func TestSweepdCrossRequestSingleFlight(t *testing.T) {
	n := countSimulations(t)
	started, release := blockSimulations(t)
	_, url := newTestSweepServer(t, 0, 0)

	o := remoteTestOpts()
	jobs := []Job{{Design: Tagless, Workload: "sphinx3", Options: o}}
	type reply struct {
		res []*Result
		err error
	}
	ch1, ch2 := make(chan reply, 1), make(chan reply, 1)
	go func() {
		r, err := RemoteSweep(context.Background(), url, jobs, o)
		ch1 <- reply{r, err}
	}()
	<-started
	go func() {
		r, err := RemoteSweep(context.Background(), url, jobs, o)
		ch2 <- reply{r, err}
	}()
	// Wait until the second sweep is accepted (its only job then either
	// joins the in-flight call or, if it arrives late, hits the store —
	// both paths simulate zero additional machines).
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := RemoteStats(context.Background(), url)
		if err != nil {
			t.Fatal(err)
		}
		if st.Sweeps >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second sweep never accepted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)
	r1, r2 := <-ch1, <-ch2
	if r1.err != nil || r2.err != nil {
		t.Fatalf("sweep errors: %v, %v", r1.err, r2.err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("two concurrent identical sweeps ran %d simulations, want 1", got)
	}
	if !bytes.Equal(metricsBytes(t, r1.res[0]), metricsBytes(t, r2.res[0])) {
		t.Error("concurrent duplicate requests returned different results")
	}
}

// TestSweepdGracefulDrain pins the SIGTERM path: once draining, new
// sweeps get 503 while the in-flight sweep runs to completion, and Drain
// returns only after it has.
func TestSweepdGracefulDrain(t *testing.T) {
	started, release := blockSimulations(t)
	svc, url := newTestSweepServer(t, 0, 0)

	o := remoteTestOpts()
	jobs := []Job{{Design: Tagless, Workload: "sphinx3", Options: o}}
	type reply struct {
		res []*Result
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		r, err := RemoteSweep(context.Background(), url, jobs, o)
		ch <- reply{r, err}
	}()
	<-started

	drained := make(chan struct{})
	go func() {
		svc.Drain()
		close(drained)
	}()
	// Drain flips the flag before blocking on the in-flight sweep; wait
	// for the health endpoint to report it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := RemoteSweep(context.Background(), url, jobs, o); err == nil ||
		!strings.Contains(err.Error(), "draining") {
		t.Fatalf("sweep during drain: err = %v, want a draining refusal", err)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned while a sweep was still in flight")
	default:
	}

	close(release)
	r := <-ch
	if r.err != nil {
		t.Fatalf("in-flight sweep failed during drain: %v", r.err)
	}
	if len(r.res) != 1 || r.res[0] == nil {
		t.Fatal("in-flight sweep did not deliver its result")
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after the in-flight sweep finished")
	}
}

// TestSweepdHardCancel pins the second-signal path: Cancel skips queued
// jobs (the in-flight one finishes) and the client sees a context
// cancellation instead of fabricated results.
func TestSweepdHardCancel(t *testing.T) {
	n := countSimulations(t)
	started, release := blockSimulations(t)
	svc, url := newTestSweepServer(t, 1, 0)

	o := remoteTestOpts()
	o.Workers = 1
	jobs := []Job{
		{Design: Tagless, Workload: "sphinx3", Options: o},
		{Design: SRAMTag, Workload: "sphinx3", Options: o},
	}
	ctxCh := make(chan context.Context, 1)
	prevHook := sweepCtxHook
	sweepCtxHook = func(ctx context.Context) { ctxCh <- ctx }
	t.Cleanup(func() { sweepCtxHook = prevHook })

	errCh := make(chan error, 1)
	go func() {
		_, err := RemoteSweep(context.Background(), url, jobs, o)
		errCh <- err
	}()
	<-started
	reqCtx := <-ctxCh
	svc.Cancel()
	// Cancel reaches the sweep through a goroutine; wait for it to land
	// before letting the in-flight simulation finish, so the queued job
	// is deterministically behind the cancellation.
	<-reqCtx.Done()
	close(release)
	err := <-errCh
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancelled sweep: err = %v, want a context cancellation", err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("hard cancel ran %d simulations, want 1 (queued job skipped)", got)
	}
}

// TestRemoteSweepRejectsLocalOnlyOptions: checkpoint and tracing options
// name client-local state and must be refused before anything is sent.
func TestRemoteSweepRejectsLocalOnlyOptions(t *testing.T) {
	o := remoteTestOpts()
	o.Checkpoints = NewCheckpointStore()
	_, err := RemoteSweep(context.Background(), "http://localhost:0",
		[]Job{{Design: Tagless, Workload: "sphinx3", Options: o}}, o)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("err = %v, want a checkpoint refusal", err)
	}
	o = remoteTestOpts()
	o.TraceEvents = &bytes.Buffer{}
	_, err = RemoteSweep(context.Background(), "http://localhost:0",
		[]Job{{Design: Tagless, Workload: "sphinx3", Options: o}}, o)
	if err == nil || !strings.Contains(err.Error(), "tracing") {
		t.Fatalf("err = %v, want a tracing refusal", err)
	}
}

// TestWireOptionsFingerprintRoundTrip pins wireOptions/optionsFromWire as
// exact inverses over the semantic fields: a job converted to the wire
// form and back must keep its cache fingerprint. Every semantic field is
// set to a non-default value so a new field that misses the wire mapping
// fails here (the guard loop below catches a field this test itself
// forgot to set).
func TestWireOptionsFingerprintRoundTrip(t *testing.T) {
	o := Options{
		Shift:               5,
		Warmup:              123_000,
		Measure:             456_000,
		Seed:                9,
		CacheMB:             8,
		Policy:              CLOCK,
		NCAccessThreshold:   32,
		SynchronousEviction: true,
		CachedGIPT:          true,
		SharedAliasTable:    true,
		HotFilterThreshold:  4,
		Superpages:          true,
		Refresh:             true,
		L2TLBEntries:        256,
		Alpha:               2,
		MemoryWalk:          true,
		WalkModel:           "nested",
		PWCHitCycles:        3,
		TLBTopology:         "shared",
		CtxSwitchRefs:       10_000,
		CtxSwitchFlush:      true,
		MSHRs:               4,
		EpochRefs:           1_000,
		Sample:              &SampleSpec{WindowRefs: 1_000, PeriodRefs: 10_000, WarmRefs: 500},
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// Guard: every semantic field (except the checkpoint trio, which is
	// deliberately not wire-transportable) must be non-zero above.
	zero, ov := reflect.ValueOf(Options{}), reflect.ValueOf(o)
	for name := range semanticOptionFields {
		switch name {
		case "CheckpointSave", "CheckpointLoad", "Checkpoints":
			continue
		}
		got := fmt.Sprintf("%v", ov.FieldByName(name).Interface())
		if got == fmt.Sprintf("%v", zero.FieldByName(name).Interface()) {
			t.Errorf("semantic field %s is still zero: set it above so the wire round trip exercises it", name)
		}
	}

	// Exercise the real transport: marshal the wire form through JSON too.
	raw, err := json.Marshal(wireOptions(o))
	if err != nil {
		t.Fatal(err)
	}
	var w sweepapi.Options
	if err := json.Unmarshal(raw, &w); err != nil {
		t.Fatal(err)
	}
	back, err := optionsFromWire(&w)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Canonical(), o.Canonical(); got != want {
		t.Fatalf("canonical options drifted across the wire:\n got %s\nwant %s", got, want)
	}
	fp0, err := (Job{Design: Tagless, Workload: "sphinx3", Options: o}).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := (Job{Design: Tagless, Workload: "sphinx3", Options: back}).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp0 != fp1 {
		t.Fatalf("fingerprint drifted across the wire: %s != %s", fp0, fp1)
	}
}
