package taglessdram

import (
	"encoding/json"
	"fmt"
	"io"

	"taglessdram/internal/obs"
)

// EpochDropWarning renders a one-line operator warning when a run's
// epoch ring overflowed (Result.EpochsDropped > 0): the oldest epochs
// were overwritten, so the exported time series is truncated at its
// start. Returns "" when nothing was dropped. The CLIs print it to
// stderr so structured stdout streams stay byte-identical.
func EpochDropWarning(r *Result) string {
	if r == nil || r.EpochsDropped == 0 {
		return ""
	}
	return fmt.Sprintf("%s/%v: epoch ring overflowed: dropped the oldest %d of %d epochs; raise -epoch-capacity (Options.EpochCapacity) or -epoch-refs to keep the full series",
		r.Workload, r.Design, r.EpochsDropped, r.EpochsDropped+len(r.Epochs))
}

// Epoch is one epoch of a run's time series: counter deltas (references,
// instructions, cycles, device bytes, controller activity) and
// instantaneous gauges (free-pool depth) over one EpochRefs-long window
// of the measured phase. Result.Epochs holds them oldest first.
type Epoch = obs.Epoch

// The structured-metrics stream is JSON lines: one "run" line per result
// carrying the full flattened metric registry, followed by one "epoch"
// line per captured epoch. Field names and the line types are a stable,
// documented schema (see README "Observability"); keys within a run
// line's metrics object are sorted, so the bytes are deterministic for a
// deterministic simulation.
type metricsRunLine struct {
	Type     string             `json:"type"` // "run"
	Workload string             `json:"workload"`
	Design   string             `json:"design"`
	Epochs   int                `json:"epochs"`
	Dropped  int                `json:"epochs_dropped,omitempty"`
	Metrics  map[string]float64 `json:"metrics"`
}

type metricsEpochLine struct {
	Type     string `json:"type"` // "epoch"
	Workload string `json:"workload"`
	Design   string `json:"design"`
	Epoch
}

// WriteMetricsJSON streams results as JSON lines: for each result a
// "run" line with the complete Result.Metrics registry, then one "epoch"
// line per entry of Result.Epochs. Output depends only on the results
// and their order, so feeding it submission-ordered sweep results (see
// Options.MetricsSink) yields byte-identical files at any Workers width.
func WriteMetricsJSON(w io.Writer, results ...*Result) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		line := metricsRunLine{
			Type:     "run",
			Workload: r.Workload,
			Design:   r.Design.String(),
			Epochs:   len(r.Epochs),
			Dropped:  r.EpochsDropped,
			Metrics:  make(map[string]float64),
		}
		for _, nv := range r.Metrics().Sorted() {
			line.Metrics[nv.Name] = nv.Value
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		for _, e := range r.Epochs {
			el := metricsEpochLine{
				Type:     "epoch",
				Workload: r.Workload,
				Design:   r.Design.String(),
				Epoch:    e,
			}
			if err := enc.Encode(el); err != nil {
				return err
			}
		}
	}
	return nil
}
