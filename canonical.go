package taglessdram

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"taglessdram/internal/resultcache"
	"taglessdram/internal/system"
)

// modelVersion stamps every result-cache key with the simulator's
// behavioral generation. Bump it whenever the golden fingerprints change
// (a new organization, an event-ordering change, a metric fix): old
// cache entries then stop matching and every cell re-simulates, so a
// stale cache can never replay results from a different model.
//
// It is a var, not a const, only so the invalidation tests can bump it;
// production code must treat it as a constant.
var modelVersion = 1

// ModelVersion reports the simulator's behavioral generation stamp —
// the canonical.go constant that prefixes every result-cache key. The
// sweep service exposes it on /v1/stats and /metrics so clients can
// tell when two servers' caches are comparable.
func ModelVersion() int { return modelVersion }

// Every exported Options field is classified as either semantic (it can
// change a run's Result, so it is hashed into the cache key) or
// non-semantic (execution mechanics and observers that never change the
// simulated metrics, so identical runs under different values still
// share a cache entry). TestOptionsFieldsClassified enforces that the
// two sets are exhaustive and disjoint, and that Canonical() really
// depends on every semantic field and on no non-semantic one — a new
// Options field fails the test until it is classified here, which is
// what prevents silent stale-hit bugs.
var semanticOptionFields = map[string]bool{
	"Shift":               true,
	"Warmup":              true,
	"Measure":             true,
	"Seed":                true,
	"CacheMB":             true,
	"Policy":              true,
	"NCAccessThreshold":   true,
	"SynchronousEviction": true,
	"CachedGIPT":          true,
	"SharedAliasTable":    true,
	"HotFilterThreshold":  true,
	"Superpages":          true,
	"Refresh":             true,
	"L2TLBEntries":        true,
	"Alpha":               true,
	"MemoryWalk":          true,
	"WalkModel":           true,
	"PWCHitCycles":        true,
	"TLBTopology":         true,
	"CtxSwitchRefs":       true,
	"CtxSwitchFlush":      true,
	"MSHRs":               true,
	"EpochRefs":           true, // epoch length shapes Result.Epochs
	"Sample":              true, // sampled runs measure different windows
	// The three checkpoint fields are semantic through one derived bit:
	// any of them switches the run to the quiesced Warmup/Measure phase
	// pair, whose results differ from a plain Run. Their values beyond
	// that (which file, which store) don't enter the key — and runs that
	// read or write checkpoint *files* bypass the cache entirely, since
	// a loaded file's bytes are outside the fingerprint.
	"CheckpointSave": true,
	"CheckpointLoad": true,
	"Checkpoints":    true,
}

var nonSemanticOptionFields = map[string]bool{
	"ExtraDesigns":    true, // shapes which grid cells exist, never a cell's result
	"Workers":         true, // jobs are isolated; parallel == serial bit-for-bit
	"Server":          true, // where a sweep runs; remote results are byte-identical
	"Progress":        true, // observer
	"OnSweepAccepted": true, // observer (remote sweep-ID callback)
	"EpochCapacity":   true, // ring bound; drops old epochs, never changes metrics
	"MetricsSink":     true, // observer
	"TraceEvents":     true, // observer (and trace-requesting runs bypass the cache)
	"TraceEventLimit": true, // trace window bound
	"ResultCache":     true, // the cache itself
}

// Canonical renders the semantic Options fields — exactly the fields in
// semanticOptionFields — as one deterministic line. It is the Options
// portion of a cache key's preimage. Warmup is normalized to its
// effective value (Run substitutes Measure for a zero Warmup), and the
// three checkpoint fields collapse into the derived Quiesced bit.
func (o Options) Canonical() string {
	warmup := o.Warmup
	if warmup == 0 {
		warmup = o.Measure
	}
	sample := "nil"
	if o.Sample != nil {
		sample = fmt.Sprintf("%+v", *o.Sample)
	}
	return fmt.Sprintf(
		"Shift=%d Warmup=%d Measure=%d Seed=%d CacheMB=%d Policy=%d "+
			"NCAccessThreshold=%d SynchronousEviction=%t CachedGIPT=%t "+
			"SharedAliasTable=%t HotFilterThreshold=%d Superpages=%t "+
			"Refresh=%t L2TLBEntries=%d Alpha=%d MemoryWalk=%t "+
			"WalkModel=%q PWCHitCycles=%d TLBTopology=%q "+
			"CtxSwitchRefs=%d CtxSwitchFlush=%t MSHRs=%d "+
			"EpochRefs=%d Sample={%s} Quiesced=%t",
		o.Shift, warmup, o.Measure, o.Seed, o.CacheMB, o.Policy,
		o.NCAccessThreshold, o.SynchronousEviction, o.CachedGIPT,
		o.SharedAliasTable, o.HotFilterThreshold, o.Superpages,
		o.Refresh, o.L2TLBEntries, o.Alpha, o.MemoryWalk,
		o.WalkModel, o.PWCHitCycles, o.TLBTopology,
		o.CtxSwitchRefs, o.CtxSwitchFlush, o.MSHRs,
		o.EpochRefs, sample, o.quiesced())
}

// projectFor normalizes the option facets a design never consumes, so
// editing a tagless-only knob (victim policy, NC threshold, alias table,
// hot filter, superpages, alpha) leaves every other organization's cache
// keys untouched — re-running a sweep after such an edit re-simulates
// only the tagless cells. Sound because every consumer of these knobs
// (they all resolve into cfg.Tagless) is gated on the tagless
// organization: org/tagless.go reads them at construction, and the
// machine-level readers all check m.ctrl != nil or Design == Tagless
// first.
func (o Options) projectFor(design Design) Options {
	if design != Tagless {
		o.Policy = 0
		o.NCAccessThreshold = 0
		o.SynchronousEviction = false
		o.CachedGIPT = false
		o.SharedAliasTable = false
		o.HotFilterThreshold = 0
		o.Superpages = false
		o.Alpha = 0
	}
	// Walk-model-aware projection: PWCHitCycles is only consumed by the
	// walk-cache-bearing models (pwc, nested), so under the fixed model
	// its edits must not invalidate cache entries. Likewise the flush
	// policy only matters when context switching is on at all.
	if eff := o.WalkModel; eff == "fixed" || (eff == "" && !o.MemoryWalk) {
		o.PWCHitCycles = 0
	}
	if o.CtxSwitchRefs == 0 {
		o.CtxSwitchFlush = false
	}
	return o
}

// quiesced reports whether the run uses the checkpointable Warmup/Measure
// phase pair instead of the plain Run path. The two paths produce
// different (each internally deterministic) results, so the bit is part
// of the semantic identity.
func (o Options) quiesced() bool {
	return o.CheckpointSave != "" || o.CheckpointLoad != "" || o.Checkpoints != nil
}

// cacheable reports whether a run's Result may be served from or stored
// into the result cache. Runs that load or save checkpoint files depend
// on (or must produce) external file state the fingerprint cannot see,
// and runs that request a kernel-event trace need the simulation to
// actually execute; all of them bypass the cache.
func (o Options) cacheable() bool {
	return o.CheckpointSave == "" && o.CheckpointLoad == "" && o.TraceEvents == nil
}

// traceDigest fingerprints the resolved workload: its identity, seed,
// threading model and every per-core profile parameter. Synthetic traces
// are generated deterministically from exactly this state, so two equal
// digests mean byte-identical reference streams — and editing a profile
// in internal/trace invalidates every cached run that used it.
func traceDigest(w system.Workload) (string, bool) {
	if len(w.Sources) > 0 {
		// Recorded sources replay external files; their bytes are not
		// captured by the profile parameters, so such workloads are not
		// fingerprintable (the facade never builds them).
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "name=%q seed=%d multithreaded=%t cores=%d\n",
		w.Name, w.Seed, w.MultiThreaded, len(w.PerCore))
	for i, p := range w.PerCore {
		fmt.Fprintf(h, "core%d=%+v\n", i, p)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// preimageFor builds the full canonical encoding of a run's semantic
// identity: format and model versions, the design, the workload and its
// trace digest, the semantic Options, and the fully resolved machine
// configuration. SystemConfig is a pure value struct (the classification
// test enforces that recursively), so its %+v rendering is
// deterministic. The preimage is stored alongside each cache entry for
// auditability; its SHA-256 is the cache key.
func preimageFor(design Design, name string, w system.Workload, o Options) (string, error) {
	td, ok := traceDigest(w)
	if !ok {
		return "", fmt.Errorf("taglessdram: workload %s is not fingerprintable", name)
	}
	// Project away knobs this design never reads — both in the canonical
	// options line and, because configFor maps them into cfg.Tagless, in
	// the rendered config — so their edits invalidate only the cells that
	// can feel them.
	o = o.projectFor(design)
	cfg := configFor(design, o)
	return fmt.Sprintf(
		"taglessdram result-cache preimage v1\nmodel=%d\ndesign=%d(%s)\nworkload=%q\ntrace=%s\noptions{%s}\nconfig=%+v\n",
		modelVersion, int(design), design, name, td,
		o.Canonical(), *cfg), nil
}

// preimage is preimageFor on a named Job, resolving its workload first.
func (j Job) preimage() (string, error) {
	if err := j.Options.Validate(); err != nil {
		return "", err
	}
	w, err := workloadFor(j.Workload, j.Options)
	if err != nil {
		return "", err
	}
	return preimageFor(j.Design, j.Workload, w, j.Options)
}

// fingerprint returns the job's cache key together with the preimage it
// hashes.
func (j Job) fingerprint() (resultcache.Key, string, error) {
	pre, err := j.preimage()
	if err != nil {
		return resultcache.Key{}, "", err
	}
	return resultcache.KeyOf(pre), pre, nil
}

// Fingerprint returns the hex content address identifying this job's
// Result in a result cache: the SHA-256 of the job's canonical semantic
// identity (model version, design, workload + trace digest, semantic
// options, fully resolved configuration). Two jobs share a fingerprint
// exactly when they are guaranteed to produce bit-identical Results.
func (j Job) Fingerprint() (string, error) {
	key, _, err := j.fingerprint()
	if err != nil {
		return "", err
	}
	return key.String(), nil
}
