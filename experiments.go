package taglessdram

import (
	"context"
	"fmt"

	"taglessdram/internal/amat"
	"taglessdram/internal/config"
	"taglessdram/internal/core"
	"taglessdram/internal/lat"
	"taglessdram/internal/stats"
	"taglessdram/internal/sweep"
	"taglessdram/internal/system"
	"taglessdram/internal/trace"
)

// DesignRow holds one workload's metrics for one design, normalized to the
// workload's NoL3 baseline (the paper's Figures 7, 9 and 12).
type DesignRow struct {
	Workload      string
	Design        Design
	IPC           float64
	NormIPC       float64 // vs the NoL3 baseline
	NormEDP       float64 // vs the NoL3 baseline (lower is better)
	L3HitRate     float64
	AvgL3Latency  float64
	EnergyJ       float64
	OffPkgGB      float64 // off-package traffic
	TLBMissRate   float64
	VictimHitRate float64 // tagless: victim hits / cTLB misses
}

// designRows assembles one workload's DesignRow block from its per-design
// results (res[i] is designs[i]'s run). The NoL3 baseline is located
// wherever it sits in the design list; a design set without it is an
// error, since every normalized column needs the baseline.
func designRows(workload string, designs []Design, res []*Result) ([]DesignRow, error) {
	var base *Result
	for i, d := range designs {
		if d == NoL3 {
			base = res[i]
		}
	}
	if base == nil {
		return nil, fmt.Errorf("taglessdram: %s: design set %v has no NoL3 baseline run", workload, designs)
	}
	rows := make([]DesignRow, 0, len(designs))
	for i, d := range designs {
		r := res[i]
		row := DesignRow{
			Workload:     workload,
			Design:       d,
			IPC:          r.IPC,
			L3HitRate:    r.L3HitRate,
			AvgL3Latency: r.AvgL3Latency,
			EnergyJ:      r.Energy.TotalJ(),
			OffPkgGB:     float64(r.OffPkgBytes) / 1e9,
			TLBMissRate:  r.TLBMissRate,
		}
		if base.IPC > 0 {
			row.NormIPC = r.IPC / base.IPC
		}
		if base.EDPJs > 0 {
			row.NormEDP = r.EDPJs / base.EDPJs
		}
		if d == Tagless && r.Ctrl.Walks > 0 {
			denom := r.Ctrl.VictimHits + r.Ctrl.ColdFills
			if denom > 0 {
				row.VictimHitRate = float64(r.Ctrl.VictimHits) / float64(denom)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runDesignGrid sweeps the full (workload × design) grid concurrently and
// returns the rows in the serial order: all designs of workloads[0], then
// workloads[1], and so on.
func runDesignGrid(ctx context.Context, workloads []string, o Options) ([]DesignRow, error) {
	designs := append(Designs(), o.ExtraDesigns...)
	jobs := make([]Job, 0, len(workloads)*len(designs))
	for _, wl := range workloads {
		for _, d := range designs {
			jobs = append(jobs, Job{Design: d, Workload: wl, Options: o})
		}
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	var out []DesignRow
	for wi, wl := range workloads {
		rows, err := designRows(wl, designs, res[wi*len(designs):(wi+1)*len(designs)])
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// runAcrossDesigns measures all five designs for one workload.
func runAcrossDesigns(ctx context.Context, workload string, o Options) ([]DesignRow, error) {
	return runDesignGrid(ctx, []string{workload}, o)
}

// RunFigure7 reproduces Figure 7: normalized IPC and EDP of the 11
// single-programmed SPEC workloads under every design.
func RunFigure7(ctx context.Context, o Options) ([]DesignRow, error) {
	return runDesignGrid(ctx, SPECWorkloads(), o)
}

// Fig8Row is one workload's average L3 access time under the two tag
// designs (Figure 8; lower is better).
type Fig8Row struct {
	Workload    string
	SRAMTagLat  float64 // cycles
	TaglessLat  float64 // cycles
	ReductionPC float64 // percent reduction (positive = tagless faster)
}

// RunFigure8 reproduces Figure 8: average L3 access latency of the
// SRAM-tag and tagless caches over the SPEC workloads.
func RunFigure8(ctx context.Context, o Options) ([]Fig8Row, error) {
	wls := SPECWorkloads()
	jobs := make([]Job, 0, 2*len(wls))
	for _, wl := range wls {
		jobs = append(jobs,
			Job{Design: SRAMTag, Workload: wl, Options: o},
			Job{Design: Tagless, Workload: wl, Options: o})
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	var out []Fig8Row
	for i, wl := range wls {
		rs, rt := res[2*i], res[2*i+1]
		row := Fig8Row{Workload: wl, SRAMTagLat: rs.AvgL3Latency, TaglessLat: rt.AvgL3Latency}
		if rs.AvgL3Latency > 0 {
			row.ReductionPC = (rs.AvgL3Latency - rt.AvgL3Latency) / rs.AvgL3Latency * 100
		}
		out = append(out, row)
	}
	return out, nil
}

// RunFigure9 reproduces Figure 9: normalized IPC and EDP of MIX1–MIX8.
func RunFigure9(ctx context.Context, o Options) ([]DesignRow, error) {
	return runDesignGrid(ctx, MixWorkloads(), o)
}

// Fig10Row is one (mix, cache size) IPC pair normalized to the
// bank-interleaving baseline (Figure 10).
type Fig10Row struct {
	Workload  string
	CacheMB   int64 // scaled capacity (paper scale = CacheMB << Shift)
	SRAMNorm  float64
	CTLBNorm  float64
	BIBaseIPC float64
}

// RunFigure10 reproduces Figure 10: sensitivity to DRAM-cache size. The
// paper's 256MB/512MB/1GB points scale to 4/8/16MB at the default shift.
func RunFigure10(ctx context.Context, o Options, mixes []string) ([]Fig10Row, error) {
	if len(mixes) == 0 {
		mixes = MixWorkloads()
	}
	sizes := []int64{4, 8, 16} // MB at shift 6 == 256MB/512MB/1GB at paper scale
	type cell struct {
		wl string
		mb int64
	}
	var cells []cell
	var jobs []Job
	for _, wl := range mixes {
		for _, mb := range sizes {
			oSize := o
			oSize.CacheMB = mb
			cells = append(cells, cell{wl, mb})
			jobs = append(jobs,
				Job{Design: BankInterleave, Workload: wl, Options: oSize},
				Job{Design: SRAMTag, Workload: wl, Options: oSize},
				Job{Design: Tagless, Workload: wl, Options: oSize})
		}
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	var out []Fig10Row
	for i, c := range cells {
		bi, sr, ct := res[3*i], res[3*i+1], res[3*i+2]
		row := Fig10Row{Workload: c.wl, CacheMB: c.mb, BIBaseIPC: bi.IPC}
		if bi.IPC > 0 {
			row.SRAMNorm = sr.IPC / bi.IPC
			row.CTLBNorm = ct.IPC / bi.IPC
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig11Row compares victim-selection policies for one mix (Figure 11,
// extended with the CLOCK second-chance policy the paper names as the
// practical LRU approximation).
type Fig11Row struct {
	Workload  string
	FIFOIPC   float64
	LRUIPC    float64
	CLOCKIPC  float64
	LRUGain   float64 // fractional IPC gain of LRU over FIFO
	CLOCKGain float64 // fractional IPC gain of CLOCK over FIFO
}

// RunFigure11 reproduces Figure 11: the replacement-policy sensitivity of
// the tagless cache.
func RunFigure11(ctx context.Context, o Options, mixes []string) ([]Fig11Row, error) {
	if len(mixes) == 0 {
		mixes = MixWorkloads()
	}
	policies := []config.ReplacementPolicy{FIFO, LRU, CLOCK}
	var jobs []Job
	for _, wl := range mixes {
		for _, p := range policies {
			op := o
			op.Policy = p
			jobs = append(jobs, Job{Design: Tagless, Workload: wl, Options: op})
		}
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	var out []Fig11Row
	for i, wl := range mixes {
		rf, rl, rc := res[3*i], res[3*i+1], res[3*i+2]
		row := Fig11Row{Workload: wl, FIFOIPC: rf.IPC, LRUIPC: rl.IPC, CLOCKIPC: rc.IPC}
		if rf.IPC > 0 {
			row.LRUGain = rl.IPC/rf.IPC - 1
			row.CLOCKGain = rc.IPC/rf.IPC - 1
		}
		out = append(out, row)
	}
	return out, nil
}

// RunFigure12 reproduces Figure 12: the four PARSEC multi-threaded
// workloads across designs.
func RunFigure12(ctx context.Context, o Options) ([]DesignRow, error) {
	return runDesignGrid(ctx, PARSECWorkloads(), o)
}

// Fig13Row is the non-cacheable-pages case study (Figure 13).
type Fig13Row struct {
	Workload    string
	BaseIPC     float64 // tagless without NC classification
	NCIPC       float64 // tagless with low-reuse pages marked NC
	GainPC      float64 // percent IPC gain
	NCAccesses  uint64
	BaseOffPkgB uint64
	NCOffPkgB   uint64
}

// RunFigure13 reproduces Figure 13: marking low-reuse pages non-cacheable
// for GemsFDTD (the paper's threshold is 32 accesses).
func RunFigure13(ctx context.Context, o Options) (Fig13Row, error) {
	onc := o
	onc.NCAccessThreshold = 32
	res, err := runJobs(ctx, o, []Job{
		{Design: Tagless, Workload: "GemsFDTD", Options: o},
		{Design: Tagless, Workload: "GemsFDTD", Options: onc},
	})
	if err != nil {
		return Fig13Row{}, err
	}
	base, nc := res[0], res[1]
	row := Fig13Row{
		Workload:    "GemsFDTD",
		BaseIPC:     base.IPC,
		NCIPC:       nc.IPC,
		NCAccesses:  nc.NCAccesses,
		BaseOffPkgB: base.OffPkgBytes,
		NCOffPkgB:   nc.OffPkgBytes,
	}
	if base.IPC > 0 {
		row.GainPC = (nc.IPC/base.IPC - 1) * 100
	}
	return row, nil
}

// Table1Row describes one of the four (TLB, DRAM cache) cases with its
// measured handler cost (Table 1).
type Table1Row struct {
	TLB         string
	Cache       string
	Description string
	MeanCycles  float64
	Count       uint64
}

// RunTable1 measures the four access cases of Table 1. mcf exercises the
// cache-side cases: its footprint exceeds the TLB reach (victim hits) and
// its singleton pages cause cold fills during measurement. A second run
// with the offline non-cacheable policy enabled supplies the (Hit, Miss)
// row, since that policy diverts the same singleton pages around the
// cache. Pending-update waits require concurrent threads faulting on one
// page and may legitimately be absent.
func RunTable1(ctx context.Context, o Options) ([]Table1Row, error) {
	onc := o
	onc.NCAccessThreshold = 32
	res, err := runJobs(ctx, o, []Job{
		{Design: Tagless, Workload: "mcf", Options: o},
		{Design: Tagless, Workload: "mcf", Options: onc},
	})
	if err != nil {
		return nil, err
	}
	r, rnc := res[0], res[1]
	mk := func(r *Result, k core.MissKind) (float64, uint64) {
		return r.MissKindMean[k], r.MissKindCount[k]
	}
	var rows []Table1Row
	// The (Hit, Hit) case never enters the handler: a cTLB hit is a
	// guaranteed cache hit with zero translation penalty.
	rows = append(rows, Table1Row{"Hit", "Hit",
		"Cache hit; zero latency penalty", 0, r.TLBLookups - r.TLBMisses})
	m, c := mk(rnc, core.MissNonCacheable)
	rows = append(rows, Table1Row{"Hit/Miss", "Miss",
		"Non-cacheable page; off-package block access", m, c})
	m, c = mk(r, core.MissVictimHit)
	rows = append(rows, Table1Row{"Miss", "Hit",
		"In-package victim hit; zero penalty beyond the TLB miss", m, c})
	m, c = mk(r, core.MissColdFill)
	rows = append(rows, Table1Row{"Miss", "Miss",
		"Off-package miss; cache fill and GIPT update", m, c})
	m, c = mk(r, core.MissPendingWait)
	rows = append(rows, Table1Row{"Miss", "Pending",
		"Concurrent fill in flight; busy-wait on the PU bit", m, c})
	return rows, nil
}

// Table2Row quantifies one design against Table 2's qualitative claims.
type Table2Row struct {
	Design        Design
	TagStorageMB  float64 // on-die SRAM for tags (paper scale)
	TagInDRAMMB   float64 // in-package DRAM consumed by tags (paper scale)
	L3HitRate     float64
	AvgL3Latency  float64
	InPkgRowHit   float64 // DRAM row-buffer locality
	OverFetchGB   float64 // off-package traffic (over-fetch proxy)
	NormalizedIPC float64
}

// RunTable2 measures the design-comparison table on one mix.
func RunTable2(ctx context.Context, o Options, workload string) ([]Table2Row, error) {
	if workload == "" {
		workload = "MIX3"
	}
	designs := []Design{AlloyBlock, Banshee, SRAMTag, Tagless}
	jobs := []Job{{Design: NoL3, Workload: workload, Options: o}}
	for _, d := range designs {
		jobs = append(jobs, Job{Design: d, Workload: workload, Options: o})
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	base := res[0]
	var out []Table2Row
	for i, d := range designs {
		r := res[i+1]
		row := Table2Row{
			Design:       d,
			L3HitRate:    r.L3HitRate,
			AvgL3Latency: r.AvgL3Latency,
			InPkgRowHit:  r.InPkgRowHitRate,
			OverFetchGB:  float64(r.OffPkgBytes) / 1e9,
		}
		cfg := configFor(d, o)
		paperCache := cfg.CacheSize << o.Shift
		switch d {
		case SRAMTag:
			// The tag array at paper scale (4MB for a 1GB cache).
			row.TagStorageMB = float64(config.TagParamsFor(paperCache).TagBytes) / float64(config.MB)
		case AlloyBlock:
			// Tags live in DRAM: 8B per 64B line (the 128MB/GB problem).
			row.TagInDRAMMB = float64(config.BlockTagBytes(paperCache)) / float64(config.MB)
		case Banshee:
			// Mapping metadata lives in the page tables: 8B per cached
			// page, buffered on-die in a small tag buffer.
			row.TagInDRAMMB = float64((int64(cfg.CachePages())<<o.Shift)*8) / float64(config.MB)
		}
		if base.IPC > 0 {
			row.NormalizedIPC = r.IPC / base.IPC
		}
		out = append(out, row)
	}
	return out, nil
}

// Table6Row re-exports the SRAM tag-array design points.
type Table6Row = config.TagParams

// RunTable6 returns Table 6: tag size and latency versus cache size.
func RunTable6() []Table6Row { return config.Table6() }

// AMATRow cross-checks the analytic model (Equations 1–5) against the
// simulator for one workload. The closed forms use contention-free device
// latencies, so their absolute values are lower bounds on the simulated
// (queued) latencies; the structural check is the SRAM−tagless *gap*,
// which cancels the common queueing terms.
type AMATRow struct {
	Workload      string
	SimSRAMLat    float64
	ModelSRAMLat  float64 // queueing-free lower bound
	SimCTLBLat    float64
	ModelCTLBLat  float64 // queueing-free lower bound
	SimGap        float64 // SimSRAMLat − SimCTLBLat
	ModelGap      float64 // ModelSRAMLat − ModelCTLBLat
	SRAMErrorPC   float64
	CTLBErrorPC   float64
	VictimMissRte float64
}

// RunAMATCheck feeds each workload's measured rates into the closed-form
// AMAT model and reports the relative error against the simulated average
// L3 latency.
func RunAMATCheck(ctx context.Context, o Options, workloads []string) ([]AMATRow, error) {
	if len(workloads) == 0 {
		workloads = []string{"sphinx3", "libquantum", "GemsFDTD"}
	}
	cfg := configFor(SRAMTag, o)
	tag := config.TagParamsFor(cfg.CacheSize)
	jobs := make([]Job, 0, 2*len(workloads))
	for _, wl := range workloads {
		jobs = append(jobs,
			Job{Design: SRAMTag, Workload: wl, Options: o},
			Job{Design: Tagless, Workload: wl, Options: o})
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	var out []AMATRow
	for i, wl := range workloads {
		rs, rt := res[2*i], res[2*i+1]
		accesses := float64(rt.TLBLookups)
		if accesses == 0 {
			continue
		}
		victimMiss := 0.0
		if n := rt.Ctrl.VictimHits + rt.Ctrl.ColdFills; n > 0 {
			victimMiss = float64(rt.Ctrl.ColdFills) / float64(n)
		}
		in := amat.Inputs{
			MissRateTLB:    rt.TLBMissRate,
			MissRateL12:    float64(rt.L3Accesses) / accesses,
			MissRateL3:     1 - rs.L3HitRate,
			MissRateVictim: victimMiss,
			MissPenaltyTLB: float64(cfg.PageWalkCycles),
			HitTimeL12:     float64(cfg.L1D.LatencyCycle),
			TagAccess:      float64(tag.LatencyCyc),
			// Component latencies from the device model, with a queueing
			// allowance measured as the gap between simulated latency
			// and the open-bank service time.
			BlockInPkg:      rrBlockInPkg(o),
			PageOffPkg:      rrPageOffPkg(o),
			GIPTAccess:      rrGIPT(o),
			BlockOffPkgMiss: rrBlockOffPkg(o),
		}
		row := AMATRow{
			Workload:      wl,
			SimSRAMLat:    rs.AvgL3Latency,
			ModelSRAMLat:  amat.AvgL3LatencySRAMFig8(in),
			SimCTLBLat:    rt.AvgL3Latency,
			ModelCTLBLat:  amat.AvgL3LatencyTagless(in),
			VictimMissRte: victimMiss,
		}
		row.SimGap = row.SimSRAMLat - row.SimCTLBLat
		row.ModelGap = row.ModelSRAMLat - row.ModelCTLBLat
		if row.SimSRAMLat > 0 {
			row.SRAMErrorPC = (row.ModelSRAMLat - row.SimSRAMLat) / row.SimSRAMLat * 100
		}
		if row.SimCTLBLat > 0 {
			row.CTLBErrorPC = (row.ModelCTLBLat - row.SimCTLBLat) / row.SimCTLBLat * 100
		}
		out = append(out, row)
	}
	return out, nil
}

// LatencyRow is one design's measured latency attribution for a
// workload: tail quantiles of the per-reference L3 latency distribution
// and the per-component stall breakdown in cycles per L3 access. The
// component columns follow LatencyComponentNames() order and sum (with
// the handler scope folded in) to AvgLat exactly — the conservation
// invariant checked by CheckLatencyAttribution.
type LatencyRow struct {
	Workload   string
	Design     Design
	AvgLat     float64 // measured stall cycles per L3 access
	P50        float64
	P99        float64
	P999       float64
	Max        uint64
	Components []float64 // cycles/access, LatencyComponentNames() order
}

// RunLatencyBreakdown measures the per-component latency attribution of
// every registered organization on one workload (the observability
// companion to Figure 8: not just *that* the tagless cache is faster,
// but *where* the cycles go).
func RunLatencyBreakdown(ctx context.Context, o Options, workload string) ([]LatencyRow, error) {
	if workload == "" {
		workload = "sphinx3"
	}
	designs := Organizations()
	jobs := make([]Job, 0, len(designs))
	for _, d := range designs {
		jobs = append(jobs, Job{Design: d, Workload: workload, Options: o})
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]LatencyRow, 0, len(designs))
	for i, d := range designs {
		r := res[i]
		if err := CheckLatencyAttribution(r); err != nil {
			return nil, err
		}
		s := &r.Latency
		row := LatencyRow{
			Workload:   workload,
			Design:     d,
			AvgLat:     r.AvgL3Latency,
			P50:        s.L3Lat.Quantile(50),
			P99:        s.L3Lat.Quantile(99),
			P999:       s.L3Lat.Quantile(99.9),
			Max:        s.L3Lat.Max(),
			Components: make([]float64, lat.NumComponents),
		}
		if r.L3Accesses > 0 {
			for c := lat.Component(0); c < lat.NumComponents; c++ {
				row.Components[c] = float64(s.L3.Cycles[c]+s.Handler.Cycles[c]) / float64(r.L3Accesses)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// SharedPageRow is one configuration of the shared-page study (the
// Section 6 extension): how the tagless cache handles pages shared by all
// four processes of a mix.
type SharedPageRow struct {
	Config      string
	IPC         float64
	OffPkgGB    float64
	AliasHits   uint64
	NCAccesses  uint64
	L3HitRate   float64
	ColdFills   uint64
	TagOrAliasB int64 // on-die tag bytes, or alias-table bytes (paper scale)
}

// RunSharedPages runs the Section 6 shared-page study: every program of a
// mix spends `sharedFrac` of its page visits in a common shared region
// (library/kernel pages). Three configurations are compared: the SRAM-tag
// baseline (physical indexing shares naturally), the tagless default
// (shared pages marked non-cacheable, Section 3.5), and the tagless cache
// with the alias table (Section 6).
func RunSharedPages(ctx context.Context, o Options, mix string, sharedFrac float64) ([]SharedPageRow, error) {
	if mix == "" {
		mix = "MIX1"
	}
	if sharedFrac <= 0 {
		sharedFrac = 0.15
	}
	type variant struct {
		name   string
		design Design
		alias  bool
	}
	variants := []variant{
		{"SRAM (PA indexing shares naturally)", SRAMTag, false},
		{"cTLB (shared pages non-cacheable)", Tagless, false},
		{"cTLB (PA->CA alias table)", Tagless, true},
	}
	// These runs need a modified workload (per-core shared fractions), so
	// they go straight to the generic engine rather than through Job/Run —
	// runWorkload still gives them result-cache read-through, since the
	// trace digest covers the modified per-core profiles.
	res, err := sweep.Run(ctx, variants, func(_ context.Context, v variant) (*Result, error) {
		w, err := system.Mix(mix, o.Shift, o.Seed)
		if err != nil {
			return nil, err
		}
		for i := range w.PerCore {
			w.PerCore[i].SharedFrac = sharedFrac
		}
		oo := o
		oo.SharedAliasTable = v.alias
		return runWorkload(v.design, fmt.Sprintf("shared-page study %s", v.name), w, oo)
	}, o.sweepOptions())
	if err != nil {
		return nil, err
	}
	var rows []SharedPageRow
	for i, v := range variants {
		r := res[i]
		row := SharedPageRow{
			Config:     v.name,
			IPC:        r.IPC,
			OffPkgGB:   float64(r.OffPkgBytes) / 1e9,
			AliasHits:  r.Ctrl.AliasHits,
			NCAccesses: r.NCAccesses,
			L3HitRate:  r.L3HitRate,
			ColdFills:  r.Ctrl.ColdFills,
		}
		cfg := configFor(v.design, o)
		switch {
		case v.design == SRAMTag:
			row.TagOrAliasB = config.TagParamsFor(cfg.CacheSize << o.Shift).TagBytes
		case v.alias:
			// One 8-byte PPN->CA entry per cached page, at paper scale.
			row.TagOrAliasB = (int64(cfg.CachePages()) << o.Shift) * 8
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// HotFilterRow is one threshold of the online hot-page-filter study (the
// CHOP-style mechanism the paper cites as complementary in Section 3.5).
type HotFilterRow struct {
	Threshold  int // 0 = filter disabled
	IPC        float64
	OffPkgGB   float64
	ColdFills  uint64
	NCAccesses uint64
}

// RunHotFilter sweeps the online hot-page-filter threshold on a
// low-reuse workload: higher thresholds keep more cold pages out of the
// cache, trading block-granularity off-package accesses for avoided
// page-granularity over-fetch.
func RunHotFilter(ctx context.Context, o Options, workload string, thresholds []int) ([]HotFilterRow, error) {
	if workload == "" {
		workload = "GemsFDTD"
	}
	if len(thresholds) == 0 {
		thresholds = []int{0, 4, 16, 64}
	}
	jobs := make([]Job, 0, len(thresholds))
	for _, th := range thresholds {
		oo := o
		oo.HotFilterThreshold = th
		jobs = append(jobs, Job{Design: Tagless, Workload: workload, Options: oo})
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	var rows []HotFilterRow
	for i, th := range thresholds {
		r := res[i]
		rows = append(rows, HotFilterRow{
			Threshold:  th,
			IPC:        r.IPC,
			OffPkgGB:   float64(r.OffPkgBytes) / 1e9,
			ColdFills:  r.Ctrl.ColdFills,
			NCAccesses: r.NCAccesses,
		})
	}
	return rows, nil
}

// SuperpageRow is one configuration of the Section 6 superpage study.
type SuperpageRow struct {
	Workload    string
	Config      string // "4KB pages", "2MB superpages", "2MB + NC singletons"
	IPC         float64
	TLBMissRate float64
	OffPkgGB    float64
	ColdFills   uint64
	L3Latency   float64
}

// RunSuperpages runs the Section 6 superpage study: raising the caching
// granularity to 2MB-equivalent regions extends the cTLB reach and cuts
// walk counts, but amplifies over-fetch for low-locality programs — the
// judicious-application trade-off the paper describes. Low-reuse pages are
// always non-cacheable under superpages (the paper's safety valve).
func RunSuperpages(ctx context.Context, o Options, workloads []string) ([]SuperpageRow, error) {
	if len(workloads) == 0 {
		// One high-spatial-locality streaming program and one
		// pointer-chasing program with poor within-region locality.
		workloads = []string{"lbm", "mcf", "GemsFDTD"}
	}
	osp := o
	osp.Superpages = true
	jobs := make([]Job, 0, 2*len(workloads))
	for _, wl := range workloads {
		jobs = append(jobs,
			Job{Design: Tagless, Workload: wl, Options: o},
			Job{Design: Tagless, Workload: wl, Options: osp})
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	var rows []SuperpageRow
	for i, wl := range workloads {
		base, sp := res[2*i], res[2*i+1]
		rows = append(rows,
			SuperpageRow{Workload: wl, Config: "4KB pages", IPC: base.IPC,
				TLBMissRate: base.TLBMissRate, OffPkgGB: float64(base.OffPkgBytes) / 1e9,
				ColdFills: base.Ctrl.ColdFills, L3Latency: base.AvgL3Latency},
			SuperpageRow{Workload: wl, Config: "2MB superpages", IPC: sp.IPC,
				TLBMissRate: sp.TLBMissRate, OffPkgGB: float64(sp.OffPkgBytes) / 1e9,
				ColdFills: sp.Ctrl.ColdFills, L3Latency: sp.AvgL3Latency},
		)
	}
	return rows, nil
}

// TLBReachRow is one point of the victim-cache study: how much of the
// tagless cache's traffic is served inside the cTLB reach versus rescued
// from the victim region (Section 3.1's split of the cache space).
type TLBReachRow struct {
	L2TLBEntries  int
	IPC           float64
	TLBMissRate   float64
	VictimHits    uint64
	ColdFills     uint64
	VictimHitFrac float64 // victim hits / cTLB misses with cacheable pages
}

// RunTLBReach sweeps the L2 TLB capacity to show the paper's premise: the
// cache region beyond the TLB reach works as a victim cache, so shrinking
// the TLB trades pure cTLB hits for victim hits — not for misses.
func RunTLBReach(ctx context.Context, o Options, workload string, entries []int) ([]TLBReachRow, error) {
	if workload == "" {
		workload = "mcf"
	}
	if len(entries) == 0 {
		entries = []int{128, 256, 512, 1024}
	}
	jobs := make([]Job, 0, len(entries))
	for _, n := range entries {
		oo := o
		oo.L2TLBEntries = n
		jobs = append(jobs, Job{Design: Tagless, Workload: workload, Options: oo})
	}
	res, err := runJobs(ctx, o, jobs)
	if err != nil {
		return nil, err
	}
	var rows []TLBReachRow
	for i, n := range entries {
		r := res[i]
		row := TLBReachRow{
			L2TLBEntries: n,
			IPC:          r.IPC,
			TLBMissRate:  r.TLBMissRate,
			VictimHits:   r.Ctrl.VictimHits,
			ColdFills:    r.Ctrl.ColdFills,
		}
		if d := r.Ctrl.VictimHits + r.Ctrl.ColdFills; d > 0 {
			row.VictimHitFrac = float64(r.Ctrl.VictimHits) / float64(d)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FairnessRow reports multiprogrammed quality metrics for one design on
// one mix: weighted speedup (throughput) and harmonic speedup (fairness),
// both against each program running alone on the same configuration.
type FairnessRow struct {
	Design           Design
	MixIPC           float64
	WeightedSpeedup  float64 // sum of per-program IPC_mix / IPC_alone
	HarmonicSpeedup  float64 // N / sum(IPC_alone / IPC_mix)
	PerProgSlowdowns []float64
}

// RunFairness measures weighted and harmonic speedups for a mix across the
// cache designs, the standard multiprogrammed methodology complementing
// the paper's aggregate IPC bars.
func RunFairness(ctx context.Context, o Options, mix string) ([]FairnessRow, error) {
	if mix == "" {
		mix = "MIX5"
	}
	progs, ok := trace.Mixes()[mix]
	if !ok {
		return nil, fmt.Errorf("taglessdram: unknown mix %q", mix)
	}
	designs := []Design{NoL3, SRAMTag, Tagless}
	mixJobs := make([]Job, len(designs))
	for i, d := range designs {
		mixJobs[i] = Job{Design: d, Workload: mix, Options: o}
	}
	mixRes, err := runJobs(ctx, o, mixJobs)
	if err != nil {
		return nil, err
	}
	// Alone runs: every program of the mix on a single core, per design.
	// These build a one-core workload directly, so they use the generic
	// engine; the (design, program) grid is flattened into one sweep.
	type aloneJob struct {
		design Design
		idx    int
		prog   string
	}
	var alones []aloneJob
	for _, d := range designs {
		for i, prog := range progs {
			alones = append(alones, aloneJob{d, i, prog})
		}
	}
	aloneRes, err := sweep.Run(ctx, alones, func(_ context.Context, j aloneJob) (*Result, error) {
		w, err := system.SingleProgramOn(j.prog, 1, o.Shift, o.Seed+uint64(j.idx)*7919)
		if err != nil {
			return nil, err
		}
		// One-core workloads aren't name-resolvable, so they use
		// runWorkload: same generic engine, same cache read-through.
		return runWorkload(j.design, fmt.Sprintf("%s alone/%v", j.prog, j.design), w, o)
	}, o.sweepOptions())
	if err != nil {
		return nil, err
	}
	var rows []FairnessRow
	for di, d := range designs {
		mr := mixRes[di]
		row := FairnessRow{Design: d, MixIPC: mr.IPC}
		var invSum float64
		for i := range progs {
			alone := aloneRes[di*len(progs)+i]
			if i >= len(mr.PerCoreIPC) || alone.IPC == 0 {
				continue
			}
			s := mr.PerCoreIPC[i] / alone.IPC
			row.WeightedSpeedup += s
			if s > 0 {
				invSum += 1 / s
			}
			row.PerProgSlowdowns = append(row.PerProgSlowdowns, s)
		}
		if invSum > 0 {
			row.HarmonicSpeedup = float64(len(row.PerProgSlowdowns)) / invSum
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Component latencies for the analytic model, derived from Table 4 at
// 3GHz. They use the average of open- and closed-row service.
func rrBlockInPkg(o Options) float64  { return 75 }
func rrBlockOffPkg(o Options) float64 { return 130 }
func rrPageOffPkg(o Options) float64  { return 1100 }
func rrGIPT(o Options) float64        { return 210 }

// GeoMeanNormIPC aggregates rows' normalized IPC for one design (the
// paper's geomean bars).
func GeoMeanNormIPC(rows []DesignRow, d Design) float64 {
	var xs []float64
	for _, r := range rows {
		if r.Design == d {
			xs = append(xs, r.NormIPC)
		}
	}
	return stats.GeoMean(xs)
}

// GeoMeanNormEDP aggregates rows' normalized EDP for one design.
func GeoMeanNormEDP(rows []DesignRow, d Design) float64 {
	var xs []float64
	for _, r := range rows {
		if r.Design == d {
			xs = append(xs, r.NormEDP)
		}
	}
	return stats.GeoMean(xs)
}
