package taglessdram

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"taglessdram/internal/resultcache"
	"taglessdram/internal/sweep"
	"taglessdram/internal/sweepapi"
	"taglessdram/internal/telemetry"
)

// maxRequestBytes bounds a sweep request body; a full design × workload
// grid with per-job options is a few hundred KB at most.
const maxRequestBytes = 8 << 20

// DefaultMaxJobs is the default per-request job ceiling of a sweep
// service.
const DefaultMaxJobs = 4096

// drainRetryAfter is the Retry-After header value (seconds) on 503s
// from a draining server: long enough for a typical drain, short enough
// that clients find the replacement instance quickly.
const drainRetryAfter = "30"

// sweepPhases are the per-job and per-sweep execution phases the
// service attributes wall time to, as both the label values of the
// sweepd_phase_duration_seconds histogram family and the nested span
// names of /v1/trace.
var sweepPhases = []string{"validate", "cache-lookup", "simulate", "encode", "stream"}

// SweepServer is the sweep service behind cmd/sweepd: an http.Handler
// that accepts experiment grids (POST /v1/sweep), shards their jobs
// across the sweep worker pool behind one shared result cache and one
// server-lifetime single-flight memo, and streams progress and results
// back as JSON-lines events. Identical cells — within one request or
// across concurrent requests — simulate exactly once: concurrent
// duplicates share the in-flight execution, later ones replay from the
// store.
//
// Every request additionally feeds the service telemetry layer: GET
// /metrics is a Prometheus text exposition of the cache counters,
// in-flight gauges and per-phase duration histograms; each sweep gets a
// server-assigned ID whose span timeline (queued → cache-lookup →
// cached-hit/simulate → encode → streamed per job) is exported as
// Chrome trace_event JSON on GET /v1/trace?sweep=ID; and SetLogOutput
// enables structured JSON-lines request logging.
//
// The zero value is not usable; construct with NewSweepServer.
type SweepServer struct {
	store      *ResultCache
	flight     *resultcache.Flight
	maxWorkers int
	maxJobs    int
	start      time.Time

	// baseCtx parents every sweep; Cancel cancels it (hard shutdown:
	// queued jobs are skipped, in-flight simulations finish, streams end
	// with an error event).
	baseCtx context.Context
	cancel  context.CancelFunc

	// mu guards draining and the inflight Add, so a drain cannot race a
	// request between its acceptance check and its registration.
	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	sweeps   atomic.Uint64
	simJobs  atomic.Uint64
	sweepSeq atomic.Uint64

	tel serverTelemetry
}

// serverTelemetry bundles the service's observability state: the
// exposition registry, the per-phase histograms, the in-flight gauges,
// the recent-sweep trace ring, and the structured logger (discarding
// until SetLogOutput).
type serverTelemetry struct {
	reg    *telemetry.Registry
	log    *telemetry.Logger
	traces *telemetry.TraceStore

	sweepsInflight *telemetry.Gauge
	jobsInflight   *telemetry.Gauge
	phases         *telemetry.HistVec
	httpRequests   *telemetry.CounterVec
}

// NewSweepServer builds a sweep service over an open result cache.
// maxWorkers bounds concurrent simulations per sweep (0 = GOMAXPROCS);
// maxJobs bounds jobs per request (0 = DefaultMaxJobs).
func NewSweepServer(store *ResultCache, maxWorkers, maxJobs int) (*SweepServer, error) {
	if store == nil {
		return nil, fmt.Errorf("taglessdram: sweep service needs a result cache")
	}
	if maxWorkers < 0 || maxJobs < 0 {
		return nil, fmt.Errorf("taglessdram: sweep service limits must be non-negative")
	}
	if maxJobs == 0 {
		maxJobs = DefaultMaxJobs
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &SweepServer{
		store:      store,
		flight:     resultcache.NewFlight(),
		maxWorkers: maxWorkers,
		maxJobs:    maxJobs,
		start:      time.Now(),
		baseCtx:    ctx,
		cancel:     cancel,
	}
	s.initTelemetry()
	return s, nil
}

// initTelemetry registers the exposition families. Counters the server
// already owns (cache statistics, sweep/job totals) export through
// read-at-scrape closures, so /metrics and /v1/stats can never drift
// apart.
func (s *SweepServer) initTelemetry() {
	reg := telemetry.NewRegistry()
	s.tel.reg = reg
	s.tel.log = telemetry.NewLogger(nil)
	s.tel.traces = telemetry.NewTraceStore(0)

	st := func(pick func(resultcache.Stats) uint64) func() uint64 {
		return func() uint64 { return pick(s.store.Stats()) }
	}
	reg.CounterFunc("sweepd_resultcache_hits_total",
		"Result-cache lookups answered from the store.",
		st(func(c resultcache.Stats) uint64 { return c.Hits }))
	reg.CounterFunc("sweepd_resultcache_misses_total",
		"Result-cache lookups that had to simulate.",
		st(func(c resultcache.Stats) uint64 { return c.Misses }))
	reg.CounterFunc("sweepd_resultcache_stored_total",
		"Results written to the store.",
		st(func(c resultcache.Stats) uint64 { return c.Stored }))
	reg.CounterFunc("sweepd_resultcache_evicted_total",
		"Store entries evicted (stale model version or audit failure).",
		st(func(c resultcache.Stats) uint64 { return c.Evicted }))
	reg.GaugeFunc("sweepd_resultcache_entries",
		"Result-cache entries on disk.",
		func() float64 { return float64(s.store.Len()) })
	reg.CounterFunc("sweepd_sweeps_total",
		"Sweep requests accepted.", s.sweeps.Load)
	reg.CounterFunc("sweepd_jobs_total",
		"Jobs across accepted sweeps.", s.simJobs.Load)
	s.tel.sweepsInflight = reg.Gauge("sweepd_sweeps_inflight",
		"Sweep requests currently streaming.")
	s.tel.jobsInflight = reg.Gauge("sweepd_jobs_inflight",
		"Jobs currently between worker pickup and completion.")
	s.tel.phases = reg.HistogramVec("sweepd_phase_duration_seconds",
		"Wall time per sweep execution phase.", "phase")
	for _, p := range sweepPhases {
		s.tel.phases.With(p)
	}
	s.tel.httpRequests = reg.CounterVec("sweepd_http_requests_total",
		"HTTP requests by route and status class.", "route", "class")
	reg.GaugeFunc("sweepd_model_version",
		"Behavioral generation stamp of the simulator (canonical.go).",
		func() float64 { return float64(modelVersion) })
	reg.GaugeFunc("sweepd_start_time_seconds",
		"Unix time the server started.",
		func() float64 { return float64(s.start.Unix()) })
	reg.GaugeFunc("sweepd_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
}

// SetLogOutput directs the server's structured JSON-lines request log
// (one "http" event per request, one "sweep" event per sweep) to w; nil
// discards. cmd/sweepd points it at stderr.
func (s *SweepServer) SetLogOutput(w io.Writer) { s.tel.log.SetOutput(w) }

// Drain stops accepting new sweeps (they get 503) and blocks until every
// in-flight sweep has finished — the graceful half of shutdown. Safe to
// call more than once.
func (s *SweepServer) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.inflight.Wait()
}

// Cancel hard-cancels every in-flight sweep: queued jobs are skipped,
// running simulations finish, and each stream ends with an error event.
// Pair with Drain to bound shutdown time (second Ctrl-C semantics).
func (s *SweepServer) Cancel() { s.cancel() }

// begin registers an in-flight request, refusing it when draining.
func (s *SweepServer) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// isDraining snapshots the drain flag (for /v1/healthz).
func (s *SweepServer) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// statusRecorder captures the response status for the request counter
// and access log, passing Flush through so event streams still flush
// per line.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusRecorder) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// statusClass renders a status code's exposition class ("2xx", "4xx", ...).
func statusClass(code int) string {
	return fmt.Sprintf("%dxx", code/100)
}

// ServeHTTP implements http.Handler (see internal/sweepapi for the
// protocol). Every request increments the route × status-class counter
// and emits one structured "http" log event.
func (s *SweepServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w}
	began := time.Now()
	route := s.serve(rec, r)
	s.tel.httpRequests.With(route, statusClass(rec.status())).Inc()
	s.tel.log.Event("http",
		telemetry.F("method", r.Method),
		telemetry.F("route", route),
		telemetry.F("status", rec.status()),
		telemetry.F("peer", r.RemoteAddr),
		telemetry.F("duration_ms", time.Since(began).Milliseconds()),
	)
}

// serve dispatches one request and returns its route label.
func (s *SweepServer) serve(w http.ResponseWriter, r *http.Request) string {
	switch r.URL.Path {
	case "/v1/sweep":
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
		} else {
			s.handleSweep(w, r)
		}
	case "/v1/stats":
		s.handleStats(w)
	case "/v1/healthz":
		s.handleHealthz(w)
	case "/v1/sweeps":
		s.handleSweeps(w)
	case "/v1/trace":
		s.handleTrace(w, r)
	case "/metrics":
		s.handleMetrics(w)
	default:
		httpError(w, http.StatusNotFound, "no such endpoint")
		return "other"
	}
	return r.URL.Path
}

// httpError writes a structured sweepapi.ErrorReply.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(sweepapi.ErrorReply{Error: fmt.Sprintf(format, args...)})
}

// buildJobs validates a wire request into native jobs (grid cells
// workload-major, then explicit jobs) plus their fingerprints. Every
// returned error is a client error (HTTP 400).
func (s *SweepServer) buildJobs(req *sweepapi.Request) ([]Job, []string, error) {
	if (len(req.Designs) == 0) != (len(req.Workloads) == 0) {
		return nil, nil, fmt.Errorf("designs and workloads must be set together (the grid is their cross product)")
	}
	base, err := optionsFromWire(req.Options)
	if err != nil {
		return nil, nil, err
	}
	var jobs []Job
	for _, wl := range req.Workloads {
		for _, name := range req.Designs {
			d, err := ParseDesign(name)
			if err != nil {
				return nil, nil, err
			}
			jobs = append(jobs, Job{Design: d, Workload: wl, Options: base})
		}
	}
	for i, wj := range req.Jobs {
		d, err := ParseDesign(wj.Design)
		if err != nil {
			return nil, nil, fmt.Errorf("job %d: %w", i, err)
		}
		o := base
		if wj.Options != nil {
			if o, err = optionsFromWire(wj.Options); err != nil {
				return nil, nil, fmt.Errorf("job %d: %w", i, err)
			}
		}
		jobs = append(jobs, Job{Design: d, Workload: wj.Workload, Options: o})
	}
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("empty sweep: no grid and no jobs")
	}
	if len(jobs) > s.maxJobs {
		return nil, nil, fmt.Errorf("%d jobs exceeds this server's limit of %d", len(jobs), s.maxJobs)
	}
	// Fingerprint every cell up front: this validates options and
	// workload names (unknown anything fails here, before any simulation
	// starts) and gives the accepted event its content addresses.
	fps := make([]string, len(jobs))
	for i := range jobs {
		jobs[i].Options.ResultCache = s.store
		fp, err := jobs[i].Fingerprint()
		if err != nil {
			return nil, nil, fmt.Errorf("job %d (%s/%v): %w", i, jobs[i].Workload, jobs[i].Design, err)
		}
		fps[i] = fp
	}
	return jobs, fps, nil
}

// workers clamps a requested fan-out width to the server's ceiling.
func (s *SweepServer) workers(requested int) int {
	if requested <= 0 {
		return s.maxWorkers
	}
	if s.maxWorkers > 0 && requested > s.maxWorkers {
		return s.maxWorkers
	}
	return requested
}

// sweepCtxHook, when non-nil, receives each accepted sweep's merged
// context (request ∪ server shutdown). Cancel propagates to that context
// through a goroutine, so tests that must observe "the hard cancel has
// reached this sweep" wait on the context itself instead of sleeping.
var sweepCtxHook func(context.Context)

// logSweep emits the one-line structured summary of a finished (or
// refused) sweep.
func (s *SweepServer) logSweep(tr *telemetry.Trace, peer, outcome string, delta sweepapi.CacheStats, err error) {
	sum := tr.Summary()
	fields := []telemetry.Field{
		telemetry.F("sweep_id", sum.ID),
		telemetry.F("peer", peer),
		telemetry.F("jobs", sum.Jobs),
		telemetry.F("workers", sum.Workers),
		telemetry.F("cached", sum.Cached),
		telemetry.F("simulated", sum.Simulated),
		telemetry.F("cache_hits", delta.Hits),
		telemetry.F("cache_misses", delta.Misses),
		telemetry.F("cache_stored", delta.Stored),
		telemetry.F("cache_evicted", delta.Evicted),
		telemetry.F("duration_ms", sum.Duration.Milliseconds()),
		telemetry.F("outcome", outcome),
	}
	if err != nil {
		fields = append(fields, telemetry.F("error", err.Error()))
	}
	s.tel.log.Event("sweep", fields...)
}

// handleSweep runs one sweep request, streaming events as they happen.
func (s *SweepServer) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		w.Header().Set("Retry-After", drainRetryAfter)
		httpError(w, http.StatusServiceUnavailable, "draining")
		s.tel.log.Event("sweep",
			telemetry.F("peer", r.RemoteAddr),
			telemetry.F("outcome", "refused-draining"))
		return
	}
	defer s.inflight.Done()
	s.tel.sweepsInflight.Inc()
	defer s.tel.sweepsInflight.Dec()

	began := time.Now()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req sweepapi.Request
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		s.tel.log.Event("sweep",
			telemetry.F("peer", r.RemoteAddr),
			telemetry.F("outcome", "invalid"),
			telemetry.F("error", err.Error()))
		return
	}
	jobs, fps, err := s.buildJobs(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		s.tel.log.Event("sweep",
			telemetry.F("peer", r.RemoteAddr),
			telemetry.F("outcome", "invalid"),
			telemetry.F("error", err.Error()))
		return
	}
	workers := s.workers(req.Workers)
	s.sweeps.Add(1)
	s.simJobs.Add(uint64(len(jobs)))

	// The sweep's span trace: lane 0 holds the sweep-level phases, job i
	// runs in lane i+1. All span timestamps are offsets from `began`.
	id := fmt.Sprintf("s%06d", s.sweepSeq.Add(1))
	tr := telemetry.NewTrace(id, began, len(jobs), workers, r.RemoteAddr)
	s.tel.traces.Add(tr)
	validated := tr.Since()
	s.tel.phases.With("validate").Observe(validated)
	tr.Add("validate", telemetry.CatSweep, 0, 0, validated)

	// From here on the response is a 200 event stream; failures become
	// error events, not status codes.
	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev *sweepapi.Event) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(&sweepapi.Event{
		Type: sweepapi.EventAccepted, SweepID: id,
		Jobs: len(jobs), Workers: workers, Fingerprints: fps,
	})

	// The sweep obeys both the client (disconnects cancel r.Context())
	// and the server's own hard shutdown.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if sweepCtxHook != nil {
		sweepCtxHook(ctx)
	}

	// The probe timestamps each job's milestones into its trace lane.
	// Slots are written once per index from worker goroutines and read
	// by this goroutine only after sweepRunShared returns.
	runOff := tr.Since()
	starts := make([]time.Duration, len(jobs))
	lookups := make([]time.Duration, len(jobs))
	looked := make([]bool, len(jobs))
	cached := make([]bool, len(jobs))
	probe := &sweepProbe{
		jobStart: func(i int) {
			s.tel.jobsInflight.Inc()
			starts[i] = tr.Since()
			tr.Add("queued", telemetry.CatPhase, i+1, runOff, starts[i])
		},
		jobLookup: func(i int, hit bool) {
			lookups[i] = tr.Since()
			looked[i] = true
			s.tel.phases.With("cache-lookup").Observe(lookups[i] - starts[i])
			tr.Add("cache-lookup", telemetry.CatPhase, i+1, starts[i], lookups[i])
		},
		jobDone: func(i int, wasCached bool, err error) {
			defer s.tel.jobsInflight.Dec()
			cached[i] = wasCached
			end := tr.Since()
			from := starts[i]
			if looked[i] {
				from = lookups[i]
			}
			name := "simulate"
			switch {
			case err != nil:
				name = "failed"
			case wasCached:
				name = "cached-hit"
			default:
				s.tel.phases.With("simulate").Observe(end - from)
			}
			tr.Add(name, telemetry.CatPhase, i+1, from, end)
			tr.JobDone(wasCached && err == nil)
		},
	}

	stats0 := s.store.Stats()
	cacheDelta := func() sweepapi.CacheStats {
		stats1 := s.store.Stats()
		return sweepapi.CacheStats{
			Hits:    stats1.Hits - stats0.Hits,
			Misses:  stats1.Misses - stats0.Misses,
			Stored:  stats1.Stored - stats0.Stored,
			Evicted: stats1.Evicted - stats0.Evicted,
		}
	}
	results, err := sweepRunShared(ctx, jobs, sweep.Options{
		Workers: workers,
		OnProgress: func(p sweep.Progress) {
			// Serialized by the sweep engine; the handler goroutine only
			// writes after sweepRunShared returns, so emit never races.
			emit(&sweepapi.Event{
				Type: sweepapi.EventProgress,
				Done: p.Done, Total: p.Total,
				ElapsedMS: p.Elapsed.Milliseconds(),
				ETAMS:     p.ETA.Milliseconds(),
			})
		},
	}, s.flight, true, probe)
	if err != nil {
		outcome := telemetry.StateError
		if errors.Is(err, context.Canceled) {
			outcome = telemetry.StateCanceled
		}
		emit(&sweepapi.Event{Type: sweepapi.EventError, SweepID: id, Error: err.Error()})
		tr.Finish(outcome)
		s.logSweep(tr, r.RemoteAddr, outcome, cacheDelta(), err)
		return
	}
	streamOff := tr.Since()
	for i, res := range results {
		encStart := tr.Since()
		payload, err := resultcache.Encode(res)
		encEnd := tr.Since()
		s.tel.phases.With("encode").Observe(encEnd - encStart)
		tr.Add("encode", telemetry.CatPhase, i+1, encStart, encEnd)
		if err != nil {
			err = fmt.Errorf("encoding job %d result: %v", i, err)
			emit(&sweepapi.Event{Type: sweepapi.EventError, SweepID: id, Error: err.Error()})
			tr.Finish(telemetry.StateError)
			s.logSweep(tr, r.RemoteAddr, telemetry.StateError, cacheDelta(), err)
			return
		}
		emit(&sweepapi.Event{
			Type: sweepapi.EventResult,
			Job:  i, Design: jobs[i].Design.String(), Workload: jobs[i].Workload,
			Fingerprint: fps[i], Cached: cached[i], Result: payload,
		})
		sent := tr.Since()
		s.tel.phases.With("stream").Observe(sent - encEnd)
		tr.Add("streamed", telemetry.CatPhase, i+1, encEnd, sent)
		// The job's umbrella span: its whole lifetime in the sweep, from
		// engine start to its result on the wire, colored by how it was
		// answered.
		cat := telemetry.CatSimulated
		if cached[i] {
			cat = telemetry.CatCached
		}
		tr.Add(fmt.Sprintf("%s/%v", jobs[i].Workload, jobs[i].Design), cat, i+1, runOff, sent)
	}
	delta := cacheDelta()
	emit(&sweepapi.Event{Type: sweepapi.EventDone, SweepID: id, Cache: &delta})
	end := tr.Since()
	tr.Add("stream", telemetry.CatSweep, 0, streamOff, end)
	tr.Add("sweep "+id, telemetry.CatSweep, 0, 0, end)
	tr.Finish(telemetry.StateOK)
	s.logSweep(tr, r.RemoteAddr, telemetry.StateOK, delta, nil)
}

// statsReply snapshots the service statistics.
func (s *SweepServer) statsReply() sweepapi.StatsReply {
	st := s.store.Stats()
	return sweepapi.StatsReply{
		Cache: sweepapi.CacheStats{
			Hits: st.Hits, Misses: st.Misses,
			Stored: st.Stored, Evicted: st.Evicted,
		},
		Entries:        s.store.Len(),
		Sweeps:         s.sweeps.Load(),
		SimJobs:        s.simJobs.Load(),
		ModelVersion:   modelVersion,
		Start:          s.start.UTC().Format(time.RFC3339),
		UptimeMS:       time.Since(s.start).Milliseconds(),
		InFlightSweeps: int(s.tel.sweepsInflight.Value()),
		InFlightJobs:   int(s.tel.jobsInflight.Value()),
	}
}

// handleStats serves the lifetime statistics snapshot.
func (s *SweepServer) handleStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statsReply())
}

// handleHealthz serves liveness plus the service identity block; a
// draining server answers 503 with a Retry-After so well-behaved
// clients back off.
func (s *SweepServer) handleHealthz(w http.ResponseWriter) {
	hr := sweepapi.HealthReply{
		Status:       "ok",
		ModelVersion: modelVersion,
		Start:        s.start.UTC().Format(time.RFC3339),
		UptimeMS:     time.Since(s.start).Milliseconds(),
	}
	w.Header().Set("Content-Type", "application/json")
	if s.isDraining() {
		hr.Status = "draining"
		w.Header().Set("Retry-After", drainRetryAfter)
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(hr)
}

// handleMetrics serves the Prometheus text exposition.
func (s *SweepServer) handleMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.reg.WriteProm(w)
}

// handleSweeps lists the retained recent sweeps, newest first.
func (s *SweepServer) handleSweeps(w http.ResponseWriter) {
	sums := s.tel.traces.Summaries()
	reply := sweepapi.SweepsReply{Sweeps: make([]sweepapi.SweepSummary, len(sums))}
	for i, sm := range sums {
		reply.Sweeps[i] = sweepapi.SweepSummary{
			ID: sm.ID, State: sm.State, Peer: sm.Peer,
			Jobs: sm.Jobs, Done: sm.Done,
			Cached: sm.Cached, Simulated: sm.Simulated,
			Workers:    sm.Workers,
			Start:      sm.Begun.UTC().Format(time.RFC3339),
			DurationMS: sm.Duration.Milliseconds(),
			Spans:      sm.Spans,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

// handleTrace serves one sweep's span timeline as Chrome trace_event
// JSON (?sweep=ID; omitted = the most recent sweep).
func (s *SweepServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("sweep")
	var tr *telemetry.Trace
	var ok bool
	if id == "" {
		tr, ok = s.tel.traces.Latest()
	} else {
		tr, ok = s.tel.traces.Get(id)
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no trace for sweep %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tr.WriteChrome(w)
}
