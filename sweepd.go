package taglessdram

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"taglessdram/internal/resultcache"
	"taglessdram/internal/sweep"
	"taglessdram/internal/sweepapi"
)

// maxRequestBytes bounds a sweep request body; a full design × workload
// grid with per-job options is a few hundred KB at most.
const maxRequestBytes = 8 << 20

// DefaultMaxJobs is the default per-request job ceiling of a sweep
// service.
const DefaultMaxJobs = 4096

// SweepServer is the sweep service behind cmd/sweepd: an http.Handler
// that accepts experiment grids (POST /v1/sweep), shards their jobs
// across the sweep worker pool behind one shared result cache and one
// server-lifetime single-flight memo, and streams progress and results
// back as JSON-lines events. Identical cells — within one request or
// across concurrent requests — simulate exactly once: concurrent
// duplicates share the in-flight execution, later ones replay from the
// store.
//
// The zero value is not usable; construct with NewSweepServer.
type SweepServer struct {
	store      *ResultCache
	flight     *resultcache.Flight
	maxWorkers int
	maxJobs    int

	// baseCtx parents every sweep; Cancel cancels it (hard shutdown:
	// queued jobs are skipped, in-flight simulations finish, streams end
	// with an error event).
	baseCtx context.Context
	cancel  context.CancelFunc

	// mu guards draining and the inflight Add, so a drain cannot race a
	// request between its acceptance check and its registration.
	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	sweeps  atomic.Uint64
	simJobs atomic.Uint64
}

// NewSweepServer builds a sweep service over an open result cache.
// maxWorkers bounds concurrent simulations per sweep (0 = GOMAXPROCS);
// maxJobs bounds jobs per request (0 = DefaultMaxJobs).
func NewSweepServer(store *ResultCache, maxWorkers, maxJobs int) (*SweepServer, error) {
	if store == nil {
		return nil, fmt.Errorf("taglessdram: sweep service needs a result cache")
	}
	if maxWorkers < 0 || maxJobs < 0 {
		return nil, fmt.Errorf("taglessdram: sweep service limits must be non-negative")
	}
	if maxJobs == 0 {
		maxJobs = DefaultMaxJobs
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &SweepServer{
		store:      store,
		flight:     resultcache.NewFlight(),
		maxWorkers: maxWorkers,
		maxJobs:    maxJobs,
		baseCtx:    ctx,
		cancel:     cancel,
	}, nil
}

// Drain stops accepting new sweeps (they get 503) and blocks until every
// in-flight sweep has finished — the graceful half of shutdown. Safe to
// call more than once.
func (s *SweepServer) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.inflight.Wait()
}

// Cancel hard-cancels every in-flight sweep: queued jobs are skipped,
// running simulations finish, and each stream ends with an error event.
// Pair with Drain to bound shutdown time (second Ctrl-C semantics).
func (s *SweepServer) Cancel() { s.cancel() }

// begin registers an in-flight request, refusing it when draining.
func (s *SweepServer) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// isDraining snapshots the drain flag (for /v1/healthz).
func (s *SweepServer) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ServeHTTP implements http.Handler (see internal/sweepapi for the
// protocol).
func (s *SweepServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/sweep":
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		s.handleSweep(w, r)
	case "/v1/stats":
		s.handleStats(w)
	case "/v1/healthz":
		if s.isDraining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	default:
		httpError(w, http.StatusNotFound, "no such endpoint")
	}
}

// httpError writes a structured sweepapi.ErrorReply.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(sweepapi.ErrorReply{Error: fmt.Sprintf(format, args...)})
}

// buildJobs validates a wire request into native jobs (grid cells
// workload-major, then explicit jobs) plus their fingerprints. Every
// returned error is a client error (HTTP 400).
func (s *SweepServer) buildJobs(req *sweepapi.Request) ([]Job, []string, error) {
	if (len(req.Designs) == 0) != (len(req.Workloads) == 0) {
		return nil, nil, fmt.Errorf("designs and workloads must be set together (the grid is their cross product)")
	}
	base, err := optionsFromWire(req.Options)
	if err != nil {
		return nil, nil, err
	}
	var jobs []Job
	for _, wl := range req.Workloads {
		for _, name := range req.Designs {
			d, err := ParseDesign(name)
			if err != nil {
				return nil, nil, err
			}
			jobs = append(jobs, Job{Design: d, Workload: wl, Options: base})
		}
	}
	for i, wj := range req.Jobs {
		d, err := ParseDesign(wj.Design)
		if err != nil {
			return nil, nil, fmt.Errorf("job %d: %w", i, err)
		}
		o := base
		if wj.Options != nil {
			if o, err = optionsFromWire(wj.Options); err != nil {
				return nil, nil, fmt.Errorf("job %d: %w", i, err)
			}
		}
		jobs = append(jobs, Job{Design: d, Workload: wj.Workload, Options: o})
	}
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("empty sweep: no grid and no jobs")
	}
	if len(jobs) > s.maxJobs {
		return nil, nil, fmt.Errorf("%d jobs exceeds this server's limit of %d", len(jobs), s.maxJobs)
	}
	// Fingerprint every cell up front: this validates options and
	// workload names (unknown anything fails here, before any simulation
	// starts) and gives the accepted event its content addresses.
	fps := make([]string, len(jobs))
	for i := range jobs {
		jobs[i].Options.ResultCache = s.store
		fp, err := jobs[i].Fingerprint()
		if err != nil {
			return nil, nil, fmt.Errorf("job %d (%s/%v): %w", i, jobs[i].Workload, jobs[i].Design, err)
		}
		fps[i] = fp
	}
	return jobs, fps, nil
}

// workers clamps a requested fan-out width to the server's ceiling.
func (s *SweepServer) workers(requested int) int {
	if requested <= 0 {
		return s.maxWorkers
	}
	if s.maxWorkers > 0 && requested > s.maxWorkers {
		return s.maxWorkers
	}
	return requested
}

// sweepCtxHook, when non-nil, receives each accepted sweep's merged
// context (request ∪ server shutdown). Cancel propagates to that context
// through a goroutine, so tests that must observe "the hard cancel has
// reached this sweep" wait on the context itself instead of sleeping.
var sweepCtxHook func(context.Context)

// handleSweep runs one sweep request, streaming events as they happen.
func (s *SweepServer) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.inflight.Done()

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req sweepapi.Request
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	jobs, fps, err := s.buildJobs(&req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	workers := s.workers(req.Workers)
	s.sweeps.Add(1)
	s.simJobs.Add(uint64(len(jobs)))

	// From here on the response is a 200 event stream; failures become
	// error events, not status codes.
	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev *sweepapi.Event) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(&sweepapi.Event{
		Type: sweepapi.EventAccepted,
		Jobs: len(jobs), Workers: workers, Fingerprints: fps,
	})

	// The sweep obeys both the client (disconnects cancel r.Context())
	// and the server's own hard shutdown.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if sweepCtxHook != nil {
		sweepCtxHook(ctx)
	}

	stats0 := s.store.Stats()
	results, err := sweepRunShared(ctx, jobs, sweep.Options{
		Workers: workers,
		OnProgress: func(p sweep.Progress) {
			// Serialized by the sweep engine; the handler goroutine only
			// writes after sweepRunShared returns, so emit never races.
			emit(&sweepapi.Event{
				Type: sweepapi.EventProgress,
				Done: p.Done, Total: p.Total,
				ElapsedMS: p.Elapsed.Milliseconds(),
				ETAMS:     p.ETA.Milliseconds(),
			})
		},
	}, s.flight, true)
	if err != nil {
		emit(&sweepapi.Event{Type: sweepapi.EventError, Error: err.Error()})
		return
	}
	for i, res := range results {
		payload, err := resultcache.Encode(res)
		if err != nil {
			emit(&sweepapi.Event{Type: sweepapi.EventError,
				Error: fmt.Sprintf("encoding job %d result: %v", i, err)})
			return
		}
		emit(&sweepapi.Event{
			Type: sweepapi.EventResult,
			Job:  i, Design: jobs[i].Design.String(), Workload: jobs[i].Workload,
			Fingerprint: fps[i], Result: payload,
		})
	}
	stats1 := s.store.Stats()
	emit(&sweepapi.Event{Type: sweepapi.EventDone, Cache: &sweepapi.CacheStats{
		Hits:    stats1.Hits - stats0.Hits,
		Misses:  stats1.Misses - stats0.Misses,
		Stored:  stats1.Stored - stats0.Stored,
		Evicted: stats1.Evicted - stats0.Evicted,
	}})
}

// handleStats serves the lifetime statistics snapshot.
func (s *SweepServer) handleStats(w http.ResponseWriter) {
	st := s.store.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sweepapi.StatsReply{
		Cache: sweepapi.CacheStats{
			Hits: st.Hits, Misses: st.Misses,
			Stored: st.Stored, Evicted: st.Evicted,
		},
		Entries: s.store.Len(),
		Sweeps:  s.sweeps.Load(),
		SimJobs: s.simJobs.Load(),
	})
}
