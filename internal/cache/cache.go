// Package cache implements the on-die SRAM caches (L1 I/D and L2) as
// set-associative, write-back, write-allocate arrays with LRU replacement.
//
// The model is functional: Access reports hit/miss and any victim line, and
// the caller charges the configured latency. In the tagless design the
// arrays are indexed and tagged by cache addresses (CA) instead of physical
// addresses (Section 3.1); the model is agnostic — it caches whatever
// address space the caller presents.
//
// The arrays are stored structure-of-arrays: the hit path scans only the
// set's tag words (one cache line for an 8-way set), touching LRU stamps
// and dirty bits only on the way it needs. Invalid ways carry a sentinel
// tag, so presence checks need no separate valid bit.
package cache

import (
	"fmt"

	"taglessdram/internal/config"
)

// invalidTag marks an empty way. Real tags are block numbers (addr >> shift)
// and stay far below 2^63, so the sentinel cannot collide.
const invalidTag = ^uint64(0)

// Victim describes a line displaced by a fill.
type Victim struct {
	Addr  uint64 // base address of the displaced line
	Dirty bool   // needs write-back
}

// Cache is one set-associative SRAM cache.
type Cache struct {
	cfg   config.CacheConfig
	ways  int
	nsets int
	tags  []uint64 // set-major: tags[si*ways+w]
	// used packs each way's LRU timestamp and dirty bit into one word
	// (tick<<1 | dirty), so the access path touches two arrays instead of
	// three. Timestamps are unique, so the dirty bit never decides a
	// victim comparison.
	used  []uint64
	tick  uint64
	shift uint // log2(line size)
	mask  uint64

	// pageCnt counts resident lines per page group (a page's block number
	// prefix, hashed into a power-of-two table). InvalidateRange consults it
	// to skip the per-line set scans for pages with no resident lines — the
	// overwhelmingly common case when a DRAM-cache page eviction flushes a
	// page that the small on-die cache never held. Hash collisions only ever
	// inflate a count (forcing the scan), never hide a resident line, so the
	// skip is exact. Nil when the line size does not evenly tile a page.
	pageCnt   []uint32
	pageShift uint // log2(lines per page)
	pageMask  uint64

	// Same-line memo: lastIdx is the flat index of the line that served the
	// previous Access. A repeat access to the same block skips the way scan.
	// The memo is only trusted when tags[lastIdx] still holds the block, so
	// evictions and invalidations cannot make it lie.
	lastBlock uint64
	lastIdx   int

	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// New constructs a cache from its configuration.
func New(cfg config.CacheConfig) *Cache {
	nsets := cfg.Sets()
	if nsets <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	n := nsets * cfg.Ways
	c := &Cache{
		cfg:   cfg,
		ways:  cfg.Ways,
		nsets: nsets,
		tags:  make([]uint64, n),
		used:  make([]uint64, n),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for cfg.LineBytes>>c.shift != 1 {
		c.shift++
	}
	c.mask = uint64(nsets - 1)
	if nsets&(nsets-1) != 0 {
		c.mask = 0 // fall back to modulo for non-power-of-two set counts
	}
	if lpp := config.PageSize / cfg.LineBytes; lpp >= 2 && lpp&(lpp-1) == 0 && config.PageSize%cfg.LineBytes == 0 {
		for lpp>>c.pageShift != 1 {
			c.pageShift++
		}
		groups := 1
		for groups < n/2 {
			groups *= 2
		}
		c.pageCnt = make([]uint32, groups)
		c.pageMask = uint64(groups - 1)
	}
	return c
}

// pageGroup returns the presence-counter slot for a line's block number.
func (c *Cache) pageGroup(tag uint64) *uint32 {
	return &c.pageCnt[tag>>c.pageShift&c.pageMask]
}

// Config returns the cache configuration.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// Latency returns the configured hit latency in cycles.
func (c *Cache) Latency() int { return c.cfg.LatencyCycle }

func (c *Cache) index(addr uint64) (setIdx int, tag uint64) {
	block := addr >> c.shift
	if c.mask != 0 {
		return int(block & c.mask), block
	}
	return int(block % uint64(c.nsets)), block
}

// Lookup reports whether addr is present without modifying state.
func (c *Cache) Lookup(addr uint64) bool {
	si, tag := c.index(addr)
	base := si * c.ways
	for _, t := range c.tags[base : base+c.ways] {
		if t == tag {
			return true
		}
	}
	return false
}

// Access performs a load (write=false) or store (write=true). On a miss
// the line is allocated; if a valid line is displaced it is returned as a
// victim (with its dirtiness) so the caller can model the write-back.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim Victim, hasVictim bool) {
	c.Accesses++
	c.tick++
	var wbit uint64
	if write {
		wbit = 1
	}
	block := addr >> c.shift
	if block == c.lastBlock && c.tags[c.lastIdx] == block {
		c.Hits++
		c.used[c.lastIdx] = c.tick<<1 | c.used[c.lastIdx]&1 | wbit
		return true, Victim{}, false
	}
	si, tag := c.index(addr)
	base := si * c.ways
	tags := c.tags[base : base+c.ways]
	used := c.used[base : base+c.ways]
	// Hit path first: a pure equality scan over the set's tag words (one
	// cache line for an 8-way set), touching the recency word only for
	// the way that hit. The victim scan runs only on a miss.
	for w, t := range tags {
		if t == tag {
			c.Hits++
			c.lastBlock, c.lastIdx = tag, base+w
			used[w] = c.tick<<1 | used[w]&1 | wbit
			return true, Victim{}, false
		}
	}
	c.Misses++
	// Choose an invalid way, else the LRU way.
	vi, vu := 0, ^uint64(0)
	for w, t := range tags {
		if t == invalidTag {
			vi = w
			break
		}
		if used[w] < vu {
			vi, vu = w, used[w]
		}
	}
	i := base + vi
	if old := c.tags[i]; old != invalidTag {
		hasVictim = true
		victim = Victim{Addr: old << c.shift, Dirty: used[vi]&1 == 1}
		if victim.Dirty {
			c.Writebacks++
		}
		if c.pageCnt != nil {
			*c.pageGroup(old)--
		}
	}
	if c.pageCnt != nil {
		*c.pageGroup(tag)++
	}
	c.tags[i] = tag
	c.used[i] = c.tick<<1 | wbit
	c.lastBlock, c.lastIdx = tag, i
	return false, victim, hasVictim
}

// MarkDirty sets the dirty bit of the line containing addr if present,
// without perturbing LRU state or counters (used to sink write-backs from
// an upper-level cache). It reports whether the line was present.
func (c *Cache) MarkDirty(addr uint64) bool {
	si, tag := c.index(addr)
	base := si * c.ways
	for w, t := range c.tags[base : base+c.ways] {
		if t == tag {
			c.used[base+w] |= 1
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr, returning whether it was
// present and dirty (the caller models the write-back of dirty data).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	si, tag := c.index(addr)
	base := si * c.ways
	for w, t := range c.tags[base : base+c.ways] {
		if t == tag {
			i := base + w
			present, dirty = true, c.used[i]&1 == 1
			c.tags[i] = invalidTag
			c.used[i] = 0
			if c.pageCnt != nil {
				*c.pageGroup(tag)--
			}
			return present, dirty
		}
	}
	return false, false
}

// InvalidateRange drops every line within [base, base+size) and returns how
// many of the dropped lines were dirty. Used when a DRAM-cache page is
// evicted and its on-die (CA-tagged) lines must be flushed.
func (c *Cache) InvalidateRange(base uint64, size int) (dropped, dirty int) {
	lb := uint64(c.cfg.LineBytes)
	addr, end := base, base+uint64(size)
	for addr < end {
		// First address past the page group containing addr's line.
		next := (addr>>c.shift>>c.pageShift + 1) << c.pageShift << c.shift
		if next > end {
			next = end
		}
		if c.pageCnt != nil && *c.pageGroup(addr >> c.shift) == 0 {
			// No line of this page group is resident: skip the whole group,
			// keeping the stride phase-aligned with base.
			addr += (next - addr + lb - 1) / lb * lb
			continue
		}
		for ; addr < next; addr += lb {
			p, d := c.Invalidate(addr)
			if p {
				dropped++
				if d {
					dirty++
				}
			}
		}
	}
	return dropped, dirty
}

// HitRate returns hits/accesses, or 0 before any access.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, t := range c.tags {
		if t != invalidTag {
			n++
		}
	}
	return n
}

// Flush invalidates everything, returning the number of dirty lines lost.
func (c *Cache) Flush() (dirty int) {
	for i := range c.tags {
		if c.tags[i] != invalidTag && c.used[i]&1 == 1 {
			dirty++
		}
		c.tags[i] = invalidTag
		c.used[i] = 0
	}
	for i := range c.pageCnt {
		c.pageCnt[i] = 0
	}
	return dirty
}

// ResetStats clears counters without touching contents. The LRU clock
// (tick) and per-line recency stamps are deliberately left alone: resetting
// them at a measurement boundary would invert recency order and change
// victim selection mid-run.
func (c *Cache) ResetStats() {
	c.Accesses, c.Hits, c.Misses, c.Writebacks = 0, 0, 0, 0
}

// Counters snapshots the four statistics counters (for excluding a
// fast-forwarded phase from measurement without losing warm contents).
func (c *Cache) Counters() [4]uint64 {
	return [4]uint64{c.Accesses, c.Hits, c.Misses, c.Writebacks}
}

// SetCounters restores counters captured by Counters.
func (c *Cache) SetCounters(v [4]uint64) {
	c.Accesses, c.Hits, c.Misses, c.Writebacks = v[0], v[1], v[2], v[3]
}

// State is a cache's serializable state: contents, recency and counters.
// Geometry comes from construction and is not part of the state.
type State struct {
	Tags      []uint64
	Used      []uint64
	Dirty     []bool
	Tick      uint64
	LastBlock uint64
	LastIdx   int
	Counters  [4]uint64
}

// State snapshots the cache. The serialized form keeps timestamps and
// dirty bits as separate slices, independent of the packed in-memory
// layout.
func (c *Cache) State() State {
	st := State{
		Tags:      append([]uint64(nil), c.tags...),
		Used:      make([]uint64, len(c.used)),
		Dirty:     make([]bool, len(c.used)),
		Tick:      c.tick,
		LastBlock: c.lastBlock,
		LastIdx:   c.lastIdx,
		Counters:  c.Counters(),
	}
	for i, u := range c.used {
		st.Used[i] = u >> 1
		st.Dirty[i] = u&1 == 1
	}
	return st
}

// SetState restores a snapshot taken from an identically-configured cache.
func (c *Cache) SetState(st State) {
	if len(st.Tags) != len(c.tags) {
		panic(fmt.Sprintf("cache: state geometry mismatch (%d vs %d ways)", len(st.Tags), len(c.tags)))
	}
	copy(c.tags, st.Tags)
	for i := range c.pageCnt {
		c.pageCnt[i] = 0
	}
	if c.pageCnt != nil {
		for _, t := range c.tags {
			if t != invalidTag {
				*c.pageGroup(t)++
			}
		}
	}
	for i := range c.used {
		var d uint64
		if i < len(st.Dirty) && st.Dirty[i] {
			d = 1
		}
		c.used[i] = st.Used[i]<<1 | d
	}
	c.tick = st.Tick
	c.lastBlock = st.LastBlock
	c.lastIdx = st.LastIdx
	c.SetCounters(st.Counters)
}
