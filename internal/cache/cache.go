// Package cache implements the on-die SRAM caches (L1 I/D and L2) as
// set-associative, write-back, write-allocate arrays with LRU replacement.
//
// The model is functional: Access reports hit/miss and any victim line, and
// the caller charges the configured latency. In the tagless design the
// arrays are indexed and tagged by cache addresses (CA) instead of physical
// addresses (Section 3.1); the model is agnostic — it caches whatever
// address space the caller presents.
//
// The arrays are stored structure-of-arrays: the hit path scans only the
// set's tag words (one cache line for an 8-way set), touching LRU stamps
// and dirty bits only on the way it needs. Invalid ways carry a sentinel
// tag, so presence checks need no separate valid bit.
package cache

import (
	"fmt"

	"taglessdram/internal/config"
)

// invalidTag marks an empty way. Real tags are block numbers (addr >> shift)
// and stay far below 2^63, so the sentinel cannot collide.
const invalidTag = ^uint64(0)

// Victim describes a line displaced by a fill.
type Victim struct {
	Addr  uint64 // base address of the displaced line
	Dirty bool   // needs write-back
}

// Cache is one set-associative SRAM cache.
type Cache struct {
	cfg   config.CacheConfig
	ways  int
	nsets int
	tags  []uint64 // set-major: tags[si*ways+w]
	used  []uint64 // LRU timestamps, same layout
	dirty []bool   // dirty bits, same layout
	tick  uint64
	shift uint // log2(line size)
	mask  uint64

	// Same-line memo: lastIdx is the flat index of the line that served the
	// previous Access. A repeat access to the same block skips the way scan.
	// The memo is only trusted when tags[lastIdx] still holds the block, so
	// evictions and invalidations cannot make it lie.
	lastBlock uint64
	lastIdx   int

	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// New constructs a cache from its configuration.
func New(cfg config.CacheConfig) *Cache {
	nsets := cfg.Sets()
	if nsets <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	n := nsets * cfg.Ways
	c := &Cache{
		cfg:   cfg,
		ways:  cfg.Ways,
		nsets: nsets,
		tags:  make([]uint64, n),
		used:  make([]uint64, n),
		dirty: make([]bool, n),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for cfg.LineBytes>>c.shift != 1 {
		c.shift++
	}
	c.mask = uint64(nsets - 1)
	if nsets&(nsets-1) != 0 {
		c.mask = 0 // fall back to modulo for non-power-of-two set counts
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// Latency returns the configured hit latency in cycles.
func (c *Cache) Latency() int { return c.cfg.LatencyCycle }

func (c *Cache) index(addr uint64) (setIdx int, tag uint64) {
	block := addr >> c.shift
	if c.mask != 0 {
		return int(block & c.mask), block
	}
	return int(block % uint64(c.nsets)), block
}

// Lookup reports whether addr is present without modifying state.
func (c *Cache) Lookup(addr uint64) bool {
	si, tag := c.index(addr)
	base := si * c.ways
	for _, t := range c.tags[base : base+c.ways] {
		if t == tag {
			return true
		}
	}
	return false
}

// Access performs a load (write=false) or store (write=true). On a miss
// the line is allocated; if a valid line is displaced it is returned as a
// victim (with its dirtiness) so the caller can model the write-back.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim Victim, hasVictim bool) {
	c.Accesses++
	c.tick++
	block := addr >> c.shift
	if block == c.lastBlock && c.tags[c.lastIdx] == block {
		c.Hits++
		c.used[c.lastIdx] = c.tick
		if write {
			c.dirty[c.lastIdx] = true
		}
		return true, Victim{}, false
	}
	si, tag := c.index(addr)
	base := si * c.ways
	tags := c.tags[base : base+c.ways]
	for w, t := range tags {
		if t == tag {
			c.Hits++
			i := base + w
			c.lastBlock, c.lastIdx = tag, i
			c.used[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			return true, Victim{}, false
		}
	}
	c.Misses++
	// Choose an invalid way, else the LRU way.
	vi := 0
	for w, t := range tags {
		if t == invalidTag {
			vi = w
			break
		}
		if c.used[base+w] < c.used[base+vi] {
			vi = w
		}
	}
	i := base + vi
	if old := c.tags[i]; old != invalidTag {
		hasVictim = true
		victim = Victim{Addr: old << c.shift, Dirty: c.dirty[i]}
		if c.dirty[i] {
			c.Writebacks++
		}
	}
	c.tags[i] = tag
	c.used[i] = c.tick
	c.dirty[i] = write
	c.lastBlock, c.lastIdx = tag, i
	return false, victim, hasVictim
}

// MarkDirty sets the dirty bit of the line containing addr if present,
// without perturbing LRU state or counters (used to sink write-backs from
// an upper-level cache). It reports whether the line was present.
func (c *Cache) MarkDirty(addr uint64) bool {
	si, tag := c.index(addr)
	base := si * c.ways
	for w, t := range c.tags[base : base+c.ways] {
		if t == tag {
			c.dirty[base+w] = true
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr, returning whether it was
// present and dirty (the caller models the write-back of dirty data).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	si, tag := c.index(addr)
	base := si * c.ways
	for w, t := range c.tags[base : base+c.ways] {
		if t == tag {
			i := base + w
			present, dirty = true, c.dirty[i]
			c.tags[i] = invalidTag
			c.used[i] = 0
			c.dirty[i] = false
			return present, dirty
		}
	}
	return false, false
}

// InvalidateRange drops every line within [base, base+size) and returns how
// many of the dropped lines were dirty. Used when a DRAM-cache page is
// evicted and its on-die (CA-tagged) lines must be flushed.
func (c *Cache) InvalidateRange(base uint64, size int) (dropped, dirty int) {
	for off := 0; off < size; off += c.cfg.LineBytes {
		p, d := c.Invalidate(base + uint64(off))
		if p {
			dropped++
			if d {
				dirty++
			}
		}
	}
	return dropped, dirty
}

// HitRate returns hits/accesses, or 0 before any access.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, t := range c.tags {
		if t != invalidTag {
			n++
		}
	}
	return n
}

// Flush invalidates everything, returning the number of dirty lines lost.
func (c *Cache) Flush() (dirty int) {
	for i := range c.tags {
		if c.tags[i] != invalidTag && c.dirty[i] {
			dirty++
		}
		c.tags[i] = invalidTag
		c.used[i] = 0
		c.dirty[i] = false
	}
	return dirty
}

// ResetStats clears counters without touching contents. The LRU clock
// (tick) and per-line recency stamps are deliberately left alone: resetting
// them at a measurement boundary would invert recency order and change
// victim selection mid-run.
func (c *Cache) ResetStats() {
	c.Accesses, c.Hits, c.Misses, c.Writebacks = 0, 0, 0, 0
}
