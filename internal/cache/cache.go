// Package cache implements the on-die SRAM caches (L1 I/D and L2) as
// set-associative, write-back, write-allocate arrays with LRU replacement.
//
// The model is functional: Access reports hit/miss and any victim line, and
// the caller charges the configured latency. In the tagless design the
// arrays are indexed and tagged by cache addresses (CA) instead of physical
// addresses (Section 3.1); the model is agnostic — it caches whatever
// address space the caller presents.
package cache

import (
	"fmt"

	"taglessdram/internal/config"
)

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Victim describes a line displaced by a fill.
type Victim struct {
	Addr  uint64 // base address of the displaced line
	Dirty bool   // needs write-back
}

// Cache is one set-associative SRAM cache.
type Cache struct {
	cfg   config.CacheConfig
	sets  [][]line
	tick  uint64
	shift uint // log2(line size)
	mask  uint64

	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// New constructs a cache from its configuration.
func New(cfg config.CacheConfig) *Cache {
	nsets := cfg.Sets()
	if nsets <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", cfg))
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for cfg.LineBytes>>c.shift != 1 {
		c.shift++
	}
	c.mask = uint64(nsets - 1)
	if nsets&(nsets-1) != 0 {
		c.mask = 0 // fall back to modulo for non-power-of-two set counts
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// Latency returns the configured hit latency in cycles.
func (c *Cache) Latency() int { return c.cfg.LatencyCycle }

func (c *Cache) index(addr uint64) (setIdx int, tag uint64) {
	block := addr >> c.shift
	if c.mask != 0 {
		return int(block & c.mask), block
	}
	return int(block % uint64(len(c.sets))), block
}

// Lookup reports whether addr is present without modifying state.
func (c *Cache) Lookup(addr uint64) bool {
	si, tag := c.index(addr)
	for i := range c.sets[si] {
		l := &c.sets[si][i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access performs a load (write=false) or store (write=true). On a miss
// the line is allocated; if a valid line is displaced it is returned as a
// victim (with its dirtiness) so the caller can model the write-back.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim Victim, hasVictim bool) {
	c.Accesses++
	c.tick++
	si, tag := c.index(addr)
	set := c.sets[si]
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.Hits++
			l.used = c.tick
			if write {
				l.dirty = true
			}
			return true, Victim{}, false
		}
	}
	c.Misses++
	// Choose an invalid way, else the LRU way.
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].used < set[vi].used {
			vi = i
		}
	}
	l := &set[vi]
	if l.valid {
		hasVictim = true
		victim = Victim{Addr: l.tag << c.shift, Dirty: l.dirty}
		if l.dirty {
			c.Writebacks++
		}
	}
	*l = line{tag: tag, valid: true, dirty: write, used: c.tick}
	return false, victim, hasVictim
}

// MarkDirty sets the dirty bit of the line containing addr if present,
// without perturbing LRU state or counters (used to sink write-backs from
// an upper-level cache). It reports whether the line was present.
func (c *Cache) MarkDirty(addr uint64) bool {
	si, tag := c.index(addr)
	for i := range c.sets[si] {
		l := &c.sets[si][i]
		if l.valid && l.tag == tag {
			l.dirty = true
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr, returning whether it was
// present and dirty (the caller models the write-back of dirty data).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	si, tag := c.index(addr)
	for i := range c.sets[si] {
		l := &c.sets[si][i]
		if l.valid && l.tag == tag {
			present, dirty = true, l.dirty
			*l = line{}
			return present, dirty
		}
	}
	return false, false
}

// InvalidateRange drops every line within [base, base+size) and returns how
// many of the dropped lines were dirty. Used when a DRAM-cache page is
// evicted and its on-die (CA-tagged) lines must be flushed.
func (c *Cache) InvalidateRange(base uint64, size int) (dropped, dirty int) {
	for off := 0; off < size; off += c.cfg.LineBytes {
		p, d := c.Invalidate(base + uint64(off))
		if p {
			dropped++
			if d {
				dirty++
			}
		}
	}
	return dropped, dirty
}

// HitRate returns hits/accesses, or 0 before any access.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// Flush invalidates everything, returning the number of dirty lines lost.
func (c *Cache) Flush() (dirty int) {
	for si := range c.sets {
		for i := range c.sets[si] {
			if c.sets[si][i].valid && c.sets[si][i].dirty {
				dirty++
			}
			c.sets[si][i] = line{}
		}
	}
	return dirty
}

// ResetStats clears counters without touching contents.
func (c *Cache) ResetStats() {
	c.Accesses, c.Hits, c.Misses, c.Writebacks = 0, 0, 0, 0
}
