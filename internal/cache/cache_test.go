package cache

import (
	"testing"
	"testing/quick"

	"taglessdram/internal/config"
)

// tiny returns a 4-set, 2-way, 64B-line cache (512B) for deterministic tests.
func tiny() *Cache {
	return New(config.CacheConfig{SizeBytes: 512, Ways: 2, LineBytes: 64, LatencyCycle: 2})
}

func TestMissThenHit(t *testing.T) {
	c := tiny()
	hit, _, _ := c.Access(0x1000, false)
	if hit {
		t.Fatal("cold access hit")
	}
	hit, _, _ = c.Access(0x1000, false)
	if !hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset, still hits.
	hit, _, _ = c.Access(0x103F, false)
	if !hit {
		t.Fatal("same-line access missed")
	}
	if c.Accesses != 3 || c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("counters = %d/%d/%d", c.Accesses, c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	// Three lines mapping to set 0 in a 2-way cache: set stride is 4*64=256.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU, b is LRU
	hit, victim, hasVictim := c.Access(d, false)
	if hit {
		t.Fatal("conflicting access hit")
	}
	if !hasVictim || victim.Addr != b {
		t.Fatalf("victim = %+v (has=%v), want addr %d", victim, hasVictim, b)
	}
	// a must still be present, b gone.
	if !c.Lookup(a) || c.Lookup(b) || !c.Lookup(d) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	c := tiny()
	c.Access(0, true) // dirty
	c.Access(256, false)
	_, victim, hasVictim := c.Access(512, false) // evicts line 0 (LRU)
	if !hasVictim || !victim.Dirty || victim.Addr != 0 {
		t.Fatalf("victim = %+v (has=%v), want dirty line 0", victim, hasVictim)
	}
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Writebacks)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := tiny()
	c.Access(0, false)
	c.Access(0, true) // mark dirty on hit
	_, dirty := c.Invalidate(0)
	if !dirty {
		t.Fatal("write hit did not set dirty bit")
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Access(0x40, true)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Fatalf("invalidate = %v,%v, want true,true", present, dirty)
	}
	if c.Lookup(0x40) {
		t.Fatal("line still present after invalidate")
	}
	present, _ = c.Invalidate(0x40)
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := New(config.CacheConfig{SizeBytes: 8 * config.KB, Ways: 4, LineBytes: 64, LatencyCycle: 2})
	// Touch all 8 lines of a 512-byte region, two of them dirty.
	for off := uint64(0); off < 512; off += 64 {
		c.Access(0x2000+off, off == 0 || off == 128)
	}
	dropped, dirty := c.InvalidateRange(0x2000, 512)
	if dropped != 8 || dirty != 2 {
		t.Fatalf("dropped=%d dirty=%d, want 8,2", dropped, dirty)
	}
	if c.Occupancy() != 0 {
		t.Fatalf("occupancy = %d, want 0", c.Occupancy())
	}
}

func TestFlush(t *testing.T) {
	c := tiny()
	c.Access(0, true)
	c.Access(64, false)
	if got := c.Flush(); got != 1 {
		t.Fatalf("flush dirty = %d, want 1", got)
	}
	if c.Occupancy() != 0 {
		t.Fatal("flush left valid lines")
	}
}

func TestHitRateAndReset(t *testing.T) {
	c := tiny()
	if c.HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
	c.Access(0, false)
	c.Access(0, false)
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", c.HitRate())
	}
	c.ResetStats()
	if c.Accesses != 0 || c.HitRate() != 0 {
		t.Fatal("reset failed")
	}
	if !c.Lookup(0) {
		t.Fatal("reset must not drop contents")
	}
}

func TestLatencyAndConfig(t *testing.T) {
	c := tiny()
	if c.Latency() != 2 {
		t.Fatalf("latency = %d", c.Latency())
	}
	if c.Config().Ways != 2 {
		t.Fatalf("config = %+v", c.Config())
	}
}

func TestDefaultGeometries(t *testing.T) {
	sc := config.Default()
	l1 := New(sc.L1D)
	l2 := New(sc.L2)
	if l1.Occupancy() != 0 || l2.Occupancy() != 0 {
		t.Fatal("new caches should be empty")
	}
	// Fill L1 past capacity: occupancy saturates at line count.
	lines := int(sc.L1D.SizeBytes) / sc.L1D.LineBytes
	for i := 0; i < 2*lines; i++ {
		l1.Access(uint64(i*64), false)
	}
	if l1.Occupancy() != lines {
		t.Fatalf("L1 occupancy = %d, want %d", l1.Occupancy(), lines)
	}
}

func TestNewPanics(t *testing.T) {
	mustPanic := func(name string, cfg config.CacheConfig) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		New(cfg)
	}
	mustPanic("zero size", config.CacheConfig{SizeBytes: 0, Ways: 2, LineBytes: 64})
	mustPanic("npot line", config.CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 48})
}

// Property: occupancy never exceeds capacity, and hits+misses == accesses.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := tiny()
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
		}
		if c.Hits+c.Misses != c.Accesses {
			return false
		}
		return c.Occupancy() <= 8 // 4 sets * 2 ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: immediately after any access, the line is present.
func TestAccessInsertsProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := tiny()
		for _, a := range addrs {
			c.Access(uint64(a), false)
			if !c.Lookup(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a victim is never from a different set than the inserted line.
func TestVictimSameSetProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := tiny()
		for _, a := range addrs {
			addr := uint64(a)
			_, victim, has := c.Access(addr, false)
			if has {
				// Set index = (addr/64) % 4.
				if (victim.Addr/64)%4 != (addr/64)%4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarkDirtySilent(t *testing.T) {
	c := tiny()
	if c.MarkDirty(0x40) {
		t.Fatal("marked absent line dirty")
	}
	c.Access(0x40, false)
	before := c.Accesses
	if !c.MarkDirty(0x40) {
		t.Fatal("mark dirty missed resident line")
	}
	if c.Accesses != before {
		t.Fatal("MarkDirty perturbed counters")
	}
	_, dirty := c.Invalidate(0x40)
	if !dirty {
		t.Fatal("dirtiness lost")
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// 3 sets x 2 ways: the modulo indexing path.
	c := New(config.CacheConfig{SizeBytes: 384, Ways: 2, LineBytes: 64, LatencyCycle: 1})
	for i := uint64(0); i < 12; i++ {
		c.Access(i*64, false)
		if !c.Lookup(i * 64) {
			t.Fatalf("line %d missing right after access", i)
		}
	}
	if c.Occupancy() > 6 {
		t.Fatalf("occupancy %d exceeds capacity 6", c.Occupancy())
	}
}
