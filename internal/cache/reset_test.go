package cache

import (
	"math/rand"
	"testing"

	"taglessdram/internal/config"
)

// TestResetStatsPreservesReplacementState pins the measurement-boundary
// invariant: ResetStats must clear counters only. The LRU clock and
// per-line recency stamps survive, so the hit/miss (and victim) sequence
// after the boundary is byte-identical to a run that never reset. A
// regression here silently changes every measured-phase metric, because
// the simulator calls ResetStats at the warmup/measure boundary mid-run.
func TestResetStatsPreservesReplacementState(t *testing.T) {
	cfg := config.CacheConfig{SizeBytes: 4096, LineBytes: 64, Ways: 4, LatencyCycle: 1}
	a, b := New(cfg), New(cfg)

	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		// 4× the cache's line count, so the sequence keeps evicting.
		addrs[i] = uint64(rng.Intn(256)) * 64
	}

	for i, addr := range addrs {
		write := addr%128 == 0
		if i == len(addrs)/2 {
			a.ResetStats() // b never resets
		}
		ha, va, oka := a.Access(addr, write)
		hb, vb, okb := b.Access(addr, write)
		if ha != hb || va != vb || oka != okb {
			t.Fatalf("access %d (addr %#x): diverged after ResetStats: (%v %v %v) vs (%v %v %v)",
				i, addr, ha, va, oka, hb, vb, okb)
		}
	}
	if a.Accesses >= b.Accesses {
		t.Fatalf("ResetStats did not clear counters: %d vs %d", a.Accesses, b.Accesses)
	}
}
