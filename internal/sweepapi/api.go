// Package sweepapi defines the wire protocol of the sweep service
// (cmd/sweepd): the JSON request that names an experiment grid and the
// JSON-lines event stream the server answers with. It is pure data — the
// root taglessdram package converts to and from its native Job/Options
// types on both sides of the connection, so the two never drift apart
// (the conversion is pinned by a fingerprint round-trip test).
//
// Protocol summary:
//
//	POST /v1/sweep   body: Request        → 200 + JSON-lines Event stream
//	                                      → 4xx/5xx + {"error": "..."}
//	GET  /v1/stats                        → StatsReply
//	GET  /v1/healthz                      → 200 | 503 + HealthReply
//	GET  /v1/sweeps                       → SweepsReply (recent sweeps)
//	GET  /v1/trace?sweep=ID               → Chrome trace_event JSON
//	GET  /metrics                         → Prometheus text exposition
//
// A sweep response streams one Event per line: one "accepted" (carrying
// the server-assigned sweep ID, the handle for /v1/trace), then
// interleaved "progress" events as jobs complete, then — on success —
// one "result" per job in submission order followed by one "done", or a
// single terminal "error". Result payloads are the result cache's own
// gob encoding (base64 inside JSON), so a decoded result is
// bit-identical to what an in-process run would have produced. 503s
// from a draining server carry a Retry-After header (seconds).
package sweepapi

// Job names one cell of a sweep: a design, a workload, and optionally
// its own options (defaulting to the request-level options).
type Job struct {
	// Design is the organization name as the CLIs spell it:
	// NoL3 | BI | SRAM | cTLB | Ideal | Alloy | Banshee.
	Design string `json:"design"`
	// Workload is a SPEC program, MIX1-MIX8, or a PARSEC program.
	Workload string `json:"workload"`
	// Options overrides the request-level options for this job only.
	Options *Options `json:"options,omitempty"`
}

// Request is the body of POST /v1/sweep: a design × workload grid,
// explicit extra cells, or both.
type Request struct {
	// Designs × Workloads is the grid sugar: every pairing becomes one
	// job (workload-major, matching the in-process figure runners).
	Designs   []string `json:"designs,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	// Options are the base simulation options for grid cells and for
	// explicit jobs that carry none. Omitted = the server's defaults
	// (taglessdram.DefaultOptions).
	Options *Options `json:"options,omitempty"`
	// Jobs appends explicit cells after the grid, in order.
	Jobs []Job `json:"jobs,omitempty"`
	// Workers bounds concurrent simulations for this sweep; 0 means the
	// server's default. The server clamps it to its own -j ceiling.
	Workers int `json:"workers,omitempty"`
}

// Options mirrors the semantic fields of taglessdram.Options — exactly
// the fields that enter a job's cache fingerprint. Non-semantic fields
// (Workers, observers, the cache handle) and the checkpoint-file options
// never cross the wire: the former are request- or client-local, the
// latter depend on server-local file state the fingerprint cannot see.
type Options struct {
	Shift               uint    `json:"shift"`
	Warmup              uint64  `json:"warmup"`
	Measure             uint64  `json:"measure"`
	Seed                uint64  `json:"seed"`
	CacheMB             int64   `json:"cache_mb,omitempty"`
	Policy              string  `json:"policy,omitempty"` // FIFO | LRU | CLOCK ("" = FIFO)
	NCAccessThreshold   int     `json:"nc_access_threshold,omitempty"`
	SynchronousEviction bool    `json:"synchronous_eviction,omitempty"`
	CachedGIPT          bool    `json:"cached_gipt,omitempty"`
	SharedAliasTable    bool    `json:"shared_alias_table,omitempty"`
	HotFilterThreshold  int     `json:"hot_filter_threshold,omitempty"`
	Superpages          bool    `json:"superpages,omitempty"`
	Refresh             bool    `json:"refresh,omitempty"`
	L2TLBEntries        int     `json:"l2_tlb_entries,omitempty"`
	Alpha               int     `json:"alpha,omitempty"`
	MemoryWalk          bool    `json:"memory_walk,omitempty"`
	WalkModel           string  `json:"walk_model,omitempty"` // fixed | pwc | nested
	PWCHitCycles        int     `json:"pwc_hit_cycles,omitempty"`
	TLBTopology         string  `json:"tlb_topology,omitempty"` // private | shared
	CtxSwitchRefs       uint64  `json:"ctx_switch_refs,omitempty"`
	CtxSwitchFlush      bool    `json:"ctx_switch_flush,omitempty"`
	MSHRs               int     `json:"mshrs,omitempty"`
	EpochRefs           uint64  `json:"epoch_refs,omitempty"`
	EpochCapacity       int     `json:"epoch_capacity,omitempty"`
	Sample              *Sample `json:"sample,omitempty"`
}

// Sample mirrors taglessdram.SampleSpec (SMARTS sampled simulation).
type Sample struct {
	WindowRefs uint64 `json:"window_refs"`
	PeriodRefs uint64 `json:"period_refs"`
	WarmRefs   uint64 `json:"warm_refs,omitempty"`
}

// Event types streamed by POST /v1/sweep.
const (
	EventAccepted = "accepted"
	EventProgress = "progress"
	EventResult   = "result"
	EventError    = "error"
	EventDone     = "done"
)

// Event is one line of a sweep response stream. Type selects which of
// the optional field groups is populated.
type Event struct {
	Type string `json:"type"`

	// accepted: the validated sweep as the server will run it. SweepID
	// is the server-assigned trace handle (GET /v1/trace?sweep=ID); it
	// is echoed on the terminal done/error event so clients can
	// correlate even a stream they joined late.
	SweepID      string   `json:"sweep_id,omitempty"`
	Jobs         int      `json:"jobs,omitempty"`
	Workers      int      `json:"workers,omitempty"`
	Fingerprints []string `json:"fingerprints,omitempty"`

	// progress: jobs completed so far (Done of Total), wall time and
	// extrapolated remaining time, both in milliseconds.
	Done      int   `json:"done,omitempty"`
	Total     int   `json:"total,omitempty"`
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	ETAMS     int64 `json:"eta_ms,omitempty"`

	// result: one job's completed simulation. Result is the result
	// cache's gob payload (encoding/json base64-codes []byte). Cached
	// reports that the job was answered without simulating (a store
	// hit or a deduplicated duplicate).
	Job         int    `json:"job,omitempty"`
	Design      string `json:"design,omitempty"`
	Workload    string `json:"workload,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Cached      bool   `json:"cached,omitempty"`
	Result      []byte `json:"result,omitempty"`

	// error: the sweep failed; the stream ends here.
	Error string `json:"error,omitempty"`

	// done: the sweep finished. Cache is the server store's counter
	// delta over this request (approximate under concurrent requests,
	// exact when the server is serving one sweep at a time).
	Cache *CacheStats `json:"cache,omitempty"`
}

// CacheStats is the wire form of the result cache's counters.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stored  uint64 `json:"stored"`
	Evicted uint64 `json:"evicted"`
}

// StatsReply is the body of GET /v1/stats: the store's lifetime
// counters, the number of entries on disk, the service's own request
// counters, and the service identity block (behavioral model version,
// start time, uptime, in-flight gauges).
type StatsReply struct {
	Cache   CacheStats `json:"cache"`
	Entries int        `json:"entries"`
	Sweeps  uint64     `json:"sweeps"`
	SimJobs uint64     `json:"jobs"`
	// ModelVersion is the canonical.go stamp: results from servers with
	// different stamps are not comparable (their fingerprints differ).
	ModelVersion int `json:"model_version"`
	// Start is the server's start time (RFC 3339, UTC); UptimeMS the
	// milliseconds since.
	Start    string `json:"start_time"`
	UptimeMS int64  `json:"uptime_ms"`
	// In-flight gauges: sweeps currently streaming, jobs currently
	// queued or simulating.
	InFlightSweeps int `json:"inflight_sweeps"`
	InFlightJobs   int `json:"inflight_jobs"`
}

// HealthReply is the body of GET /v1/healthz — HTTP 200 while serving,
// 503 (with a Retry-After header) while draining.
type HealthReply struct {
	Status       string `json:"status"` // "ok" | "draining"
	ModelVersion int    `json:"model_version"`
	Start        string `json:"start_time"`
	UptimeMS     int64  `json:"uptime_ms"`
}

// SweepSummary is one recent sweep in GET /v1/sweeps: identity,
// progress, and the cached/simulated split. DurationMS keeps growing
// while State is "running".
type SweepSummary struct {
	ID         string `json:"id"`
	State      string `json:"state"` // running | ok | error | canceled
	Peer       string `json:"peer,omitempty"`
	Jobs       int    `json:"jobs"`
	Done       int    `json:"done"`
	Cached     int    `json:"cached"`
	Simulated  int    `json:"simulated"`
	Workers    int    `json:"workers"`
	Start      string `json:"start_time"`
	DurationMS int64  `json:"duration_ms"`
	Spans      int    `json:"spans"`
}

// SweepsReply is the body of GET /v1/sweeps, newest sweep first.
type SweepsReply struct {
	Sweeps []SweepSummary `json:"sweeps"`
}

// ErrorReply is the body of every non-200 response.
type ErrorReply struct {
	Error string `json:"error"`
}
