package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after reset = %d, want 0", c.Value())
	}
}

func TestCounterRatio(t *testing.T) {
	var hits, total Counter
	if r := hits.Ratio(&total); r != 0 {
		t.Fatalf("ratio with zero denominator = %v, want 0", r)
	}
	hits.Add(3)
	total.Add(4)
	if r := hits.Ratio(&total); r != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", r)
	}
}

func TestMeanKnownValues(t *testing.T) {
	var m Mean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Observe(x)
	}
	if got := m.Value(); math.Abs(got-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", got)
	}
	// Sample variance of that series is 32/7.
	if got := m.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, 32.0/7.0)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", m.Min(), m.Max())
	}
	if got := m.Sum(); math.Abs(got-40) > 1e-9 {
		t.Errorf("sum = %v, want 40", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.Variance() != 0 || m.StdDev() != 0 {
		t.Fatal("empty mean should report zeros")
	}
}

func TestMeanReset(t *testing.T) {
	var m Mean
	m.Observe(10)
	m.Reset()
	if m.Count() != 0 || m.Value() != 0 {
		t.Fatal("reset did not clear state")
	}
}

// Property: mean is always bounded by [min, max] of the observed samples.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var m Mean
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float overflow in m2.
			if math.Abs(x) > 1e12 {
				continue
			}
			m.Observe(x)
			n++
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if n == 0 {
			return m.Value() == 0
		}
		v := m.Value()
		const eps = 1e-6
		return v >= lo-eps*(1+math.Abs(lo)) && v <= hi+eps*(1+math.Abs(hi))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(4, 10) // buckets [0,10) [10,20) [20,30) [30,40)
	for _, x := range []float64{0, 5, 9.99, 10, 35, 100, -3} {
		h.Observe(x)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Bucket(0) != 4 { // 0, 5, 9.99 and the clamped -3
		t.Errorf("bucket0 = %d, want 4", h.Bucket(0))
	}
	if h.Bucket(1) != 1 {
		t.Errorf("bucket1 = %d, want 1", h.Bucket(1))
	}
	if h.Bucket(3) != 1 {
		t.Errorf("bucket3 = %d, want 1", h.Bucket(3))
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow())
	}
}

func TestHistogramMeanAndPercentile(t *testing.T) {
	h := NewHistogram(100, 1)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	p50 := h.Percentile(50)
	if p50 < 45 || p50 > 55 {
		t.Errorf("p50 = %v, want ≈50", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 95 {
		t.Errorf("p99 = %v, want ≥95", p99)
	}
}

func TestHistogramEmptyPercentile(t *testing.T) {
	h := NewHistogram(4, 1)
	if h.Percentile(50) != 0 {
		t.Fatal("empty histogram percentile should be 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero buckets", func() { NewHistogram(0, 1) })
	mustPanic("zero width", func() { NewHistogram(4, 0) })
}

// Property: histogram conserves samples (buckets + overflow == total), for
// every input including NaN and ±Inf, and the mean stays finite.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(8, 2.5)
		canOverflow := false
		for _, x := range xs {
			h.Observe(x)
			// The running sum of finite samples can itself overflow to
			// +Inf near math.MaxFloat64; that is float arithmetic, not a
			// bookkeeping bug, so only require a finite mean below it.
			if x > 1e300 {
				canOverflow = true
			}
		}
		var sum uint64
		for i := 0; i < h.Buckets(); i++ {
			sum += h.Bucket(i)
		}
		if sum+h.Overflow() != h.Count() {
			return false
		}
		if canOverflow {
			return true
		}
		return !math.IsNaN(h.Mean()) && !math.IsInf(h.Mean(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Non-finite samples must land in overflow and must not poison the mean.
// Before the fix, -Inf slipped past the +Inf-only guard, was added to the
// sum, and drove Mean to -Inf forever.
func TestHistogramNonFinite(t *testing.T) {
	h := NewHistogram(4, 10)
	h.Observe(5)
	h.Observe(15)
	for _, bad := range []float64{math.Inf(-1), math.Inf(1), math.NaN()} {
		h.Observe(bad)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Overflow() != 3 {
		t.Fatalf("overflow = %d, want 3 (all non-finite samples)", h.Overflow())
	}
	if got := h.Mean(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("mean = %v, want 10 (mean of the finite samples)", got)
	}
	var sum uint64
	for i := 0; i < h.Buckets(); i++ {
		sum += h.Bucket(i)
	}
	if sum+h.Overflow() != h.Count() {
		t.Fatalf("buckets+overflow = %d, want count %d", sum+h.Overflow(), h.Count())
	}
}

// Negative samples are clamped to zero in both the buckets and the sum, so
// Mean agrees with the bucket contents. Before the fix the sum took the
// unclamped value while bucket 0 took the clamped one.
func TestHistogramNegativeClampMean(t *testing.T) {
	h := NewHistogram(4, 10)
	h.Observe(-100)
	h.Observe(20)
	if h.Bucket(0) != 1 || h.Bucket(2) != 1 {
		t.Fatalf("buckets = [%d %d %d %d], want [1 0 1 0]",
			h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	// Clamped: (0 + 20) / 2, not (-100 + 20) / 2.
	if got := h.Mean(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("mean = %v, want 10 (clamped), not -40 (unclamped)", got)
	}
}

func TestHistogramOnlyNonFiniteMean(t *testing.T) {
	h := NewHistogram(4, 10)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if got := h.Mean(); got != 0 {
		t.Fatalf("mean with no finite samples = %v, want 0", got)
	}
}

func TestPercentileValidation(t *testing.T) {
	h := NewHistogram(4, 10)
	h.Observe(5)
	for _, p := range []float64{0, -1, 100.5, math.NaN()} {
		if got := h.Percentile(p); !math.IsNaN(got) {
			t.Errorf("Percentile(%v) = %v, want NaN", p, got)
		}
	}
	if got := h.Percentile(100); math.IsNaN(got) {
		t.Errorf("Percentile(100) = NaN, want a value")
	}
}

// Pin the documented overflow behavior: with most samples beyond the last
// bucket, high percentiles report the histogram's upper bound.
func TestPercentileOverflowHeavy(t *testing.T) {
	h := NewHistogram(4, 10) // upper bound 40
	h.Observe(5)
	for i := 0; i < 9; i++ {
		h.Observe(1000)
	}
	if got := h.Percentile(99); got != 40 {
		t.Errorf("p99 of overflow-heavy histogram = %v, want upper bound 40", got)
	}
	if got := h.Percentile(5); got != 5 {
		t.Errorf("p5 = %v, want 5 (midpoint of bucket 0)", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("geomean(nil) = %v, want 0", got)
	}
	// Non-positive entries are skipped.
	if got := GeoMean([]float64{0, -1, 9}); math.Abs(got-9) > 1e-12 {
		t.Errorf("geomean with skips = %v, want 9", got)
	}
}

func TestRegistryOrderAndOverwrite(t *testing.T) {
	r := NewRegistry()
	r.Set("b", 1)
	r.Set("a", 2)
	r.Set("b", 3) // overwrite keeps position
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names = %v, want [b a]", names)
	}
	if v, ok := r.Get("b"); !ok || v != 3 {
		t.Fatalf("get b = %v,%v, want 3,true", v, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("missing key should not be present")
	}
	sorted := r.Sorted()
	if sorted[0].Name != "a" || sorted[1].Name != "b" {
		t.Fatalf("sorted = %v", sorted)
	}
	if r.String() == "" {
		t.Fatal("string form should not be empty")
	}
}

// The zero-value Registry must be usable; before the fix, Set on a
// zero-value Registry panicked writing to its nil map.
func TestRegistryZeroValue(t *testing.T) {
	var r Registry
	if _, ok := r.Get("x"); ok {
		t.Fatal("zero registry should have no values")
	}
	if s := r.String(); s != "" {
		t.Fatalf("zero registry String() = %q, want empty", s)
	}
	if got := r.Sorted(); len(got) != 0 {
		t.Fatalf("zero registry Sorted() = %v, want empty", got)
	}
	r.Set("x", 1.5)
	if v, ok := r.Get("x"); !ok || v != 1.5 {
		t.Fatalf("get after zero-value Set = %v,%v, want 1.5,true", v, ok)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("names = %v, want [x]", names)
	}
}

// Quantiles must match repeated Percentile calls exactly, including the
// NaN and overflow conventions, for arbitrary histograms and probe sets.
func TestQuantilesMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	probes := []float64{0, -3, 0.1, 25, 50, 90, 99, 99.9, 100, 101, math.NaN()}
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram(1+rng.Intn(64), 0.5+rng.Float64()*10)
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			// Mix in-range, negative, overflow and non-finite samples.
			switch rng.Intn(10) {
			case 0:
				h.Observe(math.Inf(1))
			case 1:
				h.Observe(-rng.Float64() * 100)
			default:
				h.Observe(rng.Float64() * float64(h.Buckets()+4) * h.BucketWidth)
			}
		}
		// Shuffled, duplicated probes exercise the unsorted-input path.
		ps := append([]float64(nil), probes...)
		ps = append(ps, probes[rng.Intn(len(probes))])
		rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
		got := h.Quantiles(ps)
		if len(got) != len(ps) {
			t.Fatalf("Quantiles returned %d values for %d probes", len(got), len(ps))
		}
		for i, p := range ps {
			want := h.Percentile(p)
			if math.IsNaN(want) != math.IsNaN(got[i]) || (!math.IsNaN(want) && got[i] != want) {
				t.Fatalf("trial %d: Quantiles(%v)[%d] = %v, Percentile = %v", trial, p, i, got[i], want)
			}
		}
	}
	var empty Histogram
	empty.BucketWidth = 1
	if got := empty.Quantiles(nil); len(got) != 0 {
		t.Fatalf("empty probe set: %v", got)
	}
}

func TestRatioPooledValue(t *testing.T) {
	var r Ratio
	if r.Value() != 0 || r.CI95() != 0 {
		t.Fatal("zero value should report 0 estimate and 0 CI")
	}
	// Pairs with a common true ratio of 2 but varying denominators: the
	// pooled estimate is exactly 2 and the residual variance is zero.
	for _, x := range []float64{1, 3, 10, 0.5} {
		r.Observe(2*x, x)
	}
	if got := r.Value(); got != 2 {
		t.Fatalf("Value() = %v, want 2", got)
	}
	if got := r.CI95(); got != 0 {
		t.Fatalf("CI95() on exact-fit pairs = %v, want 0", got)
	}
	if r.Count() != 4 {
		t.Fatalf("Count() = %d, want 4", r.Count())
	}
	r.Reset()
	if r.Count() != 0 || r.Value() != 0 {
		t.Fatal("Reset() did not clear the accumulator")
	}
}

func TestRatioBeatsMeanOfRatios(t *testing.T) {
	// Fixed numerator, varying denominator — the setting where the mean
	// of per-pair ratios is Jensen-biased above the pooled ratio, which
	// is the quantity an uninterrupted run would report.
	var r Ratio
	var m Mean
	ys := []float64{100, 100, 100, 100}
	xs := []float64{40, 60, 50, 70}
	var sy, sx float64
	for i := range ys {
		r.Observe(ys[i], xs[i])
		m.Observe(ys[i] / xs[i])
		sy += ys[i]
		sx += xs[i]
	}
	want := sy / sx
	if got := r.Value(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Value() = %v, want pooled %v", got, want)
	}
	if m.Value() <= r.Value() {
		t.Fatalf("mean of ratios %v should exceed pooled ratio %v on varying denominators", m.Value(), r.Value())
	}
	if ci := r.CI95(); ci <= 0 {
		t.Fatalf("CI95() = %v, want positive on noisy pairs", ci)
	}
}
