// Package stats provides lightweight statistics primitives used throughout
// the simulator: counters, running means, histograms, and named registries.
//
// All types have useful zero values and are safe for single-goroutine use;
// the simulator kernel is single-threaded by design (deterministic event
// ordering), so no locking is performed.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns c/other as a float64, or 0 when other is zero.
func (c *Counter) Ratio(other *Counter) float64 {
	if other.n == 0 {
		return 0
	}
	return float64(c.n) / float64(other.n)
}

// Mean accumulates a running arithmetic mean and variance using Welford's
// online algorithm. It also tracks min and max.
type Mean struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Observe records one sample.
func (m *Mean) Observe(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// Count returns the number of samples observed.
func (m *Mean) Count() uint64 { return m.n }

// Value returns the arithmetic mean, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.mean
}

// Variance returns the sample variance, or 0 with fewer than two samples.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CI95 returns the half-width of the 95% confidence interval on the mean
// under the normal approximation (1.96·s/√n) — the error-bound estimator
// SMARTS-style sampled simulation reports. It is 0 with fewer than two
// samples.
func (m *Mean) CI95() float64 {
	if m.n < 2 {
		return 0
	}
	return 1.96 * m.StdDev() / math.Sqrt(float64(m.n))
}

// Min returns the smallest observed sample, or 0 with no samples.
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest observed sample, or 0 with no samples.
func (m *Mean) Max() float64 { return m.max }

// Sum returns mean multiplied by count.
func (m *Mean) Sum() float64 { return m.mean * float64(m.n) }

// Reset discards all samples.
func (m *Mean) Reset() { *m = Mean{} }

// Ratio accumulates a streaming ratio-of-sums estimator R = Σy/Σx over
// observation pairs, with a linearized (delta-method) variance. It is
// the right CI for rate-like quantities — IPC is instructions/cycles —
// where the naive mean of per-window ratios is Jensen-biased high
// whenever the denominator varies across windows: E[y/x] ≥ E[y]/E[x].
// The pooled ratio matches what an uninterrupted run would report, and
// the classical survey-sampling variance for it is built from the
// residuals d_i = y_i − R·x_i.
type Ratio struct {
	n             uint64
	sy, sx        float64
	syy, sxx, sxy float64
}

// Observe records one (numerator, denominator) pair.
func (r *Ratio) Observe(y, x float64) {
	r.n++
	r.sy += y
	r.sx += x
	r.syy += y * y
	r.sxx += x * x
	r.sxy += x * y
}

// Count returns the number of pairs observed.
func (r *Ratio) Count() uint64 { return r.n }

// Value returns Σy/Σx, or 0 with no mass in the denominator.
func (r *Ratio) Value() float64 {
	if r.sx == 0 {
		return 0
	}
	return r.sy / r.sx
}

// CI95 returns the half-width of the 95% confidence interval on the
// pooled ratio under the normal approximation:
// 1.96·s_d/(√n·x̄) with s_d² = Σ(y_i−R·x_i)²/(n−1). It is 0 with fewer
// than two pairs.
func (r *Ratio) CI95() float64 {
	if r.n < 2 || r.sx == 0 {
		return 0
	}
	R := r.sy / r.sx
	sd2 := (r.syy - 2*R*r.sxy + R*R*r.sxx) / float64(r.n-1)
	if sd2 < 0 { // floating-point cancellation on near-exact fits
		sd2 = 0
	}
	xbar := r.sx / float64(r.n)
	return 1.96 * math.Sqrt(sd2/float64(r.n)) / xbar
}

// Reset discards all pairs.
func (r *Ratio) Reset() { *r = Ratio{} }

// Histogram is a fixed-width-bucket histogram over [0, BucketWidth*len).
// Samples beyond the last bucket land in an overflow bucket.
//
// Sample semantics: every observed sample is counted in Count, and every
// sample lands in exactly one bucket, so the bucket counts plus Overflow
// always sum to Count. Negative samples are clamped to zero (first
// bucket) and contribute zero to the sum, keeping Mean consistent with
// the bucket contents. Non-finite samples (NaN, ±Inf) are counted in the
// overflow bucket and excluded from the sum, so Mean is the mean of the
// finite (clamped) samples and stays finite.
type Histogram struct {
	BucketWidth float64
	buckets     []uint64
	overflow    uint64
	nonFinite   uint64 // NaN/±Inf samples; subset of overflow, excluded from sum
	total       uint64
	sum         float64
}

// NewHistogram returns a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if width <= 0 {
		panic("stats: histogram bucket width must be positive")
	}
	return &Histogram{BucketWidth: width, buckets: make([]uint64, n)}
}

// Observe records one sample. Negative samples are clamped to zero (first
// bucket, zero contribution to the sum); non-finite samples (NaN, -Inf and
// +Inf alike) are counted in the overflow bucket and kept out of the sum so
// a single bad sample cannot poison Mean.
func (h *Histogram) Observe(x float64) {
	h.total++
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.overflow++
		h.nonFinite++
		return
	}
	if x < 0 {
		x = 0
	}
	h.sum += x
	i := int(x / h.BucketWidth)
	if i < 0 || i >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of the finite samples (negative samples
// clamped to zero, matching the buckets), or 0 when no finite sample has
// been observed.
func (h *Histogram) Mean() float64 {
	finite := h.total - h.nonFinite
	if finite == 0 {
		return 0
	}
	return h.sum / float64(finite)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of (non-overflow) buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Overflow returns the count of samples beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Percentile returns an estimate of the p-th percentile (0 < p <= 100) using
// the bucket midpoints. Overflow samples are treated as the upper bound
// (BucketWidth * Buckets), so a mostly-overflow histogram reports the upper
// bound for high percentiles. p outside (0, 100] (including NaN) returns NaN.
func (h *Histogram) Percentile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p > 100 {
		return math.NaN()
	}
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return (float64(i) + 0.5) * h.BucketWidth
		}
	}
	return float64(len(h.buckets)) * h.BucketWidth
}

// Quantiles returns the Percentile estimate for each p in ps using a
// single pass over the buckets, so one call serves p50/p90/p99/p999.
// Each element matches Percentile(p) exactly, including the NaN
// convention for p outside (0, 100] and the upper-bound convention for
// overflow-dominated histograms. ps need not be sorted.
func (h *Histogram) Quantiles(ps []float64) []float64 {
	out := make([]float64, len(ps))
	if len(ps) == 0 {
		return out
	}
	// Order the valid requests by target rank; invalid ones resolve to
	// NaN immediately and empty histograms to 0.
	type req struct {
		idx    int
		target uint64
	}
	reqs := make([]req, 0, len(ps))
	for i, p := range ps {
		if math.IsNaN(p) || p <= 0 || p > 100 {
			out[i] = math.NaN()
			continue
		}
		if h.total == 0 {
			continue // out[i] stays 0, matching Percentile
		}
		target := uint64(math.Ceil(p / 100 * float64(h.total)))
		if target == 0 {
			target = 1
		}
		reqs = append(reqs, req{idx: i, target: target})
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].target < reqs[j].target })
	var cum uint64
	next := 0
	for i, c := range h.buckets {
		cum += c
		for next < len(reqs) && cum >= reqs[next].target {
			out[reqs[next].idx] = (float64(i) + 0.5) * h.BucketWidth
			next++
		}
		if next == len(reqs) {
			return out
		}
	}
	for ; next < len(reqs); next++ {
		out[reqs[next].idx] = float64(len(h.buckets)) * h.BucketWidth
	}
	return out
}

// GeoMean returns the geometric mean of xs. Non-positive values are skipped,
// matching the convention used for normalized performance numbers.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Registry is an ordered collection of named metric values, used to assemble
// human-readable simulation reports.
type Registry struct {
	order  []string
	values map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{values: make(map[string]float64)}
}

// Set records (or overwrites) a named value, preserving first-set order.
// The zero-value Registry is usable: Set initializes storage on demand.
func (r *Registry) Set(name string, v float64) {
	if r.values == nil {
		r.values = make(map[string]float64)
	}
	if _, ok := r.values[name]; !ok {
		r.order = append(r.order, name)
	}
	r.values[name] = v
}

// Get returns the value for name and whether it exists.
func (r *Registry) Get(name string) (float64, bool) {
	v, ok := r.values[name]
	return v, ok
}

// Names returns the metric names in insertion order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// String formats the registry as "name=value" lines in insertion order.
func (r *Registry) String() string {
	var b strings.Builder
	for _, name := range r.order {
		fmt.Fprintf(&b, "%s=%.6g\n", name, r.values[name])
	}
	return b.String()
}

// Sorted returns name/value pairs sorted by name, useful for stable output.
func (r *Registry) Sorted() []struct {
	Name  string
	Value float64
} {
	names := r.Names()
	sort.Strings(names)
	out := make([]struct {
		Name  string
		Value float64
	}, len(names))
	for i, n := range names {
		out[i].Name = n
		out[i].Value = r.values[n]
	}
	return out
}
