package org

import (
	"strings"
	"testing"

	"taglessdram/internal/config"
)

func TestRegisteredCoversEveryDesign(t *testing.T) {
	want := append(config.AllDesigns(), config.AlloyBlock, config.Banshee)
	got := Registered()
	if len(got) != len(want) {
		t.Fatalf("Registered() = %v, want %v", got, want)
	}
	for i, d := range want {
		if got[i] != d {
			t.Errorf("Registered()[%d] = %v, want %v (enum order)", i, got[i], d)
		}
	}
}

func TestNewUnknownDesign(t *testing.T) {
	if _, err := New(config.L3Design(99), Ports{}); err == nil ||
		!strings.Contains(err.Error(), "no organization registered") {
		t.Fatalf("New(99) error = %v, want registry miss", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register(config.NoL3, func(Ports) (Organization, error) { return nil, nil })
}
