package org

import (
	"taglessdram/internal/config"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
	"taglessdram/internal/sim"
)

func init() {
	Register(config.NoL3, func(p Ports) (Organization, error) {
		return &NoL3{p: p}, nil
	})
}

// NoL3 is the baseline organization: every L2 miss is an off-package
// block access; there is no DRAM cache.
type NoL3 struct {
	p Ports
}

// Access sends the miss to off-package DRAM.
func (o *NoL3) Access(r Request) {
	kind := kindOf(r.Write)
	issue(r.CPU, o.p.Observe, r.Dep, false, func(at sim.Tick) sim.Tick {
		res := o.p.OffPkg.Access(at, r.Key, config.BlockSize, kind)
		charge(o.p.Lat, lat.OffPkgQueue, lat.OffPkgService, res)
		return res.Done
	})
}

// Writeback sinks the dirty victim off-package.
func (o *NoL3) Writeback(at sim.Tick, key uint64) {
	res := o.p.OffPkg.Access(at, key, config.BlockSize, dram.Write)
	o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
}

// ResetStats is a no-op: the design has no counters.
func (o *NoL3) ResetStats() {}

// Collect is a no-op: the design has no counters.
func (o *NoL3) Collect(*Stats) {}

// FastBegin is a no-op: the design has no counters to protect.
func (o *NoL3) FastBegin() {}

// FastAccess is a no-op: the design is stateless, so a fast-forwarded
// access leaves nothing to warm.
func (o *NoL3) FastAccess(FastRequest) {}

// FastWriteback is a no-op: the design is stateless.
func (o *NoL3) FastWriteback(sim.Tick, uint64) {}

// FastEnd is a no-op.
func (o *NoL3) FastEnd() {}
