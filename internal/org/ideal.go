package org

import (
	"taglessdram/internal/config"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
	"taglessdram/internal/sim"
)

func init() {
	Register(config.Ideal, func(p Ports) (Organization, error) {
		o := &Ideal{p: p}
		if cs := uint64(p.Cfg.CacheSize); cs > 0 && cs&(cs-1) == 0 {
			o.mask = cs - 1
		}
		return o, nil
	})
}

// Ideal stores all data in in-package DRAM: every access hits, folded
// into the in-package capacity.
type Ideal struct {
	p    Ports
	mask uint64 // CacheSize-1 when a power of two, else 0
}

// addr folds a physical address into the in-package capacity (mask when
// the capacity is a power of two, modulo otherwise).
func (o *Ideal) addr(key uint64) uint64 {
	if o.mask != 0 {
		return key & o.mask
	}
	return key % uint64(o.p.Cfg.CacheSize)
}

// Access is always an in-package block hit.
func (o *Ideal) Access(r Request) {
	kind := kindOf(r.Write)
	issue(r.CPU, o.p.Observe, r.Dep, true, func(at sim.Tick) sim.Tick {
		res := o.p.InPkg.Access(at, o.addr(r.Key), config.BlockSize, kind)
		charge(o.p.Lat, lat.InPkgQueue, lat.InPkgService, res)
		return res.Done
	})
}

// Writeback sinks the dirty victim in-package.
func (o *Ideal) Writeback(at sim.Tick, key uint64) {
	res := o.p.InPkg.Access(at, o.addr(key), config.BlockSize, dram.Write)
	o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
}

// ResetStats is a no-op: the design has no counters.
func (o *Ideal) ResetStats() {}

// Collect is a no-op: the design has no counters.
func (o *Ideal) Collect(*Stats) {}

// FastBegin is a no-op: the design has no counters to protect.
func (o *Ideal) FastBegin() {}

// FastAccess is a no-op: every access hits and the fold is stateless, so
// a fast-forwarded access leaves nothing to warm.
func (o *Ideal) FastAccess(FastRequest) {}

// FastWriteback is a no-op: the design is stateless.
func (o *Ideal) FastWriteback(sim.Tick, uint64) {}

// FastEnd is a no-op.
func (o *Ideal) FastEnd() {}
