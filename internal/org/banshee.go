package org

import (
	"fmt"
	"sort"

	"taglessdram/internal/config"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
	"taglessdram/internal/sim"
)

// Banshee model parameters, fixed at the reference design's values
// (Yu et al., "Banshee: Bandwidth-Efficient DRAM Caching via
// Software/Hardware Cooperation", see PAPERS.md). The design is
// self-contained: adding it touched no other organization and no config
// knob beyond the L3Design enum value.
const (
	// bansheeWays is the page cache's set associativity.
	bansheeWays = 8
	// bansheeFillThreshold is the bandwidth-efficient fill filter: a page
	// is cached only after this many misses (and only when its frequency
	// counter has caught up with the victim's), so streaming pages do not
	// thrash the cache.
	bansheeFillThreshold = 2
	// bansheeTagBufEntries sizes the tag buffer that absorbs remappings
	// before they are flushed to the in-memory page-table metadata.
	bansheeTagBufEntries = 64
	// bansheeTagEntryBytes is the per-remapping metadata written back on
	// a tag-buffer flush (one PTE-sized update per remapped page).
	bansheeTagEntryBytes = 8
)

func init() {
	Register(config.Banshee, func(p Ports) (Organization, error) {
		pages := p.Cfg.CachePages()
		if pages%bansheeWays != 0 {
			return nil, fmt.Errorf("org: banshee needs cache pages (%d) divisible by %d ways", pages, bansheeWays)
		}
		return &Banshee{
			p:    p,
			sets: make([]bansheeSlot, pages),
			freq: make(map[uint64]uint32),
		}, nil
	})
}

type bansheeSlot struct {
	ppn   uint64
	valid bool
	dirty bool
	count uint32 // frequency counter (FBR metadata)
}

// Banshee is a Banshee-style page-granularity DRAM cache: page mappings
// travel with the translation (like the tagless design, a hit needs no
// tag probe), replacement is frequency-based, and a page is filled only
// after bansheeFillThreshold misses whose counter beats the victim's —
// trading hit rate for fill bandwidth. Remappings are buffered in a small
// tag buffer and flushed to memory-resident metadata when it fills.
type Banshee struct {
	p          Ports
	sets       []bansheeSlot // pages slots, bansheeWays per set
	freq       map[uint64]uint32
	tagBufUsed int
	saved      [6]uint64 // counter snapshot across a fast-forwarded span

	// Counters (reset at the measurement boundary; exported for tests).
	Lookups    uint64
	Hits       uint64
	Fills      uint64
	Bypasses   uint64
	Writebacks uint64
	TagFlushes uint64
}

// set returns ppn's set index and slot range.
func (o *Banshee) set(ppn uint64) (uint64, []bansheeSlot) {
	si := ppn % uint64(len(o.sets)/bansheeWays)
	return si, o.sets[si*bansheeWays : (si+1)*bansheeWays]
}

// slotIndex converts (set, way) to the flat cache-frame index, which is
// the page's address within the in-package device.
func slotIndex(si uint64, way int) uint64 {
	return si*bansheeWays + uint64(way)
}

// lookup finds ppn's way within its set, or -1.
func lookupWay(set []bansheeSlot, ppn uint64) int {
	for w := range set {
		if set[w].valid && set[w].ppn == ppn {
			return w
		}
	}
	return -1
}

// victimWay picks the fill victim: the first invalid way, else the
// minimum-frequency way (lowest way index on ties), per FBR.
func victimWay(set []bansheeSlot) int {
	vi := 0
	for w := range set {
		if !set[w].valid {
			return w
		}
		if set[w].count < set[vi].count {
			vi = w
		}
	}
	return vi
}

// Access serves the miss: resident pages are bare in-package block
// accesses (the mapping came with the translation — no tag latency);
// non-resident pages either fill (frequency caught up with the victim)
// or bypass straight to off-package DRAM.
func (o *Banshee) Access(r Request) {
	kind := kindOf(r.Write)
	ppn := r.Frame
	si, set := o.set(ppn)
	o.Lookups++
	if w := lookupWay(set, ppn); w >= 0 {
		s := &set[w]
		o.Hits++
		if s.count != ^uint32(0) {
			s.count++
		}
		if r.Write {
			s.dirty = true
		}
		slot := slotIndex(si, w)
		issue(r.CPU, o.p.Observe, r.Dep, true, func(at sim.Tick) sim.Tick {
			res := o.p.InPkg.Access(at, slot*config.PageSize+r.Offset, config.BlockSize, kind)
			charge(o.p.Lat, lat.InPkgQueue, lat.InPkgService, res)
			return res.Done
		})
		return
	}

	n := o.freq[ppn] + 1
	o.freq[ppn] = n
	w := victimWay(set)
	victim := &set[w]
	if n >= bansheeFillThreshold && (!victim.valid || n >= victim.count) {
		// Fill: critical block first, the requester resumes when its
		// block arrives and the rest of the page streams in behind.
		o.Fills++
		at := r.CPU.Now()
		slot := slotIndex(si, w)
		if victim.valid && victim.dirty {
			// Victim write-back happens in the background.
			o.Writebacks++
			rv := o.p.InPkg.Access(at, slot*config.PageSize, config.PageSize, dram.Read)
			wv := o.p.OffPkg.Access(rv.Done, victim.ppn*config.PageSize, config.PageSize, dram.Write)
			o.p.Lat.AddBackground(lat.Writeback, wv.Done-at)
		}
		base := ppn * config.PageSize
		blockOff := r.Offset &^ (config.BlockSize - 1)
		crit := o.p.OffPkg.Access(at, base+blockOff, config.BlockSize, dram.Read)
		// Stall attribution: the critical block's queue/service span the
		// full crit.Done-at window; the rest-of-page stream and in-package
		// fill write are bandwidth, not stall.
		charge(o.p.Lat, lat.OffPkgQueue, lat.OffPkgService, crit)
		o.p.OffPkg.Access(crit.Done, base, config.PageSize-config.BlockSize, dram.Read)
		o.p.InPkg.Access(crit.Done, slot*config.PageSize, config.PageSize, dram.Write)
		r.CPU.Serialize(crit.Done)
		o.p.Observe(crit.Done-at, false)

		delete(o.freq, ppn)
		*victim = bansheeSlot{ppn: ppn, valid: true, dirty: r.Write, count: n}
		// The remapping occupies a tag-buffer entry; a full buffer
		// flushes its mappings to the memory-resident metadata.
		o.tagBufUsed++
		if o.tagBufUsed == bansheeTagBufEntries {
			o.p.OffPkg.AccountTraffic(bansheeTagBufEntries*bansheeTagEntryBytes, dram.Write)
			o.TagFlushes++
			o.tagBufUsed = 0
		}
		return
	}

	// Bypass: the page is not hot enough to displace the victim; serve
	// the block off-package and age the victim so a persistently hot
	// candidate eventually wins.
	o.Bypasses++
	if victim.valid && victim.count > 0 {
		victim.count--
	}
	issue(r.CPU, o.p.Observe, r.Dep, false, func(at sim.Tick) sim.Tick {
		res := o.p.OffPkg.Access(at, r.Key, config.BlockSize, kind)
		charge(o.p.Lat, lat.OffPkgQueue, lat.OffPkgService, res)
		return res.Done
	})
}

// Writeback sinks the dirty victim into its cached page frame, or
// off-package when the page is absent.
func (o *Banshee) Writeback(at sim.Tick, key uint64) {
	ppn := key / config.PageSize
	si, set := o.set(ppn)
	if w := lookupWay(set, ppn); w >= 0 {
		set[w].dirty = true
		slot := slotIndex(si, w)
		res := o.p.InPkg.Access(at, slot*config.PageSize+key%config.PageSize, config.BlockSize, dram.Write)
		o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
		return
	}
	res := o.p.OffPkg.Access(at, key, config.BlockSize, dram.Write)
	o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
}

// ResetStats clears counters, keeping cache contents and frequency state.
func (o *Banshee) ResetStats() {
	o.Lookups, o.Hits, o.Fills, o.Bypasses, o.Writebacks, o.TagFlushes = 0, 0, 0, 0, 0, 0
}

// counters snapshots the six statistics counters.
func (o *Banshee) counters() [6]uint64 {
	return [6]uint64{o.Lookups, o.Hits, o.Fills, o.Bypasses, o.Writebacks, o.TagFlushes}
}

// setCounters restores counters captured by counters.
func (o *Banshee) setCounters(v [6]uint64) {
	o.Lookups, o.Hits, o.Fills, o.Bypasses, o.Writebacks, o.TagFlushes = v[0], v[1], v[2], v[3], v[4], v[5]
}

// FastBegin snapshots the counters for restoration in FastEnd.
func (o *Banshee) FastBegin() { o.saved = o.counters() }

// FastAccess applies the FBR state machine of Access — hit counting,
// fill-threshold filtering, victim displacement, tag-buffer occupancy —
// with no device traffic (a tag-buffer flush updates occupancy but books
// no metadata write).
func (o *Banshee) FastAccess(r FastRequest) {
	ppn := r.Frame
	_, set := o.set(ppn)
	o.Lookups++
	if w := lookupWay(set, ppn); w >= 0 {
		s := &set[w]
		o.Hits++
		if s.count != ^uint32(0) {
			s.count++
		}
		if r.Write {
			s.dirty = true
		}
		return
	}
	n := o.freq[ppn] + 1
	o.freq[ppn] = n
	w := victimWay(set)
	victim := &set[w]
	if n >= bansheeFillThreshold && (!victim.valid || n >= victim.count) {
		o.Fills++
		if victim.valid && victim.dirty {
			o.Writebacks++
		}
		delete(o.freq, ppn)
		*victim = bansheeSlot{ppn: ppn, valid: true, dirty: r.Write, count: n}
		o.tagBufUsed++
		if o.tagBufUsed == bansheeTagBufEntries {
			o.TagFlushes++
			o.tagBufUsed = 0
		}
		return
	}
	o.Bypasses++
	if victim.valid && victim.count > 0 {
		victim.count--
	}
}

// FastWriteback marks the victim's page dirty when resident.
func (o *Banshee) FastWriteback(_ sim.Tick, key uint64) {
	ppn := key / config.PageSize
	_, set := o.set(ppn)
	if w := lookupWay(set, ppn); w >= 0 {
		set[w].dirty = true
	}
}

// FastEnd restores the counters captured by FastBegin.
func (o *Banshee) FastEnd() { o.setCounters(o.saved) }

// bansheeSlotState mirrors bansheeSlot with exported fields for gob.
type bansheeSlotState struct {
	PPN   uint64
	Valid bool
	Dirty bool
	Count uint32
}

// bansheeFreq is one serialized frequency-counter pair.
type bansheeFreq struct {
	PPN   uint64
	Count uint32
}

// bansheeState is the design's serializable state.
type bansheeState struct {
	Sets       []bansheeSlotState
	Freq       []bansheeFreq // sorted by PPN for a stable encoding
	TagBufUsed int
	Counters   [6]uint64
}

// SnapshotOrg captures slots, frequency counters, tag-buffer occupancy
// and statistics.
func (o *Banshee) SnapshotOrg() ([]byte, error) {
	st := bansheeState{
		Sets:       make([]bansheeSlotState, len(o.sets)),
		Freq:       make([]bansheeFreq, 0, len(o.freq)),
		TagBufUsed: o.tagBufUsed,
		Counters:   o.counters(),
	}
	for i, s := range o.sets {
		st.Sets[i] = bansheeSlotState{PPN: s.ppn, Valid: s.valid, Dirty: s.dirty, Count: s.count}
	}
	for ppn, n := range o.freq {
		st.Freq = append(st.Freq, bansheeFreq{PPN: ppn, Count: n})
	}
	sort.Slice(st.Freq, func(i, j int) bool { return st.Freq[i].PPN < st.Freq[j].PPN })
	return encodeState(st)
}

// RestoreOrg restores a snapshot taken from an identically-sized cache.
func (o *Banshee) RestoreOrg(data []byte) error {
	var st bansheeState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	if len(st.Sets) != len(o.sets) {
		return fmt.Errorf("org: banshee state mismatch (%d vs %d slots)", len(st.Sets), len(o.sets))
	}
	for i, s := range st.Sets {
		o.sets[i] = bansheeSlot{ppn: s.PPN, valid: s.Valid, dirty: s.Dirty, count: s.Count}
	}
	o.freq = make(map[uint64]uint32, len(st.Freq))
	for _, f := range st.Freq {
		o.freq[f.PPN] = f.Count
	}
	o.tagBufUsed = st.TagBufUsed
	o.setCounters(st.Counters)
	return nil
}

// Collect is a no-op: the design's counters feed no Result field (the
// shared fingerprinted metrics — hit rate, traffic, latency — come from
// the machine and devices).
func (o *Banshee) Collect(*Stats) {}
