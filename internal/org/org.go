// Package org defines the pluggable DRAM-cache organization layer: every
// L3 design the simulator evaluates (Section 4 of the paper plus the
// extra baselines) implements the Organization interface and registers a
// factory keyed by its config.L3Design value. The system package resolves
// the configured design through the registry, so adding a new organization
// is one new file in this package plus experiment wiring — no edits to the
// machine's per-reference path.
//
// An Organization owns the design-specific state (tag arrays, interleave
// maps, the tagless controller) and issues its own device traffic through
// the narrow Ports view it is constructed with. The Machine keeps the
// design-agnostic per-reference pipeline: trace, TLBs, on-die caches, and
// the translation-side tagless specifics (cTLB keys are an addressing
// concern, not a cache-organization one).
package org

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"taglessdram/internal/config"
	"taglessdram/internal/core"
	"taglessdram/internal/cpu"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
	"taglessdram/internal/obs"
	"taglessdram/internal/sim"
)

// PABit distinguishes physically-addressed lines from cache-addressed
// lines in the on-die caches of the tagless design (non-cacheable pages
// keep physical addresses; Section 3.2).
const PABit = uint64(1) << 62

// Request is one L2-miss memory access, passed by value so the hot path
// stays allocation-free (a pointer argument through an interface method
// would force a heap escape).
type Request struct {
	// CPU is the requesting core's timing model: Now/ReserveMSHR/
	// Serialize/CompleteMSHR drive the access's latency exposure.
	CPU *cpu.Core
	// Key is the on-die cache key: a cache address for cached pages in
	// the tagless design (PABit-tagged physical address for NC pages), a
	// physical byte address for every other design.
	Key uint64
	// Frame is the translated page frame (physical page number, or the
	// region cache address in tagless superpage mode).
	Frame uint64
	// Offset is the byte offset within the page.
	Offset uint64
	// NC marks a non-cacheable page (tagless design only).
	NC bool
	// Write distinguishes stores from loads.
	Write bool
	// Dep marks a dependent load whose latency is exposed on the
	// dependence chain (serializes) rather than overlapped via MSHRs.
	Dep bool
}

// Ports is the narrow view of the machine an Organization is constructed
// against: the two DRAM devices, the event kernel, the configuration, the
// latency observer, and the controller-side memory operations.
type Ports struct {
	Cfg    *config.SystemConfig
	InPkg  *dram.Device
	OffPkg *dram.Device
	Kernel *sim.Kernel
	// Mem implements the tagless controller's fill/evict/GIPT traffic
	// against the devices (unused by the other organizations).
	Mem core.MemOps
	// Observe records one L3 access's device-side latency and hit/miss
	// into the machine's measurement state.
	Observe func(lat sim.Tick, hit bool)
	// Lat receives per-reference latency attribution (queue/service
	// split per device access, tag-probe and write-back charges). An
	// organization must attribute every cycle of each access's critical
	// path — the recorder enforces that the charges sum exactly to the
	// latency passed to Observe. May be nil (Recorder methods are
	// nil-safe); the machine always wires one.
	Lat *lat.Recorder
	// Walk prices a page-table walk through the machine's internal/vm
	// walk model, which attributes its own latency components. May be
	// nil (tests constructing Ports directly): the tagless controller
	// then falls back to its fixed WalkCycles cost.
	Walk func(at sim.Tick, coreID int, vpn uint64) sim.Tick
}

// charge attributes one device access's critical-path cycles to its
// queue-wait and service components. The dram.Result identity
// (QueueWait + Service == Done - arrival) makes the pair conserve the
// access's full latency.
func charge(rec *lat.Recorder, q, s lat.Component, r dram.Result) {
	rec.Add(q, r.QueueWait)
	rec.Add(s, r.Service)
}

// Stats carries the design-specific counters an Organization contributes
// to the run's Result. Fields irrelevant to a design stay zero.
type Stats struct {
	// Ctrl holds the tagless controller's counters over the measured
	// window (zero for other designs).
	Ctrl core.Stats
	// SRAMHitRate is the page-cache hit rate (SRAM-tag design only).
	SRAMHitRate float64
	// TagEnergyPJ is the on-die tag-array energy (SRAM-tag design only).
	TagEnergyPJ float64
}

// GaugeSource is optionally implemented by organizations that expose
// instantaneous state worth an epoch-resolved time series beyond
// Collect's window counters — free-pool pressure, queue depths. When
// epoch sampling is enabled the machine polls it at every epoch
// boundary; designs without such state simply do not implement it and
// their epochs carry zero gauges. Implementations must be read-only:
// sampling must never perturb simulated behavior.
type GaugeSource interface {
	EpochGauges() obs.Gauges
}

// Organization is one DRAM-cache design: it serves L2 misses and dirty
// on-die victims, and reports its design-specific statistics.
type Organization interface {
	// Access performs the design-specific memory access for an L2 miss,
	// issuing device traffic and charging the requesting core.
	Access(r Request)
	// Writeback sinks a dirty on-die victim line into the level below,
	// off the core's critical path (device traffic only).
	Writeback(at sim.Tick, key uint64)
	// ResetStats marks the warmup/measure boundary: counters reset,
	// microarchitectural state (cache contents) is kept.
	ResetStats()
	// Collect reports the design-specific counters of the measured
	// window.
	Collect(*Stats)
}

// FastRequest is one L2-miss access on the functional fast-forward path:
// the same addressing fields as Request with a timestamp in place of the
// timing handles (no CPU, no dependence — the fast path models state, not
// latency).
type FastRequest struct {
	// At is the requesting core's clock, used only where the design keeps
	// recency state (the tagless controller's LRU timestamps).
	At sim.Tick
	// Key, Frame, Offset, NC and Write have Request's meanings.
	Key    uint64
	Frame  uint64
	Offset uint64
	NC     bool
	Write  bool
}

// FastPath is implemented by organizations that support functional
// fast-forward: FastAccess and FastWriteback apply the same
// design-specific state transitions as Access and Writeback (residence,
// replacement, dirtiness) with no device traffic, no kernel events and no
// latency charging. FastBegin/FastEnd bracket each fast-forwarded span:
// the design snapshots its statistics counters in FastBegin and restores
// them in FastEnd, so fast-forwarded references warm state without
// polluting measured-window counters. All seven built-in designs
// implement it; the machine refuses to fast-forward otherwise.
type FastPath interface {
	FastBegin()
	FastAccess(r FastRequest)
	FastWriteback(at sim.Tick, key uint64)
	FastEnd()
}

// Snapshotter is implemented by organizations with design-specific
// warmable state worth checkpointing (tag arrays, frequency counters,
// measurement baselines). The encoding is opaque to the caller; restore
// must only be attempted against an identically-configured organization.
// The tagless controller's state is NOT part of SnapshotOrg — the machine
// owns the page tables its PTE pointers resolve against and snapshots the
// controller itself. Stateless designs simply do not implement the
// interface.
type Snapshotter interface {
	SnapshotOrg() ([]byte, error)
	RestoreOrg(data []byte) error
}

// encodeState gob-encodes one design's snapshot payload.
func encodeState(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeState decodes a payload produced by encodeState.
func decodeState(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// Factory builds an Organization from the machine's ports.
type Factory func(p Ports) (Organization, error)

var registry = map[config.L3Design]Factory{}

// Register installs a factory for a design. Each design file registers
// itself from init(), so importing this package populates the registry.
func Register(d config.L3Design, f Factory) {
	if _, dup := registry[d]; dup {
		panic(fmt.Sprintf("org: duplicate registration for design %v", d))
	}
	registry[d] = f
}

// New resolves a design through the registry and builds its organization.
func New(d config.L3Design, p Ports) (Organization, error) {
	f, ok := registry[d]
	if !ok {
		return nil, fmt.Errorf("org: no organization registered for design %v", d)
	}
	return f(p)
}

// Registered lists every registered design in enum order (deterministic,
// independent of registration order).
func Registered() []config.L3Design {
	out := make([]config.L3Design, 0, len(registry))
	for d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// issue runs one block-granularity memory access: dependent loads
// serialize (their latency is exposed on the dependence chain),
// independent ones overlap through the MSHR window. access closures stay
// stack-allocated: issue is a static call that never stores them.
func issue(c *cpu.Core, observe func(sim.Tick, bool), dep, hit bool, access func(at sim.Tick) sim.Tick) {
	var at sim.Tick
	if dep {
		at = c.Now()
	} else {
		at = c.ReserveMSHR()
	}
	done := access(at)
	if dep {
		c.Serialize(done)
	} else {
		c.CompleteMSHR(done)
	}
	observe(done-at, hit)
}

// kindOf maps a store/load to the DRAM access kind.
func kindOf(write bool) dram.AccessKind {
	if write {
		return dram.Write
	}
	return dram.Read
}
