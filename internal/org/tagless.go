package org

import (
	"fmt"

	"taglessdram/internal/config"
	"taglessdram/internal/core"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
	"taglessdram/internal/obs"
	"taglessdram/internal/sim"
)

func init() {
	Register(config.Tagless, func(p Ports) (Organization, error) {
		spPages := uint64(1)
		if sp := p.Cfg.Tagless.SuperpagePages; sp > 1 {
			spPages = uint64(sp)
		}
		if spPages&(spPages-1) != 0 {
			return nil, fmt.Errorf("org: superpage region of %d pages is not a power of two", spPages)
		}
		o := &Tagless{p: p}
		for sp := spPages; sp > 1; sp >>= 1 {
			o.caShift++
		}
		o.caShift += 12 // log2(spPages * config.PageSize)
		o.ctrl = core.NewController(core.Config{
			Blocks:              p.Cfg.CachePages() / int(spPages),
			RegionPages:         int(spPages),
			Alpha:               p.Cfg.Tagless.Alpha,
			Policy:              p.Cfg.Tagless.Policy,
			WalkCycles:          p.Cfg.PageWalkCycles,
			WalkFunc:            p.Walk,
			SynchronousEviction: p.Cfg.Tagless.SynchronousEviction,
			CachedGIPT:          p.Cfg.Tagless.CachedGIPT,
			SharedAliasTable:    p.Cfg.Tagless.SharedAliasTable,
			Lat:                 p.Lat,
		}, p.Mem, p.Kernel)
		return o, nil
	})
}

// Tagless is the proposed cTLB-based organization: the controller owns
// the GIPT, free queue and eviction daemon; a cTLB hit guarantees a cache
// hit, so the access path is a bare in-package block access.
type Tagless struct {
	p       Ports
	ctrl    *core.Controller
	caShift uint // log2(spPages*PageSize): CA bytes → block number
	start   core.Stats
	saved   core.Stats // counter snapshot across a fast-forwarded span
}

// Controller exposes the cTLB controller: the machine wires its miss
// handler, eviction hooks and TLB-residence tracking into the
// translation path (addressing concerns that live outside this package).
func (o *Tagless) Controller() *core.Controller { return o.ctrl }

// Access serves the miss: an off-package block access for non-cacheable
// pages (Table 1), a bare in-package block access otherwise.
func (o *Tagless) Access(r Request) {
	kind := kindOf(r.Write)
	if r.NC {
		// Non-cacheable page: off-package block access (Table 1).
		issue(r.CPU, o.p.Observe, r.Dep, false, func(at sim.Tick) sim.Tick {
			res := o.p.OffPkg.Access(at, r.Key&^PABit, config.BlockSize, kind)
			charge(o.p.Lat, lat.OffPkgQueue, lat.OffPkgService, res)
			return res.Done
		})
		return
	}
	// cTLB hit guarantees a cache hit: bare in-package block access.
	// Inlined issue(): this is the design's hottest L3 path.
	var at sim.Tick
	if r.Dep {
		at = r.CPU.Now()
	} else {
		at = r.CPU.ReserveMSHR()
	}
	o.ctrl.Touch(at, r.Key>>o.caShift, r.Write)
	res := o.p.InPkg.Access(at, r.Key, config.BlockSize, kind)
	charge(o.p.Lat, lat.InPkgQueue, lat.InPkgService, res)
	done := res.Done
	if r.Dep {
		r.CPU.Serialize(done)
	} else {
		r.CPU.CompleteMSHR(done)
	}
	o.p.Observe(done-at, true)
}

// Writeback sinks the dirty victim: PA-tagged (non-cacheable) lines go
// off-package; CA-tagged lines land in the cache and mark its block dirty.
func (o *Tagless) Writeback(at sim.Tick, key uint64) {
	if key&PABit != 0 {
		res := o.p.OffPkg.Access(at, key&^PABit, config.BlockSize, dram.Write)
		o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
		return
	}
	res := o.p.InPkg.Access(at, key, config.BlockSize, dram.Write)
	o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
	o.ctrl.Touch(at, key>>o.caShift, true)
}

// ResetStats snapshots the controller counters at the warmup/measure
// boundary so Collect can report the measured-window delta.
func (o *Tagless) ResetStats() { o.start = o.ctrl.Stats() }

// Collect reports the controller counters accumulated since ResetStats.
func (o *Tagless) Collect(s *Stats) {
	s.Ctrl = o.ctrl.Stats().Sub(o.start)
}

// FastBegin snapshots the controller counters so the fast-forwarded
// span's FastTLBMiss and Touch bookkeeping can be rolled back in FastEnd.
func (o *Tagless) FastBegin() { o.saved = o.ctrl.Stats() }

// FastAccess applies the state effect of a cTLB-hit access: recency and
// dirtiness on the touched block. Non-cacheable accesses have no
// cache-side state.
func (o *Tagless) FastAccess(r FastRequest) {
	if r.NC {
		return
	}
	o.ctrl.Touch(r.At, r.Key>>o.caShift, r.Write)
}

// FastWriteback marks the CA-tagged victim's block dirty; PA-tagged
// (non-cacheable) victims leave no cache-side state.
func (o *Tagless) FastWriteback(at sim.Tick, key uint64) {
	if key&PABit != 0 {
		return
	}
	o.ctrl.Touch(at, key>>o.caShift, true)
}

// FastEnd restores the counters captured by FastBegin.
func (o *Tagless) FastEnd() { o.ctrl.SetStats(o.saved) }

// SnapshotOrg captures only the measurement baseline: the controller's
// own state (GIPT, free lists, alias table) is snapshotted by the machine,
// which owns the page tables its PTE pointers resolve against.
func (o *Tagless) SnapshotOrg() ([]byte, error) { return encodeState(o.start) }

// RestoreOrg restores the measurement baseline captured by SnapshotOrg.
func (o *Tagless) RestoreOrg(data []byte) error { return decodeState(data, &o.start) }

// EpochGauges reports the controller's free-pool pressure for epoch
// sampling: the free-list depth and the eviction daemon's queue length.
func (o *Tagless) EpochGauges() obs.Gauges {
	return obs.Gauges{
		FreeBlocks:   o.ctrl.FreeBlocks(),
		FreeQueueLen: o.ctrl.FreeQueueLen(),
	}
}
