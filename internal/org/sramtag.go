package org

import (
	"taglessdram/internal/config"
	"taglessdram/internal/dram"
	"taglessdram/internal/dramcache"
	"taglessdram/internal/lat"
	"taglessdram/internal/sim"
)

func init() {
	Register(config.SRAMTag, func(p Ports) (Organization, error) {
		tag := config.TagParamsFor(p.Cfg.CacheSize)
		return &SRAMTag{
			p:     p,
			cache: dramcache.NewPageCache(p.Cfg.CachePages(), p.Cfg.SRAMTag.Ways, tag.LatencyCyc),
		}, nil
	})
}

// SRAMTag is the page-based cache with an on-die SRAM tag array: a tag
// check on every access, in-package block on a hit, serializing page fill
// on a miss (Section 2.2).
type SRAMTag struct {
	p     Ports
	cache *dramcache.PageCache
	saved [5]uint64 // counter snapshot across a fast-forwarded span
}

// Access performs the tag check and the hit block access or miss fill.
func (o *SRAMTag) Access(r Request) {
	kind := kindOf(r.Write)
	tagCycles := sim.Tick(o.cache.TagLatency())
	if slot, hit := o.cache.Lookup(r.Frame, r.Write); hit {
		issue(r.CPU, o.p.Observe, r.Dep, true, func(at sim.Tick) sim.Tick {
			res := o.p.InPkg.Access(at+tagCycles, slot*config.PageSize+r.Offset, config.BlockSize, kind)
			o.p.Lat.Add(lat.VictimProbe, tagCycles)
			charge(o.p.Lat, lat.InPkgQueue, lat.InPkgService, res)
			return res.Done
		})
		return
	}
	// Miss: fetch the page from off-package DRAM, critical block first —
	// the requester resumes when its block arrives (Equation 3's
	// MissRate_L3 × PageAccessTime term) and the rest of the page
	// streams in behind, consuming bandwidth.
	at := r.CPU.Now()
	slot, victim, hasVictim := o.cache.Fill(r.Frame, r.Write)
	fillStart := at + tagCycles
	if hasVictim && victim.Dirty {
		// Victim write-back happens in the background.
		rv := o.p.InPkg.Access(fillStart, victim.Slot*config.PageSize, config.PageSize, dram.Read)
		wv := o.p.OffPkg.Access(rv.Done, victim.PPN*config.PageSize, config.PageSize, dram.Write)
		o.p.Lat.AddBackground(lat.Writeback, wv.Done-fillStart)
	}
	base := r.Frame * config.PageSize
	blockOff := r.Offset &^ (config.BlockSize - 1)
	crit := o.p.OffPkg.Access(fillStart, base+blockOff, config.BlockSize, dram.Read)
	// Stall attribution: tag probe + the critical block's queue/service
	// span the full crit.Done-at window. The rest-of-page stream and the
	// in-package fill write below are bandwidth, not stall, and stay
	// unattributed.
	o.p.Lat.Add(lat.VictimProbe, tagCycles)
	charge(o.p.Lat, lat.OffPkgQueue, lat.OffPkgService, crit)
	o.p.OffPkg.Access(crit.Done, base, config.PageSize-config.BlockSize, dram.Read)
	o.p.InPkg.Access(crit.Done, slot*config.PageSize, config.PageSize, dram.Write)
	r.CPU.Serialize(crit.Done)
	o.p.Observe(crit.Done-at, false)
}

// Writeback sinks the dirty victim into its cached page frame, or
// off-package when the page is absent.
func (o *SRAMTag) Writeback(at sim.Tick, key uint64) {
	ppn := key / config.PageSize
	var res dram.Result
	if slot, ok := o.cache.Peek(ppn); ok {
		o.cache.MarkDirty(ppn)
		res = o.p.InPkg.Access(at, slot*config.PageSize+key%config.PageSize, config.BlockSize, dram.Write)
	} else {
		res = o.p.OffPkg.Access(at, key, config.BlockSize, dram.Write)
	}
	o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
}

// ResetStats clears the page-cache counters.
func (o *SRAMTag) ResetStats() { o.cache.ResetStats() }

// FastBegin snapshots the page-cache counters for restoration in FastEnd.
func (o *SRAMTag) FastBegin() { o.saved = o.cache.Counters() }

// FastAccess applies the tag-array state transitions of Access — LRU
// refresh and dirtiness on a hit, victim selection and allocation on a
// miss — with no device traffic.
func (o *SRAMTag) FastAccess(r FastRequest) {
	if _, hit := o.cache.Lookup(r.Frame, r.Write); hit {
		return
	}
	o.cache.Fill(r.Frame, r.Write)
}

// FastWriteback marks the victim's page dirty when resident (Writeback's
// state effect; the device traffic is skipped).
func (o *SRAMTag) FastWriteback(_ sim.Tick, key uint64) {
	o.cache.MarkDirty(key / config.PageSize)
}

// FastEnd restores the counters captured by FastBegin.
func (o *SRAMTag) FastEnd() { o.cache.SetCounters(o.saved) }

// SnapshotOrg captures the page cache (slots, LRU clock, counters).
func (o *SRAMTag) SnapshotOrg() ([]byte, error) { return encodeState(o.cache.State()) }

// RestoreOrg restores a snapshot taken from an identically-sized cache.
func (o *SRAMTag) RestoreOrg(data []byte) error {
	var st dramcache.PageCacheState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	o.cache.SetState(st)
	return nil
}

// Collect reports the tag array's hit rate and energy.
func (o *SRAMTag) Collect(s *Stats) {
	s.SRAMHitRate = o.cache.HitRate()
	s.TagEnergyPJ = o.cache.TagEnergyPJ()
}
