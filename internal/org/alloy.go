package org

import (
	"taglessdram/internal/config"
	"taglessdram/internal/dram"
	"taglessdram/internal/dramcache"
	"taglessdram/internal/lat"
	"taglessdram/internal/sim"
)

func init() {
	Register(config.AlloyBlock, func(p Ports) (Organization, error) {
		return &Alloy{p: p, cache: dramcache.NewBlockCache(p.Cfg.CacheSize)}, nil
	})
}

// Alloy is the block-based cache class of Table 2: one in-package TAD
// read serves tag check and data together; a miss adds a serial
// off-package block fetch (the Alloy SERIAL organization, no hit
// predictor) and a background TAD fill plus any dirty-victim write-back.
type Alloy struct {
	p     Ports
	cache *dramcache.BlockCache
	saved [4]uint64 // counter snapshot across a fast-forwarded span
}

// Access performs the TAD probe and the hit read or miss fill.
func (o *Alloy) Access(r Request) {
	kind := kindOf(r.Write)
	slot, hit := o.cache.Lookup(r.Key, r.Write)
	tad := o.cache.TADAddr(slot)
	if hit {
		issue(r.CPU, o.p.Observe, r.Dep, true, func(at sim.Tick) sim.Tick {
			res := o.p.InPkg.Access(at, tad, dramcache.TADBytes, kind)
			charge(o.p.Lat, lat.InPkgQueue, lat.InPkgService, res)
			return res.Done
		})
		return
	}
	_, victim, hasVictim := o.cache.Fill(r.Key, r.Write)
	issue(r.CPU, o.p.Observe, r.Dep, false, func(at sim.Tick) sim.Tick {
		res := o.p.InPkg.Access(at, tad, dramcache.TADBytes, dram.Read) // tag probe
		off := o.p.OffPkg.Access(res.Done, r.Key, config.BlockSize, dram.Read)
		// Stall attribution: TAD probe (incl. its queueing) plus the
		// off-package fetch's queue/service span the full off.Done-at
		// window.
		o.p.Lat.Add(lat.VictimProbe, res.Done-at)
		charge(o.p.Lat, lat.OffPkgQueue, lat.OffPkgService, off)
		// Fill and write-back stream in the background.
		o.p.InPkg.Access(off.Done, tad, dramcache.TADBytes, dram.Write)
		if hasVictim && victim.Dirty {
			wb := o.p.OffPkg.Access(off.Done, victim.BlockAddr, config.BlockSize, dram.Write)
			o.p.Lat.AddBackground(lat.Writeback, wb.Done-off.Done)
		}
		return off.Done
	})
}

// Writeback sinks the dirty victim into its TAD slot when resident
// (MarkDirty confirms residence and returns the slot — no extra probe,
// so Lookups/Hits stay untouched), off-package otherwise.
func (o *Alloy) Writeback(at sim.Tick, key uint64) {
	var res dram.Result
	if slot, ok := o.cache.MarkDirty(key); ok {
		res = o.p.InPkg.Access(at, o.cache.TADAddr(slot), config.BlockSize, dram.Write)
	} else {
		res = o.p.OffPkg.Access(at, key, config.BlockSize, dram.Write)
	}
	o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
}

// ResetStats clears the block-cache counters.
func (o *Alloy) ResetStats() { o.cache.ResetStats() }

// FastBegin snapshots the block-cache counters for restoration in FastEnd.
func (o *Alloy) FastBegin() { o.saved = o.cache.Counters() }

// FastAccess applies the direct-mapped state transitions of Access —
// dirtiness on a hit, displacement and fill on a miss — with no device
// traffic.
func (o *Alloy) FastAccess(r FastRequest) {
	if _, hit := o.cache.Lookup(r.Key, r.Write); hit {
		return
	}
	o.cache.Fill(r.Key, r.Write)
}

// FastWriteback marks the victim's line dirty when resident.
func (o *Alloy) FastWriteback(_ sim.Tick, key uint64) {
	o.cache.MarkDirty(key)
}

// FastEnd restores the counters captured by FastBegin.
func (o *Alloy) FastEnd() { o.cache.SetCounters(o.saved) }

// SnapshotOrg captures the block cache (slots and counters).
func (o *Alloy) SnapshotOrg() ([]byte, error) { return encodeState(o.cache.State()) }

// RestoreOrg restores a snapshot taken from an identically-sized cache.
func (o *Alloy) RestoreOrg(data []byte) error {
	var st dramcache.BlockCacheState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	o.cache.SetState(st)
	return nil
}

// Collect is a no-op: the block cache's counters feed no Result field.
func (o *Alloy) Collect(*Stats) {}

// Cache exposes the block cache for tests.
func (o *Alloy) Cache() *dramcache.BlockCache { return o.cache }
