package org

import (
	"fmt"
	"testing"

	"taglessdram/internal/config"
	"taglessdram/internal/cpu"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
	"taglessdram/internal/sim"
)

// conserveMem is a fixed-latency core.MemOps stand-in for the tagless
// controller (unused by the paths this test drives).
type conserveMem struct{}

func (conserveMem) FillPage(at sim.Tick, ppn, ca, offset uint64, pages int) sim.Tick {
	return at + 100
}
func (conserveMem) EvictPage(at sim.Tick, ca, ppn uint64, pages int) sim.Tick { return at + 80 }
func (conserveMem) GIPTUpdate(at sim.Tick) sim.Tick                           { return at + 40 }

// TestAccessConservationAllDesigns drives one reference down every hit and
// miss path of every registered organization against real cycle-level
// devices and asserts exact conservation: the cycles each path attributes
// must sum to the end-to-end latency it reports to Observe, for every
// single commit (zero residue).
func TestAccessConservationAllDesigns(t *testing.T) {
	for _, d := range Registered() {
		d := d
		t.Run(fmt.Sprint(d), func(t *testing.T) {
			cfg := config.Default()
			cfg.Design = d
			cfg.InPkg.SizeBytes >>= 6
			cfg.OffPkg.SizeBytes >>= 6
			cfg.CacheSize >>= 6
			if cfg.CacheSize > cfg.InPkg.SizeBytes {
				cfg.InPkg.SizeBytes = cfg.CacheSize
			}

			rec := &lat.Recorder{}
			rec.Enable()
			var commits uint64
			p := Ports{
				Cfg:    cfg,
				InPkg:  dram.New("in-pkg", cfg.InPkg, cfg.CPU.FreqGHz),
				OffPkg: dram.New("off-pkg", cfg.OffPkg, cfg.CPU.FreqGHz),
				Kernel: sim.NewKernel(),
				Mem:    conserveMem{},
				Lat:    rec,
			}
			p.Observe = func(d sim.Tick, hit bool) {
				rec.CommitL3(d)
				commits++
			}
			o, err := New(d, p)
			if err != nil {
				t.Fatalf("New(%v): %v", d, err)
			}
			core := cpu.New(0, 4, 8)

			access := func(key uint64, nc bool) {
				t.Helper()
				rec.Begin()
				o.Access(Request{
					CPU:    core,
					Key:    key,
					Frame:  (key &^ PABit) / config.PageSize,
					Offset: key % config.PageSize,
					NC:     nc,
					Dep:    true,
				})
				s := rec.Summary()
				if s.L3.Commits != commits {
					t.Fatalf("access did not commit: %d commits recorded, %d observed", s.L3.Commits, commits)
				}
				if s.L3.Residue != 0 {
					t.Fatalf("conservation violated after commit %d: residue %d cycles (breakdown %v, measured %d)",
						commits, s.L3.Residue, s.L3.Cycles, s.L3.Measured)
				}
			}

			switch d {
			case config.Tagless:
				access(PABit|64, true) // non-cacheable: off-package block path
				access(0, false)       // cTLB hit: bare in-package block path
			case config.Banshee:
				access(0, false) // bypass: below the fill threshold
				access(0, false) // fill: critical-block-first page fetch
				access(0, false) // hit: bare in-package block access
			default:
				access(0, false) // miss/fill (or the design's only path)
				access(0, false) // hit (same address)
			}

			// Dirty-victim writeback: background attribution, trivially
			// conserved but must be recorded.
			s := rec.Summary()
			bgBefore := s.Bg.Commits
			o.Writeback(core.Now(), 4096)
			s = rec.Summary()
			if s.Bg.Commits != bgBefore+1 {
				t.Errorf("writeback not recorded: bg commits %d, want %d", s.Bg.Commits, bgBefore+1)
			}
			if s.Bg.Residue != 0 {
				t.Errorf("background residue %d, want 0", s.Bg.Residue)
			}
			if s.L3.Measured == 0 {
				t.Error("no stall cycles measured across access paths")
			}
		})
	}
}
