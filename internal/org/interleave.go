package org

import (
	"taglessdram/internal/config"
	"taglessdram/internal/dram"
	"taglessdram/internal/dramcache"
	"taglessdram/internal/lat"
	"taglessdram/internal/sim"
)

func init() {
	Register(config.BankInterleave, func(p Ports) (Organization, error) {
		cachePages := uint64(p.Cfg.CachePages())
		offRatio := uint64(p.Cfg.OffPkg.SizeBytes / p.Cfg.InPkg.SizeBytes)
		if offRatio < 1 {
			offRatio = 1
		}
		return &Interleave{
			p:     p,
			inter: dramcache.NewBankInterleaver(cachePages, cachePages*offRatio),
		}, nil
	})
}

// Interleave is the "BI" heterogeneous-memory baseline: in-package DRAM
// is mapped into the physical address space and pages interleave
// OS-obliviously between the two devices.
type Interleave struct {
	p     Ports
	inter *dramcache.BankInterleaver
}

// Access routes the miss to whichever device the page interleaves onto.
func (o *Interleave) Access(r Request) {
	kind := kindOf(r.Write)
	devPage, inPkg := o.inter.Map(r.Frame)
	issue(r.CPU, o.p.Observe, r.Dep, inPkg, func(at sim.Tick) sim.Tick {
		var res dram.Result
		if inPkg {
			res = o.p.InPkg.Access(at, devPage*config.PageSize+r.Offset, config.BlockSize, kind)
			charge(o.p.Lat, lat.InPkgQueue, lat.InPkgService, res)
		} else {
			res = o.p.OffPkg.Access(at, devPage*config.PageSize+r.Offset, config.BlockSize, kind)
			charge(o.p.Lat, lat.OffPkgQueue, lat.OffPkgService, res)
		}
		return res.Done
	})
}

// Writeback routes the dirty victim to the device its page maps onto.
func (o *Interleave) Writeback(at sim.Tick, key uint64) {
	devPage, inPkg := o.inter.Map(key / config.PageSize)
	addr := devPage*config.PageSize + key%config.PageSize
	var res dram.Result
	if inPkg {
		res = o.p.InPkg.Access(at, addr, config.BlockSize, dram.Write)
	} else {
		res = o.p.OffPkg.Access(at, addr, config.BlockSize, dram.Write)
	}
	o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
}

// ResetStats clears the interleaver's routing counters.
func (o *Interleave) ResetStats() {
	o.inter.InPkgAccesses, o.inter.OffPkgAccesses = 0, 0
}

// Collect is a no-op: the routing counters feed no Result field.
func (o *Interleave) Collect(*Stats) {}

// FastBegin is a no-op: the fast path never calls Map, so the routing
// counters need no protection.
func (o *Interleave) FastBegin() {}

// FastAccess is a no-op: the interleave mapping is a pure function of the
// address — there is no residence or replacement state to warm, and
// skipping Map keeps the routing counters clean.
func (o *Interleave) FastAccess(FastRequest) {}

// FastWriteback is a no-op for the same reason.
func (o *Interleave) FastWriteback(sim.Tick, uint64) {}

// FastEnd is a no-op.
func (o *Interleave) FastEnd() {}

// interleaveState is the design's serializable state: only the routing
// counters (the mapping itself is configuration).
type interleaveState struct {
	InPkg, OffPkg uint64
}

// SnapshotOrg captures the routing counters.
func (o *Interleave) SnapshotOrg() ([]byte, error) {
	return encodeState(interleaveState{InPkg: o.inter.InPkgAccesses, OffPkg: o.inter.OffPkgAccesses})
}

// RestoreOrg restores counters captured by SnapshotOrg.
func (o *Interleave) RestoreOrg(data []byte) error {
	var st interleaveState
	if err := decodeState(data, &st); err != nil {
		return err
	}
	o.inter.InPkgAccesses, o.inter.OffPkgAccesses = st.InPkg, st.OffPkg
	return nil
}
