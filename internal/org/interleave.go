package org

import (
	"taglessdram/internal/config"
	"taglessdram/internal/dram"
	"taglessdram/internal/dramcache"
	"taglessdram/internal/lat"
	"taglessdram/internal/sim"
)

func init() {
	Register(config.BankInterleave, func(p Ports) (Organization, error) {
		cachePages := uint64(p.Cfg.CachePages())
		offRatio := uint64(p.Cfg.OffPkg.SizeBytes / p.Cfg.InPkg.SizeBytes)
		if offRatio < 1 {
			offRatio = 1
		}
		return &Interleave{
			p:     p,
			inter: dramcache.NewBankInterleaver(cachePages, cachePages*offRatio),
		}, nil
	})
}

// Interleave is the "BI" heterogeneous-memory baseline: in-package DRAM
// is mapped into the physical address space and pages interleave
// OS-obliviously between the two devices.
type Interleave struct {
	p     Ports
	inter *dramcache.BankInterleaver
}

// Access routes the miss to whichever device the page interleaves onto.
func (o *Interleave) Access(r Request) {
	kind := kindOf(r.Write)
	devPage, inPkg := o.inter.Map(r.Frame)
	issue(r.CPU, o.p.Observe, r.Dep, inPkg, func(at sim.Tick) sim.Tick {
		var res dram.Result
		if inPkg {
			res = o.p.InPkg.Access(at, devPage*config.PageSize+r.Offset, config.BlockSize, kind)
			charge(o.p.Lat, lat.InPkgQueue, lat.InPkgService, res)
		} else {
			res = o.p.OffPkg.Access(at, devPage*config.PageSize+r.Offset, config.BlockSize, kind)
			charge(o.p.Lat, lat.OffPkgQueue, lat.OffPkgService, res)
		}
		return res.Done
	})
}

// Writeback routes the dirty victim to the device its page maps onto.
func (o *Interleave) Writeback(at sim.Tick, key uint64) {
	devPage, inPkg := o.inter.Map(key / config.PageSize)
	addr := devPage*config.PageSize + key%config.PageSize
	var res dram.Result
	if inPkg {
		res = o.p.InPkg.Access(at, addr, config.BlockSize, dram.Write)
	} else {
		res = o.p.OffPkg.Access(at, addr, config.BlockSize, dram.Write)
	}
	o.p.Lat.AddBackground(lat.Writeback, res.Done-at)
}

// ResetStats clears the interleaver's routing counters.
func (o *Interleave) ResetStats() {
	o.inter.InPkgAccesses, o.inter.OffPkgAccesses = 0, 0
}

// Collect is a no-op: the routing counters feed no Result field.
func (o *Interleave) Collect(*Stats) {}
