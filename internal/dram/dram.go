// Package dram implements a cycle-level DRAM device model with open-row
// banks, command timing (tRCD/tAA/tRAS/tRP from Table 4), shared data buses,
// and per-event energy accounting. The same model serves both the 3D
// in-package device and the off-package DDR3 device; they differ only in
// the config.DRAMConfig they are constructed with.
package dram

import (
	"fmt"

	"taglessdram/internal/config"
	"taglessdram/internal/sim"
)

// AccessKind distinguishes reads from writes for energy accounting.
type AccessKind int

const (
	// Read moves data from the device to the controller.
	Read AccessKind = iota
	// Write moves data from the controller to the device.
	Write
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Result describes one serviced access. The accounting identity
// QueueWait + Service == Done - at (the caller's arrival time) holds
// exactly by construction for every access; the cycle-accounting layer
// relies on it for its conservation invariant.
type Result struct {
	Start    sim.Tick // when the bank began servicing the request
	Done     sim.Tick // when the last data beat transferred
	RowHit   bool     // the open row matched
	Activate bool     // an ACT command was issued

	// QueueWait is time spent waiting on shared resources: the bank
	// becoming free (including refresh blackouts) and data-bus
	// contention. Service is device work: command timing (ACT/PRE/CAS,
	// FAW/tRAS constraints) plus the data transfer. For multi-row
	// transfers QueueWait is the first chunk's wait and Service absorbs
	// the pipelined remainder, preserving the identity.
	QueueWait sim.Tick
	Service   sim.Tick
}

// Latency returns Done minus the request arrival time given by the caller.
func (r Result) Latency(at sim.Tick) sim.Tick {
	if r.Done < at {
		return 0
	}
	return r.Done - at
}

type bank struct {
	res     sim.Resource
	openRow int64    // -1 when no row is open
	actAt   sim.Tick // activation time of the open row, for tRAS

	// Per-bank telemetry over the measured window.
	hits   uint64 // row-buffer hits
	confls uint64 // row conflicts (PRE then ACT)
}

// Device is one DRAM device (a set of channels, ranks and banks).
type Device struct {
	Name string
	cfg  config.DRAMConfig

	banks []bank
	buses []sim.Resource // one data bus per channel

	// Timing in CPU cycles.
	tRCD, tAA, tRAS, tRP sim.Tick
	tREFI, tRFC          sim.Tick // zero tREFI disables refresh
	tFAW                 sim.Tick // zero disables the four-activate window

	// rankActs holds each rank's last four activation times (tFAW).
	rankActs [][4]sim.Tick

	Refreshes uint64 // refresh blackouts that delayed an access
	FAWStalls uint64 // activations delayed by the four-activate window

	cyclesPerNS float64

	// Statistics.
	Accesses   uint64
	RowHits    uint64
	RowMisses  uint64 // closed-row activations
	RowConfls  uint64 // conflicting-row activations (PRE then ACT)
	Activates  uint64
	BitsRead   uint64
	BitsWrit   uint64
	BitsIO     uint64
	lastAccess sim.Tick
}

// New constructs a device from its configuration. cpuGHz sets the cycle
// base so that device nanosecond timings convert to CPU cycles.
func New(name string, cfg config.DRAMConfig, cpuGHz float64) *Device {
	if cpuGHz <= 0 {
		panic("dram: cpu frequency must be positive")
	}
	d := &Device{
		Name:        name,
		cfg:         cfg,
		banks:       make([]bank, cfg.RowBuffers()),
		buses:       make([]sim.Resource, cfg.Channels),
		cyclesPerNS: cpuGHz,
	}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	d.tRCD = d.cycles(cfg.Timing.TRCDns)
	d.tAA = d.cycles(cfg.Timing.TAAns)
	d.tRAS = d.cycles(cfg.Timing.TRASns)
	d.tRP = d.cycles(cfg.Timing.TRPns)
	if cfg.Timing.TREFIns > 0 {
		d.tREFI = d.cycles(cfg.Timing.TREFIns)
		d.tRFC = d.cycles(cfg.Timing.TRFCns)
		if d.tRFC >= d.tREFI {
			panic("dram: tRFC must be shorter than tREFI")
		}
	}
	if cfg.Timing.TFAWns > 0 {
		d.tFAW = d.cycles(cfg.Timing.TFAWns)
		d.rankActs = make([][4]sim.Tick, cfg.Channels*cfg.RanksPerChan)
	}
	return d
}

// rankOf maps a (micro)bank index to its rank.
func (d *Device) rankOf(bankIdx int) int {
	return bankIdx % (d.cfg.Channels * d.cfg.RanksPerChan)
}

// fawDelay enforces the four-activate window: an activation at `at` on the
// given bank's rank may not be the fifth within tFAW. It returns the
// permitted activation time and records it.
func (d *Device) fawDelay(at sim.Tick, bankIdx int) sim.Tick {
	if d.tFAW == 0 {
		return at
	}
	acts := &d.rankActs[d.rankOf(bankIdx)]
	// Oldest of the last four activations. Entries are stored offset by
	// one so that zero means "never used".
	oi := 0
	for i := 1; i < 4; i++ {
		if acts[i] < acts[oi] {
			oi = i
		}
	}
	if acts[oi] > 0 {
		if earliest := acts[oi] - 1 + d.tFAW; at < earliest {
			d.FAWStalls++
			at = earliest
		}
	}
	acts[oi] = at + 1
	return at
}

// refreshDelay pushes a service start out of any refresh blackout: during
// the first tRFC of each tREFI window the device is refreshing (all banks
// in lockstep — a conservative all-rank refresh). The open row is lost.
func (d *Device) refreshDelay(start sim.Tick, b *bank) sim.Tick {
	if d.tREFI == 0 {
		return start
	}
	phase := start % d.tREFI
	if phase < d.tRFC {
		d.Refreshes++
		b.openRow = -1 // refresh closes the row
		return start + (d.tRFC - phase)
	}
	return start
}

func (d *Device) cycles(ns float64) sim.Tick {
	c := ns * d.cyclesPerNS
	t := sim.Tick(c)
	if float64(t) < c {
		t++
	}
	return t
}

// Config returns the device configuration.
func (d *Device) Config() config.DRAMConfig { return d.cfg }

// bankOf maps an address to its bank (or microbank) index and row number.
// Consecutive rows interleave across banks so streaming accesses exploit
// bank-level parallelism, matching the bank-interleaved layouts in the
// paper.
func (d *Device) bankOf(addr uint64) (bankIdx int, row int64) {
	rowID := addr / uint64(d.cfg.RowBytes)
	n := uint64(len(d.banks))
	return int(rowID % n), int64(rowID / n)
}

// channelOf maps a bank index to the channel whose data bus it uses.
func (d *Device) channelOf(bankIdx int) int {
	return bankIdx % d.cfg.Channels
}

// RowBuffers returns the number of independent row buffers modeled.
func (d *Device) RowBuffers() int { return len(d.banks) }

// TransferCycles returns the data-bus occupancy of moving n bytes, in CPU
// cycles (at least one cycle for any non-zero transfer).
func (d *Device) TransferCycles(n int) sim.Tick {
	if n <= 0 {
		return 0
	}
	return d.cycles(d.cfg.TransferNS(n))
}

// Access services a request of `bytes` starting at address addr, arriving
// at cycle `at`. Transfers larger than one row are split across row-sized
// chunks (consecutive rows live in different banks, so large fills stream
// across banks and pipeline on the data bus).
func (d *Device) Access(at sim.Tick, addr uint64, bytes int, kind AccessKind) Result {
	if bytes <= 0 {
		panic(fmt.Sprintf("dram %s: non-positive access size %d", d.Name, bytes))
	}
	var out Result
	first := true
	remaining := bytes
	a := addr
	for remaining > 0 {
		rowOff := int(a % uint64(d.cfg.RowBytes))
		chunk := d.cfg.RowBytes - rowOff
		if chunk > remaining {
			chunk = remaining
		}
		r := d.accessRow(at, a, chunk, kind)
		if first {
			out = r
			first = false
		} else {
			if r.Done > out.Done {
				out.Done = r.Done
			}
			out.RowHit = out.RowHit && r.RowHit
			out.Activate = out.Activate || r.Activate
		}
		a += uint64(chunk)
		remaining -= chunk
	}
	// Re-derive the split so QueueWait + Service == Done - at stays exact
	// when later chunks extended Done past the first chunk's completion.
	out.Service = out.Done - at - out.QueueWait
	return out
}

// accessRow services a request confined to a single row.
func (d *Device) accessRow(at sim.Tick, addr uint64, bytes int, kind AccessKind) Result {
	d.Accesses++
	if at > d.lastAccess {
		d.lastAccess = at
	}
	bi, row := d.bankOf(addr)
	b := &d.banks[bi]

	start := sim.MaxTick(at, b.res.FreeAt())
	start = d.refreshDelay(start, b)
	var dataReady sim.Tick
	res := Result{}

	switch {
	case b.openRow == row:
		// Row-buffer hit: column access only.
		d.RowHits++
		b.hits++
		res.RowHit = true
		dataReady = start + d.tAA
	case b.openRow < 0:
		// Closed bank: activate then access.
		d.RowMisses++
		d.Activates++
		res.Activate = true
		b.actAt = d.fawDelay(start, bi)
		dataReady = b.actAt + d.tRCD + d.tAA
	default:
		// Row conflict: precharge (respecting tRAS), activate, access.
		d.RowConfls++
		b.confls++
		d.Activates++
		res.Activate = true
		preAt := sim.MaxTick(start, b.actAt+d.tRAS)
		actAt := d.fawDelay(preAt+d.tRP, bi)
		b.actAt = actAt
		dataReady = actAt + d.tRCD + d.tAA
	}
	b.openRow = row

	xfer := d.TransferCycles(bytes)
	bus := &d.buses[d.channelOf(bi)]
	busStart := bus.Acquire(dataReady, xfer)
	done := busStart + xfer

	res.Start = start
	res.Done = done
	// Queue wait is everything spent waiting on shared state (bank free,
	// bus contention); service is the rest, so the two sum to done - at
	// exactly.
	res.QueueWait = (start - at) + (busStart - dataReady)
	res.Service = (dataReady - start) + xfer
	b.res.Occupy(start, done)

	bits := uint64(bytes) * 8
	if kind == Read {
		d.BitsRead += bits
	} else {
		d.BitsWrit += bits
	}
	d.BitsIO += bits
	return res
}

// EnergyPJ returns the total device energy consumed so far, in picojoules:
// activation (ACT+PRE per row), read/write array energy, and I/O energy.
func (d *Device) EnergyPJ() float64 {
	e := float64(d.Activates) * d.cfg.Energy.ActPrePerRowNJ * 1e3
	e += float64(d.BitsRead+d.BitsWrit) * d.cfg.Energy.RDWRPerBitPJ
	e += float64(d.BitsIO) * d.cfg.Energy.IOPerBitPJ
	return e
}

// RowHitRate returns the fraction of row-level accesses that hit an open
// row buffer.
func (d *Device) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}

// BytesTransferred returns total bytes moved over the device's buses.
func (d *Device) BytesTransferred() uint64 { return d.BitsIO / 8 }

// BusUtilization returns average data-bus utilization across channels over
// the given elapsed window.
func (d *Device) BusUtilization(elapsed sim.Tick) float64 {
	if len(d.buses) == 0 || elapsed == 0 {
		return 0
	}
	var sum float64
	for i := range d.buses {
		sum += d.buses[i].Utilization(elapsed)
	}
	return sum / float64(len(d.buses))
}

// ResetStats clears counters but keeps bank/row state, so a warm-up phase
// can be excluded from measurement.
func (d *Device) ResetStats() {
	d.Accesses, d.RowHits, d.RowMisses, d.RowConfls = 0, 0, 0, 0
	d.Activates, d.BitsRead, d.BitsWrit, d.BitsIO = 0, 0, 0, 0
	for i := range d.buses {
		d.buses[i].Busy = 0
	}
	for i := range d.banks {
		d.banks[i].res.Busy = 0
		d.banks[i].hits = 0
		d.banks[i].confls = 0
	}
}

// BankState is one bank's serializable state.
type BankState struct {
	OpenRow int64
	ActAt   sim.Tick
	FreeAt  sim.Tick
	Busy    sim.Tick
	Hits    uint64
	Confls  uint64
}

// BusState is one data bus's serializable state.
type BusState struct {
	FreeAt sim.Tick
	Busy   sim.Tick
}

// DeviceState is a device's serializable state: bank/row/bus timing state
// plus every counter. Configuration and derived timings are construction
// inputs and are not part of the state.
type DeviceState struct {
	Banks    []BankState
	Buses    []BusState
	RankActs [][4]sim.Tick

	Refreshes, FAWStalls uint64
	Accesses, RowHits    uint64
	RowMisses, RowConfls uint64
	Activates            uint64
	BitsRead, BitsWrit   uint64
	BitsIO               uint64
	LastAccess           sim.Tick
}

// State snapshots the device.
func (d *Device) State() DeviceState {
	st := DeviceState{
		Banks:      make([]BankState, len(d.banks)),
		Buses:      make([]BusState, len(d.buses)),
		RankActs:   append([][4]sim.Tick(nil), d.rankActs...),
		Refreshes:  d.Refreshes,
		FAWStalls:  d.FAWStalls,
		Accesses:   d.Accesses,
		RowHits:    d.RowHits,
		RowMisses:  d.RowMisses,
		RowConfls:  d.RowConfls,
		Activates:  d.Activates,
		BitsRead:   d.BitsRead,
		BitsWrit:   d.BitsWrit,
		BitsIO:     d.BitsIO,
		LastAccess: d.lastAccess,
	}
	for i := range d.banks {
		b := &d.banks[i]
		freeAt, busy := b.res.State()
		st.Banks[i] = BankState{
			OpenRow: b.openRow, ActAt: b.actAt,
			FreeAt: freeAt, Busy: busy,
			Hits: b.hits, Confls: b.confls,
		}
	}
	for i := range d.buses {
		freeAt, busy := d.buses[i].State()
		st.Buses[i] = BusState{FreeAt: freeAt, Busy: busy}
	}
	return st
}

// SetState restores a snapshot taken from an identically-configured device.
func (d *Device) SetState(st DeviceState) {
	if len(st.Banks) != len(d.banks) || len(st.Buses) != len(d.buses) {
		panic(fmt.Sprintf("dram %s: state geometry mismatch", d.Name))
	}
	for i := range d.banks {
		b := &d.banks[i]
		bs := st.Banks[i]
		b.openRow, b.actAt = bs.OpenRow, bs.ActAt
		b.res.SetState(bs.FreeAt, bs.Busy)
		b.hits, b.confls = bs.Hits, bs.Confls
	}
	for i := range d.buses {
		d.buses[i].SetState(st.Buses[i].FreeAt, st.Buses[i].Busy)
	}
	copy(d.rankActs, st.RankActs)
	d.Refreshes, d.FAWStalls = st.Refreshes, st.FAWStalls
	d.Accesses, d.RowHits = st.Accesses, st.RowHits
	d.RowMisses, d.RowConfls = st.RowMisses, st.RowConfls
	d.Activates = st.Activates
	d.BitsRead, d.BitsWrit, d.BitsIO = st.BitsRead, st.BitsWrit, st.BitsIO
	d.lastAccess = st.LastAccess
}

// BankStat is one bank's measured-window activity: row outcomes and
// occupancy, the per-bank telemetry behind the dram.bank.* metrics.
type BankStat struct {
	Hits      uint64 // row-buffer hits
	Confls    uint64 // row conflicts
	BusyTicks uint64 // cycles the bank was servicing requests
}

// BankStats snapshots every bank's window counters. Cold path: allocates
// the slice.
func (d *Device) BankStats() []BankStat {
	out := make([]BankStat, len(d.banks))
	for i := range d.banks {
		out[i] = BankStat{
			Hits:      d.banks[i].hits,
			Confls:    d.banks[i].confls,
			BusyTicks: uint64(d.banks[i].res.Busy),
		}
	}
	return out
}

// BusBusyTicks returns the data-bus busy cycles summed over channels
// since the last ResetStats. Allocation-free: safe for epoch snapshots.
func (d *Device) BusBusyTicks() uint64 {
	var sum uint64
	for i := range d.buses {
		sum += uint64(d.buses[i].Busy)
	}
	return sum
}

// Channels returns the number of data-bus channels.
func (d *Device) Channels() int { return d.cfg.Channels }

// ChannelBusBusy snapshots each channel's data-bus busy cycles. Cold
// path: allocates the slice.
func (d *Device) ChannelBusBusy() []uint64 {
	out := make([]uint64, len(d.buses))
	for i := range d.buses {
		out[i] = uint64(d.buses[i].Busy)
	}
	return out
}

// AccountTraffic adds energy and byte accounting for traffic whose timing
// is modeled as a fixed latency by the caller (short metadata writes that
// a real controller would prioritize over streaming transfers, e.g. GIPT
// updates). One row activation is charged per call.
func (d *Device) AccountTraffic(bytes int, kind AccessKind) {
	if bytes <= 0 {
		return
	}
	d.Activates++
	bits := uint64(bytes) * 8
	if kind == Read {
		d.BitsRead += bits
	} else {
		d.BitsWrit += bits
	}
	d.BitsIO += bits
}

// ColdWriteLatency returns the closed-bank latency of a write of n bytes.
func (d *Device) ColdWriteLatency(n int) sim.Tick {
	return d.tRCD + d.tAA + d.TransferCycles(n)
}

// MinReadLatency returns the best-case (open-row, idle-bus) latency of a
// read of n bytes, used by analytic models.
func (d *Device) MinReadLatency(n int) sim.Tick {
	return d.tAA + d.TransferCycles(n)
}

// ColdReadLatency returns the closed-bank latency of a read of n bytes.
func (d *Device) ColdReadLatency(n int) sim.Tick {
	return d.tRCD + d.tAA + d.TransferCycles(n)
}
