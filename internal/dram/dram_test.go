package dram

import (
	"testing"
	"testing/quick"

	"taglessdram/internal/config"
	"taglessdram/internal/sim"
)

func inPkg(t *testing.T) *Device {
	t.Helper()
	return New("in-pkg", config.Default().InPkg, 3.0)
}

func offPkg(t *testing.T) *Device {
	t.Helper()
	return New("off-pkg", config.Default().OffPkg, 3.0)
}

func TestTimingConversion(t *testing.T) {
	d := inPkg(t)
	// Table 4 in-package: tRCD 8ns, tAA 10ns, tRAS 22ns, tRP 14ns @3GHz.
	if d.tRCD != 24 || d.tAA != 30 || d.tRAS != 66 || d.tRP != 42 {
		t.Fatalf("timings = %d/%d/%d/%d, want 24/30/66/42",
			d.tRCD, d.tAA, d.tRAS, d.tRP)
	}
}

func TestClosedBankRead(t *testing.T) {
	d := inPkg(t)
	r := d.Access(0, 0, 64, Read)
	// Closed bank: tRCD + tAA + transfer(64B @ 51.2GB/s = 1.25ns -> 4cyc).
	want := sim.Tick(24 + 30 + 4)
	if r.Done != want {
		t.Fatalf("done = %d, want %d", r.Done, want)
	}
	if r.RowHit || !r.Activate {
		t.Fatalf("result = %+v, want activation, no row hit", r)
	}
}

func TestRowBufferHit(t *testing.T) {
	d := inPkg(t)
	first := d.Access(0, 0, 64, Read)
	// Second access to the same row after the bank is free: row hit.
	r := d.Access(first.Done, 64, 64, Read)
	if !r.RowHit {
		t.Fatal("expected row-buffer hit")
	}
	wantLatency := d.tAA + d.TransferCycles(64)
	if got := r.Done - first.Done; got != wantLatency {
		t.Fatalf("hit latency = %d, want %d", got, wantLatency)
	}
}

func TestRowConflictPaysPrecharge(t *testing.T) {
	d := inPkg(t)
	nbanks := uint64(d.RowBuffers())
	rowBytes := uint64(d.Config().RowBytes)
	first := d.Access(0, 0, 64, Read)
	// Same bank, different row: row 0 and row nbanks map to bank 0.
	conflictAddr := rowBytes * nbanks
	r := d.Access(first.Done+1000, conflictAddr, 64, Read)
	if r.RowHit || !r.Activate {
		t.Fatalf("result = %+v, want conflict activation", r)
	}
	// Latency must include tRP in addition to tRCD+tAA+xfer.
	lat := r.Done - (first.Done + 1000)
	wantMin := d.tRP + d.tRCD + d.tAA + d.TransferCycles(64)
	if lat < wantMin {
		t.Fatalf("conflict latency = %d, want >= %d", lat, wantMin)
	}
	if d.RowConfls != 1 {
		t.Fatalf("row conflicts = %d, want 1", d.RowConfls)
	}
}

func TestTRASRespected(t *testing.T) {
	d := inPkg(t)
	nbanks := uint64(d.RowBuffers())
	rowBytes := uint64(d.Config().RowBytes)
	// Activate row 0 of bank 0 at t=0, then immediately conflict: the
	// precharge may not begin before actAt + tRAS = 66.
	d.Access(0, 0, 64, Read)
	r := d.Access(0, rowBytes*nbanks, 64, Read)
	earliest := d.tRAS + d.tRP + d.tRCD + d.tAA + d.TransferCycles(64)
	if r.Done < earliest {
		t.Fatalf("done = %d, want >= %d (tRAS must delay precharge)", r.Done, earliest)
	}
}

func TestBankParallelism(t *testing.T) {
	d := inPkg(t)
	rowBytes := uint64(d.Config().RowBytes)
	// Two requests to different banks at t=0 overlap except on the bus.
	r0 := d.Access(0, 0, 64, Read)
	r1 := d.Access(0, rowBytes, 64, Read) // next row -> next bank
	if r1.Done >= r0.Done+d.tRCD {
		t.Fatalf("bank-parallel accesses serialized: %d then %d", r0.Done, r1.Done)
	}
}

func TestSameBankSerializes(t *testing.T) {
	d := inPkg(t)
	r0 := d.Access(0, 0, 64, Read)
	r1 := d.Access(0, 64, 64, Read) // same row, same bank
	if r1.Done <= r0.Done {
		t.Fatalf("same-bank requests did not serialize: %d then %d", r0.Done, r1.Done)
	}
}

func TestBusContention(t *testing.T) {
	d := inPkg(t)
	rowBytes := uint64(d.Config().RowBytes)
	// Saturate the single channel with big transfers from distinct banks.
	r0 := d.Access(0, 0, 4096, Read)
	r1 := d.Access(0, rowBytes, 4096, Read)
	xfer := d.TransferCycles(4096)
	if r1.Done < r0.Done+xfer {
		t.Fatalf("bus transfers overlapped: r0 done %d, r1 done %d, xfer %d",
			r0.Done, r1.Done, xfer)
	}
}

func TestPageFillSpansOneRow(t *testing.T) {
	d := inPkg(t)
	// A 4KB aligned fill is exactly one row: one activation.
	d.Access(0, 0, 4096, Read)
	if d.Activates != 1 {
		t.Fatalf("activations = %d, want 1", d.Activates)
	}
	// An unaligned 4KB fill spans two rows: two activations.
	d2 := inPkg(t)
	d2.Access(0, 2048, 4096, Read)
	if d2.Activates != 2 {
		t.Fatalf("unaligned activations = %d, want 2", d2.Activates)
	}
}

func TestOffPackageSlower(t *testing.T) {
	in, off := inPkg(t), offPkg(t)
	rin := in.Access(0, 0, 64, Read)
	roff := off.Access(0, 0, 64, Read)
	if roff.Done <= rin.Done {
		t.Fatalf("off-package (%d) should be slower than in-package (%d)",
			roff.Done, rin.Done)
	}
}

func TestEnergyAccounting(t *testing.T) {
	d := inPkg(t)
	d.Access(0, 0, 64, Read)
	// One activation (15nJ = 15000pJ) + 512 bits * (4 + 2.4) pJ/bit.
	want := 15000.0 + 512*(4+2.4)
	if got := d.EnergyPJ(); got != want {
		t.Fatalf("energy = %v pJ, want %v", got, want)
	}
	d.Access(d.banks[0].res.FreeAt(), 64, 64, Write)
	// Row hit: no extra activation; writes add the same per-bit energy.
	want += 512 * (4 + 2.4)
	if got := d.EnergyPJ(); got != want {
		t.Fatalf("energy after write = %v pJ, want %v", got, want)
	}
	if d.BitsWrit != 512 || d.BitsRead != 512 {
		t.Fatalf("bits = %d read / %d written", d.BitsRead, d.BitsWrit)
	}
}

func TestOffPackageEnergyHigher(t *testing.T) {
	in, off := inPkg(t), offPkg(t)
	in.Access(0, 0, 4096, Read)
	off.Access(0, 0, 4096, Read)
	if off.EnergyPJ() <= in.EnergyPJ() {
		t.Fatalf("off-package energy (%v) should exceed in-package (%v)",
			off.EnergyPJ(), in.EnergyPJ())
	}
}

func TestRowHitRateAndReset(t *testing.T) {
	d := inPkg(t)
	d.Access(0, 0, 64, Read)
	d.Access(1000, 64, 64, Read)
	d.Access(2000, 128, 64, Read)
	if got := d.RowHitRate(); got < 0.6 || got > 0.7 {
		t.Fatalf("row hit rate = %v, want 2/3", got)
	}
	d.ResetStats()
	if d.Accesses != 0 || d.EnergyPJ() != 0 {
		t.Fatal("reset did not clear stats")
	}
	if d.RowHitRate() != 0 {
		t.Fatal("hit rate after reset should be 0")
	}
	// Row state survives reset: next access to the same row still hits.
	d.Access(3000, 192, 64, Read)
	if d.RowHits != 1 {
		t.Fatalf("row state lost across reset: hits = %d", d.RowHits)
	}
}

func TestBusUtilization(t *testing.T) {
	d := inPkg(t)
	r := d.Access(0, 0, 4096, Read)
	u := d.BusUtilization(r.Done)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v, want in (0,1]", u)
	}
	if d.BusUtilization(0) != 0 {
		t.Fatal("zero-window utilization should be 0")
	}
}

func TestMinAndColdLatency(t *testing.T) {
	d := inPkg(t)
	if d.MinReadLatency(64) != d.tAA+d.TransferCycles(64) {
		t.Fatal("min read latency wrong")
	}
	if d.ColdReadLatency(64) != d.tRCD+d.tAA+d.TransferCycles(64) {
		t.Fatal("cold read latency wrong")
	}
	if d.ColdReadLatency(64) <= d.MinReadLatency(64) {
		t.Fatal("cold must exceed min")
	}
}

func TestAccessPanicsOnZeroBytes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-byte access")
		}
	}()
	inPkg(t).Access(0, 0, 0, Read)
}

func TestNewPanicsOnBadClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive cpu clock")
		}
	}()
	New("x", config.Default().InPkg, 0)
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("kind strings wrong")
	}
}

func TestResultLatency(t *testing.T) {
	r := Result{Done: 100}
	if r.Latency(40) != 60 {
		t.Fatal("latency wrong")
	}
	if r.Latency(200) != 0 {
		t.Fatal("latency should clamp at zero")
	}
}

// Property: completion time never precedes arrival, and monotonically
// increasing arrivals to the same address produce monotonically increasing
// completions.
func TestAccessMonotonicProperty(t *testing.T) {
	f := func(deltas []uint16, addrs []uint32) bool {
		d := New("p", config.Default().InPkg, 3.0)
		n := len(deltas)
		if len(addrs) < n {
			n = len(addrs)
		}
		at := sim.Tick(0)
		for i := 0; i < n; i++ {
			at += sim.Tick(deltas[i])
			addr := uint64(addrs[i])
			r := d.Access(at, addr, 64, Read)
			if r.Done < at || r.Start < at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: energy is non-decreasing in the number of accesses, and every
// access is classified exactly once (hits+misses+conflicts == accesses).
func TestAccessClassificationProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		d := New("p", config.Default().OffPkg, 3.0)
		var prev float64
		at := sim.Tick(0)
		for _, a := range addrs {
			d.Access(at, uint64(a), 64, Read)
			at += 10
			e := d.EnergyPJ()
			if e < prev {
				return false
			}
			prev = e
		}
		return d.RowHits+d.RowMisses+d.RowConfls == d.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the accounting split is conserved for every access —
// QueueWait + Service == Done - at exactly, with non-negative parts —
// including multi-row transfers and contended banks/buses.
func TestQueueServiceSplitProperty(t *testing.T) {
	f := func(deltas []uint16, addrs []uint32, sizes []uint8) bool {
		d := New("p", config.Default().InPkg, 3.0)
		n := len(deltas)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(sizes) < n {
			n = len(sizes)
		}
		at := sim.Tick(0)
		for i := 0; i < n; i++ {
			at += sim.Tick(deltas[i])
			bytes := 64 * (1 + int(sizes[i]%80)) // up to 5120B: spans rows
			r := d.Access(at, uint64(addrs[i]), bytes, Read)
			if r.QueueWait+r.Service != r.Done-at {
				return false
			}
			if r.QueueWait > r.Done || r.Service > r.Done {
				return false // underflow guard (Tick is unsigned)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueWaitOnBusyBank(t *testing.T) {
	d := inPkg(t)
	first := d.Access(0, 0, 64, Read)
	if first.QueueWait != 0 {
		t.Fatalf("idle access queued %d cycles", first.QueueWait)
	}
	// Same bank, arriving at cycle 1: must wait for the bank to free.
	second := d.Access(1, 64, 64, Read)
	if second.QueueWait == 0 {
		t.Fatalf("contended access reports zero queue wait: %+v", second)
	}
	if second.QueueWait+second.Service != second.Done-1 {
		t.Fatalf("split not conserved: %+v", second)
	}
}

func TestPerBankTelemetryAndBusTicks(t *testing.T) {
	d := inPkg(t)
	d.Access(0, 0, 64, Read)    // closed-bank activate on bank 0
	d.Access(1000, 0, 64, Read) // row hit on bank 0
	rowBytes := uint64(d.cfg.RowBytes)
	nb := uint64(len(d.banks))
	d.Access(2000, rowBytes*nb, 64, Read) // same bank, different row: conflict

	stats := d.BankStats()
	if len(stats) != d.RowBuffers() {
		t.Fatalf("BankStats len = %d, want %d", len(stats), d.RowBuffers())
	}
	var hits, confls, busy uint64
	for _, b := range stats {
		hits += b.Hits
		confls += b.Confls
		busy += b.BusyTicks
	}
	if hits != d.RowHits || confls != d.RowConfls {
		t.Fatalf("per-bank sums (%d hits, %d confls) != device (%d, %d)",
			hits, confls, d.RowHits, d.RowConfls)
	}
	if stats[0].Hits != 1 || stats[0].Confls != 1 {
		t.Fatalf("bank 0 stats = %+v", stats[0])
	}
	if busy == 0 {
		t.Fatal("no bank occupancy recorded")
	}
	if d.BusBusyTicks() == 0 {
		t.Fatal("no bus busy ticks recorded")
	}
	per := d.ChannelBusBusy()
	if len(per) != d.Channels() {
		t.Fatalf("ChannelBusBusy len = %d, want %d", len(per), d.Channels())
	}
	var sum uint64
	for _, b := range per {
		sum += b
	}
	if sum != d.BusBusyTicks() {
		t.Fatalf("channel sum %d != BusBusyTicks %d", sum, d.BusBusyTicks())
	}

	d.ResetStats()
	for _, b := range d.BankStats() {
		if b.Hits != 0 || b.Confls != 0 || b.BusyTicks != 0 {
			t.Fatalf("ResetStats kept bank telemetry: %+v", b)
		}
	}
	if d.BusBusyTicks() != 0 {
		t.Fatal("ResetStats kept bus busy ticks")
	}
}
