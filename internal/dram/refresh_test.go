package dram

import (
	"testing"
	"testing/quick"

	"taglessdram/internal/config"
	"taglessdram/internal/sim"
)

// refreshDevice returns an off-package-like device with refresh enabled:
// tREFI 1000ns, tRFC 100ns (shortened for test visibility).
func refreshDevice(t *testing.T) *Device {
	t.Helper()
	cfg := config.Default().OffPkg
	cfg.Timing.TREFIns = 1000
	cfg.Timing.TRFCns = 100
	return New("refresh", cfg, 3.0)
}

func TestRefreshBlackoutDelaysAccess(t *testing.T) {
	d := refreshDevice(t)
	// tREFI = 3000 cycles, tRFC = 300 cycles. An access arriving inside
	// the blackout (cycle 100) cannot start before cycle 300.
	r := d.Access(100, 0, 64, Read)
	if r.Start < 300 {
		t.Fatalf("access started at %d inside the refresh blackout", r.Start)
	}
	if d.Refreshes != 1 {
		t.Fatalf("refresh delays = %d, want 1", d.Refreshes)
	}
}

func TestRefreshOutsideBlackoutNoDelay(t *testing.T) {
	d := refreshDevice(t)
	r := d.Access(400, 0, 64, Read)
	if r.Start != 400 {
		t.Fatalf("access outside blackout started at %d, want 400", r.Start)
	}
	if d.Refreshes != 0 {
		t.Fatalf("refresh delays = %d, want 0", d.Refreshes)
	}
}

func TestRefreshClosesRow(t *testing.T) {
	d := refreshDevice(t)
	d.Access(400, 0, 64, Read) // opens row 0
	// Next access to the same row arrives inside the next blackout
	// (cycle 3000..3300): the refresh closed the row, so no row hit.
	r := d.Access(3100, 64, 64, Read)
	if r.RowHit {
		t.Fatal("row survived a refresh")
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	d := New("plain", config.Default().OffPkg, 3.0)
	if d.tREFI != 0 {
		t.Fatal("refresh enabled without configuration")
	}
	d.Access(50, 0, 64, Read)
	if d.Refreshes != 0 {
		t.Fatal("refresh fired while disabled")
	}
}

func TestRefreshPanicsOnBadPair(t *testing.T) {
	cfg := config.Default().OffPkg
	cfg.Timing.TREFIns = 100
	cfg.Timing.TRFCns = 200
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tRFC >= tREFI")
		}
	}()
	New("bad", cfg, 3.0)
}

// Property: with refresh enabled, no access ever *starts* inside a
// blackout window, and completions remain monotone per bank.
func TestRefreshExclusionProperty(t *testing.T) {
	f := func(arrivals []uint32) bool {
		cfg := config.Default().OffPkg
		cfg.Timing.TREFIns = 500
		cfg.Timing.TRFCns = 50
		d := New("p", cfg, 3.0)
		tREFI, tRFC := d.tREFI, d.tRFC
		at := sim.Tick(0)
		for _, a := range arrivals {
			at += sim.Tick(a % 5000)
			r := d.Access(at, uint64(a)*64, 64, Read)
			if r.Start%tREFI < tRFC {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRefreshOverheadBounded: the long-run throughput loss from refresh
// approximates tRFC/tREFI.
func TestRefreshOverheadBounded(t *testing.T) {
	cfg := config.Default().OffPkg
	cfg.Timing.TREFIns = 1000
	cfg.Timing.TRFCns = 100
	d := New("r", cfg, 3.0)
	base := New("b", config.Default().OffPkg, 3.0)
	var at sim.Tick
	var lastR, lastB sim.Tick
	for i := 0; i < 2000; i++ {
		at += 100
		lastR = d.Access(at, uint64(i)*4096, 64, Read).Done
		lastB = base.Access(at, uint64(i)*4096, 64, Read).Done
	}
	if lastR < lastB {
		t.Fatal("refresh made the device faster")
	}
	// The slowdown is bounded by roughly the refresh duty cycle.
	if float64(lastR) > float64(lastB)*1.25 {
		t.Fatalf("refresh overhead implausible: %d vs %d", lastR, lastB)
	}
}

func TestFAWLimitsActivationBursts(t *testing.T) {
	cfg := config.Default().OffPkg
	cfg.Timing.TFAWns = 40 // 120 cycles at 3GHz
	d := New("faw", cfg, 3.0)
	// Five activations to distinct banks of the same rank at t=0: the
	// fifth must wait for the four-activate window.
	// Banks i*Channels share... banks interleave by row; use rows with the
	// same rank: rank = bank % (channels*ranks) = bank % 2.
	rowBytes := uint64(cfg.RowBytes)
	var acts int
	var lastDone sim.Tick
	for i := 0; i < 10; i++ {
		// Even bank indices are rank 0.
		addr := rowBytes * uint64(2*i)
		r := d.Access(0, addr, 64, Read)
		if r.Activate {
			acts++
			if r.Done > lastDone {
				lastDone = r.Done
			}
		}
	}
	if acts != 10 {
		t.Fatalf("activations = %d", acts)
	}
	if d.FAWStalls < 6 {
		t.Fatalf("tFAW throttled only %d of a 10-activation burst", d.FAWStalls)
	}
	// The tenth activation waits two full windows ((10-1)/4 = 2), so the
	// slowest completion includes 240 cycles of window delay.
	if lastDone < 240 {
		t.Fatalf("slowest completion at %d, want >= 240", lastDone)
	}
}

func TestFAWDisabledByDefault(t *testing.T) {
	d := New("plain", config.Default().OffPkg, 3.0)
	rowBytes := uint64(d.Config().RowBytes)
	for i := 0; i < 10; i++ {
		d.Access(0, rowBytes*uint64(2*i), 64, Read)
	}
	if d.FAWStalls != 0 {
		t.Fatal("tFAW active without configuration")
	}
}

// Property: with tFAW on, within any window of tFAW cycles at most four
// activations start per rank.
func TestFAWWindowProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		cfg := config.Default().OffPkg
		cfg.Timing.TFAWns = 50
		d := New("p", cfg, 3.0)
		tFAW := d.tFAW
		var starts []sim.Tick
		at := sim.Tick(0)
		for _, a := range addrs {
			r := d.Access(at, uint64(a)*uint64(cfg.RowBytes), 64, Read)
			if r.Activate && d.rankOf(int(uint64(a)%uint64(d.RowBuffers()))) == 0 {
				starts = append(starts, d.banks[int(uint64(a)%uint64(d.RowBuffers()))].actAt)
			}
			at += 5
		}
		// Sliding window check.
		for i := range starts {
			n := 0
			for j := range starts {
				if starts[j] >= starts[i] && starts[j] < starts[i]+tFAW {
					n++
				}
			}
			if n > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
