package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderPreserved forces out-of-order completion (early jobs sleep the
// longest) and checks results still land at their submission index.
func TestOrderPreserved(t *testing.T) {
	const n = 24
	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}
	got, err := Run(context.Background(), jobs, func(_ context.Context, j int) (int, error) {
		time.Sleep(time.Duration(n-j) * time.Millisecond)
		return j * j, nil
	}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, r, i*i)
		}
	}
}

// TestSerialMatchesParallel runs the same pure jobs at several widths and
// expects identical result slices.
func TestSerialMatchesParallel(t *testing.T) {
	jobs := make([]int, 50)
	for i := range jobs {
		jobs[i] = i
	}
	fn := func(_ context.Context, j int) (int, error) { return 3*j + 1, nil }
	serial, err := Run(context.Background(), jobs, fn, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		par, err := Run(context.Background(), jobs, fn, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", w, i, par[i], serial[i])
			}
		}
	}
}

// TestFirstErrorWinsSerial checks that on the serial path an error stops
// the sweep: later jobs never run.
func TestFirstErrorWinsSerial(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	jobs := []int{0, 1, 2, 3, 4}
	_, err := Run(context.Background(), jobs, func(_ context.Context, j int) (int, error) {
		ran.Add(1)
		if j == 2 {
			return 0, boom
		}
		return j, nil
	}, Options{Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d jobs after serial error, want 3", got)
	}
}

// TestErrorCancelsQueuedParallel wedges the pool with blocking jobs, fails
// one, and checks the queued remainder is skipped while in-flight jobs
// complete.
func TestErrorCancelsQueuedParallel(t *testing.T) {
	boom := errors.New("boom")
	const workers = 2
	const n = 16
	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}
	release := make(chan struct{})
	var ran atomic.Int32
	results, err := Run(context.Background(), jobs, func(ctx context.Context, j int) (int, error) {
		ran.Add(1)
		if j == 0 {
			// Fail once the other worker has reached job 1.
			<-release
			return 0, boom
		}
		if j == 1 {
			release <- struct{}{}
			return 100, nil
		}
		// Any job that squeezed in before the cancel landed must observe
		// the cancellation promptly.
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Second):
			t.Errorf("job %d never saw the sweep cancellation", j)
		}
		return j, nil
	}, Options{Workers: workers})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Jobs 0 and 1 ran; everything still queued at cancellation was
	// skipped. A worker may have already pulled one more index before the
	// cancel landed, so allow a small overshoot but not a full sweep.
	if got := ran.Load(); got < 2 || got > 2+workers {
		t.Fatalf("ran %d jobs, want 2..%d", got, 2+workers)
	}
	// In-flight successes are kept even when the sweep errors.
	if results[1] != 100 {
		t.Fatalf("results[1] = %d, want 100 (in-flight job must finish)", results[1])
	}
}

// TestLowestIndexErrorWins completes two failing jobs in reverse order and
// expects the lower-index error to be reported.
func TestLowestIndexErrorWins(t *testing.T) {
	errA := errors.New("job 0 failed")
	errB := errors.New("job 1 failed")
	first := make(chan struct{})
	_, err := Run(context.Background(), []int{0, 1}, func(_ context.Context, j int) (int, error) {
		if j == 1 {
			defer close(first)
			return 0, errB // fails first in time…
		}
		<-first
		return 0, errA // …but job 0's error must win.
	}, Options{Workers: 2})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errA)
	}
}

// TestPanicCaptured turns a panicking job into that job's error without
// killing the sweep or the process.
func TestPanicCaptured(t *testing.T) {
	jobs := []int{0, 1, 2, 3}
	_, err := Run(context.Background(), jobs, func(_ context.Context, j int) (int, error) {
		if j == 1 {
			panic("simulated simulator bug")
		}
		return j, nil
	}, Options{Workers: 2})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != 1 {
		t.Errorf("PanicError.Job = %d, want 1", pe.Job)
	}
	if pe.Value != "simulated simulator bug" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
	if want := "sweep: job 1 panicked: simulated simulator bug"; pe.Error() != want {
		t.Errorf("Error() = %q, want %q", pe.Error(), want)
	}
}

// TestParentCancellation skips every job when the context is already
// canceled.
func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	for _, w := range []int{1, 4} {
		_, err := Run(ctx, []int{0, 1, 2}, func(_ context.Context, j int) (int, error) {
			ran.Add(1)
			return j, nil
		}, Options{Workers: w})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran under a canceled context", ran.Load())
	}
}

// TestProgressCounts checks the callback fires once per completed job,
// serialized, with monotonically increasing Done and a constant Total.
func TestProgressCounts(t *testing.T) {
	const n = 20
	jobs := make([]int, n)
	var mu sync.Mutex
	var dones []int
	_, err := Run(context.Background(), jobs, func(_ context.Context, j int) (int, error) {
		return j, nil
	}, Options{Workers: 4, OnProgress: func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Total != n {
			t.Errorf("Total = %d, want %d", p.Total, n)
		}
		dones = append(dones, p.Done)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != n {
		t.Fatalf("progress fired %d times, want %d", len(dones), n)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("dones[%d] = %d, want %d (must be serialized and monotonic)", i, d, i+1)
		}
	}
}

// TestProgressETA checks the ETA extrapolation is sane mid-sweep and zero
// at the end.
func TestProgressETA(t *testing.T) {
	var last Progress
	_, err := Run(context.Background(), []int{0, 1, 2, 3}, func(_ context.Context, j int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return j, nil
	}, Options{Workers: 1, OnProgress: func(p Progress) {
		if p.Done < p.Total && p.ETA <= 0 {
			t.Errorf("ETA = %v at %d/%d, want > 0", p.ETA, p.Done, p.Total)
		}
		last = p
	}})
	if err != nil {
		t.Fatal(err)
	}
	if last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}
	if last.Elapsed <= 0 {
		t.Errorf("final Elapsed = %v, want > 0", last.Elapsed)
	}
}

// TestETABoundaries pins the extrapolation guards: no division by zero on
// an empty denominator, no extrapolation before the clock has advanced or
// after the sweep is done, and saturation instead of overflow on inputs
// that would wrap int64.
func TestETABoundaries(t *testing.T) {
	huge := time.Duration(1<<62 - 1)
	cases := []struct {
		name        string
		done, total int
		elapsed     time.Duration
		want        time.Duration
	}{
		{"zero done", 0, 10, time.Second, 0},
		{"negative done", -1, 10, time.Second, 0},
		{"zero elapsed first callback", 1, 10, 0, 0},
		{"negative elapsed", 1, 10, -time.Second, 0},
		{"all done", 10, 10, time.Second, 0},
		{"done beyond total", 11, 10, time.Second, 0},
		{"zero total", 0, 0, time.Second, 0},
		{"steady halfway", 5, 10, 10 * time.Second, 10 * time.Second},
		{"one of two", 1, 2, 3 * time.Second, 3 * time.Second},
		{"overflow saturates", 1, 1 << 30, huge, time.Duration(math.MaxInt64)},
	}
	for _, c := range cases {
		if got := ETA(c.done, c.total, c.elapsed); got != c.want {
			t.Errorf("%s: ETA(%d, %d, %v) = %v, want %v", c.name, c.done, c.total, c.elapsed, got, c.want)
		}
	}
	// Any extrapolation from sane inputs must be non-negative.
	for done := 0; done <= 4; done++ {
		for total := 0; total <= 4; total++ {
			for _, e := range []time.Duration{0, 1, time.Millisecond, huge} {
				if eta := ETA(done, total, e); eta < 0 {
					t.Fatalf("ETA(%d, %d, %v) = %v, negative", done, total, e, eta)
				}
			}
		}
	}
}

// TestConcurrencyBound verifies the pool never exceeds Workers in-flight
// jobs and actually reaches that width when jobs block.
func TestConcurrencyBound(t *testing.T) {
	const workers = 3
	const n = 12
	var cur, peak atomic.Int32
	jobs := make([]int, n)
	_, err := Run(context.Background(), jobs, func(_ context.Context, j int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return j, nil
	}, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrency %d; expected the pool to overlap jobs", p)
	}
}

// TestWorkerResolution covers the Workers defaulting rules.
func TestWorkerResolution(t *testing.T) {
	cases := []struct {
		opt  Options
		n    int
		want int
	}{
		{Options{Workers: 4}, 2, 2},  // clamped to job count
		{Options{Workers: 4}, 10, 4}, // explicit limit honored
		{Options{Workers: -3}, 5, 0}, // defaulted (exact value machine-dependent)
		{Options{}, 0, 0},
	}
	for _, c := range cases {
		got := c.opt.workers(c.n)
		if c.want != 0 && got != c.want {
			t.Errorf("workers(%d) with limit %d = %d, want %d", c.n, c.opt.Workers, got, c.want)
		}
		if got < 1 || (c.n > 0 && got > max(c.n, 1) && c.opt.Workers > 0) {
			t.Errorf("workers(%d) with limit %d = %d out of range", c.n, c.opt.Workers, got)
		}
	}
}

// TestEmptyJobs returns immediately with an empty result slice.
func TestEmptyJobs(t *testing.T) {
	got, err := Run(context.Background(), nil, func(_ context.Context, j int) (int, error) {
		return j, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len(results) = %d, want 0", len(got))
	}
}

// TestErrorIsPartialResults documents that a failed sweep still returns
// the slice with every completed job's result in place.
func TestErrorIsPartialResults(t *testing.T) {
	boom := errors.New("boom")
	jobs := []int{0, 1, 2}
	got, err := Run(context.Background(), jobs, func(_ context.Context, j int) (int, error) {
		if j == 2 {
			return 0, boom
		}
		return j + 10, nil
	}, Options{Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got[0] != 10 || got[1] != 11 {
		t.Fatalf("partial results = %v, want completed prefix kept", got)
	}
}

func ExampleRun() {
	squares, err := Run(context.Background(), []int{1, 2, 3, 4},
		func(_ context.Context, j int) (int, error) { return j * j, nil },
		Options{Workers: 2})
	fmt.Println(squares, err)
	// Output: [1 4 9 16] <nil>
}
