// Package sweep is a bounded-concurrency worker pool for design-space
// exploration: it fans a slice of independent, deterministic jobs out
// across a fixed number of goroutines and returns their results in
// submission order, regardless of completion order.
//
// The engine makes three guarantees the figure/table runners depend on:
//
//   - Ordering: Results[i] always corresponds to jobs[i], so a parallel
//     sweep is a drop-in replacement for a serial loop and regenerated
//     tables keep their row order bit-identical.
//   - First-error-wins cancellation: the first job to fail cancels the
//     sweep; queued jobs are skipped, in-flight jobs finish, and the
//     error reported is the failing job with the lowest index (so the
//     reported error is deterministic even when completion order is not).
//   - Panic isolation: a panicking job cannot kill the sweep. The panic
//     is captured with its stack and surfaced as that job's *PanicError.
//
// Jobs must not share mutable state; each job constructs its own
// simulation object graph. That invariant is what makes a parallel sweep
// produce bit-identical metrics to the serial path.
package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// PanicError is the error reported for a job that panicked.
type PanicError struct {
	// Job is the index of the panicking job in the submitted slice.
	Job int
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: job %d panicked: %v", e.Job, e.Value)
}

// Progress is a snapshot of a running sweep, passed to Options.OnProgress
// after every job completes.
type Progress struct {
	// Done counts completed jobs (successful or failed, not skipped).
	Done int
	// Total is the number of submitted jobs.
	Total int
	// Elapsed is the wall-clock time since the sweep started.
	Elapsed time.Duration
	// ETA extrapolates the remaining wall-clock time from the mean job
	// duration so far (zero once the sweep finishes).
	ETA time.Duration
	// Summary is an optional one-line, human-readable annotation. The
	// sweep engine leaves it empty; single-run throughput reporting
	// (taglessdram.Run) fills it with a refs/sec, events/sec line.
	Summary string
}

// Options configures a sweep.
type Options struct {
	// Workers bounds the number of concurrent jobs. Zero means
	// runtime.GOMAXPROCS(0); one runs the jobs serially on the calling
	// goroutine; the effective value never exceeds the job count.
	Workers int
	// OnProgress, when non-nil, is called after every job completes. The
	// calls are serialized (never concurrent with each other), but they
	// happen on worker goroutines, so the callback must not assume any
	// particular goroutine.
	OnProgress func(Progress)
}

// workers resolves the effective worker count for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn over every job with at most Options.Workers in flight
// and returns the results in submission order. On error it returns the
// partial results together with the lowest-index job error; jobs that
// were skipped by cancellation keep their zero-value result.
func Run[J, R any](ctx context.Context, jobs []J, fn func(context.Context, J) (R, error), opt Options) ([]R, error) {
	results := make([]R, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	s := &state[J, R]{
		jobs:    jobs,
		fn:      fn,
		results: results,
		errs:    make([]error, len(jobs)),
		opt:     opt,
		start:   time.Now(),
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.cancel = cancel

	if w := opt.workers(len(jobs)); w == 1 {
		s.serial(ctx)
	} else {
		s.parallel(ctx, w)
	}

	// Deterministic error selection: the lowest-index failing job wins,
	// whatever the completion order was.
	for _, err := range s.errs {
		if err != nil {
			return results, err
		}
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// state carries one sweep's shared bookkeeping.
type state[J, R any] struct {
	jobs    []J
	fn      func(context.Context, J) (R, error)
	results []R
	errs    []error
	opt     Options
	cancel  context.CancelFunc
	start   time.Time

	mu   sync.Mutex
	done int
}

// runOne executes job i with panic recovery and records its outcome.
func (s *state[J, R]) runOne(ctx context.Context, i int) {
	defer func() {
		if v := recover(); v != nil {
			s.errs[i] = &PanicError{Job: i, Value: v, Stack: debug.Stack()}
			s.cancel()
		}
		s.progress()
	}()
	r, err := s.fn(ctx, s.jobs[i])
	if err != nil {
		s.errs[i] = err
		s.cancel()
		return
	}
	s.results[i] = r
}

// progress bumps the completion count and notifies the callback.
func (s *state[J, R]) progress() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done++
	if s.opt.OnProgress == nil {
		return
	}
	p := Progress{Done: s.done, Total: len(s.jobs), Elapsed: time.Since(s.start)}
	p.ETA = ETA(p.Done, p.Total, p.Elapsed)
	s.opt.OnProgress(p)
}

// ETA extrapolates the remaining wall-clock time of a sweep from the mean
// job duration so far. The boundaries are guarded so a caller can feed it
// any snapshot: zero done (nothing to extrapolate from yet), zero or
// negative elapsed (the clock hasn't advanced — a first job served from
// cache can complete in under the timer resolution), and done >= total
// all report zero rather than dividing by zero or extrapolating garbage;
// an extrapolation beyond the representable range saturates instead of
// overflowing into a negative duration.
func ETA(done, total int, elapsed time.Duration) time.Duration {
	rest := total - done
	if done <= 0 || rest <= 0 || elapsed <= 0 {
		return 0
	}
	// Float math: the int64 form elapsed/done*rest overflows for long
	// sweeps with many queued jobs.
	eta := float64(elapsed) / float64(done) * float64(rest)
	if eta >= math.MaxInt64 {
		return math.MaxInt64
	}
	return time.Duration(eta)
}

// serial runs the jobs on the calling goroutine ( -j 1 ).
func (s *state[J, R]) serial(ctx context.Context) {
	for i := range s.jobs {
		if ctx.Err() != nil {
			return
		}
		s.runOne(ctx, i)
	}
}

// parallel fans the jobs out over w worker goroutines.
func (s *state[J, R]) parallel(ctx context.Context, w int) {
	feed := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range feed {
				// Cancellation skips queued jobs; in-flight jobs finish.
				if ctx.Err() != nil {
					continue
				}
				s.runOne(ctx, i)
			}
		}()
	}
	for i := range s.jobs {
		feed <- i
	}
	close(feed)
	wg.Wait()
}
