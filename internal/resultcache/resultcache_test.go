package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"os"
	"sync"
	"testing"

	"taglessdram/internal/system"
)

func sampleResult() *system.Result {
	return &system.Result{
		Workload:   "unit",
		References: 12345,
		Cycles:     67890,
		PerCoreIPC: []float64{1.25, 0.75},
	}
}

func TestKeyOf(t *testing.T) {
	a, b := KeyOf("preimage-a"), KeyOf("preimage-b")
	if a == b {
		t.Fatal("distinct preimages share a key")
	}
	if a != KeyOf("preimage-a") {
		t.Fatal("KeyOf not deterministic")
	}
	if len(a.String()) != 64 {
		t.Fatalf("key hex %q not 64 chars", a)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("job-1")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	want := sampleResult()
	if err := s.Put(key, "job-1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got == want {
		t.Fatal("Get returned the stored pointer, not a decoded copy")
	}
	if got.Workload != want.Workload || got.References != want.References ||
		got.Cycles != want.Cycles || len(got.PerCoreIPC) != 2 || got.PerCoreIPC[0] != 1.25 {
		t.Fatalf("round trip mangled the result: %+v", got)
	}
	if pre, ok := s.Preimage(key); !ok || pre != "job-1" {
		t.Fatalf("Preimage = %q, %v; want job-1, true", pre, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if st := s.Stats(); st != (Stats{Hits: 1, Misses: 1, Stored: 1}) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

// rewriteEnvelope loads the entry under key, lets mutate edit the decoded
// envelope, and writes it back — building precisely-damaged entries the
// loader must reject.
func rewriteEnvelope(t *testing.T, s *Store, key Key, mutate func(*envelope)) {
	t.Helper()
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	var e envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		t.Fatal(err)
	}
	mutate(&e)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDamagedEntriesMissAndEvict(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*envelope)
	}{
		{"wrong-format", func(e *envelope) { e.Format = entryFormat + 1 }},
		{"mis-keyed", func(e *envelope) { e.Key = KeyOf("some other job").String() }},
		{"checksum-mismatch", func(e *envelope) { e.Payload[0] ^= 0xff }},
		{"payload-garbage", func(e *envelope) {
			e.Payload = []byte("junk")
			e.Sum = sha256.Sum256(e.Payload) // matching checksum, undecodable payload
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := KeyOf("job")
			if err := s.Put(key, "job", sampleResult()); err != nil {
				t.Fatal(err)
			}
			rewriteEnvelope(t, s, key, tc.mutate)

			if _, ok := s.Get(key); ok {
				t.Fatal("damaged entry served as a hit")
			}
			if s.Len() != 0 {
				t.Fatal("damaged entry not evicted")
			}
			if st := s.Stats(); st.Evicted != 1 || st.Misses != 1 || st.Hits != 0 {
				t.Fatalf("stats = %+v, want 1 eviction, 1 miss, 0 hits", st)
			}
			// The slot heals on the next Put.
			if err := s.Put(key, "job", sampleResult()); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(key); !ok {
				t.Fatal("miss after healing Put")
			}
		})
	}
}

func TestRawCorruptionMissesAndEvicts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("job")
	if err := s.Put(key, "job", sampleResult()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if st := s.Stats(); st.Evicted != 1 {
		t.Fatalf("stats = %+v, want the truncated entry evicted", st)
	}
}

func TestClone(t *testing.T) {
	orig := sampleResult()
	c, err := Clone(orig)
	if err != nil {
		t.Fatal(err)
	}
	if c == orig {
		t.Fatal("Clone returned the same pointer")
	}
	c.PerCoreIPC[0] = 99
	if orig.PerCoreIPC[0] == 99 {
		t.Fatal("Clone shares backing storage with the original")
	}
}

func TestFlightDedupsConcurrentAndCompletedCalls(t *testing.T) {
	f := NewFlight()
	key := KeyOf("job")
	var calls, shares int
	var mu sync.Mutex
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, shared, err := f.Do(key, func() (*system.Result, error) {
				<-gate // hold the leader so every follower queues up
				mu.Lock()
				calls++
				mu.Unlock()
				return sampleResult(), nil
			})
			if err != nil || r == nil {
				t.Errorf("Do: %v, %v", r, err)
			}
			if shared {
				mu.Lock()
				shares++
				mu.Unlock()
			}
		}()
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if shares != 7 {
		t.Fatalf("%d callers reported shared, want 7", shares)
	}

	// Completed calls stay memoized: a later caller shares without running.
	_, shared, err := f.Do(key, func() (*system.Result, error) {
		t.Fatal("memoized key re-ran fn")
		return nil, nil
	})
	if err != nil || !shared {
		t.Fatalf("memoized Do = shared %t, err %v", shared, err)
	}

	// Errors memoize too, and distinct keys don't collide.
	boom := errors.New("boom")
	if _, _, err := f.Do(KeyOf("bad"), func() (*system.Result, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, shared, err := f.Do(KeyOf("bad"), func() (*system.Result, error) { return sampleResult(), nil }); !shared || err != boom {
		t.Fatalf("memoized error call = shared %t, err %v", shared, err)
	}
}

func TestConcurrentPutGetOneKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("contended")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := s.Put(key, "contended", sampleResult()); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if r, ok := s.Get(key); ok && r.References != 12345 {
					t.Errorf("torn read: %+v", r)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestForgetDropsMemoButNotWaiters: Forget makes the next Do run fn
// again (both after success and after a memoized error), while callers
// already blocked on the forgotten call still receive its outcome.
func TestForgetDropsMemoButNotWaiters(t *testing.T) {
	f := NewFlight()
	key := KeyOf("job")

	// Memoized success re-runs after Forget.
	if _, _, err := f.Do(key, func() (*system.Result, error) { return sampleResult(), nil }); err != nil {
		t.Fatal(err)
	}
	f.Forget(key)
	reran := false
	if _, shared, err := f.Do(key, func() (*system.Result, error) {
		reran = true
		return sampleResult(), nil
	}); err != nil || shared {
		t.Fatalf("post-Forget Do = shared %t, err %v", shared, err)
	}
	if !reran {
		t.Fatal("forgotten key replayed the old call")
	}

	// Memoized errors are forgettable too — a long-lived Flight must not
	// replay a transient failure forever.
	bad := KeyOf("bad")
	boom := errors.New("boom")
	f.Do(bad, func() (*system.Result, error) { return nil, boom })
	f.Forget(bad)
	if _, _, err := f.Do(bad, func() (*system.Result, error) { return sampleResult(), nil }); err != nil {
		t.Fatalf("error stayed memoized across Forget: %v", err)
	}

	// Forgetting a call mid-flight closes its dedup window: a later Do
	// starts a fresh execution while the forgotten leader completes
	// independently (its Do still returns its own result).
	gate := make(chan struct{})
	entered := make(chan struct{})
	slow := KeyOf("slow")
	var wg sync.WaitGroup
	wg.Add(1)
	leaderOK := false
	go func() {
		defer wg.Done()
		r, shared, err := f.Do(slow, func() (*system.Result, error) {
			close(entered)
			<-gate
			return sampleResult(), nil
		})
		leaderOK = r != nil && !shared && err == nil
	}()
	<-entered
	f.Forget(slow)
	second := false
	if _, shared, err := f.Do(slow, func() (*system.Result, error) {
		second = true
		return sampleResult(), nil
	}); err != nil || shared {
		t.Fatalf("Do after mid-flight Forget = shared %t, err %v", shared, err)
	}
	if !second {
		t.Fatal("mid-flight Forget did not close the dedup window")
	}
	close(gate)
	wg.Wait()
	if !leaderOK {
		t.Fatal("forgotten leader lost its own result")
	}
}

// TestEncodeDecodeRoundTrip pins the exported codec: Decode(Encode(r))
// carries exactly what a cache hit would (the sweep service streams
// results through this pair).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleResult()
	payload, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != want.Workload || got.References != want.References ||
		got.Cycles != want.Cycles || len(got.PerCoreIPC) != 2 || got.PerCoreIPC[1] != 0.75 {
		t.Fatalf("round trip mangled the result: %+v", got)
	}
	if _, err := Decode([]byte("junk")); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

// TestStatsRaceFreeUnderTraffic pins the Stats counters as safe to read
// concurrently with cache traffic — the -progress callback reads
// hit/miss counts from worker goroutines mid-sweep. The assertion is the
// race detector itself (CI runs this file under -race) plus monotonic
// snapshots.
func TestStatsRaceFreeUnderTraffic(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			key := KeyOf(string(rune('a' + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					s.Put(key, "traffic", sampleResult())
				}
				s.Get(key)
				s.Get(KeyOf("always-missing"))
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var prev Stats
			for i := 0; i < 2000; i++ {
				st := s.Stats()
				if st.Hits < prev.Hits || st.Misses < prev.Misses ||
					st.Stored < prev.Stored || st.Evicted < prev.Evicted {
					t.Errorf("stats went backwards: %+v -> %+v", prev, st)
					return
				}
				prev = st
			}
		}()
	}
	// The readers drive the test's duration; the writers stop when the
	// readers have seen their fill of snapshots.
	readers.Wait()
	close(stop)
	writers.Wait()
}
