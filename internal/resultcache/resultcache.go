// Package resultcache is a persistent, content-addressed store of
// completed simulation results. Every run of this simulator is
// bit-reproducible (the golden fingerprints and the -j1/-j4 output diffs
// pin that), so a Result can be keyed by a cryptographic fingerprint of
// the job's semantic identity — full resolved configuration, workload,
// seeds, sampling parameters, model version — and replayed instead of
// re-simulated. A design-space sweep re-run after touching one
// organization then simulates only that organization's cells; everything
// else is a cache hit.
//
// Reliability contract:
//
//   - Entries are written atomically (temp file + rename), so a crashed
//     or concurrent writer can never leave a half-written entry under a
//     live key. Two writers racing on one key both write identical bytes
//     (the simulation is deterministic); last rename wins.
//   - Every entry carries a format version, its own key, the key's
//     canonical preimage (for auditability), and a checksum of the
//     payload. Corrupt, truncated, version-mismatched or mis-keyed
//     entries are treated as misses and evicted — never surfaced as
//     errors, because the cache must always be allowed to fall back to
//     simulating.
//
// The package also provides Flight, an in-process single-flight memo
// that deduplicates identical jobs inside one sweep, and Clone, the
// gob round-trip used to hand deduplicated callers their own copy.
package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"taglessdram/internal/system"
)

// Key is the content address of one cached result: the SHA-256 digest of
// the job's canonical preimage.
type Key [sha256.Size]byte

// KeyOf hashes a canonical preimage into its content address.
func KeyOf(preimage string) Key { return sha256.Sum256([]byte(preimage)) }

// String renders the key as lowercase hex (also the entry's file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// entryFormat versions the on-disk envelope layout. A mismatch means the
// entry was written by an incompatible build and is evicted as a miss.
const entryFormat = 1

// envelope is the on-disk form of one entry. Payload is the gob-encoded
// system.Result; Sum is its SHA-256, verified on every load. Preimage is
// the human-readable canonical job identity the key was hashed from, so
// an entry can always be audited against the job it claims to answer.
type envelope struct {
	Format   int
	Key      string
	Preimage string
	Sum      [sha256.Size]byte
	Payload  []byte
}

// Stats are a store's lifetime counters (monotonic, safe to read
// concurrently with cache traffic).
type Stats struct {
	Hits    uint64 // Get found a valid entry
	Misses  uint64 // Get found nothing usable
	Stored  uint64 // Put wrote an entry
	Evicted uint64 // corrupt/mismatched entries removed during Get
}

// Store is a directory-backed result cache. Safe for concurrent use by
// any number of goroutines and processes.
type Store struct {
	dir string

	hits, misses, stored, evicted atomic.Uint64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Stored:  s.stored.Load(),
		Evicted: s.evicted.Load(),
	}
}

func (s *Store) path(key Key) string {
	return filepath.Join(s.dir, key.String()+".res")
}

// Get loads the result stored under key. A missing, corrupt, truncated,
// version-mismatched or mis-keyed entry is a miss (corrupt entries are
// also evicted so the slot heals on the next Put); Get never returns an
// error because the caller can always fall back to simulating.
func (s *Store) Get(key Key) (*system.Result, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	r, err := decodeEntry(key, data)
	if err != nil {
		// Unusable entry: evict it so a fresh Put replaces it, and treat
		// the lookup as a miss.
		if rmErr := os.Remove(s.path(key)); rmErr == nil {
			s.evicted.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return r, true
}

// decodeEntry validates one on-disk envelope against the key it was
// looked up under and decodes its Result.
func decodeEntry(key Key, data []byte) (*system.Result, error) {
	var e envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return nil, fmt.Errorf("resultcache: envelope: %w", err)
	}
	if e.Format != entryFormat {
		return nil, fmt.Errorf("resultcache: entry format %d, want %d", e.Format, entryFormat)
	}
	if e.Key != key.String() {
		return nil, fmt.Errorf("resultcache: entry keyed %s under %s", e.Key, key)
	}
	if sha256.Sum256(e.Payload) != e.Sum {
		return nil, fmt.Errorf("resultcache: payload checksum mismatch")
	}
	return decodeResult(e.Payload)
}

// Put stores a result under key, recording the canonical preimage the
// key was derived from. The write is atomic: concurrent readers either
// see the complete new entry or whatever was there before.
func (s *Store) Put(key Key, preimage string, r *system.Result) error {
	payload, err := encodeResult(r)
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(envelope{
		Format:   entryFormat,
		Key:      key.String(),
		Preimage: preimage,
		Sum:      sha256.Sum256(payload),
		Payload:  payload,
	})
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: %w", err)
	}
	s.stored.Add(1)
	return nil
}

// Preimage returns the stored canonical preimage of an entry, for
// auditing what job identity a cached result answers.
func (s *Store) Preimage(key Key) (string, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return "", false
	}
	var e envelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&e); err != nil {
		return "", false
	}
	return e.Preimage, true
}

// Len counts the entries currently on disk.
func (s *Store) Len() int {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.res"))
	if err != nil {
		return 0
	}
	return len(matches)
}

// Encode renders a Result in the cache's own payload codec. The bytes
// are exactly what a cache entry's payload carries, so a Decode on the
// far side of any transport (the sweep service streams them base64-coded
// inside JSON events) reconstructs the Result bit-identically — the same
// guarantee a cache hit gives.
func Encode(r *system.Result) ([]byte, error) { return encodeResult(r) }

// Decode reverses Encode.
func Decode(payload []byte) (*system.Result, error) { return decodeResult(payload) }

// encodeResult/decodeResult are the payload codec: plain gob of the
// Result value. Every field of system.Result (and its nested metric
// types) either exports its state or, like lat.Hist, implements the gob
// interfaces, so the round trip is lossless — Clone and the hit path
// both rely on that.
func encodeResult(r *system.Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeResult(payload []byte) (*system.Result, error) {
	r := new(system.Result)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(r); err != nil {
		return nil, err
	}
	return r, nil
}

// Clone deep-copies a result through the cache's own codec, so a cloned
// result carries exactly what a cache hit would.
func Clone(r *system.Result) (*system.Result, error) {
	payload, err := encodeResult(r)
	if err != nil {
		return nil, err
	}
	return decodeResult(payload)
}

// Flight deduplicates identical in-flight (and already-completed) jobs
// within one sweep: the first caller of a key runs the function, every
// later caller waits for (or immediately receives) the first caller's
// outcome with shared=true. Completed calls stay memoized for the
// Flight's lifetime, so serial sweeps deduplicate repeated cells too.
// Callers that need a private copy of a shared result should Clone it.
type Flight struct {
	mu    sync.Mutex
	calls map[Key]*call
}

type call struct {
	done chan struct{}
	r    *system.Result
	err  error
}

// NewFlight returns an empty single-flight memo.
func NewFlight() *Flight {
	return &Flight{calls: make(map[Key]*call)}
}

// Forget drops key's memoized call, so the next Do runs fn again instead
// of replaying the remembered outcome. Callers already waiting on the
// forgotten call still receive its result — they hold the call, not the
// map slot. Long-lived owners (the sweep service keeps one Flight for
// its whole lifetime) forget each key as soon as its run completes: the
// persistent store serves later duplicates, concurrent ones still share
// one execution, and the memo stops pinning every Result ever computed —
// including failed calls, which would otherwise replay their error
// forever.
func (f *Flight) Forget(key Key) {
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
}

// Do runs fn under key, deduplicating against concurrent and past calls
// with the same key. shared reports whether the returned result came
// from another caller's execution.
func (f *Flight) Do(key Key, fn func() (*system.Result, error)) (r *system.Result, shared bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.r, true, c.err
	}
	c := &call{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	defer close(c.done)
	c.r, c.err = fn()
	return c.r, false, c.err
}
