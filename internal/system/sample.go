package system

import (
	"fmt"

	"taglessdram/internal/energy"
	"taglessdram/internal/org"
	"taglessdram/internal/sim"
	"taglessdram/internal/stats"
)

// SampleSpec configures SMARTS-style sampled simulation: short
// cycle-accurate measurement windows of WindowRefs trace references,
// one per PeriodRefs references, with functional fast-forward covering
// the gaps. The per-window (instructions, cycles) population feeds the
// pooled-ratio IPC estimate ± CI95 the sampled Result reports.
type SampleSpec struct {
	// WindowRefs is the length of each cycle-accurate window, in trace
	// references across all cores.
	WindowRefs uint64
	// PeriodRefs is the sampling period: one window per PeriodRefs
	// references on average. The gap between windows fast-forwards
	// functionally, and its length is drawn uniformly in [0, 2×mean gap]
	// by a fixed-seed generator: applications with periodic phase
	// structure (tight loops over a working set) otherwise alias against
	// a strict stride, and a single unlucky phase offset shifts the IPC
	// estimate by several percent while the window-population CI reports
	// tight agreement. Randomized placement restores the unbiasedness of
	// the stratified estimate and makes the CI honest.
	PeriodRefs uint64
	// WarmRefs is each window's detailed-warming prefix (SMARTS' W):
	// simulated cycle-accurately so DRAM queue and row-buffer state ramp
	// up from the fast-forwarded span's stale values, but excluded from
	// the window's IPC observation. Without it the estimate biases high
	// for designs that keep off-package DRAM under continuous queue
	// pressure (NoL3, BI): every window would start against idle banks.
	WarmRefs uint64
}

// Validate checks the spec's internal consistency.
func (s SampleSpec) Validate() error {
	if s.WindowRefs == 0 {
		return fmt.Errorf("system: sample window must be positive")
	}
	if s.PeriodRefs <= s.WindowRefs+s.WarmRefs {
		return fmt.Errorf("system: sample period (%d) must exceed warming+window (%d+%d)", s.PeriodRefs, s.WarmRefs, s.WindowRefs)
	}
	return nil
}

// SampledInfo summarizes a sampled run: the window population, the IPC
// estimate it yields (equal to Result.IPC), and that estimate's 95%
// confidence half-width. It is nil on full (unsampled) Results and never
// enters golden fingerprints.
type SampledInfo struct {
	Windows      uint64 // cycle-accurate windows measured
	WindowRefs   uint64 // spec: references per window
	PeriodRefs   uint64 // spec: references per period
	MeasuredRefs uint64 // references simulated cycle-accurately
	FastRefs     uint64 // references fast-forwarded
	// IPC is the sampled estimate of the full-run IPC — the headline
	// Result.IPC, restated here next to its confidence interval.
	IPC float64
	// IPCCI95 is the 95% confidence half-width of the estimate's
	// sampling error (window-to-window variation). Fast-forward state
	// staleness is a separate, systematic error; the accuracy tests
	// bound the two together at ≤2% on the validated configurations.
	IPCCI95 float64
}

// RunSampled executes the workload with SMARTS-style sampling: an
// accurate warm-up of `warmup` instructions per core, then alternating
// cycle-accurate measurement windows and functional fast-forward until
// every core has retired `measure` further instructions. Every counter in
// the Result — cycles, instructions, device traffic, latency attribution —
// covers only the union of the accurate windows (fast-forwarded spans
// restore the counters they touch), so the Result is internally
// consistent; Result.Sampled carries the IPC estimate ± CI95 and the
// fast/accurate reference split.
func (m *Machine) RunSampled(warmup, measure uint64, spec SampleSpec) (*Result, error) {
	// Fail fast on spec errors before spending the warm-up.
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if m.fast == nil {
		return nil, fmt.Errorf("system: organization %T does not implement org.FastPath", m.org)
	}
	if err := m.runPhase(warmup); err != nil {
		return nil, err
	}
	if warmup > m.warmedTo {
		m.warmedTo = warmup
	}
	return m.MeasureSampled(measure, spec)
}

// MeasureSampled runs the sampled measured phase from the machine's
// current warm state — established by RunSampled's own warm-up, an
// explicit Warmup, or LoadCheckpoint — so checkpointed sweeps can fan a
// warm state out into sampled measurement.
func (m *Machine) MeasureSampled(measure uint64, spec SampleSpec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if measure == 0 {
		return nil, fmt.Errorf("system: measure phase must be positive")
	}
	if m.warmedTo+measure < m.warmedTo {
		return nil, fmt.Errorf("system: warmup+measure overflows (warmup=%d measure=%d)", m.warmedTo, measure)
	}
	if m.fast == nil {
		return nil, fmt.Errorf("system: organization %T does not implement org.FastPath", m.org)
	}

	m.beginMeasurement()
	target := m.warmedTo + measure

	// Deterministic splitmix64 stream for window placement (see
	// SampleSpec.PeriodRefs). Seeded from the spec so identical sampled
	// runs reproduce bit-identically.
	gapBase := spec.PeriodRefs - spec.WindowRefs - spec.WarmRefs
	rngState := spec.PeriodRefs*0x9E3779B97F4A7C15 ^ spec.WindowRefs*0xBF58476D1CE4E5B9 ^ 0x94D049BB133111EB
	nextGap := func() uint64 {
		rngState += 0x9E3779B97F4A7C15
		z := rngState
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		z ^= z >> 31
		return z % (2*gapBase + 1)
	}

	var (
		windows      uint64
		measured     uint64
		fast         uint64
		totalCycles  sim.Tick
		totalInstr   uint64
		winC         = make([]sim.Tick, len(m.cores))
		winI         = make([]uint64, len(m.cores))
		perCoreCycle = make([]sim.Tick, len(m.cores))
		perCoreInstr = make([]uint64, len(m.cores))
		coreRatio    = make([]stats.Ratio, len(m.cores))
	)
	for !m.phaseDone(target) {
		// Detailed-warming prefix: cycle-accurate, outside the IPC
		// observation.
		start := m.refs
		for m.refs-start < spec.WarmRefs {
			cc := m.nextCore(target)
			if cc == nil {
				break
			}
			if err := m.step(cc); err != nil {
				return nil, err
			}
		}
		// Cycle-accurate window of WindowRefs references.
		for i, cc := range m.cores {
			winC[i], winI[i] = cc.cpu.Now(), cc.cpu.Instructions
		}
		wstart := m.refs
		for m.refs-wstart < spec.WindowRefs {
			cc := m.nextCore(target)
			if cc == nil {
				break
			}
			if err := m.step(cc); err != nil {
				return nil, err
			}
		}
		measured += m.refs - start
		// Close the window without draining in-flight misses. A drain
		// looks attractive — the window's last misses otherwise truncate
		// their stall cycles — but it empties the memory system at every
		// boundary, recreating exactly the idle-queue startup that
		// WarmRefs exists to prevent, and the warming prefix only
		// partially rebuilds queue pressure: at matched window counts a
		// per-window drain overstates IPC by ~1.4% where undrained
		// windows match the full run to ~0.1% (sphinx3/cTLB, 2000-ref
		// windows tiling a 100M-ref run). Truncation, by contrast, is
		// symmetric — the in-flight work a window loses at its close
		// mirrors the in-flight work it inherited at its open — and
		// cancels across the window population.
		var winCycles sim.Tick
		var winInstr uint64
		for i, cc := range m.cores {
			if !cc.active {
				continue
			}
			dc := cc.cpu.Now() - winC[i]
			di := cc.cpu.Instructions - winI[i]
			perCoreCycle[i] += dc
			perCoreInstr[i] += di
			winInstr += di
			if dc > winCycles {
				winCycles = dc
			}
			coreRatio[i].Observe(float64(di), float64(dc))
		}
		totalCycles += winCycles
		totalInstr += winInstr
		if winCycles > 0 {
			windows++
		}
		if m.phaseDone(target) {
			break
		}

		// Functional fast-forward to the next window, over a randomized
		// gap averaging PeriodRefs-WindowRefs-WarmRefs references.
		gap := nextGap()
		if gap == 0 {
			continue
		}
		start = m.refs
		if err := m.fastForward(gap, target); err != nil {
			return nil, err
		}
		fast += m.refs - start
		if m.refs == start {
			// The fast path made no progress (instruction target reached
			// mid-period); the loop condition terminates.
			break
		}
	}
	for _, cc := range m.cores {
		cc.cpu.Drain()
	}
	m.kernel.Run(0)

	r := m.collect()
	// Rebase the counters on the window union: collect() spans the whole
	// measured phase, but only the windows were simulated cycle-accurately
	// (and only they accumulated counters).
	r.Cycles = uint64(totalCycles)
	r.Instructions = totalInstr
	r.PerCoreIPC = r.PerCoreIPC[:0]
	minCore, minIdx := 0.0, -1
	for i, cc := range m.cores {
		if !cc.active {
			continue
		}
		v := 0.0
		if perCoreCycle[i] > 0 {
			v = float64(perCoreInstr[i]) / float64(perCoreCycle[i])
		}
		r.PerCoreIPC = append(r.PerCoreIPC, v)
		if len(r.PerCoreIPC) == 1 || v < minCore {
			minCore, minIdx = v, i
		}
	}
	// Headline IPC estimator. The full run's IPC is Σinstructions over the
	// slowest core's cycles, and cores retire equal instruction budgets,
	// so it equals cores × the slowest core's IPC — reconstruct that from
	// the per-core window ratios (each unbiased for its core) rather than
	// averaging per-window system IPCs, which Jensen-biases high, or
	// pooling per-window max-cycles, which accumulates skew and biases
	// low.
	r.IPC = float64(len(r.PerCoreIPC)) * minCore
	var os org.Stats
	m.org.Collect(&os)
	activeCores := 0
	for _, cc := range m.cores {
		if cc.active {
			activeCores++
		}
	}
	em := energy.Model{
		Cores:          activeCores,
		CorePowerWatts: m.cfg.CorePowerWatts,
		FreqGHz:        m.cfg.CPU.FreqGHz,
	}
	r.Energy = em.Account(r.Cycles, m.inPkg.EnergyPJ(), m.offPkg.EnergyPJ(), os.TagEnergyPJ)
	r.EDPJs = energy.EDP(r.Energy.TotalJ(), r.Cycles, m.cfg.CPU.FreqGHz)
	r.Seconds = float64(r.Cycles) / (m.cfg.CPU.FreqGHz * 1e9)
	// The CI quantifies the sampling error of the headline estimator:
	// the slowest core's pooled instructions/cycles ratio over the
	// window population, whose delta-method CI the Ratio accumulator
	// provides, scaled by the core count like the estimate itself.
	ci := 0.0
	if minIdx >= 0 {
		ci = float64(len(r.PerCoreIPC)) * coreRatio[minIdx].CI95()
	}
	r.Sampled = &SampledInfo{
		Windows:      windows,
		WindowRefs:   spec.WindowRefs,
		PeriodRefs:   spec.PeriodRefs,
		MeasuredRefs: measured,
		FastRefs:     fast,
		IPC:          r.IPC,
		IPCCI95:      ci,
	}
	return r, nil
}

// phaseDone reports whether every active core has retired target
// instructions.
func (m *Machine) phaseDone(target uint64) bool {
	for _, cc := range m.cores {
		if cc.active && cc.cpu.Instructions < target {
			return false
		}
	}
	return true
}
