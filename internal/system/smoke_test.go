package system

import (
	"testing"

	"taglessdram/internal/config"
)

// scaledConfig returns the evaluated machine with capacities divided by
// 1<<shift (the experiments' standard scale: shift 6 maps 1GB → 16MB).
func scaledConfig(design config.L3Design, shift uint) *config.SystemConfig {
	c := config.Default()
	c.Design = design
	c.CacheSize = c.CacheSize >> shift
	c.InPkg.SizeBytes = c.InPkg.SizeBytes >> shift
	c.OffPkg.SizeBytes = c.OffPkg.SizeBytes >> shift
	return c
}

func runDesign(t *testing.T, design config.L3Design, workload string, instr uint64) *Result {
	t.Helper()
	cfg := scaledConfig(design, 6)
	w, err := SingleProgram(workload, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(instr, instr)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSmokeAllDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test is slow")
	}
	for _, d := range config.AllDesigns() {
		r := runDesign(t, d, "sphinx3", 3000000)
		t.Logf("%v", r)
		if r.IPC <= 0 {
			t.Errorf("%v: non-positive IPC", d)
		}
	}
}
