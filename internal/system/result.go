package system

import (
	"fmt"
	"strings"

	"taglessdram/internal/config"
	"taglessdram/internal/core"
	"taglessdram/internal/dram"
	"taglessdram/internal/energy"
	"taglessdram/internal/lat"
	"taglessdram/internal/obs"
	"taglessdram/internal/org"
	"taglessdram/internal/sim"
	"taglessdram/internal/stats"
)

// Result summarizes one measured run.
type Result struct {
	Workload string
	Design   config.L3Design

	Cycles       uint64 // measured cycles (longest active core)
	Instructions uint64 // measured instructions across active cores
	IPC          float64
	PerCoreIPC   []float64

	// AvgL3Latency is the Figure 8 metric: device-side L3 latency plus
	// TLB-miss handler time, amortized over L3 accesses, in cycles.
	AvgL3Latency float64
	L3Accesses   uint64
	L3Hits       uint64
	L3HitRate    float64

	TLBLookups  uint64
	TLBMisses   uint64
	TLBMissRate float64
	NCAccesses  uint64

	// SharedTLBInvalidations counts L1 entries of one core killed by a
	// different core's shared-L2 activity (shared topology only), and
	// CtxSwitches counts context switches applied over the measured
	// window. Neither enters golden fingerprints.
	SharedTLBInvalidations uint64
	CtxSwitches            uint64

	Energy  energy.Breakdown
	EDPJs   float64 // energy-delay product in joule-seconds
	Seconds float64

	InPkgRowHitRate  float64
	OffPkgRowHitRate float64
	InPkgBytes       uint64
	OffPkgBytes      uint64

	// Latency is the cycle-accounting summary of the measured window:
	// per-component stall attribution for the L3-access and TLB-miss
	// handler scopes (conservation-checked — see lat.Breakdown.Residue),
	// background write-back attribution, and the latency histograms
	// behind the tail metrics.
	Latency lat.Summary
	// InPkgBankStats/OffPkgBankStats are the per-bank row-hit/row-conflict
	// counters and busy ticks of each device over the measured window.
	InPkgBankStats  []dram.BankStat
	OffPkgBankStats []dram.BankStat
	// InPkgBusBusy/OffPkgBusBusy are data-bus busy ticks summed over each
	// device's channels; with the channel counts they give utilizations.
	InPkgBusBusy   uint64
	OffPkgBusBusy  uint64
	InPkgChannels  int
	OffPkgChannels int

	// Ctrl carries tagless-controller counters (zero for other designs).
	Ctrl core.Stats
	// MissKindMean/Count give the cTLB miss-handler latency per outcome,
	// indexed by core.MissKind (Table 1's four cases; tagless only).
	MissKindMean  [4]float64
	MissKindCount [4]uint64
	// SRAMHitRate is the page-cache hit rate (SRAM-tag design only).
	SRAMHitRate float64

	// References counts trace references processed over the whole run
	// (warm-up and measured phases); KernelEvents counts discrete events
	// the simulation kernel executed. Both are wall-clock throughput
	// denominators, not paper metrics.
	References   uint64
	KernelEvents uint64

	// Sampled summarizes a SMARTS-style sampled run — window population,
	// IPC mean ± CI95, fast/accurate reference split — and is nil on full
	// runs. Like Epochs it never enters golden fingerprints: sampling is
	// an estimator of the full run, not a different simulated behavior.
	Sampled *SampledInfo

	// Epochs is the epoch-resolved time series captured when a sampler
	// was attached (nil otherwise): per-epoch counter deltas and gauges,
	// oldest first. EpochsDropped counts epochs lost to the sampler's
	// ring wrapping. Neither field enters golden fingerprints — sampling
	// is observability, not simulated behavior.
	Epochs        []obs.Epoch
	EpochsDropped int
}

// collect assembles the Result after the measured phase.
func (m *Machine) collect() *Result {
	r := &Result{
		Workload: m.workload.Name,
		Design:   m.cfg.Design,
	}
	var maxCycles sim.Tick
	for _, cc := range m.cores {
		if !cc.active {
			continue
		}
		cycles := cc.cpu.Now() - cc.startCycle
		instr := cc.cpu.Instructions - cc.startInstr
		r.Instructions += instr
		if cycles > maxCycles {
			maxCycles = cycles
		}
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(instr) / float64(cycles)
		}
		r.PerCoreIPC = append(r.PerCoreIPC, ipc)
	}
	r.Cycles = uint64(maxCycles)
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}

	r.L3Accesses = m.l3Accesses.Value()
	r.L3Hits = m.l3Hits.Value()
	if r.L3Accesses > 0 {
		r.L3HitRate = float64(r.L3Hits) / float64(r.L3Accesses)
		r.AvgL3Latency = (m.l3Lat.Sum() + m.handlerLat.Sum()) / float64(r.L3Accesses)
	}
	r.TLBLookups = m.tlbLookups.Value()
	r.TLBMisses = m.tlbMisses.Value()
	if r.TLBLookups > 0 {
		r.TLBMissRate = float64(r.TLBMisses) / float64(r.TLBLookups)
	}
	r.NCAccesses = m.ncAccesses.Value()
	r.CtxSwitches = m.ctxSwitches
	if m.tlbShared != nil {
		r.SharedTLBInvalidations = m.tlbShared.Invalidations
	}

	var os org.Stats
	m.org.Collect(&os)
	r.Ctrl = os.Ctrl
	r.SRAMHitRate = os.SRAMHitRate
	tagPJ := os.TagEnergyPJ

	for i := range m.kindLat {
		r.MissKindMean[i] = m.kindLat[i].Value()
		r.MissKindCount[i] = m.kindLat[i].Count()
	}

	activeCores := 0
	for _, cc := range m.cores {
		if cc.active {
			activeCores++
		}
	}
	em := energy.Model{
		Cores:          activeCores,
		CorePowerWatts: m.cfg.CorePowerWatts,
		FreqGHz:        m.cfg.CPU.FreqGHz,
	}
	r.Energy = em.Account(r.Cycles, m.inPkg.EnergyPJ(), m.offPkg.EnergyPJ(), tagPJ)
	r.EDPJs = energy.EDP(r.Energy.TotalJ(), r.Cycles, m.cfg.CPU.FreqGHz)
	r.Seconds = float64(r.Cycles) / (m.cfg.CPU.FreqGHz * 1e9)

	r.InPkgRowHitRate = m.inPkg.RowHitRate()
	r.OffPkgRowHitRate = m.offPkg.RowHitRate()
	r.InPkgBytes = m.inPkg.BytesTransferred()
	r.OffPkgBytes = m.offPkg.BytesTransferred()
	r.Latency = m.rec.Summary()
	r.InPkgBankStats = m.inPkg.BankStats()
	r.OffPkgBankStats = m.offPkg.BankStats()
	r.InPkgBusBusy = m.inPkg.BusBusyTicks()
	r.OffPkgBusBusy = m.offPkg.BusBusyTicks()
	r.InPkgChannels = m.inPkg.Channels()
	r.OffPkgChannels = m.offPkg.Channels()
	r.References = m.refs
	r.KernelEvents = m.kernel.Executed()
	if m.sampler != nil {
		r.Epochs = m.sampler.Epochs()
		r.EpochsDropped = m.sampler.Dropped()
	}
	return r
}

// Metrics flattens the result into a named-metric registry, convenient for
// diffing runs or exporting to monitoring formats.
func (r *Result) Metrics() *stats.Registry {
	reg := stats.NewRegistry()
	reg.Set("ipc", r.IPC)
	reg.Set("cycles", float64(r.Cycles))
	reg.Set("instructions", float64(r.Instructions))
	reg.Set("l3.accesses", float64(r.L3Accesses))
	reg.Set("l3.hit_rate", r.L3HitRate)
	reg.Set("l3.avg_latency_cycles", r.AvgL3Latency)
	reg.Set("tlb.miss_rate", r.TLBMissRate)
	reg.Set("nc.accesses", float64(r.NCAccesses))
	reg.Set("vm.ctx_switches", float64(r.CtxSwitches))
	reg.Set("vm.shared_tlb_invalidations", float64(r.SharedTLBInvalidations))
	reg.Set("energy.total_j", r.Energy.TotalJ())
	reg.Set("energy.core_j", r.Energy.CoreJ)
	reg.Set("energy.inpkg_j", r.Energy.InPkgJ)
	reg.Set("energy.offpkg_j", r.Energy.OffPkgJ)
	reg.Set("energy.tag_j", r.Energy.TagJ)
	reg.Set("edp_js", r.EDPJs)
	reg.Set("dram.inpkg_row_hit", r.InPkgRowHitRate)
	reg.Set("dram.offpkg_row_hit", r.OffPkgRowHitRate)
	reg.Set("dram.inpkg_bytes", float64(r.InPkgBytes))
	reg.Set("dram.offpkg_bytes", float64(r.OffPkgBytes))
	reg.Set("ctrl.victim_hits", float64(r.Ctrl.VictimHits))
	reg.Set("ctrl.cold_fills", float64(r.Ctrl.ColdFills))
	reg.Set("ctrl.evictions", float64(r.Ctrl.Evictions))
	reg.Set("ctrl.writebacks", float64(r.Ctrl.Writebacks))
	reg.Set("ctrl.alias_hits", float64(r.Ctrl.AliasHits))

	// Cycle accounting: tail quantiles, stall totals, conservation
	// residues, and the per-component split (L3 + handler scopes summed).
	l3, h := &r.Latency.L3, &r.Latency.Handler
	reg.Set("lat.l3.p50", r.Latency.L3Lat.Quantile(50))
	reg.Set("lat.l3.p90", r.Latency.L3Lat.Quantile(90))
	reg.Set("lat.l3.p99", r.Latency.L3Lat.Quantile(99))
	reg.Set("lat.l3.p999", r.Latency.L3Lat.Quantile(99.9))
	reg.Set("lat.l3.max", float64(r.Latency.L3Lat.Max()))
	reg.Set("lat.l3.mean", r.Latency.L3Lat.Mean())
	reg.Set("lat.l3.stall_cycles", float64(l3.Measured))
	reg.Set("lat.l3.residue", float64(l3.Residue))
	reg.Set("lat.handler.p99", r.Latency.HandlerLat.Quantile(99))
	reg.Set("lat.handler.max", float64(r.Latency.HandlerLat.Max()))
	reg.Set("lat.handler.stall_cycles", float64(h.Measured))
	reg.Set("lat.handler.residue", float64(h.Residue))
	reg.Set("lat.bg.cycles", float64(r.Latency.Bg.Measured))
	for c := lat.Component(0); c < lat.NumComponents; c++ {
		reg.Set("lat.comp."+c.String(), float64(l3.Cycles[c]+h.Cycles[c]))
	}

	// Per-bank DRAM telemetry, aggregated (the full per-bank tables are
	// rendered by -lat-hist; the registry carries stable aggregates so the
	// key set is independent of bank counts).
	setBankMetrics(reg, "dram.bank.inpkg.", r.InPkgBankStats, r.Cycles)
	setBankMetrics(reg, "dram.bank.offpkg.", r.OffPkgBankStats, r.Cycles)
	reg.Set("dram.bus.inpkg.busy_frac", busFrac(r.InPkgBusBusy, r.InPkgChannels, r.Cycles))
	reg.Set("dram.bus.offpkg.busy_frac", busFrac(r.OffPkgBusBusy, r.OffPkgChannels, r.Cycles))
	return reg
}

// setBankMetrics registers one device's aggregated per-bank counters:
// total row hits and conflicts across banks, and the busiest bank's
// busy fraction of the measured window.
func setBankMetrics(reg *stats.Registry, prefix string, banks []dram.BankStat, cycles uint64) {
	var hits, confls, maxBusy uint64
	for _, b := range banks {
		hits += b.Hits
		confls += b.Confls
		if b.BusyTicks > maxBusy {
			maxBusy = b.BusyTicks
		}
	}
	frac := 0.0
	if cycles > 0 {
		frac = float64(maxBusy) / float64(cycles)
		if frac > 1 {
			frac = 1
		}
	}
	reg.Set(prefix+"row_hits", float64(hits))
	reg.Set(prefix+"row_confls", float64(confls))
	reg.Set(prefix+"max_busy_frac", frac)
}

// busFrac is the average per-channel data-bus utilization over the
// measured window, clamped to 1 (in-flight transfers can extend past the
// window's closing cycle).
func busFrac(busy uint64, channels int, cycles uint64) float64 {
	if cycles == 0 || channels <= 0 {
		return 0
	}
	f := float64(busy) / (float64(cycles) * float64(channels))
	if f > 1 {
		return 1
	}
	return f
}

// String renders a one-line summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: IPC=%.3f L3hit=%.1f%% L3lat=%.1fcyc TLBmiss=%.2f%% E=%.3gJ EDP=%.3gJs",
		r.Workload, r.Design, r.IPC, r.L3HitRate*100, r.AvgL3Latency,
		r.TLBMissRate*100, r.Energy.TotalJ(), r.EDPJs)
	return b.String()
}
