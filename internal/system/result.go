package system

import (
	"fmt"
	"strings"

	"taglessdram/internal/config"
	"taglessdram/internal/core"
	"taglessdram/internal/energy"
	"taglessdram/internal/obs"
	"taglessdram/internal/org"
	"taglessdram/internal/sim"
	"taglessdram/internal/stats"
)

// Result summarizes one measured run.
type Result struct {
	Workload string
	Design   config.L3Design

	Cycles       uint64 // measured cycles (longest active core)
	Instructions uint64 // measured instructions across active cores
	IPC          float64
	PerCoreIPC   []float64

	// AvgL3Latency is the Figure 8 metric: device-side L3 latency plus
	// TLB-miss handler time, amortized over L3 accesses, in cycles.
	AvgL3Latency float64
	L3Accesses   uint64
	L3Hits       uint64
	L3HitRate    float64

	TLBLookups  uint64
	TLBMisses   uint64
	TLBMissRate float64
	NCAccesses  uint64

	Energy  energy.Breakdown
	EDPJs   float64 // energy-delay product in joule-seconds
	Seconds float64

	InPkgRowHitRate  float64
	OffPkgRowHitRate float64
	InPkgBytes       uint64
	OffPkgBytes      uint64

	// Ctrl carries tagless-controller counters (zero for other designs).
	Ctrl core.Stats
	// MissKindMean/Count give the cTLB miss-handler latency per outcome,
	// indexed by core.MissKind (Table 1's four cases; tagless only).
	MissKindMean  [4]float64
	MissKindCount [4]uint64
	// SRAMHitRate is the page-cache hit rate (SRAM-tag design only).
	SRAMHitRate float64

	// References counts trace references processed over the whole run
	// (warm-up and measured phases); KernelEvents counts discrete events
	// the simulation kernel executed. Both are wall-clock throughput
	// denominators, not paper metrics.
	References   uint64
	KernelEvents uint64

	// Epochs is the epoch-resolved time series captured when a sampler
	// was attached (nil otherwise): per-epoch counter deltas and gauges,
	// oldest first. EpochsDropped counts epochs lost to the sampler's
	// ring wrapping. Neither field enters golden fingerprints — sampling
	// is observability, not simulated behavior.
	Epochs        []obs.Epoch
	EpochsDropped int
}

// collect assembles the Result after the measured phase.
func (m *Machine) collect() *Result {
	r := &Result{
		Workload: m.workload.Name,
		Design:   m.cfg.Design,
	}
	var maxCycles sim.Tick
	for _, cc := range m.cores {
		if !cc.active {
			continue
		}
		cycles := cc.cpu.Now() - cc.startCycle
		instr := cc.cpu.Instructions - cc.startInstr
		r.Instructions += instr
		if cycles > maxCycles {
			maxCycles = cycles
		}
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(instr) / float64(cycles)
		}
		r.PerCoreIPC = append(r.PerCoreIPC, ipc)
	}
	r.Cycles = uint64(maxCycles)
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}

	r.L3Accesses = m.l3Accesses.Value()
	r.L3Hits = m.l3Hits.Value()
	if r.L3Accesses > 0 {
		r.L3HitRate = float64(r.L3Hits) / float64(r.L3Accesses)
		r.AvgL3Latency = (m.l3Lat.Sum() + m.handlerLat.Sum()) / float64(r.L3Accesses)
	}
	r.TLBLookups = m.tlbLookups.Value()
	r.TLBMisses = m.tlbMisses.Value()
	if r.TLBLookups > 0 {
		r.TLBMissRate = float64(r.TLBMisses) / float64(r.TLBLookups)
	}
	r.NCAccesses = m.ncAccesses.Value()

	var os org.Stats
	m.org.Collect(&os)
	r.Ctrl = os.Ctrl
	r.SRAMHitRate = os.SRAMHitRate
	tagPJ := os.TagEnergyPJ

	for i := range m.kindLat {
		r.MissKindMean[i] = m.kindLat[i].Value()
		r.MissKindCount[i] = m.kindLat[i].Count()
	}

	activeCores := 0
	for _, cc := range m.cores {
		if cc.active {
			activeCores++
		}
	}
	em := energy.Model{
		Cores:          activeCores,
		CorePowerWatts: m.cfg.CorePowerWatts,
		FreqGHz:        m.cfg.CPU.FreqGHz,
	}
	r.Energy = em.Account(r.Cycles, m.inPkg.EnergyPJ(), m.offPkg.EnergyPJ(), tagPJ)
	r.EDPJs = energy.EDP(r.Energy.TotalJ(), r.Cycles, m.cfg.CPU.FreqGHz)
	r.Seconds = float64(r.Cycles) / (m.cfg.CPU.FreqGHz * 1e9)

	r.InPkgRowHitRate = m.inPkg.RowHitRate()
	r.OffPkgRowHitRate = m.offPkg.RowHitRate()
	r.InPkgBytes = m.inPkg.BytesTransferred()
	r.OffPkgBytes = m.offPkg.BytesTransferred()
	r.References = m.refs
	r.KernelEvents = m.kernel.Executed()
	if m.sampler != nil {
		r.Epochs = m.sampler.Epochs()
		r.EpochsDropped = m.sampler.Dropped()
	}
	return r
}

// Metrics flattens the result into a named-metric registry, convenient for
// diffing runs or exporting to monitoring formats.
func (r *Result) Metrics() *stats.Registry {
	reg := stats.NewRegistry()
	reg.Set("ipc", r.IPC)
	reg.Set("cycles", float64(r.Cycles))
	reg.Set("instructions", float64(r.Instructions))
	reg.Set("l3.accesses", float64(r.L3Accesses))
	reg.Set("l3.hit_rate", r.L3HitRate)
	reg.Set("l3.avg_latency_cycles", r.AvgL3Latency)
	reg.Set("tlb.miss_rate", r.TLBMissRate)
	reg.Set("nc.accesses", float64(r.NCAccesses))
	reg.Set("energy.total_j", r.Energy.TotalJ())
	reg.Set("energy.core_j", r.Energy.CoreJ)
	reg.Set("energy.inpkg_j", r.Energy.InPkgJ)
	reg.Set("energy.offpkg_j", r.Energy.OffPkgJ)
	reg.Set("energy.tag_j", r.Energy.TagJ)
	reg.Set("edp_js", r.EDPJs)
	reg.Set("dram.inpkg_row_hit", r.InPkgRowHitRate)
	reg.Set("dram.offpkg_row_hit", r.OffPkgRowHitRate)
	reg.Set("dram.inpkg_bytes", float64(r.InPkgBytes))
	reg.Set("dram.offpkg_bytes", float64(r.OffPkgBytes))
	reg.Set("ctrl.victim_hits", float64(r.Ctrl.VictimHits))
	reg.Set("ctrl.cold_fills", float64(r.Ctrl.ColdFills))
	reg.Set("ctrl.evictions", float64(r.Ctrl.Evictions))
	reg.Set("ctrl.writebacks", float64(r.Ctrl.Writebacks))
	reg.Set("ctrl.alias_hits", float64(r.Ctrl.AliasHits))
	return reg
}

// String renders a one-line summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s: IPC=%.3f L3hit=%.1f%% L3lat=%.1fcyc TLBmiss=%.2f%% E=%.3gJ EDP=%.3gJs",
		r.Workload, r.Design, r.IPC, r.L3HitRate*100, r.AvgL3Latency,
		r.TLBMissRate*100, r.Energy.TotalJ(), r.EDPJs)
	return b.String()
}
