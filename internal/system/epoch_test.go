package system

import (
	"testing"

	"taglessdram/internal/config"
	"taglessdram/internal/obs"
)

// runSampled runs one design with an attached epoch sampler.
func runSampled(t *testing.T, design config.L3Design, epochRefs uint64, instr uint64) *Result {
	t.Helper()
	cfg := scaledConfig(design, 6)
	w, err := SingleProgram("sphinx3", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachSampler(obs.NewSampler(epochRefs, 0))
	r, err := m.Run(instr, instr)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Epoch deltas must tile the measured window: every epoch covers exactly
// epochRefs references, cycles never run backwards, and the summed
// counter deltas never exceed the run totals (the tail after the last
// full epoch is the only part not covered).
func TestEpochsTileMeasuredWindow(t *testing.T) {
	const epochRefs = 2000
	for _, d := range []config.L3Design{config.Tagless, config.SRAMTag, config.NoL3} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			r := runSampled(t, d, epochRefs, 200_000)
			if len(r.Epochs) == 0 {
				t.Fatal("no epochs captured")
			}
			var refs, l3, hits, lookups, misses uint64
			var prevEnd uint64
			for i, e := range r.Epochs {
				if e.Index != i {
					t.Fatalf("epoch %d has index %d", i, e.Index)
				}
				if e.Refs != epochRefs {
					t.Fatalf("epoch %d covers %d refs, want %d", i, e.Refs, epochRefs)
				}
				if e.EndCycle < prevEnd {
					t.Fatalf("epoch %d ends at cycle %d, before previous end %d", i, e.EndCycle, prevEnd)
				}
				prevEnd = e.EndCycle
				refs += e.Refs
				l3 += e.L3Accesses
				hits += e.L3Hits
				lookups += e.TLBLookups
				misses += e.TLBMisses
			}
			if l3 > r.L3Accesses || hits > r.L3Hits {
				t.Errorf("epoch L3 sums %d/%d exceed run totals %d/%d", l3, hits, r.L3Accesses, r.L3Hits)
			}
			if lookups > r.TLBLookups || misses > r.TLBMisses {
				t.Errorf("epoch TLB sums %d/%d exceed run totals %d/%d", lookups, misses, r.TLBLookups, r.TLBMisses)
			}
			if r.References < refs {
				t.Errorf("epoch refs %d exceed processed references %d", refs, r.References)
			}
		})
	}
}

// The tagless design exposes free-pool gauges through org.GaugeSource;
// its epochs must carry a live free-block count (the controller keeps at
// least alpha blocks free, so zero means the gauge is not wired).
func TestEpochGaugesWired(t *testing.T) {
	r := runSampled(t, config.Tagless, 2000, 100_000)
	for _, e := range r.Epochs {
		if e.FreeBlocks > 0 {
			return
		}
	}
	t.Error("no epoch carries a positive free-block gauge on the tagless design")
}

// With no sampler attached, Result.Epochs stays nil.
func TestNoSamplerNoEpochs(t *testing.T) {
	r := runDesign(t, config.Tagless, "sphinx3", 50_000)
	if r.Epochs != nil || r.EpochsDropped != 0 {
		t.Fatalf("epochs without a sampler: %d/%d", len(r.Epochs), r.EpochsDropped)
	}
}
