package system

import (
	"testing"

	"taglessdram/internal/config"
	"taglessdram/internal/org"
)

// TestWritebackRouting drives a dirty on-die victim line through every
// registered organization and asserts the write-back traffic lands on the
// device the design routes it to: the in-package cache when the line's
// page (or block) is resident, off-package DRAM otherwise.
func TestWritebackRouting(t *testing.T) {
	const ps = config.PageSize
	type wb struct {
		name   string
		key    uint64
		wantIn bool
	}
	cases := []struct {
		design config.L3Design
		// prime issues write accesses that make the relevant page or
		// block resident before the write-back fires.
		prime []org.Request
		wbs   []wb
	}{
		{design: config.NoL3, wbs: []wb{
			{"always off-package", 0x1000, false},
		}},
		{design: config.BankInterleave, wbs: []wb{
			{"page 0 interleaves in-package", 0*ps + 64, true},
			{"page 1 interleaves off-package", 1*ps + 64, false},
		}},
		{design: config.SRAMTag,
			prime: []org.Request{{Frame: 5, Write: true}},
			wbs: []wb{
				{"resident page", 5*ps + 128, true},
				{"absent page", 7 * ps, false},
			}},
		{design: config.Tagless, wbs: []wb{
			{"cache-address key", 3*ps + 64, true},
			{"physical-address key", org.PABit | 0x2000, false},
		}},
		{design: config.Ideal, wbs: []wb{
			{"always in-package", 0x9000, true},
		}},
		{design: config.AlloyBlock,
			prime: []org.Request{{Key: 0x1000, Write: true}},
			wbs: []wb{
				{"resident block", 0x1000, true},
				{"absent block", 0x1040, false},
			}},
		{design: config.Banshee,
			// Two misses on page 5: the first bypasses, the second
			// reaches the fill threshold and installs the page.
			prime: []org.Request{
				{Key: 5 * ps, Frame: 5, Write: true},
				{Key: 5 * ps, Frame: 5, Write: true},
			},
			wbs: []wb{
				{"resident page", 5*ps + 64, true},
				{"absent page", 9 * ps, false},
			}},
	}
	for _, tc := range cases {
		t.Run(tc.design.String(), func(t *testing.T) {
			m := benchStepMachine(t, tc.design)
			cc := m.cores[0]
			for _, r := range tc.prime {
				r.CPU = cc.cpu
				m.org.Access(r)
			}
			var alloyLookups uint64
			if a, ok := m.org.(*org.Alloy); ok {
				alloyLookups = a.Cache().Lookups
			}
			for _, w := range tc.wbs {
				inBefore, offBefore := m.inPkg.BytesTransferred(), m.offPkg.BytesTransferred()
				m.org.Writeback(cc.cpu.Now(), w.key)
				inD := m.inPkg.BytesTransferred() - inBefore
				offD := m.offPkg.BytesTransferred() - offBefore
				if w.wantIn && (inD == 0 || offD != 0) {
					t.Errorf("%s: want in-package traffic, got in=%dB off=%dB", w.name, inD, offD)
				}
				if !w.wantIn && (offD == 0 || inD != 0) {
					t.Errorf("%s: want off-package traffic, got in=%dB off=%dB", w.name, inD, offD)
				}
			}
			// A write-back must route through MarkDirty, not a second
			// Lookup probe that would inflate the hit statistics.
			if a, ok := m.org.(*org.Alloy); ok {
				if got := a.Cache().Lookups; got != alloyLookups {
					t.Errorf("Writeback changed Alloy Lookups: %d -> %d", alloyLookups, got)
				}
			}
		})
	}
}
