package system

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"taglessdram/internal/cache"
	"taglessdram/internal/core"
	"taglessdram/internal/cpu"
	"taglessdram/internal/dram"
	"taglessdram/internal/mmu"
	"taglessdram/internal/org"
	"taglessdram/internal/sim"
	"taglessdram/internal/tlb"
	"taglessdram/internal/trace"
)

// This file is the warm-state checkpoint seam: after an accurate warm-up
// the whole machine — cores, TLBs, on-die caches, page tables, trace
// positions, DRAM bank state, the tagless controller's GIPT, the
// organization's design state — serializes to one gob stream, and an
// identically-configured fresh machine restores it and runs the measured
// phase as if the warm-up had just happened. Sweeps warm each (workload ×
// warm-up) pair once and fan the state out across designs sharing that
// pair's configuration.
//
// Checkpointing uses the Warmup/Measure pair instead of Run: Warmup
// quiesces the event kernel after the warm-up phase (in-flight fills and
// daemon evictions have no serialized form), which Run does not, so the
// exactness contract is Warmup+Measure ≡ Warmup+Save+Load+Measure —
// byte-identical Results — rather than equivalence with Run.

// checkpointMagic guards against feeding arbitrary gobs to LoadCheckpoint.
// v2: per-core PTE-cache state replaced by the machine-level walk-model
// snapshot, plus context-switch scheduler state.
const checkpointMagic = "taglesssim-checkpoint-v2"

type hotPair struct {
	VPN   uint64
	Count uint32
}

type sharedPair struct {
	VPN, PPN uint64
}

// coreCheckpoint is one core's serialized private state.
type coreCheckpoint struct {
	Active bool
	Table  int // index into checkpointState.Tables
	Group  int // index into checkpointState.SharedGens
	CPU    cpu.State
	TLB1   tlb.State
	TLB2   tlb.State
	L1       cache.State
	L2       cache.State
	Gen      trace.GenState
	HotCount []hotPair // sorted by VPN
}

// checkpointState is the machine's complete serialized state.
type checkpointState struct {
	Magic      string
	WarmedTo   uint64
	Refs       uint64
	Kernel     sim.KernelState
	InPkg      dram.DeviceState
	OffPkg     dram.DeviceState
	Alloc      mmu.AllocState
	Tables     []mmu.TableState
	Shared     []sharedPair // machine-wide shared-frame map, sorted by VPN
	GIPTCursor uint64
	SharedGens []trace.SharedState // one per generator thread group
	Cores      []coreCheckpoint
	Ctrl       *core.CtrlState // tagless controller, nil otherwise
	Org        []byte          // org.Snapshotter payload
	HasOrg     bool
	// VMWalk names the walk model that produced VM; restoring into a
	// machine with a different model is an error.
	VMWalk string
	VM     []byte
	// CtxCount/CtxRNG carry the context-switch scheduler, empty when
	// context switching is disabled.
	CtxCount []uint64
	CtxRNG   []uint64
}

// Warmup runs the warm-up phase cycle-accurately and quiesces the event
// kernel, leaving the machine in the serializable state SaveCheckpoint
// captures. Use the Warmup/Measure pair (not Run) when checkpointing.
func (m *Machine) Warmup(warmup uint64) error {
	if m.measuring {
		return fmt.Errorf("system: Warmup called after the measured phase began")
	}
	if err := m.runPhase(warmup); err != nil {
		return err
	}
	m.kernel.Run(0)
	if warmup > m.warmedTo {
		m.warmedTo = warmup
	}
	return nil
}

// Measure runs the measured phase after Warmup (or LoadCheckpoint) and
// collects the Result.
func (m *Machine) Measure(measure uint64) (*Result, error) {
	if measure == 0 {
		return nil, fmt.Errorf("system: measure phase must be positive")
	}
	target := m.warmedTo + measure
	if target < m.warmedTo {
		return nil, fmt.Errorf("system: warmup+measure overflows uint64 (warmup=%d measure=%d)", m.warmedTo, measure)
	}
	m.beginMeasurement()
	if err := m.runPhase(target); err != nil {
		return nil, err
	}
	for _, cc := range m.cores {
		cc.cpu.Drain()
	}
	m.kernel.Run(0)
	return m.collect(), nil
}

// distinctTables lists the active cores' page tables, deduplicated in
// core order (multi-threaded workloads share one table across cores).
// Construction is deterministic, so save and restore agree on indices.
func (m *Machine) distinctTables() []*mmu.PageTable {
	var out []*mmu.PageTable
	for _, cc := range m.cores {
		if !cc.active || cc.pt == nil {
			continue
		}
		dup := false
		for _, pt := range out {
			if pt == cc.pt {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, cc.pt)
		}
	}
	return out
}

// tableIndex returns pt's position in the distinct-table list.
func tableIndex(tables []*mmu.PageTable, pt *mmu.PageTable) int {
	for i, t := range tables {
		if t == pt {
			return i
		}
	}
	return -1
}

// buildCodec maps PTE pointers to stable (table, vpn) refs and back,
// using a reverse index built from the tables' current contents.
func buildCodec(tables []*mmu.PageTable) *core.PTECodec {
	rev := make(map[*mmu.PTE]core.PTERef)
	for ti, pt := range tables {
		ti := ti
		pt.Range(func(vpn uint64, pte *mmu.PTE) bool {
			rev[pte] = core.PTERef{Table: ti, VPN: vpn}
			return true
		})
	}
	return &core.PTECodec{
		Encode: func(p *mmu.PTE) (core.PTERef, bool) {
			r, ok := rev[p]
			return r, ok
		},
		Decode: func(r core.PTERef) *mmu.PTE {
			if r.Table < 0 || r.Table >= len(tables) {
				return nil
			}
			pte, ok := tables[r.Table].Lookup(r.VPN)
			if !ok {
				return nil
			}
			return pte
		},
	}
}

// SaveCheckpoint serializes the machine's post-warmup state. The machine
// must be quiesced (Warmup leaves it so) and must not have begun the
// measured phase; every core's trace source must be a synthetic
// generator (its stream position is part of the state).
func (m *Machine) SaveCheckpoint(w io.Writer) error {
	if m.measuring {
		return fmt.Errorf("system: checkpoint must be taken before the measured phase")
	}
	m.kernel.Run(0)
	kst, err := m.kernel.State()
	if err != nil {
		return fmt.Errorf("system: checkpoint: %w", err)
	}
	if m.ctrl != nil && !m.ctrl.Quiesced() {
		return fmt.Errorf("system: checkpoint: controller not quiesced")
	}

	tables := m.distinctTables()
	st := checkpointState{
		Magic:      checkpointMagic,
		WarmedTo:   m.warmedTo,
		Refs:       m.refs,
		Kernel:     kst,
		InPkg:      m.inPkg.State(),
		OffPkg:     m.offPkg.State(),
		Alloc:      m.alloc.State(),
		GIPTCursor: m.giptCursor,
	}
	for _, pt := range tables {
		st.Tables = append(st.Tables, pt.State())
	}
	for vpn, ppn := range m.sharedFrames {
		st.Shared = append(st.Shared, sharedPair{VPN: vpn, PPN: ppn})
	}
	sort.Slice(st.Shared, func(i, j int) bool { return st.Shared[i].VPN < st.Shared[j].VPN })

	// One shared-generator state per thread group, keyed by the first
	// core of the group.
	var groupReps []*trace.Generator
	groupOf := func(g *trace.Generator) int {
		for i, rep := range groupReps {
			if g.SharesGroup(rep) {
				return i
			}
		}
		groupReps = append(groupReps, g)
		return len(groupReps) - 1
	}

	for _, cc := range m.cores {
		ck := coreCheckpoint{Active: cc.active, Table: -1, Group: -1}
		if cc.active {
			if cc.vgen == nil {
				return fmt.Errorf("system: checkpoint: core %d trace source %T is not a synthetic generator", cc.id, cc.gen)
			}
			ck.Table = tableIndex(tables, cc.pt)
			ck.Group = groupOf(cc.vgen)
			ck.CPU = cc.cpu.State()
			ck.TLB1 = cc.tlbs.L1.State()
			ck.TLB2 = cc.tlbs.L2.State()
			ck.L1 = cc.l1.State()
			ck.L2 = cc.l2.State()
			ck.Gen = cc.vgen.State()
			for vpn, n := range cc.hotCount {
				ck.HotCount = append(ck.HotCount, hotPair{VPN: vpn, Count: n})
			}
			sort.Slice(ck.HotCount, func(i, j int) bool { return ck.HotCount[i].VPN < ck.HotCount[j].VPN })
		}
		st.Cores = append(st.Cores, ck)
	}
	for _, rep := range groupReps {
		st.SharedGens = append(st.SharedGens, rep.SharedState())
	}

	if m.ctrl != nil {
		cs, err := m.ctrl.Snapshot(buildCodec(tables))
		if err != nil {
			return fmt.Errorf("system: checkpoint: %w", err)
		}
		st.Ctrl = cs
	}
	if snap, ok := m.org.(org.Snapshotter); ok {
		data, err := snap.SnapshotOrg()
		if err != nil {
			return fmt.Errorf("system: checkpoint: %w", err)
		}
		st.Org, st.HasOrg = data, true
	}
	st.VMWalk = m.walk.Name()
	vmData, err := m.walk.Snapshot()
	if err != nil {
		return fmt.Errorf("system: checkpoint: %w", err)
	}
	st.VM = vmData
	if m.ctx != nil {
		st.CtxCount = append([]uint64(nil), m.ctx.Count...)
		st.CtxRNG = append([]uint64(nil), m.ctx.RNG...)
	}
	return gob.NewEncoder(w).Encode(&st)
}

// LoadCheckpoint restores state saved by SaveCheckpoint into a freshly
// built machine with the identical configuration and workload. Geometry
// mismatches (different cache sizes, core counts, designs) are errors.
func (m *Machine) LoadCheckpoint(rd io.Reader) (err error) {
	// The package-level SetState seams panic on geometry mismatches;
	// surface those as errors so a stale checkpoint file cannot crash a
	// sweep.
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("system: checkpoint restore: %v", p)
		}
	}()

	var st checkpointState
	if err := gob.NewDecoder(rd).Decode(&st); err != nil {
		return fmt.Errorf("system: checkpoint decode: %w", err)
	}
	if st.Magic != checkpointMagic {
		return fmt.Errorf("system: not a checkpoint stream (magic %q)", st.Magic)
	}
	if m.measuring || m.refs != 0 {
		return fmt.Errorf("system: checkpoint must be restored into a fresh machine")
	}
	if len(st.Cores) != len(m.cores) {
		return fmt.Errorf("system: checkpoint has %d cores, machine has %d", len(st.Cores), len(m.cores))
	}
	tables := m.distinctTables()
	if len(st.Tables) != len(tables) {
		return fmt.Errorf("system: checkpoint has %d page tables, machine has %d", len(st.Tables), len(tables))
	}
	if (st.Ctrl != nil) != (m.ctrl != nil) {
		return fmt.Errorf("system: checkpoint design does not match machine design %v", m.cfg.Design)
	}
	for i, cc := range m.cores {
		if st.Cores[i].Active != cc.active {
			return fmt.Errorf("system: checkpoint core %d active=%v, machine active=%v", i, st.Cores[i].Active, cc.active)
		}
	}

	if err := m.kernel.SetState(st.Kernel); err != nil {
		return fmt.Errorf("system: checkpoint restore: %w", err)
	}
	m.inPkg.SetState(st.InPkg)
	m.offPkg.SetState(st.OffPkg)
	m.alloc.SetState(st.Alloc)
	for i, pt := range tables {
		pt.SetState(st.Tables[i])
	}
	m.sharedFrames = make(map[uint64]uint64, len(st.Shared))
	for _, p := range st.Shared {
		m.sharedFrames[p.VPN] = p.PPN
	}
	m.giptCursor = st.GIPTCursor
	m.refs = st.Refs
	m.warmedTo = st.WarmedTo

	restoredGroups := make([]bool, len(st.SharedGens))
	for i, cc := range m.cores {
		ck := &st.Cores[i]
		if !cc.active {
			continue
		}
		if cc.vgen == nil {
			return fmt.Errorf("system: core %d trace source %T cannot restore a checkpoint", cc.id, cc.gen)
		}
		cc.cpu.SetState(ck.CPU)
		cc.tlbs.L1.SetState(ck.TLB1)
		cc.tlbs.L2.SetState(ck.TLB2)
		cc.l1.SetState(ck.L1)
		cc.l2.SetState(ck.L2)
		cc.vgen.SetState(ck.Gen)
		if ck.Group >= 0 && ck.Group < len(restoredGroups) && !restoredGroups[ck.Group] {
			cc.vgen.SetSharedState(st.SharedGens[ck.Group])
			restoredGroups[ck.Group] = true
		}
		if cc.hotCount != nil || len(ck.HotCount) > 0 {
			if cc.hotCount == nil {
				return fmt.Errorf("system: checkpoint core %d hot-filter mode does not match", i)
			}
			cc.hotCount = make(map[uint64]uint32, len(ck.HotCount))
			for _, h := range ck.HotCount {
				cc.hotCount[h.VPN] = h.Count
			}
		}
		// The last-translation memo holds a PTE pointer the table restore
		// invalidated.
		cc.memoVPN, cc.memoPTE = 0, nil
	}

	if st.Ctrl != nil {
		if err := m.ctrl.Restore(buildCodec(tables), st.Ctrl); err != nil {
			return fmt.Errorf("system: checkpoint restore: %w", err)
		}
	}
	if st.HasOrg {
		snap, ok := m.org.(org.Snapshotter)
		if !ok {
			return fmt.Errorf("system: checkpoint has organization state but %T cannot restore it", m.org)
		}
		if err := snap.RestoreOrg(st.Org); err != nil {
			return fmt.Errorf("system: checkpoint restore: %w", err)
		}
	}
	if st.VMWalk != m.walk.Name() {
		return fmt.Errorf("system: checkpoint walk model %q does not match machine walk model %q", st.VMWalk, m.walk.Name())
	}
	if err := m.walk.Restore(st.VM); err != nil {
		return fmt.Errorf("system: checkpoint restore: %w", err)
	}
	if (len(st.CtxCount) > 0) != (m.ctx != nil) {
		return fmt.Errorf("system: checkpoint context-switch mode does not match")
	}
	if m.ctx != nil {
		if len(st.CtxCount) != len(m.ctx.Count) || len(st.CtxRNG) != len(m.ctx.RNG) {
			return fmt.Errorf("system: checkpoint context-switch state has %d cores, machine has %d", len(st.CtxCount), len(m.ctx.Count))
		}
		copy(m.ctx.Count, st.CtxCount)
		copy(m.ctx.RNG, st.CtxRNG)
	}
	return nil
}
