package system

import (
	"fmt"

	"taglessdram/internal/config"
	"taglessdram/internal/org"
	"taglessdram/internal/sim"
	"taglessdram/internal/tlb"
	"taglessdram/internal/trace"
)

// Run executes the workload: every active core retires `warmup`
// instructions to populate caches and TLBs, statistics reset, and the
// measured phase runs for `measure` instructions per core.
func (m *Machine) Run(warmup, measure uint64) (*Result, error) {
	if measure == 0 {
		return nil, fmt.Errorf("system: measure phase must be positive")
	}
	// The phase target is the absolute instruction count warmup+measure;
	// validate it before the sum can wrap to a tiny (or huge) target.
	if warmup+measure < warmup {
		return nil, fmt.Errorf("system: warmup+measure overflows uint64 (warmup=%d measure=%d)", warmup, measure)
	}
	if err := m.runPhase(warmup); err != nil {
		return nil, err
	}
	m.beginMeasurement()
	if err := m.runPhase(warmup + measure); err != nil {
		return nil, err
	}
	// Let in-flight accesses and background evictions finish.
	for _, cc := range m.cores {
		cc.cpu.Drain()
	}
	m.kernel.Run(0)
	return m.collect(), nil
}

// runPhase advances every active core until it has retired `target`
// instructions, interleaving cores in simulated-time order. One runnable
// core needs no ordering at all; small machines use a linear min-scan;
// larger ones an indexed min-heap keyed by (core time, core id) — all three
// pick the same core at every step (minimal time, lowest id on ties), so
// the choice is a pure performance knob.
func (m *Machine) runPhase(target uint64) error {
	runnable := m.sched[:0]
	for _, cc := range m.cores {
		if cc.active && cc.cpu.Instructions < target {
			runnable = append(runnable, cc)
		}
	}
	m.sched = runnable
	switch {
	case len(runnable) == 0:
		return nil
	case len(runnable) == 1:
		cc := runnable[0]
		for cc.cpu.Instructions < target {
			if err := m.step(cc); err != nil {
				return err
			}
		}
		return nil
	case len(runnable) <= 4 || m.forceScan:
		return m.runPhaseScan(target)
	default:
		return m.runPhaseHeap(runnable, target)
	}
}

// nextCore picks the runnable core with the minimal clock (lowest id on
// ties — the scan keeps the first minimum), or nil once every core has
// retired target instructions.
func (m *Machine) nextCore(target uint64) *coreCtx {
	var next *coreCtx
	for _, cc := range m.cores {
		if !cc.active || cc.cpu.Instructions >= target {
			continue
		}
		if next == nil || cc.cpu.Now() < next.cpu.Now() {
			next = cc
		}
	}
	return next
}

// soloCore returns the single active core, or nil when zero or several
// cores are active.
func (m *Machine) soloCore() *coreCtx {
	var solo *coreCtx
	for _, cc := range m.cores {
		if !cc.active {
			continue
		}
		if solo != nil {
			return nil
		}
		solo = cc
	}
	return solo
}

// runPhaseScan is the O(cores) min-scan: cheapest for small machines.
func (m *Machine) runPhaseScan(target uint64) error {
	for {
		next := m.nextCore(target)
		if next == nil {
			return nil
		}
		if err := m.step(next); err != nil {
			return err
		}
	}
}

// runPhaseHeap interleaves many cores through an indexed min-heap. Only the
// stepped core's clock changes, so each step is one sift-down instead of a
// full rescan.
func (m *Machine) runPhaseHeap(h []*coreCtx, target uint64) error {
	less := func(a, b *coreCtx) bool {
		an, bn := a.cpu.Now(), b.cpu.Now()
		if an != bn {
			return an < bn
		}
		return a.id < b.id
	}
	siftDown := func(i int) {
		for {
			c := 2*i + 1
			if c >= len(h) {
				return
			}
			if r := c + 1; r < len(h) && less(h[r], h[c]) {
				c = r
			}
			if !less(h[c], h[i]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 1 {
		cc := h[0]
		if err := m.step(cc); err != nil {
			return err
		}
		if cc.cpu.Instructions >= target {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
	cc := h[0]
	for cc.cpu.Instructions < target {
		if err := m.step(cc); err != nil {
			return err
		}
	}
	return nil
}

// Steps advances the machine by n trace references, interleaving active
// cores in simulated-time order with no instruction target. It exists for
// benchmarks and profiling harnesses that meter the per-reference path.
func (m *Machine) Steps(n int) error {
	if solo := m.soloCore(); solo != nil {
		for i := 0; i < n; i++ {
			if err := m.step(solo); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		next := m.nextCore(^uint64(0))
		if next == nil {
			return nil
		}
		if err := m.step(next); err != nil {
			return err
		}
	}
	return nil
}

// Drain fires every pending kernel event (controller daemons, in-flight
// fills) without advancing any core. Benchmarks call it after warm-up so
// the measured window starts from a quiesced event queue.
func (m *Machine) Drain() {
	m.kernel.Run(0)
}

// beginMeasurement resets all statistics at the warmup/measure boundary,
// keeping microarchitectural state (cache contents, TLBs, row buffers).
func (m *Machine) beginMeasurement() {
	m.measuring = true
	m.inPkg.ResetStats()
	m.offPkg.ResetStats()
	for _, cc := range m.cores {
		cc.l1.ResetStats()
		cc.l2.ResetStats()
		cc.tlbs.L1.ResetStats()
		cc.tlbs.L2.ResetStats()
		cc.startCycle = cc.cpu.Now()
		cc.startInstr = cc.cpu.Instructions
	}
	m.l3Lat.Reset()
	m.handlerLat.Reset()
	for i := range m.kindLat {
		m.kindLat[i].Reset()
	}
	m.l3Accesses.Reset()
	m.l3Hits.Reset()
	m.tlbLookups.Reset()
	m.tlbMisses.Reset()
	m.ncAccesses.Reset()
	m.ctxSwitches = 0
	if m.tlbShared != nil {
		m.tlbShared.Invalidations = 0
	}
	m.rec.Reset()
	m.rec.Enable()
	m.org.ResetStats()
	if m.sampler != nil {
		// Epoch zero starts here: rebase the sampler's cumulative
		// baseline on the freshly reset counters.
		m.sampler.Rebase(m.cumulative())
	}
}

// step processes one trace reference on one core.
func (m *Machine) step(cc *coreCtx) error {
	a := cc.gen.Next()
	cc.cpu.Retire(a.Gap + 1)
	m.kernel.Advance(cc.cpu.Now())
	m.refs++
	// Epoch sampling: one pointer check when disabled; boundaries land
	// between references (the closing reference's effects count toward
	// the next epoch).
	if m.sampler != nil && m.measuring && m.sampler.Tick() {
		m.sampler.Record(m.cumulative())
	}
	// Context-switch pacing: Due counts per-core references, so the step
	// path (n=1) and the fast-forward path (n=batch) produce the same
	// switch schedule.
	if m.ctx != nil {
		for n := m.ctx.Due(cc.id, 1); n > 0; n-- {
			m.contextSwitch(cc, true)
		}
	}
	vpn := a.VAddr >> 12
	write := a.Write

	// Inter-process shared pages (Section 3.5): map the common frame on
	// first touch. Without the alias table, the tagless design marks them
	// non-cacheable to avoid aliasing; PA-indexed designs share naturally.
	if a.Shared {
		if _, ok := cc.lookup(vpn); !ok {
			ppn, err := m.sharedFrame(vpn)
			if err != nil {
				return err
			}
			pte, err := cc.pt.MapShared(vpn, ppn)
			if err != nil {
				return err
			}
			if m.ctrl != nil && !m.cfg.Tagless.SharedAliasTable {
				pte.NC = true
			}
		}
	}

	// Online hot-page filter (CHOP-style, cited as complementary): pages
	// start non-cacheable and earn cacheability after enough accesses.
	if cc.hotCount != nil && !a.Shared {
		n := cc.hotCount[vpn] + 1
		cc.hotCount[vpn] = n
		if n == 1 {
			if pte, err := cc.pt.Walk(vpn); err == nil && !pte.VC {
				pte.NC = true
			}
		} else if n == uint32(m.cfg.Tagless.HotFilterThreshold) {
			if pte, ok := cc.lookup(vpn); ok && pte.NC && !pte.VC {
				pte.NC = false
				// Shoot down the stale NC translation so the next miss
				// fills the now-hot page into the cache.
				cc.tlbs.Invalidate(vpn)
			}
		}
	}

	// In superpage mode the OS marks low-reuse (singleton) pages
	// non-cacheable unconditionally: caching them would over-fetch a
	// whole region for one block ("it would be safe to specify
	// superpages as non-cacheable", Section 3.5).
	if m.ctrl != nil && m.spPages > 1 && a.LowReuse {
		if pte, ok := cc.lookup(vpn); !ok || (!pte.VC && !pte.NC) {
			_ = cc.pt.SetNonCacheable(vpn)
		}
	}

	// Offline-profile non-cacheable classification (Section 5.4).
	if m.ctrl != nil && m.ncThreshold > 0 && a.LowReuse {
		if pte, ok := cc.lookup(vpn); !ok || (!pte.VC && !pte.NC) {
			// Best effort; a cached page stays cached.
			_ = cc.pt.SetNonCacheable(vpn)
		}
	}

	// 1. Address translation. In superpage mode, cacheable application
	// pages translate at region granularity: one cTLB entry per region.
	lookupKey := vpn
	superKey := false
	if m.spPages > 1 && vpn < trace.SingletonBase {
		if pte, ok := cc.lookup(vpn); !ok || pte.Super {
			lookupKey = spKeyBit | vpn>>m.spShift
			superKey = true
		}
	}
	entry, lvl := cc.tlbs.Lookup(lookupKey)
	m.tlbLookups.Inc()
	if lvl == tlb.InL2 && m.tlbShared != nil && m.ctrl != nil {
		// A shared-L2 hit refilled this core's L1 with a translation a
		// sibling installed: set this core's residence bit so the GIPT
		// keeps tracking every core that can hit the page.
		m.ctrl.NoteTLBResident(cc.id, entry)
	}
	if lvl == tlb.MissAll {
		m.tlbMisses.Inc()
		start := cc.cpu.Now()
		m.rec.Begin()
		var done sim.Tick
		if m.ctrl != nil {
			regionOff := a.VAddr & (config.PageSize - 1)
			if superKey {
				regionOff = (vpn&m.spMask)*config.PageSize + regionOff
			}
			e, d, kind, err := m.ctrl.HandleTLBMiss(start, cc.id, cc.pt, vpn, regionOff)
			if err != nil {
				return fmt.Errorf("system: core %d vpn %d: %w", cc.id, vpn, err)
			}
			entry, done = e, d
			// A superpage candidate resolved to a 4KB NC mapping keys at
			// 4KB granularity.
			if superKey && e.NC {
				lookupKey, superKey = vpn, false
			}
			if m.measuring {
				m.kindLat[kind].Observe(float64(d - start))
			}
		} else {
			pte, err := cc.pt.Walk(vpn)
			if err != nil {
				return fmt.Errorf("system: core %d vpn %d: %w", cc.id, vpn, err)
			}
			entry = tlb.Entry{Frame: pte.Frame}
			// The walk model attributes its own latency components.
			done = m.walk.Walk(start, cc.id, vpn)
		}
		cc.tlbs.Insert(lookupKey, entry)
		cc.cpu.Block(done)
		if m.measuring {
			m.handlerLat.Observe(float64(done - start))
		}
		m.rec.CommitHandler(done - start)
	}

	// 2. On-die cache key: cache addresses for cached pages in the
	// tagless design, physical addresses otherwise.
	offset := a.VAddr & (config.PageSize - 1)
	var key uint64
	switch {
	case m.ctrl != nil && !entry.NC && superKey:
		// Superpage region: Frame is the region CA.
		key = entry.Frame<<m.caShift + (vpn&m.spMask)*config.PageSize + offset
	case m.ctrl != nil && !entry.NC:
		key = entry.Frame*config.PageSize + offset // CA space
	case m.ctrl != nil:
		key = paBit | (entry.Frame*config.PageSize + offset)
		m.ncAccesses.Inc()
	default:
		key = entry.Frame*config.PageSize + offset // PA space
	}

	// 3. On-die caches (latency hidden by the out-of-order window).
	if hit, victim, hasVictim := cc.l1.Access(key, write); hit {
		return nil
	} else if hasVictim && victim.Dirty {
		// L1 write-back sinks into L2 (or memory when absent).
		if !cc.l2.MarkDirty(victim.Addr) {
			m.writebackBlock(cc, victim.Addr)
		}
	}
	if hit, victim, hasVictim := cc.l2.Access(key, write); hit {
		return nil
	} else if hasVictim && victim.Dirty {
		m.writebackBlock(cc, victim.Addr)
	}

	// 4. The L3 / memory access.
	m.l3Access(cc, entry, key, offset, write, a.Dependent)
	return nil
}

// l3Access hands an L2 miss to the organization.
func (m *Machine) l3Access(cc *coreCtx, entry tlb.Entry, key, offset uint64, write, dep bool) {
	if m.measuring {
		m.l3Accesses.Inc()
	}
	m.rec.Begin()
	m.org.Access(org.Request{
		CPU:    cc.cpu,
		Key:    key,
		Frame:  entry.Frame,
		Offset: offset,
		NC:     entry.NC,
		Write:  write,
		Dep:    dep,
	})
}

// observeL3 records one L3 access's device-side latency and hit/miss.
func (m *Machine) observeL3(d sim.Tick, hit bool) {
	if !m.measuring {
		return
	}
	m.l3Lat.Observe(float64(d))
	if hit {
		m.l3Hits.Inc()
	}
	m.rec.CommitL3(d)
}

// writebackBlock sinks a dirty on-die victim line into the level below,
// off the core's critical path (device traffic only).
func (m *Machine) writebackBlock(cc *coreCtx, key uint64) {
	m.org.Writeback(cc.cpu.Now(), key)
}
