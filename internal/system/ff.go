package system

import (
	"fmt"

	"taglessdram/internal/config"
	"taglessdram/internal/org"
	"taglessdram/internal/tlb"
	"taglessdram/internal/trace"
)

// This file is the functional fast-forward path: a second per-reference
// engine that applies every state transition of step — TLB contents,
// page-table classification, on-die cache residence and dirtiness, the
// organization's tag/replacement state, the tagless controller's GIPT —
// while skipping everything timing: no kernel events, no DRAM accesses,
// no MSHR/stall modeling, no latency attribution. Fills and evictions
// complete immediately (no in-flight windows), each core's clock advances
// at issue width, and statistics counters are rolled back afterwards, so
// a fast-forwarded span warms state without perturbing measured-window
// statistics. The documented approximations — compressed timescales in
// recency state, no PendingEvict rescue window, one LRU touch per block
// instead of one per reference — are absorbed by the sampling error bound
// the accuracy tests enforce.
//
// The engine consumes whole page visits (trace.NextVisit) when a core's
// source is a *trace.Generator standing at a visit boundary, collapsing a
// visit's E references into one TLB lookup and one cache access per
// distinct block; any other position or source falls back to synthesizing
// single-reference visits from Next, which keeps fast-forward available
// (just slower) for arbitrary sources and mid-visit entry points.

// ffCoreSaved holds one core's statistics counters across a
// fast-forwarded span.
type ffCoreSaved struct {
	l1, l2       [4]uint64
	tlbL1, tlbL2 [4]uint64
	ptWalks      uint64
	ptFaults     uint64
}

// ffBegin quiesces the event kernel (fast-forward cannot represent
// in-flight work) and snapshots every counter the span would otherwise
// pollute. It returns an error when the organization has no fast path.
func (m *Machine) ffBegin() error {
	if m.fast == nil {
		return fmt.Errorf("system: organization %T does not implement org.FastPath", m.org)
	}
	m.kernel.Run(0)
	if m.ctrl != nil && !m.ctrl.Quiesced() {
		return fmt.Errorf("system: controller not quiesced after kernel drain")
	}
	if m.ffSave == nil {
		m.ffSave = make([]ffCoreSaved, len(m.cores))
	}
	m.ffEpoch++ // expire every ffFilt entry from earlier spans
	for i, cc := range m.cores {
		if !cc.active {
			continue
		}
		if cc.ffFilt == nil {
			n := 1
			for n*2 <= cc.l2.Config().Sets()*cc.l2.Config().Ways {
				n *= 2
			}
			cc.ffFilt = make([]uint64, n)
			cc.ffMask = uint64(n - 1)
			for cc.ffLog = 0; n>>cc.ffLog != 1; cc.ffLog++ {
			}
		}
		s := &m.ffSave[i]
		s.l1, s.l2 = cc.l1.Counters(), cc.l2.Counters()
		s.tlbL1, s.tlbL2 = cc.tlbs.L1.Counters(), cc.tlbs.L2.Counters()
		s.ptWalks, s.ptFaults = cc.pt.Walks, cc.pt.PageFaults
	}
	m.fast.FastBegin()
	return nil
}

// ffEnd restores the counters captured by ffBegin.
func (m *Machine) ffEnd() {
	for i, cc := range m.cores {
		if !cc.active {
			continue
		}
		s := &m.ffSave[i]
		cc.l1.SetCounters(s.l1)
		cc.l2.SetCounters(s.l2)
		cc.tlbs.L1.SetCounters(s.tlbL1)
		cc.tlbs.L2.SetCounters(s.tlbL2)
		cc.pt.Walks, cc.pt.PageFaults = s.ptWalks, s.ptFaults
	}
	m.fast.FastEnd()
}

// fetchVisit fills v with the core's next page visit: whole visits from a
// generator at a visit boundary, synthesized single-reference visits
// otherwise (mid-visit entry after an accurate window, or a non-generator
// source).
func fetchVisit(cc *coreCtx, v *trace.Visit) {
	if cc.vgen != nil && cc.vgen.AtVisitBoundary() {
		cc.vgen.NextVisit(v)
		return
	}
	a := cc.gen.Next()
	v.Page = a.VAddr >> 12
	v.FirstBlock = int(a.VAddr>>6) & 63
	v.Blocks = 1
	v.Refs = 1
	v.Instr = uint64(a.Gap) + 1
	v.LowReuse = a.LowReuse
	v.Shared = a.Shared
	if a.Write {
		v.AnyWrite, v.FirstWrite = 1, 1
	} else {
		v.AnyWrite, v.FirstWrite = 0, 0
	}
}

// FastForwardRefs advances the machine by at least n trace references on
// the functional fast path, interleaving active cores in simulated-time
// order (the same minimal-clock rule runPhase uses). Visits are atomic,
// so the span may overshoot n by up to one visit. The kernel is drained
// first; counters are restored on return.
func (m *Machine) FastForwardRefs(n uint64) error {
	return m.fastForward(n, ^uint64(0))
}

// fastForward advances by at least n references, stopping early once
// every active core has retired instrTarget instructions.
func (m *Machine) fastForward(n, instrTarget uint64) error {
	if err := m.ffBegin(); err != nil {
		return err
	}
	defer m.ffEnd()
	var v trace.Visit
	var done uint64
	if solo := m.soloCore(); solo != nil {
		for done < n && solo.cpu.Instructions < instrTarget {
			fetchVisit(solo, &v)
			if err := m.ffVisit(solo, &v); err != nil {
				return err
			}
			done += v.Refs
		}
		return nil
	}
	for done < n {
		cc := m.nextCore(instrTarget)
		if cc == nil {
			return nil
		}
		fetchVisit(cc, &v)
		if err := m.ffVisit(cc, &v); err != nil {
			return err
		}
		done += v.Refs
	}
	return nil
}

// ffVisit applies one page visit's state transitions: retirement, shared
// mapping, hot-filter and non-cacheable classification, one TLB
// resolution, and per-block on-die cache and organization updates.
func (m *Machine) ffVisit(cc *coreCtx, v *trace.Visit) error {
	cc.cpu.Retire(int(v.Instr))
	m.refs += v.Refs
	// Context-switch pacing: same per-core reference counting as step, so
	// the switch schedule is identical across paths (untimed here — state
	// effects only).
	if m.ctx != nil {
		for n := m.ctx.Due(cc.id, v.Refs); n > 0; n-- {
			m.contextSwitch(cc, false)
		}
	}
	now := cc.cpu.Now()
	vpn := v.Page

	// Inter-process shared pages: map the common frame on first touch
	// (step's per-reference check is idempotent after the first).
	if v.Shared {
		if _, ok := cc.lookup(vpn); !ok {
			ppn, err := m.sharedFrame(vpn)
			if err != nil {
				return err
			}
			pte, err := cc.pt.MapShared(vpn, ppn)
			if err != nil {
				return err
			}
			if m.ctrl != nil && !m.cfg.Tagless.SharedAliasTable {
				pte.NC = true
			}
		}
	}

	// Online hot-page filter, batched: the visit's E references all land
	// on one page, so apply both threshold crossings (first touch marks
	// non-cacheable, the HotFilterThreshold-th access clears it) in the
	// order the per-reference path would.
	if cc.hotCount != nil && !v.Shared {
		old := cc.hotCount[vpn]
		n := old + uint32(v.Refs)
		cc.hotCount[vpn] = n
		if old == 0 {
			if pte, err := cc.pt.Walk(vpn); err == nil && !pte.VC {
				pte.NC = true
			}
		}
		if thr := uint32(m.cfg.Tagless.HotFilterThreshold); old < thr && n >= thr {
			if pte, ok := cc.lookup(vpn); ok && pte.NC && !pte.VC {
				pte.NC = false
				cc.tlbs.Invalidate(vpn)
			}
		}
	}

	// Low-reuse non-cacheable classification (idempotent; once per visit).
	if m.ctrl != nil && v.LowReuse && (m.spPages > 1 || m.ncThreshold > 0) {
		if pte, ok := cc.lookup(vpn); !ok || (!pte.VC && !pte.NC) {
			_ = cc.pt.SetNonCacheable(vpn)
		}
	}

	// Address translation: one cTLB resolution covers the whole visit
	// (repeats would hit the just-inserted entry on the accurate path).
	lookupKey := vpn
	superKey := false
	if m.spPages > 1 && vpn < trace.SingletonBase {
		if pte, ok := cc.lookup(vpn); !ok || pte.Super {
			lookupKey = spKeyBit | vpn>>m.spShift
			superKey = true
		}
	}
	entry, lvl := cc.tlbs.Lookup(lookupKey)
	if lvl == tlb.InL2 && m.tlbShared != nil && m.ctrl != nil {
		// Shared-L2 refill parity with step: the sibling-installed
		// translation now sits in this core's L1.
		m.ctrl.NoteTLBResident(cc.id, entry)
	}
	if lvl == tlb.MissAll {
		if m.ctrl != nil {
			e, err := m.ctrl.FastTLBMiss(now, cc.id, cc.pt, vpn)
			if err != nil {
				return fmt.Errorf("system: core %d vpn %d: %w", cc.id, vpn, err)
			}
			entry = e
			if superKey && e.NC {
				lookupKey, superKey = vpn, false
			}
		} else {
			pte, err := cc.pt.Walk(vpn)
			if err != nil {
				return fmt.Errorf("system: core %d vpn %d: %w", cc.id, vpn, err)
			}
			entry = tlb.Entry{Frame: pte.Frame}
		}
		cc.tlbs.Insert(lookupKey, entry)
	}

	// Per-block on-die cache state: one access per distinct block. The
	// on-die hierarchy's filtering is load-bearing even on the fast path —
	// without it every visit block would reach the organization, keeping
	// hot DRAM-cache state artificially recent and biasing sampled IPC —
	// but full set-associative L1+L2 accesses cost more than the rest of
	// the fast path combined, so a direct-mapped presence filter of the
	// hierarchy's (L2) capacity stands in: filter hits cost one array
	// probe, the way on-die hits would cost no L3 traffic, and dirtiness
	// is applied to the L2 eagerly (the visit's any-write bit, the state
	// an L1 victim's eventual write-back would leave). Filter misses still
	// perform the real L2 access, so L2 contents keep warming with
	// exactly the fill traffic that would change them. The visit's blocks
	// share one page, so the key differs only in the block offset: hoist
	// the page base out of the loop.
	var keyBase uint64
	switch {
	case m.ctrl != nil && !entry.NC && superKey:
		keyBase = entry.Frame<<m.caShift + (vpn&m.spMask)*config.PageSize
	case m.ctrl != nil && entry.NC:
		keyBase = paBit | (entry.Frame * config.PageSize)
	default:
		keyBase = entry.Frame * config.PageSize
	}
	// Memo slot layout: bit 63 is the span-local "dirtiness applied"
	// flag, bits 62..32 a 31-bit block tag, bits 31..0 the span epoch.
	const ffDirtyBit = uint64(1) << 63
	epoch := uint64(m.ffEpoch)
	filt, mask, flog := cc.ffFilt, cc.ffMask, cc.ffLog
	fwBits, awBits := v.FirstWrite, v.AnyWrite
	block := keyBase/config.BlockSize + uint64(v.FirstBlock)
	for j := 0; j < v.Blocks; j, block, fwBits, awBits = j+1, block+1, fwBits>>1, awBits>>1 {
		blockOff := uint64(v.FirstBlock+j) * config.BlockSize
		key := keyBase + blockOff
		fw := fwBits&1 == 1
		aw := awBits&1 == 1
		slot := &filt[block&mask]
		want := uint64(uint32(block>>flog)&0x7fffffff)<<32 | epoch
		if *slot&^ffDirtyBit == want {
			// Memoized this span: the block is on-die, so the L2 is not
			// touched, except that the block's first write must reach it
			// as dirtiness. Later writes are free — the line is dirty (or
			// its write-back issued) already, exactly one write-back per
			// dirty block per span, which is what the accurate path's
			// victim traffic converges to.
			if aw && *slot&ffDirtyBit == 0 {
				*slot |= ffDirtyBit
				if !cc.l2.MarkDirty(key) {
					m.fast.FastWriteback(now, key)
				}
			}
			continue
		}
		if aw {
			// The real access below installs (or refreshes) the line
			// dirty, so the per-span dirtiness is already applied.
			*slot = want | ffDirtyBit
		} else {
			*slot = want
		}
		if hit, victim, hasVictim := cc.l2.Access(key, aw); hit {
			continue
		} else if hasVictim && victim.Dirty {
			m.fast.FastWriteback(now, victim.Addr)
		}
		m.fast.FastAccess(org.FastRequest{
			At: now, Key: key, Frame: entry.Frame, Offset: blockOff,
			NC: entry.NC, Write: fw,
		})
	}
	return nil
}
