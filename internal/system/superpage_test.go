package system

import (
	"testing"

	"taglessdram/internal/config"
)

func superConfig() *config.SystemConfig {
	cfg := scaledConfig(config.Tagless, 6)
	cfg.Tagless.SuperpagePages = 8 // 2MB at paper scale
	return cfg
}

func TestSuperpagesExtendTLBReach(t *testing.T) {
	w, _ := SingleProgram("mcf", 6, 1)
	base := run(t, scaledConfig(config.Tagless, 6), w, 800000, 800000)
	w2, _ := SingleProgram("mcf", 6, 1)
	sp := run(t, superConfig(), w2, 800000, 800000)
	if sp.TLBMissRate >= base.TLBMissRate {
		t.Fatalf("superpages did not cut the cTLB miss rate: %.4f vs %.4f",
			sp.TLBMissRate, base.TLBMissRate)
	}
}

func TestSuperpagesGuaranteedHitHolds(t *testing.T) {
	// Cacheable accesses still always hit; the only misses are the NC
	// singleton accesses the superpage policy deliberately bypasses.
	w, _ := SingleProgram("sphinx3", 6, 1)
	r := run(t, superConfig(), w, 600000, 600000)
	misses := r.L3Accesses - r.L3Hits
	if misses > r.NCAccesses {
		t.Fatalf("%d L3 misses but only %d NC accesses: a cacheable access missed",
			misses, r.NCAccesses)
	}
}

func TestSuperpagesAmplifyOverFetch(t *testing.T) {
	// A first-touch-dominated program fetches whole regions per touch:
	// off-package traffic must grow substantially (Section 6's warning).
	w, _ := SingleProgram("GemsFDTD", 6, 1)
	base := run(t, scaledConfig(config.Tagless, 6), w, 600000, 600000)
	w2, _ := SingleProgram("GemsFDTD", 6, 1)
	sp := run(t, superConfig(), w2, 600000, 600000)
	if sp.OffPkgBytes <= base.OffPkgBytes {
		t.Fatalf("superpages did not amplify over-fetch: %d vs %d",
			sp.OffPkgBytes, base.OffPkgBytes)
	}
}

func TestSuperpagesSingletonsStayNC(t *testing.T) {
	// Low-reuse pages must bypass the cache under superpages (the OS
	// safety valve), showing up as NC accesses.
	w, _ := SingleProgram("GemsFDTD", 6, 1)
	r := run(t, superConfig(), w, 600000, 600000)
	if r.NCAccesses == 0 {
		t.Fatal("no NC accesses: singletons were cached as whole regions")
	}
}

func TestSuperpagesInvariantsAndEvictions(t *testing.T) {
	cfg := superConfig()
	cfg.CacheSize = 2 * config.MB // 64 regions: force region evictions
	w, _ := SingleProgram("milc", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(800000, 800000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ctrl.Evictions == 0 {
		t.Fatal("no region evictions despite tiny cache")
	}
	if err := m.ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSuperpageConfigValidation(t *testing.T) {
	cfg := superConfig()
	cfg.Tagless.SuperpagePages = 7 // not a power of two
	if err := cfg.Validate(); err == nil {
		t.Error("non-power-of-two superpage accepted")
	}
	cfg = superConfig()
	cfg.Tagless.SuperpagePages = 8192 // larger than the cache page count? no: not dividing
	cfg.CacheSize = 4096 * config.PageSize
	if cfg.CachePages()%cfg.Tagless.SuperpagePages == 0 {
		cfg.Tagless.SuperpagePages = 4096*2 + 2 // force non-divisor
	}
	cfg = superConfig()
	cfg.Tagless.HotFilterThreshold = 4
	if err := cfg.Validate(); err == nil {
		t.Error("hot filter + superpages accepted")
	}
}

func TestSuperpageDeterminism(t *testing.T) {
	mk := func() *Result {
		w, _ := SingleProgram("lbm", 6, 1)
		return run(t, superConfig(), w, 300000, 300000)
	}
	a, b := mk(), mk()
	if a.Cycles != b.Cycles || a.OffPkgBytes != b.OffPkgBytes {
		t.Fatal("superpage simulation not deterministic")
	}
}

func TestMemoryWalkModel(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	cfg.MemoryWalk = true
	w, _ := SingleProgram("mcf", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(600000, 600000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Fatal("memory-walk run failed")
	}
	// The walk cache must see traffic and get some hits (walks cluster on
	// hot page-table lines).
	ws, ok := m.walk.(interface {
		WalkCacheStats(core int) (accesses, hits uint64)
	})
	if !ok {
		t.Fatalf("MemoryWalk selected walk model %q with no walk cache", m.walk.Name())
	}
	accesses, hits := ws.WalkCacheStats(0)
	if accesses == 0 {
		t.Fatal("walk cache unused under the memory-walk model")
	}
	if hits == 0 {
		t.Fatal("walk cache never hit; walk locality not modeled")
	}
}

func TestMemoryWalkForConventionalDesigns(t *testing.T) {
	cfg := scaledConfig(config.SRAMTag, 6)
	cfg.MemoryWalk = true
	w, _ := SingleProgram("mcf", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(400000, 400000); err != nil {
		t.Fatal(err)
	}
	ws, ok := m.walk.(interface {
		WalkCacheStats(core int) (accesses, hits uint64)
	})
	if !ok {
		t.Fatalf("MemoryWalk selected walk model %q with no walk cache", m.walk.Name())
	}
	if accesses, _ := ws.WalkCacheStats(0); accesses == 0 {
		t.Fatal("conventional design skipped the memory walk")
	}
}
