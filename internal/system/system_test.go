package system

import (
	"strings"
	"testing"

	"taglessdram/internal/config"
	"taglessdram/internal/trace"
)

// run is a helper building and running one machine.
func run(t *testing.T, cfg *config.SystemConfig, w Workload, warm, meas uint64) *Result {
	t.Helper()
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(warm, meas)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWorkloadBuilders(t *testing.T) {
	w, err := SingleProgram("sphinx3", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.PerCore) != 4 || w.MultiThreaded {
		t.Fatalf("single-program workload = %+v", w)
	}
	w, err = Mix("MIX5", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.PerCore) != 4 {
		t.Fatalf("mix has %d programs", len(w.PerCore))
	}
	names := []string{w.PerCore[0].Name, w.PerCore[1].Name, w.PerCore[2].Name, w.PerCore[3].Name}
	if strings.Join(names, "-") != "mcf-soplex-GemsFDTD-lbm" {
		t.Fatalf("MIX5 programs = %v", names)
	}
	w, err = MultiThread("streamcluster", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !w.MultiThreaded || len(w.PerCore) != 1 {
		t.Fatalf("multi-thread workload = %+v", w)
	}
}

func TestWorkloadBuilderErrors(t *testing.T) {
	if _, err := SingleProgram("nonesuch", 6, 1); err == nil {
		t.Error("unknown program accepted")
	}
	if _, err := Mix("MIX99", 6, 1); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := MultiThread("nonesuch", 6, 1); err == nil {
		t.Error("unknown parsec accepted")
	}
	if _, err := SingleProgramOn("sphinx3", 0, 6, 1); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestWorkloadValidate(t *testing.T) {
	var w Workload
	if err := w.Validate(); err == nil {
		t.Error("empty workload accepted")
	}
	w = Workload{Name: "x"}
	if err := w.Validate(); err == nil {
		t.Error("workload with no programs accepted")
	}
	p, _ := trace.ProfileByName("sphinx3")
	w = Workload{Name: "x", PerCore: []trace.Profile{p, p}, MultiThreaded: true}
	if err := w.Validate(); err == nil {
		t.Error("multi-threaded workload with two profiles accepted")
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	p, _ := trace.ProfileByName("sphinx3")
	w := Workload{Name: "too-many", PerCore: []trace.Profile{p, p, p, p, p}, Seed: 1}
	if _, err := New(cfg, w); err == nil {
		t.Error("5 programs on 4 cores accepted")
	}
	bad := scaledConfig(config.Tagless, 6)
	bad.CPU.Cores = 0
	w2, _ := SingleProgram("sphinx3", 6, 1)
	if _, err := New(bad, w2); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunRequiresMeasure(t *testing.T) {
	cfg := scaledConfig(config.NoL3, 6)
	w, _ := SingleProgram("sphinx3", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10, 0); err == nil {
		t.Fatal("zero measure accepted")
	}
}

// TestRunRejectsOverflow guards the phase-target arithmetic: warmup+measure
// is an absolute instruction count, and a wrapping sum would silently run a
// tiny (or endless) measured phase instead of the requested one.
func TestRunRejectsOverflow(t *testing.T) {
	cfg := scaledConfig(config.NoL3, 6)
	w, _ := SingleProgram("sphinx3", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(^uint64(0), 2); err == nil {
		t.Fatal("overflowing warmup+measure accepted")
	}
	if err := m.Warmup(10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MeasureSampled(^uint64(0), SampleSpec{WindowRefs: 100, PeriodRefs: 1000}); err == nil {
		t.Fatal("overflowing sampled measure accepted")
	}
}

// TestHeadlineOrdering pins the paper's central claim at reduced budgets:
// the tagless cache outperforms the SRAM-tag cache, both beat the NoL3
// baseline, and Ideal bounds everything (Figure 7 shape, sphinx3).
func TestHeadlineOrdering(t *testing.T) {
	ipc := map[config.L3Design]float64{}
	for _, d := range config.AllDesigns() {
		r := runDesign(t, d, "sphinx3", 1500000)
		ipc[d] = r.IPC
	}
	if !(ipc[config.NoL3] < ipc[config.SRAMTag]) {
		t.Errorf("SRAM (%.2f) should beat NoL3 (%.2f)", ipc[config.SRAMTag], ipc[config.NoL3])
	}
	if !(ipc[config.SRAMTag] < ipc[config.Tagless]) {
		t.Errorf("tagless (%.2f) should beat SRAM-tag (%.2f)", ipc[config.Tagless], ipc[config.SRAMTag])
	}
	if !(ipc[config.Tagless] < ipc[config.Ideal]*1.02) {
		t.Errorf("Ideal (%.2f) should bound tagless (%.2f)", ipc[config.Ideal], ipc[config.Tagless])
	}
}

// TestTaglessGuaranteedHit: with the tagless design, every L3 access after
// a cTLB hit lands in-package — the design's defining property.
func TestTaglessGuaranteedHit(t *testing.T) {
	r := runDesign(t, config.Tagless, "sphinx3", 400000)
	if r.L3HitRate != 1.0 {
		t.Fatalf("tagless L3 hit rate = %v, want exactly 1 (cTLB hit guarantees a cache hit)", r.L3HitRate)
	}
}

func TestTaglessLowerL3LatencyThanSRAM(t *testing.T) {
	rs := runDesign(t, config.SRAMTag, "sphinx3", 1500000)
	rt := runDesign(t, config.Tagless, "sphinx3", 1500000)
	if rt.AvgL3Latency >= rs.AvgL3Latency {
		t.Fatalf("tagless L3 latency %.1f not below SRAM-tag %.1f (Figure 8)",
			rt.AvgL3Latency, rs.AvgL3Latency)
	}
}

func TestTaglessBetterEDP(t *testing.T) {
	rs := runDesign(t, config.SRAMTag, "sphinx3", 1500000)
	rt := runDesign(t, config.Tagless, "sphinx3", 1500000)
	if rt.EDPJs >= rs.EDPJs {
		t.Fatalf("tagless EDP %.3g not below SRAM-tag %.3g", rt.EDPJs, rs.EDPJs)
	}
}

func TestControllerInvariantsAfterRun(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	w, _ := SingleProgram("mcf", 6, 3) // exceeds TLB reach, causes evictions
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(400000, 400000); err != nil {
		t.Fatal(err)
	}
	if err := m.ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVictimHitsOccur(t *testing.T) {
	// mcf's per-copy footprint exceeds the TLB reach, so pages fall out
	// of the cTLB and are re-found in the victim cache.
	r := runDesign(t, config.Tagless, "mcf", 1000000)
	if r.Ctrl.VictimHits == 0 {
		t.Fatal("no victim hits despite footprint exceeding TLB reach")
	}
	if r.Ctrl.ColdFills == 0 {
		t.Fatal("no cold fills at all")
	}
}

func TestEvictionsUnderPressure(t *testing.T) {
	// milc's aggregate footprint exceeds the cache: the free queue and
	// eviction daemon must be active, and α must be maintained.
	cfg := scaledConfig(config.Tagless, 6)
	cfg.CacheSize = 2 * config.MB // 512 pages: footprint far exceeds it
	w, _ := SingleProgram("milc", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(1000000, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ctrl.Evictions == 0 {
		t.Fatal("no evictions despite footprint exceeding cache capacity")
	}
	if m.ctrl.FreeBlocks() < cfg.Tagless.Alpha {
		t.Fatalf("free blocks %d below α=%d after run", m.ctrl.FreeBlocks(), cfg.Tagless.Alpha)
	}
	if err := m.ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyWritebacksReachOffPackage(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	cfg.CacheSize = 2 * config.MB
	w, _ := SingleProgram("milc", 6, 1) // write fraction 0.30 + evictions
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(1000000, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ctrl.Writebacks == 0 {
		t.Fatal("no dirty write-backs despite stores and evictions")
	}
}

func TestMultiThreadedSharesPageTable(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	w, _ := MultiThread("streamcluster", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// All cores share one page table (no aliasing — Section 3.5).
	pt := m.cores[0].pt
	for _, cc := range m.cores {
		if cc.pt != pt {
			t.Fatal("multi-threaded cores have private page tables")
		}
	}
	if _, err := m.Run(200000, 200000); err != nil {
		t.Fatal(err)
	}
}

func TestMixHasPrivateAddressSpaces(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	w, _ := Mix("MIX1", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[interface{}]bool{}
	for _, cc := range m.cores {
		if seen[cc.pt] {
			t.Fatal("mix cores share a page table")
		}
		seen[cc.pt] = true
	}
}

func TestNonCacheableClassification(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	cfg.Tagless.NCAccessThreshold = 32
	w, _ := SingleProgram("GemsFDTD", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(600000, 600000)
	if err != nil {
		t.Fatal(err)
	}
	if r.NCAccesses == 0 {
		t.Fatal("no non-cacheable accesses despite classification enabled")
	}
	if r.Ctrl.NonCacheable == 0 {
		t.Fatal("handler never saw a non-cacheable page")
	}
}

func TestNCReducesOffPackageTraffic(t *testing.T) {
	base := runDesign(t, config.Tagless, "GemsFDTD", 1000000)
	cfg := scaledConfig(config.Tagless, 6)
	cfg.Tagless.NCAccessThreshold = 32
	w, _ := SingleProgram("GemsFDTD", 6, 1)
	r := run(t, cfg, w, 1000000, 1000000)
	if r.OffPkgBytes >= base.OffPkgBytes {
		t.Fatalf("NC pages should cut off-package traffic: %d vs %d",
			r.OffPkgBytes, base.OffPkgBytes)
	}
}

func TestLRUPolicyRuns(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	cfg.CacheSize = 2 * config.MB
	cfg.Tagless.Policy = config.LRU
	w, _ := SingleProgram("milc", 6, 1)
	r := run(t, cfg, w, 500000, 500000)
	if r.IPC <= 0 || r.Ctrl.Evictions == 0 {
		t.Fatalf("LRU run: IPC=%v evictions=%d", r.IPC, r.Ctrl.Evictions)
	}
}

func TestSynchronousEvictionAblationSlower(t *testing.T) {
	mk := func(sync bool) float64 {
		cfg := scaledConfig(config.Tagless, 6)
		cfg.Tagless.SynchronousEviction = sync
		w, _ := SingleProgram("milc", 6, 1)
		return run(t, cfg, w, 800000, 800000).IPC
	}
	async, syncIPC := mk(false), mk(true)
	if syncIPC > async*1.01 {
		t.Fatalf("synchronous eviction (%.3f) should not beat async (%.3f)", syncIPC, async)
	}
}

func TestCachedGIPTAblationFaster(t *testing.T) {
	mk := func(cached bool) float64 {
		cfg := scaledConfig(config.Tagless, 6)
		cfg.Tagless.CachedGIPT = cached
		w, _ := SingleProgram("milc", 6, 1)
		return run(t, cfg, w, 800000, 800000).IPC
	}
	conservative, cached := mk(false), mk(true)
	if cached < conservative {
		t.Fatalf("cached GIPT (%.3f) should not be slower than conservative (%.3f)",
			cached, conservative)
	}
}

func TestBankInterleaveFraction(t *testing.T) {
	cfg := scaledConfig(config.BankInterleave, 6)
	w, _ := SingleProgram("sphinx3", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(400000, 400000)
	if err != nil {
		t.Fatal(err)
	}
	// 1GB of 9GB total: ≈1/9 of L3 accesses served in-package.
	if r.L3HitRate < 0.08 || r.L3HitRate > 0.15 {
		t.Fatalf("BI in-package fraction = %v, want ≈1/9", r.L3HitRate)
	}
}

func TestIdealAllInPackage(t *testing.T) {
	r := runDesign(t, config.Ideal, "sphinx3", 400000)
	if r.OffPkgBytes != 0 {
		t.Fatalf("Ideal moved %d bytes off-package", r.OffPkgBytes)
	}
	if r.L3HitRate != 1.0 {
		t.Fatalf("Ideal hit rate = %v", r.L3HitRate)
	}
}

func TestNoL3AllOffPackage(t *testing.T) {
	r := runDesign(t, config.NoL3, "sphinx3", 400000)
	if r.InPkgBytes != 0 {
		t.Fatalf("NoL3 moved %d bytes in-package", r.InPkgBytes)
	}
	if r.L3HitRate != 0 {
		t.Fatalf("NoL3 hit rate = %v", r.L3HitRate)
	}
}

func TestDeterminism(t *testing.T) {
	r1 := runDesign(t, config.Tagless, "sphinx3", 300000)
	r2 := runDesign(t, config.Tagless, "sphinx3", 300000)
	if r1.Cycles != r2.Cycles || r1.Instructions != r2.Instructions ||
		r1.L3Accesses != r2.L3Accesses || r1.Energy.TotalJ() != r2.Energy.TotalJ() {
		t.Fatalf("simulation not deterministic:\n%v\n%v", r1, r2)
	}
}

func TestSeedChangesResults(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	w1, _ := SingleProgram("sphinx3", 6, 1)
	w2, _ := SingleProgram("sphinx3", 6, 99)
	r1 := run(t, cfg.Clone(), w1, 300000, 300000)
	r2 := run(t, cfg.Clone(), w2, 300000, 300000)
	if r1.Cycles == r2.Cycles {
		t.Fatal("different seeds produced identical cycle counts")
	}
}

func TestResultString(t *testing.T) {
	r := runDesign(t, config.Tagless, "sphinx3", 200000)
	s := r.String()
	for _, want := range []string{"sphinx3", "cTLB", "IPC", "EDP"} {
		if !strings.Contains(s, want) {
			t.Errorf("result string %q missing %q", s, want)
		}
	}
}

func TestPerCoreIPCs(t *testing.T) {
	r := runDesign(t, config.Tagless, "sphinx3", 300000)
	if len(r.PerCoreIPC) != 4 {
		t.Fatalf("per-core IPCs = %v, want 4 entries", r.PerCoreIPC)
	}
	for i, ipc := range r.PerCoreIPC {
		if ipc <= 0 {
			t.Errorf("core %d IPC = %v", i, ipc)
		}
	}
}

func TestEnergyBreakdownSane(t *testing.T) {
	r := runDesign(t, config.SRAMTag, "sphinx3", 400000)
	if r.Energy.CoreJ <= 0 || r.Energy.InPkgJ <= 0 || r.Energy.OffPkgJ <= 0 {
		t.Fatalf("breakdown = %+v", r.Energy)
	}
	if r.Energy.TagJ <= 0 {
		t.Fatal("SRAM-tag design must burn tag energy")
	}
	rt := runDesign(t, config.Tagless, "sphinx3", 400000)
	if rt.Energy.TagJ != 0 {
		t.Fatal("tagless design must burn zero tag energy")
	}
}

func TestMeasurementExcludesWarmup(t *testing.T) {
	// Doubling warmup must not change the measured instruction count.
	cfg := scaledConfig(config.Tagless, 6)
	w, _ := SingleProgram("sphinx3", 6, 1)
	r1 := run(t, cfg.Clone(), w, 200000, 300000)
	r2 := run(t, cfg.Clone(), w, 400000, 300000)
	diff := int64(r1.Instructions) - int64(r2.Instructions)
	if diff < 0 {
		diff = -diff
	}
	// Phase boundaries land mid-burst, so allow a per-core slop of one
	// trace record's worth of instructions.
	if diff > int64(r1.Instructions)/1000 {
		t.Fatalf("measured instructions differ: %d vs %d", r1.Instructions, r2.Instructions)
	}
}

func TestTLBMissRateReasonable(t *testing.T) {
	r := runDesign(t, config.Tagless, "sphinx3", 400000)
	if r.TLBMissRate <= 0 || r.TLBMissRate > 0.2 {
		t.Fatalf("TLB miss rate = %v", r.TLBMissRate)
	}
}

func TestAlloyBlockDesignRuns(t *testing.T) {
	r := runDesign(t, config.AlloyBlock, "sphinx3", 600000)
	if r.IPC <= 0 {
		t.Fatalf("IPC = %v", r.IPC)
	}
	// Block granularity: no page-sized over-fetch, so off-package traffic
	// stays near demand (well below the page caches under first touch).
	if r.L3HitRate >= 1 {
		t.Fatalf("direct-mapped block cache with 100%% hits is implausible: %v", r.L3HitRate)
	}
	if r.InPkgBytes == 0 {
		t.Fatal("alloy never touched in-package DRAM")
	}
}

func TestAlloyWorseHitRateThanPageCaches(t *testing.T) {
	// Table 2's "high hit ratio: bad" row for block-based caching.
	ra := runDesign(t, config.AlloyBlock, "sphinx3", 800000)
	rs := runDesign(t, config.SRAMTag, "sphinx3", 800000)
	if ra.L3HitRate >= rs.L3HitRate {
		t.Fatalf("block-based hit rate %.2f not below page-based %.2f",
			ra.L3HitRate, rs.L3HitRate)
	}
}

func TestResultMetricsRegistry(t *testing.T) {
	r := runDesign(t, config.Tagless, "sphinx3", 200000)
	reg := r.Metrics()
	ipc, ok := reg.Get("ipc")
	if !ok || ipc != r.IPC {
		t.Fatalf("registry ipc = %v,%v", ipc, ok)
	}
	if hit, _ := reg.Get("l3.hit_rate"); hit != r.L3HitRate {
		t.Fatal("registry hit rate mismatch")
	}
	if len(reg.Names()) < 20 {
		t.Fatalf("registry has only %d metrics", len(reg.Names()))
	}
}

func TestMissKindAccounting(t *testing.T) {
	r := runDesign(t, config.Tagless, "mcf", 800000)
	var sum uint64
	for _, c := range r.MissKindCount {
		sum += c
	}
	if sum != r.TLBMisses {
		t.Fatalf("per-kind counts sum to %d, TLB misses %d", sum, r.TLBMisses)
	}
}

func TestOutOfMemorySurfacesAsError(t *testing.T) {
	// Shrink off-package DRAM until the frame allocator runs dry: the
	// simulation must fail with a descriptive error, not panic.
	cfg := scaledConfig(config.Tagless, 6)
	cfg.OffPkg.SizeBytes = 256 * config.PageSize // ~240 usable frames
	w, _ := SingleProgram("GemsFDTD", 6, 1)      // touches far more pages
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(200000, 200000)
	if err == nil {
		t.Fatal("out-of-memory run succeeded")
	}
	if !strings.Contains(err.Error(), "out of physical memory") {
		t.Fatalf("err = %v, want out-of-memory", err)
	}
}

func TestMSHROptionMatters(t *testing.T) {
	// A wider window changes behaviour (it may help by overlapping misses
	// or hurt by deepening DRAM queues ahead of dependent loads); the
	// knob must at least take effect and keep the simulation sound.
	mk := func(mshrs int) float64 {
		cfg := scaledConfig(config.NoL3, 6)
		cfg.CPU.MSHRs = mshrs
		w, _ := SingleProgram("milc", 6, 1)
		return run(t, cfg, w, 400000, 400000).IPC
	}
	narrow, wide := mk(1), mk(16)
	if narrow <= 0 || wide <= 0 {
		t.Fatalf("IPC = %v / %v", narrow, wide)
	}
	if narrow == wide {
		t.Fatalf("MSHR count had no effect: %v", narrow)
	}
}
