package system

import (
	"testing"

	"taglessdram/internal/config"
	"taglessdram/internal/trace"
)

// sharedMix builds a MIX1 workload where every program spends part of its
// visits in the inter-process shared region.
func sharedMix(t *testing.T, frac float64) Workload {
	t.Helper()
	w, err := Mix("MIX1", 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.PerCore {
		w.PerCore[i].SharedFrac = frac
	}
	return w
}

func TestSharedPagesDefaultNonCacheable(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	w := sharedMix(t, 0.2)
	r := run(t, cfg, w, 500000, 500000)
	// The paper's adopted solution: shared pages bypass the DRAM cache.
	if r.NCAccesses == 0 {
		t.Fatal("no NC accesses despite shared pages and no alias table")
	}
	if r.Ctrl.AliasHits != 0 {
		t.Fatal("alias hits without the alias table")
	}
}

func TestSharedPagesAliasTable(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	cfg.Tagless.SharedAliasTable = true
	w := sharedMix(t, 0.2)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(500000, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if r.NCAccesses != 0 {
		t.Fatal("shared pages still non-cacheable with the alias table enabled")
	}
	if r.L3HitRate != 1.0 {
		t.Fatalf("alias table should restore the guaranteed hit: %v", r.L3HitRate)
	}
	if err := m.ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Warmup attaches count too: check lifetime stats, not the delta.
	if m.ctrl.Stats().AliasHits == 0 {
		t.Fatal("no alias hits despite four processes sharing pages")
	}
}

func TestSharedFramesCommonAcrossProcesses(t *testing.T) {
	cfg := scaledConfig(config.SRAMTag, 6)
	w := sharedMix(t, 0.3)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(300000, 300000); err != nil {
		t.Fatal(err)
	}
	// Every process's shared-region PTE must reference the same frame.
	vpn := trace.SharedBase
	var ppn uint64
	found := 0
	for _, cc := range m.cores {
		if pte, ok := cc.pt.Lookup(vpn); ok {
			if found > 0 && pte.Frame != ppn {
				t.Fatalf("shared page frames diverge: %d vs %d", pte.Frame, ppn)
			}
			ppn = pte.Frame
			found++
		}
	}
	if found < 2 {
		t.Skipf("only %d processes touched the first shared page", found)
	}
}

func TestSharedPagesAreReadOnly(t *testing.T) {
	p, _ := trace.ProfileByName("sphinx3")
	p.SharedFrac = 0.5
	g := trace.NewGenerator(p, 1)
	for i := 0; i < 50000; i++ {
		a := g.Next()
		if a.Shared && a.Write {
			t.Fatal("write to a shared (library) page")
		}
		if a.Shared && a.VAddr>>12 < trace.SharedBase {
			t.Fatal("shared access outside the shared region")
		}
	}
}

func TestHotFilterPromotesPages(t *testing.T) {
	cfg := scaledConfig(config.Tagless, 6)
	cfg.Tagless.HotFilterThreshold = 4
	w, _ := SingleProgram("sphinx3", 6, 1)
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(600000, 600000)
	if err != nil {
		t.Fatal(err)
	}
	// Cold pages bypass at first (NC accesses) but hot pages must be
	// promoted and cached (cold fills happen).
	if r.NCAccesses == 0 {
		t.Fatal("hot filter produced no NC accesses")
	}
	if m.ctrl.Stats().ColdFills == 0 {
		t.Fatal("hot filter never promoted a page to cacheable")
	}
	if err := m.ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHotFilterReducesFillsOnLowReuse(t *testing.T) {
	mk := func(th int) uint64 {
		cfg := scaledConfig(config.Tagless, 6)
		cfg.Tagless.HotFilterThreshold = th
		w, _ := SingleProgram("GemsFDTD", 6, 1)
		m, err := New(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(600000, 600000); err != nil {
			t.Fatal(err)
		}
		return m.ctrl.Stats().ColdFills
	}
	off, on := mk(0), mk(4)
	if on >= off {
		t.Fatalf("hot filter did not reduce fills: %d vs %d", on, off)
	}
}

func TestReplaySourceDrivesMachine(t *testing.T) {
	// Record a short trace, then drive a core from the replay: the
	// simulation must run and the replay must wrap to fill the budget.
	p, _ := trace.ProfileByName("sphinx3")
	g := trace.NewGenerator(p.Scaled(6), 7)
	var accesses []trace.Access
	for i := 0; i < 5000; i++ {
		accesses = append(accesses, g.Next())
	}
	rep, err := trace.NewReplay(accesses)
	if err != nil {
		t.Fatal(err)
	}
	cfg := scaledConfig(config.Tagless, 6)
	w := Workload{Name: "replayed-sphinx3", Sources: []trace.Source{rep}}
	m, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(200000, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Fatalf("replayed IPC = %v", r.IPC)
	}
	if rep.Wraps == 0 {
		t.Fatal("replay never wrapped despite budget exceeding trace length")
	}
	if len(r.PerCoreIPC) != 1 {
		t.Fatalf("active cores = %d, want 1 (one source)", len(r.PerCoreIPC))
	}
}

func TestReplayWorkloadValidation(t *testing.T) {
	rep, _ := trace.NewReplay([]trace.Access{{VAddr: 0x1000}})
	w := Workload{Name: "x", Sources: []trace.Source{rep}, MultiThreaded: true}
	if err := w.Validate(); err == nil {
		t.Fatal("multi-threaded replay accepted")
	}
	cfg := scaledConfig(config.NoL3, 6)
	w = Workload{Name: "too-many", Sources: []trace.Source{rep, rep, rep, rep, rep}}
	if _, err := New(cfg, w); err == nil {
		t.Fatal("5 sources on 4 cores accepted")
	}
}

func TestSharedRegionBounded(t *testing.T) {
	p, _ := trace.ProfileByName("sphinx3")
	p.SharedFrac = 0.5
	g := trace.NewGenerator(p, 2)
	pages := map[uint64]bool{}
	for i := 0; i < 50000; i++ {
		a := g.Next()
		if a.Shared {
			pages[a.VAddr>>12] = true
		}
	}
	if len(pages) == 0 || len(pages) > trace.SharedRegionPages {
		t.Fatalf("shared pages touched = %d, want (0, %d]", len(pages), trace.SharedRegionPages)
	}
}
