// Package system assembles the full machine — cores, TLB hierarchies,
// on-die caches, the selected DRAM-cache organization, and the two DRAM
// devices — and runs workloads through it, producing the IPC, latency and
// energy metrics the paper reports.
package system

import (
	"fmt"

	"taglessdram/internal/trace"
)

// Workload describes what runs on the machine.
type Workload struct {
	Name string
	// PerCore holds one profile per active core. Idle cores (beyond
	// len(PerCore)) execute nothing.
	PerCore []trace.Profile
	// MultiThreaded runs PerCore[0] as one multi-threaded process across
	// all cores: threads share an address space, a page table and the
	// hot working set.
	MultiThreaded bool
	// Seed varies the generated streams deterministically.
	Seed uint64
	// Sources, when non-empty, replaces synthetic generation entirely:
	// each source (e.g. a trace.Replay over a recorded file) drives one
	// core with a private address space. PerCore is ignored.
	Sources []trace.Source
}

// Validate reports the first problem with the workload.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("system: workload needs a name")
	}
	if len(w.Sources) > 0 {
		if w.MultiThreaded {
			return fmt.Errorf("system: workload %s: recorded sources cannot be multi-threaded", w.Name)
		}
		return nil
	}
	if len(w.PerCore) == 0 {
		return fmt.Errorf("system: workload %s has no programs", w.Name)
	}
	for i, p := range w.PerCore {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("system: workload %s core %d: %w", w.Name, i, err)
		}
	}
	if w.MultiThreaded && len(w.PerCore) != 1 {
		return fmt.Errorf("system: multi-threaded workload %s must have exactly one profile", w.Name)
	}
	return nil
}

// SingleProgram builds the paper's single-programmed setting: the four
// highest-weight SimPoint slices of one SPEC program, one per core
// (Section 4 — "we choose top 4 slices with the highest weights"). Each
// core runs an independently seeded slice in its own address space. shift
// scales the footprint down (see Profile.Scaled).
func SingleProgram(name string, shift uint, seed uint64) (Workload, error) {
	return SingleProgramOn(name, 4, shift, seed)
}

// SingleProgramOn is SingleProgram with an explicit slice (core) count.
func SingleProgramOn(name string, cores int, shift uint, seed uint64) (Workload, error) {
	if cores <= 0 {
		return Workload{}, fmt.Errorf("system: need at least one core for %s", name)
	}
	p, err := trace.ProfileByName(name)
	if err != nil {
		return Workload{}, err
	}
	w := Workload{Name: name, Seed: seed}
	for i := 0; i < cores; i++ {
		w.PerCore = append(w.PerCore, p.Scaled(shift))
	}
	return w, nil
}

// Mix builds one of Table 5's multi-programmed groupings: four programs,
// one per core, with private address spaces (Section 5.2).
func Mix(name string, shift uint, seed uint64) (Workload, error) {
	progs, ok := trace.Mixes()[name]
	if !ok {
		return Workload{}, fmt.Errorf("system: unknown mix %q", name)
	}
	w := Workload{Name: name, Seed: seed}
	for _, prog := range progs {
		p, err := trace.ProfileByName(prog)
		if err != nil {
			return Workload{}, err
		}
		w.PerCore = append(w.PerCore, p.Scaled(shift))
	}
	return w, nil
}

// MultiThread builds one of the PARSEC multi-threaded workloads: one
// program whose threads run on every core and share pages (Section 5.3).
func MultiThread(name string, shift uint, seed uint64) (Workload, error) {
	p, err := trace.ProfileByName(name)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:          name,
		PerCore:       []trace.Profile{p.Scaled(shift)},
		MultiThreaded: true,
		Seed:          seed,
	}, nil
}
