package system

import (
	"os"
	"testing"

	"taglessdram/internal/config"
	simpkg "taglessdram/internal/sim"
)

// TestDebugBreakdown prints detailed per-design diagnostics. It is not an
// assertion test; run with -v to inspect the latency composition.
func TestDebugBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	prog := os.Getenv("DEBUG_PROG")
	if prog == "" {
		prog = "sphinx3"
	}
	for _, d := range config.AllDesigns() {
		cfg := scaledConfig(d, 6)
		w, _ := SingleProgram(prog, 6, 1)
		m, err := New(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run(3000000, 3000000)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-6v IPC=%.3f devL3=%.1f handler(mean=%.0f n=%d) L3acc=%d hit=%.3f rowhit(in=%.2f off=%.2f) busutil(in=%.2f off=%.2f) tlbmiss=%.4f",
			d, r.IPC, m.l3Lat.Value(), m.handlerLat.Value(), m.handlerLat.Count(),
			r.L3Accesses, r.L3HitRate, r.InPkgRowHitRate, r.OffPkgRowHitRate,
			m.inPkg.BusUtilization(simpkg.Tick(r.Cycles)), m.offPkg.BusUtilization(simpkg.Tick(r.Cycles)),
			r.TLBMissRate)
		if d == config.Tagless {
			t.Logf("   ctrl: %+v", r.Ctrl)
		}
	}
}
