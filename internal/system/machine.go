package system

import (
	"fmt"

	"taglessdram/internal/cache"
	"taglessdram/internal/config"
	"taglessdram/internal/core"
	"taglessdram/internal/cpu"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
	"taglessdram/internal/mmu"
	"taglessdram/internal/obs"
	"taglessdram/internal/org"
	"taglessdram/internal/sim"
	"taglessdram/internal/stats"
	"taglessdram/internal/tlb"
	"taglessdram/internal/trace"
	"taglessdram/internal/vm"
)

// paBit distinguishes physically-addressed lines from cache-addressed lines
// in the on-die caches of the tagless design (non-cacheable pages keep
// physical addresses; Section 3.2).
const paBit = org.PABit

// spKeyBit marks TLB keys that name a superpage region rather than a base
// page, keeping the two namespaces disjoint.
const spKeyBit = uint64(1) << 61

// coreCtx bundles one core's private hardware and its workload stream.
type coreCtx struct {
	id     int
	cpu    *cpu.Core
	tlbs   *tlb.Hierarchy
	l1     *cache.Cache
	l2     *cache.Cache
	gen    trace.Source
	vgen   *trace.Generator // gen when it is a Generator (visit-granular ff)
	pt     *mmu.PageTable
	active bool
	done   bool

	// hotCount tracks per-page access counts for the online hot-page
	// filter (CHOP-style); nil unless the filter is enabled.
	hotCount map[uint64]uint32

	// Last-translation memo: the most recent present PTE this core
	// resolved. Valid forever once set — page-table entries are never
	// unmapped and PTE pointers are stable — so the classification paths
	// in step reuse one resolution instead of repeated table probes.
	memoVPN uint64
	memoPTE *mmu.PTE

	// ffFilt is the fast-forward path's stand-in for the on-die hierarchy:
	// a direct-mapped memo over block numbers, sized to the L2's line
	// count, deciding which touches perform a real L2 access (and, on L2
	// miss, reach the organization) at the cost of one array probe. Each
	// slot packs the block's tag-remainder signature with the ff-span
	// epoch that wrote it, so entries expire when the span ends — a block
	// is only memoized while its recency plausibly keeps it on-die, never
	// across measurement windows. Pure scratch: lazily allocated, never
	// serialized.
	ffFilt []uint64
	ffMask uint64
	ffLog  uint

	startCycle sim.Tick
	startInstr uint64
}

// lookup resolves vpn's PTE through the core's last-translation memo.
// Only present entries are memoized (absent vpns can appear later).
func (cc *coreCtx) lookup(vpn uint64) (*mmu.PTE, bool) {
	if cc.memoPTE != nil && cc.memoVPN == vpn {
		return cc.memoPTE, true
	}
	pte, ok := cc.pt.Lookup(vpn)
	if ok {
		cc.memoVPN, cc.memoPTE = vpn, pte
	}
	return pte, ok
}

// Machine is one simulated system: cores, TLBs, on-die caches, the chosen
// DRAM-cache organization and both DRAM devices.
type Machine struct {
	cfg      *config.SystemConfig
	workload Workload
	kernel   *sim.Kernel
	inPkg    *dram.Device
	offPkg   *dram.Device
	cores    []*coreCtx
	alloc    *mmu.FrameAllocator

	// org is the pluggable DRAM-cache organization serving L2 misses
	// and dirty on-die victims (internal/org registry). The tagless
	// design additionally exposes its controller, which the translation
	// path in step consults directly (ctrl is nil for other designs).
	org  org.Organization
	ctrl *core.Controller

	// walk is the pluggable page-table-walk timing model (internal/vm
	// registry); every TLB miss's walk cost routes through it.
	walk vm.WalkModel
	// tlbShared is the shared-L2 group under the shared topology (nil
	// for private), and ctx paces per-core context switches (nil when
	// disabled). ctxScratch is the reusable key buffer a flush collects
	// into.
	tlbShared   *tlb.SharedGroup
	ctx         *vm.CtxSched
	ctxScratch  []uint64
	ctxSwitches uint64

	spPages      uint64            // superpage region size in pages (1 = disabled)
	spMask       uint64            // spPages-1 (spPages is a power of two)
	spShift      uint              // log2(spPages)
	caShift      uint              // log2(spPages*PageSize): CA bytes → block number
	sharedFrames map[uint64]uint64 // shared VPN → PPN (inter-process pages)
	giptBase     uint64            // off-package byte address of the GIPT region
	giptRegion   uint64
	giptCursor   uint64
	ncThreshold  int

	// Scheduler state: scratch slice reused by runPhase (heap or scan
	// order), and a test switch pinning the O(cores) scan.
	sched     []*coreCtx
	forceScan bool
	refs      uint64 // trace references processed (all phases)

	// Fast-forward state: the organization's functional fast path (nil
	// when unimplemented) and the per-core counter snapshots bracketing
	// each fast-forwarded span.
	fast    org.FastPath
	ffSave  []ffCoreSaved
	ffEpoch uint32 // current fast-forward span, for ffFilt entry expiry

	// warmedTo is the per-core instruction count the Warmup/Measure pair
	// has warmed to (phase targets are absolute counts, so Measure and a
	// restored checkpoint must agree on the warm-up length).
	warmedTo uint64

	// Measurement state.
	measuring  bool
	rec        lat.Recorder  // per-component cycle attribution (measured window)
	l3Lat      stats.Mean    // device-side latency of L3 accesses
	handlerLat stats.Mean    // TLB-miss handler latency (amortized into Fig. 8)
	kindLat    [4]stats.Mean // handler latency by core.MissKind (Table 1)
	l3Accesses stats.Counter
	l3Hits     stats.Counter
	tlbLookups stats.Counter
	tlbMisses  stats.Counter
	ncAccesses stats.Counter

	// Observability state: the optional epoch sampler (nil keeps the
	// per-reference path to a single pointer check) and the organization's
	// gauge view, resolved once at construction.
	sampler *obs.Sampler
	gauges  org.GaugeSource
}

// New builds a machine for the configuration and workload.
func New(cfg *config.SystemConfig, w Workload) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if !w.MultiThreaded && len(w.PerCore) > cfg.CPU.Cores {
		return nil, fmt.Errorf("system: workload %s has %d programs for %d cores",
			w.Name, len(w.PerCore), cfg.CPU.Cores)
	}

	m := &Machine{
		cfg:          cfg,
		workload:     w,
		kernel:       sim.NewKernel(),
		inPkg:        dram.New("in-pkg", cfg.InPkg, cfg.CPU.FreqGHz),
		offPkg:       dram.New("off-pkg", cfg.OffPkg, cfg.CPU.FreqGHz),
		sharedFrames: make(map[uint64]uint64),
		ncThreshold:  cfg.Tagless.NCAccessThreshold,
	}
	// Reserve the top sixteenth of off-package DRAM for page tables and
	// the GIPT, so handler traffic does not alias application rows.
	m.giptRegion = uint64(cfg.OffPkg.SizeBytes) / 16
	m.giptBase = uint64(cfg.OffPkg.SizeBytes) - m.giptRegion
	frames := m.giptBase / config.PageSize
	m.alloc = mmu.NewFrameAllocator(frames)

	// Address spaces and trace streams.
	var pts []*mmu.PageTable
	var gens []trace.Source
	nactive := len(w.PerCore)
	switch {
	case len(w.Sources) > 0:
		nactive = len(w.Sources)
		if nactive > cfg.CPU.Cores {
			return nil, fmt.Errorf("system: workload %s has %d sources for %d cores",
				w.Name, nactive, cfg.CPU.Cores)
		}
		for i, s := range w.Sources {
			pts = append(pts, mmu.NewPageTable(i, m.alloc))
			gens = append(gens, s)
		}
	case w.MultiThreaded:
		nactive = cfg.CPU.Cores
		pt := mmu.NewPageTable(0, m.alloc)
		group, err := trace.NewThreadGroup(w.PerCore[0], nactive, w.Seed)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nactive; i++ {
			pts = append(pts, pt)
			gens = append(gens, group[i])
		}
	default:
		for i, p := range w.PerCore {
			pts = append(pts, mmu.NewPageTable(i, m.alloc))
			group, err := trace.NewThreadGroup(p, 1, w.Seed+uint64(i)*7919)
			if err != nil {
				return nil, err
			}
			gens = append(gens, group[0])
		}
	}

	// Virtual-memory layer: the TLB topology and the walk timing model,
	// both resolved through the internal/vm registries. Walk references
	// land in the reserved page-table region computed above.
	topo, err := vm.NewTopology(cfg.EffectiveTLBTopology(), cfg.L1TLB, cfg.L2TLB, cfg.CPU.Cores)
	if err != nil {
		return nil, err
	}
	m.tlbShared = topo.Shared
	m.walk, err = vm.NewWalk(cfg.EffectiveWalkModel(), vm.Ports{
		Cfg:    cfg,
		OffPkg: m.offPkg,
		Rec:    &m.rec,
		PTBase: m.giptBase,
		PTSize: m.giptRegion,
	})
	if err != nil {
		return nil, err
	}
	m.ctx = vm.NewCtxSched(cfg)

	// Per-core hardware.
	for i := 0; i < cfg.CPU.Cores; i++ {
		cc := &coreCtx{
			id:   i,
			cpu:  cpu.New(i, cfg.CPU.IssueWidth, cfg.CPU.MSHRs),
			tlbs: topo.Cores[i],
			l1:   cache.New(cfg.L1D),
			l2:   cache.New(cfg.L2),
		}
		if i < nactive {
			cc.gen = gens[i]
			cc.vgen, _ = gens[i].(*trace.Generator)
			cc.pt = pts[i]
			cc.active = true
			if m.tlbShared != nil {
				// Shared-L2 keys are ASID-tagged: multithreaded cores
				// share one table (and so one tag); multiprogrammed
				// cores each get their own address space.
				cc.tlbs.SetASID(cc.pt.ASID)
			}
			if cfg.Design == config.Tagless && cfg.Tagless.HotFilterThreshold > 0 {
				cc.hotCount = make(map[uint64]uint32)
			}
		}
		m.cores = append(m.cores, cc)
	}

	// Organization wiring: resolve the configured design through the
	// internal/org registry. Each organization builds its own state
	// against the narrow Ports view; adding a design needs no edit here.
	o, err := org.New(cfg.Design, org.Ports{
		Cfg:     cfg,
		InPkg:   m.inPkg,
		OffPkg:  m.offPkg,
		Kernel:  m.kernel,
		Mem:     (*memOps)(m),
		Observe: m.observeL3,
		Lat:     &m.rec,
		Walk:    m.walk.Walk,
	})
	if err != nil {
		return nil, err
	}
	m.org = o

	// The tagless organization is the one design the translation path
	// must know about: cTLB misses route through its controller, and its
	// eviction/shootdown activity feeds back into the TLBs and on-die
	// caches. Wire those hooks here; every other design is opaque.
	if tg, ok := o.(*org.Tagless); ok {
		m.ctrl = tg.Controller()
		m.spPages = 1
		if sp := cfg.Tagless.SuperpagePages; sp > 1 {
			m.spPages = uint64(sp)
		}
		m.ctrl.EvictHook = m.onPageEvicted
		m.ctrl.ShootdownHook = m.onShootdown
		for _, cc := range m.cores {
			cc := cc
			cc.tlbs.OnEvict = func(vpn uint64, e tlb.Entry) {
				m.ctrl.NoteTLBEviction(cc.id, e)
			}
		}
	}

	// Strength-reduce the hot-path divisions. Superpage region sizes are
	// powers of two by construction (config.Validate enforces it).
	if m.ctrl != nil {
		m.spMask = m.spPages - 1
		for p := m.spPages; p > 1; p >>= 1 {
			m.spShift++
		}
		m.caShift = m.spShift + 12 // log2(spPages * config.PageSize)
	}
	m.sched = make([]*coreCtx, 0, len(m.cores))
	m.gauges, _ = o.(org.GaugeSource)
	m.fast, _ = o.(org.FastPath)
	return m, nil
}

// AttachSampler installs an epoch sampler: every sampler.EpochRefs()
// measured references the machine snapshots its counters and records one
// epoch delta. Attach before Run. Sampling is read-only — it never
// changes simulated behavior — and a nil sampler (the default) keeps the
// steady-state step path allocation-free.
func (m *Machine) AttachSampler(s *obs.Sampler) { m.sampler = s }

// SetTracer installs a kernel event tracer (Chrome trace_event format,
// bounded window). Install before Run; pass nil to disable.
func (m *Machine) SetTracer(t *sim.Tracer) { m.kernel.SetTracer(t) }

// cumulative assembles the monotone counter snapshot the epoch sampler
// diffs: measured-window core clocks and instruction counts, the L3/cTLB
// measurement counters, both DRAM devices' traffic and row-buffer
// counters, the organization's window counters, and its gauges.
func (m *Machine) cumulative() obs.Cumulative {
	var c obs.Cumulative
	var lead sim.Tick
	for _, cc := range m.cores {
		if !cc.active {
			continue
		}
		c.Instructions += cc.cpu.Instructions - cc.startInstr
		if d := cc.cpu.Now() - cc.startCycle; d > lead {
			lead = d
		}
	}
	c.Cycle = uint64(lead)
	c.Refs = m.refs
	c.L3Accesses = m.l3Accesses.Value()
	c.L3Hits = m.l3Hits.Value()
	c.TLBLookups = m.tlbLookups.Value()
	c.TLBMisses = m.tlbMisses.Value()
	c.InPkgBytes = m.inPkg.BytesTransferred()
	c.OffPkgBytes = m.offPkg.BytesTransferred()
	c.InPkgRowAccesses, c.InPkgRowHits = m.inPkg.Accesses, m.inPkg.RowHits
	c.OffPkgRowAccesses, c.OffPkgRowHits = m.offPkg.Accesses, m.offPkg.RowHits
	c.L3LatBuckets = m.rec.L3Counts()
	c.InPkgBusBusy = m.inPkg.BusBusyTicks()
	c.OffPkgBusBusy = m.offPkg.BusBusyTicks()
	c.InPkgChannels = m.inPkg.Channels()
	c.OffPkgChannels = m.offPkg.Channels()
	var os org.Stats
	m.org.Collect(&os)
	c.Ctrl = os.Ctrl
	if m.gauges != nil {
		c.Gauges = m.gauges.EpochGauges()
	}
	return c
}

// onPageEvicted flushes CA-tagged on-die lines of a region leaving the
// tagless cache, so the reallocated cache address cannot alias stale data.
func (m *Machine) onPageEvicted(at sim.Tick, ca, ppn uint64, dirty bool) {
	bytes := m.spPages * config.PageSize
	base := ca * bytes
	for _, cc := range m.cores {
		cc.l1.InvalidateRange(base, int(bytes))
		cc.l2.InvalidateRange(base, int(bytes))
	}
}

// contextSwitch applies one context switch on cc: under the flush policy
// the core's own shared-L2 entries are shot down (and the switch's cost
// charged when timed); under the ASID-retain policy the entries survive
// but a burst of foreign-tenant entries is injected, modeling the TLB
// capacity other tenants consume while scheduled. The untimed variant
// (fast-forward) applies only the state effects.
func (m *Machine) contextSwitch(cc *coreCtx, timed bool) {
	m.ctxSwitches++
	if m.ctx.Flush {
		m.ctxScratch = m.ctxScratch[:0]
		if m.tlbShared != nil {
			m.tlbShared.L2.Each(func(key uint64, _ tlb.Entry) {
				if cc.tlbs.OwnsKey(key) {
					m.ctxScratch = append(m.ctxScratch, key)
				}
			})
		}
		for _, key := range m.ctxScratch {
			// Keys are already ASID-tagged; Invalidate's tagging is an
			// idempotent OR, so passing them back is safe.
			cc.tlbs.Invalidate(key)
		}
		if timed && len(m.ctxScratch) > 0 {
			d := sim.Tick(len(m.ctxScratch) * vm.ShootdownCyclesPerEntry)
			m.rec.AddBackground(lat.TLBShootdown, d)
			cc.cpu.Block(cc.cpu.Now() + d)
		}
		return
	}
	// ASID-retain: foreign tenants ran and filled shared-L2 capacity.
	// NC entries skip residence bookkeeping on displacement.
	for i := 0; i < vm.ForeignInjectEntries; i++ {
		cc.tlbs.Insert(m.ctx.ForeignVPN(cc.id), tlb.Entry{NC: true})
	}
}

// sharedFrame returns the machine-wide physical frame backing a shared
// virtual page, allocating it on first use.
func (m *Machine) sharedFrame(vpn uint64) (uint64, error) {
	if ppn, ok := m.sharedFrames[vpn]; ok {
		return ppn, nil
	}
	ppn, err := m.alloc.Alloc()
	if err != nil {
		return 0, err
	}
	m.sharedFrames[vpn] = ppn
	return ppn, nil
}

// onShootdown invalidates a page (or superpage region) from every TLB that
// still references it, allowing a resident block to be evicted under
// extreme pressure.
func (m *Machine) onShootdown(ca, vpn uint64, residence uint64) {
	key := vpn
	if m.spPages > 1 {
		key = spKeyBit | vpn/m.spPages
	}
	for _, cc := range m.cores {
		if residence&(1<<uint(cc.id)) != 0 {
			cc.tlbs.Invalidate(key)
		}
	}
}

// memOps implements core.MemOps against the machine's DRAM devices.
type memOps Machine

// FillPage performs a critical-block-first fill of `pages` pages: the
// faulting block is read first and unblocks the requester; the rest of the
// region streams off-package and is written into the cache behind it,
// occupying both devices' banks and buses (over-fetching costs bandwidth,
// not stall).
func (m *memOps) FillPage(at sim.Tick, ppn, ca, offset uint64, pages int) sim.Tick {
	bytes := pages * config.PageSize
	base := ppn * config.PageSize
	blockOff := offset &^ (config.BlockSize - 1)
	crit := m.offPkg.Access(at, base+blockOff, config.BlockSize, dram.Read)
	// The critical block is the fill's stall contribution; the streaming
	// remainder and the in-package write below are bandwidth only.
	m.rec.Add(lat.OffPkgQueue, crit.QueueWait)
	m.rec.Add(lat.OffPkgService, crit.Service)
	if rest := bytes - config.BlockSize; rest > 0 {
		// Remainder of the region streams behind the critical block.
		m.offPkg.Access(crit.Done, base, rest, dram.Read)
	}
	m.inPkg.Access(crit.Done, ca*uint64(bytes), bytes, dram.Write)
	return crit.Done
}

// EvictPage: in-package region read then off-package write-back.
func (m *memOps) EvictPage(at sim.Tick, ca, ppn uint64, pages int) sim.Tick {
	bytes := pages * config.PageSize
	r := m.inPkg.Access(at, ca*uint64(bytes), bytes, dram.Read)
	w := m.offPkg.Access(r.Done, ppn*config.PageSize, bytes, dram.Write)
	return w.Done
}

// GIPTUpdate charges the paper's conservative cost of two full off-package
// writes (Section 3.4). The writes are short, high-priority metadata that a
// real controller schedules ahead of the streaming fill, so they are
// modeled as fixed closed-bank write latency with energy and traffic
// accounted on the device but no bus queueing.
func (m *memOps) GIPTUpdate(at sim.Tick) sim.Tick {
	m.giptCursor++
	cost := 2 * m.offPkg.ColdWriteLatency(config.BlockSize)
	m.rec.Add(lat.GIPTUpdate, cost)
	m.offPkg.AccountTraffic(2*config.BlockSize, dram.Write)
	return at + cost
}
