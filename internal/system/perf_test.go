package system

import (
	"reflect"
	"testing"

	"taglessdram/internal/config"
)

// benchStepMachine builds the standard hot-path metering rig: the default
// machine at 64× scale running libquantum, whose streaming working set
// reaches steady state quickly (no fills, no faults, no events in the
// measured window), so the benchmark isolates the per-reference path.
func benchStepMachine(tb testing.TB, design config.L3Design) *Machine {
	tb.Helper()
	cfg := config.Default()
	cfg.Design = design
	cfg.InPkg.SizeBytes >>= 6
	cfg.OffPkg.SizeBytes >>= 6
	cfg.CacheSize >>= 6
	w, err := SingleProgram("libquantum", 6, 1)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := New(cfg, w)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// warmSteps brings the machine to steady state and drains pending events.
func warmSteps(tb testing.TB, m *Machine, n int) {
	tb.Helper()
	if err := m.Steps(n); err != nil {
		tb.Fatal(err)
	}
	m.kernel.Run(0)
}

// BenchmarkMachineStep meters one trace reference through the full
// per-reference path (trace generation, TLB hierarchy, L1/L2, the
// design-specific L3) per iteration. This is the PR's headline number:
// steady state must be allocation-free, and the Tagless design must hold
// its speedup over the pre-optimization baseline (see BENCH_step.json).
func BenchmarkMachineStep(b *testing.B) {
	for _, d := range []config.L3Design{
		config.NoL3, config.BankInterleave, config.SRAMTag, config.Tagless, config.Ideal,
		config.Banshee,
	} {
		b.Run(d.String(), func(b *testing.B) {
			m := benchStepMachine(b, d)
			warmSteps(b, m, 100_000)
			b.ReportAllocs()
			b.ResetTimer()
			if err := m.Steps(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkMachineFastForward meters the functional fast-forward path on
// the same rig as BenchmarkMachineStep, so the ratio of the two is the
// ff speedup under identical conditions.
func BenchmarkMachineFastForward(b *testing.B) {
	for _, d := range []config.L3Design{
		config.NoL3, config.BankInterleave, config.SRAMTag, config.Tagless, config.Ideal,
		config.Banshee,
	} {
		b.Run(d.String(), func(b *testing.B) {
			m := benchStepMachine(b, d)
			warmSteps(b, m, 100_000)
			b.ReportAllocs()
			b.ResetTimer()
			if err := m.FastForwardRefs(uint64(b.N)); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// TestStepAllocFree is the tentpole's allocation guard: after warm-up,
// neither the accurate per-reference loop nor the functional fast-forward
// loop of the Tagless and SRAM-tag designs may allocate at all. A
// regression here means a closure, map insert, or interface boxing crept
// back into a hot path.
func TestStepAllocFree(t *testing.T) {
	for _, d := range []config.L3Design{config.Tagless, config.SRAMTag} {
		t.Run(d.String(), func(t *testing.T) {
			m := benchStepMachine(t, d)
			warmSteps(t, m, 200_000)
			allocs := testing.AllocsPerRun(10, func() {
				if err := m.Steps(2_000); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%v steady-state step allocates: %v allocs per 2000 references", d, allocs)
			}
		})
		t.Run(d.String()+"/ff", func(t *testing.T) {
			m := benchStepMachine(t, d)
			warmSteps(t, m, 200_000)
			// One priming span so the lazily allocated ffSave scratch and
			// the organization's FastBegin state exist.
			if err := m.FastForwardRefs(2_000); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := m.FastForwardRefs(2_000); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%v fast-forward allocates: %v allocs per 2000 references", d, allocs)
			}
		})
	}
}

// TestSchedulerHeapMatchesScan verifies the indexed-min-heap core scheduler
// is observationally identical to the original O(cores) scan: an 8-core
// multi-threaded run (heap path) must produce exactly the same result as
// the same run with the heap disabled (scan fallback).
func TestSchedulerHeapMatchesScan(t *testing.T) {
	run := func(forceScan bool) *Result {
		cfg := config.Default()
		cfg.Design = config.Tagless
		cfg.CPU.Cores = 8
		cfg.InPkg.SizeBytes >>= 6
		cfg.OffPkg.SizeBytes >>= 6
		cfg.CacheSize >>= 6
		w, err := MultiThread("streamcluster", 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		m.forceScan = forceScan
		r, err := m.Run(100_000, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	heap, scan := run(false), run(true)
	if !reflect.DeepEqual(heap, scan) {
		t.Fatalf("heap scheduler diverged from scan:\nheap: %+v\nscan: %+v", heap, scan)
	}
}
