// Package prof wires Go's built-in profilers into the command-line tools:
// CPU profiles, heap profiles, and execution traces, each behind a flag.
// The captured files feed `go tool pprof` / `go tool trace` against the
// per-reference simulation loop, which is how this repository's hot-path
// work (arena page table, pooled events, SoA caches) was measured.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the profiling destinations. Empty strings disable a profiler.
type Flags struct {
	CPUProfile string // pprof CPU profile path
	MemProfile string // pprof heap profile path (written at Stop)
	Trace      string // runtime execution trace path
}

// Register installs the standard -cpuprofile / -memprofile / -trace flags
// on fs and returns the Flags that will receive their values after parse.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Start begins the requested profilers and returns a stop function to defer.
// The stop function ends the CPU profile and trace, and writes the heap
// profile (after a GC, so it reflects live objects, not garbage).
func (f *Flags) Start() (stop func(), err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuF, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	if f.Trace != "" {
		traceF, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		cleanup()
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
