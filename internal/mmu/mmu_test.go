package mmu

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestWalkDemandAllocates(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(4))
	pte, err := pt.Walk(100)
	if err != nil {
		t.Fatal(err)
	}
	if pte.Frame != 0 || pte.VC || pte.NC || pte.PU {
		t.Fatalf("first PTE = %+v", pte)
	}
	pte2, err := pt.Walk(200)
	if err != nil {
		t.Fatal(err)
	}
	if pte2.Frame != 1 {
		t.Fatalf("second frame = %d, want 1", pte2.Frame)
	}
	if pt.PageFaults != 2 || pt.Walks != 2 {
		t.Fatalf("faults/walks = %d/%d", pt.PageFaults, pt.Walks)
	}
}

func TestWalkIsStable(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(4))
	a, _ := pt.Walk(7)
	b, _ := pt.Walk(7)
	if a != b {
		t.Fatal("repeated walks returned different PTE pointers")
	}
	if pt.PageFaults != 1 {
		t.Fatalf("faults = %d, want 1", pt.PageFaults)
	}
}

func TestWalkMutationVisible(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(4))
	pte, _ := pt.Walk(7)
	pte.VC = true
	pte.Frame = 99
	again, _ := pt.Walk(7)
	if !again.VC || again.Frame != 99 {
		t.Fatal("PTE mutation lost")
	}
}

func TestOutOfMemory(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(2))
	pt.Walk(1)
	pt.Walk(2)
	_, err := pt.Walk(3)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestFreeListReuse(t *testing.T) {
	a := NewFrameAllocator(2)
	p0, _ := a.Alloc()
	p1, _ := a.Alloc()
	if a.InUse() != 2 {
		t.Fatalf("in use = %d", a.InUse())
	}
	a.Free(p0)
	if a.InUse() != 1 {
		t.Fatalf("in use after free = %d", a.InUse())
	}
	p2, err := a.Alloc()
	if err != nil || p2 != p0 {
		t.Fatalf("realloc = %d,%v, want %d", p2, err, p0)
	}
	_ = p1
	if a.Capacity() != 2 {
		t.Fatalf("capacity = %d", a.Capacity())
	}
}

func TestLookupWithoutAllocating(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(4))
	if _, ok := pt.Lookup(5); ok {
		t.Fatal("lookup allocated")
	}
	pt.Walk(5)
	if _, ok := pt.Lookup(5); !ok {
		t.Fatal("lookup missed mapped page")
	}
	if pt.Pages() != 1 {
		t.Fatalf("pages = %d", pt.Pages())
	}
}

func TestSetNonCacheable(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(4))
	if err := pt.SetNonCacheable(9); err != nil {
		t.Fatal(err)
	}
	pte, _ := pt.Lookup(9)
	if !pte.NC {
		t.Fatal("NC bit not set")
	}
	// A cached page may not be marked non-cacheable in place.
	pte2, _ := pt.Walk(10)
	pte2.VC = true
	if err := pt.SetNonCacheable(10); err == nil {
		t.Fatal("expected error for cached page")
	}
}

func TestCachedPagesCount(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(8))
	for v := uint64(0); v < 5; v++ {
		pte, _ := pt.Walk(v)
		pte.VC = v%2 == 0
	}
	if got := pt.CachedPages(); got != 3 {
		t.Fatalf("cached pages = %d, want 3", got)
	}
}

func TestPTEString(t *testing.T) {
	s := PTE{Frame: 3, VC: true}.String()
	if !strings.Contains(s, "CA-3") || !strings.Contains(s, "(1,0)") {
		t.Fatalf("string = %q", s)
	}
	s = PTE{Frame: 5, NC: true}.String()
	if !strings.Contains(s, "PA-5") || !strings.Contains(s, "(0,1)") {
		t.Fatalf("string = %q", s)
	}
}

func TestNilAllocatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPageTable(0, nil)
}

func TestSharedAllocatorAcrossTables(t *testing.T) {
	alloc := NewFrameAllocator(4)
	pt0 := NewPageTable(0, alloc)
	pt1 := NewPageTable(1, alloc)
	a, _ := pt0.Walk(0)
	b, _ := pt1.Walk(0) // same VPN, different address space
	if a.Frame == b.Frame {
		t.Fatal("two address spaces shared a frame")
	}
}

// Property: distinct VPNs always receive distinct frames, and InUse tracks
// exactly the number of live allocations.
func TestAllocatorBijectionProperty(t *testing.T) {
	f := func(vpns []uint8) bool {
		alloc := NewFrameAllocator(1024)
		pt := NewPageTable(0, alloc)
		seen := map[uint64]uint64{} // frame → vpn
		for _, v := range vpns {
			pte, err := pt.Walk(uint64(v))
			if err != nil {
				return false
			}
			if owner, dup := seen[pte.Frame]; dup && owner != uint64(v) {
				return false
			}
			seen[pte.Frame] = uint64(v)
		}
		return alloc.InUse() == uint64(pt.Pages())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: free then alloc conserves the frame pool (never exceeds capacity).
func TestAllocatorConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		a := NewFrameAllocator(16)
		var live []uint64
		for _, isAlloc := range ops {
			if isAlloc || len(live) == 0 {
				ppn, err := a.Alloc()
				if err != nil {
					if a.InUse() > 16 {
						return false
					}
					continue
				}
				if ppn >= 16 {
					return false
				}
				live = append(live, ppn)
			} else {
				a.Free(live[len(live)-1])
				live = live[:len(live)-1]
			}
			if a.InUse() != uint64(len(live)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
