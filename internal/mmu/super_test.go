package mmu

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocContiguous(t *testing.T) {
	a := NewFrameAllocator(64)
	base, err := a.AllocContiguous(16)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := a.AllocContiguous(16)
	if err != nil {
		t.Fatal(err)
	}
	if base2 != base+16 {
		t.Fatalf("regions overlap or gap: %d then %d", base, base2)
	}
	if _, err := a.AllocContiguous(64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want out of memory", err)
	}
	if _, err := a.AllocContiguous(0); err == nil {
		t.Fatal("zero-length contiguous allocation accepted")
	}
}

func TestAllocContiguousIgnoresFreeList(t *testing.T) {
	a := NewFrameAllocator(8)
	p, _ := a.Alloc()
	a.Free(p)
	base, err := a.AllocContiguous(4)
	if err != nil {
		t.Fatal(err)
	}
	if base == p {
		t.Fatal("contiguous allocation reused a fragmented free frame")
	}
}

func TestWalkRegion(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(1024))
	// Any vpn within the region returns the same superpage PTE.
	a, err := pt.WalkRegion(0x105, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Super {
		t.Fatal("region PTE not marked super")
	}
	b, err := pt.WalkRegion(0x100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("region pages got distinct PTEs")
	}
	if pt.PageFaults != 1 {
		t.Fatalf("faults = %d, want 1", pt.PageFaults)
	}
	// The PTE is stored at the region base.
	if _, ok := pt.Lookup(0x100); !ok {
		t.Fatal("region PTE not at base")
	}
	if _, ok := pt.Lookup(0x105); ok {
		t.Fatal("non-base page has its own entry")
	}
}

func TestWalkRegionConflictsWith4KB(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(1024))
	if _, err := pt.Walk(0x200); err != nil { // 4KB mapping at region base
		t.Fatal(err)
	}
	if _, err := pt.WalkRegion(0x203, 8); err == nil {
		t.Fatal("region overlapping a 4KB mapping accepted")
	}
}

func TestWalkRegionContiguousFrames(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(1024))
	a, _ := pt.WalkRegion(0, 8)
	b, _ := pt.WalkRegion(8, 8)
	if b.Frame != a.Frame+8 {
		t.Fatalf("region frames not packed: %d then %d", a.Frame, b.Frame)
	}
}

// Property: regions never share frames — distinct region bases get
// disjoint physical ranges.
func TestWalkRegionDisjointProperty(t *testing.T) {
	f := func(vpns []uint8) bool {
		pt := NewPageTable(0, NewFrameAllocator(1<<16))
		owned := map[uint64]uint64{} // frame → region base
		for _, v := range vpns {
			vpn := uint64(v)
			pte, err := pt.WalkRegion(vpn, 4)
			if err != nil {
				return false
			}
			base := vpn &^ 3
			for f := pte.Frame; f < pte.Frame+4; f++ {
				if ob, ok := owned[f]; ok && ob != base {
					return false
				}
				owned[f] = base
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapSharedRejectsDouble(t *testing.T) {
	pt := NewPageTable(0, NewFrameAllocator(4))
	if _, err := pt.MapShared(5, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.MapShared(5, 3); err == nil {
		t.Fatal("double mapping accepted")
	}
	pte, ok := pt.Lookup(5)
	if !ok || pte.Frame != 2 {
		t.Fatalf("shared PTE = %+v, %v", pte, ok)
	}
}
