// Package mmu implements the OS-side memory-management structures the
// tagless cache modifies: per-process page tables whose entries carry the
// paper's three extra flag bits (Section 3.2) and a physical-frame
// allocator for demand paging.
//
//   - Valid-in-Cache (VC): the page currently resides in the DRAM cache and
//     Frame holds a cache address (block number).
//   - Non-Cacheable (NC): the page bypasses the DRAM cache; Frame always
//     holds the physical page number.
//   - Pending-Update (PU): a cache fill for this page is in flight;
//     concurrent TLB misses must busy-wait rather than issue duplicates.
package mmu

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// ErrOutOfMemory is returned when the backing store has no free frames.
var ErrOutOfMemory = errors.New("mmu: out of physical memory")

// WalkLevels is the depth of the radix page table the timing walk models
// assume (an x86-64-style four-level table with 9 index bits per level).
const WalkLevels = 4

// LevelPrefix returns the vpn bits that identify the page-table page a
// walk visits at the given level (0 = root). Deeper levels keep more of
// the vpn, so fewer walks share their lower-level tables — which is what
// gives the MMU's page-walk caches their upper-level locality.
func LevelPrefix(vpn uint64, level int) uint64 {
	return vpn >> (9 * uint(WalkLevels-1-level))
}

// PTE is a page-table entry. Frame is a physical page number (PPN) unless
// VC is set, in which case it is a cache block number (CA).
type PTE struct {
	Frame uint64
	VC    bool // valid-in-cache
	NC    bool // non-cacheable
	PU    bool // pending update
	// Super marks a superpage mapping: the PTE covers a whole aligned
	// region and Frame is the region's base PPN (or region CA when VC is
	// set). Section 6 extends the GIPT with matching page-type bits.
	Super bool
}

// String renders the entry like the paper's figures: "(VC,NC)=(1,0) → CA-3".
func (p PTE) String() string {
	kind := "PA"
	if p.VC {
		kind = "CA"
	}
	return fmt.Sprintf("(VC,NC)=(%d,%d) %s-%d", b2i(p.VC), b2i(p.NC), kind, p.Frame)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// FrameAllocator hands out physical page frames from a fixed-size pool,
// modeling the off-package DRAM capacity.
type FrameAllocator struct {
	next uint64
	max  uint64
	free []uint64
}

// NewFrameAllocator returns an allocator over `frames` physical pages.
func NewFrameAllocator(frames uint64) *FrameAllocator {
	return &FrameAllocator{max: frames}
}

// AllocContiguous returns the base of n physically contiguous frames, as
// superpage mappings require. Contiguous ranges come from the bump region
// only (the free list may be fragmented).
func (a *FrameAllocator) AllocContiguous(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("mmu: zero-length contiguous allocation")
	}
	if a.next+n > a.max {
		return 0, ErrOutOfMemory
	}
	base := a.next
	a.next += n
	return base, nil
}

// Alloc returns a free physical page number.
func (a *FrameAllocator) Alloc() (uint64, error) {
	if n := len(a.free); n > 0 {
		ppn := a.free[n-1]
		a.free = a.free[:n-1]
		return ppn, nil
	}
	if a.next >= a.max {
		return 0, ErrOutOfMemory
	}
	ppn := a.next
	a.next++
	return ppn, nil
}

// Free returns a frame to the pool.
func (a *FrameAllocator) Free(ppn uint64) { a.free = append(a.free, ppn) }

// InUse returns the number of allocated frames.
func (a *FrameAllocator) InUse() uint64 { return a.next - uint64(len(a.free)) }

// Capacity returns the total number of frames.
func (a *FrameAllocator) Capacity() uint64 { return a.max }

// Leaf geometry of the two-level radix table: each leaf arena covers an
// aligned block of 512 virtual pages (2MB of address space), mirroring an
// x86-64 last-level page-table page.
const (
	leafBits  = 9
	leafPages = 1 << leafBits
	leafMask  = leafPages - 1
)

// ptLeaf is one arena of value PTEs. Leaves are allocated once and never
// move or shrink, so &leaf.ptes[i] pointers handed out by Walk/Lookup stay
// valid for the table's lifetime — the controller and GIPT rely on PTE
// pointer stability (pendings are keyed by *PTE).
type ptLeaf struct {
	base    uint64 // vpn >> leafBits
	present [leafPages / 64]uint64
	ptes    [leafPages]PTE
}

func (l *ptLeaf) entry(vpn uint64) (*PTE, bool) {
	off := vpn & leafMask
	if l.present[off>>6]&(1<<(off&63)) == 0 {
		return nil, false
	}
	return &l.ptes[off], true
}

func (l *ptLeaf) insert(vpn uint64, pte PTE) *PTE {
	off := vpn & leafMask
	l.present[off>>6] |= 1 << (off & 63)
	l.ptes[off] = pte
	return &l.ptes[off]
}

// PageTable maps virtual page numbers to PTEs for one address space.
// Multi-threaded workloads share one PageTable across cores (the paper
// notes shared pages within a process cause no aliasing); multi-programmed
// workloads get one PageTable per core, sharing a FrameAllocator.
//
// The table is a two-level radix structure: a sparse root keyed by the high
// vpn bits and leaf arenas of value PTEs, with a last-leaf memo so the hot
// translation path resolves repeated and spatially adjacent vpns without a
// map probe. Entries are never unmapped, which is what makes both the memo
// and the handed-out PTE pointers safe.
type PageTable struct {
	ASID  int
	alloc *FrameAllocator
	root  map[uint64]*ptLeaf
	last  *ptLeaf // most recently resolved leaf
	pages int

	Walks      uint64 // demand walks performed
	PageFaults uint64 // first-touch allocations
}

// NewPageTable creates an empty address space backed by alloc.
func NewPageTable(asid int, alloc *FrameAllocator) *PageTable {
	if alloc == nil {
		panic("mmu: nil frame allocator")
	}
	return &PageTable{ASID: asid, alloc: alloc, root: make(map[uint64]*ptLeaf)}
}

// leaf returns the leaf covering vpn, or nil when none exists.
func (pt *PageTable) leaf(vpn uint64) *ptLeaf {
	idx := vpn >> leafBits
	if l := pt.last; l != nil && l.base == idx {
		return l
	}
	l := pt.root[idx]
	if l != nil {
		pt.last = l
	}
	return l
}

// leafOrNew returns the leaf covering vpn, creating it if needed.
func (pt *PageTable) leafOrNew(vpn uint64) *ptLeaf {
	idx := vpn >> leafBits
	if l := pt.last; l != nil && l.base == idx {
		return l
	}
	l := pt.root[idx]
	if l == nil {
		l = &ptLeaf{base: idx}
		pt.root[idx] = l
	}
	pt.last = l
	return l
}

// Walk returns the PTE for vpn, allocating a physical frame on first touch
// (demand paging). The returned pointer aliases the table: the TLB miss
// handler mutates it in place exactly as the paper's handler rewrites the
// PTE during cache fills and evictions.
func (pt *PageTable) Walk(vpn uint64) (*PTE, error) {
	pt.Walks++
	l := pt.leafOrNew(vpn)
	if pte, ok := l.entry(vpn); ok {
		return pte, nil
	}
	ppn, err := pt.alloc.Alloc()
	if err != nil {
		return nil, err
	}
	pt.PageFaults++
	pt.pages++
	return l.insert(vpn, PTE{Frame: ppn}), nil
}

// WalkRegion returns the superpage PTE covering the aligned region of
// `pages` pages that contains vpn, allocating physically contiguous frames
// on first touch. The returned PTE is shared by every page of the region.
func (pt *PageTable) WalkRegion(vpn uint64, pages uint64) (*PTE, error) {
	pt.Walks++
	base := vpn &^ (pages - 1)
	l := pt.leafOrNew(base)
	if pte, ok := l.entry(base); ok {
		if !pte.Super {
			return nil, fmt.Errorf("mmu: page %d already mapped at 4KB granularity", base)
		}
		return pte, nil
	}
	ppn, err := pt.alloc.AllocContiguous(pages)
	if err != nil {
		return nil, err
	}
	pt.PageFaults++
	pt.pages++
	return l.insert(base, PTE{Frame: ppn, Super: true}), nil
}

// MapShared maps vpn to an existing physical frame owned elsewhere (an
// inter-process shared page). The frame's lifetime is the caller's concern;
// this table only references it. Mapping an already-mapped vpn is an error.
func (pt *PageTable) MapShared(vpn, ppn uint64) (*PTE, error) {
	l := pt.leafOrNew(vpn)
	if _, ok := l.entry(vpn); ok {
		return nil, fmt.Errorf("mmu: page %d already mapped", vpn)
	}
	pt.pages++
	return l.insert(vpn, PTE{Frame: ppn}), nil
}

// Lookup returns the PTE for vpn without allocating.
func (pt *PageTable) Lookup(vpn uint64) (*PTE, bool) {
	l := pt.leaf(vpn)
	if l == nil {
		return nil, false
	}
	return l.entry(vpn)
}

// SetNonCacheable pre-marks vpn as bypassing the DRAM cache (Section 3.5),
// allocating its frame if needed.
func (pt *PageTable) SetNonCacheable(vpn uint64) error {
	pte, err := pt.Walk(vpn)
	if err != nil {
		return err
	}
	if pte.VC {
		return fmt.Errorf("mmu: page %d is cached; evict before marking non-cacheable", vpn)
	}
	pte.NC = true
	return nil
}

// Pages returns the number of mapped pages.
func (pt *PageTable) Pages() int { return pt.pages }

// Range calls fn for every mapped entry in ascending vpn order (for
// superpage entries, the region-base vpn they were inserted under). The
// pointers alias the table, like Walk's. Iteration stops when fn returns
// false.
func (pt *PageTable) Range(fn func(vpn uint64, pte *PTE) bool) {
	bases := make([]uint64, 0, len(pt.root))
	for b := range pt.root {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, b := range bases {
		l := pt.root[b]
		for w, set := range l.present {
			for set != 0 {
				off := w<<6 + bits.TrailingZeros64(set)
				if !fn(l.base<<leafBits|uint64(off), &l.ptes[off]) {
					return
				}
				set &= set - 1
			}
		}
	}
}

// LeafState is one serialized leaf arena of a page table.
type LeafState struct {
	Base    uint64
	Present [leafPages / 64]uint64
	PTEs    [leafPages]PTE
}

// TableState is a page table's serializable state (ASID and the backing
// allocator are construction inputs).
type TableState struct {
	Leaves     []LeafState
	Pages      int
	Walks      uint64
	PageFaults uint64
}

// State snapshots the table, leaves sorted by base for stable output.
func (pt *PageTable) State() TableState {
	st := TableState{
		Leaves:     make([]LeafState, 0, len(pt.root)),
		Pages:      pt.pages,
		Walks:      pt.Walks,
		PageFaults: pt.PageFaults,
	}
	bases := make([]uint64, 0, len(pt.root))
	for b := range pt.root {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, b := range bases {
		l := pt.root[b]
		st.Leaves = append(st.Leaves, LeafState{Base: l.base, Present: l.present, PTEs: l.ptes})
	}
	return st
}

// SetState rebuilds the table from a snapshot. Previously handed-out PTE
// pointers are invalidated; callers must re-resolve them (the checkpoint
// layer re-links GIPT and alias references through Lookup).
func (pt *PageTable) SetState(st TableState) {
	pt.root = make(map[uint64]*ptLeaf, len(st.Leaves))
	pt.last = nil
	for i := range st.Leaves {
		ls := &st.Leaves[i]
		l := &ptLeaf{base: ls.Base, present: ls.Present, ptes: ls.PTEs}
		pt.root[l.base] = l
	}
	pt.pages = st.Pages
	pt.Walks = st.Walks
	pt.PageFaults = st.PageFaults
}

// AllocState is a FrameAllocator's serializable state.
type AllocState struct {
	Next uint64
	Free []uint64
}

// State snapshots the allocator.
func (a *FrameAllocator) State() AllocState {
	return AllocState{Next: a.next, Free: append([]uint64(nil), a.free...)}
}

// SetState restores a snapshot taken from an allocator of equal capacity.
func (a *FrameAllocator) SetState(st AllocState) {
	a.next = st.Next
	a.free = append(a.free[:0], st.Free...)
}

// CachedPages counts entries with VC set — used to validate the invariant
// that it always equals the number of GIPT entries pointing at this table.
func (pt *PageTable) CachedPages() int {
	n := 0
	for _, l := range pt.root {
		for w, set := range l.present {
			for set != 0 {
				off := w<<6 + bits.TrailingZeros64(set)
				if l.ptes[off].VC {
					n++
				}
				set &= set - 1
			}
		}
	}
	return n
}
