// Package dramcache provides the baseline DRAM-cache organizations the
// paper compares against (Section 4): the page-based cache with an on-die
// SRAM tag array ("SRAM"), and the OS-oblivious bank-interleaved
// heterogeneous memory ("BI"). The proposed tagless organization lives in
// internal/core; the NoL3 and Ideal settings need no state.
package dramcache

import "fmt"

// Victim describes a page displaced from the SRAM-tag cache.
type Victim struct {
	PPN   uint64 // physical page written back
	Slot  uint64 // cache slot it occupied
	Dirty bool
}

type pslot struct {
	ppn   uint64
	valid bool
	dirty bool
	used  uint64
}

// PageCache models the SRAM-tag page-based DRAM cache: an N-way
// set-associative array of page frames with LRU replacement, whose tag
// array lives in on-die SRAM and costs TagLatency cycles on every L3
// access, hit or miss (Section 2.2).
type PageCache struct {
	ways       int
	sets       [][]pslot
	tick       uint64
	tagLatency int

	Lookups    uint64
	Hits       uint64
	MissFills  uint64
	Evictions  uint64
	Writebacks uint64
}

// NewPageCache builds a cache of `pages` page frames with the given
// associativity. Tag latency comes from the Table 6 model for the
// corresponding capacity.
func NewPageCache(pages, ways int, tagLatency int) *PageCache {
	if pages <= 0 || ways <= 0 || pages%ways != 0 {
		panic(fmt.Sprintf("dramcache: bad geometry pages=%d ways=%d", pages, ways))
	}
	if tagLatency < 0 {
		panic("dramcache: negative tag latency")
	}
	c := &PageCache{ways: ways, sets: make([][]pslot, pages/ways), tagLatency: tagLatency}
	for i := range c.sets {
		c.sets[i] = make([]pslot, ways)
	}
	return c
}

// TagLatency returns the SRAM tag-array access cost in cycles.
func (c *PageCache) TagLatency() int { return c.tagLatency }

// Pages returns the cache capacity in page frames.
func (c *PageCache) Pages() int { return len(c.sets) * c.ways }

func (c *PageCache) set(ppn uint64) (int, []pslot) {
	si := int(ppn % uint64(len(c.sets)))
	return si, c.sets[si]
}

// slotIndex converts (set, way) to the flat cache-frame index, which is the
// page's address within the in-package device.
func (c *PageCache) slotIndex(si, way int) uint64 {
	return uint64(si*c.ways + way)
}

// Lookup performs the tag check for ppn. On a hit it refreshes LRU state,
// marks dirtiness for writes, and returns the page's cache slot.
func (c *PageCache) Lookup(ppn uint64, write bool) (slot uint64, hit bool) {
	c.Lookups++
	c.tick++
	si, set := c.set(ppn)
	for w := range set {
		s := &set[w]
		if s.valid && s.ppn == ppn {
			c.Hits++
			s.used = c.tick
			if write {
				s.dirty = true
			}
			return c.slotIndex(si, w), true
		}
	}
	return 0, false
}

// Fill allocates a frame for ppn after a miss, returning the slot and any
// displaced victim. The caller models the fill and write-back traffic.
func (c *PageCache) Fill(ppn uint64, write bool) (slot uint64, victim Victim, hasVictim bool) {
	c.tick++
	c.MissFills++
	si, set := c.set(ppn)
	vi := 0
	for w := range set {
		if !set[w].valid {
			vi = w
			break
		}
		if set[w].used < set[vi].used {
			vi = w
		}
	}
	s := &set[vi]
	if s.valid {
		hasVictim = true
		victim = Victim{PPN: s.ppn, Slot: c.slotIndex(si, vi), Dirty: s.dirty}
		c.Evictions++
		if s.dirty {
			c.Writebacks++
		}
	}
	*s = pslot{ppn: ppn, valid: true, dirty: write, used: c.tick}
	return c.slotIndex(si, vi), victim, hasVictim
}

// Peek returns the slot holding ppn without perturbing LRU state or
// counters (used to route write-back traffic).
func (c *PageCache) Peek(ppn uint64) (slot uint64, ok bool) {
	si, set := c.set(ppn)
	for w := range set {
		if set[w].valid && set[w].ppn == ppn {
			return c.slotIndex(si, w), true
		}
	}
	return 0, false
}

// MarkDirty sets ppn's dirty bit if resident, reporting whether it was.
func (c *PageCache) MarkDirty(ppn uint64) bool {
	_, set := c.set(ppn)
	for w := range set {
		if set[w].valid && set[w].ppn == ppn {
			set[w].dirty = true
			return true
		}
	}
	return false
}

// Contains reports residence without perturbing LRU state.
func (c *PageCache) Contains(ppn uint64) bool {
	_, set := c.set(ppn)
	for w := range set {
		if set[w].valid && set[w].ppn == ppn {
			return true
		}
	}
	return false
}

// HitRate returns hits/lookups, or 0 before any lookup.
func (c *PageCache) HitRate() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Lookups)
}

// Occupancy returns the number of valid page frames.
func (c *PageCache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for w := range set {
			if set[w].valid {
				n++
			}
		}
	}
	return n
}

// TagEnergyPJ returns the SRAM tag-array energy spent so far: every lookup
// reads all ways of one set; fills rewrite one entry. The per-access energy
// model follows the CACTI-style scaling the paper's energy numbers build on.
func (c *PageCache) TagEnergyPJ() float64 {
	const readPJ = 18.0 // one N-way tag-set read (4MB SRAM array)
	const writePJ = 6.0 // one tag entry update
	return float64(c.Lookups)*readPJ + float64(c.MissFills+c.Evictions)*writePJ
}

// ResetStats clears counters, keeping contents.
func (c *PageCache) ResetStats() {
	c.Lookups, c.Hits, c.MissFills, c.Evictions, c.Writebacks = 0, 0, 0, 0, 0
}

// Counters snapshots the five statistics counters.
func (c *PageCache) Counters() [5]uint64 {
	return [5]uint64{c.Lookups, c.Hits, c.MissFills, c.Evictions, c.Writebacks}
}

// SetCounters restores counters captured by Counters.
func (c *PageCache) SetCounters(v [5]uint64) {
	c.Lookups, c.Hits, c.MissFills, c.Evictions, c.Writebacks = v[0], v[1], v[2], v[3], v[4]
}

// PageSlotState is one serialized page frame of the SRAM-tag cache.
type PageSlotState struct {
	PPN   uint64
	Valid bool
	Dirty bool
	Used  uint64
}

// PageCacheState is the cache's serializable state (set-major slots).
type PageCacheState struct {
	Slots    []PageSlotState
	Tick     uint64
	Counters [5]uint64
}

// State snapshots the cache.
func (c *PageCache) State() PageCacheState {
	st := PageCacheState{
		Slots:    make([]PageSlotState, 0, len(c.sets)*c.ways),
		Tick:     c.tick,
		Counters: c.Counters(),
	}
	for _, set := range c.sets {
		for w := range set {
			s := &set[w]
			st.Slots = append(st.Slots, PageSlotState{PPN: s.ppn, Valid: s.valid, Dirty: s.dirty, Used: s.used})
		}
	}
	return st
}

// SetState restores a snapshot taken from an identically-sized cache.
func (c *PageCache) SetState(st PageCacheState) {
	if len(st.Slots) != len(c.sets)*c.ways {
		panic(fmt.Sprintf("dramcache: page-cache state mismatch (%d vs %d slots)", len(st.Slots), len(c.sets)*c.ways))
	}
	i := 0
	for _, set := range c.sets {
		for w := range set {
			s := st.Slots[i]
			set[w] = pslot{ppn: s.PPN, valid: s.Valid, dirty: s.Dirty, used: s.Used}
			i++
		}
	}
	c.tick = st.Tick
	c.SetCounters(st.Counters)
}

// BankInterleaver implements the "BI" heterogeneous-memory baseline: the
// in-package DRAM is mapped into the physical address space and pages are
// interleaved OS-obliviously, so a capacity-proportional fraction of pages
// (1GB of 9GB total = 1/9 by default) lands in the fast region.
type BankInterleaver struct {
	inPkgPages  uint64
	offPkgPages uint64
	stride      uint64 // one in-package page every `stride` pages

	InPkgAccesses  uint64
	OffPkgAccesses uint64
}

// NewBankInterleaver builds the mapper from device capacities in pages.
func NewBankInterleaver(inPkgPages, offPkgPages uint64) *BankInterleaver {
	if inPkgPages == 0 || offPkgPages == 0 {
		panic("dramcache: interleaver needs both regions")
	}
	stride := (inPkgPages + offPkgPages + inPkgPages - 1) / inPkgPages
	if stride < 2 {
		stride = 2
	}
	return &BankInterleaver{inPkgPages: inPkgPages, offPkgPages: offPkgPages, stride: stride}
}

// Stride returns the interleave period (one in-package page per stride).
func (b *BankInterleaver) Stride() uint64 { return b.stride }

// Map translates a physical page number to (device-local page, in-package?).
// Page k*stride lives in-package (wrapping within the region); all others
// are off-package.
func (b *BankInterleaver) Map(ppn uint64) (devPage uint64, inPkg bool) {
	if ppn%b.stride == 0 {
		b.InPkgAccesses++
		return (ppn / b.stride) % b.inPkgPages, true
	}
	b.OffPkgAccesses++
	return (ppn - ppn/b.stride - 1) % b.offPkgPages, false
}

// InPkgFraction returns the fraction of observed accesses served in-package.
func (b *BankInterleaver) InPkgFraction() float64 {
	total := b.InPkgAccesses + b.OffPkgAccesses
	if total == 0 {
		return 0
	}
	return float64(b.InPkgAccesses) / float64(total)
}
