package dramcache

import (
	"testing"
	"testing/quick"
)

func tinyBlock() *BlockCache { return NewBlockCache(8 * TADBytes) } // 8 slots

func TestBlockCacheMissThenHit(t *testing.T) {
	c := tinyBlock()
	if _, hit := c.Lookup(0x1000, false); hit {
		t.Fatal("cold lookup hit")
	}
	c.Fill(0x1000, false)
	slot, hit := c.Lookup(0x1000, false)
	if !hit {
		t.Fatal("filled block missed")
	}
	if slot != (0x1000>>6)%8 {
		t.Fatalf("slot = %d", slot)
	}
	if c.Hits != 1 || c.Lookups != 2 || c.MissFills != 1 {
		t.Fatalf("counters = %d/%d/%d", c.Hits, c.Lookups, c.MissFills)
	}
}

func TestBlockCacheDirectMappedConflict(t *testing.T) {
	c := tinyBlock()
	// Two blocks 8*64 bytes apart collide in a direct-mapped 8-slot cache.
	a, b := uint64(0), uint64(8*64)
	c.Fill(a, true)
	_, victim, has := c.Fill(b, false)
	if !has || victim.BlockAddr != a || !victim.Dirty {
		t.Fatalf("victim = %+v (has=%v)", victim, has)
	}
	if c.Contains(a) || !c.Contains(b) {
		t.Fatal("direct-mapped replacement wrong")
	}
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Writebacks)
	}
}

func TestBlockCacheCapacitySplit(t *testing.T) {
	// 1GB of TADs: data capacity ~910MB, tags ~114MB — the 12.5%-of-data
	// overhead the paper's introduction computes.
	c := NewBlockCache(1 << 30)
	if c.DataBytes()+c.TagBytes() > 1<<30 {
		t.Fatal("TADs exceed device capacity")
	}
	ratio := float64(c.TagBytes()) / float64(c.DataBytes())
	if ratio < 0.12 || ratio > 0.13 {
		t.Fatalf("tag/data ratio = %v, want 8/64", ratio)
	}
}

func TestBlockCacheTADAddrInRange(t *testing.T) {
	c := NewBlockCache(1 << 20)
	for _, addr := range []uint64{0, 64, 4096, 1 << 30} {
		slot, _ := c.Lookup(addr, false)
		if tad := c.TADAddr(slot); tad+TADBytes > 1<<20 {
			t.Fatalf("TAD address %d out of device", tad)
		}
	}
}

func TestBlockCacheMarkDirty(t *testing.T) {
	c := tinyBlock()
	if _, ok := c.MarkDirty(0x40); ok {
		t.Fatal("marked absent block dirty")
	}
	wantSlot, _, _ := c.Fill(0x40, false)
	slot, ok := c.MarkDirty(0x40)
	if !ok {
		t.Fatal("mark dirty missed resident block")
	}
	if slot != wantSlot {
		t.Fatalf("MarkDirty slot = %d, Fill slot = %d", slot, wantSlot)
	}
	_, v, _ := c.Fill(0x40+8*64, false)
	if !v.Dirty {
		t.Fatal("dirtiness lost")
	}
}

func TestBlockCacheStatsAndReset(t *testing.T) {
	c := tinyBlock()
	c.Fill(0, false)
	c.Lookup(0, false)
	c.Lookup(64, false)
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
	c.ResetStats()
	if c.Lookups != 0 || c.HitRate() != 0 {
		t.Fatal("reset failed")
	}
	if !c.Contains(0) {
		t.Fatal("reset dropped contents")
	}
}

func TestBlockCachePanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBlockCache(10)
}

// Property: after any fill, the block is resident and occupancy never
// exceeds the slot count; a write hit is always recoverable as dirty.
func TestBlockCacheInvariantProperty(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c := tinyBlock()
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			addr := uint64(a)
			if _, hit := c.Lookup(addr, w); !hit {
				c.Fill(addr, w)
			}
			if !c.Contains(addr) {
				return false
			}
		}
		return c.Occupancy() <= c.Sets()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
