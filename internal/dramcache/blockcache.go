package dramcache

import "fmt"

// TADBytes is the size of one tag-and-data unit in the block-based cache:
// a 64-byte line plus an 8-byte tag, streamed out of DRAM in one burst as
// in Alloy Cache (Qureshi & Loh, MICRO'12), which the paper uses as its
// block-based reference point (Table 2, Section 7).
const TADBytes = 72

// BlockVictim describes a line displaced from the block cache.
type BlockVictim struct {
	BlockAddr uint64 // physical address of the displaced 64B line
	Dirty     bool
}

// BlockCache models the block-based DRAM cache class of Table 2: a
// direct-mapped cache of 64-byte lines whose tags live in the in-package
// DRAM alongside the data (tags-in-DRAM), so every lookup costs one
// in-package TAD read and hits need no second access. Tag storage consumes
// 8/72 of the device capacity — the scalability problem that motivates the
// tagless design.
//
// The struct is functional (presence, LRU-free direct mapping, dirtiness);
// the caller issues the corresponding DRAM traffic.
type BlockCache struct {
	sets []blockSlot

	Lookups    uint64
	Hits       uint64
	MissFills  uint64
	Writebacks uint64
}

type blockSlot struct {
	tag   uint64
	valid bool
	dirty bool
}

// NewBlockCache builds a block cache backed by capacityBytes of in-package
// DRAM (data + in-DRAM tags).
func NewBlockCache(capacityBytes int64) *BlockCache {
	n := capacityBytes / TADBytes
	if n <= 0 {
		panic(fmt.Sprintf("dramcache: block cache capacity %d too small", capacityBytes))
	}
	return &BlockCache{sets: make([]blockSlot, n)}
}

// Sets returns the number of direct-mapped TAD slots.
func (c *BlockCache) Sets() int { return len(c.sets) }

// DataBytes returns the usable data capacity (excluding in-DRAM tags).
func (c *BlockCache) DataBytes() int64 { return int64(len(c.sets)) * 64 }

// TagBytes returns the in-package capacity consumed by tags.
func (c *BlockCache) TagBytes() int64 { return int64(len(c.sets)) * (TADBytes - 64) }

// slotOf maps a 64B-aligned physical block address to its slot.
func (c *BlockCache) slotOf(blockAddr uint64) (slot uint64, tag uint64) {
	b := blockAddr >> 6
	return b % uint64(len(c.sets)), b
}

// TADAddr returns the in-package device byte address of a slot's TAD.
func (c *BlockCache) TADAddr(slot uint64) uint64 { return slot * TADBytes }

// Lookup checks residence of the block containing addr, marking dirtiness
// on write hits. It returns the slot (whose TAD the caller has just read —
// tag check and data access are one DRAM burst).
func (c *BlockCache) Lookup(addr uint64, write bool) (slot uint64, hit bool) {
	c.Lookups++
	s, tag := c.slotOf(addr)
	sl := &c.sets[s]
	if sl.valid && sl.tag == tag {
		c.Hits++
		if write {
			sl.dirty = true
		}
		return s, true
	}
	return s, false
}

// Fill installs the block containing addr after a miss, returning any
// displaced dirty victim for write-back.
func (c *BlockCache) Fill(addr uint64, write bool) (slot uint64, victim BlockVictim, hasVictim bool) {
	c.MissFills++
	s, tag := c.slotOf(addr)
	sl := &c.sets[s]
	if sl.valid {
		hasVictim = true
		victim = BlockVictim{BlockAddr: sl.tag << 6, Dirty: sl.dirty}
		if sl.dirty {
			c.Writebacks++
		}
	}
	*sl = blockSlot{tag: tag, valid: true, dirty: write}
	return s, victim, hasVictim
}

// Contains reports residence without counters.
func (c *BlockCache) Contains(addr uint64) bool {
	s, tag := c.slotOf(addr)
	return c.sets[s].valid && c.sets[s].tag == tag
}

// MarkDirty sets the dirty bit if the block is resident, returning the
// slot it occupies so write-back traffic can be routed without a second
// probe (Lookup would inflate the Lookups/Hits counters).
func (c *BlockCache) MarkDirty(addr uint64) (slot uint64, ok bool) {
	s, tag := c.slotOf(addr)
	if c.sets[s].valid && c.sets[s].tag == tag {
		c.sets[s].dirty = true
		return s, true
	}
	return 0, false
}

// HitRate returns hits/lookups, or 0 before any lookup.
func (c *BlockCache) HitRate() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Lookups)
}

// Occupancy returns the number of valid lines.
func (c *BlockCache) Occupancy() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].valid {
			n++
		}
	}
	return n
}

// ResetStats clears counters, keeping contents.
func (c *BlockCache) ResetStats() {
	c.Lookups, c.Hits, c.MissFills, c.Writebacks = 0, 0, 0, 0
}

// Counters snapshots the four statistics counters.
func (c *BlockCache) Counters() [4]uint64 {
	return [4]uint64{c.Lookups, c.Hits, c.MissFills, c.Writebacks}
}

// SetCounters restores counters captured by Counters.
func (c *BlockCache) SetCounters(v [4]uint64) {
	c.Lookups, c.Hits, c.MissFills, c.Writebacks = v[0], v[1], v[2], v[3]
}

// BlockSlotState is one serialized TAD slot of the block cache.
type BlockSlotState struct {
	Tag   uint64
	Valid bool
	Dirty bool
}

// BlockCacheState is the cache's serializable state.
type BlockCacheState struct {
	Slots    []BlockSlotState
	Counters [4]uint64
}

// State snapshots the cache.
func (c *BlockCache) State() BlockCacheState {
	st := BlockCacheState{Slots: make([]BlockSlotState, len(c.sets)), Counters: c.Counters()}
	for i := range c.sets {
		st.Slots[i] = BlockSlotState{Tag: c.sets[i].tag, Valid: c.sets[i].valid, Dirty: c.sets[i].dirty}
	}
	return st
}

// SetState restores a snapshot taken from an identically-sized cache.
func (c *BlockCache) SetState(st BlockCacheState) {
	if len(st.Slots) != len(c.sets) {
		panic(fmt.Sprintf("dramcache: block-cache state mismatch (%d vs %d slots)", len(st.Slots), len(c.sets)))
	}
	for i := range c.sets {
		c.sets[i] = blockSlot{tag: st.Slots[i].Tag, valid: st.Slots[i].Valid, dirty: st.Slots[i].Dirty}
	}
	c.SetCounters(st.Counters)
}
