package dramcache

import (
	"math"
	"testing"
	"testing/quick"
)

func small() *PageCache { return NewPageCache(8, 2, 11) } // 4 sets x 2 ways

func TestLookupMissThenFillThenHit(t *testing.T) {
	c := small()
	if _, hit := c.Lookup(5, false); hit {
		t.Fatal("cold lookup hit")
	}
	slot, _, hasVictim := c.Fill(5, false)
	if hasVictim {
		t.Fatal("fill into empty cache evicted")
	}
	got, hit := c.Lookup(5, false)
	if !hit || got != slot {
		t.Fatalf("lookup = slot %d hit %v, want %d", got, hit, slot)
	}
	if c.Hits != 1 || c.Lookups != 2 || c.MissFills != 1 {
		t.Fatalf("counters: %d/%d/%d", c.Hits, c.Lookups, c.MissFills)
	}
}

func TestSlotWithinDevice(t *testing.T) {
	c := small()
	// PPNs 1, 5, 9 map to set 1; slots must be 2 or 3 (set*ways+way).
	s1, _, _ := c.Fill(1, false)
	s2, _, _ := c.Fill(5, false)
	if s1 == s2 || s1/2 != 1 || s2/2 != 1 {
		t.Fatalf("slots = %d,%d, want distinct in set 1", s1, s2)
	}
}

func TestLRUVictim(t *testing.T) {
	c := small()
	c.Fill(0, false) // set 0
	c.Fill(4, false) // set 0
	c.Lookup(0, false)
	_, victim, has := c.Fill(8, false)
	if !has || victim.PPN != 4 {
		t.Fatalf("victim = %+v (has=%v), want PPN 4", victim, has)
	}
	if !c.Contains(0) || c.Contains(4) || !c.Contains(8) {
		t.Fatal("contents wrong after LRU eviction")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := small()
	c.Fill(0, true) // dirty on allocate
	c.Fill(4, false)
	c.Lookup(4, true) // dirty on hit
	_, v1, _ := c.Fill(8, false)
	if !v1.Dirty || v1.PPN != 0 {
		t.Fatalf("victim1 = %+v", v1)
	}
	_, v2, _ := c.Fill(12, false)
	if !v2.Dirty || v2.PPN != 4 {
		t.Fatalf("victim2 = %+v", v2)
	}
	if c.Writebacks != 2 || c.Evictions != 2 {
		t.Fatalf("wb/evict = %d/%d", c.Writebacks, c.Evictions)
	}
}

func TestHitRateOccupancyReset(t *testing.T) {
	c := small()
	c.Fill(0, false)
	c.Lookup(0, false)
	c.Lookup(1, false)
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
	if c.TagEnergyPJ() <= 0 {
		t.Fatal("tag energy should be positive")
	}
	c.ResetStats()
	if c.Lookups != 0 || c.TagEnergyPJ() != 0 {
		t.Fatal("reset failed")
	}
	if !c.Contains(0) {
		t.Fatal("reset dropped contents")
	}
}

func TestTagLatencyAndPages(t *testing.T) {
	c := small()
	if c.TagLatency() != 11 || c.Pages() != 8 {
		t.Fatalf("latency/pages = %d/%d", c.TagLatency(), c.Pages())
	}
}

func TestPageCachePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad geometry": func() { NewPageCache(7, 2, 1) },
		"zero pages":   func() { NewPageCache(0, 2, 1) },
		"neg latency":  func() { NewPageCache(8, 2, -1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// Property: occupancy bounded by capacity; a filled PPN is always found by
// the next lookup; slots stay within [0, pages).
func TestPageCacheInvariantProperty(t *testing.T) {
	f := func(ppns []uint8) bool {
		c := small()
		for _, p := range ppns {
			ppn := uint64(p)
			slot, hit := c.Lookup(ppn, false)
			if !hit {
				slot, _, _ = c.Fill(ppn, false)
			}
			if slot >= 8 {
				return false
			}
			if _, hit2 := c.Lookup(ppn, false); !hit2 {
				return false
			}
		}
		return c.Occupancy() <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distinct resident PPNs occupy distinct slots.
func TestPageCacheSlotBijectionProperty(t *testing.T) {
	f := func(ppns []uint8) bool {
		c := small()
		for _, p := range ppns {
			if !c.Contains(uint64(p)) {
				c.Fill(uint64(p), false)
			}
		}
		seen := map[uint64]bool{}
		for _, p := range ppns {
			if slot, hit := c.Lookup(uint64(p), false); hit {
				if seen[slot] {
					// Same slot twice is fine only for the same PPN;
					// second lookup of same ppn hits same slot.
					continue
				}
				seen[slot] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankInterleaverFraction(t *testing.T) {
	// 1GB in-package, 8GB off-package: stride 9, 1/9 of pages in-package.
	b := NewBankInterleaver(262144, 2097152)
	if b.Stride() != 9 {
		t.Fatalf("stride = %d, want 9", b.Stride())
	}
	inCount := 0
	const N = 90000
	for p := uint64(0); p < N; p++ {
		_, in := b.Map(p)
		if in {
			inCount++
		}
	}
	frac := float64(inCount) / N
	if math.Abs(frac-1.0/9.0) > 0.001 {
		t.Fatalf("in-package fraction = %v, want 1/9", frac)
	}
	if got := b.InPkgFraction(); math.Abs(got-frac) > 1e-9 {
		t.Fatalf("tracked fraction = %v, want %v", got, frac)
	}
}

func TestBankInterleaverDevPagesInRange(t *testing.T) {
	b := NewBankInterleaver(16, 128)
	for p := uint64(0); p < 4096; p++ {
		dev, in := b.Map(p)
		if in && dev >= 16 {
			t.Fatalf("in-package dev page %d out of range", dev)
		}
		if !in && dev >= 128 {
			t.Fatalf("off-package dev page %d out of range", dev)
		}
	}
}

func TestBankInterleaverDeterministic(t *testing.T) {
	b := NewBankInterleaver(16, 128)
	d1, i1 := b.Map(77)
	d2, i2 := b.Map(77)
	if d1 != d2 || i1 != i2 {
		t.Fatal("mapping not deterministic")
	}
}

func TestBankInterleaverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBankInterleaver(0, 128)
}

func TestBankInterleaverEmptyFraction(t *testing.T) {
	b := NewBankInterleaver(16, 128)
	if b.InPkgFraction() != 0 {
		t.Fatal("fraction before any access should be 0")
	}
}

func TestPageCachePeekAndMarkDirty(t *testing.T) {
	c := small()
	if _, ok := c.Peek(5); ok {
		t.Fatal("peek found absent page")
	}
	slot, _, _ := c.Fill(5, false)
	got, ok := c.Peek(5)
	if !ok || got != slot {
		t.Fatalf("peek = %d,%v, want %d", got, ok, slot)
	}
	// Peek must not perturb counters.
	before := c.Lookups
	c.Peek(5)
	if c.Lookups != before {
		t.Fatal("peek counted as a lookup")
	}
	if c.MarkDirty(99) {
		t.Fatal("marked absent page dirty")
	}
	if !c.MarkDirty(5) {
		t.Fatal("mark dirty missed resident page")
	}
	_, victim, _ := c.Fill(1, false) // different set; no eviction of 5
	_ = victim
	c.Fill(9, false)
	_, v2, has := c.Fill(13, false) // set 1 now evicts LRU (5)
	if has && v2.PPN == 5 && !v2.Dirty {
		t.Fatal("dirtiness set by MarkDirty was lost")
	}
}
