package amat

import "fmt"

// CPIInputs extends the AMAT model to whole-program cycles-per-instruction,
// mirroring the simulator's core model: a base issue term plus the exposed
// (non-overlapped) memory time. Only TLB-miss handling and dependent-load
// latency are exposed; independent misses overlap in the MSHR window.
type CPIInputs struct {
	IssueWidth   int     // retired instructions per cycle when not stalled
	RefsPerInstr float64 // memory references per instruction
	DepFrac      float64 // fraction of references on dependence chains
}

// Validate reports the first out-of-range field.
func (c CPIInputs) Validate() error {
	switch {
	case c.IssueWidth <= 0:
		return errf("IssueWidth %d must be positive", c.IssueWidth)
	case c.RefsPerInstr < 0 || c.RefsPerInstr > 1:
		return errf("RefsPerInstr %v out of [0,1]", c.RefsPerInstr)
	case c.DepFrac < 0 || c.DepFrac > 1:
		return errf("DepFrac %v out of [0,1]", c.DepFrac)
	}
	return nil
}

// cpi composes the base issue cost with per-reference exposed memory time.
func (c CPIInputs) cpi(tlbPerRef, tlbPenalty, l3PerRef, l3Lat float64) float64 {
	base := 1 / float64(c.IssueWidth)
	exposed := tlbPerRef*tlbPenalty + c.DepFrac*l3PerRef*l3Lat
	return base + c.RefsPerInstr*exposed
}

// PredictCPINoL3 predicts cycles-per-instruction for the no-DRAM-cache
// baseline.
func PredictCPINoL3(in Inputs, c CPIInputs) float64 {
	return c.cpi(in.MissRateTLB, in.MissPenaltyTLB, in.MissRateL12, in.BlockOffPkgMiss)
}

// MissPenaltyCTLBCritical is the Equation 5 penalty under
// critical-block-first fills: the handler waits for the GIPT update and
// the faulting 64B block, not the whole page transfer.
func MissPenaltyCTLBCritical(in Inputs) float64 {
	return in.MissPenaltyTLB + in.MissRateVictim*(in.GIPTAccess+in.BlockOffPkgMiss)
}

// PredictCPISRAMTag predicts CPI for the SRAM-tag page cache. L3 hits are
// exposed only on dependence chains; L3 misses serialize the requester
// until the critical block arrives (tag check plus one off-package block),
// matching the simulator's fill path.
func PredictCPISRAMTag(in Inputs, c CPIInputs) float64 {
	base := 1 / float64(c.IssueWidth)
	hitExposed := c.DepFrac * (1 - in.MissRateL3) * (in.TagAccess + in.BlockInPkg)
	missExposed := in.MissRateL3 * (in.TagAccess + in.BlockOffPkgMiss)
	exposed := in.MissRateTLB*in.MissPenaltyTLB + in.MissRateL12*(hitExposed+missExposed)
	return base + c.RefsPerInstr*exposed
}

// PredictCPITagless predicts CPI for the tagless cache: cTLB misses expose
// the critical-block Equation 5 penalty; dependent L3 accesses expose only
// the bare in-package block access (no tag term).
func PredictCPITagless(in Inputs, c CPIInputs) float64 {
	return c.cpi(in.MissRateTLB, MissPenaltyCTLBCritical(in), in.MissRateL12, in.BlockInPkg)
}

// PredictIPC converts a predicted CPI to IPC.
func PredictIPC(cpi float64) float64 {
	if cpi <= 0 {
		return 0
	}
	return 1 / cpi
}

func errf(format string, args ...any) error {
	return fmt.Errorf("amat: "+format, args...)
}
