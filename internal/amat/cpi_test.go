package amat

import (
	"testing"
	"testing/quick"
)

func cpiInputs() CPIInputs {
	return CPIInputs{IssueWidth: 4, RefsPerInstr: 0.11, DepFrac: 0.45}
}

func TestCPIValidation(t *testing.T) {
	good := cpiInputs()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*CPIInputs){
		func(c *CPIInputs) { c.IssueWidth = 0 },
		func(c *CPIInputs) { c.RefsPerInstr = 2 },
		func(c *CPIInputs) { c.DepFrac = -0.1 },
	} {
		c := cpiInputs()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("invalid inputs accepted: %+v", c)
		}
	}
}

func TestCPIDesignOrdering(t *testing.T) {
	// At a steady-state (reuse-dominated) operating point the analytic
	// CPI model must reproduce the design ordering:
	// tagless < SRAM-tag < NoL3.
	in, c := paperInputs(), cpiInputs()
	in.MissRateVictim = 0.1
	in.MissRateL3 = in.MissRateTLB * in.MissRateVictim / in.MissRateL12
	noL3 := PredictCPINoL3(in, c)
	sram := PredictCPISRAMTag(in, c)
	ctlb := PredictCPITagless(in, c)
	if !(ctlb < sram && sram < noL3) {
		t.Fatalf("CPI ordering wrong: cTLB=%.4f SRAM=%.4f NoL3=%.4f", ctlb, sram, noL3)
	}
	if ipc := PredictIPC(ctlb); ipc <= PredictIPC(sram) {
		t.Fatalf("IPC inversion: %v vs %v", ipc, PredictIPC(sram))
	}
}

func TestCPIBaseFloor(t *testing.T) {
	// With no memory references, CPI collapses to the issue floor.
	in, c := paperInputs(), cpiInputs()
	c.RefsPerInstr = 0
	for _, cpi := range []float64{
		PredictCPINoL3(in, c), PredictCPISRAMTag(in, c), PredictCPITagless(in, c),
	} {
		if cpi != 0.25 {
			t.Fatalf("memory-free CPI = %v, want 0.25", cpi)
		}
	}
}

func TestPredictIPCEdge(t *testing.T) {
	if PredictIPC(0) != 0 || PredictIPC(-1) != 0 {
		t.Fatal("non-positive CPI should predict zero IPC")
	}
	if PredictIPC(0.5) != 2 {
		t.Fatal("IPC inversion wrong")
	}
}

// Property: CPI is monotone in memory intensity and dependence fraction —
// more exposed memory time never speeds a program up.
func TestCPIMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		in := paperInputs()
		lo := float64(a%100) / 100 * 0.5
		hi := lo + float64(b%100)/100*(0.5-lo)
		cl, ch := cpiInputs(), cpiInputs()
		cl.RefsPerInstr, ch.RefsPerInstr = lo, hi
		if PredictCPITagless(in, cl) > PredictCPITagless(in, ch)+1e-12 {
			return false
		}
		cl, ch = cpiInputs(), cpiInputs()
		cl.DepFrac, ch.DepFrac = lo*2, hi*2
		return PredictCPISRAMTag(in, cl) <= PredictCPISRAMTag(in, ch)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the tagless CPI advantage over SRAM-tag grows with tag latency.
func TestCPITagSensitivityProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		t1, t2 := float64(a%40), float64(b%40)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		c := cpiInputs()
		in1, in2 := paperInputs(), paperInputs()
		in1.TagAccess, in2.TagAccess = t1, t2
		g1 := PredictCPISRAMTag(in1, c) - PredictCPITagless(in1, c)
		g2 := PredictCPISRAMTag(in2, c) - PredictCPITagless(in2, c)
		return g1 <= g2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
