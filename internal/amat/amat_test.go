package amat

import (
	"math"
	"testing"
	"testing/quick"
)

// paperInputs approximates the evaluated machine: 3GHz, Table 4 devices,
// 11-cycle tags (Table 6, 1GB), 40-cycle walks.
// The rates are mutually consistent: both designs cache the same pages, so
// SRAM's L3 miss rate equals the tagless fill rate per L3 access
// (MissRateTLB × MissRateVictim / MissRateL12 = 0.002·0.3/0.025 = 0.024).
func paperInputs() Inputs {
	return Inputs{
		MissRateTLB:     0.002,
		MissRateL12:     0.025,
		MissRateL3:      0.024,
		MissRateVictim:  0.3,
		MissPenaltyTLB:  40,
		HitTimeL12:      4,
		TagAccess:       11,
		BlockInPkg:      58,
		PageOffPkg:      1050,
		GIPTAccess:      200,
		BlockOffPkgMiss: 100,
	}
}

func TestEquation3(t *testing.T) {
	in := paperInputs()
	got := AvgL3LatencySRAM(in)
	want := 11 + 58 + 0.024*1050
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("AvgL3 = %v, want %v", got, want)
	}
}

func TestEquation1(t *testing.T) {
	in := paperInputs()
	want := 0.002*40 + 4 + 0.025*(11+58+0.024*1050)
	if got := SRAMTag(in); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SRAMTag = %v, want %v", got, want)
	}
}

func TestEquation5(t *testing.T) {
	in := paperInputs()
	want := 40 + 0.3*(200+1050)
	if got := MissPenaltyCTLB(in); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MissPenaltyCTLB = %v, want %v", got, want)
	}
}

func TestEquation4(t *testing.T) {
	in := paperInputs()
	want := 0.002*(40+0.3*(200+1050)) + 4 + 0.025*58
	if got := Tagless(in); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Tagless = %v, want %v", got, want)
	}
}

func TestTaglessBeatsSRAMAtPaperPoint(t *testing.T) {
	// Section 3.1: AMAT_Tagless is consistently lower than AMAT_SRAM-tag
	// for the evaluated configurations.
	in := paperInputs()
	if Tagless(in) >= SRAMTag(in) {
		t.Fatalf("tagless %v not below SRAM-tag %v", Tagless(in), SRAMTag(in))
	}
}

func TestBothCachesBeatNoL3(t *testing.T) {
	in := paperInputs()
	if SRAMTag(in) >= NoL3(in) || Tagless(in) >= NoL3(in) {
		t.Fatalf("caches should beat NoL3: sram=%v tagless=%v nol3=%v",
			SRAMTag(in), Tagless(in), NoL3(in))
	}
}

func TestTagLatencySensitivity(t *testing.T) {
	// Zeroing the tag latency should close most of the gap.
	in := paperInputs()
	gap := SRAMTag(in) - Tagless(in)
	in.TagAccess = 0
	gap0 := SRAMTag(in) - Tagless(in)
	if gap0 >= gap {
		t.Fatalf("gap with free tags (%v) should shrink from %v", gap0, gap)
	}
}

func TestAvgL3LatencyTagless(t *testing.T) {
	in := paperInputs()
	got := AvgL3LatencyTagless(in)
	if got <= in.BlockInPkg {
		t.Fatalf("tagless L3 latency %v must include amortized handler cost", got)
	}
	// With no L3 traffic the latency degenerates to the block access.
	in.MissRateL12 = 0
	if AvgL3LatencyTagless(in) != in.BlockInPkg {
		t.Fatal("degenerate case wrong")
	}
}

func TestFigure8Shape(t *testing.T) {
	// With high hit rates (victim miss rate low) tagless L3 latency is
	// below SRAM-tag's; a first-touch-dominated program (GemsFDTD-like,
	// victim miss rate near 1) shows no significant difference.
	in := paperInputs()
	if AvgL3LatencyTagless(in) >= AvgL3LatencySRAMFig8(in) {
		t.Fatalf("tagless %v not below SRAM %v",
			AvgL3LatencyTagless(in), AvgL3LatencySRAMFig8(in))
	}
	// First-touch dominated (GemsFDTD-like): victim misses ≈ 1, and the
	// SRAM cache misses at the matching rate — the gap nearly vanishes.
	gems := in
	gems.MissRateVictim = 0.95
	gems.MissRateTLB = 0.01
	gems.MissRateL3 = gems.MissRateTLB * gems.MissRateVictim / gems.MissRateL12
	diff := math.Abs(AvgL3LatencyTagless(gems) - AvgL3LatencySRAMFig8(gems))
	rel := diff / AvgL3LatencySRAMFig8(gems)
	if rel > 0.25 {
		t.Fatalf("first-touch-dominated gap = %.0f%%, want small", rel*100)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(100, 80) != 1.25 {
		t.Fatal("speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("zero denominator should give 0")
	}
}

func TestValidate(t *testing.T) {
	good := paperInputs()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.MissRateTLB = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("bad rate accepted")
	}
	bad = good
	bad.TagAccess = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
}

// Property: AMAT is monotone in each miss rate — more misses never makes
// memory faster.
func TestMonotonicityProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		in := paperInputs()
		lo := float64(a%100) / 100
		hi := lo + float64(b%100)/100*(1-lo)
		inLo, inHi := in, in
		inLo.MissRateL12, inHi.MissRateL12 = lo, hi
		if SRAMTag(inLo) > SRAMTag(inHi)+1e-9 || Tagless(inLo) > Tagless(inHi)+1e-9 {
			return false
		}
		inLo, inHi = in, in
		inLo.MissRateTLB, inHi.MissRateTLB = lo, hi
		return SRAMTag(inLo) <= SRAMTag(inHi)+1e-9 && Tagless(inLo) <= Tagless(inHi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the tagless advantage grows with tag latency, all else equal.
func TestTagLatencyGrowsGapProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		t1, t2 := float64(a%50), float64(b%50)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		in1, in2 := paperInputs(), paperInputs()
		in1.TagAccess, in2.TagAccess = t1, t2
		gap1 := SRAMTag(in1) - Tagless(in1)
		gap2 := SRAMTag(in2) - Tagless(in2)
		return gap1 <= gap2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
