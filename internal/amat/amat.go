// Package amat implements the paper's analytic average-memory-access-time
// model: Equations 1–3 for the SRAM-tag page cache and Equations 4–5 for
// the proposed tagless cache (Sections 2.2 and 3.1). The experiments
// cross-check the cycle-level simulator against these closed forms.
package amat

import "fmt"

// Inputs carries the rates and component latencies (in CPU cycles) the
// equations consume. Rates are fractions in [0,1].
type Inputs struct {
	// Rates.
	MissRateTLB    float64 // TLB (or cTLB) misses per memory access
	MissRateL12    float64 // on-die L1/L2 misses per memory access
	MissRateL3     float64 // SRAM-tag L3 miss rate (per L3 access)
	MissRateVictim float64 // tagless: cTLB misses that also miss the victim cache

	// Latencies in cycles.
	MissPenaltyTLB  float64 // page-table walk
	HitTimeL12      float64 // on-die hit service time
	TagAccess       float64 // SRAM tag-array lookup (Table 6)
	BlockInPkg      float64 // 64B access to in-package DRAM
	PageOffPkg      float64 // 4KB page access to off-package DRAM
	GIPTAccess      float64 // GIPT update (conservatively 2 off-package writes)
	BlockOffPkgMiss float64 // off-package 64B access (NoL3 baseline / NC pages)
}

// Validate reports the first out-of-range field.
func (in Inputs) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"MissRateTLB", in.MissRateTLB}, {"MissRateL12", in.MissRateL12},
		{"MissRateL3", in.MissRateL3}, {"MissRateVictim", in.MissRateVictim},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("amat: %s = %v out of [0,1]", r.name, r.v)
		}
	}
	lats := []struct {
		name string
		v    float64
	}{
		{"MissPenaltyTLB", in.MissPenaltyTLB}, {"HitTimeL12", in.HitTimeL12},
		{"TagAccess", in.TagAccess}, {"BlockInPkg", in.BlockInPkg},
		{"PageOffPkg", in.PageOffPkg}, {"GIPTAccess", in.GIPTAccess},
		{"BlockOffPkgMiss", in.BlockOffPkgMiss},
	}
	for _, l := range lats {
		if l.v < 0 {
			return fmt.Errorf("amat: %s = %v negative", l.name, l.v)
		}
	}
	return nil
}

// AvgL3LatencySRAM is Equation 3: the average L3 access latency of the
// SRAM-tag cache — tag check plus in-package block access plus, on a miss,
// the off-package page access.
func AvgL3LatencySRAM(in Inputs) float64 {
	return in.TagAccess + in.BlockInPkg + in.MissRateL3*in.PageOffPkg
}

// SRAMTag is Equation 1 (with Equation 2 inlined): the AMAT of the
// SRAM-tag page cache including both translation steps.
func SRAMTag(in Inputs) float64 {
	amatTLBHit := in.HitTimeL12 + in.MissRateL12*AvgL3LatencySRAM(in)
	return in.MissRateTLB*in.MissPenaltyTLB + amatTLBHit
}

// MissPenaltyCTLB is Equation 5: the cTLB miss penalty — the conventional
// walk plus, when the victim cache also misses, the GIPT update and the
// off-package page fill.
func MissPenaltyCTLB(in Inputs) float64 {
	return in.MissPenaltyTLB + in.MissRateVictim*(in.GIPTAccess+in.PageOffPkg)
}

// Tagless is Equation 4: the AMAT of the proposed cache. A cTLB hit
// guarantees a DRAM-cache hit, so the L3 term is a bare in-package block
// access with no tag check.
func Tagless(in Inputs) float64 {
	return in.MissRateTLB*MissPenaltyCTLB(in) +
		in.HitTimeL12 +
		in.MissRateL12*in.BlockInPkg
}

// AvgL3LatencyTagless gives the Figure 8 metric for the tagless design:
// per L3 access, the bare in-package block access plus the amortized
// cTLB-handler work attributable to L3 traffic ("only access latency after
// an L2 cache miss, including TLB access time, is counted").
func AvgL3LatencyTagless(in Inputs) float64 {
	if in.MissRateL12 == 0 {
		return in.BlockInPkg
	}
	perL3TLBCost := in.MissRateTLB * MissPenaltyCTLB(in) / in.MissRateL12
	return in.BlockInPkg + perL3TLBCost
}

// AvgL3LatencySRAMFig8 gives the Figure 8 metric for the SRAM-tag design:
// Equation 3 plus the conventional TLB-miss cost amortized over L3
// accesses, so both designs' translation work is counted the same way.
func AvgL3LatencySRAMFig8(in Inputs) float64 {
	l3 := AvgL3LatencySRAM(in)
	if in.MissRateL12 == 0 {
		return l3
	}
	return l3 + in.MissRateTLB*in.MissPenaltyTLB/in.MissRateL12
}

// NoL3 is the no-DRAM-cache baseline: every on-die miss goes off-package.
func NoL3(in Inputs) float64 {
	return in.MissRateTLB*in.MissPenaltyTLB +
		in.HitTimeL12 +
		in.MissRateL12*in.BlockOffPkgMiss
}

// Speedup returns baselineAMAT/designAMAT (>1 means the design is faster),
// a proxy for the IPC ratio of memory-bound code.
func Speedup(baselineAMAT, designAMAT float64) float64 {
	if designAMAT == 0 {
		return 0
	}
	return baselineAMAT / designAMAT
}
