package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

type testHandler struct{ fired int }

func (h *testHandler) OnEvent(now Tick, e *Event) { h.fired++ }

func TestTracerRecordsEvents(t *testing.T) {
	k := NewKernel()
	tr := NewTracer(100)
	k.SetTracer(tr)

	h := &testHandler{}
	k.Schedule(5, h, 0, 0, false, nil)
	k.At(10, func(Tick) {})
	k.Schedule(20, h, 0, 0, false, nil)
	k.Run(0)

	if tr.Len() != 3 {
		t.Fatalf("recorded %d events, want 3", tr.Len())
	}
	es := tr.Events()
	if es[0].TS != 5 || es[1].TS != 10 || es[2].TS != 20 {
		t.Fatalf("timestamps = %d,%d,%d, want 5,10,20", es[0].TS, es[1].TS, es[2].TS)
	}
	if es[0].Name != "*sim.testHandler" {
		t.Errorf("handler event name = %q, want *sim.testHandler", es[0].Name)
	}
	if es[1].Name != "func" {
		t.Errorf("closure event name = %q, want func", es[1].Name)
	}
}

type catHandler struct{ testHandler }

func (h *catHandler) TraceCategory() string { return CatDRAM }

func TestTracerCategories(t *testing.T) {
	// The category strings are part of the trace schema consumed by
	// external viewers; they must never change.
	if CatCore != "core" || CatHandler != "handler" || CatDRAM != "dram" {
		t.Fatalf("category constants drifted: %q %q %q", CatCore, CatHandler, CatDRAM)
	}

	k := NewKernel()
	tr := NewTracer(100)
	k.SetTracer(tr)
	k.Schedule(1, &testHandler{}, 0, 0, false, nil) // no Categorizer: handler default
	k.At(2, func(Tick) {})                          // closure: core
	k.Schedule(3, &catHandler{}, 0, 0, false, nil)  // Categorizer: its own category
	k.Run(0)

	es := tr.Events()
	if len(es) != 3 {
		t.Fatalf("recorded %d events, want 3", len(es))
	}
	if es[0].Cat != CatHandler {
		t.Errorf("plain handler cat = %q, want %q", es[0].Cat, CatHandler)
	}
	if es[1].Cat != CatCore {
		t.Errorf("closure cat = %q, want %q", es[1].Cat, CatCore)
	}
	if es[2].Cat != CatDRAM {
		t.Errorf("Categorizer cat = %q, want %q", es[2].Cat, CatDRAM)
	}
}

func TestTracerWindowBound(t *testing.T) {
	k := NewKernel()
	tr := NewTracer(3)
	k.SetTracer(tr)
	for i := 0; i < 10; i++ {
		k.At(Tick(i), func(Tick) {})
	}
	k.Run(0)
	if tr.Len() != 3 {
		t.Fatalf("recorded %d events, want window of 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
}

func TestTracerWriteJSONWellFormed(t *testing.T) {
	k := NewKernel()
	tr := NewTracer(0)
	k.SetTracer(tr)
	h := &testHandler{}
	for i := 0; i < 50; i++ {
		k.Schedule(Tick(i*3), h, 0, 0, false, nil)
	}
	k.Run(0)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
			Scope string `json:"s"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 50 {
		t.Fatalf("traceEvents = %d entries, want 50", len(doc.TraceEvents))
	}
	var prev uint64
	for i, e := range doc.TraceEvents {
		if e.Phase != "i" || e.Scope != "g" {
			t.Fatalf("event %d: ph=%q s=%q, want instant/global", i, e.Phase, e.Scope)
		}
		if e.TS < prev {
			t.Fatalf("event %d: ts %d < previous %d (must be monotone)", i, e.TS, prev)
		}
		prev = e.TS
	}
}

func TestTracerWriteJSONEmpty(t *testing.T) {
	tr := NewTracer(10)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("empty tracer traceEvents = %v, want []", doc["traceEvents"])
	}
}

func TestTracerDoesNotPerturbKernel(t *testing.T) {
	run := func(tr *Tracer) (Tick, uint64) {
		k := NewKernel()
		if tr != nil {
			k.SetTracer(tr)
		}
		h := &testHandler{}
		for i := 0; i < 20; i++ {
			k.Schedule(Tick(i*7%13), h, 0, 0, false, nil)
		}
		k.Run(0)
		return k.Now(), k.Executed()
	}
	nowA, execA := run(nil)
	nowB, execB := run(NewTracer(5))
	if nowA != nowB || execA != execB {
		t.Fatalf("tracer changed kernel behavior: now %d vs %d, executed %d vs %d",
			nowA, nowB, execA, execB)
	}
}
