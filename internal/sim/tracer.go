package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// DefaultTraceLimit bounds a Tracer's window when the caller does not
// choose one. 100k events is a few MB of JSON — enough to see scheduler
// behavior around a region of interest without tracing a whole run.
const DefaultTraceLimit = 100000

// TraceEvent is one event in Chrome trace_event form (the JSON consumed
// by chrome://tracing and Perfetto). The kernel tracer records instant
// events ("ph":"i") mapping simulated cycles onto ts, so the viewer's
// nanoseconds read as CPU cycles; the sweep service's span traces
// (internal/telemetry) record complete events ("ph":"X") with Dur set.
type TraceEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    uint64 `json:"ts"`
	// Dur is the duration of complete ("X") events; zero is omitted, so
	// instant events keep their exact historical encoding.
	Dur   uint64 `json:"dur,omitempty"`
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
	Scope string `json:"s,omitempty"`
}

// Trace event categories: every recorded event carries one as its
// Chrome-trace "cat" field, so viewers can filter core wakeups from
// controller activity from device traffic. The strings are part of the
// trace schema — stable across releases.
const (
	// CatCore tags plain function callbacks (core wakeups, daemon steps).
	CatCore = "core"
	// CatHandler tags bound Handler events with no category of their own.
	CatHandler = "handler"
	// CatDRAM tags device-traffic completions (fills, evictions).
	CatDRAM = "dram"
)

// Categorizer is optionally implemented by Handlers to choose the trace
// category of their events; Handlers without it record as CatHandler.
type Categorizer interface {
	TraceCategory() string
}

// Tracer records a bounded window of kernel events for export in Chrome
// trace_event format. It is an observability hook only: attaching one
// never changes event order or simulated time, it just snapshots each
// event as it fires. Recording stops once the window fills; Dropped
// reports how many events fired after that.
//
// A Tracer is not safe for concurrent use; attach it to one kernel.
type Tracer struct {
	limit   int
	events  []TraceEvent
	dropped uint64
	// names caches the display name and category per Handler so the hot
	// hook does a map lookup instead of a reflective fmt call (and an
	// interface assertion) per event. Handlers are long-lived bound
	// callbacks, so the cache stays small.
	names map[Handler]nameCat
}

// nameCat is the cached per-Handler display name and trace category.
type nameCat struct {
	name string
	cat  string
}

// NewTracer returns a tracer that records at most limit events
// (DefaultTraceLimit when limit <= 0).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{
		limit: limit,
		names: make(map[Handler]nameCat),
	}
}

// record snapshots one fired event. Called by Kernel.Step with the
// event still intact (before its handler runs and it is recycled).
func (t *Tracer) record(now Tick, e *Event) {
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	name, cat := "func", CatCore
	if e.h != nil {
		nc, ok := t.names[e.h]
		if !ok {
			nc = nameCat{name: fmt.Sprintf("%T", e.h), cat: CatHandler}
			if c, hasCat := e.h.(Categorizer); hasCat {
				nc.cat = c.TraceCategory()
			}
			t.names[e.h] = nc
		}
		name, cat = nc.name, nc.cat
	}
	t.events = append(t.events, TraceEvent{
		Name:  name,
		Cat:   cat,
		Phase: "i",
		TS:    uint64(now),
		PID:   1,
		TID:   1,
		Scope: "g",
	})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int { return len(t.events) }

// Dropped returns the number of events that fired after the window
// filled and were not recorded.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Events returns the recorded window in firing order. The slice is the
// tracer's own storage; callers must not mutate it.
func (t *Tracer) Events() []TraceEvent { return t.events }

// traceFile is the Chrome trace_event JSON envelope.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON writes the recorded window as a Chrome trace_event JSON
// object, loadable in chrome://tracing or Perfetto. Timestamps are
// simulated cycles (displayed as ns).
func (t *Tracer) WriteJSON(w io.Writer) error {
	return WriteTraceJSON(w, t.events)
}

// WriteTraceJSON writes events as a Chrome trace_event JSON document —
// the shared envelope for the kernel tracer and the sweep service's
// span traces.
func WriteTraceJSON(w io.Writer, events []TraceEvent) error {
	f := traceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ns",
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
