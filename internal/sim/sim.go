// Package sim provides the discrete-event simulation substrate: a cycle
// type, a deterministic event queue, and timeline resources used to model
// contention for DRAM banks and data buses.
//
// The simulator composes latencies on resource timelines rather than
// ticking every cycle: a component that is busy until cycle T serves a
// request arriving at cycle A starting at max(A, T). This preserves
// cycle-accurate ordering and queueing delay at a fraction of the cost of
// a per-cycle loop. The event queue orders simultaneous events by insertion
// sequence so simulations are fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
)

// Tick is a point in simulated time, measured in CPU cycles.
type Tick uint64

// Handler is a reusable event callback. Unlike a closure passed to At, a
// Handler is bound once and receives its per-firing payload through the
// Event's A0/A1/B/P fields, so recurring callbacks schedule without
// allocating.
type Handler interface {
	OnEvent(now Tick, e *Event)
}

// Event is a scheduled callback. Events are pooled: once an event fires or
// is cancelled, its *Event handle is invalid — the kernel may recycle the
// object for a later At/Schedule call. Holding a handle past that point and
// cancelling it can affect an unrelated, recycled event.
type Event struct {
	When Tick
	fn   func(Tick)
	h    Handler

	// Payload registers for Handler events: two scalars, a flag, and one
	// reference. They are cleared when the event returns to the pool.
	A0, A1 uint64
	B      bool
	P      any

	seq uint64
	idx int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1 // the event is off the heap, whatever the caller does next
	*h = old[:n-1]
	return e
}

// noEvent is the cached next-event time of an empty queue.
const noEvent = ^Tick(0)

// Kernel owns simulated time and the pending-event queue.
type Kernel struct {
	now      Tick
	next     Tick // cached k.events[0].When, noEvent when empty
	seq      uint64
	events   eventHeap
	pool     []*Event // free list of fired/cancelled events
	executed uint64
	tracer   *Tracer
}

// NewKernel returns a kernel at cycle zero with no pending events.
func NewKernel() *Kernel { return &Kernel{next: noEvent} }

// syncNext refreshes the cached earliest-deadline after a heap mutation.
func (k *Kernel) syncNext() {
	if len(k.events) > 0 {
		k.next = k.events[0].When
	} else {
		k.next = noEvent
	}
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() Tick { return k.now }

// Pending returns the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.events) }

// Executed returns the number of events run since construction.
func (k *Kernel) Executed() uint64 { return k.executed }

// SetTracer attaches (or, with nil, detaches) an event tracer. Every
// subsequently fired event is recorded until the tracer's window fills.
// Tracing is observational only: it never changes event order or time.
func (k *Kernel) SetTracer(t *Tracer) { k.tracer = t }

// get takes an event from the free list, or allocates one.
func (k *Kernel) get() *Event {
	if n := len(k.pool); n > 0 {
		e := k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
		return e
	}
	return &Event{}
}

// release clears an event's callback and payload and returns it to the free
// list. Clearing matters: a recycled event must never be able to fire a
// stale callback or leak a stale reference through P.
func (k *Kernel) release(e *Event) {
	*e = Event{idx: -1}
	k.pool = append(k.pool, e)
}

// schedule inserts a prepared event, assigning its sequence number.
func (k *Kernel) schedule(e *Event, when Tick) *Event {
	if when < k.now {
		when = k.now
	}
	e.When = when
	e.seq = k.seq
	k.seq++
	heap.Push(&k.events, e)
	k.syncNext()
	return e
}

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past runs the event at the current cycle instead (never travels back).
func (k *Kernel) At(when Tick, fn func(Tick)) *Event {
	e := k.get()
	e.fn = fn
	return k.schedule(e, when)
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Tick, fn func(Tick)) *Event {
	return k.At(k.now+delay, fn)
}

// Schedule schedules a Handler with its payload at the given absolute
// cycle. The event comes from the kernel's free list, so steady-state
// scheduling of bound handlers performs no allocation.
func (k *Kernel) Schedule(when Tick, h Handler, a0, a1 uint64, b bool, p any) *Event {
	e := k.get()
	e.h = h
	e.A0, e.A1, e.B, e.P = a0, a1, b, p
	return k.schedule(e, when)
}

// Cancel removes a pending event and recycles it. Cancelling an event
// whose handle has already fired or been cancelled is a no-op only as long
// as the object has not been recycled; do not hold handles past the
// event's lifetime.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.idx < 0 || e.idx >= len(k.events) || k.events[e.idx] != e {
		return
	}
	heap.Remove(&k.events, e.idx)
	k.syncNext()
	k.release(e)
}

// Step runs the next pending event, advancing time to it. It reports
// whether an event was run.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*Event)
	k.syncNext()
	k.now = e.When
	k.executed++
	if k.tracer != nil {
		k.tracer.record(k.now, e)
	}
	if e.h != nil {
		e.h.OnEvent(k.now, e)
	} else {
		e.fn(k.now)
	}
	k.release(e)
	return true
}

// Run executes events until the queue is empty or the cycle limit is
// exceeded, and returns the number of events executed. A limit of zero
// means no limit.
func (k *Kernel) Run(limit Tick) int {
	n := 0
	for len(k.events) > 0 {
		if limit != 0 && k.events[0].When > limit {
			break
		}
		k.Step()
		n++
	}
	return n
}

// Advance moves time forward to the given cycle without running events
// scheduled beyond it. Events due at or before the target fire first.
// Advancing to the past is a no-op.
func (k *Kernel) Advance(to Tick) {
	if to >= k.next {
		k.advanceSlow(to)
		return
	}
	if to > k.now {
		k.now = to
	}
}

// advanceSlow is Advance's event-draining path, split out so the common
// empty-queue Advance call inlines into the per-reference loop.
func (k *Kernel) advanceSlow(to Tick) {
	for len(k.events) > 0 && k.events[0].When <= to {
		k.Step()
	}
	if to > k.now {
		k.now = to
	}
}

// KernelState is the kernel's serializable state. Checkpoints require a
// quiesced kernel, so the pending-event queue is never part of the state:
// State fails if events remain (run the kernel dry first — every recurring
// daemon in this simulator reschedules itself only while it has work).
type KernelState struct {
	Now      Tick
	Seq      uint64
	Executed uint64
}

// State snapshots a quiesced kernel.
func (k *Kernel) State() (KernelState, error) {
	if len(k.events) > 0 {
		return KernelState{}, fmt.Errorf("sim: cannot snapshot kernel with %d pending events", len(k.events))
	}
	return KernelState{Now: k.now, Seq: k.seq, Executed: k.executed}, nil
}

// SetState restores a quiesced kernel's snapshot. The target must itself
// hold no pending events.
func (k *Kernel) SetState(st KernelState) error {
	if len(k.events) > 0 {
		return fmt.Errorf("sim: cannot restore over %d pending events", len(k.events))
	}
	k.now = st.Now
	k.seq = st.Seq
	k.executed = st.Executed
	return nil
}

// Resource is a serially reusable unit (a DRAM bank, a data bus): at most
// one request occupies it at a time, and requests are served in arrival
// order at the resource.
type Resource struct {
	freeAt Tick
	// Busy accumulates total occupied cycles, for utilization metrics.
	Busy Tick
}

// FreeAt returns the cycle at which the resource next becomes idle.
func (r *Resource) FreeAt() Tick { return r.freeAt }

// State returns the resource's serializable state.
func (r *Resource) State() (freeAt, busy Tick) { return r.freeAt, r.Busy }

// SetState restores state captured by State.
func (r *Resource) SetState(freeAt, busy Tick) { r.freeAt, r.Busy = freeAt, busy }

// Acquire reserves the resource for `dur` cycles for a request arriving at
// `at`. It returns the cycle at which service starts (≥ at) — the caller's
// request completes at start+dur.
func (r *Resource) Acquire(at, dur Tick) (start Tick) {
	start = at
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + dur
	r.Busy += dur
	return start
}

// ReserveUntil blocks the resource until the given absolute cycle without
// accounting busy time (used for refresh-like blackouts or warm-up).
func (r *Resource) ReserveUntil(t Tick) {
	if t > r.freeAt {
		r.freeAt = t
	}
}

// Occupy marks the resource busy for the interval [from, until) computed by
// the caller, extending the free time and accounting utilization. It is used
// when occupancy depends on other resources (e.g. a bank held open until its
// data-bus transfer completes).
func (r *Resource) Occupy(from, until Tick) {
	if until > r.freeAt {
		r.freeAt = until
	}
	if until > from {
		r.Busy += until - from
	}
}

// Utilization returns Busy as a fraction of elapsed cycles (0 when the
// elapsed window is empty).
func (r *Resource) Utilization(elapsed Tick) float64 {
	if elapsed == 0 {
		return 0
	}
	u := float64(r.Busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// MaxTick returns the larger of a and b.
func MaxTick(a, b Tick) Tick {
	if a > b {
		return a
	}
	return b
}

// MinTick returns the smaller of a and b.
func MinTick(a, b Tick) Tick {
	if a < b {
		return a
	}
	return b
}
