package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Tick
	for _, d := range []Tick{30, 10, 20} {
		k.After(d, func(now Tick) { got = append(got, now) })
	}
	k.Run(0)
	want := []Tick{10, 20, 30}
	if len(got) != 3 {
		t.Fatalf("ran %d events, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("now = %d, want 30", k.Now())
	}
}

func TestKernelFIFOAmongSimultaneous(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(7, func(Tick) { got = append(got, i) })
	}
	k.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events out of insertion order: %v", got)
		}
	}
}

func TestKernelScheduleInPastClamps(t *testing.T) {
	k := NewKernel()
	k.At(100, func(Tick) {})
	k.Run(0)
	fired := Tick(0)
	k.At(50, func(now Tick) { fired = now }) // in the past
	k.Run(0)
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestKernelRunLimit(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(10, func(Tick) { ran++ })
	k.At(20, func(Tick) { ran++ })
	n := k.Run(15)
	if n != 1 || ran != 1 {
		t.Fatalf("ran %d events under limit, want 1", ran)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run(0)
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(10, func(Tick) { fired = true })
	k.Cancel(e)
	k.Cancel(e) // double cancel is a no-op
	k.Cancel(nil)
	k.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestKernelCancelOneOfMany(t *testing.T) {
	k := NewKernel()
	var got []int
	var keep []*Event
	for i := 0; i < 10; i++ {
		i := i
		keep = append(keep, k.At(Tick(i), func(Tick) { got = append(got, i) }))
	}
	k.Cancel(keep[3])
	k.Cancel(keep[7])
	k.Run(0)
	if len(got) != 8 {
		t.Fatalf("ran %d, want 8: %v", len(got), got)
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestKernelAdvance(t *testing.T) {
	k := NewKernel()
	var fired []Tick
	k.At(5, func(now Tick) { fired = append(fired, now) })
	k.At(15, func(now Tick) { fired = append(fired, now) })
	k.Advance(10)
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("advance(10) fired %v, want [5]", fired)
	}
	if k.Now() != 10 {
		t.Fatalf("now = %d, want 10", k.Now())
	}
	k.Advance(3) // backwards is a no-op
	if k.Now() != 10 {
		t.Fatalf("now moved backwards to %d", k.Now())
	}
	k.Run(0)
	if len(fired) != 2 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse func(Tick)
	recurse = func(Tick) {
		depth++
		if depth < 5 {
			k.After(2, recurse)
		}
	}
	k.After(1, recurse)
	k.Run(0)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if k.Now() != 9 { // 1 + 4*2
		t.Fatalf("now = %d, want 9", k.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1 := r.Acquire(0, 10)
	s2 := r.Acquire(0, 10)
	s3 := r.Acquire(25, 5)
	if s1 != 0 || s2 != 10 {
		t.Fatalf("starts = %d,%d, want 0,10", s1, s2)
	}
	if s3 != 25 { // resource free at 20, request arrives at 25
		t.Fatalf("s3 = %d, want 25", s3)
	}
	if r.FreeAt() != 30 {
		t.Fatalf("freeAt = %d, want 30", r.FreeAt())
	}
	if r.Busy != 25 {
		t.Fatalf("busy = %d, want 25", r.Busy)
	}
}

func TestResourceReserveUntil(t *testing.T) {
	var r Resource
	r.ReserveUntil(50)
	if s := r.Acquire(10, 5); s != 50 {
		t.Fatalf("start = %d, want 50", s)
	}
	r.ReserveUntil(20) // earlier than freeAt: no-op
	if r.FreeAt() != 55 {
		t.Fatalf("freeAt = %d, want 55", r.FreeAt())
	}
}

func TestResourceUtilization(t *testing.T) {
	var r Resource
	r.Acquire(0, 30)
	if u := r.Utilization(60); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("empty-window utilization = %v, want 0", u)
	}
	if u := r.Utilization(10); u != 1 {
		t.Fatalf("clamped utilization = %v, want 1", u)
	}
}

// Property: a resource never double-books — service intervals returned by
// Acquire are non-overlapping and in order.
func TestResourceNonOverlapProperty(t *testing.T) {
	f := func(arrivals []uint16, durs []uint8) bool {
		var r Resource
		n := len(arrivals)
		if len(durs) < n {
			n = len(durs)
		}
		prevEnd := Tick(0)
		for i := 0; i < n; i++ {
			at := Tick(arrivals[i])
			dur := Tick(durs[i]%50 + 1)
			start := r.Acquire(at, dur)
			if start < at || start < prevEnd {
				return false
			}
			prevEnd = start + dur
		}
		return r.FreeAt() == prevEnd || n == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the kernel fires every scheduled event exactly once, in
// non-decreasing time order.
func TestKernelOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var fired []Tick
		for _, d := range delays {
			k.After(Tick(d), func(now Tick) { fired = append(fired, now) })
		}
		k.Run(0)
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// Fired times must be a permutation of the delays.
		want := make([]Tick, len(delays))
		for i, d := range delays {
			want[i] = Tick(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxTick(t *testing.T) {
	if MaxTick(3, 5) != 5 || MaxTick(5, 3) != 5 {
		t.Error("MaxTick wrong")
	}
	if MinTick(3, 5) != 3 || MinTick(5, 3) != 3 {
		t.Error("MinTick wrong")
	}
}
