package sim

import (
	"container/heap"
	"testing"
)

// countHandler counts firings and records the last payload it saw.
type countHandler struct {
	fired  int
	lastA0 uint64
	lastP  any
}

func (h *countHandler) OnEvent(now Tick, e *Event) {
	h.fired++
	h.lastA0 = e.A0
	h.lastP = e.P
}

// TestHeapPopClearsIndex pins the satellite fix: eventHeap.Pop itself must
// mark the popped event as off-heap, so every Pop path (Step's dispatch,
// heap.Remove's internal pop) leaves e.idx == -1 without relying on the
// caller to clean up.
func TestHeapPopClearsIndex(t *testing.T) {
	var h eventHeap
	a := &Event{When: 1}
	b := &Event{When: 2}
	heap.Push(&h, a)
	heap.Push(&h, b)
	got := heap.Pop(&h).(*Event)
	if got != a {
		t.Fatalf("popped %v, want earliest", got)
	}
	if a.idx != -1 {
		t.Fatalf("Pop left idx = %d, want -1", a.idx)
	}
	// heap.Remove of the last element also bottoms out in Pop.
	heap.Remove(&h, b.idx)
	if b.idx != -1 {
		t.Fatalf("Remove left idx = %d, want -1", b.idx)
	}
}

// TestEventPoolReuses verifies fired and cancelled events return to the
// free list and are recycled instead of allocated.
func TestEventPoolReuses(t *testing.T) {
	k := NewKernel()
	h := &countHandler{}
	e1 := k.Schedule(5, h, 1, 0, false, nil)
	k.Run(0)
	if h.fired != 1 {
		t.Fatalf("fired %d, want 1", h.fired)
	}
	e2 := k.Schedule(10, h, 2, 0, false, nil)
	if e2 != e1 {
		t.Fatalf("second schedule did not recycle the fired event object")
	}
	k.Cancel(e2)
	e3 := k.At(15, func(Tick) {})
	if e3 != e2 {
		t.Fatalf("schedule after cancel did not recycle the cancelled event object")
	}
	k.Run(0)
}

// TestCancelDoesNotResurrect is the satellite's safety property: cancelling
// a pooled event and then scheduling a new one must fire only the new
// callback — the recycled object must not retain the cancelled event's
// handler, payload, or callback.
func TestCancelDoesNotResurrect(t *testing.T) {
	k := NewKernel()
	old := &countHandler{}
	e := k.Schedule(5, old, 42, 7, true, "stale")
	k.Cancel(e)

	fresh := &countHandler{}
	e2 := k.Schedule(5, fresh, 99, 0, false, nil)
	if e2 != e {
		t.Fatalf("expected the cancelled event object to be recycled")
	}
	k.Run(0)
	if old.fired != 0 {
		t.Fatalf("cancelled handler fired %d times", old.fired)
	}
	if fresh.fired != 1 || fresh.lastA0 != 99 || fresh.lastP != nil {
		t.Fatalf("recycled event carried stale state: %+v", fresh)
	}
}

// TestCancelFiredHandleIsInert documents the pool's handle-lifetime rule:
// a handle that already fired refers to a free-listed object, and
// cancelling it (before the object is recycled) must be a no-op.
func TestCancelFiredHandleIsInert(t *testing.T) {
	k := NewKernel()
	h := &countHandler{}
	e := k.Schedule(3, h, 0, 0, false, nil)
	k.Run(0)
	k.Cancel(e) // stale handle: object is on the free list
	e2 := k.Schedule(8, h, 1, 0, false, nil)
	if e2 != e {
		t.Fatalf("free list lost the event to a stale Cancel")
	}
	k.Run(0)
	if h.fired != 2 {
		t.Fatalf("fired %d, want 2", h.fired)
	}
}

// TestScheduleIsAllocationFree verifies the free list actually removes the
// per-event allocation once the pool is primed.
func TestScheduleIsAllocationFree(t *testing.T) {
	k := NewKernel()
	h := &countHandler{}
	// Prime the pool.
	for i := 0; i < 10; i++ {
		k.Schedule(Tick(i), h, 0, 0, false, nil)
	}
	k.Run(0)
	allocs := testing.AllocsPerRun(100, func() {
		k.Schedule(k.Now()+1, h, 0, 0, false, nil)
		k.Run(0)
	})
	if allocs != 0 {
		t.Fatalf("pooled Schedule allocates %v per event", allocs)
	}
}

// TestExecutedCounts verifies the kernel's executed-event counter, the
// denominator of the events/sec throughput summary.
func TestExecutedCounts(t *testing.T) {
	k := NewKernel()
	h := &countHandler{}
	for i := 0; i < 5; i++ {
		k.Schedule(Tick(i), h, 0, 0, false, nil)
	}
	e := k.Schedule(100, h, 0, 0, false, nil)
	k.Cancel(e) // cancelled events never count as executed
	k.Run(0)
	if k.Executed() != 5 {
		t.Fatalf("Executed() = %d, want 5", k.Executed())
	}
}
