package config

import "math"

// TagParams describes the on-die SRAM tag array required by the SRAM-tag
// page-cache baseline for a given DRAM-cache capacity. The paper obtained
// these numbers from CACTI 6.5 and reports them in Table 6:
//
//	cache size  128MB  256MB  512MB  1GB
//	tag size    0.5MB  1MB    2MB    4MB
//	latency     5      6      9      11 cycles
type TagParams struct {
	CacheSize  int64 // DRAM-cache capacity the tags cover
	TagBytes   int64 // SRAM storage required for the tag array
	LatencyCyc int   // tag-array access latency in CPU cycles at 3 GHz
	Entries    int   // number of page entries tracked
}

// table6 holds the four points published in the paper.
var table6 = []TagParams{
	{CacheSize: 128 * MB, TagBytes: 512 * KB, LatencyCyc: 5},
	{CacheSize: 256 * MB, TagBytes: 1 * MB, LatencyCyc: 6},
	{CacheSize: 512 * MB, TagBytes: 2 * MB, LatencyCyc: 9},
	{CacheSize: 1 * GB, TagBytes: 4 * MB, LatencyCyc: 11},
}

// Table6 returns the published tag-array design points, smallest first.
func Table6() []TagParams {
	out := make([]TagParams, len(table6))
	copy(out, table6)
	for i := range out {
		out[i].Entries = int(out[i].CacheSize / PageSize)
	}
	return out
}

// TagParamsFor returns the tag-array parameters for an arbitrary cache size.
// Published points are returned exactly; other sizes are extrapolated with
// the same trend (tag storage proportional to entry count, latency growing
// roughly logarithmically with array size, matching the CACTI data).
func TagParamsFor(cacheSize int64) TagParams {
	for _, p := range table6 {
		if p.CacheSize == cacheSize {
			p.Entries = int(p.CacheSize / PageSize)
			return p
		}
	}
	entries := cacheSize / PageSize
	// 16 bytes of tag+state per 4KB page matches the published ratio
	// (4MB of tags per 256K pages of a 1GB cache).
	tagBytes := entries * 16
	// Fit latency ≈ a + b*log2(tagKB): the published points give
	// 5 cycles at 512KB and 11 cycles at 4MB, i.e. b ≈ 2 cycles/doubling.
	tagKB := float64(tagBytes) / KB
	lat := 5 + int(math.Round(2*math.Log2(tagKB/512)))
	if lat < 1 {
		lat = 1
	}
	return TagParams{CacheSize: cacheSize, TagBytes: tagBytes, LatencyCyc: lat, Entries: int(entries)}
}

// GIPTEntryBits is the size of one global-inverted-page-table entry:
// 36 bits of physical page number, 42 bits of PTE pointer and a 4-bit TLB
// residence vector for a quad-core CPU (Section 3.2).
const GIPTEntryBits = 36 + 42 + 4

// GIPTBytes returns the storage footprint of the GIPT for a cache of the
// given capacity. For 1GB this is the paper's 2.56MB (0.25% overhead).
func GIPTBytes(cacheSize int64) int64 {
	entries := cacheSize / PageSize
	return entries * GIPTEntryBits / 8
}

// GIPTOverhead returns GIPT storage as a fraction of cache capacity.
func GIPTOverhead(cacheSize int64) float64 {
	if cacheSize == 0 {
		return 0
	}
	return float64(GIPTBytes(cacheSize)) / float64(cacheSize)
}

// BlockTagBytes returns the tag storage a conventional 64B block-based
// cache would need (the paper's motivating example: 128MB per 1GB).
func BlockTagBytes(cacheSize int64) int64 {
	blocks := cacheSize / BlockSize
	return blocks * 8 // 8B of tag+metadata per 64B block (12.5%)
}
