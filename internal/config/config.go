// Package config defines the architectural parameters of the simulated
// system. The defaults reproduce Tables 3, 4 and 6 of the paper:
//
//   - Table 3: CPU, TLB, cache and DRAM organization.
//   - Table 4: timing and energy parameters for 3D in-package DRAM and
//     off-package DDR3 DRAM (adapted from the Microbank paper).
//   - Table 6: SRAM tag-array size and access latency as a function of
//     DRAM-cache size (obtained by the authors from CACTI 6.5).
//
// All latencies inside the simulator are expressed in CPU cycles at the
// configured core frequency (3 GHz by default), so 1 ns = 3 cycles.
package config

import (
	"fmt"
	"math"
)

// Common size units.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// PageSize is the OS page size the tagless cache aligns its caching
// granularity to (Section 3.1).
const PageSize = 4 * KB

// BlockSize is the on-die cache line size.
const BlockSize = 64

// CPUConfig describes the out-of-order cores (Table 3, "CPU").
type CPUConfig struct {
	Cores      int     // number of cores
	FreqGHz    float64 // core clock
	IssueWidth int     // instructions retired per cycle when not stalled
	MSHRs      int     // outstanding L2-miss window per core (MLP limit)
}

// TLBConfig describes one TLB level (Table 3, "L1 TLB"/"L2 TLB").
type TLBConfig struct {
	Entries int // total entries
	Ways    int // associativity (Entries/Ways sets)
}

// Sets returns the number of sets implied by Entries and Ways.
func (c TLBConfig) Sets() int {
	if c.Ways <= 0 {
		return c.Entries
	}
	return c.Entries / c.Ways
}

// CacheConfig describes one on-die SRAM cache level (Table 3, L1/L2).
type CacheConfig struct {
	SizeBytes    int64 // total capacity
	Ways         int   // associativity
	LineBytes    int   // line size
	LatencyCycle int   // hit latency in CPU cycles
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int {
	return int(c.SizeBytes / int64(c.LineBytes) / int64(c.Ways))
}

// DRAMTiming gives device timing in nanoseconds (Table 4).
// The refresh pair is optional (zero disables refresh): the paper's
// Table 4 does not model refresh, so the default configuration leaves it
// off; enable it for realism studies.
type DRAMTiming struct {
	TRCDns  float64 // activate to read delay
	TAAns   float64 // read to first data delay
	TRASns  float64 // activate to precharge delay
	TRPns   float64 // precharge command period
	TREFIns float64 // refresh interval (0 = no refresh)
	TRFCns  float64 // refresh cycle time (blackout per interval)
	TFAWns  float64 // four-activate window per rank (0 = unconstrained)
}

// DRAMEnergy gives device energy parameters (Table 4).
type DRAMEnergy struct {
	IOPerBitPJ     float64 // I/O energy per bit
	RDWRPerBitPJ   float64 // read/write energy per bit, without I/O
	ActPrePerRowNJ float64 // ACT+PRE energy for one 4KB row
}

// DRAMConfig describes one DRAM device: geometry, clocking, timing and
// energy (Table 3 "In-package DRAM"/"Off-package DRAM" plus Table 4).
type DRAMConfig struct {
	SizeBytes    int64
	BusGHz       float64 // bus clock; DDR transfers on both edges
	Channels     int
	RanksPerChan int
	BanksPerRank int
	BusBits      int // data bus width per channel
	RowBytes     int // row-buffer (page) size per bank
	// Microbanks subdivides each bank into independently timed
	// sub-banks with private row buffers, following the Microbank
	// die-stacked DRAM model the paper adapts its timing from (Son et
	// al., SC'14). It also stands in for FR-FCFS row-hit-first
	// scheduling, which the arrival-order bank timeline cannot reorder.
	// Zero or one means conventional banks.
	Microbanks int
	Timing     DRAMTiming
	Energy     DRAMEnergy
}

// TotalBanks returns the number of physical banks across the device.
func (c DRAMConfig) TotalBanks() int {
	return c.Channels * c.RanksPerChan * c.BanksPerRank
}

// RowBuffers returns the number of independently schedulable row buffers
// (banks × microbanks).
func (c DRAMConfig) RowBuffers() int {
	mb := c.Microbanks
	if mb < 1 {
		mb = 1
	}
	return c.TotalBanks() * mb
}

// TransferNS returns the data-bus occupancy, in nanoseconds, of moving
// `bytes` over one channel with double-data-rate signalling.
func (c DRAMConfig) TransferNS(bytes int) float64 {
	bytesPerNS := c.BusGHz * 2 * float64(c.BusBits) / 8
	return float64(bytes) / bytesPerNS
}

// PeakBandwidthGBs returns the aggregate peak bandwidth in GB/s.
func (c DRAMConfig) PeakBandwidthGBs() float64 {
	return c.BusGHz * 2 * float64(c.BusBits) / 8 * float64(c.Channels)
}

// ReplacementPolicy selects the victim-selection policy of a DRAM cache.
type ReplacementPolicy int

const (
	// FIFO is the paper's default for the tagless cache: the header
	// pointer advances block by block (Section 3.2).
	FIFO ReplacementPolicy = iota
	// LRU approximates least-recently-used victim selection (used by the
	// SRAM-tag baseline and in the Figure 11 sensitivity study).
	LRU
	// CLOCK is the second-chance policy the paper names as the practical
	// LRU approximation (Section 5.2): FIFO order with a reference bit
	// that grants one extra pass.
	CLOCK
)

// String implements fmt.Stringer.
func (p ReplacementPolicy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case LRU:
		return "LRU"
	case CLOCK:
		return "CLOCK"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// L3Design selects the DRAM-cache organization under evaluation (Section 4).
type L3Design int

const (
	// NoL3 is the baseline: off-package DRAM only.
	NoL3 L3Design = iota
	// BankInterleave maps in-package DRAM into the physical address space
	// with OS-oblivious interleaving ("BI" in the paper).
	BankInterleave
	// SRAMTag is the page-based cache with an on-die SRAM tag array
	// (16-way set-associative, LRU), the paper's main tag-based baseline.
	SRAMTag
	// Tagless is the proposed cTLB-based tagless cache.
	Tagless
	// Ideal stores all data in in-package DRAM.
	Ideal
	// AlloyBlock is the block-based design class of Table 2: a
	// direct-mapped 64B-line cache with tags in DRAM (Alloy-style). It
	// is not part of the paper's five plotted designs but completes the
	// block-based vs page-based vs tagless comparison.
	AlloyBlock
	// Banshee is a Banshee-style page-granularity cache (Yu et al., see
	// PAPERS.md): TLB-carried mappings like the tagless design, but with
	// frequency-based replacement, fill-after-N-touches bandwidth
	// filtering, and a small tag buffer for recent remappings. Like
	// AlloyBlock it is an extra baseline, not one of the paper's five.
	Banshee
)

// String implements fmt.Stringer.
func (d L3Design) String() string {
	switch d {
	case NoL3:
		return "NoL3"
	case BankInterleave:
		return "BI"
	case SRAMTag:
		return "SRAM"
	case Tagless:
		return "cTLB"
	case Ideal:
		return "Ideal"
	case AlloyBlock:
		return "Alloy"
	case Banshee:
		return "Banshee"
	default:
		return fmt.Sprintf("L3Design(%d)", int(d))
	}
}

// AllDesigns lists every L3 organization in the order the paper plots them.
func AllDesigns() []L3Design {
	return []L3Design{NoL3, BankInterleave, SRAMTag, Tagless, Ideal}
}

// TaglessConfig holds parameters specific to the proposed design.
type TaglessConfig struct {
	// Alpha is the number of free blocks kept always available so that a
	// cache fill never waits for an eviction (Section 3.2); the paper
	// sets it to 1 following the heterogeneous-memory work it cites.
	Alpha int
	// Policy selects FIFO (default) or LRU victim selection (Figure 11).
	Policy ReplacementPolicy
	// NCAccessThreshold, when positive, marks pages with fewer than this
	// many expected accesses as non-cacheable (Section 5.4 uses 32).
	NCAccessThreshold int
	// SynchronousEviction forces evictions onto the access path (ablation
	// of the free-queue design; not used by the paper's configuration).
	SynchronousEviction bool
	// CachedGIPT models MMU caching of GIPT updates instead of the
	// paper's conservative two full off-package writes (Section 3.4).
	CachedGIPT bool
	// SharedAliasTable enables Section 6's physical→cache alias table so
	// inter-process shared pages are cached once. When false, shared
	// pages are marked non-cacheable (the solution the paper adopts in
	// Section 3.5).
	SharedAliasTable bool
	// HotFilterThreshold, when positive, enables online hot-page
	// filtering in the CHOP style the paper cites as complementary:
	// pages start non-cacheable and are promoted to cacheable after this
	// many accesses, so cold pages never pollute the cache. Unlike
	// NCAccessThreshold it needs no offline profile.
	HotFilterThreshold int
	// SuperpagePages, when >1, maps application regions as superpages of
	// that many base pages (Section 6): one cTLB entry, one GIPT entry
	// and one fill per region. Must be a power of two dividing the cache
	// page count. Non-cacheable and shared pages stay at 4KB.
	SuperpagePages int
}

// SystemConfig aggregates every parameter of a simulated machine.
type SystemConfig struct {
	CPU       CPUConfig
	L1TLB     TLBConfig
	L2TLB     TLBConfig
	L1I       CacheConfig
	L1D       CacheConfig
	L2        CacheConfig
	InPkg     DRAMConfig // in-package DRAM (the cache device)
	OffPkg    DRAMConfig // off-package DRAM (backing main memory)
	Design    L3Design
	CacheSize int64 // usable DRAM-cache capacity (≤ InPkg.SizeBytes)
	SRAMTag   SRAMTagConfig
	Tagless   TaglessConfig
	// PageWalkCycles is the latency of a page-table walk performed by the
	// TLB miss handler, excluding any cache-fill work. Used by the
	// fixed-cost walk model.
	PageWalkCycles int
	// MemoryWalk models the page-table walk as actual memory traffic: the
	// upper levels hit the MMU's page-walk caches (a few cycles each) and
	// the leaf PTE access goes to DRAM unless recently used. The default
	// fixed-cost model matches the paper's constant MissPenalty_TLB.
	// Retained for compatibility; WalkModel supersedes it when set.
	MemoryWalk bool
	// WalkModel names the internal/vm walk model handling TLB misses:
	// "fixed" (the PageWalkCycles scalar), "pwc" (walk-cache-aware memory
	// walk), or "nested" (guest→host 2D walk for virtualized scenarios).
	// Empty resolves through EffectiveWalkModel.
	WalkModel string
	// PWCHitCycles is the cost of one upper page-table level served by the
	// MMU's page-walk caches, used by the pwc and nested walk models. Must
	// be ≥ 0.
	PWCHitCycles int
	// TLBTopology names the internal/vm TLB arrangement: "private"
	// (per-core L1+L2, the default) or "shared" (per-core L1 over one
	// ASID-tagged L2 shared by all cores). Empty means private.
	TLBTopology string
	// CtxSwitchRefs, when positive, quiesces each core and context-switches
	// it every that many of its memory references, modeling multi-tenant
	// ASID pressure. Zero disables context switching.
	CtxSwitchRefs uint64
	// CtxSwitchFlush selects the context-switch TLB policy: true flushes
	// the outgoing address space's entries (non-ASID hardware), false
	// retains them under their ASID tag and instead injects foreign-tenant
	// TLB pressure.
	CtxSwitchFlush bool
	// CorePowerWatts is the average power of one core plus its share of
	// on-die caches, used by the EDP model.
	CorePowerWatts float64
}

// EffectiveWalkModel resolves the walk-model name: an explicit WalkModel
// wins, otherwise the legacy MemoryWalk bit selects "pwc", otherwise
// "fixed".
func (c *SystemConfig) EffectiveWalkModel() string {
	if c.WalkModel != "" {
		return c.WalkModel
	}
	if c.MemoryWalk {
		return "pwc"
	}
	return "fixed"
}

// EffectiveTLBTopology resolves the TLB-topology name, defaulting to
// "private".
func (c *SystemConfig) EffectiveTLBTopology() string {
	if c.TLBTopology != "" {
		return c.TLBTopology
	}
	return "private"
}

// SRAMTagConfig describes the tag array of the SRAM-tag baseline.
type SRAMTagConfig struct {
	Ways int // set associativity of the page cache (16 in Table 3)
}

// CyclesPerNS returns how many CPU cycles elapse per nanosecond.
func (c *SystemConfig) CyclesPerNS() float64 { return c.CPU.FreqGHz }

// NSToCycles converts nanoseconds to (rounded-up) CPU cycles.
func (c *SystemConfig) NSToCycles(ns float64) int {
	return int(math.Ceil(ns * c.CPU.FreqGHz))
}

// CachePages returns the number of page-sized blocks in the DRAM cache.
func (c *SystemConfig) CachePages() int {
	return int(c.CacheSize / PageSize)
}

// Validate checks internal consistency and returns a descriptive error for
// the first problem found.
func (c *SystemConfig) Validate() error {
	switch {
	case c.CPU.Cores <= 0:
		return fmt.Errorf("config: cores must be positive, got %d", c.CPU.Cores)
	case c.CPU.FreqGHz <= 0:
		return fmt.Errorf("config: core frequency must be positive, got %v", c.CPU.FreqGHz)
	case c.CPU.IssueWidth <= 0:
		return fmt.Errorf("config: issue width must be positive, got %d", c.CPU.IssueWidth)
	case c.CPU.MSHRs <= 0:
		return fmt.Errorf("config: MSHR count must be positive, got %d", c.CPU.MSHRs)
	}
	for _, t := range []struct {
		name string
		tlb  TLBConfig
	}{{"L1 TLB", c.L1TLB}, {"L2 TLB", c.L2TLB}} {
		if t.tlb.Entries <= 0 {
			return fmt.Errorf("config: %s entries must be positive", t.name)
		}
		if t.tlb.Ways <= 0 || t.tlb.Entries%t.tlb.Ways != 0 {
			return fmt.Errorf("config: %s ways %d must divide entries %d", t.name, t.tlb.Ways, t.tlb.Entries)
		}
	}
	for _, cc := range []struct {
		name string
		c    CacheConfig
	}{{"L1I", c.L1I}, {"L1D", c.L1D}, {"L2", c.L2}} {
		if cc.c.SizeBytes <= 0 || cc.c.Ways <= 0 || cc.c.LineBytes <= 0 {
			return fmt.Errorf("config: %s geometry must be positive", cc.name)
		}
		if cc.c.Sets() <= 0 {
			return fmt.Errorf("config: %s has no sets (size %d, ways %d, line %d)",
				cc.name, cc.c.SizeBytes, cc.c.Ways, cc.c.LineBytes)
		}
		if cc.c.SizeBytes%(int64(cc.c.LineBytes)*int64(cc.c.Ways)) != 0 {
			return fmt.Errorf("config: %s size not divisible by ways*line", cc.name)
		}
	}
	for _, d := range []struct {
		name string
		d    DRAMConfig
	}{{"in-package DRAM", c.InPkg}, {"off-package DRAM", c.OffPkg}} {
		if d.d.SizeBytes <= 0 || d.d.Channels <= 0 || d.d.RanksPerChan <= 0 ||
			d.d.BanksPerRank <= 0 || d.d.BusBits <= 0 || d.d.RowBytes <= 0 {
			return fmt.Errorf("config: %s geometry must be positive", d.name)
		}
		if d.d.BusGHz <= 0 {
			return fmt.Errorf("config: %s bus clock must be positive", d.name)
		}
	}
	if c.CacheSize <= 0 && c.Design != NoL3 {
		return fmt.Errorf("config: cache size must be positive for design %v", c.Design)
	}
	if c.CacheSize > c.InPkg.SizeBytes {
		return fmt.Errorf("config: cache size %d exceeds in-package DRAM %d", c.CacheSize, c.InPkg.SizeBytes)
	}
	if c.CacheSize%PageSize != 0 {
		return fmt.Errorf("config: cache size %d not a multiple of the page size", c.CacheSize)
	}
	if c.Design == SRAMTag && c.SRAMTag.Ways <= 0 {
		return fmt.Errorf("config: SRAM-tag ways must be positive")
	}
	if c.Design == Tagless && c.Tagless.Alpha <= 0 {
		return fmt.Errorf("config: tagless alpha must be positive")
	}
	if sp := c.Tagless.SuperpagePages; sp > 1 {
		if sp&(sp-1) != 0 {
			return fmt.Errorf("config: superpage size %d not a power of two", sp)
		}
		if c.CachePages()%sp != 0 {
			return fmt.Errorf("config: superpage size %d does not divide cache pages %d", sp, c.CachePages())
		}
		if c.Tagless.HotFilterThreshold > 0 {
			return fmt.Errorf("config: the hot-page filter operates at 4KB granularity and cannot combine with superpages")
		}
	}
	if c.PageWalkCycles <= 0 {
		return fmt.Errorf("config: page walk cycles must be positive")
	}
	if c.PWCHitCycles < 0 {
		return fmt.Errorf("config: PWC hit cycles must be >= 0, got %d", c.PWCHitCycles)
	}
	return nil
}

// Default returns the paper's evaluated machine (Tables 3 and 4): four
// 3 GHz out-of-order cores, a 1 GB in-package DRAM cache and 8 GB of
// off-package DDR3 DRAM, with the tagless design selected.
func Default() *SystemConfig {
	c := &SystemConfig{
		CPU: CPUConfig{Cores: 4, FreqGHz: 3.0, IssueWidth: 4, MSHRs: 8},
		// 32I/32D-entry L1 TLB and 512-entry L2 TLB per core.
		L1TLB: TLBConfig{Entries: 32, Ways: 4},
		L2TLB: TLBConfig{Entries: 512, Ways: 8},
		L1I:   CacheConfig{SizeBytes: 32 * KB, Ways: 4, LineBytes: BlockSize, LatencyCycle: 2},
		L1D:   CacheConfig{SizeBytes: 32 * KB, Ways: 4, LineBytes: BlockSize, LatencyCycle: 2},
		L2:    CacheConfig{SizeBytes: 2 * MB, Ways: 16, LineBytes: BlockSize, LatencyCycle: 6},
		InPkg: DRAMConfig{
			SizeBytes:    1 * GB,
			BusGHz:       1.6, // DDR 3.2 GHz
			Channels:     1,
			RanksPerChan: 2,
			BanksPerRank: 16,
			BusBits:      128,
			RowBytes:     PageSize,
			Microbanks:   8,
			Timing:       DRAMTiming{TRCDns: 8, TAAns: 10, TRASns: 22, TRPns: 14},
			Energy:       DRAMEnergy{IOPerBitPJ: 2.4, RDWRPerBitPJ: 4, ActPrePerRowNJ: 15},
		},
		OffPkg: DRAMConfig{
			SizeBytes:    8 * GB,
			BusGHz:       0.8, // DDR 1.6 GHz
			Channels:     1,
			RanksPerChan: 2,
			BanksPerRank: 64,
			BusBits:      64,
			RowBytes:     PageSize,
			Timing:       DRAMTiming{TRCDns: 14, TAAns: 14, TRASns: 35, TRPns: 14},
			Energy:       DRAMEnergy{IOPerBitPJ: 20, RDWRPerBitPJ: 13, ActPrePerRowNJ: 15},
		},
		Design:    Tagless,
		CacheSize: 1 * GB,
		SRAMTag:   SRAMTagConfig{Ways: 16},
		Tagless:   TaglessConfig{Alpha: 1, Policy: FIFO},
		// A 4-level walk whose PTEs mostly hit in the on-die caches.
		PageWalkCycles: 40,
		// Each upper level served by the MMU's page-walk caches costs two
		// cycles under the pwc and nested walk models.
		PWCHitCycles:   2,
		CorePowerWatts: 5.0,
	}
	return c
}

// Clone returns a deep copy (the struct contains no reference types).
func (c *SystemConfig) Clone() *SystemConfig {
	cp := *c
	return &cp
}
