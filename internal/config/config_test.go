package config

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTable3(t *testing.T) {
	c := Default()
	if c.CPU.Cores != 4 || c.CPU.FreqGHz != 3.0 {
		t.Errorf("CPU = %+v, want 4 cores at 3GHz", c.CPU)
	}
	if c.L1TLB.Entries != 32 || c.L2TLB.Entries != 512 {
		t.Errorf("TLB entries = %d/%d, want 32/512", c.L1TLB.Entries, c.L2TLB.Entries)
	}
	if c.L1D.SizeBytes != 32*KB || c.L1D.Ways != 4 || c.L1D.LatencyCycle != 2 {
		t.Errorf("L1D = %+v", c.L1D)
	}
	if c.L2.SizeBytes != 2*MB || c.L2.Ways != 16 || c.L2.LatencyCycle != 6 {
		t.Errorf("L2 = %+v", c.L2)
	}
	if c.InPkg.SizeBytes != 1*GB || c.InPkg.BusBits != 128 || c.InPkg.BanksPerRank != 16 {
		t.Errorf("in-package DRAM = %+v", c.InPkg)
	}
	if c.OffPkg.SizeBytes != 8*GB || c.OffPkg.BusBits != 64 || c.OffPkg.BanksPerRank != 64 {
		t.Errorf("off-package DRAM = %+v", c.OffPkg)
	}
}

func TestDefaultMatchesTable4(t *testing.T) {
	c := Default()
	in, off := c.InPkg, c.OffPkg
	if in.Timing.TRCDns != 8 || in.Timing.TAAns != 10 || in.Timing.TRASns != 22 || in.Timing.TRPns != 14 {
		t.Errorf("in-package timing = %+v", in.Timing)
	}
	if off.Timing.TRCDns != 14 || off.Timing.TAAns != 14 || off.Timing.TRASns != 35 || off.Timing.TRPns != 14 {
		t.Errorf("off-package timing = %+v", off.Timing)
	}
	if in.Energy.IOPerBitPJ != 2.4 || off.Energy.IOPerBitPJ != 20 {
		t.Errorf("I/O energies = %v/%v, want 2.4/20", in.Energy.IOPerBitPJ, off.Energy.IOPerBitPJ)
	}
}

func TestBandwidthRatio(t *testing.T) {
	// The paper states in-package bandwidth is 4x off-package.
	c := Default()
	ratio := c.InPkg.PeakBandwidthGBs() / c.OffPkg.PeakBandwidthGBs()
	if math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("bandwidth ratio = %v, want 4", ratio)
	}
}

func TestTransferNS(t *testing.T) {
	c := Default()
	// In-package: 1.6GHz DDR * 128 bits = 51.2 GB/s -> 4KB in 80ns.
	got := c.InPkg.TransferNS(4 * KB)
	if math.Abs(got-80) > 1e-9 {
		t.Errorf("in-package 4KB transfer = %vns, want 80", got)
	}
	// Off-package: 0.8GHz DDR * 64 bits = 12.8 GB/s -> 64B in 5ns.
	got = c.OffPkg.TransferNS(BlockSize)
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("off-package 64B transfer = %vns, want 5", got)
	}
}

func TestNSToCycles(t *testing.T) {
	c := Default()
	if got := c.NSToCycles(10); got != 30 {
		t.Errorf("10ns = %d cycles, want 30", got)
	}
	if got := c.NSToCycles(0.1); got != 1 {
		t.Errorf("0.1ns = %d cycles, want 1 (round up)", got)
	}
}

func TestCachePages(t *testing.T) {
	c := Default()
	if got := c.CachePages(); got != 256*1024 {
		t.Errorf("1GB/4KB = %d pages, want 262144", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SystemConfig)
		want   string
	}{
		{"zero cores", func(c *SystemConfig) { c.CPU.Cores = 0 }, "cores"},
		{"zero freq", func(c *SystemConfig) { c.CPU.FreqGHz = 0 }, "frequency"},
		{"zero issue", func(c *SystemConfig) { c.CPU.IssueWidth = 0 }, "issue"},
		{"zero mshrs", func(c *SystemConfig) { c.CPU.MSHRs = 0 }, "MSHR"},
		{"bad tlb ways", func(c *SystemConfig) { c.L1TLB.Ways = 5 }, "ways"},
		{"zero tlb", func(c *SystemConfig) { c.L2TLB.Entries = 0 }, "entries"},
		{"bad cache", func(c *SystemConfig) { c.L1D.SizeBytes = 0 }, "geometry"},
		{"bad dram", func(c *SystemConfig) { c.InPkg.Channels = 0 }, "geometry"},
		{"bad dram clock", func(c *SystemConfig) { c.OffPkg.BusGHz = 0 }, "clock"},
		{"cache too big", func(c *SystemConfig) { c.CacheSize = 2 * GB }, "exceeds"},
		{"cache unaligned", func(c *SystemConfig) { c.CacheSize = PageSize + 1 }, "multiple"},
		{"zero alpha", func(c *SystemConfig) { c.Tagless.Alpha = 0 }, "alpha"},
		{"zero walk", func(c *SystemConfig) { c.PageWalkCycles = 0 }, "walk"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mutate(c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateSRAMTagWays(t *testing.T) {
	c := Default()
	c.Design = SRAMTag
	c.SRAMTag.Ways = 0
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for zero SRAM-tag ways")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := Default()
	cp := c.Clone()
	cp.CPU.Cores = 16
	if c.CPU.Cores == 16 {
		t.Fatal("clone aliases the original")
	}
}

func TestDesignStrings(t *testing.T) {
	want := map[L3Design]string{
		NoL3: "NoL3", BankInterleave: "BI", SRAMTag: "SRAM", Tagless: "cTLB", Ideal: "Ideal",
		AlloyBlock: "Alloy", Banshee: "Banshee",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), s)
		}
	}
	if got := L3Design(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown design string = %q", got)
	}
	if FIFO.String() != "FIFO" || LRU.String() != "LRU" || CLOCK.String() != "CLOCK" {
		t.Error("replacement policy strings wrong")
	}
	if got := ReplacementPolicy(7).String(); !strings.Contains(got, "7") {
		t.Errorf("unknown policy string = %q", got)
	}
}

func TestAllDesignsOrder(t *testing.T) {
	ds := AllDesigns()
	if len(ds) != 5 || ds[0] != NoL3 || ds[4] != Ideal {
		t.Fatalf("AllDesigns = %v", ds)
	}
}

func TestTable6Published(t *testing.T) {
	rows := Table6()
	if len(rows) != 4 {
		t.Fatalf("Table6 has %d rows, want 4", len(rows))
	}
	want := []struct {
		size int64
		tag  int64
		lat  int
	}{
		{128 * MB, 512 * KB, 5},
		{256 * MB, 1 * MB, 6},
		{512 * MB, 2 * MB, 9},
		{1 * GB, 4 * MB, 11},
	}
	for i, w := range want {
		r := rows[i]
		if r.CacheSize != w.size || r.TagBytes != w.tag || r.LatencyCyc != w.lat {
			t.Errorf("row %d = %+v, want %+v", i, r, w)
		}
		if r.Entries != int(w.size/PageSize) {
			t.Errorf("row %d entries = %d", i, r.Entries)
		}
	}
}

func TestTagParamsForExactAndExtrapolated(t *testing.T) {
	// Exact points round-trip.
	p := TagParamsFor(1 * GB)
	if p.TagBytes != 4*MB || p.LatencyCyc != 11 {
		t.Errorf("1GB params = %+v", p)
	}
	// Extrapolation: 2GB cache needs 8MB of tags, slower than 1GB's tags.
	p2 := TagParamsFor(2 * GB)
	if p2.TagBytes != 8*MB {
		t.Errorf("2GB tag bytes = %d, want 8MB", p2.TagBytes)
	}
	if p2.LatencyCyc <= 11 {
		t.Errorf("2GB latency = %d, want > 11", p2.LatencyCyc)
	}
	// Tiny cache never reports non-positive latency.
	p3 := TagParamsFor(4 * MB)
	if p3.LatencyCyc < 1 {
		t.Errorf("4MB latency = %d, want >= 1", p3.LatencyCyc)
	}
}

// Property: extrapolated tag latency and storage grow monotonically with
// cache size.
func TestTagParamsMonotonicProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		// Map to cache sizes between 16MB and ~4GB, page aligned.
		sa := int64(a%240+16) * MB
		sb := int64(b%240+16) * MB
		if sa > sb {
			sa, sb = sb, sa
		}
		pa, pb := TagParamsFor(sa), TagParamsFor(sb)
		return pa.TagBytes <= pb.TagBytes && pa.LatencyCyc <= pb.LatencyCyc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGIPTStorage(t *testing.T) {
	// The paper: 82 bits/entry, 2.56MB for a 1GB cache, <0.25% overhead.
	if GIPTEntryBits != 82 {
		t.Fatalf("GIPT entry = %d bits, want 82", GIPTEntryBits)
	}
	got := GIPTBytes(1 * GB)
	wantMB := 2.56
	gotMB := float64(got) / 1e6
	if math.Abs(gotMB-wantMB) > 0.2 {
		t.Errorf("GIPT for 1GB = %.2fMB, want ≈2.56MB", gotMB)
	}
	if ov := GIPTOverhead(1 * GB); ov >= 0.0025+1e-4 {
		t.Errorf("GIPT overhead = %v, want < 0.25%%", ov)
	}
	if GIPTOverhead(0) != 0 {
		t.Error("zero cache should have zero overhead")
	}
}

func TestBlockTagBytes(t *testing.T) {
	// The motivating example: 128MB of tags per 1GB block-based cache.
	if got := BlockTagBytes(1 * GB); got != 128*MB {
		t.Fatalf("block tags for 1GB = %d, want 128MB", got)
	}
}

func TestGIPTScalesLinearly(t *testing.T) {
	if 2*GIPTBytes(512*MB) != GIPTBytes(1*GB) {
		t.Fatal("GIPT storage should scale linearly with cache size")
	}
}

func TestTLBAndCacheSets(t *testing.T) {
	c := Default()
	if got := c.L1TLB.Sets(); got != 8 {
		t.Errorf("L1 TLB sets = %d, want 8", got)
	}
	if got := (TLBConfig{Entries: 16}).Sets(); got != 16 {
		t.Errorf("zero-way TLB sets = %d, want 16 (fully indexed)", got)
	}
	if got := c.L1D.Sets(); got != 128 {
		t.Errorf("L1D sets = %d, want 128", got)
	}
	if got := c.L2.Sets(); got != 2048 {
		t.Errorf("L2 sets = %d, want 2048", got)
	}
}

func TestTotalBanks(t *testing.T) {
	c := Default()
	if got := c.InPkg.TotalBanks(); got != 32 {
		t.Errorf("in-package banks = %d, want 32", got)
	}
	if got := c.OffPkg.TotalBanks(); got != 128 {
		t.Errorf("off-package banks = %d, want 128", got)
	}
}
