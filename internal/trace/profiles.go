package trace

import "fmt"

// Profiles for the 11 most memory-bound SPEC CPU 2006 programs the paper
// evaluates (Section 4) plus the four PARSEC programs of Section 5.3.
// Footprints are at paper scale (4KB pages); MPKI, reuse, spatial locality
// and singleton fractions encode each program's published qualitative
// behaviour:
//
//   - GemsFDTD and milc: many low-reuse pages → low DRAM-cache hit rate,
//     large IPC gap from the ideal cache (Section 5.1, Figure 13).
//   - libquantum: streaming with high spatial locality → largest L3
//     latency reduction (Figure 8).
//   - streamcluster and facesim: high page reuse and high MPKI → the
//     PARSEC winners (Section 5.3).
//   - swaptions and fluidanimate: low MPKI, mostly singleton pages → flat
//     or slightly negative (Section 5.3).
const pagesPerMB = 256

var specProfiles = []Profile{
	{Name: "mcf", MPKI: 30, FootprintPages: 150 * pagesPerMB, HotPages: 40 * pagesPerMB,
		HotFraction: 0.62, SpatialBlocks: 4, BlockRepeats: 2, SingletonFrac: 0.005, WriteFraction: 0.22, DependentFrac: 0.75},
	{Name: "milc", MPKI: 20, FootprintPages: 800 * pagesPerMB, HotPages: 24 * pagesPerMB,
		HotFraction: 0.65, SpatialBlocks: 14, BlockRepeats: 1, SingletonFrac: 0.02, WriteFraction: 0.30, DependentFrac: 0.35},
	{Name: "leslie3d", MPKI: 21, FootprintPages: 80 * pagesPerMB, HotPages: 20 * pagesPerMB,
		HotFraction: 0.70, SpatialBlocks: 16, BlockRepeats: 2, SingletonFrac: 0.02, WriteFraction: 0.34, DependentFrac: 0.30, Streaming: true},
	{Name: "soplex", MPKI: 22, FootprintPages: 120 * pagesPerMB, HotPages: 28 * pagesPerMB,
		HotFraction: 0.64, SpatialBlocks: 8, BlockRepeats: 2, SingletonFrac: 0.02, WriteFraction: 0.24, DependentFrac: 0.50},
	{Name: "GemsFDTD", MPKI: 20, FootprintPages: 1000 * pagesPerMB, HotPages: 24 * pagesPerMB,
		HotFraction: 0.65, SpatialBlocks: 16, BlockRepeats: 1, SingletonFrac: 0.12, WriteFraction: 0.38, DependentFrac: 0.40},
	{Name: "lbm", MPKI: 26, FootprintPages: 180 * pagesPerMB, HotPages: 32 * pagesPerMB,
		HotFraction: 0.52, SpatialBlocks: 24, BlockRepeats: 1, SingletonFrac: 0.01, WriteFraction: 0.46, DependentFrac: 0.15, Streaming: true},
	{Name: "omnetpp", MPKI: 19, FootprintPages: 100 * pagesPerMB, HotPages: 26 * pagesPerMB,
		HotFraction: 0.66, SpatialBlocks: 3, BlockRepeats: 3, SingletonFrac: 0.01, WriteFraction: 0.28, DependentFrac: 0.70},
	{Name: "sphinx3", MPKI: 12, FootprintPages: 120 * pagesPerMB, HotPages: 32 * pagesPerMB,
		HotFraction: 0.80, SpatialBlocks: 9, BlockRepeats: 2, SingletonFrac: 0.02, WriteFraction: 0.14, DependentFrac: 0.45},
	{Name: "libquantum", MPKI: 25, FootprintPages: 64 * pagesPerMB, HotPages: 16 * pagesPerMB,
		HotFraction: 0.40, SpatialBlocks: 32, BlockRepeats: 1, SingletonFrac: 0, WriteFraction: 0.25, DependentFrac: 0.10, Streaming: true},
	{Name: "bwaves", MPKI: 15, FootprintPages: 160 * pagesPerMB, HotPages: 36 * pagesPerMB,
		HotFraction: 0.58, SpatialBlocks: 20, BlockRepeats: 2, SingletonFrac: 0.01, WriteFraction: 0.30, DependentFrac: 0.20, Streaming: true},
	{Name: "zeusmp", MPKI: 10, FootprintPages: 100 * pagesPerMB, HotPages: 28 * pagesPerMB,
		HotFraction: 0.72, SpatialBlocks: 14, BlockRepeats: 2, SingletonFrac: 0.02, WriteFraction: 0.32, DependentFrac: 0.35},
}

var parsecProfiles = []Profile{
	{Name: "swaptions", MPKI: 1.2, FootprintPages: 32 * pagesPerMB, HotPages: 4 * pagesPerMB,
		HotFraction: 0.35, SpatialBlocks: 2, BlockRepeats: 3, SingletonFrac: 0.04, WriteFraction: 0.20, DependentFrac: 0.30},
	{Name: "facesim", MPKI: 9, FootprintPages: 200 * pagesPerMB, HotPages: 56 * pagesPerMB,
		HotFraction: 0.82, SpatialBlocks: 12, BlockRepeats: 2, SingletonFrac: 0.03, WriteFraction: 0.36, DependentFrac: 0.40},
	{Name: "fluidanimate", MPKI: 3.2, FootprintPages: 120 * pagesPerMB, HotPages: 12 * pagesPerMB,
		HotFraction: 0.40, SpatialBlocks: 4, BlockRepeats: 3, SingletonFrac: 0.04, WriteFraction: 0.30, DependentFrac: 0.35},
	{Name: "streamcluster", MPKI: 16, FootprintPages: 160 * pagesPerMB, HotPages: 48 * pagesPerMB,
		HotFraction: 0.85, SpatialBlocks: 16, BlockRepeats: 1, SingletonFrac: 0.02, WriteFraction: 0.18, DependentFrac: 0.25, Streaming: true},
}

// SPECNames lists the 11 single-programmed workloads in plot order.
func SPECNames() []string {
	out := make([]string, len(specProfiles))
	for i, p := range specProfiles {
		out[i] = p.Name
	}
	return out
}

// PARSECNames lists the four multi-threaded workloads.
func PARSECNames() []string {
	out := make([]string, len(parsecProfiles))
	for i, p := range parsecProfiles {
		out[i] = p.Name
	}
	return out
}

// ProfileByName returns the named SPEC or PARSEC profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range specProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range parsecProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}

// Mixes reproduces Table 5: the eight multi-programmed groupings of four
// memory-bound SPEC programs.
func Mixes() map[string][]string {
	return map[string][]string{
		"MIX1": {"milc", "leslie3d", "omnetpp", "sphinx3"},
		"MIX2": {"milc", "leslie3d", "soplex", "omnetpp"},
		"MIX3": {"milc", "soplex", "GemsFDTD", "omnetpp"},
		"MIX4": {"soplex", "GemsFDTD", "lbm", "omnetpp"},
		"MIX5": {"mcf", "soplex", "GemsFDTD", "lbm"},
		"MIX6": {"mcf", "leslie3d", "lbm", "sphinx3"},
		"MIX7": {"milc", "soplex", "lbm", "sphinx3"},
		"MIX8": {"mcf", "leslie3d", "GemsFDTD", "omnetpp"},
	}
}

// MixNames returns MIX1..MIX8 in order.
func MixNames() []string {
	return []string{"MIX1", "MIX2", "MIX3", "MIX4", "MIX5", "MIX6", "MIX7", "MIX8"}
}
