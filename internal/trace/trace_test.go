package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func testProfile() Profile {
	return Profile{
		Name: "test", MPKI: 20, FootprintPages: 4096, HotPages: 512,
		HotFraction: 0.6, SpatialBlocks: 8, BlockRepeats: 2,
		SingletonFrac: 0.1, WriteFraction: 0.3,
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(testProfile(), 42)
	g2 := NewGenerator(testProfile(), 42)
	for i := 0; i < 10000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	g1 := NewGenerator(testProfile(), 1)
	g2 := NewGenerator(testProfile(), 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if g1.Next().VAddr == g2.Next().VAddr {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced near-identical streams (%d/1000 same)", same)
	}
}

func TestFootprintBounded(t *testing.T) {
	p := testProfile()
	g := NewGenerator(p, 7)
	pages := map[uint64]bool{}
	singles := map[uint64]bool{}
	for i := 0; i < 500000; i++ {
		a := g.Next()
		vpn := a.VAddr >> 12
		if vpn >= SingletonBase {
			singles[vpn] = true
		} else {
			pages[vpn] = true
		}
	}
	if len(pages) > p.FootprintPages {
		t.Fatalf("touched %d footprint pages, footprint is %d", len(pages), p.FootprintPages)
	}
	// The permutation cursor must cover the footprint after enough visits.
	if len(pages) < p.FootprintPages {
		t.Fatalf("touched only %d of %d footprint pages", len(pages), p.FootprintPages)
	}
	if len(singles) == 0 {
		t.Fatal("no singleton pages despite a positive singleton fraction")
	}
}

func TestSingletonsNeverRepeat(t *testing.T) {
	p := testProfile()
	p.SingletonFrac = 0.5
	g := NewGenerator(p, 13)
	visits := map[uint64]int{}
	last := uint64(0)
	for i := 0; i < 100000; i++ {
		vpn := g.Next().VAddr >> 12
		if vpn >= SingletonBase && vpn != last {
			visits[vpn]++
		}
		last = vpn
	}
	for vpn, n := range visits {
		if n > 1 {
			t.Fatalf("singleton page %d visited %d times", vpn, n)
		}
	}
}

func TestMPKIApproximation(t *testing.T) {
	// Distinct-block touches per kilo-instruction should approximate the
	// profile MPKI (each distinct block touch is a potential L2 miss).
	p := testProfile()
	g := NewGenerator(p, 3)
	instr := 0
	blocks := map[uint64]bool{}
	var last uint64 = ^uint64(0)
	distinct := 0
	for i := 0; i < 300000; i++ {
		a := g.Next()
		instr += a.Gap + 1
		blk := a.VAddr >> 6
		if blk != last {
			distinct++
			last = blk
		}
		blocks[blk] = true
	}
	got := float64(distinct) / float64(instr) * 1000
	if got < p.MPKI*0.5 || got > p.MPKI*2.0 {
		t.Fatalf("effective block-touch MPKI = %.1f, profile says %.1f", got, p.MPKI)
	}
}

func TestWriteFraction(t *testing.T) {
	p := testProfile()
	g := NewGenerator(p, 5)
	writes := 0
	const N = 100000
	for i := 0; i < N; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / N
	if math.Abs(frac-p.WriteFraction) > 0.02 {
		t.Fatalf("write fraction = %.3f, want ≈%.2f", frac, p.WriteFraction)
	}
}

func TestPageReuseTracksHotFraction(t *testing.T) {
	// High hot-fraction profiles revisit pages far more than low ones.
	hi, lo := testProfile(), testProfile()
	hi.HotFraction, lo.HotFraction = 0.9, 0.1
	reuse := func(p Profile) float64 {
		g := NewGenerator(p, 11)
		visits := map[uint64]int{}
		lastPage := uint64(0)
		for i := 0; i < 120000; i++ {
			pg := g.Next().VAddr >> 12
			if pg != lastPage {
				visits[pg]++
				lastPage = pg
			}
		}
		total, pages := 0, len(visits)
		for _, v := range visits {
			total += v
		}
		return float64(total) / float64(pages)
	}
	rh, rl := reuse(hi), reuse(lo)
	if rh <= rl*1.5 {
		t.Fatalf("hot profile reuse %.2f not clearly above cold %.2f", rh, rl)
	}
}

func TestSingletonsMarkedLowReuse(t *testing.T) {
	p := testProfile()
	p.SingletonFrac = 0.5
	g := NewGenerator(p, 9)
	low, total := 0, 0
	for i := 0; i < 50000; i++ {
		a := g.Next()
		total++
		if a.LowReuse {
			low++
		}
	}
	if low == 0 {
		t.Fatal("no accesses marked low-reuse despite 50% singleton fraction")
	}
	if len(g.LowReusePages()) == 0 {
		t.Fatal("low-reuse page oracle empty")
	}
}

func TestNoSingletonsWhenDisabled(t *testing.T) {
	p := testProfile()
	p.SingletonFrac = 0
	g := NewGenerator(p, 9)
	for i := 0; i < 20000; i++ {
		if g.Next().LowReuse {
			t.Fatal("low-reuse access with singleton fraction 0")
		}
	}
}

func TestStreamingSequential(t *testing.T) {
	p := testProfile()
	p.Streaming = true
	p.HotFraction = 0 // pure streaming
	g := NewGenerator(p, 1)
	var pages []uint64
	lastPage := uint64(0)
	for len(pages) < 100 {
		pg := g.Next().VAddr >> 12
		if pg != lastPage {
			pages = append(pages, pg)
			lastPage = pg
		}
	}
	ascending := 0
	for i := 1; i < len(pages); i++ {
		if pages[i] == pages[i-1]+1 {
			ascending++
		}
	}
	if ascending < 80 {
		t.Fatalf("streaming profile not sequential: %d/99 ascending steps", ascending)
	}
}

func TestSpatialBurst(t *testing.T) {
	p := testProfile()
	p.SingletonFrac = 0
	p.BlockRepeats = 0
	g := NewGenerator(p, 2)
	// Count consecutive accesses within the same page.
	runs := map[int]int{}
	run := 1
	last := g.Next().VAddr >> 12
	for i := 0; i < 50000; i++ {
		pg := g.Next().VAddr >> 12
		if pg == last {
			run++
		} else {
			runs[run]++
			run = 1
			last = pg
		}
	}
	// Bursts should cluster near SpatialBlocks (8) — hot-page revisits
	// can concatenate, so check the mode is >= 8.
	best, bestN := 0, 0
	for r, n := range runs {
		if n > bestN {
			best, bestN = r, n
		}
	}
	if best < p.SpatialBlocks {
		t.Fatalf("modal burst = %d accesses, want >= %d", best, p.SpatialBlocks)
	}
}

func TestThreadGroupSharesPages(t *testing.T) {
	p := testProfile()
	gs, err := NewThreadGroup(p, 4, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 {
		t.Fatalf("got %d generators", len(gs))
	}
	perThread := make([]map[uint64]bool, 4)
	for ti, g := range gs {
		perThread[ti] = map[uint64]bool{}
		for i := 0; i < 20000; i++ {
			perThread[ti][g.Next().VAddr>>12] = true
		}
	}
	sharedPages := 0
	for pg := range perThread[0] {
		if perThread[1][pg] || perThread[2][pg] || perThread[3][pg] {
			sharedPages++
		}
	}
	if sharedPages == 0 {
		t.Fatal("threads share no pages; multi-threaded sharing not modelled")
	}
}

func TestThreadGroupErrors(t *testing.T) {
	if _, err := NewThreadGroup(testProfile(), 0, 1); err == nil {
		t.Fatal("zero threads accepted")
	}
	bad := testProfile()
	bad.MPKI = 0
	if _, err := NewThreadGroup(bad, 1, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestProfileValidation(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MPKI = -1 },
		func(p *Profile) { p.FootprintPages = 0 },
		func(p *Profile) { p.HotPages = 0 },
		func(p *Profile) { p.HotPages = p.FootprintPages + 1 },
		func(p *Profile) { p.HotFraction = 1.5 },
		func(p *Profile) { p.SpatialBlocks = 0 },
		func(p *Profile) { p.SpatialBlocks = 65 },
		func(p *Profile) { p.BlockRepeats = -1 },
		func(p *Profile) { p.SingletonFrac = -0.1 },
		func(p *Profile) { p.WriteFraction = 2 },
	}
	for i, mutate := range cases {
		p := testProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
	good := testProfile()
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestScaled(t *testing.T) {
	p := testProfile()
	s := p.Scaled(4)
	if s.FootprintPages != p.FootprintPages/16 || s.HotPages != p.HotPages/16 {
		t.Fatalf("scaled = %d/%d", s.FootprintPages, s.HotPages)
	}
	// Extreme scaling clamps to 1 page and keeps hot <= footprint.
	tiny := p.Scaled(30)
	if tiny.FootprintPages < 1 || tiny.HotPages < 1 || tiny.HotPages > tiny.FootprintPages {
		t.Fatalf("tiny scale = %+v", tiny)
	}
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllProfilesValid(t *testing.T) {
	for _, name := range append(SPECNames(), PARSECNames()...) {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := p.Scaled(6).Validate(); err != nil {
			t.Errorf("%s scaled: %v", name, err)
		}
	}
}

func TestElevenSPECFourPARSEC(t *testing.T) {
	if got := len(SPECNames()); got != 11 {
		t.Fatalf("SPEC programs = %d, want 11", got)
	}
	if got := len(PARSECNames()); got != 4 {
		t.Fatalf("PARSEC programs = %d, want 4", got)
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("nonesuch"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestMixesMatchTable5(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 8 {
		t.Fatalf("mixes = %d, want 8", len(mixes))
	}
	want := map[string][]string{
		"MIX1": {"milc", "leslie3d", "omnetpp", "sphinx3"},
		"MIX5": {"mcf", "soplex", "GemsFDTD", "lbm"},
		"MIX8": {"mcf", "leslie3d", "GemsFDTD", "omnetpp"},
	}
	for name, progs := range want {
		got := mixes[name]
		if len(got) != 4 {
			t.Fatalf("%s has %d programs", name, len(got))
		}
		for i := range progs {
			if got[i] != progs[i] {
				t.Errorf("%s[%d] = %s, want %s", name, i, got[i], progs[i])
			}
		}
	}
	for _, name := range MixNames() {
		progs, ok := mixes[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		for _, prog := range progs {
			if _, err := ProfileByName(prog); err != nil {
				t.Errorf("%s references unknown program %s", name, prog)
			}
		}
	}
}

// Property: every generated address stays within the profile's virtual
// footprint window, and gaps are never negative.
func TestStreamWellFormedProperty(t *testing.T) {
	f := func(seed uint64, hot8, spat8 uint8) bool {
		p := testProfile()
		p.HotFraction = float64(hot8%101) / 100
		p.SpatialBlocks = int(spat8%64) + 1
		g := NewGenerator(p, seed)
		base := uint64(1) << 20
		for i := 0; i < 2000; i++ {
			a := g.Next()
			vpn := a.VAddr >> 12
			inFootprint := vpn >= base && vpn < base+uint64(p.FootprintPages)
			if !inFootprint && vpn < SingletonBase {
				return false
			}
			if a.Gap < 0 {
				return false
			}
		}
		return g.Emitted() == 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
