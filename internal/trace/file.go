package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Source produces a reference stream. Generator is the synthetic source;
// Replay feeds back a recorded trace.
type Source interface {
	Next() Access
}

// Trace-file format: a fixed header followed by one varint-encoded record
// per access. The format is stable and self-describing enough for
// cross-version replay.
const (
	fileMagic   = "TDCT" // Tagless DRAM Cache Trace
	fileVersion = 1
)

// Record flag bits.
const (
	flagWrite = 1 << iota
	flagLowReuse
	flagDependent
	flagShared
)

// Record writes n accesses from src to w in the trace-file format.
func Record(w io.Writer, src Source, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], fileVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], n)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [2*binary.MaxVarintLen64 + 1]byte
	for i := uint64(0); i < n; i++ {
		a := src.Next()
		var flags byte
		if a.Write {
			flags |= flagWrite
		}
		if a.LowReuse {
			flags |= flagLowReuse
		}
		if a.Dependent {
			flags |= flagDependent
		}
		if a.Shared {
			flags |= flagShared
		}
		buf[0] = flags
		k := 1
		k += binary.PutUvarint(buf[k:], a.VAddr)
		k += binary.PutUvarint(buf[k:], uint64(a.Gap))
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAll parses a trace file into memory.
func ReadAll(r io.Reader) ([]Access, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	const sanity = 1 << 32
	if n > sanity {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	out := make([]Access, 0, n)
	for i := uint64(0); i < n; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		vaddr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d vaddr: %w", i, err)
		}
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d gap: %w", i, err)
		}
		out = append(out, Access{
			VAddr:     vaddr,
			Gap:       int(gap),
			Write:     flags&flagWrite != 0,
			LowReuse:  flags&flagLowReuse != 0,
			Dependent: flags&flagDependent != 0,
			Shared:    flags&flagShared != 0,
		})
	}
	return out, nil
}

// Replay is a Source that cycles through a recorded trace (simulations are
// budget-bounded, so wrapping models a steady-state loop of the recorded
// window).
type Replay struct {
	accesses []Access
	pos      int
	Wraps    int
}

// NewReplay wraps recorded accesses as a Source.
func NewReplay(accesses []Access) (*Replay, error) {
	if len(accesses) == 0 {
		return nil, fmt.Errorf("trace: empty replay")
	}
	return &Replay{accesses: accesses}, nil
}

// Next returns the next recorded access, wrapping at the end.
func (r *Replay) Next() Access {
	a := r.accesses[r.pos]
	r.pos++
	if r.pos == len(r.accesses) {
		r.pos = 0
		r.Wraps++
	}
	return a
}

// Len returns the recorded trace length.
func (r *Replay) Len() int { return len(r.accesses) }
