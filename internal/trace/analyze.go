package trace

import (
	"fmt"
	"sort"
	"strings"

	"taglessdram/internal/stats"
)

// Report characterizes a reference stream: the aggregate properties the
// synthetic profiles are built from, measured back out of a trace. It is
// how recorded traces are validated against their source profiles.
type Report struct {
	Accesses     uint64
	Instructions uint64

	// BlockMPKI is distinct-block touches per kilo-instruction — the
	// upper bound on L2 MPKI a cache hierarchy can observe.
	BlockMPKI float64

	FootprintPages  int // distinct pages below the singleton region
	SingletonPages  int // distinct pages in the singleton region
	SharedPages     int // distinct pages in the shared region
	WriteFraction   float64
	SharedFraction  float64
	DependentFrac   float64
	LowReuseFrac    float64
	MeanBurstBlocks float64 // consecutive same-page distinct-block runs

	// PageReuse is the histogram of page inter-visit distances (in page
	// visits); long tails indicate streaming re-use, short ones a hot
	// working set.
	PageReuse *stats.Histogram
	// VisitsPerPage is the mean number of visits per distinct page.
	VisitsPerPage float64
}

// Analyze consumes n accesses from src and measures the stream.
func Analyze(src Source, n uint64) Report {
	r := Report{PageReuse: stats.NewHistogram(64, 64)}
	var writes, shared, dependent, lowReuse uint64
	var distinctBlocks uint64
	lastBlock := ^uint64(0)

	lastVisit := map[uint64]uint64{} // page → visit index of last visit
	visitCount := map[uint64]uint64{}
	var visitIdx uint64
	lastPage := ^uint64(0)

	var burstLen, burstSum, burstN uint64

	for i := uint64(0); i < n; i++ {
		a := src.Next()
		r.Accesses++
		r.Instructions += uint64(a.Gap) + 1
		if a.Write {
			writes++
		}
		if a.Shared {
			shared++
		}
		if a.Dependent {
			dependent++
		}
		if a.LowReuse {
			lowReuse++
		}
		blk := a.VAddr >> 6
		if blk != lastBlock {
			distinctBlocks++
			lastBlock = blk
		}
		page := a.VAddr >> 12
		if page != lastPage {
			// New page visit.
			if burstLen > 0 {
				burstSum += burstLen
				burstN++
			}
			burstLen = 0
			visitIdx++
			if last, ok := lastVisit[page]; ok {
				r.PageReuse.Observe(float64(visitIdx - last))
			}
			lastVisit[page] = visitIdx
			visitCount[page]++
			lastPage = page
		}
		burstLen++
	}
	if burstLen > 0 {
		burstSum += burstLen
		burstN++
	}

	for page := range lastVisit {
		switch {
		case page >= SharedBase:
			r.SharedPages++
		case page >= SingletonBase:
			r.SingletonPages++
		default:
			r.FootprintPages++
		}
	}
	if r.Instructions > 0 {
		r.BlockMPKI = float64(distinctBlocks) / float64(r.Instructions) * 1000
	}
	if r.Accesses > 0 {
		r.WriteFraction = float64(writes) / float64(r.Accesses)
		r.SharedFraction = float64(shared) / float64(r.Accesses)
		r.DependentFrac = float64(dependent) / float64(r.Accesses)
		r.LowReuseFrac = float64(lowReuse) / float64(r.Accesses)
	}
	if burstN > 0 {
		// Burst length in accesses; convert to distinct blocks via the
		// distinct-block share.
		r.MeanBurstBlocks = float64(distinctBlocks) / float64(burstN)
	}
	if len(visitCount) > 0 {
		var total uint64
		for _, v := range visitCount {
			total += v
		}
		r.VisitsPerPage = float64(total) / float64(len(visitCount))
	}
	return r
}

// String renders a multi-line summary.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "accesses:        %d\n", r.Accesses)
	fmt.Fprintf(&sb, "instructions:    %d (%.1f per access)\n",
		r.Instructions, safeDiv(float64(r.Instructions), float64(r.Accesses)))
	fmt.Fprintf(&sb, "block MPKI:      %.1f\n", r.BlockMPKI)
	fmt.Fprintf(&sb, "footprint pages: %d (+%d singletons, +%d shared)\n",
		r.FootprintPages, r.SingletonPages, r.SharedPages)
	fmt.Fprintf(&sb, "writes:          %.1f%%\n", r.WriteFraction*100)
	fmt.Fprintf(&sb, "dependent:       %.1f%%\n", r.DependentFrac*100)
	fmt.Fprintf(&sb, "shared:          %.1f%%\n", r.SharedFraction*100)
	fmt.Fprintf(&sb, "low-reuse:       %.1f%%\n", r.LowReuseFrac*100)
	fmt.Fprintf(&sb, "visits/page:     %.2f\n", r.VisitsPerPage)
	fmt.Fprintf(&sb, "blocks/burst:    %.1f\n", r.MeanBurstBlocks)
	if r.PageReuse != nil && r.PageReuse.Count() > 0 {
		fmt.Fprintf(&sb, "page reuse dist: p50=%.0f p90=%.0f visits (n=%d)\n",
			r.PageReuse.Percentile(50), r.PageReuse.Percentile(90), r.PageReuse.Count())
	}
	return sb.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// CompareProfiles measures generators for every named profile and returns
// one report per name, in the given order (a calibration aid).
func CompareProfiles(names []string, n uint64, shift uint, seed uint64) (map[string]Report, error) {
	out := make(map[string]Report, len(names))
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, name := range sorted {
		p, err := ProfileByName(name)
		if err != nil {
			return nil, err
		}
		out[name] = Analyze(NewGenerator(p.Scaled(shift), seed), n)
	}
	return out, nil
}
