package trace

import (
	"reflect"
	"testing"
)

// visitProfiles exercises the generator corners the visit path must match:
// repeats, streaming, shared/singleton regions, single-block visits and a
// write-free stream.
func visitProfiles() []Profile {
	base := testProfile()
	shared := base
	shared.Name = "shared"
	shared.SharedFrac = 0.2
	streaming := base
	streaming.Name = "streaming"
	streaming.Streaming = true
	streaming.BlockRepeats = 0
	oneBlock := base
	oneBlock.Name = "oneblock"
	oneBlock.SpatialBlocks = 1
	readOnly := base
	readOnly.Name = "readonly"
	readOnly.WriteFraction = 0
	dense := base
	dense.Name = "dense"
	dense.SpatialBlocks = 64
	dense.BlockRepeats = 3
	return []Profile{base, shared, streaming, oneBlock, readOnly, dense}
}

// nextVisitRef collects one whole page visit from the per-reference stream.
func nextVisitRef(g *Generator) Visit {
	var v Visit
	firstSeen := map[int]bool{}
	for {
		a := g.Next()
		block := int(a.VAddr>>6) & 63
		if v.Refs == 0 {
			v.Page = a.VAddr >> 12
			v.FirstBlock = block
			v.LowReuse = a.LowReuse
			v.Shared = a.Shared
		}
		if block-v.FirstBlock+1 > v.Blocks {
			v.Blocks = block - v.FirstBlock + 1
		}
		if a.Write {
			v.AnyWrite |= 1 << uint(block-v.FirstBlock)
			if !firstSeen[block] {
				v.FirstWrite |= 1 << uint(block-v.FirstBlock)
			}
		}
		firstSeen[block] = true
		v.Refs++
		v.Instr += uint64(a.Gap) + 1
		if g.AtVisitBoundary() {
			return v
		}
	}
}

func TestNextVisitMatchesNextLoop(t *testing.T) {
	for _, p := range visitProfiles() {
		t.Run(p.Name, func(t *testing.T) {
			ref := NewGenerator(p, 42)
			fast := NewGenerator(p, 42)
			var v Visit
			for i := 0; i < 5000; i++ {
				want := nextVisitRef(ref)
				fast.NextVisit(&v)
				if !reflect.DeepEqual(want, v) {
					t.Fatalf("visit %d: per-ref %+v vs visit %+v", i, want, v)
				}
				if ref.Emitted() != fast.Emitted() {
					t.Fatalf("visit %d: emitted %d vs %d", i, ref.Emitted(), fast.Emitted())
				}
			}
			// The streams must stay interchangeable after the switch.
			for i := 0; i < 10000; i++ {
				a, b := ref.Next(), fast.Next()
				if a != b {
					t.Fatalf("streams diverge %d refs after visits: %+v vs %+v", i, a, b)
				}
			}
		})
	}
}

func TestNextVisitInterleavesWithNext(t *testing.T) {
	p := testProfile()
	p.SharedFrac = 0.1
	ref := NewGenerator(p, 7)
	mixed := NewGenerator(p, 7)
	var v Visit
	for i := 0; i < 3000; i++ {
		want := nextVisitRef(ref)
		if i%2 == 0 {
			mixed.NextVisit(&v)
			if !reflect.DeepEqual(want, v) {
				t.Fatalf("visit %d mismatch: %+v vs %+v", i, want, v)
			}
		} else {
			got := nextVisitRef(mixed)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("visit %d mismatch: %+v vs %+v", i, want, got)
			}
		}
	}
}

func TestNextVisitThreadGroup(t *testing.T) {
	p := testProfile()
	p.SharedFrac = 0.05
	mk := func() []*Generator {
		gs, err := NewThreadGroup(p, 4, 99)
		if err != nil {
			t.Fatal(err)
		}
		return gs
	}
	ref, fast := mk(), mk()
	var v Visit
	// Round-robin across threads keeps the shared-state mutation order
	// identical between the two groups.
	for i := 0; i < 4000; i++ {
		want := nextVisitRef(ref[i%4])
		fast[i%4].NextVisit(&v)
		if !reflect.DeepEqual(want, v) {
			t.Fatalf("visit %d thread %d: %+v vs %+v", i, i%4, want, v)
		}
	}
	for i := 0; i < 4000; i++ {
		a, b := ref[i%4].Next(), fast[i%4].Next()
		if a != b {
			t.Fatalf("thread %d diverges after visits: %+v vs %+v", i%4, a, b)
		}
	}
}

func TestNextVisitMidVisitPanics(t *testing.T) {
	g := NewGenerator(testProfile(), 1)
	g.Next() // mid-visit: SpatialBlocks > 1
	if g.AtVisitBoundary() {
		t.Fatal("generator unexpectedly at a boundary after one ref")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NextVisit mid-visit did not panic")
		}
	}()
	var v Visit
	g.NextVisit(&v)
}

func TestGenStateRoundTrip(t *testing.T) {
	p := testProfile()
	p.SharedFrac = 0.1
	g := NewGenerator(p, 3)
	for i := 0; i < 12345; i++ {
		g.Next()
	}
	st, sst := g.State(), g.SharedState()

	twin := NewGenerator(p, 3)
	twin.SetState(st)
	twin.SetSharedState(sst)
	for i := 0; i < 20000; i++ {
		a, b := g.Next(), twin.Next()
		if a != b {
			t.Fatalf("restored stream diverges at %d: %+v vs %+v", i, a, b)
		}
	}
	if g.Emitted() != twin.Emitted() {
		t.Fatalf("emitted %d vs %d", g.Emitted(), twin.Emitted())
	}
}
