package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	p := testProfile()
	p.SharedFrac = 0.1
	p.SingletonFrac = 0.2
	g := NewGenerator(p, 42)
	var buf bytes.Buffer
	const n = 5000
	if err := Record(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	// The recorded stream must equal a fresh generation.
	g2 := NewGenerator(p, 42)
	for i, a := range got {
		if want := g2.Next(); a != want {
			t.Fatalf("record %d = %+v, want %+v", i, a, want)
		}
	}
}

func TestReplayWraps(t *testing.T) {
	accesses := []Access{
		{VAddr: 0x1000, Gap: 3},
		{VAddr: 0x2000, Write: true},
	}
	r, err := NewReplay(accesses)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := 0; i < 5; i++ {
		a := r.Next()
		if a != accesses[i%2] {
			t.Fatalf("replay %d = %+v", i, a)
		}
	}
	if r.Wraps != 2 {
		t.Fatalf("wraps = %d, want 2", r.Wraps)
	}
}

func TestReplayEmpty(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Fatal("empty replay accepted")
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"short":       []byte("TD"),
		"bad magic":   []byte("NOPE00000000000000"),
		"truncated":   append([]byte("TDCT"), 1, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0),
		"bad version": append([]byte("TDCT"), 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := ReadAll(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadAllRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("TDCT")
	buf.Write([]byte{1, 0, 0, 0})                // version
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0x80}) // absurd count
	if _, err := ReadAll(&buf); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("err = %v", err)
	}
}

// Property: any slice of accesses with bounded fields round-trips exactly
// through the file format.
func TestFileFormatRoundTripProperty(t *testing.T) {
	f := func(vaddrs []uint64, gaps []uint16, flags []uint8) bool {
		n := len(vaddrs)
		if len(gaps) < n {
			n = len(gaps)
		}
		if len(flags) < n {
			n = len(flags)
		}
		if n == 0 {
			return true
		}
		in := make([]Access, n)
		for i := 0; i < n; i++ {
			in[i] = Access{
				VAddr:     vaddrs[i],
				Gap:       int(gaps[i]),
				Write:     flags[i]&1 != 0,
				LowReuse:  flags[i]&2 != 0,
				Dependent: flags[i]&4 != 0,
				Shared:    flags[i]&8 != 0,
			}
		}
		src, _ := NewReplay(in)
		var buf bytes.Buffer
		if err := Record(&buf, src, uint64(n)); err != nil {
			return false
		}
		out, err := ReadAll(&buf)
		if err != nil || len(out) != n {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
