package trace

import (
	"strings"
	"testing"
)

func TestAnalyzeMatchesProfile(t *testing.T) {
	p := testProfile()
	p.SharedFrac = 0.1
	g := NewGenerator(p, 3)
	r := Analyze(g, 200000)

	if r.Accesses != 200000 {
		t.Fatalf("accesses = %d", r.Accesses)
	}
	// Measured aggregates must track the profile within loose tolerance.
	if r.BlockMPKI < p.MPKI*0.5 || r.BlockMPKI > p.MPKI*2 {
		t.Errorf("block MPKI = %.1f, profile %.1f", r.BlockMPKI, p.MPKI)
	}
	// Shared (library) pages are read-only, so the measured write
	// fraction sits a little below the profile's.
	if d := r.WriteFraction - p.WriteFraction; d > 0.02 || d < -0.06 {
		t.Errorf("write fraction = %.3f, profile %.2f", r.WriteFraction, p.WriteFraction)
	}
	if r.FootprintPages > p.FootprintPages {
		t.Errorf("footprint = %d > profile %d", r.FootprintPages, p.FootprintPages)
	}
	if r.SingletonPages == 0 {
		t.Error("no singleton pages measured despite singleton fraction")
	}
	if r.SharedPages == 0 {
		t.Error("no shared pages measured despite shared fraction")
	}
	if r.VisitsPerPage <= 1 {
		t.Errorf("visits/page = %.2f, want > 1 (hot set reuse)", r.VisitsPerPage)
	}
	if r.PageReuse.Count() == 0 {
		t.Error("no reuse distances recorded")
	}
}

func TestAnalyzeHotVsColdReuse(t *testing.T) {
	hot, cold := testProfile(), testProfile()
	hot.HotFraction, cold.HotFraction = 0.9, 0.05
	rh := Analyze(NewGenerator(hot, 1), 100000)
	rc := Analyze(NewGenerator(cold, 1), 100000)
	if rh.VisitsPerPage <= rc.VisitsPerPage {
		t.Fatalf("hot profile reuse %.2f not above cold %.2f",
			rh.VisitsPerPage, rc.VisitsPerPage)
	}
	// Hot reuse distances should be shorter at the median.
	if rh.PageReuse.Percentile(50) >= rc.PageReuse.Percentile(50) {
		t.Fatalf("hot p50 reuse %.0f not below cold %.0f",
			rh.PageReuse.Percentile(50), rc.PageReuse.Percentile(50))
	}
}

func TestAnalyzeReportString(t *testing.T) {
	r := Analyze(NewGenerator(testProfile(), 2), 20000)
	s := r.String()
	for _, want := range []string{"accesses", "block MPKI", "footprint", "visits/page"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeZero(t *testing.T) {
	rep, _ := NewReplay([]Access{{VAddr: 1 << 20 << 12}})
	r := Analyze(rep, 0)
	if r.Accesses != 0 || r.BlockMPKI != 0 {
		t.Fatalf("zero-length analysis = %+v", r)
	}
	_ = r.String() // must not panic
}

func TestCompareProfiles(t *testing.T) {
	reports, err := CompareProfiles([]string{"sphinx3", "mcf"}, 50000, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	// mcf is far more memory-bound than sphinx3.
	if reports["mcf"].BlockMPKI <= reports["sphinx3"].BlockMPKI {
		t.Fatalf("mcf MPKI %.1f not above sphinx3 %.1f",
			reports["mcf"].BlockMPKI, reports["sphinx3"].BlockMPKI)
	}
	if _, err := CompareProfiles([]string{"nope"}, 10, 6, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestAnalyzeAllProfiles sanity-checks every calibrated profile: measured
// MPKI within 2x of spec, footprint within bounds, write fraction close.
func TestAnalyzeAllProfiles(t *testing.T) {
	for _, name := range append(SPECNames(), PARSECNames()...) {
		p, _ := ProfileByName(name)
		sp := p.Scaled(6)
		r := Analyze(NewGenerator(sp, 1), 150000)
		if r.BlockMPKI < p.MPKI*0.4 || r.BlockMPKI > p.MPKI*2.5 {
			t.Errorf("%s: measured MPKI %.1f vs profile %.1f", name, r.BlockMPKI, p.MPKI)
		}
		if r.FootprintPages > sp.FootprintPages {
			t.Errorf("%s: footprint %d exceeds spec %d", name, r.FootprintPages, sp.FootprintPages)
		}
	}
}
