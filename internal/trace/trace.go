// Package trace generates synthetic memory-reference streams that stand in
// for the paper's SimPoint slices of SPEC CPU 2006 and PARSEC programs.
//
// The published results are driven by a handful of aggregate workload
// properties the paper calls out explicitly: misses per kilo-instruction
// (the programs were chosen as the 11 most memory-bound), memory footprint
// (multi-programmed mixes quadruple it), page reuse ratio (GemsFDTD and
// milc are low; streamcluster and facesim are high), spatial locality
// (blocks touched per page), and the fraction of singleton pages
// (swaptions and fluidanimate). Each Profile encodes those properties and
// the Generator emits a deterministic reference stream exhibiting them.
//
// Address streams use a working-set model: bursts of spatially adjacent
// blocks within a page, pages drawn either from a hot set (reuse) or from
// a cold sequence (first touches; sequential for streaming programs).
package trace

import "fmt"

// Access is one memory reference in a trace.
type Access struct {
	VAddr uint64 // virtual byte address
	Write bool
	// Gap is the number of non-memory instructions retired before this
	// reference; it sets the program's memory intensity (MPKI).
	Gap int
	// LowReuse marks references to pages an offline profile would
	// classify as having fewer than the paper's 32-access threshold
	// (Section 5.4); the non-cacheable-page policy consumes it.
	LowReuse bool
	// Dependent marks a load on a serial dependence chain (pointer
	// chasing); its latency cannot be hidden by memory-level parallelism.
	Dependent bool
	// Shared marks a reference to an inter-process shared page (a shared
	// library or kernel page). Sections 3.5 and 6 discuss how the
	// tagless cache handles such pages: mark them non-cacheable, or
	// resolve them through a physical→cache alias table.
	Shared bool
}

// SingletonBase is the first virtual page of the unbounded region holding
// singleton (touch-once) pages. Real low-reuse pages are fresh addresses
// that never repeat, which is what makes them pollute page-granularity
// caches (the paper's over-fetching problem).
const SingletonBase = uint64(1) << 30

// SharedBase is the first virtual page of the inter-process shared region
// (mapped at the same virtual address in every process, like a prelinked
// shared library).
const SharedBase = uint64(1) << 32

// SharedRegionPages is the size of the shared region.
const SharedRegionPages = 256

// Profile describes one program's memory behaviour at full (paper) scale.
type Profile struct {
	Name           string
	MPKI           float64 // L2 misses per kilo-instruction
	FootprintPages int     // distinct 4KB pages touched over the run
	HotPages       int     // size of the actively reused working set
	HotFraction    float64 // probability a page visit targets the hot set
	SpatialBlocks  int     // distinct 64B blocks touched per page visit (1..64)
	BlockRepeats   int     // extra near-term re-references per block
	SingletonFrac  float64 // probability a cold page visit is a singleton
	WriteFraction  float64
	DependentFrac  float64 // fraction of references on serial dependence chains
	SharedFrac     float64 // probability a page visit targets the shared region
	Streaming      bool    // cold pages advance sequentially and re-stream
}

// Validate reports the first inconsistency in the profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile needs a name")
	case p.MPKI <= 0:
		return fmt.Errorf("trace: %s: MPKI must be positive", p.Name)
	case p.FootprintPages <= 0:
		return fmt.Errorf("trace: %s: footprint must be positive", p.Name)
	case p.HotPages <= 0 || p.HotPages > p.FootprintPages:
		return fmt.Errorf("trace: %s: hot pages %d out of range", p.Name, p.HotPages)
	case p.HotFraction < 0 || p.HotFraction > 1:
		return fmt.Errorf("trace: %s: hot fraction out of [0,1]", p.Name)
	case p.SpatialBlocks < 1 || p.SpatialBlocks > 64:
		return fmt.Errorf("trace: %s: spatial blocks %d out of [1,64]", p.Name, p.SpatialBlocks)
	case p.BlockRepeats < 0:
		return fmt.Errorf("trace: %s: negative block repeats", p.Name)
	case p.SingletonFrac < 0 || p.SingletonFrac > 1:
		return fmt.Errorf("trace: %s: singleton fraction out of [0,1]", p.Name)
	case p.WriteFraction < 0 || p.WriteFraction > 1:
		return fmt.Errorf("trace: %s: write fraction out of [0,1]", p.Name)
	case p.DependentFrac < 0 || p.DependentFrac > 1:
		return fmt.Errorf("trace: %s: dependent fraction out of [0,1]", p.Name)
	case p.SharedFrac < 0 || p.SharedFrac > 1:
		return fmt.Errorf("trace: %s: shared fraction out of [0,1]", p.Name)
	}
	return nil
}

// Scaled returns a copy with the footprint (and hot set) divided by
// 1<<shift, clamped to at least one page. Experiments shrink capacities
// and footprints together so capacity ratios match the paper while runs
// stay laptop-sized.
func (p Profile) Scaled(shift uint) Profile {
	s := p
	s.FootprintPages = max(1, p.FootprintPages>>shift)
	s.HotPages = max(1, min(p.HotPages>>shift, s.FootprintPages))
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// rng is a splitmix64 generator: tiny, fast, and deterministic across runs.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// shared holds state a thread group shares: the cold-page cursor, the
// singleton cursor and the hot working set. Single-threaded workloads own
// a private instance.
type shared struct {
	profile  Profile
	hot      []uint64 // ring of recently used pages
	hotNext  int
	cold     uint64 // cold-page visit counter
	perm     uint64 // multiplier for the cold permutation (coprime)
	singNext uint64 // next singleton page index
	baseVPN  uint64
	lowReuse map[uint64]bool // pages the offline profile marks low-reuse
}

// Generator emits one thread's reference stream.
type Generator struct {
	p      Profile
	sh     *shared
	r      rng
	thread int

	// Burst state: the current page visit.
	page       uint64
	pageLow    bool
	pageShared bool
	blockIdx   int
	blocksCut  int // blocks remaining in this visit
	repeats    int // repeats remaining for the current block
	gapBase    int

	emitted uint64
}

// NewGenerator builds a single-threaded generator for the profile. The
// seed varies the stream; identical seeds give identical streams.
func NewGenerator(p Profile, seed uint64) *Generator {
	gs, err := NewThreadGroup(p, 1, seed)
	if err != nil {
		panic(err)
	}
	return gs[0]
}

// NewThreadGroup builds n generators sharing one address space and hot
// working set, modelling a multi-threaded program (threads share the page
// table, so shared pages cause no aliasing — Section 3.5).
func NewThreadGroup(p Profile, n int, seed uint64) ([]*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: thread group needs at least one thread")
	}
	sh := &shared{
		profile:  p,
		hot:      make([]uint64, 0, p.HotPages),
		perm:     coprimeNear(uint64(p.FootprintPages)),
		baseVPN:  1 << 20, // keep VPNs away from zero for easier debugging
		lowReuse: make(map[uint64]bool),
	}
	out := make([]*Generator, n)
	for i := range out {
		out[i] = &Generator{
			p:       p,
			sh:      sh,
			r:       rng{s: seed*0x9e3779b97f4a7c15 + uint64(i)*0xdeadbeefcafef00d + 1},
			thread:  i,
			gapBase: gapFor(p),
		}
	}
	return out, nil
}

// gapFor derives the inter-block instruction gap from the target MPKI:
// one distinct block touch per 1000/MPKI instructions, of which the burst
// itself accounts for 1 + repeats references.
func gapFor(p Profile) int {
	per := 1000.0 / p.MPKI
	gap := int(per) - 1 - 2*p.BlockRepeats
	if gap < 0 {
		gap = 0
	}
	return gap
}

// coprimeNear returns an odd multiplier coprime with n, used to walk the
// footprint as a full permutation (every page touched once per wrap).
func coprimeNear(n uint64) uint64 {
	if n <= 2 {
		return 1
	}
	p := (0x9e3779b97f4a7c15 % n) | 1
	for gcd(p, n) != 1 {
		p += 2
		if p >= n {
			p = 1
		}
	}
	return p
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// pickPage chooses the next page to visit and classifies it.
func (g *Generator) pickPage() (vpn uint64, lowReuse, shared bool) {
	sh := g.sh
	// Inter-process shared region (read-mostly, skewed towards its head
	// like the hot functions of a shared library).
	if g.p.SharedFrac > 0 && g.r.float() < g.p.SharedFrac {
		a, b := g.r.intn(SharedRegionPages), g.r.intn(SharedRegionPages)
		if b < a {
			a = b
		}
		return SharedBase + uint64(a), false, true
	}
	if len(sh.hot) > 0 && g.r.float() < g.p.HotFraction {
		// Hot-set reuse. Favor recency: take the more recently inserted
		// of two uniform picks (a cheap Zipf-like skew).
		a, b := g.r.intn(len(sh.hot)), g.r.intn(len(sh.hot))
		idx := a
		if recency(sh, b) > recency(sh, a) {
			idx = b
		}
		return sh.hot[idx], false, false
	}
	// Singleton visits go to fresh, never-repeated pages: they are what
	// pollutes page-granularity caches (Section 3.5's over-fetching).
	if g.r.float() < g.p.SingletonFrac {
		vpn = SingletonBase + sh.singNext
		sh.singNext++
		sh.lowReuse[vpn] = true
		return vpn, true, false
	}
	// Cold page within the footprint: sequential for streaming programs,
	// a full pseudo-random permutation otherwise — either way one wrap
	// covers the footprint exactly once.
	var idx uint64
	if g.p.Streaming {
		idx = sh.cold % uint64(g.p.FootprintPages)
	} else {
		idx = (sh.cold * sh.perm) % uint64(g.p.FootprintPages)
	}
	sh.cold++
	vpn = sh.baseVPN + idx
	sh.insertHot(vpn)
	return vpn, false, false
}

// recency scores a hot-ring index by insertion order distance.
func recency(sh *shared, i int) int {
	d := sh.hotNext - 1 - i
	if d < 0 {
		d += len(sh.hot)
	}
	return len(sh.hot) - d
}

func (sh *shared) insertHot(vpn uint64) {
	if len(sh.hot) < cap(sh.hot) {
		sh.hot = append(sh.hot, vpn)
		sh.hotNext = len(sh.hot) % cap(sh.hot)
		return
	}
	sh.hot[sh.hotNext] = vpn
	sh.hotNext = (sh.hotNext + 1) % len(sh.hot)
}

// Next returns the next reference in the stream. The stream is infinite;
// callers stop at their instruction budget.
func (g *Generator) Next() Access {
	if g.blocksCut == 0 {
		// Start a new page visit.
		g.page, g.pageLow, g.pageShared = g.pickPage()
		g.blocksCut = g.p.SpatialBlocks
		if g.pageLow {
			g.blocksCut = 1
		}
		g.blockIdx = g.r.intn(64 - g.blocksCut + 1)
		g.repeats = g.p.BlockRepeats
		g.emitted++
		return g.emit(g.gapBase)
	}
	if g.repeats > 0 {
		// Near-term re-reference of the same block (absorbed by L1/L2).
		g.repeats--
		g.emitted++
		return g.emit(1)
	}
	// Advance to the next block of the burst.
	g.blocksCut--
	if g.blocksCut == 0 {
		return g.Next()
	}
	g.blockIdx++
	g.repeats = g.p.BlockRepeats
	g.emitted++
	return g.emit(g.gapBase)
}

func (g *Generator) emit(gap int) Access {
	addr := (g.page << 12) | uint64(g.blockIdx)<<6 | uint64(g.r.intn(64))&0x38
	write := g.r.float() < g.p.WriteFraction
	if g.pageShared {
		write = false // shared library text/ro-data
	}
	return Access{
		VAddr:     addr,
		Write:     write,
		Gap:       gap,
		LowReuse:  g.pageLow,
		Dependent: g.r.float() < g.p.DependentFrac,
		Shared:    g.pageShared,
	}
}

// Emitted returns the number of references produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// LowReusePages returns a snapshot of pages currently classified as
// low-reuse by the offline-profile oracle.
func (g *Generator) LowReusePages() map[uint64]bool {
	out := make(map[uint64]bool, len(g.sh.lowReuse))
	for k := range g.sh.lowReuse {
		out[k] = true
	}
	return out
}
