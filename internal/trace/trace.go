// Package trace generates synthetic memory-reference streams that stand in
// for the paper's SimPoint slices of SPEC CPU 2006 and PARSEC programs.
//
// The published results are driven by a handful of aggregate workload
// properties the paper calls out explicitly: misses per kilo-instruction
// (the programs were chosen as the 11 most memory-bound), memory footprint
// (multi-programmed mixes quadruple it), page reuse ratio (GemsFDTD and
// milc are low; streamcluster and facesim are high), spatial locality
// (blocks touched per page), and the fraction of singleton pages
// (swaptions and fluidanimate). Each Profile encodes those properties and
// the Generator emits a deterministic reference stream exhibiting them.
//
// Address streams use a working-set model: bursts of spatially adjacent
// blocks within a page, pages drawn either from a hot set (reuse) or from
// a cold sequence (first touches; sequential for streaming programs).
package trace

import (
	"fmt"
	"sort"
)

// Access is one memory reference in a trace.
type Access struct {
	VAddr uint64 // virtual byte address
	Write bool
	// Gap is the number of non-memory instructions retired before this
	// reference; it sets the program's memory intensity (MPKI).
	Gap int
	// LowReuse marks references to pages an offline profile would
	// classify as having fewer than the paper's 32-access threshold
	// (Section 5.4); the non-cacheable-page policy consumes it.
	LowReuse bool
	// Dependent marks a load on a serial dependence chain (pointer
	// chasing); its latency cannot be hidden by memory-level parallelism.
	Dependent bool
	// Shared marks a reference to an inter-process shared page (a shared
	// library or kernel page). Sections 3.5 and 6 discuss how the
	// tagless cache handles such pages: mark them non-cacheable, or
	// resolve them through a physical→cache alias table.
	Shared bool
}

// SingletonBase is the first virtual page of the unbounded region holding
// singleton (touch-once) pages. Real low-reuse pages are fresh addresses
// that never repeat, which is what makes them pollute page-granularity
// caches (the paper's over-fetching problem).
const SingletonBase = uint64(1) << 30

// SharedBase is the first virtual page of the inter-process shared region
// (mapped at the same virtual address in every process, like a prelinked
// shared library).
const SharedBase = uint64(1) << 32

// SharedRegionPages is the size of the shared region.
const SharedRegionPages = 256

// Profile describes one program's memory behaviour at full (paper) scale.
type Profile struct {
	Name           string
	MPKI           float64 // L2 misses per kilo-instruction
	FootprintPages int     // distinct 4KB pages touched over the run
	HotPages       int     // size of the actively reused working set
	HotFraction    float64 // probability a page visit targets the hot set
	SpatialBlocks  int     // distinct 64B blocks touched per page visit (1..64)
	BlockRepeats   int     // extra near-term re-references per block
	SingletonFrac  float64 // probability a cold page visit is a singleton
	WriteFraction  float64
	DependentFrac  float64 // fraction of references on serial dependence chains
	SharedFrac     float64 // probability a page visit targets the shared region
	Streaming      bool    // cold pages advance sequentially and re-stream
}

// Validate reports the first inconsistency in the profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile needs a name")
	case p.MPKI <= 0:
		return fmt.Errorf("trace: %s: MPKI must be positive", p.Name)
	case p.FootprintPages <= 0:
		return fmt.Errorf("trace: %s: footprint must be positive", p.Name)
	case p.HotPages <= 0 || p.HotPages > p.FootprintPages:
		return fmt.Errorf("trace: %s: hot pages %d out of range", p.Name, p.HotPages)
	case p.HotFraction < 0 || p.HotFraction > 1:
		return fmt.Errorf("trace: %s: hot fraction out of [0,1]", p.Name)
	case p.SpatialBlocks < 1 || p.SpatialBlocks > 64:
		return fmt.Errorf("trace: %s: spatial blocks %d out of [1,64]", p.Name, p.SpatialBlocks)
	case p.BlockRepeats < 0:
		return fmt.Errorf("trace: %s: negative block repeats", p.Name)
	case p.SingletonFrac < 0 || p.SingletonFrac > 1:
		return fmt.Errorf("trace: %s: singleton fraction out of [0,1]", p.Name)
	case p.WriteFraction < 0 || p.WriteFraction > 1:
		return fmt.Errorf("trace: %s: write fraction out of [0,1]", p.Name)
	case p.DependentFrac < 0 || p.DependentFrac > 1:
		return fmt.Errorf("trace: %s: dependent fraction out of [0,1]", p.Name)
	case p.SharedFrac < 0 || p.SharedFrac > 1:
		return fmt.Errorf("trace: %s: shared fraction out of [0,1]", p.Name)
	}
	return nil
}

// Scaled returns a copy with the footprint (and hot set) divided by
// 1<<shift, clamped to at least one page. Experiments shrink capacities
// and footprints together so capacity ratios match the paper while runs
// stay laptop-sized.
func (p Profile) Scaled(shift uint) Profile {
	s := p
	s.FootprintPages = max(1, p.FootprintPages>>shift)
	s.HotPages = max(1, min(p.HotPages>>shift, s.FootprintPages))
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// gamma is splitmix64's state increment (also reused as a seed scrambler
// and the cold-permutation base elsewhere in this package).
const gamma = 0x9e3779b97f4a7c15

// rng is a splitmix64 generator: tiny, fast, and deterministic across runs.
type rng struct{ s uint64 }

// mix is splitmix64's output permutation: the value produced by a draw
// whose post-increment state is z. Exposed separately so the fast-forward
// path can evaluate individual draws at an offset from the current state
// without stepping through the ones in between.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) next() uint64 {
	r.s += gamma
	return mix(r.s)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// shared holds state a thread group shares: the cold-page cursor, the
// singleton cursor and the hot working set. Single-threaded workloads own
// a private instance.
type shared struct {
	profile  Profile
	hot      []uint64 // ring of recently used pages
	hotNext  int
	cold     uint64 // cold-page visit counter
	perm     uint64 // multiplier for the cold permutation (coprime)
	singNext uint64 // next singleton page index
	baseVPN  uint64
	lowReuse map[uint64]bool // pages the offline profile marks low-reuse
}

// Generator emits one thread's reference stream.
type Generator struct {
	p      Profile
	sh     *shared
	r      rng
	thread int

	// Burst state: the current page visit.
	page       uint64
	pageLow    bool
	pageShared bool
	blockIdx   int
	blocksCut  int // blocks remaining in this visit
	repeats    int // repeats remaining for the current block
	gapBase    int

	emitted uint64
}

// NewGenerator builds a single-threaded generator for the profile. The
// seed varies the stream; identical seeds give identical streams.
func NewGenerator(p Profile, seed uint64) *Generator {
	gs, err := NewThreadGroup(p, 1, seed)
	if err != nil {
		panic(err)
	}
	return gs[0]
}

// NewThreadGroup builds n generators sharing one address space and hot
// working set, modelling a multi-threaded program (threads share the page
// table, so shared pages cause no aliasing — Section 3.5).
func NewThreadGroup(p Profile, n int, seed uint64) ([]*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: thread group needs at least one thread")
	}
	sh := &shared{
		profile:  p,
		hot:      make([]uint64, 0, p.HotPages),
		perm:     coprimeNear(uint64(p.FootprintPages)),
		baseVPN:  1 << 20, // keep VPNs away from zero for easier debugging
		lowReuse: make(map[uint64]bool),
	}
	out := make([]*Generator, n)
	for i := range out {
		out[i] = &Generator{
			p:       p,
			sh:      sh,
			r:       rng{s: seed*0x9e3779b97f4a7c15 + uint64(i)*0xdeadbeefcafef00d + 1},
			thread:  i,
			gapBase: gapFor(p),
		}
	}
	return out, nil
}

// gapFor derives the inter-block instruction gap from the target MPKI:
// one distinct block touch per 1000/MPKI instructions, of which the burst
// itself accounts for 1 + repeats references.
func gapFor(p Profile) int {
	per := 1000.0 / p.MPKI
	gap := int(per) - 1 - 2*p.BlockRepeats
	if gap < 0 {
		gap = 0
	}
	return gap
}

// coprimeNear returns an odd multiplier coprime with n, used to walk the
// footprint as a full permutation (every page touched once per wrap).
func coprimeNear(n uint64) uint64 {
	if n <= 2 {
		return 1
	}
	p := (0x9e3779b97f4a7c15 % n) | 1
	for gcd(p, n) != 1 {
		p += 2
		if p >= n {
			p = 1
		}
	}
	return p
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// pickPage chooses the next page to visit and classifies it.
func (g *Generator) pickPage() (vpn uint64, lowReuse, shared bool) {
	sh := g.sh
	// Inter-process shared region (read-mostly, skewed towards its head
	// like the hot functions of a shared library).
	if g.p.SharedFrac > 0 && g.r.float() < g.p.SharedFrac {
		a, b := g.r.intn(SharedRegionPages), g.r.intn(SharedRegionPages)
		if b < a {
			a = b
		}
		return SharedBase + uint64(a), false, true
	}
	if len(sh.hot) > 0 && g.r.float() < g.p.HotFraction {
		// Hot-set reuse. Favor recency: take the more recently inserted
		// of two uniform picks (a cheap Zipf-like skew).
		a, b := g.r.intn(len(sh.hot)), g.r.intn(len(sh.hot))
		idx := a
		if recency(sh, b) > recency(sh, a) {
			idx = b
		}
		return sh.hot[idx], false, false
	}
	// Singleton visits go to fresh, never-repeated pages: they are what
	// pollutes page-granularity caches (Section 3.5's over-fetching).
	if g.r.float() < g.p.SingletonFrac {
		vpn = SingletonBase + sh.singNext
		sh.singNext++
		sh.lowReuse[vpn] = true
		return vpn, true, false
	}
	// Cold page within the footprint: sequential for streaming programs,
	// a full pseudo-random permutation otherwise — either way one wrap
	// covers the footprint exactly once.
	var idx uint64
	if g.p.Streaming {
		idx = sh.cold % uint64(g.p.FootprintPages)
	} else {
		idx = (sh.cold * sh.perm) % uint64(g.p.FootprintPages)
	}
	sh.cold++
	vpn = sh.baseVPN + idx
	sh.insertHot(vpn)
	return vpn, false, false
}

// recency scores a hot-ring index by insertion order distance.
func recency(sh *shared, i int) int {
	d := sh.hotNext - 1 - i
	if d < 0 {
		d += len(sh.hot)
	}
	return len(sh.hot) - d
}

func (sh *shared) insertHot(vpn uint64) {
	if len(sh.hot) < cap(sh.hot) {
		sh.hot = append(sh.hot, vpn)
		sh.hotNext = len(sh.hot) % cap(sh.hot)
		return
	}
	sh.hot[sh.hotNext] = vpn
	sh.hotNext = (sh.hotNext + 1) % len(sh.hot)
}

// Next returns the next reference in the stream. The stream is infinite;
// callers stop at their instruction budget.
func (g *Generator) Next() Access {
	if g.blocksCut == 0 {
		// Start a new page visit.
		g.page, g.pageLow, g.pageShared = g.pickPage()
		g.blocksCut = g.p.SpatialBlocks
		if g.pageLow {
			g.blocksCut = 1
		}
		g.blockIdx = g.r.intn(64 - g.blocksCut + 1)
		g.repeats = g.p.BlockRepeats
		g.emitted++
		return g.emit(g.gapBase)
	}
	if g.repeats > 0 {
		// Near-term re-reference of the same block (absorbed by L1/L2).
		g.repeats--
		g.emitted++
		return g.emit(1)
	}
	// Advance to the next block of the burst.
	g.blocksCut--
	if g.blocksCut == 0 {
		return g.Next()
	}
	g.blockIdx++
	g.repeats = g.p.BlockRepeats
	g.emitted++
	return g.emit(g.gapBase)
}

func (g *Generator) emit(gap int) Access {
	addr := (g.page << 12) | uint64(g.blockIdx)<<6 | uint64(g.r.intn(64))&0x38
	write := g.r.float() < g.p.WriteFraction
	if g.pageShared {
		write = false // shared library text/ro-data
	}
	return Access{
		VAddr:     addr,
		Write:     write,
		Gap:       gap,
		LowReuse:  g.pageLow,
		Dependent: g.r.float() < g.p.DependentFrac,
		Shared:    g.pageShared,
	}
}

// Emitted returns the number of references produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Visit summarizes one whole page visit — the unit the functional
// fast-forward path consumes. It aggregates the Blocks·(1+BlockRepeats)
// references the per-reference path would emit one at a time, preserving
// everything warm cache/TLB state depends on: the page, the touched block
// range, per-block write bits and retired-instruction counts. The low
// address bits and dependence flags of individual references are dropped;
// caches are block-granular and the fast-forward path models no timing.
type Visit struct {
	Page       uint64 // virtual page number
	FirstBlock int    // first 64B block index touched (0..63)
	Blocks     int    // distinct blocks touched (1..64)
	Refs       uint64 // references the visit stands for
	Instr      uint64 // instructions retired across the visit (refs + gaps)
	LowReuse   bool
	Shared     bool
	// AnyWrite bit j is set when any reference to block FirstBlock+j is a
	// write (final L1 dirtiness); FirstWrite bit j when the block's first
	// touch is a write — the only reference of the block that reaches the
	// L2 on the per-reference path (repeats hit in L1).
	AnyWrite   uint64
	FirstWrite uint64
}

// AtVisitBoundary reports whether the next reference starts a new page
// visit. These are the only points where the per-reference (Next) and
// per-visit (NextVisit) streams may be interleaved.
func (g *Generator) AtVisitBoundary() bool {
	return g.blocksCut == 0 || (g.blocksCut == 1 && g.repeats == 0)
}

// NextVisit produces the next whole page visit, consuming exactly the
// random draws the equivalent run of Next calls would, so a stream can
// switch between per-reference and per-visit generation at any visit
// boundary and continue bit-identically. Calling it mid-visit panics.
func (g *Generator) NextVisit(v *Visit) {
	if !g.AtVisitBoundary() {
		panic("trace: NextVisit called mid-visit")
	}
	g.page, g.pageLow, g.pageShared = g.pickPage()
	blocks := g.p.SpatialBlocks
	if g.pageLow {
		blocks = 1
	}
	first := g.r.intn(64 - blocks + 1)
	reps := g.p.BlockRepeats
	perBlock := 1 + reps
	refs := blocks * perBlock

	v.Page = g.page
	v.FirstBlock = first
	v.Blocks = blocks
	v.Refs = uint64(refs)
	v.Instr = uint64(blocks) * uint64(g.gapBase+1+2*reps)
	v.LowReuse = g.pageLow
	v.Shared = g.pageShared
	v.AnyWrite, v.FirstWrite = 0, 0

	// Each reference consumes three draws in emit order: address bits,
	// write, dependent. Only the write draw is state-relevant (shared
	// pages force writes off after drawing), so pull the write bits out of
	// the stream positionally and skip the visit's draws in one step.
	if !g.pageShared && g.p.WriteFraction > 0 {
		d := uint64(gamma)
		s := g.r.s + 2*d
		// float64(u>>11)/2^53 < wf  ⟺  float64(u>>11) < wf·2^53: the
		// division is exact (u>>11 < 2^53) and scaling wf by a power of
		// two only shifts its exponent, so the hoisted threshold compare
		// is bit-identical to the per-reference form — and free of the
		// per-draw division.
		thr := g.p.WriteFraction * float64(1<<53)
		for j := 0; j < refs; j++ {
			if float64(mix(s)>>11) < thr {
				b := uint(j / perBlock)
				v.AnyWrite |= 1 << b
				if j%perBlock == 0 {
					v.FirstWrite |= 1 << b
				}
			}
			s += 3 * d
		}
	}
	g.r.s += uint64(3*refs) * gamma

	// Leave the generator exactly where the equivalent Next calls would:
	// parked on the visit's last block with no repeats left.
	g.blockIdx = first + blocks - 1
	g.blocksCut = 1
	g.repeats = 0
	g.emitted += uint64(refs)
}

// GenState is a Generator's serializable per-thread state. The profile,
// gap and cold-permutation constants are derived from construction inputs
// and are not part of the state.
type GenState struct {
	RNG        uint64
	Page       uint64
	PageLow    bool
	PageShared bool
	BlockIdx   int
	BlocksCut  int
	Repeats    int
	Emitted    uint64
}

// State snapshots the generator's per-thread state.
func (g *Generator) State() GenState {
	return GenState{
		RNG:        g.r.s,
		Page:       g.page,
		PageLow:    g.pageLow,
		PageShared: g.pageShared,
		BlockIdx:   g.blockIdx,
		BlocksCut:  g.blocksCut,
		Repeats:    g.repeats,
		Emitted:    g.emitted,
	}
}

// SetState restores a snapshot taken from an identically-constructed
// generator (same profile, thread index and seed).
func (g *Generator) SetState(st GenState) {
	g.r.s = st.RNG
	g.page = st.Page
	g.pageLow = st.PageLow
	g.pageShared = st.PageShared
	g.blockIdx = st.BlockIdx
	g.blocksCut = st.BlocksCut
	g.repeats = st.Repeats
	g.emitted = st.Emitted
}

// SharedState is a thread group's serializable shared state. LowReuse is
// kept sorted so snapshots of equal state are byte-identical.
type SharedState struct {
	Hot      []uint64
	HotNext  int
	Cold     uint64
	SingNext uint64
	LowReuse []uint64
}

// SharedState snapshots the state this generator's thread group shares.
func (g *Generator) SharedState() SharedState {
	sh := g.sh
	st := SharedState{
		Hot:      append([]uint64(nil), sh.hot...),
		HotNext:  sh.hotNext,
		Cold:     sh.cold,
		SingNext: sh.singNext,
		LowReuse: make([]uint64, 0, len(sh.lowReuse)),
	}
	for vpn := range sh.lowReuse {
		st.LowReuse = append(st.LowReuse, vpn)
	}
	sort.Slice(st.LowReuse, func(i, j int) bool { return st.LowReuse[i] < st.LowReuse[j] })
	return st
}

// SetSharedState restores the thread group's shared state. Restoring
// through any group member updates every thread of the group.
func (g *Generator) SetSharedState(st SharedState) {
	sh := g.sh
	sh.hot = make([]uint64, len(st.Hot), sh.profile.HotPages)
	copy(sh.hot, st.Hot)
	sh.hotNext = st.HotNext
	sh.cold = st.Cold
	sh.singNext = st.SingNext
	sh.lowReuse = make(map[uint64]bool, len(st.LowReuse))
	for _, vpn := range st.LowReuse {
		sh.lowReuse[vpn] = true
	}
}

// SharesGroup reports whether two generators belong to the same thread
// group (and therefore share one SharedState).
func (g *Generator) SharesGroup(o *Generator) bool { return g.sh == o.sh }

// LowReusePages returns a snapshot of pages currently classified as
// low-reuse by the offline-profile oracle.
func (g *Generator) LowReusePages() map[uint64]bool {
	out := make(map[uint64]bool, len(g.sh.lowReuse))
	for k := range g.sh.lowReuse {
		out[k] = true
	}
	return out
}
