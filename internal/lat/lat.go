// Package lat implements the cycle-accounting layer: per-reference
// latency attribution over a fixed component enum, with log2-bucketed
// latency histograms for tail metrics (p50/p90/p99/p999, max).
//
// The central contract is conservation: for every committed reference
// scope, the attributed component cycles must sum exactly to the
// measured stall cycles. The Recorder verifies the invariant on every
// commit and accumulates any violation into Breakdown.Residue, so a
// single mis-attributed cycle anywhere in the system or organization
// layer is visible as a nonzero residue rather than silently skewing
// the breakdown.
//
// All state is fixed-size value storage: observing, attributing and
// committing never allocate, so the accounting layer can stay enabled
// on the simulator's 0-allocs-per-reference step path.
package lat

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/bits"

	"taglessdram/internal/sim"
)

// Component names one source of memory-reference stall cycles. The enum
// follows the paper's latency taxonomy (Equations 1–5): translation
// costs, tag/victim probes, and the queue/service split on each DRAM
// device. String values are stable identifiers used as metrics-JSON
// keys; do not rename them.
type Component int

const (
	// CTLBLookup is the cTLB lookup itself. Under the paper's model the
	// lookup is folded into the TLB hierarchy's fixed pipeline latency
	// and contributes zero measured stall; the component exists so the
	// enum matches the paper's taxonomy and stays stable if a pipelined
	// cTLB model is added.
	CTLBLookup Component = iota
	// PTWalk is the page-table walk portion of a TLB miss.
	PTWalk
	// GIPTUpdate is the GIPT update on the tagless fill path.
	GIPTUpdate
	// VictimProbe is a victim/tag probe: the SRAM tag-array access, the
	// Alloy TAD probe, or the tagless alias-table lookup.
	VictimProbe
	// InPkgQueue is time spent waiting for in-package DRAM resources
	// (bank free, data-bus contention) — including waits on another
	// core's in-flight in-package fill.
	InPkgQueue
	// InPkgService is in-package DRAM service time: command timing
	// (ACT/PRE/CAS) plus data transfer.
	InPkgService
	// OffPkgQueue is off-package DRAM queueing time.
	OffPkgQueue
	// OffPkgService is off-package DRAM service time.
	OffPkgService
	// Writeback is dirty-victim write-back time: on the stall path only
	// when an eviction lands inline on the access path, otherwise
	// background bandwidth.
	Writeback
	// PTWalkGuest is the guest-dimension portion of a nested (2D) page
	// walk: references into the guest page table, translated through the
	// host dimension.
	PTWalkGuest
	// PTWalkHost is the host-dimension portion of a nested walk: the host
	// page-table references needed to translate each guest level plus the
	// final guest-physical address.
	PTWalkHost
	// TLBShootdown is TLB invalidation traffic: context-switch flushes and
	// cross-core shared-L2 invalidations, charged as background cycles.
	TLBShootdown

	// NumComponents sizes component-indexed arrays.
	NumComponents
)

var componentNames = [NumComponents]string{
	"ctlb_lookup",
	"pt_walk",
	"gipt_update",
	"victim_probe",
	"inpkg_queue",
	"inpkg_service",
	"offpkg_queue",
	"offpkg_service",
	"writeback",
	"ptwalk_guest",
	"ptwalk_host",
	"tlb_shootdown",
}

// String returns the stable metric-key identifier of the component.
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return "unknown"
	}
	return componentNames[c]
}

// NumBuckets is the log2 histogram size: bucket 0 holds zero-cycle
// samples and bucket b >= 1 holds samples in [2^(b-1), 2^b).
const NumBuckets = 65

// BucketBounds returns the inclusive [lo, hi] sample range of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = uint64(1) << uint(i-1)
	if i == 64 {
		return lo, math.MaxUint64
	}
	return lo, lo<<1 - 1
}

// QuantileOf estimates the p-th quantile (0 < p <= 100) of a bucket-count
// array, interpolating linearly within the selected bucket. It serves
// both full histograms and epoch-delta count arrays. p outside (0, 100]
// (including NaN) returns NaN; an empty array returns 0.
func QuantileOf(counts *[NumBuckets]uint64, p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p > 100 {
		return math.NaN()
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo, hi := BucketBounds(i)
			frac := float64(target-(cum-c)) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
	}
	return 0 // unreachable: cum reaches total >= target
}

// Hist is an allocation-free log2-bucketed latency histogram. The zero
// value is ready to use.
type Hist struct {
	counts [NumBuckets]uint64
	total  uint64
	sum    uint64
	max    uint64
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	h.counts[bits.Len64(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.total }

// Max returns the largest observed sample.
func (h *Hist) Max() uint64 { return h.max }

// Sum returns the exact sum of all samples.
func (h *Hist) Sum() uint64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile estimates the p-th quantile (0 < p <= 100) by linear
// interpolation within the selected log2 bucket, clamped to the exact
// observed maximum.
func (h *Hist) Quantile(p float64) float64 {
	q := QuantileOf(&h.counts, p)
	if q > float64(h.max) {
		return float64(h.max)
	}
	return q
}

// Counts returns a copy of the bucket-count array, for epoch snapshot
// diffing (value copy, no allocation).
func (h *Hist) Counts() [NumBuckets]uint64 { return h.counts }

// BucketRow is one non-empty histogram bucket for rendering.
type BucketRow struct {
	Lo, Hi uint64 // inclusive sample bounds of the bucket
	Count  uint64
}

// Rows returns the non-empty buckets in ascending order. Cold path:
// allocates the slice.
func (h *Hist) Rows() []BucketRow {
	out := make([]BucketRow, 0, 16)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		out = append(out, BucketRow{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// Reset discards all samples.
func (h *Hist) Reset() { *h = Hist{} }

// histWire is Hist's serialized image. The struct's own fields are
// unexported (fixed-size value storage for the alloc-free hot path), so
// gob needs this explicit form; it is what the persistent result cache
// stores for the latency tail metrics.
type histWire struct {
	Counts [NumBuckets]uint64
	Total  uint64
	Sum    uint64
	Max    uint64
}

// GobEncode implements gob.GobEncoder.
func (h *Hist) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(histWire{
		Counts: h.counts, Total: h.total, Sum: h.sum, Max: h.max,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (h *Hist) GobDecode(data []byte) error {
	var w histWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	h.counts, h.total, h.sum, h.max = w.Counts, w.Total, w.Sum, w.Max
	return nil
}

// Breakdown accumulates attributed cycles per component over many
// committed scopes, together with the conservation bookkeeping.
type Breakdown struct {
	// Cycles is the attributed cycle total per component.
	Cycles [NumComponents]uint64
	// Commits counts committed scopes.
	Commits uint64
	// Measured is the total measured stall cycles across commits.
	Measured uint64
	// Residue accumulates |attributed − measured| per commit. Zero means
	// the conservation invariant held exactly on every commit.
	Residue uint64
}

// Total returns the attributed cycle sum across components.
func (b *Breakdown) Total() uint64 {
	var sum uint64
	for _, c := range b.Cycles {
		sum += c
	}
	return sum
}

// Summary is the value snapshot of a Recorder's accumulated state,
// carried on system.Result.
type Summary struct {
	// L3 is the device-side access scope: one commit per L3 access,
	// measured against the organization's observed access latency.
	L3 Breakdown
	// Handler is the TLB-miss handler scope: one commit per miss,
	// measured against the handler's end-to-end latency.
	Handler Breakdown
	// Bg collects background (non-stall) traffic attribution — daemon
	// and victim write-backs. Trivially conserved per contribution.
	Bg Breakdown
	// L3Lat and HandlerLat are the latency distributions of the two
	// committed scopes.
	L3Lat, HandlerLat Hist
}

// Recorder is the per-machine accounting state: one open attribution
// scope (span) shared by the sequentially executed L3-access and
// TLB-miss-handler paths, plus the accumulated breakdowns and
// histograms. All methods are nil-safe and no-ops until Enable, so an
// un-enabled recorder costs the hot path one bool check.
type Recorder struct {
	enabled bool
	span    [NumComponents]uint64

	l3      Breakdown
	handler Breakdown
	bg      Breakdown

	l3Lat      Hist
	handlerLat Hist
}

// Enable turns accounting on (at the measurement boundary).
func (r *Recorder) Enable() {
	if r == nil {
		return
	}
	r.enabled = true
}

// Enabled reports whether the recorder is accumulating.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Reset clears all accumulated state and disables the recorder.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	*r = Recorder{}
}

// Begin opens a new attribution scope, discarding any abandoned span.
func (r *Recorder) Begin() {
	if r == nil || !r.enabled {
		return
	}
	r.span = [NumComponents]uint64{}
}

// Add attributes d cycles of the open scope to component c.
func (r *Recorder) Add(c Component, d sim.Tick) {
	if r == nil || !r.enabled {
		return
	}
	r.span[c] += uint64(d)
}

// AddBackground attributes d cycles of background (non-stall) traffic
// to component c, outside any scope. Background contributions are
// trivially conserved.
func (r *Recorder) AddBackground(c Component, d sim.Tick) {
	if r == nil || !r.enabled {
		return
	}
	r.bg.Cycles[c] += uint64(d)
	r.bg.Measured += uint64(d)
	r.bg.Commits++
}

// CommitL3 closes the open scope against one L3 access's measured
// latency.
func (r *Recorder) CommitL3(measured sim.Tick) {
	if r == nil || !r.enabled {
		return
	}
	r.commit(&r.l3, &r.l3Lat, uint64(measured))
}

// CommitHandler closes the open scope against one TLB miss handler's
// measured latency.
func (r *Recorder) CommitHandler(measured sim.Tick) {
	if r == nil || !r.enabled {
		return
	}
	r.commit(&r.handler, &r.handlerLat, uint64(measured))
}

func (r *Recorder) commit(b *Breakdown, h *Hist, measured uint64) {
	var sum uint64
	for i, c := range r.span {
		b.Cycles[i] += c
		sum += c
		r.span[i] = 0
	}
	b.Commits++
	b.Measured += measured
	if sum >= measured {
		b.Residue += sum - measured
	} else {
		b.Residue += measured - sum
	}
	h.Observe(measured)
}

// L3Counts returns a copy of the L3 latency histogram's bucket counts,
// for epoch snapshot diffing.
func (r *Recorder) L3Counts() [NumBuckets]uint64 {
	if r == nil {
		return [NumBuckets]uint64{}
	}
	return r.l3Lat.Counts()
}

// Summary snapshots the accumulated state.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	return Summary{
		L3:         r.l3,
		Handler:    r.handler,
		Bg:         r.bg,
		L3Lat:      r.l3Lat,
		HandlerLat: r.handlerLat,
	}
}
