package lat

import (
	"math"
	"testing"
)

func TestComponentStringsStable(t *testing.T) {
	// The strings are metrics-JSON keys; renaming them breaks consumers.
	want := []string{
		"ctlb_lookup", "pt_walk", "gipt_update", "victim_probe",
		"inpkg_queue", "inpkg_service", "offpkg_queue", "offpkg_service",
		"writeback", "ptwalk_guest", "ptwalk_host", "tlb_shootdown",
	}
	if int(NumComponents) != len(want) {
		t.Fatalf("NumComponents = %d, want %d", NumComponents, len(want))
	}
	for i, w := range want {
		if got := Component(i).String(); got != w {
			t.Errorf("Component(%d).String() = %q, want %q", i, got, w)
		}
	}
	if got := Component(-1).String(); got != "unknown" {
		t.Errorf("Component(-1).String() = %q", got)
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		i      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{64, 1 << 63, math.MaxUint64},
	}
	for _, c := range cases {
		lo, hi := BucketBounds(c.i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("BucketBounds(%d) = [%d,%d], want [%d,%d]", c.i, lo, hi, c.lo, c.hi)
		}
	}
}

func TestHistObserveAndQuantile(t *testing.T) {
	var h Hist
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.Sum() != 1000*1001/2 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if got, want := h.Mean(), 500.5; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	// Log2 buckets bound quantile error to 2x; interpolation keeps the
	// estimate well within a bucket of the true value.
	for _, c := range []struct{ p, truth float64 }{
		{50, 500}, {90, 900}, {99, 990},
	} {
		got := h.Quantile(c.p)
		if got < c.truth/2 || got > c.truth*2 {
			t.Errorf("Quantile(%v) = %v, not within 2x of %v", c.p, got, c.truth)
		}
	}
	// Quantiles are clamped to the exact max.
	if got := h.Quantile(100); got != 1000 {
		t.Errorf("Quantile(100) = %v, want clamped max 1000", got)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(101)) || !math.IsNaN(h.Quantile(math.NaN())) {
		t.Errorf("invalid p must return NaN")
	}
}

func TestHistZeroSamples(t *testing.T) {
	var h Hist
	if got := h.Quantile(50); got != 0 {
		t.Errorf("empty Quantile = %v", got)
	}
	h.Observe(0)
	h.Observe(0)
	if got := h.Quantile(99); got != 0 {
		t.Errorf("all-zero Quantile = %v", got)
	}
	rows := h.Rows()
	if len(rows) != 1 || rows[0].Lo != 0 || rows[0].Count != 2 {
		t.Errorf("Rows = %+v", rows)
	}
}

func TestQuantileOfMatchesHist(t *testing.T) {
	var h Hist
	for _, v := range []uint64{3, 7, 7, 64, 200, 200, 200, 1 << 20} {
		h.Observe(v)
	}
	counts := h.Counts()
	for _, p := range []float64{10, 50, 90, 99.9} {
		a, b := QuantileOf(&counts, p), h.Quantile(p)
		// Hist.Quantile only differs by max-clamping.
		if b > a {
			t.Errorf("p=%v: clamped %v > raw %v", p, b, a)
		}
	}
}

func TestRecorderConservation(t *testing.T) {
	var r Recorder
	r.Enable()

	r.Begin()
	r.Add(InPkgQueue, 10)
	r.Add(InPkgService, 32)
	r.CommitL3(42)

	r.Begin()
	r.Add(PTWalk, 100)
	r.Add(OffPkgQueue, 5)
	r.Add(OffPkgService, 200)
	r.Add(GIPTUpdate, 50)
	r.CommitHandler(355)

	r.AddBackground(Writeback, 400)

	s := r.Summary()
	if s.L3.Residue != 0 || s.Handler.Residue != 0 || s.Bg.Residue != 0 {
		t.Fatalf("residues nonzero: %d %d %d", s.L3.Residue, s.Handler.Residue, s.Bg.Residue)
	}
	if s.L3.Measured != 42 || s.L3.Commits != 1 || s.L3.Total() != 42 {
		t.Errorf("L3 breakdown: %+v", s.L3)
	}
	if s.Handler.Measured != 355 || s.Handler.Cycles[PTWalk] != 100 {
		t.Errorf("Handler breakdown: %+v", s.Handler)
	}
	if s.Bg.Cycles[Writeback] != 400 || s.Bg.Measured != 400 {
		t.Errorf("Bg breakdown: %+v", s.Bg)
	}
	if s.L3Lat.Count() != 1 || s.HandlerLat.Count() != 1 {
		t.Errorf("hist counts: %d %d", s.L3Lat.Count(), s.HandlerLat.Count())
	}

	// A mis-attributed commit shows up as residue.
	r.Begin()
	r.Add(InPkgService, 30)
	r.CommitL3(42)
	if got := r.Summary().L3.Residue; got != 12 {
		t.Errorf("Residue = %d, want 12", got)
	}
}

func TestRecorderSpanClearedBetweenScopes(t *testing.T) {
	var r Recorder
	r.Enable()
	r.Begin()
	r.Add(PTWalk, 7)
	// Scope abandoned (e.g. warmup boundary); next Begin must not leak it.
	r.Begin()
	r.Add(InPkgService, 5)
	r.CommitL3(5)
	if got := r.Summary().L3.Residue; got != 0 {
		t.Fatalf("leaked span: residue %d", got)
	}
	// Commit itself also clears the span.
	r.Add(OffPkgService, 9)
	r.CommitHandler(9)
	if s := r.Summary(); s.Handler.Residue != 0 || s.Handler.Cycles[InPkgService] != 0 {
		t.Fatalf("commit leaked span: %+v", s.Handler)
	}
}

func TestRecorderDisabledAndNil(t *testing.T) {
	var r Recorder // not enabled
	r.Begin()
	r.Add(PTWalk, 10)
	r.CommitHandler(10)
	r.AddBackground(Writeback, 10)
	if s := r.Summary(); s.Handler.Commits != 0 || s.Bg.Commits != 0 {
		t.Fatalf("disabled recorder accumulated: %+v", s)
	}

	var nr *Recorder
	nr.Begin()
	nr.Add(PTWalk, 1)
	nr.CommitL3(1)
	nr.CommitHandler(1)
	nr.AddBackground(Writeback, 1)
	nr.Enable()
	nr.Reset()
	if nr.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if s := nr.Summary(); s.L3.Commits != 0 {
		t.Fatalf("nil Summary: %+v", s)
	}
}

func TestRecorderResetDisables(t *testing.T) {
	var r Recorder
	r.Enable()
	r.Begin()
	r.Add(PTWalk, 3)
	r.CommitHandler(3)
	r.Reset()
	if r.Enabled() {
		t.Fatal("Reset left recorder enabled")
	}
	if s := r.Summary(); s.Handler.Commits != 0 {
		t.Fatalf("Reset kept state: %+v", s)
	}
}

func TestRecorderAllocFree(t *testing.T) {
	var r Recorder
	r.Enable()
	allocs := testing.AllocsPerRun(1000, func() {
		r.Begin()
		r.Add(InPkgQueue, 3)
		r.Add(InPkgService, 39)
		r.CommitL3(42)
		r.Begin()
		r.Add(PTWalk, 90)
		r.CommitHandler(90)
		r.AddBackground(Writeback, 10)
	})
	if allocs != 0 {
		t.Fatalf("recorder allocates: %v allocs/op", allocs)
	}
}
