package obs

import (
	"testing"

	"taglessdram/internal/core"
)

// snapshot builds a cumulative snapshot scaled by k, so successive calls
// with k=1,2,3... produce identical per-epoch deltas.
func snapshot(k uint64) Cumulative {
	return Cumulative{
		Cycle:             1000 * k,
		Refs:              100 * k,
		Instructions:      500 * k,
		L3Accesses:        40 * k,
		L3Hits:            30 * k,
		TLBLookups:        100 * k,
		TLBMisses:         5 * k,
		InPkgBytes:        4096 * k,
		OffPkgBytes:       1024 * k,
		InPkgRowAccesses:  20 * k,
		InPkgRowHits:      10 * k,
		OffPkgRowAccesses: 8 * k,
		OffPkgRowHits:     2 * k,
		Ctrl:              core.Stats{ColdFills: 3 * k, Evictions: k},
		Gauges:            Gauges{FreeBlocks: int(k), FreeQueueLen: int(2 * k)},
	}
}

func TestSamplerTick(t *testing.T) {
	s := NewSampler(3, 8)
	ticks := []bool{false, false, true, false, false, true}
	for i, want := range ticks {
		if got := s.Tick(); got != want {
			t.Fatalf("tick %d = %v, want %v", i, got, want)
		}
	}
}

func TestSamplerDeltas(t *testing.T) {
	s := NewSampler(100, 8)
	s.Rebase(snapshot(1))
	s.Record(snapshot(2))
	s.Record(snapshot(3))

	es := s.Epochs()
	if len(es) != 2 {
		t.Fatalf("epochs = %d, want 2", len(es))
	}
	for i, e := range es {
		if e.Index != i {
			t.Errorf("epoch %d index = %d", i, e.Index)
		}
		if e.Refs != 100 || e.Instructions != 500 || e.Cycles != 1000 {
			t.Errorf("epoch %d deltas = refs %d instr %d cycles %d, want 100/500/1000",
				i, e.Refs, e.Instructions, e.Cycles)
		}
		if e.IPC != 0.5 {
			t.Errorf("epoch %d IPC = %v, want 0.5", i, e.IPC)
		}
		if e.L3HitRate != 0.75 {
			t.Errorf("epoch %d L3 hit rate = %v, want 0.75", i, e.L3HitRate)
		}
		if e.TLBMissRate != 0.05 {
			t.Errorf("epoch %d TLB miss rate = %v, want 0.05", i, e.TLBMissRate)
		}
		if e.InPkgRowHitRate != 0.5 || e.OffPkgRowHitRate != 0.25 {
			t.Errorf("epoch %d row hit rates = %v/%v, want 0.5/0.25",
				i, e.InPkgRowHitRate, e.OffPkgRowHitRate)
		}
		if e.Ctrl.ColdFills != 3 || e.Ctrl.Evictions != 1 {
			t.Errorf("epoch %d ctrl delta = %+v", i, e.Ctrl)
		}
	}
	// Gauges are instantaneous, not diffed.
	if es[0].FreeBlocks != 2 || es[1].FreeBlocks != 3 {
		t.Errorf("gauge free blocks = %d,%d, want 2,3", es[0].FreeBlocks, es[1].FreeBlocks)
	}
	if es[1].EndCycle != 3000 {
		t.Errorf("end cycle = %d, want 3000", es[1].EndCycle)
	}
}

func TestSamplerRebaseDiscardsPartialEpoch(t *testing.T) {
	s := NewSampler(3, 8)
	s.Tick()
	s.Tick() // two references counted pre-measurement
	s.Rebase(snapshot(1))
	if s.Tick() || s.Tick() {
		t.Fatal("epoch closed early: Rebase should reset the partial count")
	}
	if !s.Tick() {
		t.Fatal("epoch should close after a full post-Rebase interval")
	}
}

func TestSamplerRingWrap(t *testing.T) {
	s := NewSampler(1, 4)
	s.Rebase(snapshot(0))
	for k := uint64(1); k <= 10; k++ {
		s.Record(snapshot(k))
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if s.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", s.Dropped())
	}
	es := s.Epochs()
	// Oldest retained epoch is capture #6 (0-based), newest #9, and
	// original indices survive the wrap.
	for i, e := range es {
		if e.Index != 6+i {
			t.Errorf("epoch %d index = %d, want %d", i, e.Index, 6+i)
		}
	}
}

func TestSamplerEmpty(t *testing.T) {
	s := NewSampler(10, 0)
	if s.Capacity() != DefaultCapacity {
		t.Fatalf("capacity = %d, want default %d", s.Capacity(), DefaultCapacity)
	}
	if s.Epochs() != nil || s.Len() != 0 || s.Dropped() != 0 {
		t.Fatal("empty sampler should report no epochs")
	}
}

func TestSamplerRecordAllocFree(t *testing.T) {
	s := NewSampler(1, 16)
	s.Rebase(snapshot(0))
	k := uint64(1)
	allocs := testing.AllocsPerRun(100, func() {
		s.Tick()
		s.Record(snapshot(k))
		k++
	})
	if allocs != 0 {
		t.Fatalf("Tick+Record allocates %.1f per epoch, want 0", allocs)
	}
}

func TestNewSamplerPanicsOnZeroEpoch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler(0, ...) should panic")
		}
	}()
	NewSampler(0, 4)
}

func TestStatsSub(t *testing.T) {
	a := core.Stats{Walks: 10, ColdFills: 5, Evictions: 3, Writebacks: 2}
	b := core.Stats{Walks: 4, ColdFills: 1, Evictions: 3}
	d := a.Sub(b)
	if d.Walks != 6 || d.ColdFills != 4 || d.Evictions != 0 || d.Writebacks != 2 {
		t.Fatalf("Sub = %+v", d)
	}
}
