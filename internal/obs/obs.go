// Package obs provides the epoch-resolved observability layer: a
// fixed-capacity, allocation-free Sampler the machine drives every N
// measured trace references. End-of-run aggregates (system.Result) hide
// phase behavior — warm-up vs. steady state, free-queue pressure bursts,
// a frequency-managed cache's fill ramp — so the sampler captures a time
// series of per-epoch deltas (IPC, L3 hit rate, cTLB miss rate, DRAM
// traffic, controller counters) plus instantaneous gauges (free-block
// count, free-queue depth).
//
// The sampler is passive: it only reads counters the simulation already
// maintains, so attaching one never perturbs simulated behavior, and a
// nil sampler costs the hot path a single pointer check.
package obs

import (
	"taglessdram/internal/core"
	"taglessdram/internal/lat"
)

// DefaultCapacity is the epoch ring size when the caller does not choose
// one: enough for a full default run (3M measured instructions at a
// 2000-reference epoch) without wrapping.
const DefaultCapacity = 4096

// Gauges are instantaneous values polled at each epoch boundary, as
// opposed to the counter deltas the sampler computes itself. They come
// from the organization layer (org.GaugeSource); designs without
// pressure state report zeros.
type Gauges struct {
	// FreeBlocks is the number of immediately allocatable cache blocks
	// (the tagless controller's free-list depth).
	FreeBlocks int `json:"free_blocks"`
	// FreeQueueLen is the number of blocks awaiting the eviction daemon.
	FreeQueueLen int `json:"free_queue_len"`
}

// Cumulative is one snapshot of the monotonically growing counter set
// the sampler diffs to produce per-epoch deltas. The machine assembles
// it from its measurement counters, the DRAM devices and the
// organization's Collect output; all counter fields must be cumulative
// over the measured window (gauges are carried through as-is).
type Cumulative struct {
	Cycle        uint64 // leading active core's measured cycles
	Refs         uint64 // trace references processed
	Instructions uint64 // instructions retired (measured, all cores)

	L3Accesses, L3Hits    uint64
	TLBLookups, TLBMisses uint64

	InPkgBytes, OffPkgBytes          uint64
	InPkgRowAccesses, InPkgRowHits   uint64
	OffPkgRowAccesses, OffPkgRowHits uint64

	// L3LatBuckets is the L3 latency histogram's cumulative bucket counts
	// (value array — snapshotting stays allocation-free); the sampler
	// diffs consecutive snapshots to compute per-epoch tail quantiles.
	L3LatBuckets [lat.NumBuckets]uint64
	// InPkgBusBusy/OffPkgBusBusy are cumulative data-bus busy ticks summed
	// over each device's channels; the channel counts turn the deltas into
	// per-epoch utilizations.
	InPkgBusBusy, OffPkgBusBusy   uint64
	InPkgChannels, OffPkgChannels int

	Ctrl   core.Stats // controller counters (tagless design; zero otherwise)
	Gauges Gauges
}

// Epoch is one sampling interval: counter fields are deltas over the
// epoch, rate fields are computed from those deltas, and gauge fields
// are the instantaneous values at the epoch boundary.
type Epoch struct {
	// Index numbers epochs from zero in capture order; when the ring
	// wraps, retained epochs keep their original indices.
	Index int `json:"epoch"`
	// EndCycle is the measured cycle at which the epoch closed.
	EndCycle uint64 `json:"end_cycle"`

	Refs         uint64  `json:"refs"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`

	L3Accesses uint64  `json:"l3_accesses"`
	L3Hits     uint64  `json:"l3_hits"`
	L3HitRate  float64 `json:"l3_hit_rate"`

	TLBLookups  uint64  `json:"ctlb_lookups"`
	TLBMisses   uint64  `json:"ctlb_misses"`
	TLBMissRate float64 `json:"ctlb_miss_rate"`

	FreeBlocks   int `json:"free_blocks"`
	FreeQueueLen int `json:"free_queue_len"`

	InPkgBytes       uint64  `json:"inpkg_bytes"`
	OffPkgBytes      uint64  `json:"offpkg_bytes"`
	InPkgRowHitRate  float64 `json:"inpkg_row_hit_rate"`
	OffPkgRowHitRate float64 `json:"offpkg_row_hit_rate"`

	// L3LatP99 is the epoch's 99th-percentile L3 access latency in cycles
	// (from the epoch's own histogram-bucket deltas, not the cumulative
	// distribution).
	L3LatP99 float64 `json:"l3_lat_p99"`
	// InPkgBusUtil/OffPkgBusUtil are the epoch's data-bus utilizations:
	// busy-tick delta over epoch cycles, averaged across channels.
	InPkgBusUtil  float64 `json:"inpkg_bus_util"`
	OffPkgBusUtil float64 `json:"offpkg_bus_util"`

	// Ctrl carries the tagless controller's per-epoch counter deltas
	// (zero for other designs).
	Ctrl core.Stats `json:"ctrl"`
}

// Sampler accumulates epoch snapshots into a fixed-capacity ring. All
// storage is allocated at construction: Tick and Record perform no
// allocation, so an attached sampler keeps the simulator's steady-state
// step path allocation-free. When more epochs are captured than the ring
// holds, the oldest are overwritten (Dropped reports how many).
type Sampler struct {
	epochRefs uint64
	pending   uint64

	ring     []Epoch
	head     int // next write slot
	n        int // valid entries
	captured int // epochs ever captured

	prev Cumulative

	// scratch holds the current epoch's histogram-bucket deltas during
	// Record (fixed array — no per-epoch allocation).
	scratch [lat.NumBuckets]uint64
}

// NewSampler returns a sampler that closes an epoch every epochRefs
// measured references, retaining at most capacity epochs (<= 0 selects
// DefaultCapacity). epochRefs must be positive.
func NewSampler(epochRefs uint64, capacity int) *Sampler {
	if epochRefs == 0 {
		panic("obs: epoch length must be positive")
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Sampler{epochRefs: epochRefs, ring: make([]Epoch, capacity)}
}

// EpochRefs returns the epoch length in measured references.
func (s *Sampler) EpochRefs() uint64 { return s.epochRefs }

// Capacity returns the ring size.
func (s *Sampler) Capacity() int { return len(s.ring) }

// Tick counts one measured reference and reports whether it closed an
// epoch; the caller then snapshots its counters and calls Record.
func (s *Sampler) Tick() bool {
	s.pending++
	if s.pending < s.epochRefs {
		return false
	}
	s.pending = 0
	return true
}

// Rebase sets the cumulative baseline the next epoch is diffed against
// and discards any partially counted epoch. The machine calls it at the
// warmup/measure boundary so epoch zero covers measured behavior only.
func (s *Sampler) Rebase(c Cumulative) {
	s.prev = c
	s.pending = 0
}

// Record closes one epoch: the delta between c and the previous
// cumulative snapshot is written into the ring (overwriting the oldest
// epoch when full) and c becomes the new baseline.
func (s *Sampler) Record(c Cumulative) {
	e := &s.ring[s.head]
	p := &s.prev
	e.Index = s.captured
	e.EndCycle = c.Cycle
	e.Refs = c.Refs - p.Refs
	e.Instructions = c.Instructions - p.Instructions
	e.Cycles = c.Cycle - p.Cycle
	e.IPC = ratio(e.Instructions, e.Cycles)
	e.L3Accesses = c.L3Accesses - p.L3Accesses
	e.L3Hits = c.L3Hits - p.L3Hits
	e.L3HitRate = ratio(e.L3Hits, e.L3Accesses)
	e.TLBLookups = c.TLBLookups - p.TLBLookups
	e.TLBMisses = c.TLBMisses - p.TLBMisses
	e.TLBMissRate = ratio(e.TLBMisses, e.TLBLookups)
	e.FreeBlocks = c.Gauges.FreeBlocks
	e.FreeQueueLen = c.Gauges.FreeQueueLen
	e.InPkgBytes = c.InPkgBytes - p.InPkgBytes
	e.OffPkgBytes = c.OffPkgBytes - p.OffPkgBytes
	e.InPkgRowHitRate = ratio(c.InPkgRowHits-p.InPkgRowHits, c.InPkgRowAccesses-p.InPkgRowAccesses)
	e.OffPkgRowHitRate = ratio(c.OffPkgRowHits-p.OffPkgRowHits, c.OffPkgRowAccesses-p.OffPkgRowAccesses)
	for i := range s.scratch {
		s.scratch[i] = c.L3LatBuckets[i] - p.L3LatBuckets[i]
	}
	e.L3LatP99 = lat.QuantileOf(&s.scratch, 99)
	e.InPkgBusUtil = busUtil(c.InPkgBusBusy-p.InPkgBusBusy, e.Cycles, c.InPkgChannels)
	e.OffPkgBusUtil = busUtil(c.OffPkgBusBusy-p.OffPkgBusBusy, e.Cycles, c.OffPkgChannels)
	e.Ctrl = c.Ctrl.Sub(p.Ctrl)

	s.head++
	if s.head == len(s.ring) {
		s.head = 0
	}
	if s.n < len(s.ring) {
		s.n++
	}
	s.captured++
	s.prev = c
}

// Len returns the number of epochs currently retained.
func (s *Sampler) Len() int { return s.n }

// Dropped returns how many epochs were overwritten by ring wrap-around.
func (s *Sampler) Dropped() int { return s.captured - s.n }

// Epochs returns the retained epochs oldest-first as a fresh slice
// (nil when nothing was captured). It is a cold-path call: the copy
// allocates, Record never does.
func (s *Sampler) Epochs() []Epoch {
	if s.n == 0 {
		return nil
	}
	out := make([]Epoch, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.n; i++ {
		out[i] = s.ring[(start+i)%len(s.ring)]
	}
	return out
}

// ratio returns num/den as a float64, or 0 when den is zero.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// busUtil converts a busy-tick delta into an average per-channel
// utilization over the epoch, clamped to 1 (an epoch boundary can land
// mid-transfer, crediting busy ticks slightly past the epoch's cycles).
func busUtil(busy, cycles uint64, channels int) float64 {
	if cycles == 0 || channels <= 0 {
		return 0
	}
	u := float64(busy) / (float64(cycles) * float64(channels))
	if u > 1 {
		return 1
	}
	return u
}
