// Package cpu models one out-of-order core as a trace-driven engine: it
// retires non-memory instructions at the issue width, overlaps independent
// long-latency memory accesses through an MSHR window (the memory-level
// parallelism limit), and serializes work that blocks the pipeline — TLB
// miss handling and DRAM-cache page fills, matching the paper's AMAT
// accounting (Equations 1 and 4 both charge the TLB miss penalty serially).
package cpu

import "taglessdram/internal/sim"

// Core is one simulated core's retirement clock and MSHR window.
type Core struct {
	ID         int
	IssueWidth int
	MSHRs      int

	now        sim.Tick
	pendInstr  int        // sub-cycle instruction accumulator
	window     []sim.Tick // completion times of in-flight overlapped misses
	issueShift uint       // log2(IssueWidth) when it is a power of two
	issueMask  int        // IssueWidth-1 when it is a power of two
	issuePow2  bool

	Instructions uint64
	MemOps       uint64
	StallCycles  uint64 // cycles lost waiting on a full MSHR window
	SerialCycles uint64 // cycles lost to serializing events (TLB handling, fills)
}

// New builds a core.
func New(id, issueWidth, mshrs int) *Core {
	if issueWidth <= 0 || mshrs <= 0 {
		panic("cpu: issue width and MSHRs must be positive")
	}
	c := &Core{
		ID:         id,
		IssueWidth: issueWidth,
		MSHRs:      mshrs,
		window:     make([]sim.Tick, 0, mshrs),
	}
	if issueWidth&(issueWidth-1) == 0 {
		c.issuePow2 = true
		c.issueMask = issueWidth - 1
		for 1<<c.issueShift != issueWidth {
			c.issueShift++
		}
	}
	return c
}

// Now returns the core's current cycle.
func (c *Core) Now() sim.Tick { return c.now }

// Retire advances the clock by n instructions' worth of issue slots.
func (c *Core) Retire(n int) {
	if n <= 0 {
		return
	}
	c.Instructions += uint64(n)
	p := c.pendInstr + n
	if c.issuePow2 {
		c.now += sim.Tick(p >> c.issueShift)
		c.pendInstr = p & c.issueMask
	} else {
		c.now += sim.Tick(p / c.IssueWidth)
		c.pendInstr = p % c.IssueWidth
	}
}

// ReserveMSHR blocks until an MSHR is available and returns the issue time
// for the next overlapped memory access. retireOldest removes the
// earliest-completing in-flight access if the window is full.
func (c *Core) ReserveMSHR() sim.Tick {
	if len(c.window) >= c.MSHRs {
		// Stall until the earliest outstanding access completes.
		mi := 0
		for i, t := range c.window {
			if t < c.window[mi] {
				mi = i
			}
		}
		if c.window[mi] > c.now {
			c.StallCycles += uint64(c.window[mi] - c.now)
			c.now = c.window[mi]
		}
		c.window[mi] = c.window[len(c.window)-1]
		c.window = c.window[:len(c.window)-1]
	}
	// Drop any already-completed accesses opportunistically.
	for i := 0; i < len(c.window); {
		if c.window[i] <= c.now {
			c.window[i] = c.window[len(c.window)-1]
			c.window = c.window[:len(c.window)-1]
		} else {
			i++
		}
	}
	return c.now
}

// CompleteMSHR records an overlapped access issued by ReserveMSHR.
func (c *Core) CompleteMSHR(done sim.Tick) {
	c.MemOps++
	if done > c.now {
		c.window = append(c.window, done)
	}
}

// Serialize blocks the core until the given cycle (TLB miss handlers and
// page fills are not overlapped).
func (c *Core) Serialize(done sim.Tick) {
	c.MemOps++
	if done > c.now {
		c.SerialCycles += uint64(done - c.now)
		c.now = done
	}
}

// Block stalls the core until the given cycle, accounting the time as
// serialized but not counting a memory operation (TLB miss handling).
func (c *Core) Block(until sim.Tick) {
	if until > c.now {
		c.SerialCycles += uint64(until - c.now)
		c.now = until
	}
}

// Wait advances the clock without counting a memory operation.
func (c *Core) Wait(until sim.Tick) {
	if until > c.now {
		c.now = until
	}
}

// Drain waits for all in-flight accesses, ending the measured run.
func (c *Core) Drain() {
	for _, t := range c.window {
		if t > c.now {
			c.now = t
		}
	}
	c.window = c.window[:0]
}

// InFlight returns the number of outstanding overlapped accesses.
func (c *Core) InFlight() int { return len(c.window) }

// IPC returns retired instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.now == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.now)
}

// State is a core's serializable state. IssueWidth and MSHRs are
// construction parameters and are not part of the state.
type State struct {
	Now          sim.Tick
	PendInstr    int
	Window       []sim.Tick
	Instructions uint64
	MemOps       uint64
	StallCycles  uint64
	SerialCycles uint64
}

// State snapshots the core.
func (c *Core) State() State {
	return State{
		Now:          c.now,
		PendInstr:    c.pendInstr,
		Window:       append([]sim.Tick(nil), c.window...),
		Instructions: c.Instructions,
		MemOps:       c.MemOps,
		StallCycles:  c.StallCycles,
		SerialCycles: c.SerialCycles,
	}
}

// SetState restores a snapshot taken from an identically-configured core.
func (c *Core) SetState(st State) {
	c.now = st.Now
	c.pendInstr = st.PendInstr
	c.window = append(c.window[:0], st.Window...)
	c.Instructions = st.Instructions
	c.MemOps = st.MemOps
	c.StallCycles = st.StallCycles
	c.SerialCycles = st.SerialCycles
}
