package cpu

import (
	"testing"
	"testing/quick"

	"taglessdram/internal/sim"
)

func TestRetireAdvancesAtIssueWidth(t *testing.T) {
	c := New(0, 4, 8)
	c.Retire(8)
	if c.Now() != 2 {
		t.Fatalf("now = %d, want 2", c.Now())
	}
	// Sub-cycle remainder accumulates.
	c.Retire(3)
	if c.Now() != 2 {
		t.Fatalf("now = %d, want 2 (3 instr pending)", c.Now())
	}
	c.Retire(1)
	if c.Now() != 3 {
		t.Fatalf("now = %d, want 3", c.Now())
	}
	if c.Instructions != 12 {
		t.Fatalf("instructions = %d", c.Instructions)
	}
	c.Retire(0)
	c.Retire(-5)
	if c.Instructions != 12 {
		t.Fatal("non-positive retire changed state")
	}
}

func TestMSHRWindowOverlaps(t *testing.T) {
	c := New(0, 4, 4)
	// Four accesses complete at 100; all overlap, no stall.
	for i := 0; i < 4; i++ {
		at := c.ReserveMSHR()
		if at != 0 {
			t.Fatalf("issue %d at %d, want 0", i, at)
		}
		c.CompleteMSHR(100)
	}
	if c.StallCycles != 0 {
		t.Fatalf("stalls = %d, want 0", c.StallCycles)
	}
	// Fifth access: window full → stall until 100.
	at := c.ReserveMSHR()
	if at != 100 {
		t.Fatalf("issue 5 at %d, want 100", at)
	}
	if c.StallCycles != 100 {
		t.Fatalf("stalls = %d, want 100", c.StallCycles)
	}
}

func TestReserveDropsCompleted(t *testing.T) {
	c := New(0, 4, 2)
	c.CompleteMSHR(10)
	c.CompleteMSHR(20)
	c.Retire(400) // now = 100, both done
	c.ReserveMSHR()
	if c.InFlight() != 0 {
		t.Fatalf("in flight = %d, want 0 (completed dropped)", c.InFlight())
	}
	if c.StallCycles != 0 {
		t.Fatal("stalled despite completed accesses")
	}
}

func TestSerialize(t *testing.T) {
	c := New(0, 4, 8)
	c.Serialize(500)
	if c.Now() != 500 || c.SerialCycles != 500 {
		t.Fatalf("now=%d serial=%d", c.Now(), c.SerialCycles)
	}
	// Serializing to the past is a no-op on the clock.
	c.Serialize(100)
	if c.Now() != 500 {
		t.Fatal("clock moved backwards")
	}
	if c.MemOps != 2 {
		t.Fatalf("memops = %d", c.MemOps)
	}
}

func TestWaitDoesNotCountMemOp(t *testing.T) {
	c := New(0, 4, 8)
	c.Wait(50)
	if c.Now() != 50 || c.MemOps != 0 {
		t.Fatalf("now=%d memops=%d", c.Now(), c.MemOps)
	}
}

func TestDrain(t *testing.T) {
	c := New(0, 4, 8)
	c.CompleteMSHR(100)
	c.CompleteMSHR(300)
	c.Drain()
	if c.Now() != 300 || c.InFlight() != 0 {
		t.Fatalf("after drain: now=%d inflight=%d", c.Now(), c.InFlight())
	}
}

func TestCompleteInPastNotQueued(t *testing.T) {
	c := New(0, 4, 8)
	c.Retire(400) // now = 100
	c.CompleteMSHR(50)
	if c.InFlight() != 0 {
		t.Fatal("past completion queued")
	}
}

func TestIPC(t *testing.T) {
	c := New(0, 4, 8)
	if c.IPC() != 0 {
		t.Fatal("IPC before any cycle should be 0")
	}
	c.Retire(400) // 100 cycles
	if c.IPC() != 4 {
		t.Fatalf("IPC = %v, want 4", c.IPC())
	}
	c.Serialize(200) // stall to 200: IPC halves
	if c.IPC() != 2 {
		t.Fatalf("IPC = %v, want 2", c.IPC())
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 0, 8) },
		func() { New(0, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: the clock never moves backwards under any operation sequence,
// and in-flight never exceeds the MSHR count.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(0, 4, 4)
		prev := sim.Tick(0)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				c.Retire(int(op % 7))
			case 1:
				at := c.ReserveMSHR()
				c.CompleteMSHR(at + sim.Tick(op%300))
			case 2:
				c.Serialize(c.Now() + sim.Tick(op%100))
			case 3:
				c.Drain()
			}
			if c.Now() < prev {
				return false
			}
			if c.InFlight() > 4 {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more MSHRs never hurt — total runtime with a larger window is
// never longer for the same access pattern.
func TestMoreMSHRsNeverSlower(t *testing.T) {
	run := func(mshrs int, lats []uint8) sim.Tick {
		c := New(0, 4, mshrs)
		for _, l := range lats {
			c.Retire(10)
			at := c.ReserveMSHR()
			c.CompleteMSHR(at + sim.Tick(l) + 1)
		}
		c.Drain()
		return c.Now()
	}
	f := func(lats []uint8) bool {
		return run(8, lats) <= run(2, lats)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
