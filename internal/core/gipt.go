// Package core implements the paper's contribution: the tagless DRAM cache.
//
// The three structures of Section 3.2 live here:
//
//   - the global inverted page table (GIPT), indexed by cache address,
//     holding the cache→physical mapping, the PTE pointer, and the per-core
//     TLB residence bit vector;
//   - the free queue, a FIFO of blocks awaiting asynchronous eviction; and
//   - the Controller, whose HandleTLBMiss method is the paper's cTLB miss
//     handler (Figure 4): walk, allocate, fill, GIPT update, PTE rewrite.
//
// The controller is time-aware (all operations take and return sim.Tick)
// but device-agnostic: actual DRAM traffic goes through the MemOps
// interface so the controller can be unit-tested against a fake and wired
// to the cycle-level devices by the system package.
package core

import (
	"fmt"

	"taglessdram/internal/mmu"
	"taglessdram/internal/sim"
)

// BlockState tracks the lifecycle of one page-sized cache block.
type BlockState uint8

// Block lifecycle states.
const (
	// Free: available for allocation by the header pointer.
	Free BlockState = iota
	// Filling: a cache fill is in flight (the PTE's PU bit is set).
	Filling
	// Cached: holds a valid page.
	Cached
	// PendingEvict: enqueued on the free queue, awaiting the eviction
	// daemon; a victim hit can still rescue it back to Cached.
	PendingEvict
)

// String implements fmt.Stringer.
func (s BlockState) String() string {
	switch s {
	case Free:
		return "free"
	case Filling:
		return "filling"
	case Cached:
		return "cached"
	case PendingEvict:
		return "pending-evict"
	default:
		return fmt.Sprintf("BlockState(%d)", uint8(s))
	}
}

// GIPTEntry is one row of the global inverted page table (82 bits in
// hardware: 36-bit PPN, 42-bit PTE pointer, 4-bit residence vector).
type GIPTEntry struct {
	PPN       uint64   // off-package physical page backing this block
	PTE       *mmu.PTE // pointer to the owning page-table entry
	VPN       uint64   // virtual page (for TLB shootdown bookkeeping)
	Residence uint64   // per-core TLB residence bits
	State     BlockState
	Dirty     bool
	// Sharers lists every PTE mapping this block when the Section 6
	// alias table is enabled (Sharers[0] == PTE); eviction rewrites all
	// of them, as a Linux-style reverse mapping would.
	Sharers []*mmu.PTE
	// FillDone is when the in-flight fill completes (State == Filling),
	// so alias attachers from other processes can wait on it.
	FillDone sim.Tick
}

// GIPT is the global inverted page table: one entry per cache block,
// indexed by cache address.
type GIPT struct {
	entries []GIPTEntry
}

// NewGIPT returns a GIPT covering `blocks` page-sized cache blocks.
func NewGIPT(blocks int) *GIPT {
	if blocks <= 0 {
		panic("core: GIPT needs at least one block")
	}
	return &GIPT{entries: make([]GIPTEntry, blocks)}
}

// Blocks returns the number of cache blocks covered.
func (g *GIPT) Blocks() int { return len(g.entries) }

// Entry returns a pointer to the entry for cache address ca.
func (g *GIPT) Entry(ca uint64) *GIPTEntry {
	return &g.entries[ca]
}

// Insert establishes the cache→physical mapping for a fill in flight.
func (g *GIPT) Insert(ca uint64, ppn uint64, pte *mmu.PTE, vpn uint64) {
	e := &g.entries[ca]
	if e.State != Free {
		panic(fmt.Sprintf("core: GIPT insert into %v block CA-%d", e.State, ca))
	}
	*e = GIPTEntry{PPN: ppn, PTE: pte, VPN: vpn, State: Filling}
}

// Invalidate clears the entry after an eviction completes.
func (g *GIPT) Invalidate(ca uint64) {
	g.entries[ca] = GIPTEntry{State: Free}
}

// SetResidence marks or clears core's TLB residence bit for ca.
func (g *GIPT) SetResidence(ca uint64, coreID int, resident bool) {
	if resident {
		g.entries[ca].Residence |= 1 << uint(coreID)
	} else {
		g.entries[ca].Residence &^= 1 << uint(coreID)
	}
}

// Resident reports whether any core's TLB still references ca.
func (g *GIPT) Resident(ca uint64) bool { return g.entries[ca].Residence != 0 }

// CachedCount returns the number of blocks holding valid pages (Cached or
// PendingEvict — a pending block still holds data until the daemon runs).
func (g *GIPT) CachedCount() int {
	n := 0
	for i := range g.entries {
		if s := g.entries[i].State; s == Cached || s == PendingEvict {
			n++
		}
	}
	return n
}

// FreeCount returns the number of Free blocks.
func (g *GIPT) FreeCount() int {
	n := 0
	for i := range g.entries {
		if g.entries[i].State == Free {
			n++
		}
	}
	return n
}

// FreeQueue is the FIFO of cache addresses awaiting asynchronous eviction.
// The zero value is an empty queue.
type FreeQueue struct {
	q    []uint64
	head int
}

// Len returns the number of queued blocks.
func (f *FreeQueue) Len() int { return len(f.q) - f.head }

// Enqueue appends a cache address.
func (f *FreeQueue) Enqueue(ca uint64) { f.q = append(f.q, ca) }

// Dequeue removes and returns the oldest cache address.
func (f *FreeQueue) Dequeue() (uint64, bool) {
	if f.Len() == 0 {
		return 0, false
	}
	ca := f.q[f.head]
	f.head++
	// Reclaim space once the consumed prefix dominates.
	if f.head > 64 && f.head*2 > len(f.q) {
		f.q = append(f.q[:0], f.q[f.head:]...)
		f.head = 0
	}
	return ca, true
}
