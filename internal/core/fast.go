package core

import (
	"fmt"

	"taglessdram/internal/mmu"
	"taglessdram/internal/sim"
	"taglessdram/internal/tlb"
)

// Quiesced reports whether the controller has no in-flight work: no
// pending fills, no eviction daemon queue, no evictions underway. Running
// the kernel dry (kernel.Run(0)) establishes this. Fast-forward and
// checkpointing both require it — neither can represent in-flight state.
func (c *Controller) Quiesced() bool {
	return len(c.pendings) == 0 && c.inFlight == 0 && c.freeQ.Len() == 0
}

// SetStats overwrites the controller's counters; the fast-forward path
// uses the Stats/SetStats pair to roll back counter increments a
// functional span made, keeping measured-window statistics clean.
func (c *Controller) SetStats(s Stats) { c.stats = s }

// FastTLBMiss is the functional cTLB miss handler the fast-forward path
// uses: the same state transitions as HandleTLBMiss (walk, victim hit,
// alias attach, allocate+fill, replenish) with no timing, no kernel events
// and no device traffic. Fills and evictions complete immediately, so the
// PU bit and the Filling/PendingEvict windows never become observable —
// the documented approximation of the fast path. `at` stamps LRU recency
// (the caller's core clock). The controller must be quiesced.
func (c *Controller) FastTLBMiss(at sim.Tick, coreID int, pt *mmu.PageTable, vpn uint64) (tlb.Entry, error) {
	c.stats.Walks++
	var pte *mmu.PTE
	var err error
	if c.cfg.RegionPages > 1 {
		// Superpage mode: 4KB mappings (non-cacheable, shared) take
		// precedence; everything else maps at region granularity.
		if p, ok := pt.Lookup(vpn); ok && !p.Super {
			pte = p
		} else {
			pte, err = pt.WalkRegion(vpn, uint64(c.cfg.RegionPages))
		}
	} else {
		pte, err = pt.Walk(vpn)
	}
	if err != nil {
		return tlb.Entry{}, err
	}

	if pte.NC {
		c.stats.NonCacheable++
		return tlb.Entry{Frame: pte.Frame, NC: true}, nil
	}

	if pte.PU {
		return tlb.Entry{}, fmt.Errorf("core: PU bit set during fast-forward (controller not quiesced)")
	}

	if pte.VC {
		ca := pte.Frame
		e := c.gipt.Entry(ca)
		if e.State == PendingEvict {
			e.State = Cached
			c.allocQ.Enqueue(ca)
			c.stats.Rescues++
		}
		c.gipt.SetResidence(ca, coreID, true)
		c.stats.VictimHits++
		return tlb.Entry{Frame: ca}, nil
	}

	if c.aliases != nil {
		if ca, ok := c.aliases[pte.Frame]; ok {
			if c.fastAttachAlias(ca, pte, coreID) {
				return tlb.Entry{Frame: ca}, nil
			}
		}
	}

	// Cacheable but not cached: allocate at the header pointer and fill,
	// completing the PTE rewrite inline.
	ppn := pte.Frame
	ca, ok := c.popFree()
	if !ok {
		ca, err = c.fastEvictInline(at)
		if err != nil {
			return tlb.Entry{}, err
		}
	}
	c.gipt.Insert(ca, ppn, pte, vpn&^uint64(c.cfg.RegionPages-1))
	c.lastTouch[ca] = at
	c.allocQ.Enqueue(ca)
	if c.aliases != nil {
		c.aliases[ppn] = ca
		c.gipt.Entry(ca).Sharers = []*mmu.PTE{pte}
	}
	pte.Frame = ca
	pte.VC = true
	e := c.gipt.Entry(ca)
	e.State = Cached
	e.FillDone = at
	c.gipt.SetResidence(ca, coreID, true)
	c.stats.ColdFills++

	if !c.cfg.SynchronousEviction {
		c.fastReplenish(at)
	}
	return tlb.Entry{Frame: ca}, nil
}

// fastAttachAlias is attachAlias without the Filling case (impossible on
// the quiesced fast path) or timing.
func (c *Controller) fastAttachAlias(ca uint64, pte *mmu.PTE, coreID int) bool {
	e := c.gipt.Entry(ca)
	switch e.State {
	case Cached:
		pte.Frame = ca
		pte.VC = true
	case PendingEvict:
		e.State = Cached
		c.allocQ.Enqueue(ca)
		c.stats.Rescues++
		pte.Frame = ca
		pte.VC = true
	default:
		return false // stale table entry; fall through to a fill
	}
	already := false
	for _, p := range e.Sharers {
		if p == pte {
			already = true
			break
		}
	}
	if !already {
		e.Sharers = append(e.Sharers, pte)
	}
	c.gipt.SetResidence(ca, coreID, true)
	c.stats.AliasHits++
	return true
}

// fastFinishEvict evicts victim ca immediately: write-back accounting,
// PTE restore, GIPT invalidate, free-list push and the EvictHook (whose
// on-die invalidations are state the fast path must keep faithful).
func (c *Controller) fastFinishEvict(at sim.Tick, ca uint64) {
	e := c.gipt.Entry(ca)
	if e.Dirty {
		c.stats.Writebacks++
	}
	c.inFlight++ // finishEviction decrements
	c.finishEviction(at, ca, e.PPN, e.PTE, e.Dirty)
}

// fastEvictInline is evictInline for the fast path.
func (c *Controller) fastEvictInline(at sim.Tick) (uint64, error) {
	ca, ok := c.selectVictim()
	if !ok {
		return 0, fmt.Errorf("core: no evictable block (all %d resident or filling)", c.cfg.Blocks)
	}
	c.stats.SyncEvictions++
	c.fastFinishEvict(at, ca)
	ca2, ok := c.popFree()
	if !ok {
		panic("core: inline eviction freed no block")
	}
	return ca2, nil
}

// fastReplenish is the eviction daemon collapsed to its fixed point: top
// the free pool up to α with immediate evictions. On the quiesced fast
// path FreeBlocks alone is the pool (no daemon queue, nothing in flight).
func (c *Controller) fastReplenish(at sim.Tick) {
	for c.FreeBlocks() < c.cfg.Alpha {
		ca, ok := c.selectVictim()
		if !ok {
			return
		}
		c.fastFinishEvict(at, ca)
	}
}
