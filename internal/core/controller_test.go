package core

import (
	"testing"
	"testing/quick"

	"taglessdram/internal/config"
	"taglessdram/internal/mmu"
	"taglessdram/internal/sim"
	"taglessdram/internal/tlb"
)

// fakeMem charges fixed latencies and counts operations.
type fakeMem struct {
	fillLat, evictLat, giptLat sim.Tick
	fills, evicts, gipts       int
}

func (m *fakeMem) FillPage(at sim.Tick, ppn, ca, offset uint64, pages int) sim.Tick {
	m.fills++
	return at + m.fillLat
}

func (m *fakeMem) EvictPage(at sim.Tick, ca, ppn uint64, pages int) sim.Tick {
	m.evicts++
	return at + m.evictLat
}

func (m *fakeMem) GIPTUpdate(at sim.Tick) sim.Tick {
	m.gipts++
	return at + m.giptLat
}

type rig struct {
	c   *Controller
	m   *fakeMem
	k   *sim.Kernel
	pt  *mmu.PageTable
	cfg Config
}

func newRig(t *testing.T, blocks int, mutate func(*Config)) *rig {
	t.Helper()
	cfg := Config{Blocks: blocks, Alpha: 1, Policy: config.FIFO, WalkCycles: 40}
	if mutate != nil {
		mutate(&cfg)
	}
	m := &fakeMem{fillLat: 500, evictLat: 700, giptLat: 100}
	k := sim.NewKernel()
	c := NewController(cfg, m, k)
	pt := mmu.NewPageTable(0, mmu.NewFrameAllocator(1<<20))
	return &rig{c: c, m: m, k: k, pt: pt, cfg: cfg}
}

// miss drives one TLB miss at the given time and settles all events.
func (r *rig) miss(t *testing.T, at sim.Tick, vpn uint64) (tlb.Entry, sim.Tick, MissKind) {
	t.Helper()
	r.k.Advance(at)
	e, done, kind, err := r.c.HandleTLBMiss(at, 0, r.pt, vpn, 0)
	if err != nil {
		t.Fatalf("HandleTLBMiss(%d): %v", vpn, err)
	}
	return e, done, kind
}

// settle runs all pending events.
func (r *rig) settle() { r.k.Run(0) }

func TestColdFillPath(t *testing.T) {
	r := newRig(t, 16, nil)
	e, done, kind := r.miss(t, 0, 7)
	if kind != MissColdFill {
		t.Fatalf("kind = %v, want cold fill", kind)
	}
	// Walk(40) + fill(500) + GIPT update(100).
	if done != 640 {
		t.Fatalf("done = %d, want 640", done)
	}
	if e.NC || e.Frame != 0 {
		t.Fatalf("entry = %+v, want CA-0", e)
	}
	if r.m.fills != 1 || r.m.gipts != 1 {
		t.Fatalf("mem ops = %d fills, %d gipt updates", r.m.fills, r.m.gipts)
	}
	r.settle()
	// After the fill event, the PTE points into the cache.
	pte, _ := r.pt.Lookup(7)
	if !pte.VC || pte.Frame != 0 || pte.PU {
		t.Fatalf("PTE = %+v, want VC, CA-0, PU clear", pte)
	}
	if r.c.GIPT().Entry(0).State != Cached {
		t.Fatalf("block state = %v", r.c.GIPT().Entry(0).State)
	}
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVictimHitZeroPenalty(t *testing.T) {
	r := newRig(t, 16, nil)
	r.miss(t, 0, 7)
	r.settle()
	// Second miss to the same page: in-package victim hit — the handler
	// costs only the walk (Table 1, row 3).
	_, done, kind := r.miss(t, 10000, 7)
	if kind != MissVictimHit {
		t.Fatalf("kind = %v, want victim hit", kind)
	}
	if done != 10000+40 {
		t.Fatalf("done = %d, want walk-only 10040", done)
	}
	if r.m.fills != 1 {
		t.Fatalf("fills = %d, want 1 (no duplicate fill)", r.m.fills)
	}
}

func TestNonCacheablePath(t *testing.T) {
	r := newRig(t, 16, nil)
	if err := r.pt.SetNonCacheable(9); err != nil {
		t.Fatal(err)
	}
	e, done, kind := r.miss(t, 0, 9)
	if kind != MissNonCacheable || !e.NC {
		t.Fatalf("kind = %v, entry = %+v", kind, e)
	}
	if done != 40 {
		t.Fatalf("done = %d, want walk-only", done)
	}
	if r.m.fills != 0 {
		t.Fatal("non-cacheable page was filled")
	}
	if r.c.Stats().NonCacheable != 1 {
		t.Fatalf("stats = %+v", r.c.Stats())
	}
}

func TestPendingWaitBusyWaits(t *testing.T) {
	r := newRig(t, 16, nil)
	// Core 0 starts a fill at t=0 (completes at 640). Core 1 misses the
	// same page at t=100 and must busy-wait, not duplicate the fill.
	r.k.Advance(0)
	_, done0, _, err := r.c.HandleTLBMiss(0, 0, r.pt, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.k.Advance(100)
	e1, done1, kind, err := r.c.HandleTLBMiss(100, 1, r.pt, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MissPendingWait {
		t.Fatalf("kind = %v, want pending wait", kind)
	}
	if done1 != done0 {
		t.Fatalf("waiter done = %d, want fill completion %d", done1, done0)
	}
	if e1.Frame != 0 {
		t.Fatalf("waiter got CA-%d, want CA-0", e1.Frame)
	}
	if r.m.fills != 1 {
		t.Fatalf("fills = %d, want 1", r.m.fills)
	}
	r.settle()
	// Both cores resident.
	if got := r.c.GIPT().Entry(0).Residence; got != 0b11 {
		t.Fatalf("residence = %b, want 11", got)
	}
}

func TestFigure5WalkThrough(t *testing.T) {
	// Reproduce the paper's running example: fill VA-3, evict the oldest
	// non-resident block, then victim-hit VA-2.
	r := newRig(t, 4, nil)
	// Pre-populate VA-0..VA-2 as cached (CA-0..CA-2), like Figure 5(a).
	for v := uint64(0); v <= 2; v++ {
		r.miss(t, sim.Tick(v*1000), v)
		r.settle()
	}
	// Drop TLB residence of VA-0..2 (they are outside the TLB in the
	// example's initial state).
	for ca := uint64(0); ca <= 2; ca++ {
		r.c.NoteTLBEviction(0, tlb.Entry{Frame: ca})
	}
	if r.c.FreeBlocks() != 1 {
		t.Fatalf("free blocks = %d, want 1 (α)", r.c.FreeBlocks())
	}

	// Step 1: access VA-3 → off-package miss, fill into CA-3 (the free
	// block), and the oldest block (CA-0) goes to the free queue.
	e, _, kind := r.miss(t, 10000, 3)
	if kind != MissColdFill || e.Frame != 3 {
		t.Fatalf("step1 = %v CA-%d, want cold fill CA-3", kind, e.Frame)
	}
	r.settle()

	// Step 2: the eviction daemon freed CA-0 and restored its PTE to PA.
	pte0, _ := r.pt.Lookup(0)
	if pte0.VC {
		t.Fatalf("VA-0 PTE still cached: %+v", pte0)
	}
	if r.c.GIPT().Entry(0).State != Free {
		t.Fatalf("CA-0 state = %v, want free", r.c.GIPT().Entry(0).State)
	}
	if r.c.FreeBlocks() != 1 {
		t.Fatalf("free blocks after eviction = %d, want 1", r.c.FreeBlocks())
	}

	// Step 3: access VA-2 → in-package victim hit at CA-2.
	e2, _, kind2 := r.miss(t, 20000, 2)
	if kind2 != MissVictimHit || e2.Frame != 2 {
		t.Fatalf("step3 = %v CA-%d, want victim hit CA-2", kind2, e2.Frame)
	}
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	r := newRig(t, 2, nil)
	r.miss(t, 0, 0)
	r.settle()
	r.c.Touch(700, 0, true) // dirty the page
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 0})
	// Fill a second page: consumes the last free block, so CA-0 is
	// selected for eviction and must be written back.
	r.miss(t, 1000, 1)
	r.settle()
	if r.m.evicts != 1 {
		t.Fatalf("evict ops = %d, want 1 (dirty write-back)", r.m.evicts)
	}
	if r.c.Stats().Writebacks != 1 {
		t.Fatalf("stats = %+v", r.c.Stats())
	}
}

func TestCleanEvictionSkipsWriteback(t *testing.T) {
	r := newRig(t, 2, nil)
	r.miss(t, 0, 0)
	r.settle()
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 0})
	r.miss(t, 1000, 1)
	r.settle()
	if r.m.evicts != 0 {
		t.Fatalf("clean eviction wrote back: %d ops", r.m.evicts)
	}
	if r.c.Stats().Evictions != 1 {
		t.Fatalf("stats = %+v", r.c.Stats())
	}
}

func TestResidentBlocksNotEvicted(t *testing.T) {
	r := newRig(t, 3, nil)
	r.miss(t, 0, 0)
	r.miss(t, 1000, 1)
	r.settle()
	// VA-0 stays TLB-resident; VA-1's residence is cleared.
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 1})
	// Fill VA-2: takes the last free block; the victim must be CA-1
	// (CA-0 is resident) even though CA-0 is FIFO-older.
	r.miss(t, 2000, 2)
	r.settle()
	if r.c.GIPT().Entry(0).State != Cached {
		t.Fatalf("resident CA-0 evicted; state = %v", r.c.GIPT().Entry(0).State)
	}
	if r.c.GIPT().Entry(1).State != Free {
		t.Fatalf("CA-1 state = %v, want free", r.c.GIPT().Entry(1).State)
	}
}

func TestVictimHitRescuesPendingEvict(t *testing.T) {
	r := newRig(t, 3, nil)
	r.miss(t, 0, 0)
	r.miss(t, 1000, 1)
	r.settle()
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 0})
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 1})
	// Fill VA-2 at t=2000 but do NOT settle: CA-0 is now pending-evict.
	r.k.Advance(2000)
	_, _, _, err := r.c.HandleTLBMiss(2000, 0, r.pt, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.c.GIPT().Entry(0).State != PendingEvict {
		t.Fatalf("CA-0 state = %v, want pending-evict", r.c.GIPT().Entry(0).State)
	}
	// Victim hit VA-0 before the daemon runs: rescue.
	e, _, kind, err := r.c.HandleTLBMiss(2001, 0, r.pt, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MissVictimHit || e.Frame != 0 {
		t.Fatalf("rescue = %v CA-%d", kind, e.Frame)
	}
	if r.c.GIPT().Entry(0).State != Cached {
		t.Fatalf("rescued state = %v", r.c.GIPT().Entry(0).State)
	}
	r.settle()
	// The daemon must have skipped the rescued block and picked CA-1.
	if r.c.GIPT().Entry(0).State != Cached {
		t.Fatal("rescued block was evicted anyway")
	}
	if r.c.Stats().Rescues != 1 {
		t.Fatalf("stats = %+v", r.c.Stats())
	}
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShootdownWhenAllResident(t *testing.T) {
	r := newRig(t, 3, nil)
	var shot []uint64
	r.c.ShootdownHook = func(ca, vpn uint64, residence uint64) {
		shot = append(shot, vpn)
	}
	r.miss(t, 0, 0)
	r.settle()
	r.miss(t, 1000, 1)
	r.settle()
	// Third fill consumes the last free block while every cached block is
	// TLB-resident: replenishing α forces a shootdown of the oldest page.
	r.miss(t, 2000, 2)
	r.settle()
	if len(shot) != 1 || shot[0] != 0 {
		t.Fatalf("shootdowns = %v, want exactly [0]", shot)
	}
	if r.c.Stats().Shootdowns != 1 {
		t.Fatalf("stats = %+v", r.c.Stats())
	}
}

func TestSynchronousEvictionAblation(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.SynchronousEviction = true })
	r.miss(t, 0, 0)
	r.settle()
	r.miss(t, 10000, 1)
	r.settle()
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 0})
	r.c.Touch(10000, 0, true) // dirty CA-0
	// Third fill: no free blocks, and no daemon pre-freed any — the
	// eviction (700) lands on the access path before the fill.
	_, done, kind := r.miss(t, 20000, 2)
	if kind != MissColdFill {
		t.Fatalf("kind = %v", kind)
	}
	// walk(40) + evict(700) + fill(500) + gipt(100) = 21340.
	if done != 21340 {
		t.Fatalf("done = %d, want 21340 (eviction on access path)", done)
	}
	if r.c.Stats().SyncEvictions != 1 {
		t.Fatalf("stats = %+v", r.c.Stats())
	}
}

func TestCachedGIPTAblation(t *testing.T) {
	r := newRig(t, 16, func(c *Config) { c.CachedGIPT = true; c.CachedGIPTCycles = 6 })
	_, done, _ := r.miss(t, 0, 0)
	// walk(40) + fill(500) + cached GIPT(6).
	if done != 546 {
		t.Fatalf("done = %d, want 546", done)
	}
	if r.m.gipts != 0 {
		t.Fatal("cached-GIPT ablation still charged full GIPT writes")
	}
}

func TestLRUPolicySelectsColdest(t *testing.T) {
	r := newRig(t, 3, func(c *Config) { c.Policy = config.LRU })
	r.miss(t, 0, 0)
	r.miss(t, 1000, 1)
	r.settle()
	for ca := uint64(0); ca <= 1; ca++ {
		r.c.NoteTLBEviction(0, tlb.Entry{Frame: ca})
	}
	// Touch CA-0 recently: LRU must evict CA-1 even though CA-0 is older
	// in FIFO order.
	r.c.Touch(5000, 0, false)
	r.miss(t, 6000, 2)
	r.settle()
	if r.c.GIPT().Entry(0).State != Cached {
		t.Fatal("LRU evicted the recently touched block")
	}
	if r.c.GIPT().Entry(1).State != Free {
		t.Fatalf("CA-1 state = %v, want free", r.c.GIPT().Entry(1).State)
	}
}

func TestCLOCKSecondChance(t *testing.T) {
	r := newRig(t, 3, func(c *Config) { c.Policy = config.CLOCK })
	r.miss(t, 0, 0)
	r.miss(t, 1000, 1)
	r.settle()
	for ca := uint64(0); ca <= 1; ca++ {
		r.c.NoteTLBEviction(0, tlb.Entry{Frame: ca})
	}
	// Touch CA-0: its reference bit grants a second chance, so the
	// FIFO-older CA-0 survives and CA-1 is evicted.
	r.c.Touch(5000, 0, false)
	r.miss(t, 6000, 2)
	r.settle()
	if r.c.GIPT().Entry(0).State != Cached {
		t.Fatal("CLOCK evicted the referenced block despite its second chance")
	}
	if r.c.GIPT().Entry(1).State != Free {
		t.Fatalf("CA-1 state = %v, want free", r.c.GIPT().Entry(1).State)
	}
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCLOCKEvictsAfterBitCleared(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.Policy = config.CLOCK })
	r.miss(t, 0, 0)
	r.settle()
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 0})
	r.c.Touch(100, 0, false) // ref bit set
	// Only CA-0 is evictable: CLOCK must clear its bit and still evict it
	// on the second pass rather than spin forever.
	r.miss(t, 1000, 1)
	r.settle()
	if r.c.GIPT().Entry(0).State != Free {
		t.Fatalf("CA-0 state = %v, want free after second pass", r.c.GIPT().Entry(0).State)
	}
}

func TestEvictHookFires(t *testing.T) {
	r := newRig(t, 2, nil)
	var hooks int
	r.c.EvictHook = func(at sim.Tick, ca, ppn uint64, dirty bool) { hooks++ }
	r.miss(t, 0, 0)
	r.settle()
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 0})
	r.miss(t, 1000, 1)
	r.settle()
	if hooks != 1 {
		t.Fatalf("evict hook fired %d times, want 1", hooks)
	}
}

func TestNoteTLBEvictionIgnoresNC(t *testing.T) {
	r := newRig(t, 4, nil)
	r.miss(t, 0, 0)
	r.settle()
	// An NC entry whose frame collides with CA-0 must not clear CA-0's
	// residence.
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 0, NC: true})
	if !r.c.GIPT().Resident(0) {
		t.Fatal("NC eviction cleared residence of a cached block")
	}
}

func TestAlphaMaintainsFreePool(t *testing.T) {
	r := newRig(t, 8, func(c *Config) { c.Alpha = 3 })
	for v := uint64(0); v < 8; v++ {
		r.miss(t, sim.Tick(v*2000), v)
		r.settle()
		r.c.NoteTLBEviction(0, tlb.Entry{Frame: r.mustCA(t, v)})
	}
	r.settle()
	if free := r.c.FreeBlocks(); free < 3 {
		t.Fatalf("free blocks = %d, want ≥ α=3", free)
	}
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// mustCA returns the cache address a VPN currently maps to.
func (r *rig) mustCA(t *testing.T, vpn uint64) uint64 {
	t.Helper()
	pte, ok := r.pt.Lookup(vpn)
	if !ok || !pte.VC {
		t.Fatalf("VPN %d not cached: %+v", vpn, pte)
	}
	return pte.Frame
}

func TestConstructorPanics(t *testing.T) {
	m := &fakeMem{}
	k := sim.NewKernel()
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero blocks", func() { NewController(Config{Blocks: 0, WalkCycles: 1}, m, k) }},
		{"alpha too big", func() { NewController(Config{Blocks: 2, Alpha: 3, WalkCycles: 1}, m, k) }},
		{"zero walk", func() { NewController(Config{Blocks: 2, Alpha: 1}, m, k) }},
		{"nil mem", func() { NewController(Config{Blocks: 2, Alpha: 1, WalkCycles: 1}, nil, k) }},
		{"nil kernel", func() { NewController(Config{Blocks: 2, Alpha: 1, WalkCycles: 1}, m, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestMissKindStrings(t *testing.T) {
	for k, want := range map[MissKind]string{
		MissNonCacheable: "non-cacheable",
		MissVictimHit:    "victim-hit",
		MissColdFill:     "cold-fill",
		MissPendingWait:  "pending-wait",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestBlockStateStrings(t *testing.T) {
	for s, want := range map[BlockState]string{
		Free: "free", Filling: "filling", Cached: "cached", PendingEvict: "pending-evict",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", uint8(s), s.String())
		}
	}
}

// Property: under an arbitrary stream of misses and TLB evictions, the
// controller's invariants hold and every handler result is consistent
// (a non-NC entry's frame is a valid block index).
func TestControllerInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		r := newRigQuick()
		for i, op := range ops {
			vpn := uint64(op % 32)
			at := sim.Tick(i * 1500)
			r.k.Advance(at)
			switch op % 4 {
			case 0, 1: // miss
				e, done, _, err := r.c.HandleTLBMiss(at, int(op%2), r.pt, vpn, 0)
				if err != nil {
					return false
				}
				if done < at {
					return false
				}
				if !e.NC && e.Frame >= uint64(r.cfg.Blocks) {
					return false
				}
			case 2: // drop residence (TLB eviction)
				if pte, ok := r.pt.Lookup(vpn); ok && pte.VC {
					r.c.NoteTLBEviction(int(op%2), tlb.Entry{Frame: pte.Frame})
				}
			case 3: // touch with write
				if pte, ok := r.pt.Lookup(vpn); ok && pte.VC {
					r.c.Touch(at, pte.Frame, true)
				}
			}
		}
		r.k.Run(0)
		return r.c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func newRigQuick() *rig {
	cfg := Config{Blocks: 8, Alpha: 2, Policy: config.FIFO, WalkCycles: 40}
	m := &fakeMem{fillLat: 500, evictLat: 700, giptLat: 100}
	k := sim.NewKernel()
	return &rig{c: NewController(cfg, m, k), m: m, k: k,
		pt: mmu.NewPageTable(0, mmu.NewFrameAllocator(1<<20)), cfg: cfg}
}

// Property: fills never exceed distinct cacheable pages touched (the PU bit
// prevents duplicate fills), as long as nothing is evicted.
func TestNoDuplicateFillsProperty(t *testing.T) {
	f := func(vpns []uint8) bool {
		r := newRigQuick()
		distinct := map[uint64]bool{}
		for i, v := range vpns {
			vpn := uint64(v % 6) // ≤ 6 pages in an 8-block cache: no evictions
			at := sim.Tick(i * 100)
			r.k.Advance(at)
			if _, _, _, err := r.c.HandleTLBMiss(at, 0, r.pt, vpn, 0); err != nil {
				return false
			}
			distinct[vpn] = true
		}
		r.k.Run(0)
		return r.m.fills == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGIPTBasics(t *testing.T) {
	g := NewGIPT(4)
	if g.Blocks() != 4 || g.FreeCount() != 4 || g.CachedCount() != 0 {
		t.Fatalf("fresh GIPT: %d blocks, %d free", g.Blocks(), g.FreeCount())
	}
	pte := &mmu.PTE{Frame: 9}
	g.Insert(2, 9, pte, 5)
	if g.Entry(2).State != Filling || g.Entry(2).PPN != 9 {
		t.Fatalf("entry = %+v", g.Entry(2))
	}
	g.SetResidence(2, 3, true)
	if !g.Resident(2) {
		t.Fatal("residence bit lost")
	}
	g.SetResidence(2, 3, false)
	if g.Resident(2) {
		t.Fatal("residence bit stuck")
	}
	g.Entry(2).State = Cached
	if g.CachedCount() != 1 {
		t.Fatalf("cached = %d", g.CachedCount())
	}
	g.Invalidate(2)
	if g.FreeCount() != 4 {
		t.Fatal("invalidate did not free")
	}
}

func TestGIPTDoubleInsertPanics(t *testing.T) {
	g := NewGIPT(2)
	g.Insert(0, 1, &mmu.PTE{}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double insert")
		}
	}()
	g.Insert(0, 2, &mmu.PTE{}, 1)
}

func TestGIPTZeroBlocksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGIPT(0)
}

func TestFreeQueueFIFO(t *testing.T) {
	var q FreeQueue
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty dequeue succeeded")
	}
	for i := uint64(0); i < 200; i++ {
		q.Enqueue(i)
	}
	for i := uint64(0); i < 200; i++ {
		got, ok := q.Dequeue()
		if !ok || got != i {
			t.Fatalf("dequeue %d = %d,%v", i, got, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d", q.Len())
	}
}

// Property: FreeQueue preserves FIFO order under interleaved operations.
func TestFreeQueueOrderProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q FreeQueue
		var model []uint64
		next := uint64(0)
		for _, op := range ops {
			if op%3 != 0 || len(model) == 0 {
				q.Enqueue(next)
				model = append(model, next)
				next++
			} else {
				got, ok := q.Dequeue()
				if !ok || got != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCustomWalkFunc(t *testing.T) {
	r := newRig(t, 16, nil)
	var calls int
	r.c.SetWalkFunc(func(at sim.Tick, coreID int, vpn uint64) sim.Tick {
		calls++
		return at + 123
	})
	_, done, kind := r.miss(t, 0, 7)
	if kind != MissColdFill {
		t.Fatalf("kind = %v", kind)
	}
	// walk(123) + fill(500) + GIPT(100).
	if done != 723 {
		t.Fatalf("done = %d, want 723", done)
	}
	if calls != 1 {
		t.Fatalf("walk func called %d times", calls)
	}
	// A walk function returning the past is clamped.
	r.c.SetWalkFunc(func(at sim.Tick, coreID int, vpn uint64) sim.Tick { return 0 })
	_, done2, _ := r.miss(t, 5000, 8)
	if done2 < 5000 {
		t.Fatalf("handler completed in the past: %d", done2)
	}
}

func TestRegionModeFillsWholeRegion(t *testing.T) {
	r := newRig(t, 4, func(c *Config) { c.RegionPages = 4 })
	// Use a region-capable page table walk: vpn 5 → region base 4.
	e, _, kind := r.miss(t, 0, 5)
	if kind != MissColdFill {
		t.Fatalf("kind = %v", kind)
	}
	r.settle()
	// The region PTE covers every page of the region: a miss on vpn 6
	// (same region) is a victim hit on the same block.
	e2, _, kind2 := r.miss(t, 1000, 6)
	if kind2 != MissVictimHit || e2.Frame != e.Frame {
		t.Fatalf("second page of region: %v CA-%d, want victim hit CA-%d",
			kind2, e2.Frame, e.Frame)
	}
	if r.m.fills != 1 {
		t.Fatalf("fills = %d, want 1 region fill", r.m.fills)
	}
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
