package core

import (
	"testing"

	"taglessdram/internal/mmu"
	"taglessdram/internal/sim"
	"taglessdram/internal/tlb"
)

// aliasRig builds a controller with the Section 6 alias table enabled and
// two separate address spaces sharing a frame allocator.
type aliasRig struct {
	c        *Controller
	m        *fakeMem
	k        *sim.Kernel
	pt0, pt1 *mmu.PageTable
}

func newAliasRig(t *testing.T, blocks int) *aliasRig {
	t.Helper()
	cfg := Config{
		Blocks: blocks, Alpha: 1, WalkCycles: 40,
		SharedAliasTable: true, AliasLookupCycles: 100,
	}
	m := &fakeMem{fillLat: 500, evictLat: 700, giptLat: 100}
	k := sim.NewKernel()
	alloc := mmu.NewFrameAllocator(1 << 20)
	return &aliasRig{
		c:   NewController(cfg, m, k),
		m:   m,
		k:   k,
		pt0: mmu.NewPageTable(0, alloc),
		pt1: mmu.NewPageTable(1, alloc),
	}
}

// shareFrame maps vpn in both address spaces to one physical frame.
func (r *aliasRig) shareFrame(t *testing.T, vpn uint64) {
	t.Helper()
	pte, err := r.pt0.Walk(vpn) // allocates the frame
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.pt1.MapShared(vpn, pte.Frame); err != nil {
		t.Fatal(err)
	}
}

func TestAliasAvoidsDuplicateFill(t *testing.T) {
	r := newAliasRig(t, 8)
	r.shareFrame(t, 5)

	// Process 0 faults and fills.
	r.k.Advance(0)
	e0, _, kind0, err := r.c.HandleTLBMiss(0, 0, r.pt0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind0 != MissColdFill {
		t.Fatalf("first miss = %v", kind0)
	}
	r.k.Run(0)

	// Process 1 faults on the same physical page: the alias table must
	// attach it to the same block without a second fill.
	r.k.Advance(10000)
	e1, done, kind1, err := r.c.HandleTLBMiss(10000, 1, r.pt1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind1 != MissVictimHit {
		t.Fatalf("aliased miss = %v, want victim-hit classification", kind1)
	}
	if e1.Frame != e0.Frame {
		t.Fatalf("processes got different blocks: CA-%d vs CA-%d", e0.Frame, e1.Frame)
	}
	// Cost: walk + alias lookup, no fill.
	if done != 10000+40+100 {
		t.Fatalf("attach done = %d, want 10140", done)
	}
	if r.m.fills != 1 {
		t.Fatalf("fills = %d, want 1", r.m.fills)
	}
	if r.c.Stats().AliasHits != 1 {
		t.Fatalf("stats = %+v", r.c.Stats())
	}
	// Both PTEs point into the cache.
	p0, _ := r.pt0.Lookup(5)
	p1, _ := r.pt1.Lookup(5)
	if !p0.VC || !p1.VC || p0.Frame != p1.Frame {
		t.Fatalf("PTEs diverge: %v vs %v", p0, p1)
	}
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAliasAttachDuringFill(t *testing.T) {
	r := newAliasRig(t, 8)
	r.shareFrame(t, 5)
	// Process 0 starts the fill; process 1 faults before it completes.
	r.k.Advance(0)
	_, done0, _, err := r.c.HandleTLBMiss(0, 0, r.pt0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.k.Advance(50)
	_, done1, kind, err := r.c.HandleTLBMiss(50, 1, r.pt1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MissVictimHit {
		t.Fatalf("kind = %v", kind)
	}
	if done1 < done0 {
		t.Fatalf("attacher resumed at %d before the fill completed at %d", done1, done0)
	}
	if r.m.fills != 1 {
		t.Fatalf("fills = %d", r.m.fills)
	}
	r.k.Run(0)
	p1, _ := r.pt1.Lookup(5)
	if !p1.VC {
		t.Fatal("attacher's PTE never flipped to the cache address")
	}
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAliasEvictionRewritesAllSharers(t *testing.T) {
	r := newAliasRig(t, 2)
	r.shareFrame(t, 5)
	r.k.Advance(0)
	if _, _, _, err := r.c.HandleTLBMiss(0, 0, r.pt0, 5, 0); err != nil {
		t.Fatal(err)
	}
	r.k.Run(0)
	r.k.Advance(1000)
	if _, _, _, err := r.c.HandleTLBMiss(1000, 1, r.pt1, 5, 0); err != nil {
		t.Fatal(err)
	}
	r.k.Run(0)
	// Drop residence and force eviction by filling the other block twice.
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 0})
	r.c.NoteTLBEviction(1, tlb.Entry{Frame: 0})
	r.k.Advance(2000)
	if _, _, _, err := r.c.HandleTLBMiss(2000, 0, r.pt0, 6, 0); err != nil {
		t.Fatal(err)
	}
	r.k.Run(0)
	// The shared page was evicted: BOTH processes' PTEs must point back
	// at the physical frame.
	p0, _ := r.pt0.Lookup(5)
	p1, _ := r.pt1.Lookup(5)
	if p0.VC || p1.VC {
		t.Fatalf("sharer PTEs still cached after eviction: %v / %v", p0, p1)
	}
	if p0.Frame != p1.Frame {
		t.Fatalf("sharer frames diverge after eviction: %v vs %v", p0, p1)
	}
	// A re-fault must fill again (alias entry was dropped).
	r.k.Advance(5000)
	_, _, kind, err := r.c.HandleTLBMiss(5000, 1, r.pt1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MissColdFill {
		t.Fatalf("post-eviction miss = %v, want cold fill", kind)
	}
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAliasRescuesPendingEvict(t *testing.T) {
	r := newAliasRig(t, 2)
	r.shareFrame(t, 5)
	r.k.Advance(0)
	if _, _, _, err := r.c.HandleTLBMiss(0, 0, r.pt0, 5, 0); err != nil {
		t.Fatal(err)
	}
	r.k.Run(0)
	r.c.NoteTLBEviction(0, tlb.Entry{Frame: 0})
	// Fill block 2 without settling: CA-0 becomes pending-evict.
	r.k.Advance(1000)
	if _, _, _, err := r.c.HandleTLBMiss(1000, 0, r.pt0, 6, 0); err != nil {
		t.Fatal(err)
	}
	if r.c.GIPT().Entry(0).State != PendingEvict {
		t.Fatalf("CA-0 = %v", r.c.GIPT().Entry(0).State)
	}
	// Process 1 attaches via the alias table: rescue.
	_, _, kind, err := r.c.HandleTLBMiss(1001, 1, r.pt1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kind != MissVictimHit {
		t.Fatalf("kind = %v", kind)
	}
	if r.c.GIPT().Entry(0).State != Cached {
		t.Fatal("alias attach did not rescue the pending-evict block")
	}
	r.k.Run(0)
	if err := r.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAliasDisabledNoTable(t *testing.T) {
	// Without the option, two processes filling the same frame duplicate
	// the page in the cache (the aliasing problem the paper describes).
	cfg := Config{Blocks: 8, Alpha: 1, WalkCycles: 40}
	m := &fakeMem{fillLat: 500, evictLat: 700, giptLat: 100}
	k := sim.NewKernel()
	c := NewController(cfg, m, k)
	alloc := mmu.NewFrameAllocator(16)
	pt0 := mmu.NewPageTable(0, alloc)
	pt1 := mmu.NewPageTable(1, alloc)
	pte, _ := pt0.Walk(5)
	if _, err := pt1.MapShared(5, pte.Frame); err != nil {
		t.Fatal(err)
	}
	k.Advance(0)
	e0, _, _, _ := c.HandleTLBMiss(0, 0, pt0, 5, 0)
	k.Run(0)
	k.Advance(1000)
	e1, _, kind, _ := c.HandleTLBMiss(1000, 1, pt1, 5, 0)
	k.Run(0)
	if kind != MissColdFill {
		t.Fatalf("kind = %v, want duplicate cold fill", kind)
	}
	if e0.Frame == e1.Frame {
		t.Fatal("without the alias table the page should be duplicated")
	}
	if m.fills != 2 {
		t.Fatalf("fills = %d, want 2 (the alias problem)", m.fills)
	}
}
