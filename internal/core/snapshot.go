package core

import (
	"fmt"
	"sort"

	"taglessdram/internal/mmu"
	"taglessdram/internal/sim"
)

// PTERef names a page-table entry by position instead of by pointer: the
// owning table's index in the system's table set and the vpn the entry is
// keyed under (the region base for superpage entries). Checkpoints store
// refs; restore resolves them against the freshly rebuilt tables.
type PTERef struct {
	Table int
	VPN   uint64
}

// PTECodec translates between *mmu.PTE pointers and stable PTERefs during
// checkpoint save and restore. The system layer, which owns the table set,
// provides both directions: Encode reports false for a pointer it cannot
// attribute, Decode returns nil for a ref that resolves to nothing.
type PTECodec struct {
	Encode func(*mmu.PTE) (PTERef, bool)
	Decode func(PTERef) *mmu.PTE
}

// GIPTEntryState is one serialized GIPT row.
type GIPTEntryState struct {
	PPN       uint64
	PTE       PTERef
	HasPTE    bool
	VPN       uint64
	Residence uint64
	State     BlockState
	Dirty     bool
	Sharers   []PTERef
	FillDone  sim.Tick
}

// AliasState is one serialized alias-table binding.
type AliasState struct {
	PPN uint64
	CA  uint64
}

// CtrlState is the controller's serializable state. Only a quiesced
// controller can be captured: pending fills, daemon-queue entries and
// in-flight evictions have no representation.
type CtrlState struct {
	FreeList  []uint64
	FreeHead  int
	AllocQ    []uint64
	LastTouch []sim.Tick
	RefBit    []bool
	Cursor    uint64
	Aliases   []AliasState
	Stats     Stats
	GIPT      []GIPTEntryState
}

// Snapshot captures the controller and GIPT, encoding PTE pointers
// through the codec.
func (c *Controller) Snapshot(codec *PTECodec) (*CtrlState, error) {
	if !c.Quiesced() {
		return nil, fmt.Errorf("core: cannot snapshot: %d pending fills, %d in-flight evictions, %d queued",
			len(c.pendings), c.inFlight, c.freeQ.Len())
	}
	st := &CtrlState{
		FreeList:  append([]uint64(nil), c.freeList[c.freeHead:]...),
		AllocQ:    append([]uint64(nil), c.allocQ.q[c.allocQ.head:]...),
		LastTouch: append([]sim.Tick(nil), c.lastTouch...),
		RefBit:    append([]bool(nil), c.refBit...),
		Cursor:    c.cursor,
		Stats:     c.stats,
		GIPT:      make([]GIPTEntryState, len(c.gipt.entries)),
	}
	if c.aliases != nil {
		st.Aliases = make([]AliasState, 0, len(c.aliases))
		for ppn, ca := range c.aliases {
			st.Aliases = append(st.Aliases, AliasState{PPN: ppn, CA: ca})
		}
		sort.Slice(st.Aliases, func(i, j int) bool { return st.Aliases[i].PPN < st.Aliases[j].PPN })
	}
	for i := range c.gipt.entries {
		e := &c.gipt.entries[i]
		if e.State == Filling {
			return nil, fmt.Errorf("core: cannot snapshot: CA-%d still filling", i)
		}
		es := &st.GIPT[i]
		es.PPN, es.VPN, es.Residence = e.PPN, e.VPN, e.Residence
		es.State, es.Dirty, es.FillDone = e.State, e.Dirty, e.FillDone
		if e.PTE != nil {
			ref, ok := codec.Encode(e.PTE)
			if !ok {
				return nil, fmt.Errorf("core: CA-%d references a PTE outside the table set", i)
			}
			es.PTE, es.HasPTE = ref, true
		}
		for _, p := range e.Sharers {
			ref, ok := codec.Encode(p)
			if !ok {
				return nil, fmt.Errorf("core: CA-%d sharer references a PTE outside the table set", i)
			}
			es.Sharers = append(es.Sharers, ref)
		}
	}
	return st, nil
}

// Restore rebuilds controller and GIPT state from a snapshot taken on an
// identically-configured controller, resolving PTERefs through the codec.
// The target must be quiesced (a freshly built machine is).
func (c *Controller) Restore(codec *PTECodec, st *CtrlState) error {
	if !c.Quiesced() {
		return fmt.Errorf("core: cannot restore over in-flight work")
	}
	if len(st.GIPT) != len(c.gipt.entries) {
		return fmt.Errorf("core: GIPT size mismatch (%d vs %d blocks)", len(st.GIPT), len(c.gipt.entries))
	}
	c.freeList = append(c.freeList[:0], st.FreeList...)
	c.freeHead = 0
	c.allocQ = FreeQueue{q: append([]uint64(nil), st.AllocQ...)}
	c.freeQ = FreeQueue{}
	copy(c.lastTouch, st.LastTouch)
	copy(c.refBit, st.RefBit)
	c.cursor = st.Cursor
	if c.aliases != nil {
		c.aliases = make(map[uint64]uint64, len(st.Aliases))
		for _, a := range st.Aliases {
			c.aliases[a.PPN] = a.CA
		}
	}
	c.stats = st.Stats
	for i := range st.GIPT {
		es := &st.GIPT[i]
		e := &c.gipt.entries[i]
		*e = GIPTEntry{
			PPN: es.PPN, VPN: es.VPN, Residence: es.Residence,
			State: es.State, Dirty: es.Dirty, FillDone: es.FillDone,
		}
		if es.HasPTE {
			pte := codec.Decode(es.PTE)
			if pte == nil {
				return fmt.Errorf("core: CA-%d PTE ref %+v resolves to nothing", i, es.PTE)
			}
			e.PTE = pte
		}
		for _, ref := range es.Sharers {
			pte := codec.Decode(ref)
			if pte == nil {
				return fmt.Errorf("core: CA-%d sharer ref %+v resolves to nothing", i, ref)
			}
			e.Sharers = append(e.Sharers, pte)
		}
	}
	return nil
}
