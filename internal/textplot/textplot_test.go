package textplot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{
		Title: "IPC",
		Bars: []Bar{
			{"NoL3", 1.0},
			{"cTLB", 1.3},
		},
		Width: 10,
	}
	out := c.Render()
	if !strings.Contains(out, "IPC") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "NoL3") || !strings.Contains(out, "cTLB") {
		t.Fatal("labels missing")
	}
	if !strings.Contains(out, "1.300") {
		t.Fatalf("value missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	// The max bar must be longer than the smaller one.
	if strings.Count(lines[2], "█") <= strings.Count(lines[1], "█") {
		t.Fatalf("bar scaling wrong:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "x"}.Render()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
}

func TestBaselineTick(t *testing.T) {
	c := Chart{
		Bars:     []Bar{{"a", 0.5}, {"b", 2.0}},
		Width:    20,
		Baseline: 1.0,
	}
	out := c.Render()
	if !strings.Contains(out, "·") {
		t.Fatalf("baseline tick missing:\n%s", out)
	}
}

func TestNegativeAndZeroValues(t *testing.T) {
	c := Chart{Bars: []Bar{{"neg", -1}, {"zero", 0}, {"pos", 1}}, Width: 8}
	out := c.Render()
	if out == "" {
		t.Fatal("render failed")
	}
	// Negative renders as empty bar but keeps its value text.
	if !strings.Contains(out, "-1.000") {
		t.Fatalf("negative value missing:\n%s", out)
	}
}

func TestAllZeroNoDivByZero(t *testing.T) {
	c := Chart{Bars: []Bar{{"a", 0}, {"b", 0}}}
	_ = c.Render() // must not panic
}

func TestGroupedChart(t *testing.T) {
	g := GroupedChart{
		Title: "Figure",
		Groups: []Chart{
			{Title: "g1", Bars: []Bar{{"x", 1}}},
			{Title: "g2", Bars: []Bar{{"y", 2}}},
		},
	}
	out := g.Render()
	for _, want := range []string{"Figure", "g1", "g2", "x", "y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCustomFormat(t *testing.T) {
	c := Chart{Bars: []Bar{{"a", 12.3456}}, Format: "%.1f"}
	if !strings.Contains(c.Render(), "12.3") {
		t.Fatal("custom format ignored")
	}
}

func TestSparklineBasics(t *testing.T) {
	out := Sparkline([]float64{0, 1, 2, 3}, 0)
	runes := []rune(out)
	if len(runes) != 4 {
		t.Fatalf("len = %d, want 4: %q", len(runes), out)
	}
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("min/max levels wrong: %q", out)
	}
	// Monotone input must render monotone levels.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("non-monotone rendering: %q", out)
		}
	}
}

func TestSparklineResample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	out := Sparkline(xs, 10)
	if n := len([]rune(out)); n != 10 {
		t.Fatalf("resampled width = %d, want 10: %q", n, out)
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input should render empty")
	}
	// Constant series: all lowest level, no divide-by-zero.
	if out := Sparkline([]float64{5, 5, 5}, 0); out != "▁▁▁" {
		t.Fatalf("constant series = %q, want all-low", out)
	}
	// All non-finite: spaces.
	nan := math.NaN()
	if out := Sparkline([]float64{nan, nan}, 0); out != "  " {
		t.Fatalf("all-NaN series = %q, want spaces", out)
	}
	// Mixed: NaN renders as a gap.
	out := Sparkline([]float64{0, nan, 1}, 0)
	if []rune(out)[1] != ' ' {
		t.Fatalf("NaN should render as space: %q", out)
	}
}

func TestHistogramBasics(t *testing.T) {
	out := Histogram("L3 latency", []HistBar{
		{"[16,31]", 10},
		{"[32,63]", 40},
		{"[64,127]", 5},
	}, 20)
	if !strings.Contains(out, "L3 latency") {
		t.Fatal("title missing")
	}
	for _, want := range []string{"[16,31]", "[32,63]", "[64,127]", "10", "40", "5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// The largest bucket must render the longest bar.
	if strings.Count(lines[2], "█") <= strings.Count(lines[1], "█") ||
		strings.Count(lines[2], "█") <= strings.Count(lines[3], "█") {
		t.Fatalf("bar scaling wrong:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	if out := Histogram("h", nil, 10); !strings.Contains(out, "no samples") {
		t.Fatalf("empty histogram = %q", out)
	}
	// All-zero counts must not divide by zero.
	_ = Histogram("h", []HistBar{{"a", 0}}, 10)
}

// Property: rendering never panics and every label/line appears.
func TestRenderTotalProperty(t *testing.T) {
	f := func(vals []float64, width uint8) bool {
		bars := make([]Bar, len(vals))
		for i, v := range vals {
			bars[i] = Bar{Label: "b" + string(rune('a'+i%26)), Value: v}
		}
		c := Chart{Bars: bars, Width: int(width % 100)}
		out := c.Render()
		if len(bars) == 0 {
			return strings.Contains(out, "no data")
		}
		return strings.Count(out, "\n") >= len(bars)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
