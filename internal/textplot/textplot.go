// Package textplot renders small horizontal bar charts as text, used by
// the experiments CLI to show the paper's figures directly in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labeled value.
type Bar struct {
	Label string
	Value float64
}

// Chart is a horizontal bar chart.
type Chart struct {
	Title string
	Bars  []Bar
	// Width is the maximum bar width in characters (default 40).
	Width int
	// Baseline draws a reference line at this value when positive
	// (e.g. 1.0 for normalized IPC charts).
	Baseline float64
	// Format renders the numeric value (default "%.3f").
	Format string
}

const blocks = "▏▎▍▌▋▊▉█"

// Render draws the chart. Bars are scaled to the maximum value; a baseline
// marker '|' is drawn inside bars that cross it.
func (c Chart) Render() string {
	if len(c.Bars) == 0 {
		return c.Title + "\n(no data)\n"
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	format := c.Format
	if format == "" {
		format = "%.3f"
	}

	maxVal := 0.0
	labelW := 0
	for _, b := range c.Bars {
		if b.Value > maxVal && !math.IsInf(b.Value, 1) {
			maxVal = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if maxVal <= 0 || math.IsNaN(maxVal) {
		maxVal = 1
	}

	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	baseCol := -1
	if c.Baseline > 0 && c.Baseline <= maxVal {
		baseCol = int(math.Round(c.Baseline / maxVal * float64(width)))
	}
	for _, b := range c.Bars {
		v := b.Value
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		cells := v / maxVal * float64(width)
		full := int(cells)
		frac := cells - float64(full)
		bar := strings.Repeat("█", full)
		if frac > 0.06 && full < width {
			idx := int(frac * 8)
			if idx > 7 {
				idx = 7
			}
			bar += string([]rune(blocks)[idx])
		}
		// Pad and insert baseline tick.
		runes := []rune(bar)
		for len(runes) < width {
			runes = append(runes, ' ')
		}
		if baseCol >= 0 && baseCol < len(runes) && runes[baseCol] == ' ' {
			runes[baseCol] = '·'
		}
		fmt.Fprintf(&sb, "%-*s %s "+format+"\n", labelW, b.Label, string(runes), b.Value)
	}
	return sb.String()
}

const sparkLevels = "▁▂▃▄▅▆▇█"

// Sparkline renders xs as one line of block characters scaled to
// [min, max] of the finite values, resampling down to at most width
// points (<= 0 means no limit) by averaging each span. Non-finite values
// render as spaces. It is used to show epoch time series — IPC, hit
// rates — inline in terminal output.
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 {
		return ""
	}
	if width > 0 && len(xs) > width {
		resampled := make([]float64, width)
		for i := range resampled {
			lo := i * len(xs) / width
			hi := (i + 1) * len(xs) / width
			if hi <= lo {
				hi = lo + 1
			}
			sum, n := 0.0, 0
			for _, x := range xs[lo:hi] {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					continue
				}
				sum += x
				n++
			}
			if n == 0 {
				resampled[i] = math.NaN()
			} else {
				resampled[i] = sum / float64(n)
			}
		}
		xs = resampled
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo > hi { // no finite values
		return strings.Repeat(" ", len(xs))
	}
	levels := []rune(sparkLevels)
	var sb strings.Builder
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			sb.WriteByte(' ')
			continue
		}
		i := 0
		if hi > lo {
			i = int((x - lo) / (hi - lo) * float64(len(levels)))
			if i >= len(levels) {
				i = len(levels) - 1
			}
		}
		sb.WriteRune(levels[i])
	}
	return sb.String()
}

// HistBar is one labeled histogram bucket.
type HistBar struct {
	Label string
	Count uint64
}

// Histogram renders labeled bucket counts as a horizontal bar chart —
// count bars scaled to the largest bucket, with raw counts on the
// right. width is the maximum bar width in characters (default 40).
func Histogram(title string, bars []HistBar, width int) string {
	if len(bars) == 0 {
		return title + "\n(no samples)\n"
	}
	if width <= 0 {
		width = 40
	}
	var maxCount uint64
	labelW := 0
	for _, b := range bars {
		if b.Count > maxCount {
			maxCount = b.Count
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if maxCount == 0 {
		maxCount = 1
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, b := range bars {
		cells := float64(b.Count) / float64(maxCount) * float64(width)
		full := int(cells)
		bar := strings.Repeat("█", full)
		if frac := cells - float64(full); frac > 0.06 && full < width {
			idx := int(frac * 8)
			if idx > 7 {
				idx = 7
			}
			bar += string([]rune(blocks)[idx])
		}
		fmt.Fprintf(&sb, "%-*s %-*s %d\n", labelW, b.Label, width, bar, b.Count)
	}
	return sb.String()
}

// GroupedChart renders one chart per group key, preserving group order.
type GroupedChart struct {
	Title  string
	Groups []Chart
}

// Render draws every group chart separated by blank lines.
func (g GroupedChart) Render() string {
	var sb strings.Builder
	if g.Title != "" {
		sb.WriteString(g.Title)
		sb.WriteString("\n\n")
	}
	for i, c := range g.Groups {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(c.Render())
	}
	return sb.String()
}
