// Package energy aggregates the energy model: DRAM device energy (from the
// dram package's per-event accounting), SRAM tag-array energy, and core
// energy (average power × runtime, the McPAT-derived constant the paper
// adds identically to every design). It reports total energy and the
// energy-delay product the paper plots.
package energy

import "fmt"

// Breakdown itemizes where the joules went.
type Breakdown struct {
	CoreJ   float64 // cores + on-die caches (power × time)
	InPkgJ  float64 // in-package DRAM
	OffPkgJ float64 // off-package DRAM
	TagJ    float64 // on-die SRAM tag array (zero for tagless designs)
}

// TotalJ returns the summed energy in joules.
func (b Breakdown) TotalJ() float64 { return b.CoreJ + b.InPkgJ + b.OffPkgJ + b.TagJ }

// String implements fmt.Stringer.
func (b Breakdown) String() string {
	return fmt.Sprintf("core=%.4gJ inpkg=%.4gJ offpkg=%.4gJ tag=%.4gJ total=%.4gJ",
		b.CoreJ, b.InPkgJ, b.OffPkgJ, b.TagJ, b.TotalJ())
}

// Model converts raw activity counts into a Breakdown.
type Model struct {
	Cores          int
	CorePowerWatts float64 // per core, including its share of on-die caches
	FreqGHz        float64
}

// Account computes the breakdown for a run of `cycles` CPU cycles with the
// given device and tag energies (picojoules).
func (m Model) Account(cycles uint64, inPkgPJ, offPkgPJ, tagPJ float64) Breakdown {
	seconds := float64(cycles) / (m.FreqGHz * 1e9)
	return Breakdown{
		CoreJ:   float64(m.Cores) * m.CorePowerWatts * seconds,
		InPkgJ:  inPkgPJ * 1e-12,
		OffPkgJ: offPkgPJ * 1e-12,
		TagJ:    tagPJ * 1e-12,
	}
}

// EDP returns the energy-delay product (joule-seconds) for a run.
func EDP(totalJ float64, cycles uint64, freqGHz float64) float64 {
	seconds := float64(cycles) / (freqGHz * 1e9)
	return totalJ * seconds
}

// NormalizedEDP returns this run's EDP relative to a baseline's; values
// below 1 are better, matching the paper's "normalized EDP" plots.
func NormalizedEDP(edp, baselineEDP float64) float64 {
	if baselineEDP == 0 {
		return 0
	}
	return edp / baselineEDP
}
