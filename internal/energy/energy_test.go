package energy

import (
	"math"
	"strings"
	"testing"
)

func TestAccount(t *testing.T) {
	m := Model{Cores: 4, CorePowerWatts: 5, FreqGHz: 3}
	// 3e9 cycles at 3GHz = 1 second.
	b := m.Account(3e9, 1e12, 2e12, 5e11)
	if math.Abs(b.CoreJ-20) > 1e-9 {
		t.Errorf("core energy = %v J, want 20", b.CoreJ)
	}
	if b.InPkgJ != 1 || b.OffPkgJ != 2 || b.TagJ != 0.5 {
		t.Errorf("breakdown = %+v", b)
	}
	if math.Abs(b.TotalJ()-23.5) > 1e-9 {
		t.Errorf("total = %v, want 23.5", b.TotalJ())
	}
}

func TestEDP(t *testing.T) {
	// 10 J over 1 second → 10 J·s.
	if got := EDP(10, 3e9, 3); math.Abs(got-10) > 1e-9 {
		t.Errorf("EDP = %v, want 10", got)
	}
	// Halving runtime at equal energy halves EDP.
	if got := EDP(10, 15e8, 3); math.Abs(got-5) > 1e-9 {
		t.Errorf("EDP = %v, want 5", got)
	}
}

func TestNormalizedEDP(t *testing.T) {
	if got := NormalizedEDP(5, 10); got != 0.5 {
		t.Errorf("normalized = %v, want 0.5", got)
	}
	if got := NormalizedEDP(5, 0); got != 0 {
		t.Errorf("zero baseline = %v, want 0", got)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{CoreJ: 1, InPkgJ: 2, OffPkgJ: 3, TagJ: 4}
	s := b.String()
	if !strings.Contains(s, "total=10") {
		t.Errorf("string = %q", s)
	}
}

func TestFasterRunLowerEDPAtSameEnergy(t *testing.T) {
	m := Model{Cores: 4, CorePowerWatts: 5, FreqGHz: 3}
	slow := m.Account(6e9, 1e12, 1e12, 0)
	fast := m.Account(3e9, 1e12, 1e12, 0)
	edpSlow := EDP(slow.TotalJ(), 6e9, 3)
	edpFast := EDP(fast.TotalJ(), 3e9, 3)
	if edpFast >= edpSlow {
		t.Errorf("EDP fast=%v should beat slow=%v", edpFast, edpSlow)
	}
}
