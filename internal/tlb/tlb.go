// Package tlb implements set-associative translation lookaside buffers and
// the per-core two-level hierarchy used in the paper (32-entry L1, 512-entry
// L2). The same hardware serves as a conventional TLB (virtual→physical) or
// as the paper's cache-map TLB (cTLB, virtual→cache): an Entry's Frame is
// interpreted by the owner, and the NC bit marks non-cacheable pages whose
// frames remain physical (Section 3.2).
package tlb

import (
	"fmt"

	"taglessdram/internal/config"
)

// Entry is one translation. For a cTLB with NC clear, Frame is the cache
// block number; with NC set (or in a conventional TLB) it is the physical
// page number.
type Entry struct {
	Frame uint64
	NC    bool
}

// invalidVPN marks an empty slot. Real vpns (including superpage lookup
// keys, which set bit 61) stay below 2^62, so the sentinel cannot collide.
const invalidVPN = ^uint64(0)

// TLB is one set-associative translation buffer with LRU replacement. Slots
// are stored structure-of-arrays so the lookup path scans only the set's
// vpn words; invalid slots carry a sentinel vpn.
type TLB struct {
	cfg    config.TLBConfig
	ways   int
	nsets  int
	vpns   []uint64 // set-major: vpns[si*ways+w]
	frames []uint64
	nc     []bool
	used   []uint64
	tick   uint64
	mask   uint64

	// Same-page memo: lastIdx is the slot that served the previous hit. A
	// repeat lookup of the same vpn skips the set scan. The memo is only
	// trusted when vpns[lastIdx] still holds that vpn, so evictions and
	// invalidations cannot make it lie.
	lastVPN uint64
	lastIdx int

	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New constructs a TLB from its configuration.
func New(cfg config.TLBConfig) *TLB {
	nsets := cfg.Sets()
	if nsets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("tlb: bad geometry %+v", cfg))
	}
	n := nsets * cfg.Ways
	t := &TLB{
		cfg:    cfg,
		ways:   cfg.Ways,
		nsets:  nsets,
		vpns:   make([]uint64, n),
		frames: make([]uint64, n),
		nc:     make([]bool, n),
		used:   make([]uint64, n),
	}
	for i := range t.vpns {
		t.vpns[i] = invalidVPN
	}
	t.mask = uint64(nsets - 1)
	if nsets&(nsets-1) != 0 {
		t.mask = 0 // fall back to modulo for non-power-of-two set counts
	}
	return t
}

// Config returns the TLB configuration.
func (t *TLB) Config() config.TLBConfig { return t.cfg }

func (t *TLB) setBase(vpn uint64) int {
	if t.mask != 0 {
		return int(vpn&t.mask) * t.ways
	}
	return int(vpn%uint64(t.nsets)) * t.ways
}

// Lookup searches for vpn, updating LRU state and hit/miss counters.
func (t *TLB) Lookup(vpn uint64) (Entry, bool) {
	t.Accesses++
	t.tick++
	if vpn == t.lastVPN && t.vpns[t.lastIdx] == vpn {
		t.Hits++
		i := t.lastIdx
		t.used[i] = t.tick
		return Entry{Frame: t.frames[i], NC: t.nc[i]}, true
	}
	base := t.setBase(vpn)
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			t.Hits++
			i := base + w
			t.lastVPN, t.lastIdx = vpn, i
			t.used[i] = t.tick
			return Entry{Frame: t.frames[i], NC: t.nc[i]}, true
		}
	}
	t.Misses++
	return Entry{}, false
}

// Peek reports presence without perturbing LRU state or counters.
func (t *TLB) Peek(vpn uint64) (Entry, bool) {
	base := t.setBase(vpn)
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			i := base + w
			return Entry{Frame: t.frames[i], NC: t.nc[i]}, true
		}
	}
	return Entry{}, false
}

// Insert adds (or refreshes) a translation and returns any displaced
// translation. Inserting an existing vpn overwrites it with no eviction.
func (t *TLB) Insert(vpn uint64, e Entry) (evictedVPN uint64, evicted Entry, didEvict bool) {
	t.tick++
	base := t.setBase(vpn)
	vi := -1
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			i := base + w
			t.frames[i] = e.Frame
			t.nc[i] = e.NC
			t.used[i] = t.tick
			return 0, Entry{}, false
		}
		if v == invalidVPN && vi == -1 {
			vi = w
		}
	}
	if vi == -1 {
		vi = 0
		for w := 1; w < t.ways; w++ {
			if t.used[base+w] < t.used[base+vi] {
				vi = w
			}
		}
		i := base + vi
		evictedVPN, evicted, didEvict = t.vpns[i], Entry{Frame: t.frames[i], NC: t.nc[i]}, true
		t.Evictions++
	}
	i := base + vi
	t.vpns[i] = vpn
	t.frames[i] = e.Frame
	t.nc[i] = e.NC
	t.used[i] = t.tick
	return evictedVPN, evicted, didEvict
}

// Invalidate drops vpn if present and reports whether it was.
func (t *TLB) Invalidate(vpn uint64) bool {
	base := t.setBase(vpn)
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			i := base + w
			t.vpns[i] = invalidVPN
			t.frames[i] = 0
			t.nc[i] = false
			t.used[i] = 0
			return true
		}
	}
	return false
}

// Update rewrites the entry for vpn in place (e.g. remapping CA→PA during a
// shootdown) and reports whether vpn was present.
func (t *TLB) Update(vpn uint64, e Entry) bool {
	base := t.setBase(vpn)
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			i := base + w
			t.frames[i] = e.Frame
			t.nc[i] = e.NC
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for _, v := range t.vpns {
		if v != invalidVPN {
			n++
		}
	}
	return n
}

// Flush invalidates everything.
func (t *TLB) Flush() {
	for i := range t.vpns {
		t.vpns[i] = invalidVPN
		t.frames[i] = 0
		t.nc[i] = false
		t.used[i] = 0
	}
}

// HitRate returns hits/accesses, or 0 before any access.
func (t *TLB) HitRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Accesses)
}

// ResetStats clears counters, keeping contents.
func (t *TLB) ResetStats() { t.Accesses, t.Hits, t.Misses, t.Evictions = 0, 0, 0, 0 }

// Counters snapshots the four statistics counters (for excluding a
// fast-forwarded phase from measurement without losing warm contents).
func (t *TLB) Counters() [4]uint64 {
	return [4]uint64{t.Accesses, t.Hits, t.Misses, t.Evictions}
}

// SetCounters restores counters captured by Counters.
func (t *TLB) SetCounters(v [4]uint64) {
	t.Accesses, t.Hits, t.Misses, t.Evictions = v[0], v[1], v[2], v[3]
}

// State is a TLB's serializable state: contents, recency and counters.
// Geometry comes from construction and is not part of the state.
type State struct {
	VPNs     []uint64
	Frames   []uint64
	NC       []bool
	Used     []uint64
	Tick     uint64
	LastVPN  uint64
	LastIdx  int
	Counters [4]uint64
}

// State snapshots the TLB.
func (t *TLB) State() State {
	return State{
		VPNs:     append([]uint64(nil), t.vpns...),
		Frames:   append([]uint64(nil), t.frames...),
		NC:       append([]bool(nil), t.nc...),
		Used:     append([]uint64(nil), t.used...),
		Tick:     t.tick,
		LastVPN:  t.lastVPN,
		LastIdx:  t.lastIdx,
		Counters: t.Counters(),
	}
}

// SetState restores a snapshot taken from an identically-configured TLB.
func (t *TLB) SetState(st State) {
	if len(st.VPNs) != len(t.vpns) {
		panic(fmt.Sprintf("tlb: state geometry mismatch (%d vs %d slots)", len(st.VPNs), len(t.vpns)))
	}
	copy(t.vpns, st.VPNs)
	copy(t.frames, st.Frames)
	copy(t.nc, st.NC)
	copy(t.used, st.Used)
	t.tick = st.Tick
	t.lastVPN = st.LastVPN
	t.lastIdx = st.LastIdx
	t.SetCounters(st.Counters)
}

// Hierarchy is one core's L1+L2 TLB pair, maintained inclusively: every L1
// entry is also in L2, so a page leaves the core's TLB reach exactly when
// it leaves L2. OnEvict (if set) fires at that moment — the tagless cache
// uses it to clear the page's TLB-residence bit in the GIPT (Section 3.2).
type Hierarchy struct {
	L1, L2  *TLB
	OnEvict func(vpn uint64, e Entry)
}

// NewHierarchy builds a two-level TLB for one core.
func NewHierarchy(l1, l2 config.TLBConfig) *Hierarchy {
	return &Hierarchy{L1: New(l1), L2: New(l2)}
}

// Level identifies where a lookup hit.
type Level int

// Lookup levels.
const (
	MissAll Level = iota // not in any level
	InL1
	InL2
)

// Lookup searches L1 then L2. An L2 hit refills L1.
func (h *Hierarchy) Lookup(vpn uint64) (Entry, Level) {
	if e, ok := h.L1.Lookup(vpn); ok {
		return e, InL1
	}
	if e, ok := h.L2.Lookup(vpn); ok {
		// Refill L1; inclusivity means the L1 victim is still in L2.
		h.L1.Insert(vpn, e)
		return e, InL2
	}
	return Entry{}, MissAll
}

// Insert installs a translation into both levels, firing OnEvict for any
// translation that leaves L2 (and with it, the hierarchy).
func (h *Hierarchy) Insert(vpn uint64, e Entry) {
	if evpn, ee, ok := h.L2.Insert(vpn, e); ok {
		h.L1.Invalidate(evpn) // preserve inclusion
		if h.OnEvict != nil {
			h.OnEvict(evpn, ee)
		}
	}
	h.L1.Insert(vpn, e)
}

// Contains reports whether vpn is resident anywhere in the hierarchy
// without perturbing state.
func (h *Hierarchy) Contains(vpn uint64) bool {
	if _, ok := h.L1.Peek(vpn); ok {
		return true
	}
	_, ok := h.L2.Peek(vpn)
	return ok
}

// Invalidate performs a shootdown of vpn from both levels and reports
// whether it was present. OnEvict fires if it was.
func (h *Hierarchy) Invalidate(vpn uint64) bool {
	e, inL2 := h.L2.Peek(vpn)
	h.L1.Invalidate(vpn)
	if inL2 {
		h.L2.Invalidate(vpn)
		if h.OnEvict != nil {
			h.OnEvict(vpn, e)
		}
	}
	return inL2
}

// Update rewrites vpn's entry in both levels (returns whether present in L2).
func (h *Hierarchy) Update(vpn uint64, e Entry) bool {
	h.L1.Update(vpn, e)
	return h.L2.Update(vpn, e)
}

// Flush clears both levels without firing OnEvict (power-on reset).
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	h.L2.Flush()
}
