// Package tlb implements set-associative translation lookaside buffers and
// the per-core two-level hierarchy used in the paper (32-entry L1, 512-entry
// L2). The same hardware serves as a conventional TLB (virtual→physical) or
// as the paper's cache-map TLB (cTLB, virtual→cache): an Entry's Frame is
// interpreted by the owner, and the NC bit marks non-cacheable pages whose
// frames remain physical (Section 3.2).
package tlb

import (
	"fmt"

	"taglessdram/internal/config"
)

// Entry is one translation. For a cTLB with NC clear, Frame is the cache
// block number; with NC set (or in a conventional TLB) it is the physical
// page number.
type Entry struct {
	Frame uint64
	NC    bool
}

type slot struct {
	vpn   uint64
	entry Entry
	valid bool
	used  uint64
}

// TLB is one set-associative translation buffer with LRU replacement.
type TLB struct {
	cfg  config.TLBConfig
	sets [][]slot
	tick uint64

	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New constructs a TLB from its configuration.
func New(cfg config.TLBConfig) *TLB {
	nsets := cfg.Sets()
	if nsets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("tlb: bad geometry %+v", cfg))
	}
	t := &TLB{cfg: cfg, sets: make([][]slot, nsets)}
	for i := range t.sets {
		t.sets[i] = make([]slot, cfg.Ways)
	}
	return t
}

// Config returns the TLB configuration.
func (t *TLB) Config() config.TLBConfig { return t.cfg }

func (t *TLB) set(vpn uint64) []slot {
	return t.sets[int(vpn%uint64(len(t.sets)))]
}

// Lookup searches for vpn, updating LRU state and hit/miss counters.
func (t *TLB) Lookup(vpn uint64) (Entry, bool) {
	t.Accesses++
	t.tick++
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			t.Hits++
			set[i].used = t.tick
			return set[i].entry, true
		}
	}
	t.Misses++
	return Entry{}, false
}

// Peek reports presence without perturbing LRU state or counters.
func (t *TLB) Peek(vpn uint64) (Entry, bool) {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			return set[i].entry, true
		}
	}
	return Entry{}, false
}

// Insert adds (or refreshes) a translation and returns any displaced
// translation. Inserting an existing vpn overwrites it with no eviction.
func (t *TLB) Insert(vpn uint64, e Entry) (evictedVPN uint64, evicted Entry, didEvict bool) {
	t.tick++
	set := t.set(vpn)
	vi := -1
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].entry = e
			set[i].used = t.tick
			return 0, Entry{}, false
		}
		if !set[i].valid && vi == -1 {
			vi = i
		}
	}
	if vi == -1 {
		vi = 0
		for i := range set {
			if set[i].used < set[vi].used {
				vi = i
			}
		}
		evictedVPN, evicted, didEvict = set[vi].vpn, set[vi].entry, true
		t.Evictions++
	}
	set[vi] = slot{vpn: vpn, entry: e, valid: true, used: t.tick}
	return evictedVPN, evicted, didEvict
}

// Invalidate drops vpn if present and reports whether it was.
func (t *TLB) Invalidate(vpn uint64) bool {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i] = slot{}
			return true
		}
	}
	return false
}

// Update rewrites the entry for vpn in place (e.g. remapping CA→PA during a
// shootdown) and reports whether vpn was present.
func (t *TLB) Update(vpn uint64, e Entry) bool {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].entry = e
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for _, set := range t.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// Flush invalidates everything.
func (t *TLB) Flush() {
	for si := range t.sets {
		for i := range t.sets[si] {
			t.sets[si][i] = slot{}
		}
	}
}

// HitRate returns hits/accesses, or 0 before any access.
func (t *TLB) HitRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Accesses)
}

// ResetStats clears counters, keeping contents.
func (t *TLB) ResetStats() { t.Accesses, t.Hits, t.Misses, t.Evictions = 0, 0, 0, 0 }

// Hierarchy is one core's L1+L2 TLB pair, maintained inclusively: every L1
// entry is also in L2, so a page leaves the core's TLB reach exactly when
// it leaves L2. OnEvict (if set) fires at that moment — the tagless cache
// uses it to clear the page's TLB-residence bit in the GIPT (Section 3.2).
type Hierarchy struct {
	L1, L2  *TLB
	OnEvict func(vpn uint64, e Entry)
}

// NewHierarchy builds a two-level TLB for one core.
func NewHierarchy(l1, l2 config.TLBConfig) *Hierarchy {
	return &Hierarchy{L1: New(l1), L2: New(l2)}
}

// Level identifies where a lookup hit.
type Level int

// Lookup levels.
const (
	MissAll Level = iota // not in any level
	InL1
	InL2
)

// Lookup searches L1 then L2. An L2 hit refills L1.
func (h *Hierarchy) Lookup(vpn uint64) (Entry, Level) {
	if e, ok := h.L1.Lookup(vpn); ok {
		return e, InL1
	}
	if e, ok := h.L2.Lookup(vpn); ok {
		// Refill L1; inclusivity means the L1 victim is still in L2.
		h.L1.Insert(vpn, e)
		return e, InL2
	}
	return Entry{}, MissAll
}

// Insert installs a translation into both levels, firing OnEvict for any
// translation that leaves L2 (and with it, the hierarchy).
func (h *Hierarchy) Insert(vpn uint64, e Entry) {
	if evpn, ee, ok := h.L2.Insert(vpn, e); ok {
		h.L1.Invalidate(evpn) // preserve inclusion
		if h.OnEvict != nil {
			h.OnEvict(evpn, ee)
		}
	}
	h.L1.Insert(vpn, e)
}

// Contains reports whether vpn is resident anywhere in the hierarchy
// without perturbing state.
func (h *Hierarchy) Contains(vpn uint64) bool {
	if _, ok := h.L1.Peek(vpn); ok {
		return true
	}
	_, ok := h.L2.Peek(vpn)
	return ok
}

// Invalidate performs a shootdown of vpn from both levels and reports
// whether it was present. OnEvict fires if it was.
func (h *Hierarchy) Invalidate(vpn uint64) bool {
	e, inL2 := h.L2.Peek(vpn)
	h.L1.Invalidate(vpn)
	if inL2 {
		h.L2.Invalidate(vpn)
		if h.OnEvict != nil {
			h.OnEvict(vpn, e)
		}
	}
	return inL2
}

// Update rewrites vpn's entry in both levels (returns whether present in L2).
func (h *Hierarchy) Update(vpn uint64, e Entry) bool {
	h.L1.Update(vpn, e)
	return h.L2.Update(vpn, e)
}

// Flush clears both levels without firing OnEvict (power-on reset).
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	h.L2.Flush()
}
