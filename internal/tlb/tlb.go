// Package tlb implements set-associative translation lookaside buffers and
// the per-core two-level hierarchy used in the paper (32-entry L1, 512-entry
// L2). The same hardware serves as a conventional TLB (virtual→physical) or
// as the paper's cache-map TLB (cTLB, virtual→cache): an Entry's Frame is
// interpreted by the owner, and the NC bit marks non-cacheable pages whose
// frames remain physical (Section 3.2).
package tlb

import (
	"fmt"

	"taglessdram/internal/config"
)

// Entry is one translation. For a cTLB with NC clear, Frame is the cache
// block number; with NC set (or in a conventional TLB) it is the physical
// page number.
type Entry struct {
	Frame uint64
	NC    bool
}

// invalidVPN marks an empty slot. Real vpns (including superpage lookup
// keys, which set bit 61) stay below 2^62, so the sentinel cannot collide.
const invalidVPN = ^uint64(0)

// ASID tagging. Under the shared-L2 topology every key a hierarchy
// touches carries its owner's address-space tag in bits 48–59, well above
// any real vpn (traces stay below 2^33) and below the superpage key bit
// (61). ForeignBit marks synthetic foreign-tenant entries injected to
// model context-switch pressure; it can never collide with a workload
// key. A zero tag (the private topology) leaves keys untouched.
const (
	// ASIDTagShift is the bit position of the tag field.
	ASIDTagShift = 48
	// asidTagMask covers the 12-bit tag field.
	asidTagMask = uint64(0xFFF) << ASIDTagShift
	// ForeignBit marks injected foreign-tenant entries.
	ForeignBit = uint64(1) << 60
)

// ASIDTag returns the key tag for an address-space ID. Tags are asid+1 so
// that tag zero stays reserved for the untagged private topology.
func ASIDTag(asid int) uint64 { return uint64(asid+1) << ASIDTagShift }

// TLB is one set-associative translation buffer with LRU replacement. Slots
// are stored structure-of-arrays so the lookup path scans only the set's
// vpn words; invalid slots carry a sentinel vpn.
type TLB struct {
	cfg    config.TLBConfig
	ways   int
	nsets  int
	vpns   []uint64 // set-major: vpns[si*ways+w]
	frames []uint64
	nc     []bool
	used   []uint64
	tick   uint64
	mask   uint64

	// Same-page memo: lastIdx is the slot that served the previous hit. A
	// repeat lookup of the same vpn skips the set scan. The memo is only
	// trusted when vpns[lastIdx] still holds that vpn, so evictions and
	// invalidations cannot make it lie.
	lastVPN uint64
	lastIdx int

	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New constructs a TLB from its configuration.
func New(cfg config.TLBConfig) *TLB {
	nsets := cfg.Sets()
	if nsets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("tlb: bad geometry %+v", cfg))
	}
	n := nsets * cfg.Ways
	t := &TLB{
		cfg:    cfg,
		ways:   cfg.Ways,
		nsets:  nsets,
		vpns:   make([]uint64, n),
		frames: make([]uint64, n),
		nc:     make([]bool, n),
		used:   make([]uint64, n),
	}
	for i := range t.vpns {
		t.vpns[i] = invalidVPN
	}
	t.mask = uint64(nsets - 1)
	if nsets&(nsets-1) != 0 {
		t.mask = 0 // fall back to modulo for non-power-of-two set counts
	}
	return t
}

// Config returns the TLB configuration.
func (t *TLB) Config() config.TLBConfig { return t.cfg }

func (t *TLB) setBase(vpn uint64) int {
	if t.mask != 0 {
		return int(vpn&t.mask) * t.ways
	}
	return int(vpn%uint64(t.nsets)) * t.ways
}

// Lookup searches for vpn, updating LRU state and hit/miss counters.
func (t *TLB) Lookup(vpn uint64) (Entry, bool) {
	t.Accesses++
	t.tick++
	if vpn == t.lastVPN && t.vpns[t.lastIdx] == vpn {
		t.Hits++
		i := t.lastIdx
		t.used[i] = t.tick
		return Entry{Frame: t.frames[i], NC: t.nc[i]}, true
	}
	base := t.setBase(vpn)
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			t.Hits++
			i := base + w
			t.lastVPN, t.lastIdx = vpn, i
			t.used[i] = t.tick
			return Entry{Frame: t.frames[i], NC: t.nc[i]}, true
		}
	}
	t.Misses++
	return Entry{}, false
}

// Peek reports presence without perturbing LRU state or counters.
func (t *TLB) Peek(vpn uint64) (Entry, bool) {
	base := t.setBase(vpn)
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			i := base + w
			return Entry{Frame: t.frames[i], NC: t.nc[i]}, true
		}
	}
	return Entry{}, false
}

// Insert adds (or refreshes) a translation and returns any displaced
// translation. Inserting an existing vpn overwrites it with no eviction.
func (t *TLB) Insert(vpn uint64, e Entry) (evictedVPN uint64, evicted Entry, didEvict bool) {
	t.tick++
	base := t.setBase(vpn)
	vi := -1
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			i := base + w
			t.frames[i] = e.Frame
			t.nc[i] = e.NC
			t.used[i] = t.tick
			return 0, Entry{}, false
		}
		if v == invalidVPN && vi == -1 {
			vi = w
		}
	}
	if vi == -1 {
		vi = 0
		for w := 1; w < t.ways; w++ {
			if t.used[base+w] < t.used[base+vi] {
				vi = w
			}
		}
		i := base + vi
		evictedVPN, evicted, didEvict = t.vpns[i], Entry{Frame: t.frames[i], NC: t.nc[i]}, true
		t.Evictions++
	}
	i := base + vi
	t.vpns[i] = vpn
	t.frames[i] = e.Frame
	t.nc[i] = e.NC
	t.used[i] = t.tick
	return evictedVPN, evicted, didEvict
}

// Invalidate drops vpn if present and reports whether it was.
func (t *TLB) Invalidate(vpn uint64) bool {
	base := t.setBase(vpn)
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			i := base + w
			t.vpns[i] = invalidVPN
			t.frames[i] = 0
			t.nc[i] = false
			t.used[i] = 0
			return true
		}
	}
	return false
}

// Update rewrites the entry for vpn in place (e.g. remapping CA→PA during a
// shootdown) and reports whether vpn was present.
func (t *TLB) Update(vpn uint64, e Entry) bool {
	base := t.setBase(vpn)
	for w, v := range t.vpns[base : base+t.ways] {
		if v == vpn {
			i := base + w
			t.frames[i] = e.Frame
			t.nc[i] = e.NC
			return true
		}
	}
	return false
}

// Each calls fn for every valid entry, in slot order. The callback must
// not mutate the TLB.
func (t *TLB) Each(fn func(key uint64, e Entry)) {
	for i, v := range t.vpns {
		if v != invalidVPN {
			fn(v, Entry{Frame: t.frames[i], NC: t.nc[i]})
		}
	}
}

// Occupancy returns the number of valid entries.
func (t *TLB) Occupancy() int {
	n := 0
	for _, v := range t.vpns {
		if v != invalidVPN {
			n++
		}
	}
	return n
}

// Flush invalidates everything.
func (t *TLB) Flush() {
	for i := range t.vpns {
		t.vpns[i] = invalidVPN
		t.frames[i] = 0
		t.nc[i] = false
		t.used[i] = 0
	}
}

// HitRate returns hits/accesses, or 0 before any access.
func (t *TLB) HitRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Accesses)
}

// ResetStats clears counters, keeping contents.
func (t *TLB) ResetStats() { t.Accesses, t.Hits, t.Misses, t.Evictions = 0, 0, 0, 0 }

// Counters snapshots the four statistics counters (for excluding a
// fast-forwarded phase from measurement without losing warm contents).
func (t *TLB) Counters() [4]uint64 {
	return [4]uint64{t.Accesses, t.Hits, t.Misses, t.Evictions}
}

// SetCounters restores counters captured by Counters.
func (t *TLB) SetCounters(v [4]uint64) {
	t.Accesses, t.Hits, t.Misses, t.Evictions = v[0], v[1], v[2], v[3]
}

// State is a TLB's serializable state: contents, recency and counters.
// Geometry comes from construction and is not part of the state.
type State struct {
	VPNs     []uint64
	Frames   []uint64
	NC       []bool
	Used     []uint64
	Tick     uint64
	LastVPN  uint64
	LastIdx  int
	Counters [4]uint64
}

// State snapshots the TLB.
func (t *TLB) State() State {
	return State{
		VPNs:     append([]uint64(nil), t.vpns...),
		Frames:   append([]uint64(nil), t.frames...),
		NC:       append([]bool(nil), t.nc...),
		Used:     append([]uint64(nil), t.used...),
		Tick:     t.tick,
		LastVPN:  t.lastVPN,
		LastIdx:  t.lastIdx,
		Counters: t.Counters(),
	}
}

// SetState restores a snapshot taken from an identically-configured TLB.
func (t *TLB) SetState(st State) {
	if len(st.VPNs) != len(t.vpns) {
		panic(fmt.Sprintf("tlb: state geometry mismatch (%d vs %d slots)", len(st.VPNs), len(t.vpns)))
	}
	copy(t.vpns, st.VPNs)
	copy(t.frames, st.Frames)
	copy(t.nc, st.NC)
	copy(t.used, st.Used)
	t.tick = st.Tick
	t.lastVPN = st.LastVPN
	t.lastIdx = st.LastIdx
	t.SetCounters(st.Counters)
}

// Hierarchy is one core's L1+L2 TLB pair, maintained inclusively: every L1
// entry is also in L2, so a page leaves the core's TLB reach exactly when
// it leaves L2. OnEvict (if set) fires at that moment — the tagless cache
// uses it to clear the page's TLB-residence bit in the GIPT (Section 3.2).
//
// Under the shared topology (NewSharedGroup) L2 is one TLB shared by all
// member hierarchies and every key is ASID-tagged; the simulator's
// single-threaded kernel is what makes the shared level safe without
// locks. A private hierarchy's tag is zero, so tagging is an identity and
// its behavior is bit-identical to the pre-topology code.
type Hierarchy struct {
	L1, L2  *TLB
	OnEvict func(vpn uint64, e Entry)

	asidTag uint64
	group   *SharedGroup
}

// NewHierarchy builds a private two-level TLB for one core.
func NewHierarchy(l1, l2 config.TLBConfig) *Hierarchy {
	return &Hierarchy{L1: New(l1), L2: New(l2)}
}

// SharedGroup is the shared-L2 topology: one L2 serving every core's L1.
// Cross-core effects — an insert by one core displacing another core's
// translation, a shootdown reaching every L1 — are what the private
// topology structurally cannot express.
type SharedGroup struct {
	L2      *TLB
	members []*Hierarchy
	// Invalidations counts L1 entries of one core killed by shared-L2
	// activity of a different core (the topology's invalidation traffic).
	Invalidations uint64
}

// NewSharedGroup builds per-core hierarchies whose L2 level is one shared
// TLB. Each member still exposes the L2 through its own Hierarchy, so
// stats reset and state save/restore code paths work unchanged
// (idempotently, since they see the same underlying TLB).
func NewSharedGroup(l1, l2 config.TLBConfig, cores int) (*SharedGroup, []*Hierarchy) {
	g := &SharedGroup{L2: New(l2)}
	hs := make([]*Hierarchy, cores)
	for i := range hs {
		h := &Hierarchy{L1: New(l1), L2: g.L2, group: g}
		g.members = append(g.members, h)
		hs[i] = h
	}
	return g, hs
}

// SetASID retags the hierarchy's address space. Keys the core touches
// from now on carry the new tag.
func (h *Hierarchy) SetASID(asid int) { h.asidTag = ASIDTag(asid) }

// OwnsKey reports whether a (tagged) key belongs to this hierarchy's
// address space. A private hierarchy owns everything it holds.
func (h *Hierarchy) OwnsKey(key uint64) bool {
	return h.asidTag == 0 || key&asidTagMask == h.asidTag
}

// dropL1s removes key from every L1 that can hold it, counting an
// invalidation for each member other than self whose L1 actually held it.
func (h *Hierarchy) dropL1s(key uint64) {
	if h.group == nil {
		h.L1.Invalidate(key)
		return
	}
	for _, m := range h.group.members {
		if m.L1.Invalidate(key) && m != h {
			h.group.Invalidations++
		}
	}
}

// notifyEvict announces that key left the L2 level — and with it every
// core's reach — so each member's OnEvict can release per-core state
// (GIPT residence bits). Members that never held the translation clear
// an already-clear bit, which is idempotent.
func (h *Hierarchy) notifyEvict(key uint64, e Entry) {
	if h.group == nil {
		if h.OnEvict != nil {
			h.OnEvict(key, e)
		}
		return
	}
	for _, m := range h.group.members {
		if m.OnEvict != nil {
			m.OnEvict(key, e)
		}
	}
}

// Level identifies where a lookup hit.
type Level int

// Lookup levels.
const (
	MissAll Level = iota // not in any level
	InL1
	InL2
)

// Lookup searches L1 then L2. An L2 hit refills L1. Keys are tagged with
// the hierarchy's ASID (identity for the private topology); OR keeps
// already-tagged keys stable, so callers may pass either form.
func (h *Hierarchy) Lookup(vpn uint64) (Entry, Level) {
	key := vpn | h.asidTag
	if e, ok := h.L1.Lookup(key); ok {
		return e, InL1
	}
	if e, ok := h.L2.Lookup(key); ok {
		// Refill L1; inclusivity means the L1 victim is still in L2.
		h.L1.Insert(key, e)
		return e, InL2
	}
	return Entry{}, MissAll
}

// Insert installs a translation into both levels, firing OnEvict for any
// translation that leaves L2 (and with it, every core's reach).
func (h *Hierarchy) Insert(vpn uint64, e Entry) {
	key := vpn | h.asidTag
	if evpn, ee, ok := h.L2.Insert(key, e); ok {
		h.dropL1s(evpn) // preserve inclusion
		h.notifyEvict(evpn, ee)
	}
	h.L1.Insert(key, e)
}

// Contains reports whether vpn is resident anywhere in the hierarchy
// without perturbing state.
func (h *Hierarchy) Contains(vpn uint64) bool {
	key := vpn | h.asidTag
	if _, ok := h.L1.Peek(key); ok {
		return true
	}
	_, ok := h.L2.Peek(key)
	return ok
}

// Invalidate performs a shootdown of vpn from both levels and reports
// whether it was present. OnEvict fires if it was — under the shared
// topology on every member, since the translation leaves all of them at
// once.
func (h *Hierarchy) Invalidate(vpn uint64) bool {
	key := vpn | h.asidTag
	e, inL2 := h.L2.Peek(key)
	h.dropL1s(key)
	if inL2 {
		h.L2.Invalidate(key)
		h.notifyEvict(key, e)
	}
	return inL2
}

// Update rewrites vpn's entry in both levels (returns whether present in L2).
func (h *Hierarchy) Update(vpn uint64, e Entry) bool {
	key := vpn | h.asidTag
	h.L1.Update(key, e)
	return h.L2.Update(key, e)
}

// Flush clears both levels without firing OnEvict (power-on reset).
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	h.L2.Flush()
}
