package tlb

import (
	"testing"
	"testing/quick"

	"taglessdram/internal/config"
)

func small() *TLB {
	return New(config.TLBConfig{Entries: 8, Ways: 2}) // 4 sets x 2 ways
}

func TestLookupMissThenHit(t *testing.T) {
	tl := small()
	if _, ok := tl.Lookup(5); ok {
		t.Fatal("cold lookup hit")
	}
	tl.Insert(5, Entry{Frame: 42})
	e, ok := tl.Lookup(5)
	if !ok || e.Frame != 42 {
		t.Fatalf("lookup = %+v,%v", e, ok)
	}
	if tl.Hits != 1 || tl.Misses != 1 || tl.Accesses != 2 {
		t.Fatalf("counters = %d/%d/%d", tl.Hits, tl.Misses, tl.Accesses)
	}
}

func TestInsertOverwriteNoEvict(t *testing.T) {
	tl := small()
	tl.Insert(5, Entry{Frame: 1})
	_, _, evicted := tl.Insert(5, Entry{Frame: 2, NC: true})
	if evicted {
		t.Fatal("overwrite should not evict")
	}
	e, _ := tl.Peek(5)
	if e.Frame != 2 || !e.NC {
		t.Fatalf("entry = %+v, want frame 2 NC", e)
	}
}

func TestLRUEviction(t *testing.T) {
	tl := small()
	// VPNs 0, 4, 8 share set 0 (vpn % 4).
	tl.Insert(0, Entry{Frame: 10})
	tl.Insert(4, Entry{Frame: 14})
	tl.Lookup(0) // 0 becomes MRU
	evpn, ee, ok := tl.Insert(8, Entry{Frame: 18})
	if !ok || evpn != 4 || ee.Frame != 14 {
		t.Fatalf("evicted %d %+v (%v), want vpn 4", evpn, ee, ok)
	}
	if _, ok := tl.Peek(0); !ok {
		t.Fatal("MRU entry evicted")
	}
	if tl.Evictions != 1 {
		t.Fatalf("evictions = %d", tl.Evictions)
	}
}

func TestPeekDoesNotPerturb(t *testing.T) {
	tl := small()
	tl.Insert(0, Entry{Frame: 1})
	before := tl.Accesses
	tl.Peek(0)
	tl.Peek(99)
	if tl.Accesses != before {
		t.Fatal("peek changed counters")
	}
	// Peek must not refresh LRU: 0 inserted, then 4; peek(0); insert 8
	// evicts 0 only if peek refreshed... actually 0 is LRU unless peeked.
	tl2 := small()
	tl2.Insert(0, Entry{})
	tl2.Insert(4, Entry{})
	tl2.Peek(0) // must NOT make 0 MRU
	evpn, _, ok := tl2.Insert(8, Entry{})
	if !ok || evpn != 0 {
		t.Fatalf("evicted %d (%v), want 0 — peek refreshed LRU", evpn, ok)
	}
}

func TestInvalidateAndUpdate(t *testing.T) {
	tl := small()
	tl.Insert(3, Entry{Frame: 7})
	if !tl.Update(3, Entry{Frame: 9}) {
		t.Fatal("update missed present entry")
	}
	e, _ := tl.Peek(3)
	if e.Frame != 9 {
		t.Fatalf("frame = %d, want 9", e.Frame)
	}
	if !tl.Invalidate(3) {
		t.Fatal("invalidate missed present entry")
	}
	if tl.Invalidate(3) {
		t.Fatal("double invalidate reported present")
	}
	if tl.Update(3, Entry{}) {
		t.Fatal("update on absent entry reported present")
	}
}

func TestOccupancyAndFlush(t *testing.T) {
	tl := small()
	for v := uint64(0); v < 20; v++ {
		tl.Insert(v, Entry{Frame: v})
	}
	if tl.Occupancy() != 8 {
		t.Fatalf("occupancy = %d, want 8 (capacity)", tl.Occupancy())
	}
	tl.Flush()
	if tl.Occupancy() != 0 {
		t.Fatal("flush left entries")
	}
}

func TestHitRateAndReset(t *testing.T) {
	tl := small()
	tl.Insert(1, Entry{})
	tl.Lookup(1)
	tl.Lookup(2)
	if tl.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", tl.HitRate())
	}
	tl.ResetStats()
	if tl.Accesses != 0 || tl.HitRate() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(config.TLBConfig{Entries: 8, Ways: 0})
}

func TestDefaultGeometry(t *testing.T) {
	c := config.Default()
	l1 := New(c.L1TLB)
	if l1.nsets != 8 || l1.Config().Ways != 4 {
		t.Fatalf("L1 TLB geometry: %d sets x %d ways", l1.nsets, l1.Config().Ways)
	}
}

// --- Hierarchy tests ---

func hier() *Hierarchy {
	return NewHierarchy(
		config.TLBConfig{Entries: 4, Ways: 2},
		config.TLBConfig{Entries: 16, Ways: 4},
	)
}

func TestHierarchyLookupLevels(t *testing.T) {
	h := hier()
	if _, lvl := h.Lookup(9); lvl != MissAll {
		t.Fatalf("cold lookup level = %v", lvl)
	}
	h.Insert(9, Entry{Frame: 90})
	if _, lvl := h.Lookup(9); lvl != InL1 {
		t.Fatalf("level = %v, want L1", lvl)
	}
	// Evict 9 from tiny L1 by filling its set; it must remain in L2.
	h.L1.Flush()
	e, lvl := h.Lookup(9)
	if lvl != InL2 || e.Frame != 90 {
		t.Fatalf("lookup = %+v at %v, want L2 hit", e, lvl)
	}
	// The L2 hit refilled L1.
	if _, lvl := h.Lookup(9); lvl != InL1 {
		t.Fatalf("after refill level = %v, want L1", lvl)
	}
}

func TestHierarchyInclusionOnL2Evict(t *testing.T) {
	h := hier()
	var evicted []uint64
	h.OnEvict = func(vpn uint64, e Entry) { evicted = append(evicted, vpn) }
	// L2 has 4 sets x 4 ways; VPNs congruent mod 4 share a set.
	for i := 0; i < 5; i++ {
		h.Insert(uint64(i*4), Entry{Frame: uint64(i)})
	}
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("evicted = %v, want [0]", evicted)
	}
	// Inclusion: the evicted VPN must not linger in L1.
	if h.Contains(0) {
		t.Fatal("evicted VPN still resident")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h := hier()
	fired := 0
	h.OnEvict = func(uint64, Entry) { fired++ }
	h.Insert(7, Entry{Frame: 70})
	if !h.Invalidate(7) {
		t.Fatal("invalidate missed")
	}
	if fired != 1 {
		t.Fatalf("OnEvict fired %d times, want 1", fired)
	}
	if h.Contains(7) {
		t.Fatal("still resident after shootdown")
	}
	if h.Invalidate(7) {
		t.Fatal("double shootdown reported present")
	}
}

func TestHierarchyUpdate(t *testing.T) {
	h := hier()
	h.Insert(5, Entry{Frame: 50})
	if !h.Update(5, Entry{Frame: 51, NC: true}) {
		t.Fatal("update missed")
	}
	e, lvl := h.Lookup(5)
	if lvl == MissAll || e.Frame != 51 || !e.NC {
		t.Fatalf("entry after update = %+v at %v", e, lvl)
	}
}

func TestHierarchyFlushSilent(t *testing.T) {
	h := hier()
	fired := 0
	h.OnEvict = func(uint64, Entry) { fired++ }
	h.Insert(1, Entry{})
	h.Flush()
	if fired != 0 {
		t.Fatal("flush fired OnEvict")
	}
	if h.Contains(1) {
		t.Fatal("flush left entries")
	}
}

// Property: inclusion — any VPN in L1 is also in L2, always.
func TestHierarchyInclusionProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		h := hier()
		h.OnEvict = func(vpn uint64, e Entry) {}
		live := map[uint64]bool{}
		for _, op := range ops {
			vpn := uint64(op % 64)
			switch op % 3 {
			case 0:
				h.Insert(vpn, Entry{Frame: vpn})
				live[vpn] = true
			case 1:
				h.Lookup(vpn)
			case 2:
				h.Invalidate(vpn)
				delete(live, vpn)
			}
			// Check inclusion for every possible vpn in L1.
			for v := uint64(0); v < 64; v++ {
				if _, inL1 := h.L1.Peek(v); inL1 {
					if _, inL2 := h.L2.Peek(v); !inL2 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: OnEvict fires exactly once per departure — a VPN reported
// evicted is no longer Contains()ed.
func TestHierarchyEvictConsistencyProperty(t *testing.T) {
	f := func(vpns []uint8) bool {
		h := hier()
		ok := true
		h.OnEvict = func(vpn uint64, e Entry) {
			if h.Contains(vpn) {
				ok = false
			}
		}
		for _, v := range vpns {
			h.Insert(uint64(v), Entry{Frame: uint64(v)})
			if !h.Contains(uint64(v)) {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
