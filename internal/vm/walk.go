package vm

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"taglessdram/internal/cache"
	"taglessdram/internal/config"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
	"taglessdram/internal/mmu"
	"taglessdram/internal/sim"
)

func init() {
	RegisterWalk("fixed", newFixedWalk)
	RegisterWalk("pwc", newPWCWalk)
	RegisterWalk("nested", newNestedWalk)
}

// fixedWalk is the paper's constant MissPenalty_TLB: every walk costs
// PageWalkCycles, attributed wholly to pt_walk.
type fixedWalk struct{ p Ports }

func newFixedWalk(p Ports) (WalkModel, error) { return &fixedWalk{p: p}, nil }

func (w *fixedWalk) Name() string { return "fixed" }

func (w *fixedWalk) Walk(at sim.Tick, coreID int, vpn uint64) sim.Tick {
	done := at + sim.Tick(w.p.Cfg.PageWalkCycles)
	w.p.Rec.Add(lat.PTWalk, done-at)
	return done
}

func (w *fixedWalk) Snapshot() ([]byte, error) { return nil, nil }

func (w *fixedWalk) Restore(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("vm: fixed walk carries no state, got %d bytes", len(data))
	}
	return nil
}

// newWalkCache builds one core's MMU page-walk cache: a small SRAM
// holding recently used leaf PTE lines, hit in PWCHitCycles.
func newWalkCache(cfg *config.SystemConfig) *cache.Cache {
	return cache.New(config.CacheConfig{
		SizeBytes:    4 * config.KB,
		Ways:         8,
		LineBytes:    config.BlockSize,
		LatencyCycle: cfg.PWCHitCycles,
	})
}

// encodeCaches serializes per-core walk-cache states for checkpointing.
func encodeCaches(cs []*cache.Cache) ([]byte, error) {
	st := make([]cache.State, len(cs))
	for i, c := range cs {
		st[i] = c.State()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCaches(cs []*cache.Cache, data []byte) error {
	var st []cache.State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if len(st) != len(cs) {
		return fmt.Errorf("vm: walk-cache snapshot holds %d cores, want %d", len(st), len(cs))
	}
	for i, c := range cs {
		c.SetState(st[i])
	}
	return nil
}

// pwcWalk models the walk as memory traffic: the three upper levels hit
// the MMU's page-walk caches (PWCHitCycles each), and the leaf PTE
// access probes a per-core PTE cache before going to off-package DRAM.
// This is the model the legacy MemoryWalk bit selected, with the
// per-level cost lifted out of the old hardcoded constant.
type pwcWalk struct {
	p      Ports
	caches []*cache.Cache
}

func newPWCWalk(p Ports) (WalkModel, error) {
	w := &pwcWalk{p: p, caches: make([]*cache.Cache, p.Cfg.CPU.Cores)}
	for i := range w.caches {
		w.caches[i] = newWalkCache(p.Cfg)
	}
	return w, nil
}

func (w *pwcWalk) Name() string { return "pwc" }

func (w *pwcWalk) Walk(at sim.Tick, coreID int, vpn uint64) sim.Tick {
	// Upper levels (all but the leaf) are PWC hits.
	done := at + sim.Tick((mmu.WalkLevels-1)*w.p.Cfg.PWCHitCycles)
	pc := w.caches[coreID]
	pteAddr := w.p.PTBase + w.p.PTSize/2 + (vpn*8)%(w.p.PTSize/2)
	if hit, _, _ := pc.Access(pteAddr, false); hit {
		done += sim.Tick(pc.Latency())
		w.p.Rec.Add(lat.PTWalk, done-at)
		return done
	}
	r := w.p.OffPkg.Access(done, pteAddr&^uint64(config.BlockSize-1), config.BlockSize, dram.Read)
	w.p.Rec.Add(lat.PTWalk, r.Done-at)
	return r.Done
}

func (w *pwcWalk) Snapshot() ([]byte, error) { return encodeCaches(w.caches) }

func (w *pwcWalk) Restore(data []byte) error { return decodeCaches(w.caches, data) }

// WalkCacheStats reports one core's walk-cache accesses and hits, so
// tests can assert the model exercises walk locality.
func (w *pwcWalk) WalkCacheStats(core int) (accesses, hits uint64) {
	return w.caches[core].Accesses, w.caches[core].Hits
}

// Salts separating the reference streams of the nested walk's table
// dimensions, so a guest-table line and a host-table line never collide
// in the walk cache or the page-table region.
const (
	guestDim = 0x9E3779B97F4A7C15
	hostDim  = 0xC2B2AE3D27D4EB4F
	finalDim = 0x165667B19E3779F9
)

// mix64 is the splitmix64 finalizer: a deterministic 64-bit mixer used
// to scatter table keys across the page-table region.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// nestedWalk models hardware-assisted virtualization's two-dimensional
// walk: reading each of the four guest levels first requires translating
// that table's guest-physical address through the four-level host table,
// and the final guest-physical frame needs one more host walk — up to
// 4×(4+1) + 4 = 24 memory references per miss. Every reference probes
// the core's walk cache first; upper-level tables are shared by many
// walks (their keys are short vpn prefixes), so locality keeps the
// common cost far below the cold-miss worst case.
type nestedWalk struct {
	p      Ports
	caches []*cache.Cache
}

func newNestedWalk(p Ports) (WalkModel, error) {
	w := &nestedWalk{p: p, caches: make([]*cache.Cache, p.Cfg.CPU.Cores)}
	for i := range w.caches {
		w.caches[i] = newWalkCache(p.Cfg)
	}
	return w, nil
}

func (w *nestedWalk) Name() string { return "nested" }

// ref issues one table reference: walk-cache probe, then off-package
// DRAM on a miss. The reference's full duration is attributed to comp,
// so a serial chain of refs conserves exactly.
func (w *nestedWalk) ref(coreID int, at sim.Tick, dim uint64, level int, key uint64, comp lat.Component) sim.Tick {
	slots := w.p.PTSize / 8
	if slots == 0 {
		slots = 1
	}
	addr := w.p.PTBase + mix64(mix64(key)+dim+uint64(level))%slots*8
	pc := w.caches[coreID]
	var done sim.Tick
	if hit, _, _ := pc.Access(addr, false); hit {
		done = at + sim.Tick(pc.Latency())
	} else {
		r := w.p.OffPkg.Access(at, addr&^uint64(config.BlockSize-1), config.BlockSize, dram.Read)
		done = r.Done
		if done < at {
			done = at
		}
	}
	w.p.Rec.Add(comp, done-at)
	return done
}

func (w *nestedWalk) Walk(at sim.Tick, coreID int, vpn uint64) sim.Tick {
	t := at
	for g := 0; g < mmu.WalkLevels; g++ {
		// The guest table page visited at this level, identified by the
		// vpn's index prefix; its guest-physical address must itself be
		// translated by a host walk before the guest PTE can be read.
		gtable := mmu.LevelPrefix(vpn, g)
		for h := 0; h < mmu.WalkLevels; h++ {
			t = w.ref(coreID, t, hostDim, h, mmu.LevelPrefix(gtable, h), lat.PTWalkHost)
		}
		t = w.ref(coreID, t, guestDim, g, gtable, lat.PTWalkGuest)
	}
	// Host walk of the final guest-physical frame.
	for h := 0; h < mmu.WalkLevels; h++ {
		t = w.ref(coreID, t, finalDim, h, mmu.LevelPrefix(vpn, h), lat.PTWalkHost)
	}
	return t
}

func (w *nestedWalk) Snapshot() ([]byte, error) { return encodeCaches(w.caches) }

func (w *nestedWalk) Restore(data []byte) error { return decodeCaches(w.caches, data) }

// WalkCacheStats reports one core's walk-cache accesses and hits.
func (w *nestedWalk) WalkCacheStats(core int) (accesses, hits uint64) {
	return w.caches[core].Accesses, w.caches[core].Hits
}
