package vm

import (
	"taglessdram/internal/config"
	"taglessdram/internal/tlb"
)

// Context-switch cost model constants.
const (
	// ShootdownCyclesPerEntry is the per-entry cost of a context-switch
	// TLB flush, charged as background tlb_shootdown cycles and as a
	// core stall over the quiesced switch.
	ShootdownCyclesPerEntry = 2
	// ForeignInjectEntries is how many foreign-tenant TLB entries each
	// context switch injects under the ASID-retain policy, modeling the
	// capacity the other tenants consumed while scheduled.
	ForeignInjectEntries = 64
	// foreignVPNMask bounds the synthetic foreign vpn stream; the
	// ForeignBit keeps it disjoint from every workload key regardless.
	foreignVPNMask = (uint64(1) << 24) - 1
)

// CtxSched paces per-core context switches by reference count and
// generates the deterministic foreign-tenant key stream the ASID-retain
// policy injects. The per-core state is plain exported data so the
// machine checkpoint can carry it.
type CtxSched struct {
	Interval uint64
	Flush    bool
	Count    []uint64
	RNG      []uint64
}

// NewCtxSched builds the pacer, or returns nil when context switching is
// disabled (CtxSwitchRefs == 0).
func NewCtxSched(cfg *config.SystemConfig) *CtxSched {
	if cfg.CtxSwitchRefs == 0 {
		return nil
	}
	n := cfg.CPU.Cores
	s := &CtxSched{
		Interval: cfg.CtxSwitchRefs,
		Flush:    cfg.CtxSwitchFlush,
		Count:    make([]uint64, n),
		RNG:      make([]uint64, n),
	}
	for i := range s.RNG {
		// Distinct deterministic streams per core.
		s.RNG[i] = guestDim * uint64(i+1)
	}
	return s
}

// Due advances core's reference count by n and reports how many context
// switches fall due. Both the cycle-accurate step (n = 1) and the
// fast-forward visit (n = batch size) use it, so the switch schedule is
// identical across paths.
func (s *CtxSched) Due(core int, n uint64) int {
	s.Count[core] += n
	due := int(s.Count[core] / s.Interval)
	s.Count[core] %= s.Interval
	return due
}

// ForeignVPN returns the next synthetic foreign-tenant TLB key for core:
// ForeignBit keeps it disjoint from every workload vpn.
func (s *CtxSched) ForeignVPN(core int) uint64 {
	s.RNG[core] += guestDim
	return tlb.ForeignBit | (mix64(s.RNG[core]) & foreignVPNMask)
}
