// Package vm is the pluggable virtual-memory layer: timing models for
// page-table walks and TLB arrangements, each behind a name→factory
// registry in the style of internal/org. The machine asks the registry
// for a WalkModel by name ("fixed", "pwc", "nested") and for a TLB
// topology ("private", "shared") and wires the results into its
// translation path; new models join by registering, without touching the
// system layer.
//
// Walk models attribute their own latency components into the machine's
// recorder (pt_walk for the one-dimensional models, ptwalk_guest and
// ptwalk_host for the nested walk), preserving the cycle-accounting
// layer's zero-residue invariant: every cycle a walk adds to the miss
// handler's span is attributed exactly once.
package vm

import (
	"fmt"
	"sort"
	"strings"

	"taglessdram/internal/config"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
	"taglessdram/internal/sim"
	"taglessdram/internal/tlb"
)

// Ports is the narrow view of the machine a walk model operates over:
// the resolved configuration, the off-package DRAM device the page
// tables live in, the latency recorder, and the address region reserved
// for page-table state.
type Ports struct {
	Cfg    *config.SystemConfig
	OffPkg *dram.Device
	Rec    *lat.Recorder
	// PTBase and PTSize delimit the off-package region that holds
	// page-table state; every memory reference a walk issues falls
	// inside it.
	PTBase uint64
	PTSize uint64
}

// WalkModel prices the page-table walk of one TLB miss. Implementations
// attribute their own latency components into Ports.Rec, so the caller
// must not re-attribute the returned duration.
type WalkModel interface {
	// Name returns the registry name the model was built under.
	Name() string
	// Walk performs the walk for core coreID's miss on vpn starting at
	// time at, returning the completion time (always ≥ at).
	Walk(at sim.Tick, coreID int, vpn uint64) sim.Tick
	// Snapshot serializes the model's mutable state (walk caches) for
	// checkpointing; Restore applies a snapshot taken from an
	// identically configured model.
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// WalkFactory builds a walk model over the machine's ports.
type WalkFactory func(Ports) (WalkModel, error)

var walkRegistry = map[string]WalkFactory{}

// RegisterWalk adds a walk model to the registry. Duplicate names panic:
// they are programming errors, caught at init.
func RegisterWalk(name string, f WalkFactory) {
	if _, dup := walkRegistry[name]; dup {
		panic(fmt.Sprintf("vm: walk model %q registered twice", name))
	}
	walkRegistry[name] = f
}

// NewWalk builds the named walk model.
func NewWalk(name string, p Ports) (WalkModel, error) {
	f, ok := walkRegistry[name]
	if !ok {
		return nil, fmt.Errorf("vm: unknown walk model %q (have %s)",
			name, strings.Join(RegisteredWalks(), ", "))
	}
	return f(p)
}

// RegisteredWalks returns the registered walk-model names, sorted.
func RegisteredWalks() []string {
	names := make([]string, 0, len(walkRegistry))
	for n := range walkRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TLBs is a built TLB arrangement: one hierarchy per core, plus the
// shared group when the topology has one (nil under private).
type TLBs struct {
	Cores  []*tlb.Hierarchy
	Shared *tlb.SharedGroup
}

// TopologyFactory builds the per-core TLB hierarchies of one topology.
type TopologyFactory func(l1, l2 config.TLBConfig, cores int) (*TLBs, error)

var topoRegistry = map[string]TopologyFactory{}

// RegisterTopology adds a TLB topology to the registry.
func RegisterTopology(name string, f TopologyFactory) {
	if _, dup := topoRegistry[name]; dup {
		panic(fmt.Sprintf("vm: TLB topology %q registered twice", name))
	}
	topoRegistry[name] = f
}

// NewTopology builds the named TLB topology.
func NewTopology(name string, l1, l2 config.TLBConfig, cores int) (*TLBs, error) {
	f, ok := topoRegistry[name]
	if !ok {
		return nil, fmt.Errorf("vm: unknown TLB topology %q (have %s)",
			name, strings.Join(RegisteredTopologies(), ", "))
	}
	return f(l1, l2, cores)
}

// RegisteredTopologies returns the registered topology names, sorted.
func RegisteredTopologies() []string {
	names := make([]string, 0, len(topoRegistry))
	for n := range topoRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterTopology("private", func(l1, l2 config.TLBConfig, cores int) (*TLBs, error) {
		t := &TLBs{Cores: make([]*tlb.Hierarchy, cores)}
		for i := range t.Cores {
			t.Cores[i] = tlb.NewHierarchy(l1, l2)
		}
		return t, nil
	})
	RegisterTopology("shared", func(l1, l2 config.TLBConfig, cores int) (*TLBs, error) {
		g, hs := tlb.NewSharedGroup(l1, l2, cores)
		return &TLBs{Cores: hs, Shared: g}, nil
	})
}
