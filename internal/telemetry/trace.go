package telemetry

import (
	"io"
	"sort"
	"sync"
	"time"

	"taglessdram/internal/sim"
)

// Span categories of a sweep trace. Job spans carry CatCached or
// CatSimulated — the one-glance distinction chrome://tracing colors by —
// phase spans nest under them as CatPhase, and the sweep-level envelope
// (validate, encode, stream, the whole request) is CatSweep.
const (
	CatSweep     = "sweep"
	CatPhase     = "phase"
	CatCached    = "cached"
	CatSimulated = "simulated"
)

// Trace states reported by TraceSummary.State.
const (
	StateRunning  = "running"
	StateOK       = "ok"
	StateError    = "error"
	StateCanceled = "canceled"
)

// Span is one closed interval of a sweep's timeline, as an offset pair
// from the sweep's start. TID 0 is the sweep-level lane; job i occupies
// lane i+1.
type Span struct {
	Name       string
	Cat        string
	TID        int
	Start, End time.Duration
}

// Trace is one sweep's span timeline plus its progress counters. The
// handler goroutine and the sweep workers append concurrently; /v1/trace
// and /v1/sweeps read it at any time, including mid-sweep.
type Trace struct {
	id      string
	begun   time.Time
	peer    string
	jobs    int
	workers int

	mu        sync.Mutex
	spans     []Span
	state     string
	done      int
	cached    int
	simulated int
	dur       time.Duration
}

// NewTrace starts a trace for one accepted sweep.
func NewTrace(id string, begun time.Time, jobs, workers int, peer string) *Trace {
	return &Trace{id: id, begun: begun, peer: peer, jobs: jobs, workers: workers, state: StateRunning}
}

// ID returns the server-assigned sweep ID.
func (t *Trace) ID() string { return t.id }

// Since returns the current offset from the sweep's start — the
// timestamp source for spans.
func (t *Trace) Since() time.Duration { return time.Since(t.begun) }

// Add records one span.
func (t *Trace) Add(name, cat string, tid int, start, end time.Duration) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Cat: cat, TID: tid, Start: start, End: end})
	t.mu.Unlock()
}

// JobDone counts one completed job (cached = answered without
// simulating: a store hit or a deduplicated duplicate).
func (t *Trace) JobDone(cached bool) {
	t.mu.Lock()
	t.done++
	if cached {
		t.cached++
	} else {
		t.simulated++
	}
	t.mu.Unlock()
}

// Finish closes the trace with a terminal state; later calls are
// ignored.
func (t *Trace) Finish(state string) {
	t.mu.Lock()
	if t.state == StateRunning {
		t.state = state
		t.dur = time.Since(t.begun)
	}
	t.mu.Unlock()
}

// TraceSummary is the /v1/sweeps view of one trace.
type TraceSummary struct {
	ID        string
	State     string
	Peer      string
	Jobs      int
	Done      int
	Cached    int
	Simulated int
	Workers   int
	Spans     int
	Begun     time.Time
	Duration  time.Duration
}

// Summary snapshots the trace's counters (Duration keeps growing until
// Finish).
func (t *Trace) Summary() TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	dur := t.dur
	if t.state == StateRunning {
		dur = time.Since(t.begun)
	}
	return TraceSummary{
		ID: t.id, State: t.state, Peer: t.peer,
		Jobs: t.jobs, Done: t.done, Cached: t.cached, Simulated: t.simulated,
		Workers: t.workers, Spans: len(t.spans),
		Begun: t.begun, Duration: dur,
	}
}

// WriteChrome exports the trace as a Chrome trace_event JSON document of
// complete ("X") events — the same envelope the kernel tracer writes, so
// one chrome://tracing load shows a whole grid's execution. Spans are
// ordered lane-major with enclosing spans first, which is how trace
// viewers infer nesting.
func (t *Trace) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].TID != spans[j].TID {
			return spans[i].TID < spans[j].TID
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End > spans[j].End
	})
	events := make([]sim.TraceEvent, len(spans))
	for i, s := range spans {
		start := s.Start
		if start < 0 {
			start = 0
		}
		end := s.End
		if end < start {
			end = start
		}
		// Truncate both endpoints (not the difference) so a span that
		// shares an endpoint with its enclosing span stays nested after
		// the microsecond rounding.
		ts := uint64(start.Microseconds())
		events[i] = sim.TraceEvent{
			Name:  s.Name,
			Cat:   s.Cat,
			Phase: "X",
			TS:    ts,
			Dur:   uint64(end.Microseconds()) - ts,
			PID:   1,
			TID:   s.TID,
		}
	}
	return sim.WriteTraceJSON(w, events)
}

// DefaultTraceCap bounds how many recent sweeps a TraceStore retains.
const DefaultTraceCap = 64

// TraceStore is a bounded ring of recent sweep traces, newest last;
// adding beyond capacity evicts the oldest.
type TraceStore struct {
	mu  sync.Mutex
	cap int
	ids []string
	m   map[string]*Trace
}

// NewTraceStore returns a store retaining up to capacity traces
// (DefaultTraceCap when capacity <= 0).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceStore{cap: capacity, m: make(map[string]*Trace)}
}

// Add retains a trace, evicting the oldest past capacity.
func (s *TraceStore) Add(t *Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ids = append(s.ids, t.ID())
	s.m[t.ID()] = t
	for len(s.ids) > s.cap {
		delete(s.m, s.ids[0])
		s.ids = s.ids[1:]
	}
}

// Get looks a trace up by sweep ID.
func (s *TraceStore) Get(id string) (*Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.m[id]
	return t, ok
}

// Latest returns the most recently added trace.
func (s *TraceStore) Latest() (*Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ids) == 0 {
		return nil, false
	}
	return s.m[s.ids[len(s.ids)-1]], true
}

// Summaries returns the retained traces newest first.
func (s *TraceStore) Summaries() []TraceSummary {
	s.mu.Lock()
	traces := make([]*Trace, len(s.ids))
	for i, id := range s.ids {
		traces[len(s.ids)-1-i] = s.m[id]
	}
	s.mu.Unlock()
	out := make([]TraceSummary, len(traces))
	for i, t := range traces {
		out[i] = t.Summary()
	}
	return out
}
