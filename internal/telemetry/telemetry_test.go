package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func findSample(t *testing.T, samples []Sample, name string, labels map[string]string) Sample {
	t.Helper()
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
	t.Fatalf("no sample %s%v in %d samples", name, labels, len(samples))
	return Sample{}
}

// TestWritePromRoundTrip pins the exposition writer against the parser:
// every registered family renders, labels (including escapes) survive,
// and counter/gauge values come back exactly.
func TestWritePromRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "Operations.")
	c.Add(42)
	g := reg.Gauge("test_inflight", "In-flight.")
	g.Add(7)
	g.Dec()
	reg.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	reg.CounterFunc("test_fn_total", "From closure.", func() uint64 { return 9 })
	vec := reg.CounterVec("test_http_total", "Requests.", "route", "class")
	vec.With("/v1/sweep", "2xx").Add(3)
	vec.With(`we"ird\nam
e`, "5xx").Inc()
	hv := reg.HistogramVec("test_phase_seconds", "Phases.", "phase")
	h := hv.With("simulate")
	h.Observe(3 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(100 * time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.",
		"# TYPE test_ops_total counter",
		"# TYPE test_phase_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, text)
	}
	if s := findSample(t, samples, "test_ops_total", nil); s.Value != 42 {
		t.Errorf("test_ops_total = %v, want 42", s.Value)
	}
	if s := findSample(t, samples, "test_inflight", nil); s.Value != 6 {
		t.Errorf("test_inflight = %v, want 6", s.Value)
	}
	if s := findSample(t, samples, "test_fn_total", nil); s.Value != 9 {
		t.Errorf("test_fn_total = %v, want 9", s.Value)
	}
	if s := findSample(t, samples, "test_http_total", map[string]string{"route": "/v1/sweep"}); s.Value != 3 || s.Labels["class"] != "2xx" {
		t.Errorf("vec sample = %+v", s)
	}
	weird := findSample(t, samples, "test_http_total", map[string]string{"class": "5xx"})
	if weird.Labels["route"] != "we\"ird\\nam\ne" {
		t.Errorf("escaped label round-trip = %q", weird.Labels["route"])
	}
	if s := findSample(t, samples, "test_phase_seconds_count", map[string]string{"phase": "simulate"}); s.Value != 3 {
		t.Errorf("hist count = %v, want 3", s.Value)
	}
	inf := findSample(t, samples, "test_phase_seconds_bucket", map[string]string{"le": "+Inf"})
	if inf.Value != 3 {
		t.Errorf("+Inf bucket = %v, want 3", inf.Value)
	}
	// Cumulative buckets must be non-decreasing in le order.
	var prev float64 = -1
	var prevLe float64 = -1
	for _, s := range samples {
		if s.Name != "test_phase_seconds_bucket" || s.Labels["le"] == "+Inf" {
			continue
		}
		le, err := parseLe(s.Labels["le"])
		if err != nil {
			t.Fatalf("bad le %q: %v", s.Labels["le"], err)
		}
		if le <= prevLe || s.Value < prev {
			t.Errorf("buckets not cumulative: le=%v cum=%v after le=%v cum=%v", le, s.Value, prevLe, prev)
		}
		prevLe, prev = le, s.Value
	}
}

func parseLe(s string) (float64, error) {
	var v float64
	err := json.Unmarshal([]byte(s), &v)
	return v, err
}

// TestHistQuantile pins the log2 bucket geometry shared with
// internal/lat: a 3ms observation lands in a bucket whose bounds
// bracket 3000µs.
func TestHistQuantile(t *testing.T) {
	var h Hist
	if got := h.Quantile(50); got != 0 {
		t.Errorf("empty hist p50 = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Millisecond)
	}
	p50 := h.Quantile(50)
	if p50 < 2048 || p50 > 4096 {
		t.Errorf("p50 = %vµs, want within the [2048, 4096)µs log2 bucket", p50)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d, want 100", h.Count())
	}
	// Sub-microsecond (and negative) observations land in bucket 0.
	var h0 Hist
	h0.Observe(100 * time.Nanosecond)
	h0.Observe(-time.Second)
	counts, total, _ := h0.Snapshot()
	if counts[0] != 2 || total != 2 {
		t.Errorf("bucket0 = %d, total = %d; want 2, 2", counts[0], total)
	}
}

// TestParsedQuantile checks the client-side quantile over parsed
// cumulative buckets (what sweeptop computes from a scrape).
func TestParsedQuantile(t *testing.T) {
	bounds := []float64{0.001, 0.002, 0.004, math.Inf(+1)}
	cum := []uint64{0, 50, 100, 100}
	p50 := Quantile(bounds, cum, 50)
	if p50 < 0.001 || p50 > 0.002 {
		t.Errorf("p50 = %v, want in (0.001, 0.002]", p50)
	}
	p99 := Quantile(bounds, cum, 99)
	if p99 < 0.002 || p99 > 0.004 {
		t.Errorf("p99 = %v, want in (0.002, 0.004]", p99)
	}
	if !math.IsNaN(Quantile(nil, nil, 50)) {
		t.Error("empty Quantile should be NaN")
	}
}

// TestTraceWriteChrome pins the span export: complete events with
// microsecond ts/dur, lane-major order with enclosing spans first.
func TestTraceWriteChrome(t *testing.T) {
	tr := NewTrace("s42", time.Now(), 2, 2, "peer:1")
	tr.Add("simulate", CatPhase, 1, 10*time.Millisecond, 30*time.Millisecond)
	tr.Add("job0", CatSimulated, 1, 0, 40*time.Millisecond)
	tr.Add("sweep s42", CatSweep, 0, 0, 50*time.Millisecond)
	tr.JobDone(false)
	tr.JobDone(true)
	tr.Finish(StateOK)
	tr.Finish(StateError) // ignored: already finished

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			TS   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	// Sorted: tid 0 first, then tid 1 with the umbrella job span before
	// its nested phase.
	if doc.TraceEvents[0].Name != "sweep s42" || doc.TraceEvents[1].Name != "job0" || doc.TraceEvents[2].Name != "simulate" {
		t.Errorf("order = %s, %s, %s", doc.TraceEvents[0].Name, doc.TraceEvents[1].Name, doc.TraceEvents[2].Name)
	}
	sim := doc.TraceEvents[2]
	if sim.Ph != "X" || sim.TS != 10000 || sim.Dur != 20000 || sim.TID != 1 {
		t.Errorf("simulate span = %+v, want ph=X ts=10000 dur=20000 tid=1", sim)
	}

	sum := tr.Summary()
	if sum.State != StateOK || sum.Done != 2 || sum.Cached != 1 || sum.Simulated != 1 || sum.Spans != 3 {
		t.Errorf("summary = %+v", sum)
	}
}

// TestTraceStoreEviction pins the bounded ring: oldest out first,
// Latest and Summaries track insertion order.
func TestTraceStoreEviction(t *testing.T) {
	s := NewTraceStore(2)
	t0 := time.Now()
	s.Add(NewTrace("a", t0, 1, 1, ""))
	s.Add(NewTrace("b", t0, 1, 1, ""))
	s.Add(NewTrace("c", t0, 1, 1, ""))
	if _, ok := s.Get("a"); ok {
		t.Error("a should have been evicted")
	}
	if _, ok := s.Get("b"); !ok {
		t.Error("b should be retained")
	}
	latest, ok := s.Latest()
	if !ok || latest.ID() != "c" {
		t.Errorf("latest = %v", latest)
	}
	sums := s.Summaries()
	if len(sums) != 2 || sums[0].ID != "c" || sums[1].ID != "b" {
		t.Errorf("summaries = %+v", sums)
	}
}

// TestLoggerLines pins the structured log format: one JSON object per
// line, ts and event first, fields in argument order, and values that
// cannot marshal degrade to strings instead of dropping the line.
func TestLoggerLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	fixed := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	l.SetNow(func() time.Time { return fixed })
	l.Event("sweep",
		F("sweep_id", "s000001"),
		F("jobs", 4),
		F("ratio", 0.5),
		F("bad", func() {}), // unmarshalable
	)
	line := buf.String()
	want := `{"ts":"2026-08-09T12:00:00Z","event":"sweep","sweep_id":"s000001","jobs":4,"ratio":0.5,`
	if !strings.HasPrefix(line, want) {
		t.Errorf("line = %q, want prefix %q", line, want)
	}
	if !strings.HasSuffix(line, "}\n") {
		t.Errorf("line %q should end with }\\n", line)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf("log line is not valid JSON: %v\n%s", err, line)
	}
	if obj["event"] != "sweep" || obj["jobs"] != 4.0 {
		t.Errorf("decoded = %v", obj)
	}
	buf.Reset()
	l.SetOutput(nil)
	l.Event("dropped")
	if buf.Len() != 0 {
		t.Error("SetOutput(nil) should discard")
	}
}
