package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Field is one key/value pair of a structured log event. Fields keep
// the order they were passed in, so every "sweep" line lists sweep_id,
// peer, jobs, ... in the same sequence and the lines stay grep- and
// jq-friendly at once.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes structured JSON-lines events: one object per line with
// "ts" (RFC 3339, UTC) and "event" first, then the caller's fields in
// order. A Logger is safe for concurrent use; each event is a single
// Write.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

// NewLogger returns a logger writing to w; a nil w discards events.
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		w = io.Discard
	}
	return &Logger{w: w, now: time.Now}
}

// SetNow replaces the timestamp source (tests pin it for deterministic
// lines).
func (l *Logger) SetNow(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// SetOutput redirects subsequent events to w (nil discards).
func (l *Logger) SetOutput(w io.Writer) {
	if w == nil {
		w = io.Discard
	}
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

// Event writes one log line. Values marshal as JSON; a value that
// cannot marshal is stringified instead of failing the line.
func (l *Logger) Event(event string, fields ...Field) {
	var b bytes.Buffer
	l.mu.Lock()
	ts := l.now().UTC().Format(time.RFC3339Nano)
	b.WriteString(`{"ts":`)
	writeJSONValue(&b, ts)
	b.WriteString(`,"event":`)
	writeJSONValue(&b, event)
	for _, f := range fields {
		b.WriteByte(',')
		writeJSONValue(&b, f.Key)
		b.WriteByte(':')
		writeJSONValue(&b, f.Value)
	}
	b.WriteString("}\n")
	l.w.Write(b.Bytes())
	l.mu.Unlock()
}

func writeJSONValue(b *bytes.Buffer, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	b.Write(enc)
}
