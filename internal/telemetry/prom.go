// Package telemetry is the sweep service's observability layer: atomic
// counters, gauges and log2 duration histograms behind a hand-rolled
// Prometheus text exposition (no external dependencies), per-sweep span
// traces exported in the Chrome trace_event format shared with the
// kernel tracer (internal/sim), and a structured JSON-lines request
// logger. It lives strictly above the simulation hot path: recording a
// sample is a handful of atomic operations, and nothing here is called
// per memory reference.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"taglessdram/internal/lat"
)

// Label is one name="value" pair on an exposition sample.
type Label struct {
	Name, Value string
}

// emitFunc receives one rendered sample: a metric (or histogram series)
// name, its labels, and the formatted value.
type emitFunc func(name string, labels []Label, value string)

// metricEntry is one registered exposition family: the # HELP / # TYPE
// header plus a collector that renders its current samples.
type metricEntry struct {
	name, help, typ string
	collect         func(emit emitFunc)
}

// Registry holds exposition families in registration order and renders
// them with WriteProm. Construction is not concurrency-safe (register
// everything at server startup); collection is.
type Registry struct {
	mu      sync.Mutex
	entries []*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(e *metricEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, e)
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metricEntry{name: name, help: help, typ: "counter",
		collect: func(emit emitFunc) { emit(name, nil, formatUint(c.Value())) }})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the shape for counters owned elsewhere (the result cache's
// lifetime hit/miss/put counters, the service's sweep and job totals).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&metricEntry{name: name, help: help, typ: "counter",
		collect: func(emit emitFunc) { emit(name, nil, formatUint(fn())) }})
}

// Gauge is an integer metric that can go up and down (in-flight counts).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metricEntry{name: name, help: help, typ: "gauge",
		collect: func(emit emitFunc) { emit(name, nil, strconv.FormatInt(g.Value(), 10)) }})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time
// (uptime, entry counts, version stamps).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metricEntry{name: name, help: help, typ: "gauge",
		collect: func(emit emitFunc) { emit(name, nil, formatFloat(fn())) }})
}

// CounterVec is a family of counters keyed by label values (for example
// HTTP requests by route and status class). Children are created on
// first use and exported in creation order.
type CounterVec struct {
	labels []string
	mu     sync.Mutex
	keys   []string
	m      map[string]*vecChild
}

type vecChild struct {
	values []string
	c      Counter
}

// With returns the child counter for the given label values, creating it
// on first use. The number of values must match the vec's label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: CounterVec got %d label values, want %d", len(values), len(v.labels)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.m[key]
	if !ok {
		ch = &vecChild{values: append([]string(nil), values...)}
		v.m[key] = ch
		v.keys = append(v.keys, key)
	}
	return &ch.c
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, m: make(map[string]*vecChild)}
	r.register(&metricEntry{name: name, help: help, typ: "counter",
		collect: func(emit emitFunc) {
			v.mu.Lock()
			keys := append([]string(nil), v.keys...)
			children := make([]*vecChild, len(keys))
			for i, k := range keys {
				children[i] = v.m[k]
			}
			v.mu.Unlock()
			for _, ch := range children {
				ls := make([]Label, len(v.labels))
				for i, ln := range v.labels {
					ls[i] = Label{ln, ch.values[i]}
				}
				emit(name, ls, formatUint(ch.c.Value()))
			}
		}})
	return v
}

// Hist is a log2-bucketed duration histogram sharing internal/lat's
// bucket geometry (bucket 0 = sub-microsecond, bucket b holds durations
// of [2^(b-1), 2^b) microseconds), so quantiles come from the same
// interpolation the latency attribution layer uses. Observations are
// lock-free.
type Hist struct {
	counts [lat.NumBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // microseconds
}

// Observe records one duration. Negative durations count as zero.
func (h *Hist) Observe(d time.Duration) {
	us := uint64(0)
	if d > 0 {
		us = uint64(d.Microseconds())
	}
	h.counts[bits.Len64(us)].Add(1)
	h.total.Add(1)
	h.sum.Add(us)
}

// Snapshot returns a consistent-enough copy of the bucket counts plus
// the sample count and the summed microseconds. (Individual loads are
// atomic; a scrape racing an observation may be off by that one sample,
// which Prometheus semantics allow.)
func (h *Hist) Snapshot() (counts [lat.NumBuckets]uint64, total, sumUS uint64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.total.Load(), h.sum.Load()
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Quantile estimates the p-th quantile (0 < p <= 100) in microseconds.
func (h *Hist) Quantile(p float64) float64 {
	counts, _, _ := h.Snapshot()
	return lat.QuantileOf(&counts, p)
}

// HistVec is a family of histograms keyed by one label (the sweep
// service's per-phase durations). Children are created on first use and
// exported in creation order.
type HistVec struct {
	label string
	mu    sync.Mutex
	keys  []string
	m     map[string]*Hist
}

// With returns the child histogram for the given label value.
func (v *HistVec) With(value string) *Hist {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.m[value]
	if !ok {
		h = &Hist{}
		v.m[value] = h
		v.keys = append(v.keys, value)
	}
	return h
}

// HistogramVec registers and returns a one-label histogram family.
// Exported buckets are cumulative with le bounds in seconds.
func (r *Registry) HistogramVec(name, help, label string) *HistVec {
	v := &HistVec{label: label, m: make(map[string]*Hist)}
	r.register(&metricEntry{name: name, help: help, typ: "histogram",
		collect: func(emit emitFunc) {
			v.mu.Lock()
			keys := append([]string(nil), v.keys...)
			hists := make([]*Hist, len(keys))
			for i, k := range keys {
				hists[i] = v.m[k]
			}
			v.mu.Unlock()
			for i, h := range hists {
				emitHist(emit, name, Label{label, keys[i]}, h)
			}
		}})
	return v
}

// emitHist renders one histogram as cumulative _bucket / _sum / _count
// series. Buckets above the highest occupied one collapse into +Inf.
func emitHist(emit emitFunc, name string, l Label, h *Hist) {
	counts, total, sumUS := h.Snapshot()
	hi := -1
	for i, c := range counts {
		if c != 0 {
			hi = i
		}
	}
	var cum uint64
	for i := 0; i <= hi; i++ {
		cum += counts[i]
		_, boundUS := lat.BucketBounds(i)
		emit(name+"_bucket", []Label{l, {"le", formatFloat(float64(boundUS) / 1e6)}}, formatUint(cum))
	}
	emit(name+"_bucket", []Label{l, {"le", "+Inf"}}, formatUint(total))
	emit(name+"_sum", []Label{l}, formatFloat(float64(sumUS)/1e6))
	emit(name+"_count", []Label{l}, formatUint(total))
}

// WriteProm renders every registered family in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*metricEntry(nil), r.entries...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, e.typ)
		e.collect(func(name string, labels []Label, value string) {
			bw.WriteString(name)
			writeLabels(bw, labels)
			bw.WriteByte(' ')
			bw.WriteString(value)
			bw.WriteByte('\n')
		})
	}
	return bw.Flush()
}

func writeLabels(bw *bufio.Writer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Name)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one parsed exposition line: metric name, labels, value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseProm parses text-exposition output (the subset WriteProm emits:
// no timestamps, no exemplars) into samples. cmd/sweeptop scrapes
// /metrics through it; the CI smoke test carries its own independent
// parser so the writer is not checked against itself.
func ParseProm(r io.Reader) ([]Sample, error) {
	var samples []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: exposition line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

func parsePromLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++ // skip the escaped byte
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		rest := strings.TrimSpace(body[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		var b strings.Builder
		i := 1
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(rest) {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		into[name] = b.String()
		body = strings.TrimSpace(rest[i+1:])
		body = strings.TrimPrefix(body, ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

// Quantile estimates the p-th quantile from parsed cumulative histogram
// buckets: pairs of (upper bound, cumulative count) as scraped from
// name_bucket{le=...} samples, in any order. Used by cmd/sweeptop to
// turn two scrapes' bucket deltas into phase latencies.
func Quantile(bounds []float64, cum []uint64, p float64) float64 {
	if len(bounds) == 0 || len(bounds) != len(cum) || p <= 0 || p > 100 {
		return math.NaN()
	}
	type bc struct {
		bound float64
		cum   uint64
	}
	bcs := make([]bc, len(bounds))
	for i := range bounds {
		bcs[i] = bc{bounds[i], cum[i]}
	}
	sort.Slice(bcs, func(i, j int) bool { return bcs[i].bound < bcs[j].bound })
	total := bcs[len(bcs)-1].cum
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(total)))
	if target == 0 {
		target = 1
	}
	var prevCum uint64
	lo := 0.0
	for _, b := range bcs {
		if b.cum >= target {
			n := b.cum - prevCum
			if n == 0 || math.IsInf(b.bound, +1) {
				return lo
			}
			frac := float64(target-prevCum) / float64(n)
			return lo + frac*(b.bound-lo)
		}
		prevCum = b.cum
		lo = b.bound
	}
	return lo
}
