package taglessdram_test

import (
	"context"
	"fmt"
	"log"

	"taglessdram"
)

// ExampleRun simulates one workload on the proposed tagless design.
func ExampleRun() {
	opts := taglessdram.DefaultOptions()
	r, err := taglessdram.Run(taglessdram.Tagless, "sphinx3", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPC %.2f, L3 hit %.0f%%, EDP %.3g J·s\n",
		r.IPC, r.L3HitRate*100, r.EDPJs)
}

// ExampleRunFigure8 regenerates the paper's average-L3-latency comparison.
func ExampleRunFigure8() {
	rows, err := taglessdram.RunFigure8(context.Background(), taglessdram.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rows {
		fmt.Printf("%-12s SRAM %.0f cyc, tagless %.0f cyc (%.1f%% lower)\n",
			row.Workload, row.SRAMTagLat, row.TaglessLat, row.ReductionPC)
	}
}

// ExampleOptions shows the design-space knobs: replacement policy,
// non-cacheable classification, superpages and the shared-page alias table.
func ExampleOptions() {
	opts := taglessdram.DefaultOptions()
	opts.Policy = taglessdram.CLOCK // second-chance victim selection
	opts.NCAccessThreshold = 32     // Section 5.4's low-reuse bypass
	opts.Superpages = true          // Section 6: 2MB-equivalent regions
	r, err := taglessdram.Run(taglessdram.Tagless, "lbm", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Ctrl.ColdFills, "region fills,", r.NCAccesses, "bypassed accesses")
}
