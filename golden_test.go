package taglessdram_test

import (
	"fmt"
	"testing"

	"taglessdram"
)

// fingerprint flattens every paper-relevant metric of a Result into one
// string. Two runs are considered byte-identical exactly when their
// fingerprints match. Throughput denominators (References, KernelEvents)
// are deliberately excluded: they are wall-clock reporting aids, not
// simulated metrics.
func fingerprint(r *taglessdram.Result) string {
	return fmt.Sprintf("cyc=%d in=%d ipc=%v pc=%v l3=%d,%d,%v,%v tlb=%d,%d,%v nc=%d e=%v,%v,%v,%v edp=%v row=%v,%v b=%d,%d ctrl=%+v km=%v kc=%v sram=%v",
		r.Cycles, r.Instructions, r.IPC, r.PerCoreIPC,
		r.L3Accesses, r.L3Hits, r.L3HitRate, r.AvgL3Latency,
		r.TLBLookups, r.TLBMisses, r.TLBMissRate, r.NCAccesses,
		r.Energy.CoreJ, r.Energy.InPkgJ, r.Energy.OffPkgJ, r.Energy.TagJ,
		r.EDPJs, r.InPkgRowHitRate, r.OffPkgRowHitRate, r.InPkgBytes, r.OffPkgBytes,
		r.Ctrl, r.MissKindMean, r.MissKindCount, r.SRAMHitRate)
}

// goldenOptions is the fixed configuration the golden fingerprints were
// captured under: default 64× scale, 200k+200k instructions, seed 1.
func goldenOptions() taglessdram.Options {
	o := taglessdram.DefaultOptions()
	o.Warmup, o.Measure = 200_000, 200_000
	return o
}

// golden maps workload/design to the expected fingerprint. These values
// pin the simulator's exact behavior: any change to replacement order,
// event ordering, RNG consumption, or latency accounting shows up here.
// They were captured before the hot-path optimization work (arena page
// table, pooled events, SoA caches, scheduler heap) and have survived it
// unchanged — that is the PR's determinism invariant.
var golden = map[string]string{
	"sphinx3/NoL3":        `cyc=209221 in=800120 ipc=3.8242815013789246 pc=[0.9800395876611924 0.9560703753447312 0.959031523432818 1.0176432881228314] l3=6332,0,0,219.6822488945036 tlb=28920,216,0.007468879668049793 nc=0 e=0.0013948066666666665,0,0.00011447047199999999,0 edp=1.0525749074299287e-07 row=0,0.9214296961108487 b=0,405248 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"sphinx3/BI":          `cyc=187355 in=800120 ipc=4.270609271169705 pc=[1.1100567153908478 1.0860394281774106 1.0676523177924262 1.161256988267258] l3=6332,784,0.12381554011370816,185.70467466835075 tlb=28920,216,0.007468879668049793 nc=0 e=0.0012490333333333335,2.9290112000000002e-06,9.9634008e-05,0 edp=8.440944487629422e-08 row=0.9693877551020408,0.9294054248248608 b=50176,355072 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"sphinx3/SRAM":        `cyc=272704 in=800120 ipc=2.93402370335602 pc=[0.7543263556039929 0.7480805262705177 0.733505925839005 0.7716551835878127] l3=6332,6116,0.9658875552747946,283.55337965887543 tlb=28920,216,0.007468879668049793 nc=0 e=0.0018180266666666667,8.2679392e-05,0.00023681030399999998,1.15272e-07 edp=1.9431356576671288e-07 row=0.8179527559055119,0.5 b=1276160,884736 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0.9658875552747946`,
	"sphinx3/cTLB":        `cyc=247241 in=800120 ipc=3.2361946440922016 pc=[0.8398622832430617 0.8144975100473559 0.8090486610230504 0.8509923209461615] l3=6332,6332,1,235.68145925457995 tlb=28920,216,0.007468879668049793 nc=0 e=0.0016482733333333334,6.972218079999999e-05,0.000247349376,0 edp=1.6197127866048515e-07 row=0.96269224912441,0.5 b=1289984,912384 ctrl={Walks:216 NonCacheable:0 VictimHits:0 ColdFills:216 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 707.5324074074077 0] kc=[0 0 216 0] sram=0`,
	"sphinx3/Ideal":       `cyc=114304 in=800120 ipc=6.999930011198209 pc=[1.7862373196170882 1.7712585561094827 1.7499825027995521 1.8440533589003716] l3=6332,6332,1,86.48357548957688 tlb=28920,216,0.007468879668049793 nc=0 e=0.0007620266666666667,2.4438697600000002e-05,0,0 edp=2.9965378999045694e-08 row=0.9612659423712802,0 b=405248,0 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"GemsFDTD/NoL3":       `cyc=381907 in=800000 ipc=2.094750816298209 pc=[0.5436348513430499 0.5502683934088852 0.5238523050811055 0.5236877040745522] l3=10452,0,0,309.2589934940692 tlb=32000,369,0.01153125 nc=0 e=0.0025460466666666665,0,0.000186976992,0 edp=3.479202888034702e-07 row=0,0.9338811389260463 b=0,668928 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"GemsFDTD/BI":         `cyc=349618 in=800000 ipc=2.2882117053469786 pc=[0.6015869864703087 0.6126212224243872 0.585269355589176 0.5720529263367446] l3=10452,1237,0.11835055491771909,278.3044393417533 tlb=32000,369,0.01153125 nc=0 e=0.002330786666666667,4.6684016e-06,0.00016423164,0 edp=2.9131182252359185e-07 row=0.9668820678513732,0.9383398352839185 b=79168,589760 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"GemsFDTD/SRAM":       `cyc=441937 in=800000 ipc=1.8102127678832052 pc=[0.46096757093138496 0.45921799767176474 0.4525531919708013 0.4565188610767454] l3=10452,10083,0.9646957520091849,337.6494450822807 tlb=32000,369,0.01153125 nc=0 e=0.0029462466666666663,0.0001278248832,0.000404550936,1.9035e-07 edp=5.12472036081469e-07 row=0.8891649149627365,0.5 b=2156736,1511424 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0.9646957520091849`,
	"GemsFDTD/cTLB":       `cyc=424987 in=800000 ipc=1.8824105207924007 pc=[0.48159233690273523 0.48674117051516685 0.47060263019810017 0.47787898192661693] l3=10452,10452,1,317.7223497895133 tlb=32000,369,0.01153125 nc=0 e=0.0028332466666666665,0.0001188940224,0.000422555184,0 edp=4.780672916689944e-07 row=0.9553299492385787,0.5 b=2180352,1558656 ctrl={Walks:369 NonCacheable:0 VictimHits:0 ColdFills:369 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 766.8536585365857 0] kc=[0 0 369 0] sram=0`,
	"GemsFDTD/Ideal":      `cyc=197949 in=800000 ipc=4.041445018666424 pc=[1.052764559733861 1.0548745754129834 1.010361254666606 1.0287324986883661] l3=10452,10452,1,134.63040566398868 tlb=32000,369,0.01153125 nc=0 e=0.0013196599999999998,4.15541136e-05,0,0 edp=8.981699085766878e-08 row=0.9534683737817695,0 b=668928,0 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"MIX1/NoL3":           `cyc=460838 in=800007 ipc=1.7359831437511664 pc=[0.43399198850789217 0.4426346706329708 0.47737053789876954 0.4354176552793003] l3=10277,0,0,366.74642405371236 tlb=43379,224,0.005163788930127481 nc=0 e=0.003072253333333333,0,0.000191415192,0 edp=5.013408252925209e-07 row=0,0.8850184358626043 b=0,657728 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"MIX1/BI":             `cyc=426122 in=800007 ipc=1.8774130413355798 pc=[0.47167030245858144 0.47650306295315864 0.5164109039359831 0.46941955590183093] l3=10277,1080,0.10508903376471733,330.87681229930996 tlb=43379,224,0.005163788930127481 nc=0 e=0.0028408133333333334,3.913944e-06,0.000170812512,0 edp=4.2832928203676617e-07 row=0.9768946395563771,0.888551604509974 b=69120,588608 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"MIX1/SRAM":           `cyc=581323 in=800007 ipc=1.3761832922488875 pc=[0.3861928338057759 0.3774854562820179 0.5309883947844234 0.344094419109514] l3=10277,10053,0.9782037559599105,398.9464824365077 tlb=43379,224,0.005163788930127481 nc=0 e=0.003875486666666667,0.0001056578752,0.00024558105599999997,1.8633e-07 edp=8.190670408810781e-07 row=0.8334950514263536,0.5 b=1560896,917504 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0.9782037559599105`,
	"MIX1/cTLB":           `cyc=554608 in=800007 ipc=1.442472881747108 pc=[0.40902221195122 0.3924036723889954 0.5601969731346795 0.360669157314716] l3=10277,10277,1,372.35243748175617 tlb=43379,224,0.005163788930127481 nc=0 e=0.0036973866666666667,9.52468784e-05,0.000256510464,0 edp=7.485625535268153e-07 row=0.9075973409306742,0.5 b=1575232,946176 ctrl={Walks:224 NonCacheable:0 VictimHits:0 ColdFills:224 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 596.9241071428575 0] kc=[0 0 224 0] sram=0`,
	"MIX1/Ideal":          `cyc=266031 in=800007 ipc=3.0071946502475275 pc=[0.7517920843811435 0.7775224720848496 0.8447284722896858 0.7566976613983188] l3=10277,10277,1,189.397489539749 tlb=43379,224,0.005163788930127481 nc=0 e=0.00177354,4.81206736e-05,0,0 edp=1.6153940355282723e-07 row=0.9065592858529012,0 b=657728,0 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"streamcluster/NoL3":  `cyc=375328 in=800048 ipc=2.1315968965811236 pc=[0.5328992241452809 0.5517435429189345 0.5432938472946948 0.5592582443700054] l3=9785,0,0,476.7062851303026 tlb=25808,368,0.01425914445133292 nc=0 e=0.0025021866666666667,0,0.00016817735999999998,0 edp=3.3408746313358224e-07 row=0,0.9806102663537095 b=0,626240 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"streamcluster/BI":    `cyc=353507 in=800048 ipc=2.2631744208742686 pc=[0.6955414987324516 0.625244612277817 0.6294376626605364 0.5657936052185671] l3=9495,1009,0.1062664560294892,407.4202211690359 tlb=25808,355,0.01375542467451953 nc=0 e=0.0023567133333333335,3.4862912000000002e-06,0.000145374456,0 edp=2.952459921623657e-07 row=0.9881188118811881,0.984349258649094 b=64576,543104 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"streamcluster/SRAM":  `cyc=272287 in=800048 ipc=2.938252652532071 pc=[0.7601839534795333 0.7586413548521687 0.7345631631330177 0.766467524803317] l3=9940,9825,0.988430583501006,312.79637826961726 tlb=25808,370,0.014336639801611904 nc=0 e=0.0018152466666666667,7.285680799999999e-05,0.00012607956,1.7961e-07 edp=1.828282538094509e-07 row=0.8891902752662246,0.5 b=1099840,471040 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0.988430583501006`,
	"streamcluster/cTLB":  `cyc=247301 in=800048 ipc=3.235118337572432 pc=[0.9222923122325513 0.8506334712694518 0.808779584393108 0.8213606665763225] l3=9683,9683,1,262.66177837447145 tlb=25808,366,0.014181649101053937 nc=0 e=0.0016486733333333334,5.7571502399999994e-05,0.00013169064,0 edp=1.5150776036144305e-07 row=0.9882784629497503,0.5 b=1090752,485760 ctrl={Walks:366 NonCacheable:0 VictimHits:250 ColdFills:115 PendingWaits:1 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 40 531.2347826086955 270] kc=[0 250 115 1] sram=0`,
	"streamcluster/Ideal": `cyc=185533 in=800048 ipc=4.312160100898493 pc=[1.127304494856982 1.134794103963598 1.0780400252246232 1.0882815433082862] l3=9797,9797,1,197.75186281514831 tlb=25808,354,0.013716676999380038 nc=0 e=0.0012368866666666667,3.38278096e-05,0,0 edp=7.858648964172783e-08 row=0.9882784629497503,0 b=627008,0 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
}

// goldenBanshee pins the Banshee baseline (registered through the
// internal/org registry but not part of the paper's five plotted designs,
// so it is fingerprinted separately from the design grid above).
var goldenBanshee = map[string]string{
	"sphinx3/Banshee":       `cyc=265426 in=800120 ipc=3.0144748442126996 pc=[0.777763952936785 0.7570012110202846 0.7536187110531749 0.7924333960582352] l3=6332,5903,0.9322488945041061,276.8957675300051 tlb=28920,216,0.007468879668049793 nc=0 e=0.0017695066666666666,7.8997288e-05,0.00023766631199999998,0 edp=1.8457460973342223e-07 row=0.8371372676882948,0.6640746500777605 b=1250240,887808 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"GemsFDTD/Banshee":      `cyc=417819 in=800000 ipc=1.9147046927018638 pc=[0.5002025820457285 0.4998213138802878 0.47867617317546596 0.4904437044193882] l3=10452,9755,0.9333141982395714,309.7105817068497 tlb=32000,369,0.01153125 nc=0 e=0.00278546,0.0001150317696,0.000367201296,0 edp=4.5510141632530877e-07 row=0.9057145686837674,0.64 b=1967808,1369664 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"MIX1/Banshee":          `cyc=614877 in=800007 ipc=1.3010846071653355 pc=[0.3452156562204409 0.3445937796157491 0.5386859308461209 0.3253170959395131] l3=10277,9835,0.9569913398851805,445.6015374136413 tlb=43379,224,0.005163788930127481 nc=0 e=0.00409918,0.00010194524159999999,0.0002433282,0 edp=9.109307329368945e-07 row=0.8413013291013688,0.6606060606060606 b=1522368,908800 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
	"streamcluster/Banshee": `cyc=262479 in=800048 ipc=3.0480457484217784 pc=[0.8556004243523493 0.8259975386750142 0.7620114371054446 0.801034874965958] l3=9446,9221,0.9761803938174889,301.2601100995134 tlb=25808,350,0.013561686298822071 nc=0 e=0.00174986,6.57790448e-05,0.000122916216,0 edp=1.696100154331744e-07 row=0.9108518835616438,0.6567164179104478 b=1040704,458944 ctrl={Walks:0 NonCacheable:0 VictimHits:0 ColdFills:0 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 0 0] kc=[0 0 0 0] sram=0`,
}

// goldenVariants cover the tagless design's feature knobs: replacement
// policies, superpages, the alias table, hot-page filtering, NC
// classification, eviction pressure, memory-modeled walks, and
// synchronous eviction.
var goldenVariants = map[string]struct {
	workload string
	mod      func(*taglessdram.Options)
	want     string
}{
	"lru":        {"MIX1", func(o *taglessdram.Options) { o.Policy = taglessdram.LRU }, `cyc=554608 in=800007 ipc=1.442472881747108 pc=[0.40902221195122 0.3924036723889954 0.5601969731346795 0.360669157314716] l3=10277,10277,1,372.35243748175617 tlb=43379,224,0.005163788930127481 nc=0 e=0.0036973866666666667,9.52468784e-05,0.000256510464,0 edp=7.485625535268153e-07 row=0.9075973409306742,0.5 b=1575232,946176 ctrl={Walks:224 NonCacheable:0 VictimHits:0 ColdFills:224 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 596.9241071428575 0] kc=[0 0 224 0] sram=0`},
	"clock":      {"MIX1", func(o *taglessdram.Options) { o.Policy = taglessdram.CLOCK }, `cyc=554608 in=800007 ipc=1.442472881747108 pc=[0.40902221195122 0.3924036723889954 0.5601969731346795 0.360669157314716] l3=10277,10277,1,372.35243748175617 tlb=43379,224,0.005163788930127481 nc=0 e=0.0036973866666666667,9.52468784e-05,0.000256510464,0 edp=7.485625535268153e-07 row=0.9075973409306742,0.5 b=1575232,946176 ctrl={Walks:224 NonCacheable:0 VictimHits:0 ColdFills:224 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 596.9241071428575 0] kc=[0 0 224 0] sram=0`},
	"super":      {"lbm", func(o *taglessdram.Options) { o.Superpages = true }, `cyc=554408 in=799976 ipc=1.44293733135164 pc=[0.3722099699431432 0.36073433283791 0.3781291122774643 0.3632687906419152] l3=14879,14877,0.9998655823644063,635.0676120707005 tlb=42104,57,0.0013537906137184115 nc=4 e=0.0036960533333333335,0.0001495886416,0.000485138712,0 edp=8.003398196937784e-07 row=0.9627624885874527,0.11066398390342053 b=2754368,1809408 ctrl={Walks:57 NonCacheable:2 VictimHits:0 ColdFills:55 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[40 0 2547.327272727273 0] kc=[2 0 55 0] sram=0`},
	"alias":      {"MIX1", func(o *taglessdram.Options) { o.SharedAliasTable = true }, `cyc=574349 in=800007 ipc=1.3928935194454939 pc=[0.3955305052902205 0.3832304921048597 0.5417224211626912 0.34827256598340034] l3=10277,10277,1,378.460640264668 tlb=43379,224,0.005163788930127481 nc=0 e=0.0038289933333333333,9.51268784e-05,0.000256510464,0 edp=8.003803493255881e-07 row=0.9083570750237417,0.5 b=1575232,946176 ctrl={Walks:224 NonCacheable:0 VictimHits:0 ColdFills:224 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 0 652.660714285714 0] kc=[0 0 224 0] sram=0`},
	"hot":        {"MIX1", func(o *taglessdram.Options) { o.HotFilterThreshold = 8 }, `cyc=650026 in=800007 ipc=1.2307307707691693 pc=[0.33175473372535685 0.31963233131736757 0.5668675347645421 0.30772615249236185] l3=10777,10015,0.9292938665676904,434.97494664563646 tlb=43379,441,0.010166209456188478 nc=1545 e=0.004333506666666667,9.36253504e-05,0.000261474264,0 edp=1.0159053288188805e-06 row=0.9005944839684241,0.8127090301003345 b=1529792,965376 ctrl={Walks:441 NonCacheable:224 VictimHits:0 ColdFills:217 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[40 0 603.3870967741943 0] kc=[224 0 217 0] sram=0`},
	"nc":         {"GemsFDTD", func(o *taglessdram.Options) { o.NCAccessThreshold = 32 }, `cyc=394947 in=800000 ipc=2.025588243485835 pc=[0.5225220047079233 0.5203956047387224 0.5063970608714587 0.5069066024584971] l3=10452,10411,0.9960773057787983,288.4397244546508 tlb=32000,369,0.01153125 nc=82 e=0.00263298,0.0001093963504,0.000376912344,0 edp=4.1065123732906566e-07 row=0.9597321677671348,0.47058823529411764 b=2009792,1388096 ctrl={Walks:369 NonCacheable:41 VictimHits:0 ColdFills:328 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[40 0 733.4664634146341 0] kc=[41 0 328 0] sram=0`},
	"smallcache": {"milc", func(o *taglessdram.Options) { o.CacheMB = 2 }, `cyc=771391 in=800000 ipc=1.037087547041643 pc=[0.26670222696359513 0.2764810050637496 0.26736824093086925 0.25927188676041074] l3=12133,12133,1,560.3114646006759 tlb=32000,416,0.013 nc=0 e=0.005142606666666666,0.00019476276959999998,0.000788834616,0 edp=1.5752328900273452e-06 row=0.9585568773812301,0.37242614145031333 b=3647808,2924544 ctrl={Walks:416 NonCacheable:0 VictimHits:0 ColdFills:416 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:291 Writebacks:285 SyncEvictions:167 Shootdowns:291} km=[0 0 1601.5865384615377 0] kc=[0 0 416 0] sram=0`},
	"memwalk":    {"mcf", func(o *taglessdram.Options) { o.MemoryWalk = true }, `cyc=524810 in=800052 ipc=1.5244602808635506 pc=[0.3958474344816121 0.38111507021588764 0.3877596124206841 0.3962662260472636] l3=19105,19105,1,124.85668673122261 tlb=72732,2103,0.028914370565913217 nc=0 e=0.003498733333333333,0.00015246968959999998,0.00018861744,0 edp=6.717253923840142e-07 row=0.8008273009307135,0.8588342440801457 b=1849408,696960 ctrl={Walks:2103 NonCacheable:0 VictimHits:1950 ColdFills:153 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:0 Writebacks:0 SyncEvictions:0 Shootdowns:0} km=[0 33.26769230769227 1109.7254901960782 0] kc=[0 1950 153 0] sram=0`},
	"sync":       {"milc", func(o *taglessdram.Options) { o.CacheMB = 2; o.SynchronousEviction = true }, `cyc=846595 in=800000 ipc=0.9449618766942871 pc=[0.24355641070917539 0.25353651749845657 0.24232731149964257 0.23624046917357178] l3=12133,12133,1,604.0360998928523 tlb=32000,416,0.013 nc=0 e=0.005643966666666667,0.00019428305439999998,0.000787738272,0 edp=1.8698427683300915e-06 row=0.9599533437013997,0.3727598566308244 b=3643712,2920448 ctrl={Walks:416 NonCacheable:0 VictimHits:0 ColdFills:416 PendingWaits:0 AliasHits:0 Rescues:0 Evictions:290 Writebacks:284 SyncEvictions:290 Shootdowns:290} km=[0 0 1884.6850961538462 0] kc=[0 0 416 0] sram=0`},
}

// TestGoldenDeterminism runs every (workload, design) pair and feature
// variant at fixed seeds and compares against the pinned fingerprints.
// Subtests run in parallel: each simulation is fully isolated, so
// parallelism cannot change the metrics — the same property that makes
// -j 1 and -j N sweeps byte-identical.
func TestGoldenDeterminism(t *testing.T) {
	for _, wl := range []string{"sphinx3", "GemsFDTD", "MIX1", "streamcluster"} {
		for _, d := range taglessdram.Designs() {
			key := wl + "/" + d.String()
			want, ok := golden[key]
			if !ok {
				t.Fatalf("missing golden entry for %s", key)
			}
			t.Run(key, func(t *testing.T) {
				t.Parallel()
				r, err := taglessdram.Run(d, wl, goldenOptions())
				if err != nil {
					t.Fatal(err)
				}
				if got := fingerprint(r); got != want {
					t.Errorf("fingerprint changed:\n got: %s\nwant: %s", got, want)
				}
			})
		}
	}
	for key, want := range goldenBanshee {
		key, want := key, want
		t.Run(key, func(t *testing.T) {
			t.Parallel()
			wl := key[:len(key)-len("/Banshee")]
			r, err := taglessdram.Run(taglessdram.Banshee, wl, goldenOptions())
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(r); got != want {
				t.Errorf("fingerprint changed:\n got: %s\nwant: %s", got, want)
			}
		})
	}
	for name, v := range goldenVariants {
		t.Run("variant/"+name, func(t *testing.T) {
			t.Parallel()
			o := goldenOptions()
			v.mod(&o)
			r, err := taglessdram.Run(taglessdram.Tagless, v.workload, o)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(r); got != v.want {
				t.Errorf("fingerprint changed:\n got: %s\nwant: %s", got, v.want)
			}
		})
	}
}
