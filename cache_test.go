package taglessdram_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	taglessdram "taglessdram"
)

func cacheMetricsBytes(t *testing.T, rs ...*taglessdram.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := taglessdram.WriteMetricsJSON(&buf, rs...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func smallOptions() taglessdram.Options {
	o := taglessdram.DefaultOptions()
	o.Warmup, o.Measure = 50_000, 50_000
	return o
}

// TestCacheHitBitIdentityAllOrganizations replays every registered
// organization from the cache and asserts the replayed Result serializes
// byte-for-byte like the freshly simulated one — the soundness claim the
// whole cache rests on, checked per organization because each exercises
// a different slice of the Result (tag energy, cTLB counters, alias
// tables, frequency counters, ...).
func TestCacheHitBitIdentityAllOrganizations(t *testing.T) {
	store, err := taglessdram.OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	orgs := taglessdram.Organizations()
	for _, d := range orgs {
		o := smallOptions()
		o.EpochRefs = 10_000 // include the epoch series in the round trip
		fresh, err := taglessdram.Run(d, "sphinx3", o)
		if err != nil {
			t.Fatalf("%v: fresh: %v", d, err)
		}
		o.ResultCache = store
		miss, err := taglessdram.Run(d, "sphinx3", o)
		if err != nil {
			t.Fatalf("%v: store: %v", d, err)
		}
		hit, err := taglessdram.Run(d, "sphinx3", o)
		if err != nil {
			t.Fatalf("%v: hit: %v", d, err)
		}
		fb, mb, hb := cacheMetricsBytes(t, fresh), cacheMetricsBytes(t, miss), cacheMetricsBytes(t, hit)
		if !bytes.Equal(fb, mb) {
			t.Errorf("%v: cached run differs from uncached run", d)
		}
		if !bytes.Equal(fb, hb) {
			t.Errorf("%v: cache hit is not bit-identical to the fresh simulation", d)
		}
	}
	st := store.Stats()
	want := uint64(len(orgs))
	if st.Hits != want || st.Misses != want || st.Stored != want || st.Evicted != 0 {
		t.Errorf("stats = %+v, want %d hits, %d misses, %d stored, 0 evicted", st, want, want, want)
	}
}

// TestCorruptEntriesAreMissesNotErrors damages cache entries three ways
// — flipped payload bytes, truncation, garbage — and asserts each
// lookup degrades to a miss that evicts the bad entry and re-stores a
// good one. A damaged cache may cost time, never correctness.
func TestCorruptEntriesAreMissesNotErrors(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bitflip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0xff
			return c
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)/3] }},
		{"garbage", func(b []byte) []byte { return []byte("not a cache entry") }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := taglessdram.OpenResultCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			o := smallOptions()
			o.ResultCache = store
			fresh, err := taglessdram.Run(taglessdram.Tagless, "sphinx3", o)
			if err != nil {
				t.Fatal(err)
			}
			entries, err := filepath.Glob(filepath.Join(dir, "*.res"))
			if err != nil || len(entries) != 1 {
				t.Fatalf("want exactly one entry, got %v (%v)", entries, err)
			}
			data, err := os.ReadFile(entries[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(entries[0], tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			r, err := taglessdram.Run(taglessdram.Tagless, "sphinx3", o)
			if err != nil {
				t.Fatalf("corrupt entry surfaced as an error: %v", err)
			}
			if !bytes.Equal(cacheMetricsBytes(t, r), cacheMetricsBytes(t, fresh)) {
				t.Errorf("re-simulated result differs from the original")
			}
			st := store.Stats()
			if st.Hits != 0 {
				t.Errorf("stats = %+v: corrupt entry produced a hit", st)
			}
			if st.Evicted != 1 {
				t.Errorf("stats = %+v, want the corrupt entry evicted", st)
			}
			if st.Misses != 2 || st.Stored != 2 {
				t.Errorf("stats = %+v, want 2 misses and 2 stores (initial + heal)", st)
			}

			// The slot must have healed: next lookup is a clean hit.
			if _, err := taglessdram.Run(taglessdram.Tagless, "sphinx3", o); err != nil {
				t.Fatal(err)
			}
			if st := store.Stats(); st.Hits != 1 {
				t.Errorf("stats after heal = %+v, want 1 hit", st)
			}
		})
	}
}

// TestConcurrentSweepSharesCache runs a wide sweep twice against one
// store with 8 workers — first cold (concurrent writers), then warm
// (concurrent readers) — and asserts the warm pass simulates nothing and
// reproduces the cold pass byte-for-byte. Under -race this is also the
// store's concurrency test.
func TestConcurrentSweepSharesCache(t *testing.T) {
	store, err := taglessdram.OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := smallOptions()
	o.ResultCache = store
	var jobs []taglessdram.Job
	for _, d := range []taglessdram.Design{taglessdram.SRAMTag, taglessdram.Tagless} {
		for _, w := range []string{"sphinx3", "mcf", "milc", "MIX1"} {
			jobs = append(jobs, taglessdram.Job{Design: d, Workload: w, Options: o})
		}
	}
	// Duplicate the grid so the single-flight and the store interact
	// under contention.
	jobs = append(jobs, jobs...)

	cold, err := taglessdram.Sweep(context.Background(), jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Stored != 8 {
		t.Errorf("cold stats = %+v, want 8 stored (16 jobs, 8 distinct)", st)
	}

	warm, err := taglessdram.Sweep(context.Background(), jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	wst := store.Stats()
	if wst.Misses != st.Misses {
		t.Errorf("warm sweep missed: cold %+v, warm %+v", st, wst)
	}
	if wst.Hits <= st.Hits {
		t.Errorf("warm sweep produced no hits: cold %+v, warm %+v", st, wst)
	}
	if !bytes.Equal(cacheMetricsBytes(t, cold...), cacheMetricsBytes(t, warm...)) {
		t.Errorf("warm sweep output differs from cold sweep")
	}
}
