package taglessdram

import (
	"fmt"
	"math"

	"taglessdram/internal/amat"
	"taglessdram/internal/dram"
	"taglessdram/internal/lat"
)

// LatencySummary re-exports the cycle-accounting summary carried on
// Result.Latency: per-component stall attribution for the L3-access and
// TLB-miss-handler scopes, background write-back attribution, and the
// latency histograms behind the tail metrics.
type LatencySummary = lat.Summary

// LatencyBreakdown re-exports one scope's attributed-cycle accumulator.
type LatencyBreakdown = lat.Breakdown

// LatencyHist re-exports the log2-bucketed latency histogram.
type LatencyHist = lat.Hist

// BucketRow re-exports one non-empty histogram bucket (LatencyHist.Rows).
type BucketRow = lat.BucketRow

// BankStat re-exports one DRAM bank's measured-window telemetry, carried
// on Result.InPkgBankStats and Result.OffPkgBankStats.
type BankStat = dram.BankStat

// LatencyComponentNames returns the stable metric-key names of the
// attribution components in enum order, indexing the Cycles arrays of a
// LatencyBreakdown.
func LatencyComponentNames() []string {
	out := make([]string, lat.NumComponents)
	for c := lat.Component(0); c < lat.NumComponents; c++ {
		out[c] = c.String()
	}
	return out
}

// CheckLatencyAttribution verifies the cycle-accounting invariants of a
// run: every committed scope's attributed cycles summed exactly to its
// measured stall cycles (zero residue), every L3 access and TLB miss was
// committed, and the two scopes' measured totals reproduce the run's
// AvgL3Latency. A non-nil error means the attribution in some
// organization or handler path dropped or double-counted cycles.
func CheckLatencyAttribution(r *Result) error {
	s := &r.Latency
	if s.L3.Residue != 0 {
		return fmt.Errorf("taglessdram: L3 attribution residue %d cycles over %d commits", s.L3.Residue, s.L3.Commits)
	}
	if s.Handler.Residue != 0 {
		return fmt.Errorf("taglessdram: handler attribution residue %d cycles over %d commits", s.Handler.Residue, s.Handler.Commits)
	}
	if s.L3.Commits != r.L3Accesses {
		return fmt.Errorf("taglessdram: %d L3 commits for %d L3 accesses", s.L3.Commits, r.L3Accesses)
	}
	if s.Handler.Commits != r.TLBMisses {
		return fmt.Errorf("taglessdram: %d handler commits for %d TLB misses", s.Handler.Commits, r.TLBMisses)
	}
	if r.L3Accesses > 0 {
		got := float64(s.L3.Measured+s.Handler.Measured) / float64(r.L3Accesses)
		if relErr(got, r.AvgL3Latency) > 1e-9 {
			return fmt.Errorf("taglessdram: attributed stall %.4f cycles/access, AvgL3Latency %.4f", got, r.AvgL3Latency)
		}
	}
	return nil
}

// CheckLatencyModel cross-checks the measured attribution against the
// paper's analytic model: the component means reconstructed from the
// breakdown are fed through the Figure 8 closed forms (Equations 1–5)
// and the result must match the run's measured AvgL3Latency within the
// relative tolerance tol. Only the tagless and SRAM-tag designs have
// closed forms; other designs return nil.
func CheckLatencyModel(r *Result, tol float64) error {
	if r.L3Accesses == 0 || r.TLBLookups == 0 {
		return nil
	}
	s := &r.Latency
	var model float64
	switch r.Design {
	case Tagless:
		if r.Ctrl.Walks == 0 {
			return nil
		}
		in := amat.Inputs{
			MissRateTLB: r.TLBMissRate,
			MissRateL12: float64(r.L3Accesses) / float64(r.TLBLookups),
			BlockInPkg:  float64(s.L3.Measured) / float64(r.L3Accesses),
			// Equation 5's inputs, reconstructed from the handler
			// breakdown's per-event means.
			MissRateVictim: float64(r.Ctrl.ColdFills) / float64(r.Ctrl.Walks),
			MissPenaltyTLB: float64(s.Handler.Cycles[lat.PTWalk]) / float64(r.Ctrl.Walks),
		}
		if r.Ctrl.ColdFills > 0 {
			fills := float64(r.Ctrl.ColdFills)
			in.GIPTAccess = float64(s.Handler.Cycles[lat.GIPTUpdate]) / fills
			in.PageOffPkg = float64(s.Handler.Cycles[lat.OffPkgQueue]+s.Handler.Cycles[lat.OffPkgService]) / fills
		}
		model = amat.AvgL3LatencyTagless(in)
	case SRAMTag:
		misses := r.L3Accesses - r.L3Hits
		in := amat.Inputs{
			MissRateTLB:    r.TLBMissRate,
			MissRateL12:    float64(r.L3Accesses) / float64(r.TLBLookups),
			MissRateL3:     float64(misses) / float64(r.L3Accesses),
			TagAccess:      float64(s.L3.Cycles[lat.VictimProbe]) / float64(r.L3Accesses),
			BlockInPkg:     float64(s.L3.Cycles[lat.InPkgQueue]+s.L3.Cycles[lat.InPkgService]) / float64(r.L3Accesses),
			MissPenaltyTLB: s.HandlerLat.Mean(),
		}
		if misses > 0 {
			in.PageOffPkg = float64(s.L3.Cycles[lat.OffPkgQueue]+s.L3.Cycles[lat.OffPkgService]) / float64(misses)
		}
		model = amat.AvgL3LatencySRAMFig8(in)
	default:
		return nil
	}
	if e := relErr(model, r.AvgL3Latency); e > tol {
		return fmt.Errorf("taglessdram: %v analytic model %.3f vs measured %.3f cycles/access (%.2f%% > %.2f%% tolerance)",
			r.Design, model, r.AvgL3Latency, e*100, tol*100)
	}
	return nil
}

// relErr is |a-b| relative to max(|a|,|b|), 0 when both are zero.
func relErr(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
