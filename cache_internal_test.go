package taglessdram

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

// countSimulations installs a simulateHook that counts actual machine
// executions, restoring the previous hook on cleanup. The counter is
// written by sweep workers; Sweep's completion is the happens-before
// edge that makes the final Load race-free.
func countSimulations(t *testing.T) *atomic.Int64 {
	t.Helper()
	var n atomic.Int64
	prev := simulateHook
	simulateHook = func(Design, string) { n.Add(1) }
	t.Cleanup(func() { simulateHook = prev })
	return &n
}

func metricsBytes(t *testing.T, rs ...*Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, rs...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepDedupsIdenticalJobs is the single-flight regression test: a
// grid containing repeated cells must simulate each distinct cell once,
// with every duplicate receiving an equal but independent Result.
func TestSweepDedupsIdenticalJobs(t *testing.T) {
	n := countSimulations(t)
	o := DefaultOptions()
	o.Warmup, o.Measure = 50_000, 50_000
	a := Job{Design: Tagless, Workload: "sphinx3", Options: o}
	b := Job{Design: SRAMTag, Workload: "sphinx3", Options: o}
	jobs := []Job{a, a, b, a, b}

	res, err := Sweep(context.Background(), jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 2 {
		t.Errorf("parallel sweep of %d jobs (2 distinct) ran %d simulations, want 2", len(jobs), got)
	}
	if len(res) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(res), len(jobs))
	}
	for _, dup := range []int{1, 3} {
		if res[dup] == res[0] {
			t.Errorf("res[%d] aliases res[0]: duplicates must receive private clones", dup)
		}
		if !bytes.Equal(metricsBytes(t, res[dup]), metricsBytes(t, res[0])) {
			t.Errorf("res[%d] metrics differ from res[0]: clone is not bit-identical", dup)
		}
	}
	if res[4] == res[2] {
		t.Errorf("res[4] aliases res[2]")
	}
	if !bytes.Equal(metricsBytes(t, res[4]), metricsBytes(t, res[2])) {
		t.Errorf("res[4] metrics differ from res[2]")
	}

	// A serial sweep must dedup too: the flight memoizes completed calls,
	// not just concurrent ones.
	n.Store(0)
	if _, err := Sweep(context.Background(), jobs, 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 2 {
		t.Errorf("serial sweep ran %d simulations, want 2", got)
	}
}

// TestRunUsesResultCache pins the read-through contract of a single Run:
// first call simulates and stores, second call replays without touching
// the machine.
func TestRunUsesResultCache(t *testing.T) {
	n := countSimulations(t)
	store, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Warmup, o.Measure = 50_000, 50_000
	o.ResultCache = store

	r1, err := Run(Tagless, "sphinx3", o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Tagless, "sphinx3", o)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("two identical cached Runs executed %d simulations, want 1", got)
	}
	if st := store.Stats(); st.Hits != 1 || st.Misses != 1 || st.Stored != 1 || st.Evicted != 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 stored, 0 evicted", st)
	}
	if !bytes.Equal(metricsBytes(t, r1), metricsBytes(t, r2)) {
		t.Errorf("cache hit is not bit-identical to the fresh run")
	}
}

// TestModelVersionBumpInvalidates: bumping the model-version stamp must
// orphan every existing entry — the old results answer a different
// simulator generation and may never be replayed.
func TestModelVersionBumpInvalidates(t *testing.T) {
	n := countSimulations(t)
	store, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Warmup, o.Measure = 50_000, 50_000
	o.ResultCache = store

	if _, err := Run(Tagless, "sphinx3", o); err != nil {
		t.Fatal(err)
	}

	old := modelVersion
	t.Cleanup(func() { modelVersion = old })
	modelVersion++

	if _, err := Run(Tagless, "sphinx3", o); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 2 {
		t.Errorf("run after model-version bump executed %d simulations, want 2 (old entry must not hit)", got)
	}
	st := store.Stats()
	if st.Hits != 0 {
		t.Errorf("stats = %+v: a cache hit crossed a model-version bump", st)
	}
	if st.Stored != 2 {
		t.Errorf("stats = %+v, want both generations stored (under distinct keys)", st)
	}
	if store.Len() != 2 {
		t.Errorf("store holds %d entries, want 2 distinct keys across versions", store.Len())
	}
}

// TestIncrementalInvalidation is the incremental-sweep acceptance test:
// after editing a knob only one organization consumes, a re-run must
// re-simulate only that organization's cells and replay the rest.
func TestIncrementalInvalidation(t *testing.T) {
	n := countSimulations(t)
	store, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Warmup, o.Measure = 50_000, 50_000
	o.ResultCache = store
	grid := func(oo Options) []Job {
		var jobs []Job
		for _, d := range []Design{NoL3, SRAMTag, Tagless} {
			jobs = append(jobs, Job{Design: d, Workload: "sphinx3", Options: oo})
		}
		return jobs
	}

	if _, err := Sweep(context.Background(), grid(o), 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 3 {
		t.Fatalf("cold sweep ran %d simulations, want 3", got)
	}

	// Edit a tagless-only knob: only the cTLB cell may re-simulate.
	n.Store(0)
	edited := o
	edited.Alpha = 4
	if _, err := Sweep(context.Background(), grid(edited), 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("after a tagless-only config edit, %d cells re-simulated, want 1 (the cTLB cell)", got)
	}

	// Edit a knob every design consumes: everything re-simulates.
	n.Store(0)
	global := o
	global.MSHRs = 16
	if _, err := Sweep(context.Background(), grid(global), 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("after a global config edit, %d cells re-simulated, want 3", got)
	}

	// Walk-model-aware projection: under the default fixed walk, editing
	// the walk-cache hit cost touches nothing (no model consumes it)...
	n.Store(0)
	pwcEdit := o
	pwcEdit.PWCHitCycles = 3
	if _, err := Sweep(context.Background(), grid(pwcEdit), 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 0 {
		t.Errorf("PWCHitCycles edit under the fixed walk re-simulated %d cells, want 0", got)
	}

	// ...switching the walk model re-simulates every cell (all designs
	// route TLB-miss walks through it)...
	n.Store(0)
	pwc := o
	pwc.WalkModel = "pwc"
	if _, err := Sweep(context.Background(), grid(pwc), 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("switching to the pwc walk re-simulated %d cells, want 3", got)
	}

	// ...and once a walk-cache-bearing model is active, its hit cost is
	// semantic again.
	n.Store(0)
	pwcCost := pwc
	pwcCost.PWCHitCycles = 3
	if _, err := Sweep(context.Background(), grid(pwcCost), 1); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("PWCHitCycles edit under the pwc walk re-simulated %d cells, want 3", got)
	}
}

// TestFingerprintSemantics pins the facade-level key behavior:
// stability, sensitivity to semantic knobs, insensitivity to execution
// mechanics, and auditability of the stored preimage.
func TestFingerprintSemantics(t *testing.T) {
	o := DefaultOptions()
	j := Job{Design: Tagless, Workload: "sphinx3", Options: o}
	fp1, err := j.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := j.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("Fingerprint not stable: %s vs %s", fp1, fp2)
	}
	if len(fp1) != 64 {
		t.Errorf("Fingerprint %q is not a sha256 hex digest", fp1)
	}

	distinct := map[string]Job{
		"design":   {Design: SRAMTag, Workload: "sphinx3", Options: o},
		"workload": {Design: Tagless, Workload: "mcf", Options: o},
	}
	seed := o
	seed.Seed++
	distinct["seed"] = Job{Design: Tagless, Workload: "sphinx3", Options: seed}
	cap := o
	cap.CacheMB = 8
	distinct["capacity"] = Job{Design: Tagless, Workload: "sphinx3", Options: cap}
	for name, dj := range distinct {
		fp, err := dj.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == fp1 {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}

	mech := o
	mech.Workers = 8
	mech.EpochCapacity = 7
	mech.ExtraDesigns = []Design{AlloyBlock}
	fp, err := (Job{Design: Tagless, Workload: "sphinx3", Options: mech}).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != fp1 {
		t.Errorf("non-semantic options changed the fingerprint")
	}

	// The stored preimage must reproduce the key it is filed under.
	store, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ro := o
	ro.Warmup, ro.Measure = 50_000, 50_000
	ro.ResultCache = store
	if _, err := Run(Tagless, "sphinx3", ro); err != nil {
		t.Fatal(err)
	}
	key, pre, err := (Job{Design: Tagless, Workload: "sphinx3", Options: ro}).fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	stored, ok := store.Preimage(key)
	if !ok {
		t.Fatalf("no preimage stored under %s", key)
	}
	if stored != pre {
		t.Errorf("stored preimage differs from the job's:\nstored: %s\n   job: %s", stored, pre)
	}
	if !strings.Contains(stored, "model=") || !strings.Contains(stored, "options{") {
		t.Errorf("stored preimage not auditable: %s", stored)
	}
}
