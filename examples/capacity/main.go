// Capacity: the paper's cache-size sensitivity study (Figure 10 style).
// Sweeps the DRAM-cache capacity across the paper's 256MB/512MB/1GB points
// for one multi-programmed mix and reports IPC normalized to the
// bank-interleaving baseline: small caches thrash and lose to BI; the
// crossover appears at 512MB and the tagless design pulls ahead at 1GB.
//
//	go run ./examples/capacity
//	go run ./examples/capacity MIX3
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"taglessdram"
)

func main() {
	mix := "MIX5"
	if len(os.Args) > 1 {
		mix = os.Args[1]
	}
	opts := taglessdram.DefaultOptions()
	opts.Warmup, opts.Measure = 3_000_000, 3_000_000

	fmt.Printf("DRAM-cache size sweep on %s (normalized to bank interleaving)\n\n", mix)
	fmt.Printf("%-22s %10s %10s\n", "cache (paper scale)", "SRAM/BI", "cTLB/BI")

	rows, err := taglessdram.RunFigure10(context.Background(), opts, []string{mix})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%-22s %10.3f %10.3f\n",
			fmt.Sprintf("%dMB (scaled %dMB)", r.CacheMB<<opts.Shift, r.CacheMB),
			r.SRAMNorm, r.CTLBNorm)
	}
	fmt.Println()
	fmt.Println("Values < 1: the page cache loses to OS-oblivious interleaving (thrashing);")
	fmt.Println("values > 1: it wins. The paper's crossover falls between 256MB and 1GB.")
}
