// Quickstart: simulate one workload on the proposed tagless DRAM cache and
// on the SRAM-tag baseline, and compare the metrics the paper leads with —
// IPC, average L3 latency, and energy-delay product.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"taglessdram"
)

func main() {
	opts := taglessdram.DefaultOptions()
	// The default budgets let the cache warm fully (the simulator runs
	// tens of millions of instructions per second).
	opts.Warmup, opts.Measure = 3_000_000, 3_000_000

	fmt.Println("Tagless DRAM cache quickstart — workload: sphinx3 (4 SimPoint slices)")
	fmt.Println()

	baseline, err := taglessdram.Run(taglessdram.NoL3, "sphinx3", opts)
	if err != nil {
		log.Fatal(err)
	}

	for _, design := range []taglessdram.Design{taglessdram.SRAMTag, taglessdram.Tagless} {
		r, err := taglessdram.Run(design, "sphinx3", opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v:\n", design)
		fmt.Printf("  IPC           %.3f  (%+.1f%% vs no DRAM cache)\n",
			r.IPC, (r.IPC/baseline.IPC-1)*100)
		fmt.Printf("  L3 hit rate   %.1f%%\n", r.L3HitRate*100)
		fmt.Printf("  L3 latency    %.1f cycles\n", r.AvgL3Latency)
		fmt.Printf("  energy        %.4g J (tags: %.4g J)\n", r.Energy.TotalJ(), r.Energy.TagJ)
		fmt.Printf("  EDP           %.4g J*s (%.2fx vs no DRAM cache)\n",
			r.EDPJs, r.EDPJs/baseline.EDPJs)
		if design == taglessdram.Tagless {
			fmt.Printf("  cTLB handler  %d victim hits, %d cold fills — a cTLB hit always hits the cache\n",
				r.Ctrl.VictimHits, r.Ctrl.ColdFills)
		}
		fmt.Println()
	}
}
