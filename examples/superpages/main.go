// Superpages: the Section 6 extension. Mapping application memory as
// 2MB-equivalent superpages gives the cTLB enormous reach (one entry per
// region), but a fill then moves a whole region — great for streaming
// programs, catastrophic for first-touch-dominated ones. This example runs
// both kinds and shows the judicious-application trade-off the paper
// describes.
//
//	go run ./examples/superpages
package main

import (
	"fmt"
	"log"

	"taglessdram"
)

func main() {
	opts := taglessdram.DefaultOptions()

	fmt.Println("Superpage study (2MB-equivalent regions on the tagless cache)")
	fmt.Println()
	fmt.Printf("%-10s %-16s %8s %11s %12s %8s\n",
		"workload", "config", "IPC", "cTLB miss", "off-pkg MB", "fills")

	for _, wl := range []string{"lbm", "GemsFDTD"} {
		for _, super := range []bool{false, true} {
			o := opts
			o.Superpages = super
			r, err := taglessdram.Run(taglessdram.Tagless, wl, o)
			if err != nil {
				log.Fatal(err)
			}
			cfg := "4KB pages"
			if super {
				cfg = "2MB superpages"
			}
			fmt.Printf("%-10s %-16s %8.3f %10.3f%% %12.2f %8d\n",
				wl, cfg, r.IPC, r.TLBMissRate*100,
				float64(r.OffPkgBytes)/1e6, r.Ctrl.ColdFills)
		}
		fmt.Println()
	}

	fmt.Println("lbm streams sequentially: superpages cut cTLB misses to nearly zero")
	fmt.Println("and every prefetched page gets used. GemsFDTD touches most pages once:")
	fmt.Println("each region fill over-fetches, multiplying off-package traffic —")
	fmt.Println("exactly why Section 6 says superpages must be applied judiciously.")
}
