// Mixes: the paper's multi-programmed study (Figure 9 style). Four
// memory-bound SPEC programs share the machine; the DRAM cache absorbs
// their combined footprint and contention. Prints normalized IPC and EDP
// for every design over a selection of Table 5's mixes.
//
//	go run ./examples/mixes
//	go run ./examples/mixes MIX3 MIX7     # choose specific mixes
package main

import (
	"fmt"
	"log"
	"os"

	"taglessdram"
)

func main() {
	mixes := os.Args[1:]
	if len(mixes) == 0 {
		mixes = []string{"MIX1", "MIX5"}
	}
	opts := taglessdram.DefaultOptions()
	opts.Warmup, opts.Measure = 3_000_000, 3_000_000

	fmt.Printf("%-6s %-6s %9s %9s %9s %10s\n",
		"mix", "design", "IPC", "normIPC", "normEDP", "L3 hit")
	for _, mix := range mixes {
		var baseIPC, baseEDP float64
		for _, d := range taglessdram.Designs() {
			r, err := taglessdram.Run(d, mix, opts)
			if err != nil {
				log.Fatal(err)
			}
			if d == taglessdram.NoL3 {
				baseIPC, baseEDP = r.IPC, r.EDPJs
			}
			fmt.Printf("%-6s %-6v %9.3f %9.3f %9.3f %9.1f%%\n",
				mix, d, r.IPC, r.IPC/baseIPC, r.EDPJs/baseEDP, r.L3HitRate*100)
		}
		fmt.Println()
	}
	fmt.Println("normIPC > 1 and normEDP < 1 mean the design beats the no-cache baseline.")
}
