// Noncacheable: the paper's Section 5.4 case study. GemsFDTD has many
// low-reuse pages; caching them at page granularity wastes off-package
// bandwidth and cache capacity (over-fetching). The tagless cache's NC bit
// lets software bypass the DRAM cache for such pages — this example runs
// GemsFDTD with and without the offline classification (threshold 32
// accesses, as in the paper) and shows the bandwidth and IPC effect.
//
//	go run ./examples/noncacheable
package main

import (
	"fmt"
	"log"

	"taglessdram"
)

func main() {
	opts := taglessdram.DefaultOptions()
	opts.Warmup, opts.Measure = 3_000_000, 3_000_000

	base, err := taglessdram.Run(taglessdram.Tagless, "GemsFDTD", opts)
	if err != nil {
		log.Fatal(err)
	}

	opts.NCAccessThreshold = 32
	nc, err := taglessdram.Run(taglessdram.Tagless, "GemsFDTD", opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GemsFDTD on the tagless cache (Section 5.4 case study)")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s\n", "", "tagless", "tagless+NC")
	fmt.Printf("%-28s %12.3f %12.3f\n", "IPC", base.IPC, nc.IPC)
	fmt.Printf("%-28s %12d %12d\n", "off-package bytes", base.OffPkgBytes, nc.OffPkgBytes)
	fmt.Printf("%-28s %12d %12d\n", "cold fills (page moves)", base.Ctrl.ColdFills, nc.Ctrl.ColdFills)
	fmt.Printf("%-28s %12d %12d\n", "non-cacheable accesses", base.NCAccesses, nc.NCAccesses)
	fmt.Printf("%-28s %12.4g %12.4g\n", "EDP (J*s)", base.EDPJs, nc.EDPJs)
	fmt.Println()
	fmt.Printf("IPC gain from non-cacheable pages: %+.1f%%\n", (nc.IPC/base.IPC-1)*100)
	fmt.Printf("off-package traffic change:        %+.1f%%\n",
		(float64(nc.OffPkgBytes)/float64(base.OffPkgBytes)-1)*100)
}
