// Replay: record a workload trace to a file with the trace tooling, read
// it back, and drive the simulator from the recorded stream. Replayed
// traces are bit-identical to their source generation, which decouples
// workload preparation from simulation (e.g. for sharing workloads between
// machines or diffing simulator versions on frozen inputs).
//
//	go run ./examples/replay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"taglessdram/internal/config"
	"taglessdram/internal/system"
	"taglessdram/internal/trace"
)

func main() {
	const accesses = 200_000
	dir, err := os.MkdirTemp("", "taglessdram-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sphinx3.trace")

	// 1. Record a trace.
	p, err := trace.ProfileByName("sphinx3")
	if err != nil {
		log.Fatal(err)
	}
	g := trace.NewGenerator(p.Scaled(6), 42)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Record(f, g, accesses); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("recorded %d accesses to %s (%d bytes)\n", accesses, path, info.Size())

	// 2. Read it back and characterize it.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	recorded, err := trace.ReadAll(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := trace.NewReplay(recorded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(trace.Analyze(rep, uint64(len(recorded))).String())

	// 3. Drive the tagless cache from the recording.
	rep2, _ := trace.NewReplay(recorded)
	cfg := config.Default()
	cfg.Design = config.Tagless
	cfg.CacheSize >>= 6
	cfg.InPkg.SizeBytes >>= 6
	cfg.OffPkg.SizeBytes >>= 6
	m, err := system.New(cfg, system.Workload{
		Name:    "sphinx3-replay",
		Sources: []trace.Source{rep2},
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := m.Run(1_000_000, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed simulation: %v\n", r)
	fmt.Printf("the replay wrapped %d times to fill the instruction budget\n", rep2.Wraps)
}
