package taglessdram

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"taglessdram/internal/config"
)

// TestOptionsFieldsClassified is the stale-hit firewall: every exported
// Options field must be classified as semantic (hashed into the cache
// key) or non-semantic (ignored), in exactly one of the two sets. Adding
// an Options field without classifying it fails this test, so a new
// result-affecting knob can never silently alias two different runs onto
// one cache entry.
func TestOptionsFieldsClassified(t *testing.T) {
	typ := reflect.TypeOf(Options{})
	seen := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		seen[f.Name] = true
		sem, non := semanticOptionFields[f.Name], nonSemanticOptionFields[f.Name]
		switch {
		case sem && non:
			t.Errorf("Options.%s classified both semantic and non-semantic", f.Name)
		case !sem && !non:
			t.Errorf("Options.%s unclassified: add it to semanticOptionFields (it can change a Result) or nonSemanticOptionFields (it never can) in canonical.go", f.Name)
		}
	}
	for name := range semanticOptionFields {
		if !seen[name] {
			t.Errorf("semanticOptionFields lists %q, which is not an exported Options field", name)
		}
	}
	for name := range nonSemanticOptionFields {
		if !seen[name] {
			t.Errorf("nonSemanticOptionFields lists %q, which is not an exported Options field", name)
		}
	}
}

// TestCanonicalCoversExactlySemanticFields mutates every exported
// Options field and asserts Canonical() changes exactly for the
// semantic ones — i.e. the classification tables and the canonical
// encoder cannot drift apart.
func TestCanonicalCoversExactlySemanticFields(t *testing.T) {
	base := DefaultOptions()
	baseCanon := base.Canonical()
	typ := reflect.TypeOf(Options{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		o := base
		fv := reflect.ValueOf(&o).Elem().Field(i)
		if !mutateField(fv) {
			t.Errorf("Options.%s: no mutation rule for kind %v — extend mutateField", f.Name, fv.Kind())
			continue
		}
		got := o.Canonical()
		switch {
		case semanticOptionFields[f.Name] && got == baseCanon:
			t.Errorf("Options.%s is classified semantic but Canonical() ignores it", f.Name)
		case nonSemanticOptionFields[f.Name] && got != baseCanon:
			t.Errorf("Options.%s is classified non-semantic but changes Canonical():\n got: %s\nbase: %s", f.Name, got, baseCanon)
		}
	}
}

// mutateField sets v to a value different from its current one, covering
// every kind Options uses. Returns false for kinds it cannot mutate.
func mutateField(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1)
	case reflect.String:
		v.SetString(v.String() + "mutated")
	case reflect.Ptr:
		v.Set(reflect.New(v.Type().Elem()))
	case reflect.Slice:
		v.Set(reflect.MakeSlice(v.Type(), 1, 1))
	case reflect.Func:
		v.Set(reflect.MakeFunc(v.Type(), func(args []reflect.Value) []reflect.Value {
			out := make([]reflect.Value, 0, v.Type().NumOut())
			for i := 0; i < v.Type().NumOut(); i++ {
				out = append(out, reflect.Zero(v.Type().Out(i)))
			}
			return out
		}))
	case reflect.Interface:
		if !reflect.TypeOf(&bytes.Buffer{}).Implements(v.Type()) {
			return false
		}
		v.Set(reflect.ValueOf(&bytes.Buffer{}))
	default:
		return false
	}
	return true
}

// TestConfigFieldsCanonical walks the resolved SystemConfig recursively
// and asserts every field is a plain value kind. The cache preimage
// embeds the whole config via %+v, which is deterministic exactly when
// the struct holds no pointers, slices, maps, funcs, channels or
// interfaces — a future reference-typed config field fails here until
// the preimage learns to canonicalize it.
func TestConfigFieldsCanonical(t *testing.T) {
	var check func(typ reflect.Type, path string)
	check = func(typ reflect.Type, path string) {
		switch typ.Kind() {
		case reflect.Bool,
			reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.String:
			return
		case reflect.Array:
			check(typ.Elem(), path+"[]")
		case reflect.Struct:
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				check(f.Type, path+"."+f.Name)
			}
		default:
			t.Errorf("%s has kind %v: not a plain value, so %%+v of SystemConfig is no longer a sound canonical encoding — teach Job.preimage to canonicalize it", path, typ.Kind())
		}
	}
	check(reflect.TypeOf(config.SystemConfig{}), "SystemConfig")

	if k := reflect.TypeOf(Design(0)).Kind(); k != reflect.Int {
		t.Errorf("Design kind = %v, want plain int (the preimage renders it numerically)", k)
	}
}

// TestPreimageContents pins the auditable structure of the canonical
// preimage: versions, design, workload, trace digest, options and the
// resolved config all present; the quiesced bit tracking the checkpoint
// execution path.
func TestPreimageContents(t *testing.T) {
	o := DefaultOptions()
	j := Job{Design: Tagless, Workload: "sphinx3", Options: o}
	pre, err := j.preimage()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"taglessdram result-cache preimage v1",
		"model=1",
		"design=3(cTLB)",
		`workload="sphinx3"`,
		"trace=",
		"Quiesced=false",
		"config={CPU:",
	} {
		if !strings.Contains(pre, want) {
			t.Errorf("preimage missing %q:\n%s", want, pre)
		}
	}

	j.Options.Checkpoints = NewCheckpointStore()
	qpre, err := j.preimage()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qpre, "Quiesced=true") {
		t.Errorf("Checkpoints store should set Quiesced=true:\n%s", qpre)
	}
	if qpre == pre {
		t.Errorf("quiesced and plain runs must not share a preimage")
	}

	if (Options{CheckpointSave: "x"}).cacheable() {
		t.Errorf("CheckpointSave runs must bypass the cache")
	}
	if (Options{CheckpointLoad: "x"}).cacheable() {
		t.Errorf("CheckpointLoad runs must bypass the cache")
	}
	if (Options{TraceEvents: &bytes.Buffer{}}).cacheable() {
		t.Errorf("trace-requesting runs must bypass the cache")
	}
	if !(Options{Checkpoints: NewCheckpointStore()}).cacheable() {
		t.Errorf("in-memory checkpoint stores are deterministic and must stay cacheable")
	}
}
