package taglessdram_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taglessdram"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// epochOptions is the fixed configuration the metrics fixtures use: the
// golden scale with epoch sampling on.
func epochOptions() taglessdram.Options {
	o := goldenOptions()
	o.EpochRefs = 2000
	return o
}

// Attaching the epoch sampler must not change a single simulated metric:
// the fingerprint with sampling on must equal the sampling-off golden.
func TestEpochSamplingDoesNotPerturb(t *testing.T) {
	for _, key := range []string{"sphinx3/cTLB", "MIX1/SRAM"} {
		key := key
		t.Run(key, func(t *testing.T) {
			t.Parallel()
			want, ok := golden[key]
			if !ok {
				t.Fatalf("missing golden entry for %s", key)
			}
			var design taglessdram.Design
			var workload string
			switch key {
			case "sphinx3/cTLB":
				workload, design = "sphinx3", taglessdram.Tagless
			case "MIX1/SRAM":
				workload, design = "MIX1", taglessdram.SRAMTag
			}
			r, err := taglessdram.Run(design, workload, epochOptions())
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(r); got != want {
				t.Errorf("sampling perturbed the run:\n got: %s\nwant: %s", got, want)
			}
			if len(r.Epochs) == 0 {
				t.Error("no epochs captured with EpochRefs set")
			}
		})
	}
}

// The metrics-JSON bytes for a fixed run are a golden fixture: schema or
// formatting drift fails here first (regenerate with -update).
func TestWriteMetricsJSONGolden(t *testing.T) {
	r, err := taglessdram.Run(taglessdram.Tagless, "sphinx3", epochOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := taglessdram.WriteMetricsJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics_golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run MetricsJSONGolden -update .` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics JSON drifted from %s (regenerate with -update if intended)\n got: %.400s\nwant: %.400s",
			path, buf.Bytes(), want)
	}
}

// Every line of the stream must be valid JSON with the documented type
// tags, one "run" line per result followed by its "epoch" lines, and at
// least one epoch per sampled design.
func TestMetricsJSONSchema(t *testing.T) {
	o := epochOptions()
	o.Warmup, o.Measure = 100_000, 100_000
	var results []*taglessdram.Result
	for _, d := range []taglessdram.Design{taglessdram.NoL3, taglessdram.Tagless} {
		r, err := taglessdram.Run(d, "sphinx3", o)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	var buf bytes.Buffer
	if err := taglessdram.WriteMetricsJSON(&buf, results...); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	runs, epochs := 0, 0
	for dec.More() {
		var line struct {
			Type     string             `json:"type"`
			Workload string             `json:"workload"`
			Design   string             `json:"design"`
			Metrics  map[string]float64 `json:"metrics"`
			Refs     *uint64            `json:"refs"`
		}
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("invalid JSON line: %v", err)
		}
		if line.Workload != "sphinx3" || line.Design == "" {
			t.Fatalf("line missing identity: %+v", line)
		}
		switch line.Type {
		case "run":
			runs++
			for _, key := range []string{"ipc", "cycles", "l3.hit_rate", "energy.total_j"} {
				if _, ok := line.Metrics[key]; !ok {
					t.Errorf("run line missing metric %q", key)
				}
			}
		case "epoch":
			epochs++
			if line.Refs == nil {
				t.Error("epoch line missing refs")
			}
		default:
			t.Fatalf("unknown line type %q", line.Type)
		}
	}
	if runs != 2 {
		t.Errorf("run lines = %d, want 2", runs)
	}
	if epochs == 0 {
		t.Error("no epoch lines in stream")
	}
}

// The sweep-level MetricsSink must yield byte-identical output at any
// Workers width: results are delivered in submission order after the
// sweep, regardless of completion order.
func TestMetricsSinkWorkersInvariant(t *testing.T) {
	runAt := func(workers int) []byte {
		o := epochOptions()
		o.Warmup, o.Measure = 50_000, 50_000
		o.Workers = workers
		var buf bytes.Buffer
		o.MetricsSink = func(r *taglessdram.Result) {
			if err := taglessdram.WriteMetricsJSON(&buf, r); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := taglessdram.RunFigure11(context.Background(), o, []string{"MIX1", "MIX2"}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runAt(1)
	parallel := runAt(4)
	if len(serial) == 0 {
		t.Fatal("sink received no output")
	}
	if !bytes.Equal(serial, parallel) {
		t.Error("metrics JSON differs between Workers=1 and Workers=4")
	}
}

// Options.TraceEvents must produce a well-formed Chrome trace_event
// document with monotone timestamps and a bounded event count.
func TestTraceEventsWellFormed(t *testing.T) {
	o := goldenOptions()
	o.Warmup, o.Measure = 50_000, 50_000
	o.TraceEventLimit = 2000
	var buf bytes.Buffer
	o.TraceEvents = &buf
	if _, err := taglessdram.Run(taglessdram.Tagless, "sphinx3", o); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events recorded")
	}
	if len(doc.TraceEvents) > 2000 {
		t.Fatalf("trace window not bounded: %d events", len(doc.TraceEvents))
	}
	var prev uint64
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Phase != "i" {
			t.Fatalf("event %d malformed: %+v", i, e)
		}
		if e.TS < prev {
			t.Fatalf("event %d: ts %d < previous %d (must be monotone)", i, e.TS, prev)
		}
		prev = e.TS
	}
}

// TestWriteMetricsJSONEdgeCases pins the stream's shape at the corners:
// no results yields no bytes, a result without epochs is one run line
// with epochs:0 and no epochs_dropped key, and a mixed batch interleaves
// run and epoch lines in submission order with the dropped count only on
// the result that overflowed.
func TestWriteMetricsJSONEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	if err := taglessdram.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("zero results wrote %q, want nothing", buf.String())
	}

	bare := &taglessdram.Result{Workload: "mcf", Design: taglessdram.SRAMTag}
	buf.Reset()
	if err := taglessdram.WriteMetricsJSON(&buf, bare); err != nil {
		t.Fatal(err)
	}
	lines := splitJSONLines(t, buf.Bytes())
	if len(lines) != 1 {
		t.Fatalf("bare result wrote %d lines, want 1", len(lines))
	}
	if lines[0]["type"] != "run" || lines[0]["epochs"] != 0.0 {
		t.Errorf("run line = %v, want type run with epochs 0", lines[0])
	}
	if _, ok := lines[0]["epochs_dropped"]; ok {
		t.Error("run line has epochs_dropped despite no drops")
	}
	if _, ok := lines[0]["metrics"].(map[string]any); !ok {
		t.Error("run line has no metrics object")
	}

	overflowed := &taglessdram.Result{Workload: "sphinx3", Design: taglessdram.Tagless}
	overflowed.Epochs = []taglessdram.Epoch{{Index: 3}, {Index: 4}}
	overflowed.EpochsDropped = 3
	buf.Reset()
	if err := taglessdram.WriteMetricsJSON(&buf, overflowed, bare); err != nil {
		t.Fatal(err)
	}
	lines = splitJSONLines(t, buf.Bytes())
	wantTypes := []string{"run", "epoch", "epoch", "run"}
	if len(lines) != len(wantTypes) {
		t.Fatalf("mixed batch wrote %d lines, want %d", len(lines), len(wantTypes))
	}
	for i, want := range wantTypes {
		if lines[i]["type"] != want {
			t.Errorf("line %d type = %v, want %s", i, lines[i]["type"], want)
		}
	}
	if lines[0]["epochs_dropped"] != 3.0 || lines[0]["epochs"] != 2.0 {
		t.Errorf("overflowed run line = %v, want epochs 2, epochs_dropped 3", lines[0])
	}
	if _, ok := lines[3]["epochs_dropped"]; ok {
		t.Error("clean run line inherited an epochs_dropped key")
	}
	if lines[1]["workload"] != "sphinx3" || lines[3]["workload"] != "mcf" {
		t.Errorf("lines out of submission order: %v / %v", lines[1]["workload"], lines[3]["workload"])
	}
}

func splitJSONLines(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range bytes.Split(bytes.TrimSpace(b), []byte("\n")) {
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, line)
		}
		out = append(out, obj)
	}
	return out
}

// TestEpochDropWarning pins the operator-facing overflow warning: silent
// for intact series, and a single line naming the cell, the loss, and
// the -epoch-capacity remedy when the ring overflowed.
func TestEpochDropWarning(t *testing.T) {
	if got := taglessdram.EpochDropWarning(nil); got != "" {
		t.Errorf("nil result warned %q", got)
	}
	clean := &taglessdram.Result{Workload: "mcf", Design: taglessdram.SRAMTag}
	if got := taglessdram.EpochDropWarning(clean); got != "" {
		t.Errorf("clean result warned %q", got)
	}
	r := &taglessdram.Result{Workload: "sphinx3", Design: taglessdram.Tagless}
	r.Epochs = make([]taglessdram.Epoch, 4)
	r.EpochsDropped = 6
	warn := taglessdram.EpochDropWarning(r)
	for _, want := range []string{"sphinx3", "dropped the oldest 6 of 10 epochs", "-epoch-capacity"} {
		if !strings.Contains(warn, want) {
			t.Errorf("warning %q missing %q", warn, want)
		}
	}
}
