// Command benchstep meters the steady-state per-reference simulation
// step for every L3 design and emits BENCH_step.json. It is the CI-facing
// form of BenchmarkMachineStep: the same rig (64×-scaled default machine,
// libquantum, warmed past fill traffic), but with a fixed reference count
// per repetition so runtime is predictable, and best-of-N timing so the
// headline ns/ref number is robust to scheduler noise.
//
// Usage:
//
//	go run ./cmd/benchstep -o BENCH_step.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"taglessdram"
	"taglessdram/internal/config"
	"taglessdram/internal/stats"
	"taglessdram/internal/system"
)

type designReport struct {
	Design       string  `json:"design"`
	NsPerRef     float64 `json:"ns_per_ref"`
	AllocsPerRef float64 `json:"allocs_per_ref"`
	// The functional fast-forward path, metered interleaved with the
	// accurate path in the same process so the speedup ratio compares
	// like with like (same machine state, same load, same GC pressure).
	FFNsPerRef     float64 `json:"ff_ns_per_ref"`
	FFAllocsPerRef float64 `json:"ff_allocs_per_ref"`
	FFSpeedup      float64 `json:"ff_speedup"`
}

// walkReport meters the Tagless step under one page-table-walk model;
// the fixed row is the default path and must stay allocation-free.
type walkReport struct {
	Walk         string  `json:"walk"`
	Design       string  `json:"design"`
	NsPerRef     float64 `json:"ns_per_ref"`
	AllocsPerRef float64 `json:"allocs_per_ref"`
}

type report struct {
	Tool       string         `json:"tool"`
	GoVersion  string         `json:"go_version"`
	RefsPerRep int            `json:"refs_per_rep"`
	Reps       int            `json:"reps"`
	Note       string         `json:"note"`
	Designs    []designReport `json:"designs"`
	// WalkModels breaks the cTLB step cost down by walk model: "fixed"
	// is the default scalar-latency path, "pwc" adds the simulated page
	// walk cache, "nested" the guest->host 2D walk.
	WalkModels []walkReport `json:"walk_models"`
	// Cache is present when -cache-stats is set: the result cache's
	// cold-store vs warm-replay timing for one reference run.
	Cache *cacheReport `json:"result_cache,omitempty"`
}

// cacheReport meters the result cache end to end: one cold Run that
// simulates and stores, then best-of-reps warm Runs replaying the entry.
type cacheReport struct {
	Workload string  `json:"workload"`
	Design   string  `json:"design"`
	Refs     uint64  `json:"refs"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	Stored   uint64  `json:"stored"`
	ColdMs   float64 `json:"cold_ms"`
	WarmMs   float64 `json:"warm_ms"`
	Speedup  float64 `json:"speedup"`
}

// meterCache times a cold (simulate + store) vs warm (replay) Run of the
// benchmark rig's workload against a throwaway store.
func meterCache(reps int) (*cacheReport, error) {
	dir, err := os.MkdirTemp("", "benchstep-rcache-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := taglessdram.OpenResultCache(dir)
	if err != nil {
		return nil, err
	}
	o := taglessdram.DefaultOptions()
	o.Warmup, o.Measure = 200_000, 200_000
	o.ResultCache = store

	start := time.Now()
	r, err := taglessdram.Run(taglessdram.Tagless, "libquantum", o)
	if err != nil {
		return nil, err
	}
	cold := time.Since(start)

	warm := time.Duration(0)
	for rep := 0; rep < reps; rep++ {
		start = time.Now()
		if _, err := taglessdram.Run(taglessdram.Tagless, "libquantum", o); err != nil {
			return nil, err
		}
		if d := time.Since(start); rep == 0 || d < warm {
			warm = d
		}
	}
	st := store.Stats()
	cr := &cacheReport{
		Workload: "libquantum",
		Design:   taglessdram.Tagless.String(),
		Refs:     r.References,
		Hits:     st.Hits,
		Misses:   st.Misses,
		Stored:   st.Stored,
		ColdMs:   float64(cold.Nanoseconds()) / 1e6,
		WarmMs:   float64(warm.Nanoseconds()) / 1e6,
	}
	if warm > 0 {
		cr.Speedup = float64(cold) / float64(warm)
	}
	return cr, nil
}

// latChunks is how many timing chunks each repetition is split into for
// the step-cost distribution; the tail report needs enough chunks that
// p99 is a real sample, and each chunk long enough to amortize the
// clock reads.
const latChunks = 64

type latDesignReport struct {
	Design    string  `json:"design"`
	P50NsRef  float64 `json:"p50_ns_per_ref"`
	P99NsRef  float64 `json:"p99_ns_per_ref"`
	Chunks    uint64  `json:"chunks"`
	ChunkRefs int     `json:"chunk_refs"`
}

type latReport struct {
	Tool      string            `json:"tool"`
	GoVersion string            `json:"go_version"`
	Note      string            `json:"note"`
	Designs   []latDesignReport `json:"designs"`
}

// baselineNote qualifies the numbers: both paths are re-measured in the
// same process, repetition-interleaved (step chunk, then fast-forward
// chunk, alternating), so the ff_speedup ratio holds under whatever load
// the run saw — unlike a comparison against constants captured earlier.
const baselineNote = "accurate and fast-forward paths measured interleaved in the same process; " +
	"ff_speedup is the same-conditions ratio"

func meter(design config.L3Design, walk string, refs, reps, warm int) (designReport, latDesignReport, error) {
	cfg := config.Default()
	cfg.Design = design
	cfg.WalkModel = walk
	cfg.InPkg.SizeBytes >>= 6
	cfg.OffPkg.SizeBytes >>= 6
	cfg.CacheSize >>= 6
	w, err := system.SingleProgram("libquantum", 6, 1)
	if err != nil {
		return designReport{}, latDesignReport{}, err
	}
	m, err := system.New(cfg, w)
	if err != nil {
		return designReport{}, latDesignReport{}, err
	}
	if err := m.Steps(warm); err != nil {
		return designReport{}, latDesignReport{}, err
	}
	m.Drain()

	chunkRefs := refs / latChunks
	if chunkRefs == 0 {
		chunkRefs = 1
	}
	// Chunk-level ns/ref distribution: 1ns buckets up to 4096ns, far past
	// any steady-state step cost; slower chunks land in overflow and
	// report the upper bound.
	hist := stats.NewHistogram(4096, 1)

	best := designReport{Design: design.String()}
	var ms runtime.MemStats
	for rep := 0; rep < reps; rep++ {
		// Accurate-path chunk.
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		var elapsed time.Duration
		for done := 0; done < refs; done += chunkRefs {
			n := chunkRefs
			if refs-done < n {
				n = refs - done
			}
			start := time.Now()
			if err := m.Steps(n); err != nil {
				return designReport{}, latDesignReport{}, err
			}
			d := time.Since(start)
			elapsed += d
			hist.Observe(float64(d.Nanoseconds()) / float64(n))
		}
		runtime.ReadMemStats(&ms)

		ns := float64(elapsed.Nanoseconds()) / float64(refs)
		allocs := float64(ms.Mallocs-mallocs) / float64(refs)
		if rep == 0 || ns < best.NsPerRef {
			best.NsPerRef = ns
		}
		if allocs > best.AllocsPerRef {
			best.AllocsPerRef = allocs
		}

		// Fast-forward chunk, same reference count, same machine, back to
		// back with the accurate chunk it is compared against.
		runtime.ReadMemStats(&ms)
		mallocs = ms.Mallocs
		start := time.Now()
		if err := m.FastForwardRefs(uint64(refs)); err != nil {
			return designReport{}, latDesignReport{}, err
		}
		ffNs := float64(time.Since(start).Nanoseconds()) / float64(refs)
		runtime.ReadMemStats(&ms)
		ffAllocs := float64(ms.Mallocs-mallocs) / float64(refs)
		if rep == 0 || ffNs < best.FFNsPerRef {
			best.FFNsPerRef = ffNs
		}
		if ffAllocs > best.FFAllocsPerRef {
			best.FFAllocsPerRef = ffAllocs
		}
	}
	if best.FFNsPerRef > 0 {
		best.FFSpeedup = best.NsPerRef / best.FFNsPerRef
	}
	qs := hist.Quantiles([]float64{50, 99})
	lr := latDesignReport{
		Design:    best.Design,
		P50NsRef:  qs[0],
		P99NsRef:  qs[1],
		Chunks:    hist.Count(),
		ChunkRefs: chunkRefs,
	}
	return best, lr, nil
}

func main() {
	out := flag.String("o", "BENCH_step.json", "output path ('-' for stdout)")
	latOut := flag.String("lat-o", "", "also write the chunked step-cost distribution (p50/p99 ns/ref) to this path, e.g. BENCH_lat.json")
	refs := flag.Int("n", 1_000_000, "references per repetition")
	reps := flag.Int("reps", 5, "repetitions per design (best-of)")
	warm := flag.Int("warm", 100_000, "warm-up references before timing")
	cacheStats := flag.Bool("cache-stats", false, "also meter the result cache (cold simulate+store vs best-of-reps warm replay) and add the counters to the report")
	flag.Parse()

	r := report{
		Tool:       "cmd/benchstep",
		GoVersion:  runtime.Version(),
		RefsPerRep: *refs,
		Reps:       *reps,
		Note:       baselineNote,
	}
	lr := latReport{
		Tool:      "cmd/benchstep",
		GoVersion: runtime.Version(),
		Note: "wall-clock step cost per chunk of references, all repetitions pooled; " +
			"p99/p50 spread measures scheduler + GC jitter, not simulated latency",
	}
	for _, d := range []config.L3Design{
		config.NoL3, config.BankInterleave, config.SRAMTag, config.Tagless, config.Ideal,
		config.AlloyBlock, config.Banshee,
	} {
		dr, ldr, err := meter(d, "", *refs, *reps, *warm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchstep: %s: %v\n", d, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-6s %7.2f ns/ref  %.4f allocs/ref  p50 %.1f p99 %.1f  ff %5.2f ns/ref (%.1fx)\n",
			dr.Design, dr.NsPerRef, dr.AllocsPerRef, ldr.P50NsRef, ldr.P99NsRef, dr.FFNsPerRef, dr.FFSpeedup)
		r.Designs = append(r.Designs, dr)
		lr.Designs = append(lr.Designs, ldr)
	}

	// Per-walk-model rows on the cTLB design: the fixed row is the exact
	// default path and pins the allocation-free step; the pwc and nested
	// rows price the simulated walk machinery.
	for _, walk := range []string{"fixed", "pwc", "nested"} {
		dr, _, err := meter(config.Tagless, walk, *refs, *reps, *warm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchstep: walk %s: %v\n", walk, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cTLB/%-6s %7.2f ns/ref  %.4f allocs/ref\n",
			walk, dr.NsPerRef, dr.AllocsPerRef)
		r.WalkModels = append(r.WalkModels, walkReport{
			Walk:         walk,
			Design:       dr.Design,
			NsPerRef:     dr.NsPerRef,
			AllocsPerRef: dr.AllocsPerRef,
		})
	}

	if *cacheStats {
		cr, err := meterCache(*reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchstep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "result cache: %s/%s %d refs: cold %.1f ms, warm %.3f ms (%.0fx), hits=%d misses=%d stored=%d\n",
			cr.Workload, cr.Design, cr.Refs, cr.ColdMs, cr.WarmMs, cr.Speedup, cr.Hits, cr.Misses, cr.Stored)
		r.Cache = cr
	}

	if err := writeJSON(*out, r); err != nil {
		fmt.Fprintln(os.Stderr, "benchstep:", err)
		os.Exit(1)
	}
	if *latOut != "" {
		if err := writeJSON(*latOut, lr); err != nil {
			fmt.Fprintln(os.Stderr, "benchstep:", err)
			os.Exit(1)
		}
	}
}

func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
