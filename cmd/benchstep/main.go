// Command benchstep meters the steady-state per-reference simulation
// step for every L3 design and emits BENCH_step.json. It is the CI-facing
// form of BenchmarkMachineStep: the same rig (64×-scaled default machine,
// libquantum, warmed past fill traffic), but with a fixed reference count
// per repetition so runtime is predictable, and best-of-N timing so the
// headline ns/ref number is robust to scheduler noise.
//
// Usage:
//
//	go run ./cmd/benchstep -o BENCH_step.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"taglessdram/internal/config"
	"taglessdram/internal/stats"
	"taglessdram/internal/system"
)

// baselineNS holds the pre-optimization step cost (ns/ref) captured on
// the same rig immediately before this PR's hot-path work, so the report
// can state the speedup the allocation-free path must hold.
var baselineNS = map[string]float64{
	"cTLB": 95.54,
	"SRAM": 91.86,
}

type designReport struct {
	Design       string  `json:"design"`
	NsPerRef     float64 `json:"ns_per_ref"`
	AllocsPerRef float64 `json:"allocs_per_ref"`
	BaselineNs   float64 `json:"baseline_ns_per_ref,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
}

type report struct {
	Tool       string         `json:"tool"`
	GoVersion  string         `json:"go_version"`
	RefsPerRep int            `json:"refs_per_rep"`
	Reps       int            `json:"reps"`
	Note       string         `json:"note"`
	Designs    []designReport `json:"designs"`
}

// latChunks is how many timing chunks each repetition is split into for
// the step-cost distribution; the tail report needs enough chunks that
// p99 is a real sample, and each chunk long enough to amortize the
// clock reads.
const latChunks = 64

type latDesignReport struct {
	Design    string  `json:"design"`
	P50NsRef  float64 `json:"p50_ns_per_ref"`
	P99NsRef  float64 `json:"p99_ns_per_ref"`
	Chunks    uint64  `json:"chunks"`
	ChunkRefs int     `json:"chunk_refs"`
}

type latReport struct {
	Tool      string            `json:"tool"`
	GoVersion string            `json:"go_version"`
	Note      string            `json:"note"`
	Designs   []latDesignReport `json:"designs"`
}

// baselineNote qualifies the embedded baselines: absolute ns/ref moves
// with machine load, so speedups are only exact when both sides run
// under the same conditions. Interleaved pre/post runs on a loaded
// machine still show >=1.4x on cTLB.
const baselineNote = "baselines captured at the pre-optimization commit on an idle machine; " +
	"re-measure both sides interleaved for exact ratios under load"

func meter(design config.L3Design, refs, reps, warm int) (designReport, latDesignReport, error) {
	cfg := config.Default()
	cfg.Design = design
	cfg.InPkg.SizeBytes >>= 6
	cfg.OffPkg.SizeBytes >>= 6
	cfg.CacheSize >>= 6
	w, err := system.SingleProgram("libquantum", 6, 1)
	if err != nil {
		return designReport{}, latDesignReport{}, err
	}
	m, err := system.New(cfg, w)
	if err != nil {
		return designReport{}, latDesignReport{}, err
	}
	if err := m.Steps(warm); err != nil {
		return designReport{}, latDesignReport{}, err
	}
	m.Drain()

	chunkRefs := refs / latChunks
	if chunkRefs == 0 {
		chunkRefs = 1
	}
	// Chunk-level ns/ref distribution: 1ns buckets up to 4096ns, far past
	// any steady-state step cost; slower chunks land in overflow and
	// report the upper bound.
	hist := stats.NewHistogram(4096, 1)

	best := designReport{Design: design.String()}
	var ms runtime.MemStats
	for rep := 0; rep < reps; rep++ {
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		var elapsed time.Duration
		for done := 0; done < refs; done += chunkRefs {
			n := chunkRefs
			if refs-done < n {
				n = refs - done
			}
			start := time.Now()
			if err := m.Steps(n); err != nil {
				return designReport{}, latDesignReport{}, err
			}
			d := time.Since(start)
			elapsed += d
			hist.Observe(float64(d.Nanoseconds()) / float64(n))
		}
		runtime.ReadMemStats(&ms)

		ns := float64(elapsed.Nanoseconds()) / float64(refs)
		allocs := float64(ms.Mallocs-mallocs) / float64(refs)
		if rep == 0 || ns < best.NsPerRef {
			best.NsPerRef = ns
		}
		if allocs > best.AllocsPerRef {
			best.AllocsPerRef = allocs
		}
	}
	if base, ok := baselineNS[best.Design]; ok {
		best.BaselineNs = base
		best.Speedup = base / best.NsPerRef
	}
	qs := hist.Quantiles([]float64{50, 99})
	lr := latDesignReport{
		Design:    best.Design,
		P50NsRef:  qs[0],
		P99NsRef:  qs[1],
		Chunks:    hist.Count(),
		ChunkRefs: chunkRefs,
	}
	return best, lr, nil
}

func main() {
	out := flag.String("o", "BENCH_step.json", "output path ('-' for stdout)")
	latOut := flag.String("lat-o", "", "also write the chunked step-cost distribution (p50/p99 ns/ref) to this path, e.g. BENCH_lat.json")
	refs := flag.Int("n", 1_000_000, "references per repetition")
	reps := flag.Int("reps", 5, "repetitions per design (best-of)")
	warm := flag.Int("warm", 100_000, "warm-up references before timing")
	flag.Parse()

	r := report{
		Tool:       "cmd/benchstep",
		GoVersion:  runtime.Version(),
		RefsPerRep: *refs,
		Reps:       *reps,
		Note:       baselineNote,
	}
	lr := latReport{
		Tool:      "cmd/benchstep",
		GoVersion: runtime.Version(),
		Note: "wall-clock step cost per chunk of references, all repetitions pooled; " +
			"p99/p50 spread measures scheduler + GC jitter, not simulated latency",
	}
	for _, d := range []config.L3Design{
		config.NoL3, config.BankInterleave, config.SRAMTag, config.Tagless, config.Ideal,
		config.Banshee,
	} {
		dr, ldr, err := meter(d, *refs, *reps, *warm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchstep: %s: %v\n", d, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-6s %7.2f ns/ref  %.4f allocs/ref  p50 %.1f p99 %.1f",
			dr.Design, dr.NsPerRef, dr.AllocsPerRef, ldr.P50NsRef, ldr.P99NsRef)
		if dr.Speedup != 0 {
			fmt.Fprintf(os.Stderr, "  %.2fx vs pre-PR %.2f ns", dr.Speedup, dr.BaselineNs)
		}
		fmt.Fprintln(os.Stderr)
		r.Designs = append(r.Designs, dr)
		lr.Designs = append(lr.Designs, ldr)
	}

	if err := writeJSON(*out, r); err != nil {
		fmt.Fprintln(os.Stderr, "benchstep:", err)
		os.Exit(1)
	}
	if *latOut != "" {
		if err := writeJSON(*latOut, lr); err != nil {
			fmt.Fprintln(os.Stderr, "benchstep:", err)
			os.Exit(1)
		}
	}
}

func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
