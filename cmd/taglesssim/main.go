// Command taglesssim runs one simulation: a workload (SPEC program, MIX,
// or PARSEC program) on one DRAM-cache organization, and prints the full
// measured result.
//
//	taglesssim -design cTLB -workload sphinx3
//	taglesssim -design SRAM -workload MIX5 -measure 5000000
//	taglesssim -design cTLB -workload GemsFDTD -nc 32 -policy LRU
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"taglessdram"
	"taglessdram/internal/prof"
	"taglessdram/internal/textplot"
)

func main() {
	var (
		design   = flag.String("design", "cTLB", "NoL3 | BI | SRAM | cTLB | Ideal | Alloy | Banshee")
		workload = flag.String("workload", "sphinx3", "SPEC program, MIX1-MIX8, or PARSEC program")
		warmup   = flag.Uint64("warmup", 3_000_000, "warm-up instructions per core")
		measure  = flag.Uint64("measure", 3_000_000, "measured instructions per core")
		shift    = flag.Uint("shift", 6, "capacity scale: divide sizes by 1<<shift")
		cacheMB  = flag.Int64("cache-mb", 0, "override scaled cache capacity in MB (0 = default)")
		policy   = flag.String("policy", "FIFO", "tagless victim policy: FIFO | LRU | CLOCK")
		nc       = flag.Int("nc", 0, "non-cacheable threshold (32 enables the Section 5.4 policy)")
		hot      = flag.Int("hotfilter", 0, "online hot-page filter threshold (0 = off)")
		alias    = flag.Bool("alias", false, "enable the Section 6 shared-page alias table")
		super    = flag.Bool("superpages", false, "map application memory as 2MB-equivalent superpages")
		refresh  = flag.Bool("refresh", false, "model DRAM refresh blackouts")
		seed     = flag.Uint64("seed", 1, "trace seed")
		list     = flag.Bool("list", false, "list workloads and exit")
		prog     = flag.Bool("progress", false, "print a wall-clock throughput summary and epoch sparklines to stderr")
		epoch    = flag.Uint64("epoch-refs", 2000, "epoch length in measured references for time-series sampling (0 = off)")
		epochCap = flag.Int("epoch-capacity", 0, "max retained epochs; once full the oldest are dropped (0 = default ring)")
		metrics  = flag.String("metrics-json", "", "write the full metric registry and epoch series as JSON lines to this file")
		latHist  = flag.Bool("lat-hist", false, "print the latency attribution breakdown, tail histograms and per-bank DRAM telemetry")
		selfchk  = flag.Bool("selfcheck", false, "verify cycle-accounting conservation and (cTLB/SRAM) the Equations 1-5 closed forms, exit nonzero on failure")
		traceOut = flag.String("trace-events", "", "write a Chrome trace_event JSON (chrome://tracing) of the first kernel events to this file")
		traceMax = flag.Int("trace-max", 0, "trace window size in events (0 = default)")

		walkModel = flag.String("walk", "", "page-table-walk model: fixed | pwc | nested (empty = fixed, or pwc under -memwalk)")
		memWalk   = flag.Bool("memwalk", false, "legacy alias for -walk pwc: model walks as memory traffic")
		pwcHit    = flag.Int("pwc-hit", 2, "per-level page-walk-cache hit cycles (pwc and nested models)")
		tlbTopo   = flag.String("tlb-topo", "", "TLB topology: private | shared (empty = private)")
		ctxRefs   = flag.Uint64("ctx-switch-refs", 0, "context-switch each core every N trace references (0 = off)")
		ctxFlush  = flag.Bool("ctx-switch-flush", false, "flush the core's shared-L2 TLB entries at each context switch instead of retaining them under ASID tags")

		sampleWindow = flag.Uint64("sample-window", 0, "SMARTS sampling: cycle-accurate window length in trace references (0 = full cycle-accurate run)")
		samplePeriod = flag.Uint64("sample-period", 0, "SMARTS sampling: references per period; the period minus the window fast-forwards functionally")
		sampleWarm   = flag.Uint64("sample-warm", 0, "SMARTS sampling: detailed-warming references before each window (accurate but unmeasured)")
		ckptSave     = flag.String("checkpoint-save", "", "write the post-warmup machine state to this file before measuring")
		ckptLoad     = flag.String("checkpoint-load", "", "restore post-warmup state from this file instead of warming up (config and workload must match)")
		rcache       = flag.String("result-cache", "", "persistent content-addressed result cache directory: an identical completed run is replayed byte-identically instead of re-simulated")
	)
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	// A single run has no queue to drain: Ctrl-C flushes any profiles and
	// exits with the conventional interrupt status.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "taglesssim: interrupted")
		stopProf()
		os.Exit(130)
	}()

	if *list {
		fmt.Println("SPEC (single-programmed):", strings.Join(taglessdram.SPECWorkloads(), " "))
		fmt.Println("Mixes (multi-programmed):", strings.Join(taglessdram.MixWorkloads(), " "))
		fmt.Println("PARSEC (multi-threaded): ", strings.Join(taglessdram.PARSECWorkloads(), " "))
		return
	}

	d, err := taglessdram.ParseDesign(*design)
	if err != nil {
		fatal(err)
	}
	o := taglessdram.DefaultOptions()
	if *prog {
		o.Progress = func(p taglessdram.SweepProgress) {
			fmt.Fprintf(os.Stderr, "throughput:      %s (%s wall)\n", p.Summary, p.Elapsed.Round(time.Millisecond))
		}
	}
	o.Shift = *shift
	o.Warmup, o.Measure = *warmup, *measure
	o.Seed = *seed
	o.CacheMB = *cacheMB
	o.NCAccessThreshold = *nc
	o.HotFilterThreshold = *hot
	o.SharedAliasTable = *alias
	o.Superpages = *super
	o.Refresh = *refresh
	switch {
	case strings.EqualFold(*policy, "LRU"):
		o.Policy = taglessdram.LRU
	case strings.EqualFold(*policy, "CLOCK"):
		o.Policy = taglessdram.CLOCK
	}
	o.WalkModel = *walkModel
	o.MemoryWalk = *memWalk
	o.PWCHitCycles = *pwcHit
	o.TLBTopology = *tlbTopo
	o.CtxSwitchRefs = *ctxRefs
	o.CtxSwitchFlush = *ctxFlush
	o.EpochRefs = *epoch
	o.EpochCapacity = *epochCap
	o.TraceEventLimit = *traceMax
	if *sampleWindow > 0 || *samplePeriod > 0 {
		o.Sample = &taglessdram.SampleSpec{WindowRefs: *sampleWindow, PeriodRefs: *samplePeriod, WarmRefs: *sampleWarm}
	}
	o.CheckpointSave = *ckptSave
	o.CheckpointLoad = *ckptLoad
	var store *taglessdram.ResultCache
	if *rcache != "" {
		store, err = taglessdram.OpenResultCache(*rcache)
		if err != nil {
			fatal(err)
		}
		o.ResultCache = store
	}
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer traceFile.Close()
		o.TraceEvents = traceFile
	}
	if err := o.Validate(); err != nil {
		fatal(err)
	}

	r, err := taglessdram.Run(d, *workload, o)
	if err != nil {
		fatal(err)
	}
	if warn := taglessdram.EpochDropWarning(r); warn != "" {
		fmt.Fprintln(os.Stderr, "taglesssim: warning:", warn)
	}
	if store != nil {
		// Stderr, not stdout: the printed result must stay byte-identical
		// whether it was simulated or replayed.
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "result cache:    hits=%d misses=%d stored=%d evicted=%d (%s)\n",
			st.Hits, st.Misses, st.Stored, st.Evicted, store.Dir())
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		if err := taglessdram.WriteMetricsJSON(f, r); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("workload:        %s on %v\n", r.Workload, r.Design)
	fmt.Printf("instructions:    %d (measured)\n", r.Instructions)
	fmt.Printf("cycles:          %d (%.3f ms simulated)\n", r.Cycles, r.Seconds*1e3)
	fmt.Printf("IPC:             %.3f (per core: %s)\n", r.IPC, fmtIPCs(r.PerCoreIPC))
	fmt.Printf("L3 accesses:     %d (hit rate %.1f%%, avg latency %.1f cycles)\n",
		r.L3Accesses, r.L3HitRate*100, r.AvgL3Latency)
	fmt.Printf("TLB:             %d lookups, %.3f%% miss\n", r.TLBLookups, r.TLBMissRate*100)
	fmt.Printf("DRAM row hits:   in-package %.1f%%, off-package %.1f%%\n",
		r.InPkgRowHitRate*100, r.OffPkgRowHitRate*100)
	fmt.Printf("traffic:         in-package %d B, off-package %d B\n", r.InPkgBytes, r.OffPkgBytes)
	fmt.Printf("energy:          %s\n", r.Energy)
	fmt.Printf("EDP:             %.4g J*s\n", r.EDPJs)
	if s := r.Sampled; s != nil {
		fmt.Printf("sampled:         %d windows of %d refs (period %d): IPC %.3f ± %.3f (95%% CI), %d refs accurate + %d fast-forwarded\n",
			s.Windows, s.WindowRefs, s.PeriodRefs, s.IPC, s.IPCCI95, s.MeasuredRefs, s.FastRefs)
	}
	if r.Design == taglessdram.Tagless {
		c := r.Ctrl
		fmt.Printf("cTLB handler:    %d walks: %d victim hits, %d cold fills, %d NC, %d pending waits, %d alias hits\n",
			c.Walks, c.VictimHits, c.ColdFills, c.NonCacheable, c.PendingWaits, c.AliasHits)
		fmt.Printf("eviction daemon: %d evictions (%d dirty write-backs, %d rescues, %d forced on access path, %d shootdowns)\n",
			c.Evictions, c.Writebacks, c.Rescues, c.SyncEvictions, c.Shootdowns)
		if r.NCAccesses > 0 {
			fmt.Printf("NC accesses:     %d\n", r.NCAccesses)
		}
	}
	if *latHist {
		printLatency(r)
	}
	if *selfchk {
		if err := taglessdram.CheckLatencyAttribution(r); err != nil {
			fatal(err)
		}
		fmt.Printf("selfcheck:       conservation exact over %d L3 + %d handler commits\n",
			r.Latency.L3.Commits, r.Latency.Handler.Commits)
		// The Equations 1-5 closed forms take a single MissPenalty_TLB
		// term, which the nested walk's split guest/host attribution
		// deliberately does not produce; conservation above is the
		// universal gate.
		if *walkModel != "nested" {
			if err := taglessdram.CheckLatencyModel(r, 0.02); err != nil {
				fatal(err)
			}
			if r.Design == taglessdram.Tagless || r.Design == taglessdram.SRAMTag {
				fmt.Printf("selfcheck:       Equations 1-5 reproduce measured latency within 2%%\n")
			}
		}
	}
	if *prog && len(r.Epochs) > 0 {
		printSparklines(r)
	}
}

// printLatency renders the cycle-accounting surface: the per-component
// stall breakdown for both scopes, the L3/handler latency histograms, and
// the per-bank DRAM telemetry.
func printLatency(r *taglessdram.Result) {
	names := taglessdram.LatencyComponentNames()
	s := &r.Latency
	fmt.Printf("\nlatency attribution (stall cycles, measured window)\n")
	fmt.Printf("  %-15s %15s %15s %12s\n", "component", "L3 scope", "handler scope", "background")
	for i, n := range names {
		if s.L3.Cycles[i] == 0 && s.Handler.Cycles[i] == 0 && s.Bg.Cycles[i] == 0 {
			continue
		}
		fmt.Printf("  %-15s %15d %15d %12d\n", n, s.L3.Cycles[i], s.Handler.Cycles[i], s.Bg.Cycles[i])
	}
	fmt.Printf("  %-15s %15d %15d %12d  (commits %d/%d, residue %d/%d)\n",
		"total", s.L3.Measured, s.Handler.Measured, s.Bg.Total(),
		s.L3.Commits, s.Handler.Commits, s.L3.Residue, s.Handler.Residue)

	fmt.Println()
	fmt.Print(textplot.Histogram(
		fmt.Sprintf("L3 access latency (cycles): p50 %.0f p99 %.0f p99.9 %.0f max %d",
			s.L3Lat.Quantile(50), s.L3Lat.Quantile(99), s.L3Lat.Quantile(99.9), s.L3Lat.Max()),
		histBars(s.L3Lat.Rows()), 40))
	if s.HandlerLat.Count() > 0 {
		fmt.Println()
		fmt.Print(textplot.Histogram(
			fmt.Sprintf("TLB-miss handler latency (cycles): p50 %.0f p99 %.0f max %d",
				s.HandlerLat.Quantile(50), s.HandlerLat.Quantile(99), s.HandlerLat.Max()),
			histBars(s.HandlerLat.Rows()), 40))
	}

	printBanks := func(name string, banks []taglessdram.BankStat, busy uint64, channels int) {
		if len(banks) == 0 {
			return
		}
		var hits, confls, maxBusy uint64
		for _, b := range banks {
			hits += b.Hits
			confls += b.Confls
			if b.BusyTicks > maxBusy {
				maxBusy = b.BusyTicks
			}
		}
		fmt.Printf("  %-11s %3d banks: %d row hits, %d row conflicts, hottest bank busy %.1f%%, bus busy %.1f%%\n",
			name, len(banks), hits, confls,
			pct(maxBusy, r.Cycles), pct(busy, r.Cycles*uint64(max(channels, 1))))
	}
	fmt.Printf("\nDRAM telemetry (measured window)\n")
	printBanks("in-package", r.InPkgBankStats, r.InPkgBusBusy, r.InPkgChannels)
	printBanks("off-package", r.OffPkgBankStats, r.OffPkgBusBusy, r.OffPkgChannels)
}

func histBars(rows []taglessdram.BucketRow) []textplot.HistBar {
	out := make([]textplot.HistBar, len(rows))
	for i, b := range rows {
		out[i] = textplot.HistBar{Label: fmt.Sprintf("[%d,%d]", b.Lo, b.Hi), Count: b.Count}
	}
	return out
}

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den) * 100
}

// printSparklines renders the captured epoch series as terminal-width
// sparklines on stderr, next to the throughput summary they accompany.
func printSparklines(r *taglessdram.Result) {
	const width = 60
	series := []struct {
		name string
		get  func(e taglessdram.Epoch) float64
	}{
		{"IPC", func(e taglessdram.Epoch) float64 { return e.IPC }},
		{"L3 hit rate", func(e taglessdram.Epoch) float64 { return e.L3HitRate }},
		{"cTLB miss rate", func(e taglessdram.Epoch) float64 { return e.TLBMissRate }},
		{"off-pkg bytes", func(e taglessdram.Epoch) float64 { return float64(e.OffPkgBytes) }},
		{"L3 p99 lat", func(e taglessdram.Epoch) float64 { return e.L3LatP99 }},
		{"bus util", func(e taglessdram.Epoch) float64 { return math.Max(e.InPkgBusUtil, e.OffPkgBusUtil) }},
	}
	if r.Design == taglessdram.Tagless {
		series = append(series, struct {
			name string
			get  func(e taglessdram.Epoch) float64
		}{"free blocks", func(e taglessdram.Epoch) float64 { return float64(e.FreeBlocks) }})
	}
	fmt.Fprintf(os.Stderr, "epochs:          %d × %d refs", len(r.Epochs), r.Epochs[0].Refs)
	if r.EpochsDropped > 0 {
		fmt.Fprintf(os.Stderr, " (%d older epochs dropped)", r.EpochsDropped)
	}
	fmt.Fprintln(os.Stderr)
	for _, s := range series {
		xs := make([]float64, len(r.Epochs))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, e := range r.Epochs {
			xs[i] = s.get(e)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		fmt.Fprintf(os.Stderr, "  %-15s %s  [%.3g, %.3g]\n",
			s.name, textplot.Sparkline(xs, width), lo, hi)
	}
}

func fmtIPCs(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.2f", x)
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "taglesssim:", err)
	os.Exit(1)
}
