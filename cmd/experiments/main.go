// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them as markdown (the source of
// EXPERIMENTS.md). Select a subset with -only; shrink budgets with -quick.
//
//	go run ./cmd/experiments            # everything, default budgets
//	go run ./cmd/experiments -only fig7,fig8
//	go run ./cmd/experiments -quick     # 4x smaller instruction budgets
//	go run ./cmd/experiments -j 8       # up to 8 concurrent simulations
//	go run ./cmd/experiments -j 1       # strictly serial sweeps
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"taglessdram"
	"taglessdram/internal/prof"
	"taglessdram/internal/textplot"
)

func main() {
	var (
		only  = flag.String("only", "", "comma-separated subset: table1,table2,table6,fig7,fig8,fig9,fig10,fig11,fig12,fig13,shared,hotfilter,superpages,tlbreach,fairness,amat,latency")
		quick = flag.Bool("quick", false, "4x smaller instruction budgets")
		seed  = flag.Uint64("seed", 1, "trace seed")
		nj    = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations per sweep (1 = serial); results are identical at any width")
		prog  = flag.Bool("progress", false, "print per-sweep progress and ETA to stderr")
		extra = flag.Bool("baselines", false, "add the extra organizations (Alloy, Banshee) to the design-comparison figures")

		metrics = flag.String("metrics-json", "", "append every run's metric registry and epoch series as JSON lines to this file (byte-identical at any -j)")
		server  = flag.String("server", "", "base URL of a sweepd sweep service (e.g. http://localhost:8344): every sweep is submitted there instead of simulating in-process; output is byte-identical")
		rcache  = flag.String("result-cache", "", "persistent content-addressed result cache directory: completed runs are replayed byte-identically instead of re-simulated; editing one configuration re-simulates only its cells")
		epoch   = flag.Uint64("epoch-refs", 0, "epoch length in measured references for time-series sampling (0 = off)")
		epochCap = flag.Int("epoch-capacity", 0, "max retained epochs per run; once full the oldest are dropped (0 = default ring)")
		prewarm = flag.Bool("prewarm", false, "share warm-state checkpoints across figures: each (workload, config, warm-up) warms up once and later runs restore it (results use the checkpointed Warmup/Measure path, so they differ slightly from the default)")

		walkModel = flag.String("walk", "", "page-table-walk model for every run: fixed | pwc | nested (empty = fixed)")
		pwcHit    = flag.Int("pwc-hit", 2, "per-level page-walk-cache hit cycles (pwc and nested models)")
		tlbTopo   = flag.String("tlb-topo", "", "TLB topology for every run: private | shared (empty = private)")
		ctxRefs   = flag.Uint64("ctx-switch-refs", 0, "context-switch each core every N trace references (0 = off)")
		ctxFlush  = flag.Bool("ctx-switch-flush", false, "flush shared-L2 TLB entries at each context switch instead of retaining them under ASID tags")
	)
	flag.BoolVar(&plotBars, "plot", false, "render normalized-IPC bar charts under each figure")
	pf := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProf()

	// Ctrl-C (or SIGTERM) cancels the context driving every sweep:
	// queued simulations are skipped, in-flight ones finish, and the
	// process exits 130 below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	o := taglessdram.DefaultOptions()
	o.Seed = *seed
	o.Workers = *nj
	o.Server = *server
	if *server != "" && *prewarm {
		fmt.Fprintln(os.Stderr, "experiments: -prewarm shares in-memory checkpoints, which cannot cross to a -server sweep service")
		os.Exit(1)
	}
	if *server != "" && *rcache != "" {
		fmt.Fprintln(os.Stderr, "experiments: -result-cache is server-side state; with -server the service owns the cache")
		os.Exit(1)
	}
	var store *taglessdram.ResultCache
	if *rcache != "" {
		store, err = taglessdram.OpenResultCache(*rcache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		o.ResultCache = store
	}
	if *prog {
		o.Progress = func(p taglessdram.SweepProgress) {
			cache := ""
			if store != nil {
				st := store.Stats()
				cache = fmt.Sprintf(", cache %d hit/%d miss/%d stored", st.Hits, st.Misses, st.Stored)
			}
			fmt.Fprintf(os.Stderr, "\r  %d/%d sims (elapsed %s, eta %s%s)   ",
				p.Done, p.Total, p.Elapsed.Round(time.Second), p.ETA.Round(time.Second), cache)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	if *quick {
		o.Warmup /= 4
		o.Measure /= 4
	}
	if *extra {
		o.ExtraDesigns = []taglessdram.Design{taglessdram.AlloyBlock, taglessdram.Banshee}
	}
	o.EpochRefs = *epoch
	o.EpochCapacity = *epochCap
	o.WalkModel = *walkModel
	o.PWCHitCycles = *pwcHit
	o.TLBTopology = *tlbTopo
	o.CtxSwitchRefs = *ctxRefs
	o.CtxSwitchFlush = *ctxFlush
	if err := o.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *prewarm {
		o.Checkpoints = taglessdram.NewCheckpointStore()
	}
	var metricsFile *os.File
	if *metrics != "" {
		metricsFile, err = os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer func() {
			if err := metricsFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}()
	}
	// Every figure/table sweep delivers its results here in submission
	// order after the sweep completes, so the metrics file's bytes do
	// not depend on -j. Epoch-ring overflows warn on stderr either way,
	// keeping stdout and the metrics stream byte-identical.
	o.MetricsSink = func(r *taglessdram.Result) {
		if warn := taglessdram.EpochDropWarning(r); warn != "" {
			fmt.Fprintln(os.Stderr, "experiments: warning:", warn)
		}
		if metricsFile == nil {
			return
		}
		if err := taglessdram.WriteMetricsJSON(metricsFile, r); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	fmt.Printf("# Experiments — A Fully Associative, Tagless DRAM Cache (ISCA 2015)\n\n")
	fmt.Printf("Scale: capacities and footprints ÷%d (1GB cache → %dMB); budgets %gM warmup + %gM measured instructions per core; seed %d.\n\n",
		1<<o.Shift, 1024>>o.Shift, float64(o.Warmup)/1e6, float64(o.Measure)/1e6, o.Seed)

	// With -server, report the service's cache counter delta over this
	// invocation (the CI smoke test asserts misses=0 on a warm re-run).
	var serverStats0 taglessdram.ServerStats
	if *server != "" {
		serverStats0, err = taglessdram.RemoteStats(ctx, *server)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	run := func(key string, f func() error) {
		if !sel(key) {
			return
		}
		if err := f(); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "experiments: interrupted — queued simulations skipped")
				stopProf()
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", key, err)
			os.Exit(1)
		}
	}

	run("table6", func() error { return table6() })
	run("table1", func() error { return table1(ctx, o) })
	run("fig7", func() error { return fig7(ctx, o) })
	run("fig8", func() error { return fig8(ctx, o) })
	run("fig9", func() error { return fig9(ctx, o) })
	run("fig10", func() error { return fig10(ctx, o) })
	run("fig11", func() error { return fig11(ctx, o) })
	run("fig12", func() error { return fig12(ctx, o) })
	run("fig13", func() error { return fig13(ctx, o) })
	run("table2", func() error { return table2(ctx, o) })
	run("shared", func() error { return sharedPages(ctx, o) })
	run("hotfilter", func() error { return hotFilter(ctx, o) })
	run("superpages", func() error { return superpages(ctx, o) })
	run("tlbreach", func() error { return tlbReach(ctx, o) })
	run("fairness", func() error { return fairness(ctx, o) })
	run("amat", func() error { return amatCheck(ctx, o) })
	run("latency", func() error { return latencyBreakdown(ctx, o) })

	if store != nil {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "result cache: hits=%d misses=%d stored=%d evicted=%d\n",
			st.Hits, st.Misses, st.Stored, st.Evicted)
	}
	if *server != "" {
		st, err := taglessdram.RemoteStats(ctx, *server)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "server result cache: hits=%d misses=%d stored=%d evicted=%d\n",
			st.Hits-serverStats0.Hits, st.Misses-serverStats0.Misses,
			st.Stored-serverStats0.Stored, st.Evicted-serverStats0.Evicted)
		fmt.Fprintf(os.Stderr, "server: model_version=%d uptime=%s sweeps=%d jobs=%d inflight=%d/%d entries=%d\n",
			st.ModelVersion, st.Uptime.Round(time.Second),
			st.Sweeps, st.Jobs, st.InFlightSweeps, st.InFlightJobs, st.Entries)
	}
}

func table6() error {
	fmt.Printf("## Table 6 — SRAM tag parameters vs cache size\n\n")
	fmt.Printf("| Cache size | Tag size | Latency (cycles) | Entries |\n|---|---|---|---|\n")
	for _, r := range taglessdram.RunTable6() {
		fmt.Printf("| %dMB | %.1fMB | %d | %d |\n",
			r.CacheSize>>20, float64(r.TagBytes)/(1<<20), r.LatencyCyc, r.Entries)
	}
	fmt.Println()
	return nil
}

func table1(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunTable1(ctx, o)
	if err != nil {
		return err
	}
	fmt.Printf("## Table 1 — the four (TLB, DRAM cache) access cases (measured, mcf)\n\n")
	fmt.Printf("| TLB | DRAM cache | Handler cycles (mean) | Count | Description |\n|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %s | %.0f | %d | %s |\n", r.TLB, r.Cache, r.MeanCycles, r.Count, r.Description)
	}
	fmt.Println()
	return nil
}

var plotBars bool

// plotNormIPC renders one bar chart per workload with the designs'
// normalized IPC and a baseline tick at 1.0.
func plotNormIPC(rows []taglessdram.DesignRow) {
	var groups []textplot.Chart
	var cur *textplot.Chart
	for _, r := range rows {
		if cur == nil || cur.Title != r.Workload {
			groups = append(groups, textplot.Chart{Title: r.Workload, Width: 36, Baseline: 1})
			cur = &groups[len(groups)-1]
		}
		cur.Bars = append(cur.Bars, textplot.Bar{Label: r.Design.String(), Value: r.NormIPC})
	}
	fmt.Println("```")
	fmt.Print(textplot.GroupedChart{Groups: groups}.Render())
	fmt.Println("```")
	fmt.Println()
}

func designTable(title string, rows []taglessdram.DesignRow) {
	fmt.Printf("## %s\n\n", title)
	fmt.Printf("| Workload | Design | IPC | Norm. IPC | Norm. EDP | L3 hit | L3 lat (cyc) | Off-pkg GB |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %v | %.3f | %.3f | %.3f | %.1f%% | %.1f | %.3f |\n",
			r.Workload, r.Design, r.IPC, r.NormIPC, r.NormEDP, r.L3HitRate*100, r.AvgL3Latency, r.OffPkgGB)
	}
	// Aggregate whichever designs the rows actually contain (the grid may
	// carry extra baselines beyond the paper's five), first-seen order.
	var present []taglessdram.Design
	seen := map[taglessdram.Design]bool{}
	for _, r := range rows {
		if !seen[r.Design] {
			seen[r.Design] = true
			present = append(present, r.Design)
		}
	}
	fmt.Printf("\nGeomean normalized IPC: ")
	for _, d := range present {
		fmt.Printf("%v=%.3f ", d, taglessdram.GeoMeanNormIPC(rows, d))
	}
	fmt.Printf("\nGeomean normalized EDP: ")
	for _, d := range present {
		fmt.Printf("%v=%.3f ", d, taglessdram.GeoMeanNormEDP(rows, d))
	}
	fmt.Printf("\n\n")
	if plotBars {
		plotNormIPC(rows)
	}
}

func fig7(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunFigure7(ctx, o)
	if err != nil {
		return err
	}
	designTable("Figure 7 — IPC and EDP, single-programmed SPEC CPU 2006", rows)
	return nil
}

func fig8(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunFigure8(ctx, o)
	if err != nil {
		return err
	}
	fmt.Printf("## Figure 8 — average L3 access latency (cycles, lower is better)\n\n")
	fmt.Printf("| Workload | SRAM-tag | Tagless | Reduction |\n|---|---|---|---|\n")
	var reds []float64
	for _, r := range rows {
		fmt.Printf("| %s | %.1f | %.1f | %.1f%% |\n", r.Workload, r.SRAMTagLat, r.TaglessLat, r.ReductionPC)
		reds = append(reds, 1-r.ReductionPC/100)
	}
	prod := 1.0
	for _, x := range reds {
		prod *= x
	}
	geo := 1.0
	if len(reds) > 0 && prod > 0 {
		geo = math.Pow(prod, 1/float64(len(reds)))
	}
	fmt.Printf("\nGeomean latency ratio (tagless/SRAM): %.3f (%.1f%% reduction)\n\n", geo, (1-geo)*100)
	return nil
}

func fig9(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunFigure9(ctx, o)
	if err != nil {
		return err
	}
	designTable("Figure 9 — IPC and EDP, multi-programmed MIX1–MIX8", rows)
	return nil
}

func fig10(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunFigure10(ctx, o, nil)
	if err != nil {
		return err
	}
	fmt.Printf("## Figure 10 — IPC vs DRAM cache size (normalized to BI)\n\n")
	fmt.Printf("| Mix | Cache (paper scale) | SRAM/BI | cTLB/BI |\n|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %dMB | %.3f | %.3f |\n", r.Workload, r.CacheMB<<6, r.SRAMNorm, r.CTLBNorm)
	}
	fmt.Println()
	return nil
}

func fig11(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunFigure11(ctx, o, nil)
	if err != nil {
		return err
	}
	fmt.Printf("## Figure 11 — FIFO vs LRU vs CLOCK replacement (tagless)\n\n")
	fmt.Printf("| Mix | FIFO IPC | LRU IPC | CLOCK IPC | LRU gain | CLOCK gain |\n|---|---|---|---|---|---|\n")
	sum, sumC := 0.0, 0.0
	for _, r := range rows {
		fmt.Printf("| %s | %.3f | %.3f | %.3f | %+.1f%% | %+.1f%% |\n",
			r.Workload, r.FIFOIPC, r.LRUIPC, r.CLOCKIPC, r.LRUGain*100, r.CLOCKGain*100)
		sum += r.LRUGain
		sumC += r.CLOCKGain
	}
	fmt.Printf("\nMean gain over FIFO: LRU %+.1f%%, CLOCK %+.1f%%\n\n",
		sum/float64(len(rows))*100, sumC/float64(len(rows))*100)
	return nil
}

func fig12(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunFigure12(ctx, o)
	if err != nil {
		return err
	}
	designTable("Figure 12 — IPC and EDP, multi-threaded PARSEC", rows)
	return nil
}

func fig13(ctx context.Context, o taglessdram.Options) error {
	r, err := taglessdram.RunFigure13(ctx, o)
	if err != nil {
		return err
	}
	fmt.Printf("## Figure 13 — non-cacheable pages on GemsFDTD\n\n")
	fmt.Printf("| Config | IPC | Off-pkg bytes |\n|---|---|---|\n")
	fmt.Printf("| tagless | %.3f | %d |\n", r.BaseIPC, r.BaseOffPkgB)
	fmt.Printf("| tagless + NC(<32) | %.3f | %d |\n", r.NCIPC, r.NCOffPkgB)
	fmt.Printf("\nIPC gain from non-cacheables: %+.1f%% (NC block accesses: %d)\n\n", r.GainPC, r.NCAccesses)
	return nil
}

func table2(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunTable2(ctx, o, "")
	if err != nil {
		return err
	}
	fmt.Printf("## Table 2 — design comparison (measured on MIX3; block- vs page-based vs tagless)\n\n")
	fmt.Printf("| Design | On-die tag SRAM | In-DRAM tags | L3 hit | L3 lat | Row-buffer hit | Off-pkg GB | Norm. IPC |\n|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %v | %.1fMB | %.0fMB | %.1f%% | %.1f | %.1f%% | %.3f | %.3f |\n",
			r.Design, r.TagStorageMB, r.TagInDRAMMB, r.L3HitRate*100, r.AvgL3Latency, r.InPkgRowHit*100, r.OverFetchGB, r.NormalizedIPC)
	}
	fmt.Println()
	return nil
}

func sharedPages(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunSharedPages(ctx, o, "MIX1", 0.15)
	if err != nil {
		return err
	}
	fmt.Printf("## Shared pages (Section 6 extension) — MIX1, 15%% shared visits\n\n")
	fmt.Printf("| Config | IPC | L3 hit | Off-pkg GB | Alias hits | NC accesses | Tag/alias storage |\n|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %.3f | %.1f%% | %.3f | %d | %d | %.1fMB |\n",
			r.Config, r.IPC, r.L3HitRate*100, r.OffPkgGB, r.AliasHits, r.NCAccesses,
			float64(r.TagOrAliasB)/(1<<20))
	}
	fmt.Println()
	return nil
}

func hotFilter(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunHotFilter(ctx, o, "GemsFDTD", nil)
	if err != nil {
		return err
	}
	fmt.Printf("## Online hot-page filter (CHOP-style extension) — GemsFDTD\n\n")
	fmt.Printf("| Threshold | IPC | Off-pkg GB | Cold fills | NC accesses |\n|---|---|---|---|---|\n")
	for _, r := range rows {
		name := fmt.Sprintf("%d", r.Threshold)
		if r.Threshold == 0 {
			name = "off"
		}
		fmt.Printf("| %s | %.3f | %.3f | %d | %d |\n", name, r.IPC, r.OffPkgGB, r.ColdFills, r.NCAccesses)
	}
	fmt.Println()
	return nil
}

func superpages(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunSuperpages(ctx, o, nil)
	if err != nil {
		return err
	}
	fmt.Printf("## Superpages (Section 6 extension) — 2MB-equivalent regions\n\n")
	fmt.Printf("| Workload | Config | IPC | cTLB miss | Off-pkg GB | Fills | L3 lat |\n|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %s | %.3f | %.3f%% | %.3f | %d | %.1f |\n",
			r.Workload, r.Config, r.IPC, r.TLBMissRate*100, r.OffPkgGB, r.ColdFills, r.L3Latency)
	}
	fmt.Println()
	return nil
}

func tlbReach(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunTLBReach(ctx, o, "mcf", nil)
	if err != nil {
		return err
	}
	fmt.Printf("## TLB reach vs victim cache (Section 3.1) — mcf\n\n")
	fmt.Printf("| L2 TLB entries | IPC | cTLB miss | Victim hits | Cold fills | Victim-hit share |\n|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %d | %.3f | %.2f%% | %d | %d | %.1f%% |\n",
			r.L2TLBEntries, r.IPC, r.TLBMissRate*100, r.VictimHits, r.ColdFills, r.VictimHitFrac*100)
	}
	fmt.Println()
	return nil
}

func fairness(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunFairness(ctx, o, "MIX5")
	if err != nil {
		return err
	}
	fmt.Printf("## Multiprogrammed fairness — MIX5 (vs each program alone)\n\n")
	fmt.Printf("| Design | Mix IPC | Weighted speedup | Harmonic speedup |\n|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %v | %.3f | %.3f | %.3f |\n", r.Design, r.MixIPC, r.WeightedSpeedup, r.HarmonicSpeedup)
	}
	fmt.Println()
	return nil
}

func amatCheck(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunAMATCheck(ctx, o, nil)
	if err != nil {
		return err
	}
	fmt.Printf("## Equations 1–5 — analytic AMAT vs simulation (avg L3 latency, cycles)\n\n")
	fmt.Printf("The closed forms use contention-free device latencies, so absolute values\n")
	fmt.Printf("are lower bounds; the structural check is the SRAM−tagless gap, where the\n")
	fmt.Printf("shared queueing terms cancel.\n\n")
	fmt.Printf("| Workload | sim SRAM | model SRAM | sim cTLB | model cTLB | sim gap | model gap |\n|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %.1f | %.1f | %.1f | %.1f | %+.1f | %+.1f |\n",
			r.Workload, r.SimSRAMLat, r.ModelSRAMLat, r.SimCTLBLat, r.ModelCTLBLat, r.SimGap, r.ModelGap)
	}
	fmt.Println()
	return nil
}

func latencyBreakdown(ctx context.Context, o taglessdram.Options) error {
	rows, err := taglessdram.RunLatencyBreakdown(ctx, o, "sphinx3")
	if err != nil {
		return err
	}
	names := taglessdram.LatencyComponentNames()
	fmt.Printf("## Latency attribution — per-component stall cycles per L3 access (sphinx3)\n\n")
	fmt.Printf("Measured attribution: the component columns sum to the average latency\n")
	fmt.Printf("exactly (zero-residue conservation, checked per reference).\n\n")
	fmt.Printf("| Design | avg | p50 | p99 | p99.9 | max |")
	for _, n := range names {
		fmt.Printf(" %s |", n)
	}
	fmt.Printf("\n|---|---|---|---|---|---|")
	for range names {
		fmt.Printf("---|")
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("| %v | %.1f | %.0f | %.0f | %.0f | %d |", r.Design, r.AvgLat, r.P50, r.P99, r.P999, r.Max)
		for _, c := range r.Components {
			fmt.Printf(" %.1f |", c)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}
